// Package ssdkeeper's root benchmark harness regenerates every table and
// figure of the paper (one benchmark per artifact) and measures the ablations
// called out in DESIGN.md. Custom metrics carry the experiment results:
// latencies in us, accuracies in percent, improvements in percent — so
// `go test -bench=. -benchmem` both exercises and reports the reproduction.
//
// The figure/table benchmarks run at QuickScale inside the timing loop; the
// printed metrics are therefore smoke-sized. cmd/experiments regenerates the
// full-sized artifacts.
package ssdkeeper

import (
	"context"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/hostif"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

// quickEnvScale returns the shared environment and smoke scale.
func quickEnvScale() (experiments.Env, experiments.Scale) {
	return experiments.NewEnv(), experiments.QuickScale()
}

// quickSamplesModel memoizes a QuickScale dataset and trained model across
// benchmarks (building them is itself benchmarked separately).
var benchState struct {
	samples []dataset.Sample
	model   *nn.Network
	test    []dataset.Sample
}

func benchSamplesModel(b *testing.B) ([]dataset.Sample, *nn.Network, []dataset.Sample) {
	b.Helper()
	if benchState.model != nil {
		return benchState.samples, benchState.model, benchState.test
	}
	env, scale := quickEnvScale()
	samples, err := experiments.BuildDataset(context.Background(), env, scale, nil)
	if err != nil {
		b.Fatal(err)
	}
	res, err := experiments.TrainBest(env, scale, samples)
	if err != nil {
		b.Fatal(err)
	}
	benchState.samples = samples
	benchState.model = res.Model
	benchState.test = res.TestSamples
	return samples, res.Model, res.TestSamples
}

// BenchmarkFig2 regenerates the Figure 2 motivation sweep (9 write
// proportions x 8 strategies) and reports the best strategy's gain over
// Shared at 50% writes.
func BenchmarkFig2(b *testing.B) {
	env, scale := quickEnvScale()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(context.Background(), env, scale)
		if err != nil {
			b.Fatal(err)
		}
		p := res.Points[4] // 50%
		best := 1.0
		for _, r := range p.Rows {
			if !r.Infeasible && r.NormTotal < best {
				best = r.NormTotal
			}
		}
		gain = 100 * (1 - best)
	}
	b.ReportMetric(gain, "%gain-at-50%")
}

// BenchmarkFig4Table3 regenerates the optimizer comparison: four training
// runs on a shared dataset. Reports Adam-logistic's final accuracy (Table
// III's winning row).
func BenchmarkFig4Table3(b *testing.B) {
	env, scale := quickEnvScale()
	samples, _, _ := benchSamplesModel(b)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Fig4Table3(env, scale, samples)
		if err != nil {
			b.Fatal(err)
		}
		acc = runs[len(runs)-1].History.FinalAcc
	}
	b.ReportMetric(100*acc, "%adam-logistic-acc")
}

// BenchmarkTable3TrainingTime measures one full training run of the deployed
// configuration — the Table III "Training Time" column.
func BenchmarkTable3TrainingTime(b *testing.B) {
	env, scale := quickEnvScale()
	samples, _, _ := benchSamplesModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TrainBest(env, scale, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Table5 regenerates the end-to-end mix comparison and reports
// the paper's headline metric: SSDKeeper's average total-latency improvement
// over Shared.
func BenchmarkFig5Table5(b *testing.B) {
	env, scale := quickEnvScale()
	_, model, _ := benchSamplesModel(b)
	var improvement float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := experiments.Fig5Table5(context.Background(), env, scale, model, false)
		if err != nil {
			b.Fatal(err)
		}
		improvement = 0
		for _, r := range reports {
			improvement += r.ImprovementPct
		}
		improvement /= float64(len(reports))
	}
	b.ReportMetric(improvement, "%avg-improvement")
}

// BenchmarkFig6 regenerates the strategy map.
func BenchmarkFig6(b *testing.B) {
	env, scale := quickEnvScale()
	_, model, _ := benchSamplesModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(env, scale, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGeneration measures the label-generation pipeline
// (Algorithm 1 lines 1-8): one workload replayed under all 42 strategies.
func BenchmarkDatasetGeneration(b *testing.B) {
	env, scale := quickEnvScale()
	cfg := dataset.Config{
		Device: env.Device, Options: env.Options, Strategies: env.Strategies,
		Workloads: 1, Requests: scale.DatasetRequests,
		MaxIOPS: env.SaturationIOPS, Season: env.Season, Seed: 1,
	}
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.4}, {WriteRatio: 0.1, Share: 0.3},
			{WriteRatio: 0.95, Share: 0.2}, {WriteRatio: 0.05, Share: 0.1},
		},
		Requests: scale.DatasetRequests, IOPS: 8000, Seed: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Label(context.Background(), cfg, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// requests processed per wall-clock second under Shared.
func BenchmarkSimulatorThroughput(b *testing.B) {
	env, _ := quickEnvScale()
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5}, {WriteRatio: 0.1, Share: 0.5},
		},
		Requests: 5000, IOPS: 8000, Seed: 3,
	}
	tr, err := spec.Build(env.Device.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Run(workload.RunConfig{
			Device: env.Device, Options: env.Options,
			Strategy: alloc.Strategy{Kind: alloc.Shared},
			Traits:   spec.Traits(), Season: env.Season,
		}, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "requests/s")
}

// BenchmarkSimulatorHealth measures what the device-health tier costs and
// what a failure does to service: the BenchmarkSimulatorThroughput workload
// runs with no fault plan, with a plan armed whose events never fire (the
// pure bookkeeping overhead of health tracking — bench_gate.sh holds
// armed/nofault within 2%), and through a mid-run die failure plus retry
// tail (the degraded-device throughput and read p99 recorded by bench.sh
// Part 5).
func BenchmarkSimulatorHealth(b *testing.B) {
	env, _ := quickEnvScale()
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5}, {WriteRatio: 0.1, Share: 0.5},
		},
		Requests: 5000, IOPS: 8000, Seed: 3,
	}
	tr, err := spec.Build(env.Device.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	span := sim.Time(float64(spec.Requests) / spec.IOPS * float64(sim.Second))
	cases := []struct {
		name string
		plan *nand.FaultPlan
	}{
		{"nofault", nil},
		// A non-nil plan with no events arms every health hook (place
		// redirects, retry draws, wear checks) without a single fault —
		// the pure cost of the machinery. An event beyond the run's span
		// would not do: the engine drains its queue at end of run, so a
		// far-future die failure still executes and pollutes the timing.
		{"armed", &nand.FaultPlan{Seed: 1}},
		{"degraded", &nand.FaultPlan{Seed: 1, Events: []nand.FaultEvent{
			{Kind: nand.FaultDieFail, At: span * 2 / 5, Channel: 1, Die: 0},
			{Kind: nand.FaultRetryTail, At: span * 2 / 5, Prob: 0.25},
		}}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			opts := env.Options
			opts.FaultPlan = c.plan
			var readP99 float64
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(workload.RunConfig{
					Device: env.Device, Options: opts,
					Strategy: alloc.Strategy{Kind: alloc.Shared},
					Traits:   spec.Traits(), Season: env.Season,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				readP99 = float64(res.Device.Read.P99()) / 1e3
			}
			b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "requests/s")
			b.ReportMetric(readP99, "read-p99-us")
		})
	}
}

// BenchmarkSimulatorHealthOverhead reports the no-fault cost of the health
// machinery as a single same-run ratio: each iteration runs the workload
// twice back to back — once with FaultPlan nil, once with an armed empty
// plan — and the armed-over-nofault metric is the ratio of the accumulated
// times. Interleaving the pairs cancels machine drift that would swamp a
// sequential A-then-B comparison; bench_gate.sh holds the ratio at ≤ 1.02.
func BenchmarkSimulatorHealthOverhead(b *testing.B) {
	env, _ := quickEnvScale()
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5}, {WriteRatio: 0.1, Share: 0.5},
		},
		Requests: 5000, IOPS: 8000, Seed: 3,
	}
	tr, err := spec.Build(env.Device.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	run := func(plan *nand.FaultPlan) time.Duration {
		opts := env.Options
		opts.FaultPlan = plan
		start := time.Now()
		if _, err := workload.Run(workload.RunConfig{
			Device: env.Device, Options: opts,
			Strategy: alloc.Strategy{Kind: alloc.Shared},
			Traits:   spec.Traits(), Season: env.Season,
		}, tr); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	armed := &nand.FaultPlan{Seed: 1}
	plain := make([]time.Duration, 0, b.N)
	withHP := make([]time.Duration, 0, b.N)
	// Collections during a run land on whichever side happens to cross the
	// heap-growth threshold, which swamps a 2% comparison: keep the
	// collector out of the timed regions and sweep each pair's garbage
	// explicitly between pairs instead.
	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.GC()
		// Alternate pair order so residual cache/heap warm-up lands on
		// both sides equally.
		if i%2 == 0 {
			plain = append(plain, run(nil))
			withHP = append(withHP, run(armed))
		} else {
			withHP = append(withHP, run(armed))
			plain = append(plain, run(nil))
		}
	}
	b.StopTimer()
	if len(plain) > 0 {
		b.ReportMetric(float64(median(withHP))/float64(median(plain)), "armed-over-nofault")
	}
}

// median of a duration sample; GC pauses and scheduler hiccups land on
// single runs, so the median is the drift-robust centre the overhead gate
// needs.
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// BenchmarkNNInference measures one forward propagation of the deployed
// 9-64-42 network — the per-window decision cost SSDKeeper adds to the FTL,
// which the paper argues is negligible (Section IV.D).
func BenchmarkNNInference(b *testing.B) {
	net, err := nn.NewMLP([]int{features.Dim, 64, 42}, nn.Logistic{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	v := features.Vector{Intensity: 9, Prop: [4]float64{0.4, 0.3, 0.2, 0.1}}
	in := v.Input()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Predict(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictParallel drives Keeper.Predict from every GOMAXPROCS
// worker at once (`-cpu 1,N` shows the scaling). Inference scratch is pooled
// per caller — there is no shared Predict mutex — so ns/op should hold
// roughly flat as workers are added instead of serializing on a lock.
func BenchmarkPredictParallel(b *testing.B) {
	env, _ := quickEnvScale()
	net, err := nn.NewMLP([]int{features.Dim, 64, len(env.Strategies)}, nn.Logistic{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	k, err := keeper.New(keeper.Config{
		Device: env.Device, Options: env.Options, Strategies: env.Strategies,
		SaturationIOPS: env.SaturationIOPS, Window: 100 * Millisecond,
		Season: env.Season,
	}, net)
	if err != nil {
		b.Fatal(err)
	}
	v := features.Vector{Intensity: 9, Prop: [4]float64{0.4, 0.3, 0.2, 0.1}}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := k.Predict(v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPredict compares the serving kernels on the deployed network
// shape (9-64-42) under the full Keeper.Predict path: float64 and int8,
// each per-call and batched. The batched loops advance b.N by the batch
// size, so every variant reports ns per DECISION and the sub-benchmarks are
// directly comparable. int8/batch is the serving configuration the bench
// gate holds to >= 2x over float64/call.
func BenchmarkPredict(b *testing.B) {
	env, _ := quickEnvScale()
	net, err := nn.NewMLP([]int{features.Dim, 64, len(env.Strategies)}, nn.Logistic{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	vs := make([]features.Vector, batch)
	for i := range vs {
		vs[i] = features.Vector{
			Intensity: i % features.Levels,
			ReadChar:  [4]bool{i%2 == 0, i%3 == 0, i%5 == 0, i%7 == 0},
			Prop:      [4]float64{0.4, 0.3, 0.2, 0.1},
		}
	}
	newKeeper := func(b *testing.B, p nn.Precision) *keeper.Keeper {
		b.Helper()
		m, err := policy.NewModelPrecision("bench", net, env.Strategies, p)
		if err != nil {
			b.Fatal(err)
		}
		k, err := keeper.NewWithProvider(keeper.Config{
			Device: env.Device, Options: env.Options, Strategies: env.Strategies,
			SaturationIOPS: env.SaturationIOPS, Window: 100 * Millisecond,
			Season: env.Season,
		}, m)
		if err != nil {
			b.Fatal(err)
		}
		return k
	}
	for _, p := range []nn.Precision{nn.Float64, nn.Int8} {
		k := newKeeper(b, p)
		b.Run(p.String()+"/call", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := k.Predict(vs[i%batch]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.String()+"/batch64", func(b *testing.B) {
			b.ReportAllocs()
			out := make([]alloc.Strategy, batch)
			for i := 0; i < b.N; i += batch {
				if err := k.PredictBatch(vs, out, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNNTrainingEpoch measures one epoch of minibatch training on the
// paper's network shape.
func BenchmarkNNTrainingEpoch(b *testing.B) {
	samples, _, _ := benchSamplesModel(b)
	ds := dataset.ToNN(samples)
	net, err := nn.NewMLP([]int{features.Dim, 64, 42}, nn.Logistic{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := nn.NewAdam(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(net, ds, nn.Dataset{}, nn.TrainConfig{
			Iterations: 1, BatchSize: 32, Optimizer: opt, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 6) ---

// ablationMix builds the standard write-heavy two-tenant mix the ablations
// share.
func ablationMix(b *testing.B, cfg nand.Config) (trace.Trace, []alloc.TenantTraits) {
	b.Helper()
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.95, Share: 0.6},
			{WriteRatio: 0.05, Share: 0.4},
		},
		Requests: 6000, IOPS: 8000, Seed: 5,
	}
	tr, err := spec.Build(cfg.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	return tr, spec.Traits()
}

// BenchmarkAblationReadPriority compares FIFO (the paper's substrate) with
// strict read-priority arbitration under Shared. Read priority collapses
// read latency but the report shows what it does to writes.
func BenchmarkAblationReadPriority(b *testing.B) {
	env, _ := quickEnvScale()
	tr, traits := ablationMix(b, env.Device)
	for _, prio := range []bool{false, true} {
		name := "fifo"
		if prio {
			name = "readpriority"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(workload.RunConfig{
					Device: env.Device, Options: ssd.Options{ReadPriority: prio},
					Strategy: alloc.Strategy{Kind: alloc.Shared},
					Traits:   traits, Season: env.Season,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Device.Total()
			}
			b.ReportMetric(total, "us-total")
		})
	}
}

// BenchmarkAblationPageAlloc compares the page allocation modes under a 6:2
// split on both a fresh and a seasoned device. On fresh flash dynamic
// allocation wins by spreading write bursts; on a seasoned device it
// scatters overwrites across planes, raising GC write amplification — the
// regime where the paper's hybrid allocator inverts.
func BenchmarkAblationPageAlloc(b *testing.B) {
	env, _ := quickEnvScale()
	tr, traits := ablationMix(b, env.Device)
	strategy := alloc.Strategy{Kind: alloc.TwoGroup, WriteChannels: 6}
	for _, seasoned := range []bool{false, true} {
		for _, mode := range []string{"static", "hybrid"} {
			name := "fresh/" + mode
			if seasoned {
				name = "seasoned/" + mode
			}
			b.Run(name, func(b *testing.B) {
				var total float64
				var moved uint64
				for i := 0; i < b.N; i++ {
					rc := workload.RunConfig{
						Device: env.Device, Options: env.Options,
						Strategy: strategy, Traits: traits,
						Hybrid: mode == "hybrid",
					}
					if seasoned {
						rc.Season = workload.DefaultSeasoning()
					}
					res, err := workload.Run(rc, tr)
					if err != nil {
						b.Fatal(err)
					}
					total = res.Device.Total()
					moved = res.FTL.GCMovedPages
				}
				b.ReportMetric(total, "us-total")
				b.ReportMetric(float64(moved), "gc-pages-moved")
			})
		}
	}
}

// BenchmarkAblationHidden varies the classifier's hidden width around the
// paper's 64 neurons and reports held-out regret.
func BenchmarkAblationHidden(b *testing.B) {
	env, scale := quickEnvScale()
	samples, _, _ := benchSamplesModel(b)
	for _, hidden := range []int{16, 64, 256} {
		b.Run(map[int]string{16: "h16", 64: "h64", 256: "h256"}[hidden], func(b *testing.B) {
			var regret float64
			for i := 0; i < b.N; i++ {
				res, err := keeper.TrainOnSamples(keeper.TrainConfig{
					Dataset: dataset.Config{
						Device: env.Device, Options: env.Options,
						Strategies: env.Strategies,
						Workloads:  scale.DatasetWorkloads,
						Requests:   scale.DatasetRequests,
						MaxIOPS:    env.SaturationIOPS,
						Season:     env.Season, Seed: scale.Seed,
					},
					Hidden:     hidden,
					Iterations: scale.TrainIterations,
					BatchSize:  scale.TrainBatch,
					Seed:       scale.Seed,
				}, samples)
				if err != nil {
					b.Fatal(err)
				}
				ev, err := experiments.EvaluateModel(res.Model, res.TestSamples)
				if err != nil {
					b.Fatal(err)
				}
				regret = ev.MeanRegretPct
			}
			b.ReportMetric(regret, "%regret")
		})
	}
}

// BenchmarkAblationFeatures drops feature groups from the 9-D vector (by
// zeroing them at train and test time) and reports held-out regret,
// quantifying how much each of the paper's three feature groups matters.
func BenchmarkAblationFeatures(b *testing.B) {
	env, scale := quickEnvScale()
	samples, _, _ := benchSamplesModel(b)
	masks := []struct {
		name string
		keep func(v features.Vector) features.Vector
	}{
		{"full", func(v features.Vector) features.Vector { return v }},
		{"no-intensity", func(v features.Vector) features.Vector { v.Intensity = 0; return v }},
		{"no-proportions", func(v features.Vector) features.Vector { v.Prop = [4]float64{}; return v }},
		{"no-characteristics", func(v features.Vector) features.Vector { v.ReadChar = [4]bool{}; return v }},
	}
	for _, m := range masks {
		b.Run(m.name, func(b *testing.B) {
			masked := make([]dataset.Sample, len(samples))
			for i, s := range samples {
				s.Vector = m.keep(s.Vector)
				masked[i] = s
			}
			var regret float64
			for i := 0; i < b.N; i++ {
				res, err := keeper.TrainOnSamples(keeper.TrainConfig{
					Dataset: dataset.Config{
						Device: env.Device, Options: env.Options,
						Strategies: env.Strategies,
						Workloads:  scale.DatasetWorkloads,
						Requests:   scale.DatasetRequests,
						MaxIOPS:    env.SaturationIOPS,
						Season:     env.Season, Seed: scale.Seed,
					},
					Iterations: scale.TrainIterations,
					BatchSize:  scale.TrainBatch,
					Seed:       scale.Seed,
				}, masked)
				if err != nil {
					b.Fatal(err)
				}
				ev, err := experiments.EvaluateModel(res.Model, res.TestSamples)
				if err != nil {
					b.Fatal(err)
				}
				regret = ev.MeanRegretPct
			}
			b.ReportMetric(regret, "%regret")
		})
	}
}

// BenchmarkGCPressure isolates garbage collection: overwrite churn on one
// plane, reporting pages moved per erase (write-amplification proxy).
func BenchmarkGCPressure(b *testing.B) {
	cfg := nand.EvalConfig()
	cfg.Channels, cfg.ChipsPerChannel, cfg.PlanesPerDie = 1, 1, 1
	runner := simrun.NewRunner()
	for i := 0; i < b.N; i++ {
		sess, err := runner.NewSession(simrun.Config{
			Device: cfg, Season: workload.DefaultSeasoning(),
		})
		if err != nil {
			b.Fatal(err)
		}
		f := sess.Device().FTL()
		for round := 0; round < 20; round++ {
			for lpn := int64(0); lpn < 256; lpn++ {
				if _, _, err := f.MapWrite(ftl.Key{Tenant: 0, LPN: lpn}); err != nil {
					b.Fatal(err)
				}
			}
		}
		c := f.Counters()
		if c.GCErases > 0 {
			b.ReportMetric(float64(c.GCMovedPages)/float64(c.GCErases), "moved/erase")
		}
	}
}

// BenchmarkAblationQueueDepth bounds the host queue depth, showing how
// backpressure tames the unbounded-queue latency blowups of saturated
// partitions (the paper's setup, like SSDSim's, is unbounded).
func BenchmarkAblationQueueDepth(b *testing.B) {
	env, _ := quickEnvScale()
	tr, traits := ablationMix(b, env.Device)
	for _, depth := range []int{0, 16, 64} {
		name := map[int]string{0: "unbounded", 16: "qd16", 64: "qd64"}[depth]
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				opts := env.Options
				opts.MaxOutstanding = depth
				res, err := workload.Run(workload.RunConfig{
					Device: env.Device, Options: opts,
					Strategy: alloc.Strategy{Kind: alloc.TwoGroup, WriteChannels: 1},
					Traits:   traits, Season: env.Season,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Device.Total()
			}
			b.ReportMetric(total, "us-total")
		})
	}
}

// BenchmarkAblationCacheRegister removes the per-plane cache register
// (Figure 1), serializing array time and bus transfer on each die.
func BenchmarkAblationCacheRegister(b *testing.B) {
	env, _ := quickEnvScale()
	tr, traits := ablationMix(b, env.Device)
	for _, noCache := range []bool{false, true} {
		name := "cached"
		if noCache {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				opts := env.Options
				opts.NoCacheRegister = noCache
				res, err := workload.Run(workload.RunConfig{
					Device: env.Device, Options: opts,
					Strategy: alloc.Strategy{Kind: alloc.Shared},
					Traits:   traits, Season: env.Season,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Device.Total()
			}
			b.ReportMetric(total, "us-total")
		})
	}
}

// BenchmarkAblationWearLeveling measures static wear leveling's effect on
// erase-count spread and on foreground latency.
func BenchmarkAblationWearLeveling(b *testing.B) {
	env, _ := quickEnvScale()
	tr, traits := ablationMix(b, env.Device)
	for _, threshold := range []int{0, 16} {
		name := "off"
		if threshold > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			var spread int
			for i := 0; i < b.N; i++ {
				cfg := env.Device
				cfg.WearThreshold = threshold
				dev, err := workload.NewDevice(workload.RunConfig{
					Device: cfg, Options: env.Options,
					Strategy: alloc.Strategy{Kind: alloc.Shared},
					Traits:   traits, Season: env.Season,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := dev.Run(tr, nil)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Device.Total()
				w := dev.FTL().Wear()
				spread = w.MaxErases - w.MinErases
			}
			b.ReportMetric(total, "us-total")
			b.ReportMetric(float64(spread), "erase-spread")
		})
	}
}

// BenchmarkAblationCMT bounds the FTL's mapping cache (DFTL-style) and
// reports the latency cost of translation misses versus unlimited mapping
// SRAM.
func BenchmarkAblationCMT(b *testing.B) {
	env, _ := quickEnvScale()
	tr, traits := ablationMix(b, env.Device)
	for _, entries := range []int{0, 1024, 16384} {
		name := map[int]string{0: "unlimited", 1024: "cmt1k", 16384: "cmt16k"}[entries]
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				opts := env.Options
				opts.CMTEntries = entries
				res, err := workload.Run(workload.RunConfig{
					Device: env.Device, Options: opts,
					Strategy: alloc.Strategy{Kind: alloc.Shared},
					Traits:   traits, Season: env.Season,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Device.Total()
			}
			b.ReportMetric(total, "us-total")
		})
	}
}

// BenchmarkAblationArbitration compares the host interface's queue
// arbitration disciplines under a saturating two-tenant burst.
func BenchmarkAblationArbitration(b *testing.B) {
	env, _ := quickEnvScale()
	tr, _ := ablationMix(b, env.Device)
	runner := simrun.NewRunner()
	for _, arb := range []string{"rr", "wrr4:1"} {
		b.Run(arb, func(b *testing.B) {
			var t0, t1 float64
			for i := 0; i < b.N; i++ {
				sess, err := runner.NewSession(simrun.Config{
					Device: env.Device, Options: env.Options,
					Season: workload.DefaultSeasoning(),
				})
				if err != nil {
					b.Fatal(err)
				}
				dev := sess.Device()
				cfg := hostif.Config{QueueDepth: 8, Outstanding: 8}
				if arb != "rr" {
					cfg.Arbitration = hostif.WeightedRoundRobin
					cfg.Weights = map[int]int{0: 4, 1: 1}
				}
				h, err := hostif.New(dev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := h.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				t0 = res.PerTenant[0].Write.Mean()
				t1 = res.PerTenant[1].Write.Mean()
			}
			b.ReportMetric(t0, "us-tenant0-write")
			b.ReportMetric(t1, "us-tenant1-write")
		})
	}
}

// BenchmarkAblationQuantization measures the deployed model at each storage
// precision: held-out latency regret and parameter footprint. The paper
// argues the model's FTL overhead is negligible (Section IV.D); quantization
// shows how much smaller it can go.
func BenchmarkAblationQuantization(b *testing.B) {
	_, model, test := benchSamplesModel(b)
	for _, p := range []nn.Precision{nn.Float64, nn.Float32, nn.Float16, nn.Int8} {
		b.Run(p.String(), func(b *testing.B) {
			var regret float64
			var bytes int
			for i := 0; i < b.N; i++ {
				q := model.Quantized(p)
				ev, err := experiments.EvaluateModel(q, test)
				if err != nil {
					b.Fatal(err)
				}
				regret = ev.MeanRegretPct
				bytes = q.StorageBytes(p)
			}
			b.ReportMetric(regret, "%regret")
			b.ReportMetric(float64(bytes), "model-bytes")
		})
	}
}
