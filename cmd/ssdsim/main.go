// Command ssdsim replays a block-level trace on the simulated SSD under a
// chosen channel-allocation strategy and reports per-tenant latency,
// conflict and FTL statistics. It is the general-purpose front end to the
// simulator — the equivalent of running the modified SSDSim directly.
//
// Usage:
//
//	ssdsim -trace mix.csv -strategy Shared
//	ssdsim -trace mix.csv -strategy 5:1:1:1 -hybrid
//	ssdsim -trace mix.csv -strategy 6:2 -seasoned=false -v
//	ssdsim -trace mix.csv -fault "die:ch2:die1@30s,retire:ch0:blk12@45s"
//
// The trace is MSR-Cambridge CSV (Timestamp,Hostname,DiskNumber,Type,
// Offset,Size,ResponseTime); hostnames become tenants in order of first
// appearance. Strategy names use the paper's notation: Shared, Isolated,
// W:R two-group splits, or four-way splits like 5:1:1:1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/prof"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "MSR-format trace file (required)")
		stratName = flag.String("strategy", "Shared", "channel allocation strategy")
		hybrid    = flag.Bool("hybrid", false, "enable hybrid page allocation")
		seasoned  = flag.Bool("seasoned", true, "age the device before the run")
		full      = flag.Bool("fullsize", false, "use the full 512GB Table I geometry instead of the scaled eval geometry")
		readPrio  = flag.Bool("readpriority", false, "serve queued reads before queued writes")
		faultSpec = flag.String("fault", "", `device fault plan, e.g. "die:ch2:die1@30s,retire:ch0:blk12@45s,retry:0.1@60s,slow:2@90s"`)
		faultSeed = flag.Int64("fault-seed", 1, "seed of the fault plan's read-retry hash")
		counters  = flag.Bool("counters", false, "print the probe counter table after the run")
		verbose   = flag.Bool("v", false, "print per-channel utilization")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "ssdsim: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, tenants, err := trace.ReadMSR(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(tr) == 0 {
		fatal(fmt.Errorf("trace %s is empty", *tracePath))
	}
	sum := tr.Summarize()
	fmt.Printf("trace: %d requests, %d tenants, %.0f%% writes, span %v\n",
		sum.Requests, sum.Tenants, 100*sum.WriteRatio, sum.Span)

	cfg := nand.EvalConfig()
	if *full {
		cfg = nand.DefaultConfig()
	}
	strategy, err := alloc.Parse(*stratName, cfg.Channels)
	if err != nil {
		fatal(err)
	}
	traits := workload.TraitsFromTrace(tr, sum.Tenants)

	plan, err := nand.ParseFaultPlan(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		plan.Seed = *faultSeed
		fmt.Printf("fault plan: %s (seed %d)\n", plan, plan.Seed)
	}

	rc := simrun.Config{
		Device:   cfg,
		Options:  ssd.Options{ReadPriority: *readPrio, FaultPlan: plan},
		Strategy: strategy,
		Traits:   traits,
		Hybrid:   *hybrid,
	}
	if *seasoned {
		rc.Season = workload.DefaultSeasoning()
	}
	var opts []simrun.Option
	if *counters {
		opts = append(opts, simrun.WithProbe(simrun.NewCounterProbe(cfg)))
	}
	run, err := simrun.NewRunner(opts...).Run(ctx, rc, tr)
	if err != nil {
		fatal(err)
	}
	res := run.Result

	fmt.Printf("\nstrategy %s (hybrid=%v, seasoned=%v)\n", strategy.Name(cfg.Channels), *hybrid, *seasoned)
	fmt.Printf("device:   read %9.1fus (n=%d)  write %9.1fus (n=%d)  total %9.1fus\n",
		res.Device.Read.Mean(), res.Device.Read.Count,
		res.Device.Write.Mean(), res.Device.Write.Count, res.Device.Total())
	fmt.Printf("tails:    read p50 %v p99 %v   write p50 %v p99 %v\n",
		res.Device.Read.P50(), res.Device.Read.P99(),
		res.Device.Write.P50(), res.Device.Write.P99())
	names := make([]string, sum.Tenants)
	for host, id := range tenants {
		names[id] = host
	}
	for id := 0; id < sum.Tenants; id++ {
		l := res.PerTenant[id]
		fmt.Printf("tenant %d (%s): read %9.1fus  write %9.1fus\n",
			id, names[id], l.Read.Mean(), l.Write.Mean())
	}
	fmt.Printf("\nconflicts: %d operations waited %v total; tenant fairness (Jain) %.3f\n",
		res.Conflicts, res.ConflictWait, res.Fairness)
	fmt.Printf("ftl: %d page writes, %d preloads, %d invalidations, %d GC runs (%d pages moved, %d erases)\n",
		res.FTL.Writes, res.FTL.Preloads, res.FTL.Invalidations,
		res.FTL.GCRuns, res.FTL.GCMovedPages, res.FTL.GCErases)
	fmt.Printf("makespan: %v\n", res.Makespan)

	if *verbose {
		fmt.Println("\nper-channel bus utilization:")
		for _, b := range res.BusStats {
			fmt.Printf("  %-5s busy %v over %d ops, %d contended (waited %v)\n",
				b.Name, b.BusyTime, b.Grants, b.Contended, b.WaitTime)
		}
	}

	if *counters && run.Counters != nil {
		fmt.Println("\nprobe counters:")
		fmt.Print(run.Counters.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdsim:", err)
	os.Exit(1)
}
