// Command experiments regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	experiments -run all                     # everything, laptop scale
//	experiments -run fig2                    # one experiment
//	experiments -run adaptive                # the self-adjusting two-tenant sweep
//	experiments -run fig5 -scale quick       # smoke scale
//	experiments -run all -out results/       # write per-experiment files
//	experiments -run fig4 -workloads 1000    # override dataset size
//
// Experiments that need the trained model (table5, fig5, fig6) build the
// dataset and train it first; -samples/-model let you reuse artifacts
// produced by keeper-train.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/prof"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		run       = flag.String("run", "all", "experiment: all, fig2, adaptive, fig4, table3, table5, fig5, fig6, healthtraj")
		scaleName = flag.String("scale", "default", "scale preset: quick, default, paper")
		outDir    = flag.String("out", "", "directory for result files (default: stdout only)")
		oracle    = flag.Bool("oracle", false, "fig5: also sweep all 42 strategies per mix for the exhaustive optimum")
		samples   = flag.String("samples", "", "reuse a dataset file written by keeper-train")
		model     = flag.String("model", "", "reuse a model file written by keeper-train")
		workloads = flag.Int("workloads", 0, "override dataset workload count")
		requests  = flag.Int("requests", 0, "override per-workload request count")
		seed      = flag.Int64("seed", 0, "override experiment seed")
		workers   = flag.Int("workers", 0, "label-generation parallelism (0 = GOMAXPROCS)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	scale, err := pickScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *workloads > 0 {
		scale.DatasetWorkloads = *workloads
	}
	if *requests > 0 {
		scale.DatasetRequests = *requests
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	scale.Workers = *workers
	env := experiments.NewEnv()

	which := strings.ToLower(*run)
	valid := map[string]bool{"all": true, "fig2": true, "adaptive": true, "fig4": true,
		"table3": true, "table5": true, "fig5": true, "fig6": true, "healthtraj": true}
	if !valid[which] {
		fatal(fmt.Errorf("unknown experiment %q", which))
	}

	emit := func(name, content string, data interface{}) {
		fmt.Println(content)
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if data == nil {
			return
		}
		raw, err := json.MarshalIndent(data, "", "  ")
		if err != nil {
			fatal(err)
		}
		jsonPath := filepath.Join(*outDir, name+".json")
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
		}
	}

	if which == "all" || which == "fig2" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running fig2 (9 write proportions x 8 strategies)...")
		}
		res, err := experiments.Fig2(ctx, env, scale)
		if err != nil {
			fatal(err)
		}
		emit("fig2", res.Render(), res)
	}

	if which == "all" || which == "adaptive" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running the self-adjusting two-tenant sweep...")
		}
		res, err := experiments.Fig2Adaptive(ctx, env, scale, func(done, total int) {
			if !*quiet && done%25 == 0 {
				fmt.Fprintf(os.Stderr, "  labelled %d/%d two-tenant workloads\n", done, total)
			}
		})
		if err != nil {
			fatal(err)
		}
		emit("fig2_adaptive", res.Render(), res)
	}

	needModel := which == "all" || which == "fig4" || which == "table3" ||
		which == "table5" || which == "fig5" || which == "fig6" || which == "healthtraj"
	if !needModel {
		return
	}

	var ds []dataset.Sample
	if *samples != "" {
		f, err := os.Open(*samples)
		if err != nil {
			fatal(err)
		}
		ds, err = dataset.LoadSamples(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "loaded %d samples from %s\n", len(ds), *samples)
		}
	} else {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "generating dataset: %d workloads x %d strategies x %d requests...\n",
				scale.DatasetWorkloads, len(env.Strategies), scale.DatasetRequests)
		}
		progress := func(done, total int) {
			if !*quiet && done%25 == 0 {
				fmt.Fprintf(os.Stderr, "  labelled %d/%d workloads\n", done, total)
			}
		}
		ds, err = experiments.BuildDataset(ctx, env, scale, progress)
		if err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, experiments.LabelBalance(ds, env))
	}

	if which == "all" || which == "fig4" || which == "table3" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "training 4 optimizer configurations...")
		}
		runs, err := experiments.Fig4Table3(env, scale, ds)
		if err != nil {
			fatal(err)
		}
		emit("fig4_table3", experiments.RenderFig4(runs), runs)
		if which != "all" {
			return
		}
	}

	var net *nn.Network
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		// Versioned keeper-train checkpoint or legacy bare model; either
		// way the schema is verified against this binary's strategy space.
		net, _, err = policy.LoadCheckpoint(f, env.Device.Channels, env.Strategies)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "training the deployed model (Adam-logistic)...")
		}
		best, err := experiments.TrainBest(env, scale, ds)
		if err != nil {
			fatal(err)
		}
		net = best.Model
		if !*quiet {
			fmt.Fprintf(os.Stderr, "model accuracy on held-out data: %.1f%% (paper: 94.5%%)\n",
				100*best.History.FinalAcc)
			if eval, err := experiments.EvaluateModel(best.Model, best.TestSamples); err == nil {
				fmt.Fprintln(os.Stderr, eval.String())
			}
		}
	}

	if which == "all" || which == "table5" || which == "fig5" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "replaying Mix1..Mix4 under Shared/Isolated/SSDKeeper...")
		}
		reports, err := experiments.Fig5Table5(ctx, env, scale, net, *oracle)
		if err != nil {
			fatal(err)
		}
		emit("table5", experiments.RenderTable5(reports), nil)
		emit("fig5", experiments.RenderFig5(reports), reports)
	}
	if which == "all" || which == "fig6" {
		cells, err := experiments.Fig6(env, scale, net)
		if err != nil {
			fatal(err)
		}
		emit("fig6", experiments.RenderFig6(cells), cells)
	}
	if which == "all" || which == "healthtraj" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running the die-failure trajectory (static vs keeper)...")
		}
		traj, err := experiments.HealthTrajectory(ctx, env, scale, net)
		if err != nil {
			fatal(err)
		}
		emit("healthtraj", traj.Render(), traj)
	}
}

func pickScale(name string) (experiments.Scale, error) {
	switch strings.ToLower(name) {
	case "quick":
		return experiments.QuickScale(), nil
	case "default", "":
		return experiments.DefaultScale(), nil
	case "paper":
		return experiments.PaperScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want quick, default, paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
