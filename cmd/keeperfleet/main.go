// Command keeperfleet is the fleet front end: a router that places tenants
// on ssdkeeperd nodes via a consistent-hash ring and proxies /io and
// /io/batch to each tenant's owner over the daemons' own wire protocol.
// Clients talk to one address; the fleet behind it can be rebalanced live —
// a tenant migration drains the tenant on its source node, replays the
// handoff batch on the target, and flips the ring override, losing and
// duplicating nothing.
//
// Endpoints: /io and /io/batch (proxied data plane), /fleet/status (JSON
// placement), POST /fleet/migrate?tenant=N&to=URL (manual migration),
// /metrics (fleet series), /healthz, /readyz.
//
// Usage:
//
//	keeperfleet -addr :8090 -nodes http://localhost:8081,http://localhost:8082,http://localhost:8083
//	keeperfleet -addr :8090 -nodes ... -rebalance          # auto-migrate hot tenants
//	keeperfleet -addr :8090 -nodes ... -gate-policy reject # 503+Retry-After during handoffs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ssdkeeper/internal/fleet"
	"ssdkeeper/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "router listen address")
		nodes      = flag.String("nodes", "", "comma-separated node base URLs (required)")
		wireNodes  = flag.String("wire-nodes", "", "comma-separated wire (host:port) addresses, parallel to -nodes; empty entries keep that node on HTTP. Enables the persistent framed data plane")
		wireConns  = flag.Int("wire-conns", 4, "persistent wire connections per node")
		wireListen = flag.String("wire-listen", "", "also serve the wire protocol to clients on this address (full wire path: client → router → node)")
		vnodes     = flag.Int("vnodes", 64, "virtual nodes per node on the ring")
		tenants    = flag.Int("tenants", 4, "tenant ID space routed")
		gatePolicy = flag.String("gate-policy", fleet.GateQueue, "migrating-tenant policy: queue or reject")
		gateWait   = flag.Duration("gate-wait", 15*time.Second, "max time a queued request waits for a migration")
		timeout    = flag.Duration("timeout", 60*time.Second, "per proxied request timeout")
		rebalance  = flag.Bool("rebalance", false, "enable the automatic rebalancer")
		probeEvery = flag.Duration("probe-every", 2*time.Second, "membership probe interval")
		balEvery   = flag.Duration("rebalance-every", 5*time.Second, "rebalancer decision interval")
		hotFactor  = flag.Float64("hot-factor", 1.5, "node is hot when its load exceeds hot-factor x fleet mean")
		minLoad    = flag.Uint64("min-load", 100, "minimum per-interval completions before a node counts as hot")
		quiet      = flag.Bool("q", false, "suppress startup output")
	)
	flag.Parse()

	list := splitNodes(*nodes)
	if len(list) == 0 {
		fatal(fmt.Errorf("need -nodes (comma-separated base URLs)"))
	}
	var wireList []string
	if *wireNodes != "" {
		wireList = splitWireNodes(*wireNodes)
		if len(wireList) != len(list) {
			fatal(fmt.Errorf("-wire-nodes has %d entries for %d nodes", len(wireList), len(list)))
		}
	}

	router, err := fleet.NewRouter(fleet.Config{
		Nodes:      list,
		VNodes:     *vnodes,
		Tenants:    *tenants,
		GatePolicy: *gatePolicy,
		GateWait:   *gateWait,
		ReqTimeout: *timeout,
		WireNodes:  wireList,
		WireConns:  *wireConns,
	})
	if err != nil {
		fatal(err)
	}
	defer router.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	members := fleet.NewMembership(list, *tenants, *probeEvery)
	router.SetMembership(members)
	go members.Run(ctx, *probeEvery)

	if *rebalance {
		rb := fleet.NewRebalancer(router, members)
		rb.HotFactor = *hotFactor
		rb.MinLoad = *minLoad
		rb.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "keeperfleet: "+format+"\n", args...)
		}
		go rb.Run(ctx, *balEvery)
	}

	srv := &http.Server{Addr: *addr, Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	var ws *wire.Server
	if *wireListen != "" {
		ln, err := net.Listen("tcp", *wireListen)
		if err != nil {
			fatal(err)
		}
		ws = wire.NewServer(router.WireBackend())
		go func() {
			if err := ws.Serve(ln); err != nil {
				errc <- err
			}
		}()
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "keeperfleet: routing %d tenants over %d nodes on %s (gate %s, rebalance %v, wire nodes %d)\n",
			*tenants, len(list), *addr, *gatePolicy, *rebalance, len(wireList))
		if *wireListen != "" {
			fmt.Fprintf(os.Stderr, "keeperfleet: wire listener on %s\n", *wireListen)
		}
		for t := 0; t < *tenants; t++ {
			fmt.Fprintf(os.Stderr, "keeperfleet:   tenant %d → %s\n", t, router.Owner(t))
		}
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	if ws != nil {
		ws.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "keeperfleet: stopped")
	}
}

func splitNodes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p), "/"))
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitWireNodes keeps empty entries: position i pairs with -nodes entry i,
// and an empty slot means that node stays on the HTTP data plane.
func splitWireNodes(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keeperfleet:", err)
	os.Exit(1)
}
