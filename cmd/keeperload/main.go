// Command keeperload drives an ssdkeeperd daemon with a multi-tenant
// workload and reports per-tenant latency percentiles. It supports closed-
// loop generation (a fixed worker pool, each worker submitting its next
// request as soon as the previous one answers — throughput finds its own
// level) and open-loop generation (requests fired at a fixed aggregate
// rate regardless of completions — the mode that exposes backpressure).
//
// -addr accepts one target or a comma-separated list: with several, requests
// round-robin across them (each a node, or several fleet routers) and the
// report breaks out per-node as well as aggregate percentiles.
//
// Usage:
//
//	keeperload -addr http://localhost:8080 -n 1000 -concurrency 32
//	keeperload -addr http://localhost:8081,http://localhost:8082 -n 5000
//	keeperload -mode open -iops 2000 -n 5000 -write-ratios 0.9,0.1,0.8,0.2
//	keeperload -n 1000 -json > result.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
)

type tenantReport struct {
	Tenant    int     `json:"tenant"`
	OK        uint64  `json:"ok"`
	Rejected  uint64  `json:"rejected"`
	Failed    uint64  `json:"failed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	WriteFrac float64 `json:"write_frac"`
}

type nodeReport struct {
	Addr     string  `json:"addr"`
	OK       uint64  `json:"ok"`
	Rejected uint64  `json:"rejected"`
	Failed   uint64  `json:"failed"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

type report struct {
	Mode        string         `json:"mode"`
	Requests    int            `json:"requests"`
	OK          uint64         `json:"ok"`
	Rejected    uint64         `json:"rejected"`
	Failed      uint64         `json:"failed"`
	WallSeconds float64        `json:"wall_seconds"`
	Throughput  float64        `json:"throughput_rps"`
	Tenants     []tenantReport `json:"tenants"`
	Nodes       []nodeReport   `json:"nodes,omitempty"`
}

// tenantStats accumulates one tenant's outcomes; counters are guarded by mu
// because many workers share a tenant.
type tenantStats struct {
	mu       sync.Mutex
	ok       uint64
	rejected uint64
	failed   uint64
	writes   uint64
	hist     stats.Histogram
	maxLat   sim.Time
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "daemon base URL, or a comma-separated list to round-robin across")
		mode     = flag.String("mode", "closed", "closed (worker pool) or open (fixed rate)")
		n        = flag.Int("n", 1000, "total requests")
		workers  = flag.Int("concurrency", 32, "closed-loop worker count (also bounds open-loop in-flight)")
		conns    = flag.Int("conns", 0, "idle connections kept to the daemon (0: match -concurrency)")
		spread   = flag.Bool("spread", false, "set a distinct shard key per request, spreading tenants across daemon shards")
		iops     = flag.Float64("iops", 2000, "open-loop aggregate arrival rate (req/s, wall)")
		tenants  = flag.Int("tenants", 4, "tenant count")
		ratios   = flag.String("write-ratios", "", "per-tenant write ratios, comma-separated (default 0.5 each)")
		size     = flag.Int("size", 16*1024, "request size in bytes")
		maxBytes = flag.Int64("max-bytes", 64<<20, "per-tenant address space to spread offsets over")
		seed     = flag.Int64("seed", 1, "workload seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		asJSON   = flag.Bool("json", false, "write the report as JSON to stdout")
	)
	flag.Parse()

	writeRatio, err := parseRatios(*ratios, *tenants)
	if err != nil {
		fatal(err)
	}
	if *tenants < 1 || *n < 1 || *workers < 1 {
		fatal(fmt.Errorf("need positive -tenants, -n, -concurrency"))
	}
	addrs := parseAddrs(*addr)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("need at least one -addr target"))
	}

	// Pre-generate the request stream so both modes replay the identical
	// sequence for a given seed.
	rng := rand.New(rand.NewSource(*seed))
	pages := *maxBytes / int64(*size)
	if pages < 1 {
		pages = 1
	}
	reqs := make([]serve.Request, *n)
	for i := range reqs {
		t := i % *tenants
		op := trace.Read
		if rng.Float64() < writeRatio[t] {
			op = trace.Write
		}
		reqs[i] = serve.Request{
			Tenant: t,
			Op:     op,
			Offset: rng.Int63n(pages) * int64(*size),
			Size:   *size,
		}
		if *spread {
			reqs[i].Key = uint64(i + 1)
		}
	}

	// A dedicated transport with a connection pool sized to the worker count:
	// the default transport caps idle connections per host at 2, so a large
	// -concurrency would otherwise churn through TCP handshakes mid-run.
	nc := *conns
	if nc <= 0 {
		nc = *workers
	}
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        nc,
			MaxIdleConnsPerHost: nc,
			MaxConnsPerHost:     nc,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	perTenant := make([]*tenantStats, *tenants)
	for i := range perTenant {
		perTenant[i] = &tenantStats{}
	}
	// Per-target stats: request i round-robins to addrs[i % len(addrs)], so
	// with several targets each sees the same tenant mix.
	perNode := make([]*tenantStats, len(addrs))
	for i := range perNode {
		perNode[i] = &tenantStats{}
	}
	target := func(i int) (string, *tenantStats) {
		return addrs[i%len(addrs)], perNode[i%len(addrs)]
	}

	start := time.Now()
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		// Workers pull the next unsent request; each submits synchronously.
		next := make(chan int, *workers)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					req := reqs[i]
					base, ns := target(i)
					submit(client, base, req, perTenant[req.Tenant], ns)
				}
			}()
		}
		for i := range reqs {
			next <- i
		}
		close(next)
	case "open":
		if *iops <= 0 {
			fatal(fmt.Errorf("open loop needs positive -iops"))
		}
		gap := time.Duration(float64(time.Second) / *iops)
		sem := make(chan struct{}, *workers)
		tick := time.NewTicker(gap)
		defer tick.Stop()
		for i := range reqs {
			<-tick.C
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				req := reqs[i]
				base, ns := target(i)
				submit(client, base, req, perTenant[req.Tenant], ns)
			}(i)
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	wg.Wait()
	wall := time.Since(start)

	rep := report{Mode: *mode, Requests: *n, WallSeconds: wall.Seconds()}
	for t, ts := range perTenant {
		rep.OK += ts.ok
		rep.Rejected += ts.rejected
		rep.Failed += ts.failed
		rep.Tenants = append(rep.Tenants, tenantReport{
			Tenant:    t,
			OK:        ts.ok,
			Rejected:  ts.rejected,
			Failed:    ts.failed,
			P50Ms:     ms(ts.hist.P50()),
			P99Ms:     ms(ts.hist.P99()),
			MaxMs:     ms(ts.maxLat),
			WriteFrac: writeRatio[t],
		})
	}
	if wall > 0 {
		rep.Throughput = float64(rep.OK) / wall.Seconds()
	}
	if len(addrs) > 1 {
		for i, a := range addrs {
			ns := perNode[i]
			rep.Nodes = append(rep.Nodes, nodeReport{
				Addr:     a,
				OK:       ns.ok,
				Rejected: ns.rejected,
				Failed:   ns.failed,
				P50Ms:    ms(ns.hist.P50()),
				P99Ms:    ms(ns.hist.P99()),
			})
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%s loop: %d ok, %d rejected, %d failed in %.2fs (%.0f req/s)\n",
			rep.Mode, rep.OK, rep.Rejected, rep.Failed, rep.WallSeconds, rep.Throughput)
		for _, tr := range rep.Tenants {
			fmt.Printf("  tenant %d (w=%.2f): ok %d rej %d, p50 %.3fms p99 %.3fms max %.3fms\n",
				tr.Tenant, tr.WriteFrac, tr.OK, tr.Rejected, tr.P50Ms, tr.P99Ms, tr.MaxMs)
		}
		for _, nr := range rep.Nodes {
			fmt.Printf("  node %s: ok %d rej %d fail %d, p50 %.3fms p99 %.3fms\n",
				nr.Addr, nr.OK, nr.Rejected, nr.Failed, nr.P50Ms, nr.P99Ms)
		}
	}
	if rep.OK == 0 {
		fatal(fmt.Errorf("no request succeeded"))
	}
}

// submit POSTs one request and records its outcome under both the tenant's
// and the target node's accumulators. Reported latency is the daemon's
// simulated response latency (queue wait included), not the HTTP round
// trip, so percentiles describe the device under the configured
// acceleration rather than loopback networking.
func submit(client *http.Client, base string, req serve.Request, ts, ns *tenantStats) {
	var body string
	if req.Key != 0 {
		body = fmt.Sprintf(`{"tenant":%d,"op":"%s","offset":%d,"size":%d,"key":%d}`,
			req.Tenant, opName(req.Op), req.Offset, req.Size, req.Key)
	} else {
		body = fmt.Sprintf(`{"tenant":%d,"op":"%s","offset":%d,"size":%d}`,
			req.Tenant, opName(req.Op), req.Offset, req.Size)
	}
	resp, err := client.Post(base+"/io", "application/json", strings.NewReader(body))
	if err != nil {
		recordFail(ts)
		recordFail(ns)
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))

	switch {
	case resp.StatusCode == http.StatusOK:
		var jr struct {
			LatencyNS int64 `json:"latency_ns"`
		}
		if err := json.Unmarshal(data, &jr); err != nil {
			recordFail(ts)
			recordFail(ns)
			return
		}
		lat := sim.Time(jr.LatencyNS)
		recordOK(ts, lat, req.Op == trace.Write)
		recordOK(ns, lat, req.Op == trace.Write)
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		recordRej(ts)
		recordRej(ns)
	default:
		recordFail(ts)
		recordFail(ns)
	}
}

func recordOK(s *tenantStats, lat sim.Time, isWrite bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ok++
	if isWrite {
		s.writes++
	}
	s.hist.Add(lat)
	if lat > s.maxLat {
		s.maxLat = lat
	}
}

func recordRej(s *tenantStats) {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func recordFail(s *tenantStats) {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

func opName(op trace.Op) string {
	if op == trace.Write {
		return "write"
	}
	return "read"
}

func ms(t sim.Time) float64 { return float64(t) / 1e6 }

// parseRatios expands "-write-ratios 0.9,0.1" to one ratio per tenant
// (missing entries default to 0.5).
func parseRatios(s string, tenants int) ([]float64, error) {
	out := make([]float64, tenants)
	for i := range out {
		out[i] = 0.5
	}
	if s == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > tenants {
		return nil, fmt.Errorf("%d write ratios for %d tenants", len(parts), tenants)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad write ratio %q: %w", p, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("write ratio %v outside [0,1]", v)
		}
		out[i] = v
	}
	return out, nil
}

// parseAddrs splits "-addr a,b,c" into trimmed base URLs.
func parseAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSuffix(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keeperload:", err)
	os.Exit(1)
}
