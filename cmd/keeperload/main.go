// Command keeperload drives an ssdkeeperd daemon (or a keeperfleet router)
// with a multi-tenant workload and reports per-tenant latency percentiles.
// It supports closed-loop generation (a fixed worker pool, each worker
// submitting its next request as soon as the previous one answers —
// throughput finds its own level) and open-loop generation (requests fired
// at a fixed aggregate rate regardless of completions — the mode that
// exposes backpressure).
//
// -addr accepts one target or a comma-separated list: with several, requests
// round-robin across them (each a node, or several fleet routers) and the
// report breaks out per-node as well as aggregate percentiles.
//
// Two transports: the default is HTTP (POST /io, or /io/batch with -batch);
// -wire speaks the persistent framed wire protocol instead, in which case
// the -addr targets are wire listener host:port addresses (a node's
// -wire-listen, or a router's). With -batch N over wire, each chunk of N
// requests is pipelined onto one connection and the replies collected out
// of band.
//
// -via labels what -addr points at (router or direct); when -direct gives
// the nodes' own addresses, the identical workload is replayed against them
// after the main pass and the report includes the router's overhead — the
// wall-clock round-trip p99 through the router minus the direct p99. (The
// simulated device latency is transport-independent, so router overhead is
// only visible in round-trip time.)
//
// Usage:
//
//	keeperload -addr http://localhost:8080 -n 1000 -concurrency 32
//	keeperload -addr http://localhost:8081,http://localhost:8082 -n 5000
//	keeperload -mode open -iops 2000 -n 5000 -write-ratios 0.9,0.1,0.8,0.2
//	keeperload -wire -addr localhost:9090 -n 10000            # router wire listener
//	keeperload -wire -addr localhost:9090 -direct localhost:9081,localhost:9082
//	keeperload -n 1000 -json > result.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/wire"
)

type tenantReport struct {
	Tenant    int     `json:"tenant"`
	OK        uint64  `json:"ok"`
	Rejected  uint64  `json:"rejected"`
	Failed    uint64  `json:"failed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	WriteFrac float64 `json:"write_frac"`
}

type nodeReport struct {
	Addr     string  `json:"addr"`
	OK       uint64  `json:"ok"`
	Rejected uint64  `json:"rejected"`
	Failed   uint64  `json:"failed"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

type report struct {
	Mode        string         `json:"mode"`
	Transport   string         `json:"transport"`
	Via         string         `json:"via,omitempty"`
	Batch       int            `json:"batch,omitempty"`
	Requests    int            `json:"requests"`
	OK          uint64         `json:"ok"`
	Rejected    uint64         `json:"rejected"`
	Failed      uint64         `json:"failed"`
	WallSeconds float64        `json:"wall_seconds"`
	Throughput  float64        `json:"throughput_rps"`
	RTTP50Ms    float64        `json:"rtt_p50_ms"`
	RTTP99Ms    float64        `json:"rtt_p99_ms"`
	Tenants     []tenantReport `json:"tenants"`
	Nodes       []nodeReport   `json:"nodes,omitempty"`
	// Direct is the replay of the same workload against -direct targets;
	// RouterOverheadP99Ms is this run's RTT p99 minus the direct pass's.
	Direct              *report `json:"direct,omitempty"`
	RouterOverheadP99Ms float64 `json:"router_overhead_p99_ms,omitempty"`
}

// tenantStats accumulates one tenant's outcomes; counters are guarded by mu
// because many workers share a tenant.
type tenantStats struct {
	mu       sync.Mutex
	ok       uint64
	rejected uint64
	failed   uint64
	writes   uint64
	hist     stats.Histogram
	maxLat   sim.Time
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "target base URL (or wire host:port with -wire), comma-separated to round-robin")
		mode      = flag.String("mode", "closed", "closed (worker pool) or open (fixed rate)")
		n         = flag.Int("n", 1000, "total requests")
		workers   = flag.Int("concurrency", 32, "closed-loop worker count (also bounds open-loop in-flight)")
		conns     = flag.Int("conns", 0, "idle HTTP connections kept to the daemon (0: match -concurrency)")
		useWire   = flag.Bool("wire", false, "drive the persistent framed wire protocol instead of HTTP (-addr entries are host:port)")
		wireConns = flag.Int("wire-conns", 4, "persistent wire connections per target")
		via       = flag.String("via", "router", "what -addr points at, router or direct (report label)")
		direct    = flag.String("direct", "", "node addresses for a second direct pass; reports router overhead (router RTT p99 - direct RTT p99)")
		batch     = flag.Int("batch", 1, "requests per batch: >1 drives /io/batch (HTTP) or pipelined chunks (wire)")
		spread    = flag.Bool("spread", false, "set a distinct shard key per request, spreading tenants across daemon shards")
		iops      = flag.Float64("iops", 2000, "open-loop aggregate arrival rate (req/s, wall)")
		tenants   = flag.Int("tenants", 4, "tenant count")
		ratios    = flag.String("write-ratios", "", "per-tenant write ratios, comma-separated (default 0.5 each)")
		size      = flag.Int("size", 16*1024, "request size in bytes")
		maxBytes  = flag.Int64("max-bytes", 64<<20, "per-tenant address space to spread offsets over")
		seed      = flag.Int64("seed", 1, "workload seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		asJSON    = flag.Bool("json", false, "write the report as JSON to stdout")
	)
	flag.Parse()

	writeRatio, err := parseRatios(*ratios, *tenants)
	if err != nil {
		fatal(err)
	}
	if *tenants < 1 || *n < 1 || *workers < 1 || *batch < 1 {
		fatal(fmt.Errorf("need positive -tenants, -n, -concurrency, -batch"))
	}
	if *via != "router" && *via != "direct" {
		fatal(fmt.Errorf("-via must be router or direct"))
	}
	addrs := parseAddrs(*addr)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("need at least one -addr target"))
	}

	// Pre-generate the request stream so both modes (and the optional direct
	// pass) replay the identical sequence for a given seed.
	rng := rand.New(rand.NewSource(*seed))
	pages := *maxBytes / int64(*size)
	if pages < 1 {
		pages = 1
	}
	reqs := make([]serve.Request, *n)
	for i := range reqs {
		t := i % *tenants
		op := trace.Read
		if rng.Float64() < writeRatio[t] {
			op = trace.Write
		}
		reqs[i] = serve.Request{
			Tenant: t,
			Op:     op,
			Offset: rng.Int63n(pages) * int64(*size),
			Size:   *size,
		}
		if *spread {
			reqs[i].Key = uint64(i + 1)
		}
	}

	// A dedicated transport with a connection pool sized to the worker count:
	// the default transport caps idle connections per host at 2, so a large
	// -concurrency would otherwise churn through TCP handshakes mid-run.
	nc := *conns
	if nc <= 0 {
		nc = *workers
	}
	r := &runner{
		reqs:    reqs,
		mode:    *mode,
		workers: *workers,
		iops:    *iops,
		batch:   *batch,
		timeout: *timeout,
		useWire: *useWire,
		wconns:  *wireConns,
		tenants: *tenants,
		client: &http.Client{
			Timeout: *timeout,
			Transport: &http.Transport{
				MaxIdleConns:        nc,
				MaxIdleConnsPerHost: nc,
				MaxConnsPerHost:     nc,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}

	rep := r.run(addrs)
	rep.Via = *via
	for t := range rep.Tenants {
		rep.Tenants[t].WriteFrac = writeRatio[t]
	}
	if *direct != "" {
		dr := r.run(parseAddrs(*direct))
		dr.Via = "direct"
		for t := range dr.Tenants {
			dr.Tenants[t].WriteFrac = writeRatio[t]
		}
		rep.Direct = &dr
		rep.RouterOverheadP99Ms = rep.RTTP99Ms - dr.RTTP99Ms
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		printReport(&rep)
		if rep.Direct != nil {
			fmt.Printf("direct pass:\n")
			printReport(rep.Direct)
			fmt.Printf("router overhead: rtt p99 %+.3fms (router %.3fms - direct %.3fms)\n",
				rep.RouterOverheadP99Ms, rep.RTTP99Ms, rep.Direct.RTTP99Ms)
		}
	}
	if rep.OK == 0 {
		fatal(fmt.Errorf("no request succeeded"))
	}
}

func printReport(rep *report) {
	batch := ""
	if rep.Batch > 1 {
		batch = fmt.Sprintf(", batch %d", rep.Batch)
	}
	fmt.Printf("%s loop over %s via %s%s: %d ok, %d rejected, %d failed in %.2fs (%.0f req/s)\n",
		rep.Mode, rep.Transport, rep.Via, batch, rep.OK, rep.Rejected, rep.Failed, rep.WallSeconds, rep.Throughput)
	fmt.Printf("  round trip: p50 %.3fms p99 %.3fms\n", rep.RTTP50Ms, rep.RTTP99Ms)
	for _, tr := range rep.Tenants {
		fmt.Printf("  tenant %d (w=%.2f): ok %d rej %d, p50 %.3fms p99 %.3fms max %.3fms\n",
			tr.Tenant, tr.WriteFrac, tr.OK, tr.Rejected, tr.P50Ms, tr.P99Ms, tr.MaxMs)
	}
	for _, nr := range rep.Nodes {
		fmt.Printf("  node %s: ok %d rej %d fail %d, p50 %.3fms p99 %.3fms\n",
			nr.Addr, nr.OK, nr.Rejected, nr.Failed, nr.P50Ms, nr.P99Ms)
	}
}

// runner executes the pre-generated request stream against one target set.
// The same runner runs the main pass and the optional -direct pass so the
// two are comparable request for request.
type runner struct {
	reqs    []serve.Request
	mode    string
	workers int
	iops    float64
	batch   int
	timeout time.Duration
	useWire bool
	wconns  int
	tenants int
	client  *http.Client
}

func (r *runner) run(addrs []string) report {
	if len(addrs) == 0 {
		fatal(fmt.Errorf("need at least one target address"))
	}
	perTenant := make([]*tenantStats, r.tenants)
	for i := range perTenant {
		perTenant[i] = &tenantStats{}
	}
	// Per-target stats: chunk c round-robins to addrs[c % len(addrs)], so
	// with several targets each sees the same tenant mix.
	perNode := make([]*tenantStats, len(addrs))
	for i := range perNode {
		perNode[i] = &tenantStats{}
	}
	// rtt accumulates the wall-clock round trip of every chunk that got at
	// least one reply through — the transport- and router-sensitive number,
	// unlike the simulated device latency in the per-tenant percentiles.
	rtt := &tenantStats{}

	var wcs []*wire.Client
	if r.useWire {
		wcs = make([]*wire.Client, len(addrs))
		for i, a := range addrs {
			wcs[i] = wire.NewClient(wireAddr(a), r.wconns)
		}
		defer func() {
			for _, wc := range wcs {
				wc.Close()
			}
		}()
	}

	submitChunk := func(lo, hi, k int) {
		t0 := time.Now()
		var anyOK bool
		switch {
		case r.useWire && hi-lo == 1:
			anyOK = r.wireOne(wcs[k], r.reqs[lo], perTenant, perNode[k])
		case r.useWire:
			anyOK = r.wireBatch(wcs[k], lo, hi, perTenant, perNode[k])
		case hi-lo == 1:
			anyOK = r.httpOne(addrs[k], r.reqs[lo], perTenant, perNode[k])
		default:
			anyOK = r.httpBatch(addrs[k], lo, hi, perTenant, perNode[k])
		}
		if anyOK {
			recordRTT(rtt, time.Since(t0))
		}
	}
	nchunks := (len(r.reqs) + r.batch - 1) / r.batch

	start := time.Now()
	var wg sync.WaitGroup
	switch r.mode {
	case "closed":
		// Workers pull the next unsent chunk; each submits synchronously.
		next := make(chan int, r.workers)
		for w := 0; w < r.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range next {
					lo := c * r.batch
					hi := min(lo+r.batch, len(r.reqs))
					submitChunk(lo, hi, c%len(addrs))
				}
			}()
		}
		for c := 0; c < nchunks; c++ {
			next <- c
		}
		close(next)
	case "open":
		if r.iops <= 0 {
			fatal(fmt.Errorf("open loop needs positive -iops"))
		}
		// One tick per chunk keeps the aggregate request rate at -iops.
		gap := time.Duration(float64(time.Second) * float64(r.batch) / r.iops)
		sem := make(chan struct{}, r.workers)
		tick := time.NewTicker(gap)
		defer tick.Stop()
		for c := 0; c < nchunks; c++ {
			<-tick.C
			sem <- struct{}{}
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				defer func() { <-sem }()
				lo := c * r.batch
				hi := min(lo+r.batch, len(r.reqs))
				submitChunk(lo, hi, c%len(addrs))
			}(c)
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", r.mode))
	}
	wg.Wait()
	wall := time.Since(start)

	rep := report{Mode: r.mode, Transport: "http", Requests: len(r.reqs), WallSeconds: wall.Seconds()}
	if r.useWire {
		rep.Transport = "wire"
	}
	if r.batch > 1 {
		rep.Batch = r.batch
	}
	for t, ts := range perTenant {
		rep.OK += ts.ok
		rep.Rejected += ts.rejected
		rep.Failed += ts.failed
		rep.Tenants = append(rep.Tenants, tenantReport{
			Tenant:   t,
			OK:       ts.ok,
			Rejected: ts.rejected,
			Failed:   ts.failed,
			P50Ms:    ms(ts.hist.P50()),
			P99Ms:    ms(ts.hist.P99()),
			MaxMs:    ms(ts.maxLat),
		})
	}
	if wall > 0 {
		rep.Throughput = float64(rep.OK) / wall.Seconds()
	}
	rep.RTTP50Ms = ms(rtt.hist.P50())
	rep.RTTP99Ms = ms(rtt.hist.P99())
	if len(addrs) > 1 {
		for i, a := range addrs {
			ns := perNode[i]
			rep.Nodes = append(rep.Nodes, nodeReport{
				Addr:     a,
				OK:       ns.ok,
				Rejected: ns.rejected,
				Failed:   ns.failed,
				P50Ms:    ms(ns.hist.P50()),
				P99Ms:    ms(ns.hist.P99()),
			})
		}
	}
	return rep
}

// httpOne POSTs one request and records its outcome under both the tenant's
// and the target node's accumulators. Reported latency is the daemon's
// simulated response latency (queue wait included), not the HTTP round
// trip, so percentiles describe the device under the configured
// acceleration rather than loopback networking; the round trip lands in the
// separate rtt histogram.
func (r *runner) httpOne(base string, req serve.Request, perTenant []*tenantStats, ns *tenantStats) bool {
	ts := perTenant[req.Tenant]
	var body string
	if req.Key != 0 {
		body = fmt.Sprintf(`{"tenant":%d,"op":"%s","offset":%d,"size":%d,"key":%d}`,
			req.Tenant, opName(req.Op), req.Offset, req.Size, req.Key)
	} else {
		body = fmt.Sprintf(`{"tenant":%d,"op":"%s","offset":%d,"size":%d}`,
			req.Tenant, opName(req.Op), req.Offset, req.Size)
	}
	resp, err := r.client.Post(base+"/io", "application/json", strings.NewReader(body))
	if err != nil {
		recordFail(ts)
		recordFail(ns)
		return false
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))

	switch {
	case resp.StatusCode == http.StatusOK:
		var jr struct {
			LatencyNS int64 `json:"latency_ns"`
		}
		if err := json.Unmarshal(data, &jr); err != nil {
			recordFail(ts)
			recordFail(ns)
			return false
		}
		lat := sim.Time(jr.LatencyNS)
		recordOK(ts, lat, req.Op == trace.Write)
		recordOK(ns, lat, req.Op == trace.Write)
		return true
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		recordRej(ts)
		recordRej(ns)
	default:
		recordFail(ts)
		recordFail(ns)
	}
	return false
}

// httpBatch POSTs reqs[lo:hi] as one /io/batch body and records each reply
// line against its request. Missing trailer lines (an upstream that died
// mid-batch) count as failures.
func (r *runner) httpBatch(base string, lo, hi int, perTenant []*tenantStats, ns *tenantStats) bool {
	var sb strings.Builder
	for i := lo; i < hi; i++ {
		sb.WriteString(serve.EncodeLine(r.reqs[i]))
		sb.WriteByte('\n')
	}
	resp, err := r.client.Post(base+"/io/batch", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		for i := lo; i < hi; i++ {
			recordFail(perTenant[r.reqs[i].Tenant])
			recordFail(ns)
		}
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		for i := lo; i < hi; i++ {
			recordFail(perTenant[r.reqs[i].Tenant])
			recordFail(ns)
		}
		return false
	}
	anyOK := false
	sc := bufio.NewScanner(resp.Body)
	i := lo
	for i < hi && sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		req := r.reqs[i]
		ts := perTenant[req.Tenant]
		if lat, ok := parseOKLine(line); ok {
			recordOK(ts, lat, req.Op == trace.Write)
			recordOK(ns, lat, req.Op == trace.Write)
			anyOK = true
		} else if reason, ok := parseRejLine(line); ok && rejection(reason) {
			recordRej(ts)
			recordRej(ns)
		} else {
			recordFail(ts)
			recordFail(ns)
		}
		i++
	}
	for ; i < hi; i++ {
		recordFail(perTenant[r.reqs[i].Tenant])
		recordFail(ns)
	}
	return anyOK
}

// wireOne issues one blocking wire call.
func (r *runner) wireOne(wc *wire.Client, req serve.Request, perTenant []*tenantStats, ns *tenantStats) bool {
	ts := perTenant[req.Tenant]
	latNS, _, reason, err := wc.Do(req, r.timeout)
	switch {
	case err != nil:
		recordFail(ts)
		recordFail(ns)
	case reason == "":
		recordOK(ts, sim.Time(latNS), req.Op == trace.Write)
		recordOK(ns, sim.Time(latNS), req.Op == trace.Write)
		return true
	case rejection(reason):
		recordRej(ts)
		recordRej(ns)
	default:
		recordFail(ts)
		recordFail(ns)
	}
	return false
}

// chunkOutcome is one pipelined call's result, written by the connection's
// read goroutine at its own index (the WaitGroup is the publication
// barrier).
type chunkOutcome struct {
	latNS  int64
	reason string
	err    error
}

type chunkObs struct {
	wg  sync.WaitGroup
	res []chunkOutcome
}

func (o *chunkObs) Done(tag uint64, latencyNS, _ int64, reason string, err error) {
	o.res[tag] = chunkOutcome{latNS: latencyNS, reason: reason, err: err}
	o.wg.Done()
}

// wireBatch pipelines reqs[lo:hi] onto the client and waits for every
// reply. A dead connection fails the remainder promptly through the
// client's sweep, so the wait cannot outlive the transport.
func (r *runner) wireBatch(wc *wire.Client, lo, hi int, perTenant []*tenantStats, ns *tenantStats) bool {
	n := hi - lo
	obs := &chunkObs{res: make([]chunkOutcome, n)}
	obs.wg.Add(n)
	for i := 0; i < n; i++ {
		if err := wc.Start(r.reqs[lo+i], uint64(i), obs); err != nil {
			obs.res[i] = chunkOutcome{err: err}
			obs.wg.Done()
		}
	}
	obs.wg.Wait()
	anyOK := false
	for i, o := range obs.res {
		req := r.reqs[lo+i]
		ts := perTenant[req.Tenant]
		switch {
		case o.err != nil:
			recordFail(ts)
			recordFail(ns)
		case o.reason == "":
			recordOK(ts, sim.Time(o.latNS), req.Op == trace.Write)
			recordOK(ns, sim.Time(o.latNS), req.Op == trace.Write)
			anyOK = true
		case rejection(o.reason):
			recordRej(ts)
			recordRej(ns)
		default:
			recordFail(ts)
			recordFail(ns)
		}
	}
	return anyOK
}

// rejection reports whether a reply reason counts as a rejection (the
// request reached a healthy admission path and was refused) rather than a
// failure — mirroring the HTTP mapping of 429/503 to rejected and
// everything else non-OK to failed.
func rejection(reason string) bool {
	return reason == "queue_full" || reason == "migrating" || reason == "draining"
}

// parseOKLine parses a batch reply "ok <latency_ns>".
func parseOKLine(line []byte) (sim.Time, bool) {
	if !bytes.HasPrefix(line, []byte("ok ")) {
		return 0, false
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(line[3:])), 10, 64)
	if err != nil {
		return 0, false
	}
	return sim.Time(v), true
}

// parseRejLine parses a batch reply "rej <reason>".
func parseRejLine(line []byte) (string, bool) {
	if !bytes.HasPrefix(line, []byte("rej ")) {
		return "", false
	}
	return string(bytes.TrimSpace(line[4:])), true
}

func recordOK(s *tenantStats, lat sim.Time, isWrite bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ok++
	if isWrite {
		s.writes++
	}
	s.hist.Add(lat)
	if lat > s.maxLat {
		s.maxLat = lat
	}
}

func recordRej(s *tenantStats) {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func recordFail(s *tenantStats) {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

func recordRTT(s *tenantStats, d time.Duration) {
	s.mu.Lock()
	s.hist.Add(sim.Time(d.Nanoseconds()))
	s.mu.Unlock()
}

func opName(op trace.Op) string {
	if op == trace.Write {
		return "write"
	}
	return "read"
}

func ms(t sim.Time) float64 { return float64(t) / 1e6 }

// parseRatios expands "-write-ratios 0.9,0.1" to one ratio per tenant
// (missing entries default to 0.5).
func parseRatios(s string, tenants int) ([]float64, error) {
	out := make([]float64, tenants)
	for i := range out {
		out[i] = 0.5
	}
	if s == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > tenants {
		return nil, fmt.Errorf("%d write ratios for %d tenants", len(parts), tenants)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad write ratio %q: %w", p, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("write ratio %v outside [0,1]", v)
		}
		out[i] = v
	}
	return out, nil
}

// parseAddrs splits "-addr a,b,c" into trimmed targets.
func parseAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSuffix(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// wireAddr strips a URL scheme if the caller passed one, leaving the
// host:port a wire client dials.
func wireAddr(a string) string {
	for _, scheme := range []string{"http://", "https://", "tcp://"} {
		a = strings.TrimPrefix(a, scheme)
	}
	return a
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keeperload:", err)
	os.Exit(1)
}
