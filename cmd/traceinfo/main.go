// Command traceinfo analyzes an MSR-format trace: global and per-tenant
// request mix, intensity over time, burstiness, and the feature vector
// SSDKeeper's collector would extract — useful for sanity-checking traces
// before feeding them to ssdsim or the keeper.
//
// Usage:
//
//	traceinfo -trace mix.csv
//	traceinfo -trace mix.csv -window 100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ssdkeeper/internal/features"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "MSR-format trace file (required)")
		window    = flag.Duration("window", 100*time.Millisecond, "intensity timeline bucket width")
		satIOPS   = flag.Float64("satiops", 16000, "saturation IOPS for intensity levels")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "traceinfo: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, tenants, err := trace.ReadMSR(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(tr) == 0 {
		fatal(fmt.Errorf("trace is empty"))
	}

	s := tr.Summarize()
	fmt.Printf("trace: %d requests over %v (%.0f req/s average)\n",
		s.Requests, s.Span, float64(s.Requests)/(float64(s.Span)/float64(sim.Second)))
	fmt.Printf("mix:   %.1f%% writes, %.1f%% reads, %.1f MiB transferred\n",
		100*s.WriteRatio, 100*s.ReadRatio, float64(s.Bytes)/(1<<20))

	// Per-tenant table.
	names := make([]string, s.Tenants)
	for host, id := range tenants {
		if id < len(names) {
			names[id] = host
		}
	}
	per := tr.PerTenant()
	ids := make([]int, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("\n%-4s %-12s %10s %8s %8s %12s\n", "id", "host", "requests", "writes", "share", "dominance")
	for _, id := range ids {
		ps := per[id]
		dom := "read"
		if ps.WriteRatio >= 0.5 {
			dom = "write"
		}
		name := ""
		if id < len(names) {
			name = names[id]
		}
		fmt.Printf("%-4d %-12s %10d %7.0f%% %7.1f%% %12s\n",
			id, name, ps.Requests, 100*ps.WriteRatio,
			100*float64(ps.Requests)/float64(s.Requests), dom)
	}

	// The feature vector SSDKeeper's collector would see over the whole
	// trace.
	col := features.NewCollector(*satIOPS, tr[0].Time)
	for _, r := range tr {
		col.Observe(r)
	}
	vec := col.Vector(tr[len(tr)-1].Time)
	fmt.Printf("\nSSDKeeper feature vector: %v\n", vec)

	// Intensity timeline + burstiness (coefficient of variation of
	// per-window counts; 1.0 is Poisson-like, higher is burstier).
	w := sim.Time(window.Nanoseconds())
	if w <= 0 {
		fatal(fmt.Errorf("window must be positive"))
	}
	wins := tr.Windows(w)
	counts := make([]int, len(wins))
	mean, sq := 0.0, 0.0
	peak := 0
	for i, ws := range wins {
		counts[i] = ws.Requests
		mean += float64(ws.Requests)
		if ws.Requests > peak {
			peak = ws.Requests
		}
	}
	n := float64(len(wins))
	mean /= n
	for _, c := range counts {
		d := float64(c) - mean
		sq += d * d
	}
	cv := 0.0
	if mean > 0 && n > 1 {
		cv = (sq / (n - 1)) / mean // index of dispersion
	}
	fmt.Printf("\nintensity timeline (%v windows): mean %.0f req/window, peak %d, dispersion %.1f\n",
		*window, mean, peak, cv)
	fmt.Println(sparkline(counts, 60))
}

// sparkline renders per-window counts as a coarse ASCII bar chart.
func sparkline(counts []int, width int) string {
	if len(counts) == 0 {
		return ""
	}
	step := 1
	if len(counts) > width {
		step = (len(counts) + width - 1) / width
	}
	peak := 0
	agg := []int{}
	for i := 0; i < len(counts); i += step {
		sum := 0
		for j := i; j < i+step && j < len(counts); j++ {
			sum += counts[j]
		}
		agg = append(agg, sum)
		if sum > peak {
			peak = sum
		}
	}
	levels := []rune(" .:-=+*#%@")
	out := make([]rune, len(agg))
	for i, v := range agg {
		idx := 0
		if peak > 0 {
			idx = v * (len(levels) - 1) / peak
		}
		out[i] = levels[idx]
	}
	return "[" + string(out) + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
