// Command keeper-train runs SSDKeeper's offline pipeline (Algorithm 1):
// synthesize mixed workloads, label each with the channel-allocation
// strategy that minimizes total latency on the simulator, train the
// classifier, and write the dataset and model artifacts that cmd/experiments
// and applications can reuse.
//
// Models are written as versioned checkpoints: the nn serialization wrapped
// in an envelope carrying the format version, training metadata, a
// feature-schema hash binding the file to the feature encoding and strategy
// space the binary was built with, and a content checksum. -inspect loads
// and verifies a checkpoint (exit 1 on schema mismatch or corruption)
// without training anything.
//
// Usage:
//
//	keeper-train -workloads 250 -requests 5000 -out model.json -dataset data.jsonl
//	keeper-train -dataset data.jsonl -reuse -out model.json   # retrain only
//	keeper-train -optimizer sgd-momentum -iterations 300 ...
//	keeper-train -inspect model.json                          # verify a checkpoint
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		workloads  = flag.Int("workloads", 250, "mixed workloads to label")
		requests   = flag.Int("requests", 5000, "requests per workload")
		iterations = flag.Int("iterations", 200, "training iterations (epochs)")
		batch      = flag.Int("batch", 32, "minibatch size")
		hidden     = flag.Int("hidden", 64, "hidden layer width")
		optName    = flag.String("optimizer", "adam", "adam, sgd, sgd-momentum, adagrad, rmsprop")
		actName    = flag.String("activation", "logistic", "hidden activation: logistic, relu, tanh")
		seed       = flag.Int64("seed", 1, "pipeline seed")
		outModel   = flag.String("out", "model.json", "model output path")
		outDataset = flag.String("dataset", "", "dataset path (written, or read with -reuse)")
		reuse      = flag.Bool("reuse", false, "load the dataset instead of generating it")
		name       = flag.String("name", "", "model name recorded in the checkpoint (default: -out base name)")
		quantize   = flag.Bool("quantize", false, "record int8 deployment precision in the checkpoint (weights stay float; consumers quantize at load) and report int8 accuracy")
		inspect    = flag.String("inspect", "", "verify a checkpoint against this binary's schema and exit")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	env := experiments.NewEnv()
	if *inspect != "" {
		if err := inspectCheckpoint(env, *inspect); err != nil {
			fatal(err)
		}
		return
	}
	scale := experiments.DefaultScale()
	scale.DatasetWorkloads = *workloads
	scale.DatasetRequests = *requests
	scale.TrainIterations = *iterations
	scale.TrainBatch = *batch
	scale.Seed = *seed

	var samples []dataset.Sample
	var err error
	if *reuse {
		if *outDataset == "" {
			fatal(fmt.Errorf("-reuse needs -dataset"))
		}
		f, err := os.Open(*outDataset)
		if err != nil {
			fatal(err)
		}
		samples, err = dataset.LoadSamples(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "loaded %d samples\n", len(samples))
		}
	} else {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "labelling %d workloads x %d strategies (%d requests each)...\n",
				scale.DatasetWorkloads, len(env.Strategies), scale.DatasetRequests)
		}
		samples, err = experiments.BuildDataset(ctx, env, scale, func(done, total int) {
			if !*quiet && done%25 == 0 {
				fmt.Fprintf(os.Stderr, "  %d/%d\n", done, total)
			}
		})
		if err != nil {
			fatal(err)
		}
		if *outDataset != "" {
			f, err := os.Create(*outDataset)
			if err != nil {
				fatal(err)
			}
			if err := dataset.Save(f, samples); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *outDataset)
			}
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, experiments.LabelBalance(samples, env))
	}

	act, err := nn.ActivationByName(*actName)
	if err != nil {
		fatal(err)
	}
	var opt nn.Optimizer
	switch *optName {
	case "adam":
		opt = nn.NewAdam(0.02)
	case "sgd":
		opt = nn.NewSGD(0.2)
	case "sgd-momentum":
		opt = nn.NewMomentum(0.2, 0.9)
	case "adagrad":
		opt = nn.NewAdaGrad(0)
	case "rmsprop":
		opt = nn.NewRMSProp(0, 0)
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *optName))
	}

	res, err := keeper.TrainOnSamples(keeper.TrainConfig{
		Dataset: dataset.Config{
			Device: env.Device, Options: env.Options, Strategies: env.Strategies,
			Workloads: scale.DatasetWorkloads, Requests: scale.DatasetRequests,
			MaxIOPS: env.SaturationIOPS, Season: env.Season, Seed: scale.Seed,
		},
		Hidden:     *hidden,
		Activation: act,
		Optimizer:  opt,
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, samples)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained %s/%s: loss %.3f, test accuracy %.1f%%, %dms\n",
		*optName, *actName, res.History.FinalLoss, 100*res.History.FinalAcc,
		res.History.TrainingTime.Milliseconds())
	if eval, err := experiments.EvaluateModel(res.Model, res.TestSamples); err == nil {
		fmt.Fprintln(os.Stderr, eval.String())
	}
	if *quantize {
		if eval, err := experiments.EvaluateModel(res.Model.Quantized(nn.Int8), res.TestSamples); err == nil {
			fmt.Fprintf(os.Stderr, "int8 deployment: %s\n", eval.String())
		}
	}

	modelName := *name
	if modelName == "" {
		modelName = strings.TrimSuffix(filepath.Base(*outModel), ".json")
	}
	meta := policy.Meta{
		Name:       modelName,
		TrainedAt:  time.Now().UTC().Format(time.RFC3339),
		Samples:    len(samples),
		Iterations: scale.TrainIterations,
		Optimizer:  *optName,
		Activation: *actName,
		Loss:       res.History.FinalLoss,
		Accuracy:   res.History.FinalAcc,
	}
	f, err := os.Create(*outModel)
	if err != nil {
		fatal(err)
	}
	prec := nn.Float64
	if *quantize {
		prec = nn.Int8
	}
	if err := policy.SaveCheckpointPrecision(f, res.Model, meta, env.Device.Channels, env.Strategies, prec); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (checkpoint format %d, schema %s, precision %s)\n",
		*outModel, policy.FormatVersion, policy.SchemaHash(env.Device.Channels, env.Strategies), prec)
}

// inspectCheckpoint loads and verifies one checkpoint against the schema
// this binary was built with. Any mismatch (format, schema hash, checksum,
// geometry) is fatal: the deploy pipeline uses the exit status as its gate.
func inspectCheckpoint(env experiments.Env, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, meta, prec, err := policy.LoadCheckpointPrecision(f, env.Device.Channels, env.Strategies)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: ok\n", path)
	fmt.Printf("  schema      %s\n", policy.SchemaHash(env.Device.Channels, env.Strategies))
	fmt.Printf("  geometry    %d -> %d classes (%d params)\n", net.InputDim(), net.OutputDim(), net.ParamCount())
	fmt.Printf("  precision   %s\n", prec)
	if meta.Name != "" {
		fmt.Printf("  name        %s\n", meta.Name)
	}
	if meta.TrainedAt != "" {
		fmt.Printf("  trained_at  %s\n", meta.TrainedAt)
	}
	if meta.Samples > 0 {
		fmt.Printf("  training    %d samples, %d iterations, %s/%s\n",
			meta.Samples, meta.Iterations, meta.Optimizer, meta.Activation)
		fmt.Printf("  eval        loss %.3f, test accuracy %.1f%%\n", meta.Loss, 100*meta.Accuracy)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keeper-train:", err)
	os.Exit(1)
}
