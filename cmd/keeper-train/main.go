// Command keeper-train runs SSDKeeper's offline pipeline (Algorithm 1):
// synthesize mixed workloads, label each with the channel-allocation
// strategy that minimizes total latency on the simulator, train the
// classifier, and write the dataset and model artifacts that cmd/experiments
// and applications can reuse.
//
// Models are written as versioned checkpoints: the nn serialization wrapped
// in an envelope carrying the format version, training metadata, a
// feature-schema hash binding the file to the feature encoding and strategy
// space the binary was built with, and a content checksum. -inspect loads
// and verifies a checkpoint (exit 1 on schema mismatch or corruption)
// without training anything.
//
// Usage:
//
//	keeper-train -workloads 250 -requests 5000 -out model.json -dataset data.jsonl
//	keeper-train -dataset data.jsonl -reuse -out model.json   # retrain only
//	keeper-train -optimizer sgd-momentum -iterations 300 ...
//	keeper-train -inspect model.json                          # verify a checkpoint
//
// With -follow, keeper-train becomes the sidecar half of the continuous
// learner instead: it polls a running ssdkeeperd's /learn/samples export,
// retrains on the live outcome feed, writes candidates into the shared
// -model-dir, and drives shadow installs and promotions through the daemon's
// /model/reload endpoint:
//
//	keeper-train -follow http://127.0.0.1:8080 -model-dir models/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		workloads  = flag.Int("workloads", 250, "mixed workloads to label")
		faultFrac  = flag.Float64("fault-fraction", 0, "share of workloads labelled under a synthesized device fault plan [0,1]")
		requests   = flag.Int("requests", 5000, "requests per workload")
		iterations = flag.Int("iterations", 200, "training iterations (epochs)")
		batch      = flag.Int("batch", 32, "minibatch size")
		hidden     = flag.Int("hidden", 64, "hidden layer width")
		optName    = flag.String("optimizer", "adam", "adam, sgd, sgd-momentum, adagrad, rmsprop")
		actName    = flag.String("activation", "logistic", "hidden activation: logistic, relu, tanh")
		seed       = flag.Int64("seed", 1, "pipeline seed")
		outModel   = flag.String("out", "model.json", "model output path")
		outDataset = flag.String("dataset", "", "dataset path (written, or read with -reuse)")
		reuse      = flag.Bool("reuse", false, "load the dataset instead of generating it")
		name       = flag.String("name", "", "model name recorded in the checkpoint (default: -out base name)")
		quantize   = flag.Bool("quantize", false, "record int8 deployment precision in the checkpoint (weights stay float; consumers quantize at load) and report int8 accuracy")
		inspect    = flag.String("inspect", "", "verify a checkpoint against this binary's schema and exit")
		quiet      = flag.Bool("q", false, "suppress progress output")

		follow     = flag.String("follow", "", "sidecar mode: base URL of a running ssdkeeperd to learn from")
		modelDir   = flag.String("model-dir", "", "checkpoint registry shared with the daemon (required with -follow)")
		followInt  = flag.Duration("follow-interval", time.Second, "sample poll and learner step interval")
		learnMin   = flag.Int("learn-min-samples", 64, "outcome samples before the first retrain")
		learnEvery = flag.Int("learn-retrain-every", 64, "new outcome samples between retrains")
		learnEpoch = flag.Int("learn-min-epochs", 8, "shadow decisions before the promotion gate rules")
		learnAgree = flag.Float64("learn-agree", 0, "min shadow agreement ratio to promote")
		learnComp  = flag.Int("learn-min-comparable", 0, "comparable outcomes the gate's regret estimate needs")
		learnDem   = flag.Float64("learn-demote-margin", 0.10, "relative regret growth that demotes a promotion")
		modelKeep  = flag.Int("model-keep", 8, "checkpoints to keep in the registry (0: no GC)")
	)
	flag.Parse()

	env := experiments.NewEnv()
	if *inspect != "" {
		if err := inspectCheckpoint(env, *inspect); err != nil {
			fatal(err)
		}
		return
	}
	if *follow != "" {
		if err := followDaemon(ctx, env, followConfig{
			base: *follow, modelDir: *modelDir, interval: *followInt,
			seed: *seed, hidden: *hidden, iterations: *iterations, batch: *batch,
			minSamples: *learnMin, retrainEvery: *learnEvery,
			minEpochs: *learnEpoch, agreeMin: *learnAgree, minComparable: *learnComp,
			demoteMargin: *learnDem, keep: *modelKeep, quiet: *quiet,
		}); err != nil {
			fatal(err)
		}
		return
	}
	scale := experiments.DefaultScale()
	scale.DatasetWorkloads = *workloads
	scale.DatasetRequests = *requests
	scale.TrainIterations = *iterations
	scale.TrainBatch = *batch
	scale.FaultFraction = *faultFrac
	scale.Seed = *seed

	var samples []dataset.Sample
	var err error
	if *reuse {
		if *outDataset == "" {
			fatal(fmt.Errorf("-reuse needs -dataset"))
		}
		f, err := os.Open(*outDataset)
		if err != nil {
			fatal(err)
		}
		samples, err = dataset.LoadSamples(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "loaded %d samples\n", len(samples))
		}
	} else {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "labelling %d workloads x %d strategies (%d requests each)...\n",
				scale.DatasetWorkloads, len(env.Strategies), scale.DatasetRequests)
		}
		samples, err = experiments.BuildDataset(ctx, env, scale, func(done, total int) {
			if !*quiet && done%25 == 0 {
				fmt.Fprintf(os.Stderr, "  %d/%d\n", done, total)
			}
		})
		if err != nil {
			fatal(err)
		}
		if *outDataset != "" {
			f, err := os.Create(*outDataset)
			if err != nil {
				fatal(err)
			}
			if err := dataset.Save(f, samples); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *outDataset)
			}
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, experiments.LabelBalance(samples, env))
	}

	act, err := nn.ActivationByName(*actName)
	if err != nil {
		fatal(err)
	}
	var opt nn.Optimizer
	switch *optName {
	case "adam":
		opt = nn.NewAdam(0.02)
	case "sgd":
		opt = nn.NewSGD(0.2)
	case "sgd-momentum":
		opt = nn.NewMomentum(0.2, 0.9)
	case "adagrad":
		opt = nn.NewAdaGrad(0)
	case "rmsprop":
		opt = nn.NewRMSProp(0, 0)
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *optName))
	}

	res, err := keeper.TrainOnSamples(keeper.TrainConfig{
		Dataset: dataset.Config{
			Device: env.Device, Options: env.Options, Strategies: env.Strategies,
			Workloads: scale.DatasetWorkloads, Requests: scale.DatasetRequests,
			MaxIOPS: env.SaturationIOPS, Season: env.Season,
			FaultFraction: scale.FaultFraction, Seed: scale.Seed,
		},
		Hidden:     *hidden,
		Activation: act,
		Optimizer:  opt,
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, samples)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained %s/%s: loss %.3f, test accuracy %.1f%%, %dms\n",
		*optName, *actName, res.History.FinalLoss, 100*res.History.FinalAcc,
		res.History.TrainingTime.Milliseconds())
	if eval, err := experiments.EvaluateModel(res.Model, res.TestSamples); err == nil {
		fmt.Fprintln(os.Stderr, eval.String())
	}
	if *quantize {
		if eval, err := experiments.EvaluateModel(res.Model.Quantized(nn.Int8), res.TestSamples); err == nil {
			fmt.Fprintf(os.Stderr, "int8 deployment: %s\n", eval.String())
		}
	}

	modelName := *name
	if modelName == "" {
		modelName = strings.TrimSuffix(filepath.Base(*outModel), ".json")
	}
	meta := policy.Meta{
		Name:       modelName,
		TrainedAt:  time.Now().UTC().Format(time.RFC3339),
		Samples:    len(samples),
		Iterations: scale.TrainIterations,
		Optimizer:  *optName,
		Activation: *actName,
		Loss:       res.History.FinalLoss,
		Accuracy:   res.History.FinalAcc,
		Source:     policy.SourceOffline,
	}
	f, err := os.Create(*outModel)
	if err != nil {
		fatal(err)
	}
	prec := nn.Float64
	if *quantize {
		prec = nn.Int8
	}
	if err := policy.SaveCheckpointPrecision(f, res.Model, meta, env.Device.Channels, env.Strategies, prec); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (checkpoint format %d, schema %s, precision %s)\n",
		*outModel, policy.FormatVersion, policy.SchemaHash(env.Device.Channels, env.Strategies), prec)
}

// inspectCheckpoint loads and verifies one checkpoint against the schema
// this binary was built with. Any mismatch (format, schema hash, checksum,
// geometry) is fatal: the deploy pipeline uses the exit status as its gate.
func inspectCheckpoint(env experiments.Env, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, meta, prec, err := policy.LoadCheckpointPrecision(f, env.Device.Channels, env.Strategies)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: ok\n", path)
	fmt.Printf("  schema      %s\n", policy.SchemaHash(env.Device.Channels, env.Strategies))
	fmt.Printf("  geometry    %d -> %d classes (%d params)\n", net.InputDim(), net.OutputDim(), net.ParamCount())
	fmt.Printf("  precision   %s\n", prec)
	if meta.Name != "" {
		fmt.Printf("  name        %s\n", meta.Name)
	}
	if meta.TrainedAt != "" {
		fmt.Printf("  trained_at  %s\n", meta.TrainedAt)
	}
	if meta.Samples > 0 {
		fmt.Printf("  training    %d samples, %d iterations, %s/%s\n",
			meta.Samples, meta.Iterations, meta.Optimizer, meta.Activation)
		fmt.Printf("  eval        loss %.3f, test accuracy %.1f%%\n", meta.Loss, 100*meta.Accuracy)
	}
	if meta.Source != "" {
		fmt.Printf("  source      %s\n", meta.Source)
	}
	if meta.Parent != "" {
		fmt.Printf("  parent      %s\n", meta.Parent)
	}
	return nil
}

// followConfig carries the -follow flag family into the sidecar loop.
type followConfig struct {
	base     string
	modelDir string
	interval time.Duration

	seed       int64
	hidden     int
	iterations int
	batch      int

	minSamples    int
	retrainEvery  int
	minEpochs     int
	agreeMin      float64
	minComparable int
	demoteMargin  float64
	keep          int
	quiet         bool
}

// followDaemon runs the sidecar trainer: a Learner fed by the daemon's
// /learn/samples export, acting on the shared registry plus the daemon's
// /model/reload endpoint. Returns when ctx is canceled (clean exit).
func followDaemon(ctx context.Context, env experiments.Env, fc followConfig) error {
	if fc.modelDir == "" {
		return fmt.Errorf("-follow needs -model-dir (the registry shared with the daemon)")
	}
	reg, err := policy.NewRegistry(fc.modelDir, env.Device.Channels, env.Strategies)
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if fc.quiet {
		logf = nil
	}
	lrn, err := learn.New(learn.Config{
		Classes:       len(env.Strategies),
		Seed:          fc.seed,
		Hidden:        fc.hidden,
		Iterations:    fc.iterations,
		Batch:         fc.batch,
		MinSamples:    fc.minSamples,
		RetrainEvery:  fc.retrainEvery,
		MinEpochs:     fc.minEpochs,
		AgreeMin:      fc.agreeMin,
		MinComparable: fc.minComparable,
		DemoteMargin:  fc.demoteMargin,
		Logf:          logf,
	}, &learn.HTTPActuator{Reg: reg, Base: fc.base, Keep: fc.keep})
	if err != nil {
		return err
	}
	if !fc.quiet {
		fmt.Fprintf(os.Stderr, "following %s (registry %s, poll %v)\n", fc.base, reg.Dir(), fc.interval)
	}
	if err := learn.FollowLoop(ctx, fc.base, lrn, fc.interval, logf); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keeper-train:", err)
	os.Exit(1)
}
