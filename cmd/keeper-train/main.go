// Command keeper-train runs SSDKeeper's offline pipeline (Algorithm 1):
// synthesize mixed workloads, label each with the channel-allocation
// strategy that minimizes total latency on the simulator, train the
// classifier, and write the dataset and model artifacts that cmd/experiments
// and applications can reuse.
//
// Usage:
//
//	keeper-train -workloads 250 -requests 5000 -out model.json -dataset data.jsonl
//	keeper-train -dataset data.jsonl -reuse -out model.json   # retrain only
//	keeper-train -optimizer sgd-momentum -iterations 300 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nn"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		workloads  = flag.Int("workloads", 250, "mixed workloads to label")
		requests   = flag.Int("requests", 5000, "requests per workload")
		iterations = flag.Int("iterations", 200, "training iterations (epochs)")
		batch      = flag.Int("batch", 32, "minibatch size")
		hidden     = flag.Int("hidden", 64, "hidden layer width")
		optName    = flag.String("optimizer", "adam", "adam, sgd, sgd-momentum, adagrad, rmsprop")
		actName    = flag.String("activation", "logistic", "hidden activation: logistic, relu, tanh")
		seed       = flag.Int64("seed", 1, "pipeline seed")
		outModel   = flag.String("out", "model.json", "model output path")
		outDataset = flag.String("dataset", "", "dataset path (written, or read with -reuse)")
		reuse      = flag.Bool("reuse", false, "load the dataset instead of generating it")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	env := experiments.NewEnv()
	scale := experiments.DefaultScale()
	scale.DatasetWorkloads = *workloads
	scale.DatasetRequests = *requests
	scale.TrainIterations = *iterations
	scale.TrainBatch = *batch
	scale.Seed = *seed

	var samples []dataset.Sample
	var err error
	if *reuse {
		if *outDataset == "" {
			fatal(fmt.Errorf("-reuse needs -dataset"))
		}
		f, err := os.Open(*outDataset)
		if err != nil {
			fatal(err)
		}
		samples, err = dataset.LoadSamples(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "loaded %d samples\n", len(samples))
		}
	} else {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "labelling %d workloads x %d strategies (%d requests each)...\n",
				scale.DatasetWorkloads, len(env.Strategies), scale.DatasetRequests)
		}
		samples, err = experiments.BuildDataset(ctx, env, scale, func(done, total int) {
			if !*quiet && done%25 == 0 {
				fmt.Fprintf(os.Stderr, "  %d/%d\n", done, total)
			}
		})
		if err != nil {
			fatal(err)
		}
		if *outDataset != "" {
			f, err := os.Create(*outDataset)
			if err != nil {
				fatal(err)
			}
			if err := dataset.Save(f, samples); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *outDataset)
			}
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, experiments.LabelBalance(samples, env))
	}

	act, err := nn.ActivationByName(*actName)
	if err != nil {
		fatal(err)
	}
	var opt nn.Optimizer
	switch *optName {
	case "adam":
		opt = nn.NewAdam(0.02)
	case "sgd":
		opt = nn.NewSGD(0.2)
	case "sgd-momentum":
		opt = nn.NewMomentum(0.2, 0.9)
	case "adagrad":
		opt = nn.NewAdaGrad(0)
	case "rmsprop":
		opt = nn.NewRMSProp(0, 0)
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *optName))
	}

	res, err := keeper.TrainOnSamples(keeper.TrainConfig{
		Dataset: dataset.Config{
			Device: env.Device, Options: env.Options, Strategies: env.Strategies,
			Workloads: scale.DatasetWorkloads, Requests: scale.DatasetRequests,
			MaxIOPS: env.SaturationIOPS, Season: env.Season, Seed: scale.Seed,
		},
		Hidden:     *hidden,
		Activation: act,
		Optimizer:  opt,
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, samples)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained %s/%s: loss %.3f, test accuracy %.1f%%, %dms\n",
		*optName, *actName, res.History.FinalLoss, 100*res.History.FinalAcc,
		res.History.TrainingTime.Milliseconds())
	if eval, err := experiments.EvaluateModel(res.Model, res.TestSamples); err == nil {
		fmt.Fprintln(os.Stderr, eval.String())
	}

	f, err := os.Create(*outModel)
	if err != nil {
		fatal(err)
	}
	if err := res.Model.Save(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outModel)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keeper-train:", err)
	os.Exit(1)
}
