// Command tracegen writes synthetic MSR-format traces: either one of the
// paper's Table II workload equivalents, a named Table IV mix of four of
// them, or a fully custom profile.
//
// Usage:
//
//	tracegen -workload src_1 -scale 0.001 > src_1.csv
//	tracegen -mix Mix2 -head 100000 > mix2.csv
//	tracegen -custom -writeratio 0.7 -count 50000 -iops 9000 > custom.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/trace"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "Table II workload: mds_0, mds_1, rsrch_0, prxy_0, src_1, web_2")
		mixName      = flag.String("mix", "", "Table IV mix: Mix1..Mix4")
		scale        = flag.Float64("scale", 0.002, "fraction of the paper's request counts to generate")
		head         = flag.Int("head", 1000000, "truncate mixes to this many requests")
		seed         = flag.Int64("seed", 1, "generator seed")

		custom     = flag.Bool("custom", false, "generate a custom single-tenant workload")
		writeRatio = flag.Float64("writeratio", 0.5, "custom: fraction of writes")
		count      = flag.Int("count", 10000, "custom: request count")
		iops       = flag.Float64("iops", 8000, "custom: arrival rate")
		burst      = flag.Float64("burst", 0.8, "custom: burstiness in [0,1]")
	)
	flag.Parse()

	pageSize := nand.DefaultConfig().PageSize
	var tr trace.Trace
	var err error
	switch {
	case *custom:
		tr, err = trace.Generate(trace.Profile{
			Name:       "custom",
			WriteRatio: *writeRatio,
			Count:      *count,
			IOPS:       *iops,
			Address:    64 << 20,
			SeqProb:    0.3,
			MinPages:   1,
			MaxPages:   4,
			PageSize:   pageSize,
			Burstiness: *burst,
			Seed:       *seed,
		})
	case *workloadName != "":
		profiles := trace.TableII(*scale, pageSize, *seed)
		p, ok := profiles[*workloadName]
		if !ok {
			err = fmt.Errorf("unknown workload %q (want one of %s)",
				*workloadName, strings.Join(trace.TableIINames(), ", "))
			break
		}
		tr, err = trace.Generate(p)
	case *mixName != "":
		idx := -1
		for i := range trace.Mixes() {
			if strings.EqualFold(fmt.Sprintf("Mix%d", i+1), *mixName) {
				idx = i
			}
		}
		if idx == -1 {
			err = fmt.Errorf("unknown mix %q (want Mix1..Mix4)", *mixName)
			break
		}
		profiles := trace.TableII(*scale, pageSize, *seed)
		tr, err = trace.BuildMix(trace.Mixes()[idx], profiles, *head)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: pass -workload, -mix or -custom")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "generated %d requests, %d tenants, %.0f%% writes, span %v\n",
		s.Requests, s.Tenants, 100*s.WriteRatio, s.Span)
	if err := trace.WriteMSR(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
