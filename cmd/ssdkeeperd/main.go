// Command ssdkeeperd is the live multi-tenant SSD service daemon: a
// simulated device served over HTTP, with SSDKeeper's adaptation loop
// running online. Tenants submit I/O to /io (JSON) or /io/batch (line
// protocol); arrivals feed the keeper's sliding-window collector, and each
// elapsed window triggers ANN inference and an epoch-based channel
// re-allocation on the serving device. /metrics exposes Prometheus text,
// /healthz liveness, /debug/pprof profiles. SIGINT/SIGTERM drains
// gracefully: admission stops, queued requests are rejected, in-flight
// requests complete, and the daemon exits 0 with a final device summary.
//
// Usage:
//
//	ssdkeeperd -addr :8080 -model model.json -accel 1.0
//	ssdkeeperd -addr :8080 -train-workloads 12      # self-train a quick model
//	ssdkeeperd -no-keeper                           # serve without adaptation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		modelPath  = flag.String("model", "", "trained model (empty: self-train a quick model at startup)")
		noKeeper   = flag.Bool("no-keeper", false, "serve without the online keeper (static shared allocation)")
		accel      = flag.Float64("accel", 1.0, "simulated nanoseconds per wall nanosecond")
		shards     = flag.Int("shards", 1, "independent device shards (each with its own engine and keeper)")
		window     = flag.Duration("window", 100*time.Millisecond, "keeper observation window T (simulated)")
		adaptEvery = flag.Duration("adapt-every", 100*time.Millisecond, "re-adaptation period (simulated; 0 = single shot)")
		hybrid     = flag.Bool("hybrid", true, "switch page-allocation mode with each epoch (hybrid allocator)")
		tenants    = flag.Int("tenants", 4, "tenant ID space")
		queueLen   = flag.Int("queue-len", 64, "per-tenant admission queue bound")
		queueDepth = flag.Int("queue-depth", 32, "per-tenant in-device command bound")
		maxBytes   = flag.Int64("max-bytes", 64<<20, "per-tenant logical address space")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request completion deadline (wall)")
		fresh      = flag.Bool("fresh", false, "skip device seasoning (no GC pressure)")
		trainWork  = flag.Int("train-workloads", 12, "workloads to label when self-training")
		quiet      = flag.Bool("q", false, "suppress startup progress output")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := experiments.NewEnv()
	if *fresh {
		env.Season = workload.Seasoning{} // factory-fresh device, GC idle
	}

	var k *keeper.Keeper
	if !*noKeeper {
		model, err := loadOrTrainModel(ctx, env, *modelPath, *trainWork, *quiet)
		if err != nil {
			fatal(err)
		}
		k, err = keeper.New(keeper.Config{
			Device:         env.Device,
			Options:        env.Options,
			Strategies:     env.Strategies,
			SaturationIOPS: env.SaturationIOPS,
			Window:         sim.Time(*window),
			AdaptEvery:     sim.Time(*adaptEvery),
			Hybrid:         *hybrid,
			Season:         env.Season,
		}, model)
		if err != nil {
			fatal(err)
		}
	}

	s, err := serve.New(serve.Config{
		Device:     env.Device,
		Options:    env.Options,
		Season:     env.Season,
		Tenants:    *tenants,
		QueueLen:   *queueLen,
		QueueDepth: *queueDepth,
		MaxBytes:   *maxBytes,
		Accel:      *accel,
		ShardCount: *shards,
	}, k)
	if err != nil {
		fatal(err)
	}
	s.Start()

	srv := &http.Server{Addr: *addr, Handler: s.Handler(*timeout)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "ssdkeeperd: serving on %s (accel %g, shards %d, keeper %v)\n",
			*addr, *accel, s.ShardCount(), k != nil)
	}

	select {
	case err := <-errc:
		s.Drain()
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: reject what is queued, finish what is in flight, then
	// close the listener once every blocked handler has been answered.
	if !*quiet {
		fmt.Fprintln(os.Stderr, "ssdkeeperd: draining...")
	}
	res := s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fatal(err)
	}
	switches := s.KeeperSwitches()
	fmt.Fprintf(os.Stderr,
		"ssdkeeperd: drained clean: %d requests, makespan %v, %d keeper switches, fairness %.3f\n",
		res.Requests, res.Makespan, switches, res.Fairness)
	if err := s.Err(); err != nil {
		fatal(err)
	}
}

// loadOrTrainModel loads a serialized classifier, or — with no -model —
// runs the offline pipeline at quick scale so the daemon is usable out of
// the box (smoke tests and demos; real deployments train with keeper-train).
func loadOrTrainModel(ctx context.Context, env experiments.Env, path string, workloads int, quiet bool) (*nn.Network, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return nn.Load(f)
	}
	scale := experiments.QuickScale()
	if workloads > 0 {
		scale.DatasetWorkloads = workloads
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ssdkeeperd: no -model; self-training on %d quick workloads...\n",
			scale.DatasetWorkloads)
	}
	res, err := keeper.Train(ctx, keeper.TrainConfig{
		Dataset: dataset.Config{
			Device: env.Device, Options: env.Options, Strategies: env.Strategies,
			Workloads: scale.DatasetWorkloads, Requests: scale.DatasetRequests,
			MaxIOPS: env.SaturationIOPS, Season: env.Season, Seed: scale.Seed,
		},
		Hidden:     16,
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, nil)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ssdkeeperd: self-trained model: loss %.3f, test accuracy %.1f%%\n",
			res.History.FinalLoss, 100*res.History.FinalAcc)
	}
	return res.Model, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdkeeperd:", err)
	os.Exit(1)
}
