// Command ssdkeeperd is the live multi-tenant SSD service daemon: a
// simulated device served over HTTP, with SSDKeeper's adaptation loop
// running online. Tenants submit I/O to /io (JSON) or /io/batch (line
// protocol); arrivals feed the keeper's sliding-window collector, and each
// elapsed window triggers ANN inference and an epoch-based channel
// re-allocation on the serving device. /metrics exposes Prometheus text,
// /healthz liveness, /debug/pprof profiles. SIGINT/SIGTERM drains
// gracefully: admission stops, queued requests are rejected, in-flight
// requests complete, and the daemon exits 0 with a final device summary.
//
// Models come from a versioned checkpoint registry (-model-dir, newest
// version wins), a single checkpoint file (-model), or a quick self-training
// run. With -model-dir the daemon supports drain-free hot reload: POST
// /model/reload?version=vNNN (or SIGHUP for the latest version) atomically
// publishes the new policy, and every shard picks it up at its next
// adaptation epoch; role=shadow installs a candidate for shadow evaluation
// (agreement/divergence counters in /metrics) without touching the device.
//
// With -learn the daemon closes the loop: every adaptation epoch emits an
// outcome sample, a replay buffer accumulates them, and an in-process learner
// periodically retrains, installs the candidate as shadow, auto-promotes it
// when the gate clears, and demotes back to last-good on post-promotion
// regression (see internal/learn). The same feed is exported at
// GET /learn/samples, so a sidecar (keeper-train -follow) can run the learner
// out of process against the shared -model-dir.
//
// Usage:
//
//	ssdkeeperd -addr :8080 -model model.json -accel 1.0
//	ssdkeeperd -addr :8080 -model-dir models/        # registry + hot reload
//	ssdkeeperd -addr :8080 -model-dir models/ -learn # + continuous learning
//	ssdkeeperd -addr :8080 -train-workloads 12      # self-train a quick model
//	ssdkeeperd -no-keeper                           # serve without adaptation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/experiments"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/wire"

	"ssdkeeper/internal/workload"
	"strings"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		wireListen = flag.String("wire-listen", "", "also serve the framed wire data plane on this address (persistent multiplexed connections; the fleet router's fast path)")
		modelPath  = flag.String("model", "", "trained model checkpoint (empty: self-train a quick model at startup)")
		modelDir   = flag.String("model-dir", "", "versioned checkpoint registry; serves the latest version and enables POST /model/reload and SIGHUP hot reload")
		noKeeper   = flag.Bool("no-keeper", false, "serve without the online keeper (static shared allocation)")
		accel      = flag.Float64("accel", 1.0, "simulated nanoseconds per wall nanosecond")
		shards     = flag.Int("shards", 1, "independent device shards (each with its own engine and keeper)")
		window     = flag.Duration("window", 100*time.Millisecond, "keeper observation window T (simulated)")
		adaptEvery = flag.Duration("adapt-every", 100*time.Millisecond, "re-adaptation period (simulated; 0 = single shot)")
		hybrid     = flag.Bool("hybrid", true, "switch page-allocation mode with each epoch (hybrid allocator)")
		tenants    = flag.Int("tenants", 4, "tenant ID space")
		queueLen   = flag.Int("queue-len", 64, "per-tenant admission queue bound")
		queueDepth = flag.Int("queue-depth", 32, "per-tenant in-device command bound")
		maxBytes   = flag.Int64("max-bytes", 64<<20, "per-tenant logical address space")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request completion deadline (wall)")
		fresh      = flag.Bool("fresh", false, "skip device seasoning (no GC pressure)")
		faultPlan  = flag.String("fault-plan", "", `file holding a device fault-plan DSL (e.g. "die:ch2:die1@30s,retire:ch0:blk12@45s"; # comments and newlines allowed), injected into every serving shard`)
		faultSeed  = flag.Int64("fault-seed", 1, "seed of the fault plan's read-retry hash")
		auditEvery = flag.Duration("audit-every", time.Second, "device-health audit sweep interval (wall; 0 disables the auditor)")
		degraded   = flag.Float64("degraded-score", 0.5, "health score in [0,1] below which the auditor flips the node degraded (/readyz 503)")
		trainWork  = flag.Int("train-workloads", 12, "workloads to label when self-training")
		quantize   = flag.Bool("quantize", false, "serve ANN decisions through the int8 fixed-point kernel (batched, allocation-free); float weights are quantized at load and on every reload")
		quiet      = flag.Bool("q", false, "suppress startup progress output")

		learnOn       = flag.Bool("learn", false, "run the continuous learner in-daemon: harvest epoch samples, retrain, shadow, auto-promote (requires -model-dir)")
		learnInterval = flag.Duration("learn-interval", time.Second, "how often the learner ingests samples and advances its state machine (wall)")
		learnMin      = flag.Int("learn-min-samples", 64, "outcome samples buffered before the first retrain")
		learnRetrain  = flag.Int("learn-retrain-every", 64, "new outcome samples between retrains")
		learnEpochs   = flag.Int("learn-min-epochs", 8, "shadow decisions before the promotion gate rules")
		learnAgree    = flag.Float64("learn-agree", 0, "minimum shadow agreement ratio to promote")
		learnComp     = flag.Int("learn-min-comparable", 0, "comparable outcome samples the promotion regret estimate must rest on")
		learnExplore  = flag.Float64("learn-explore", 0, "epsilon-greedy exploration rate: probability an adaptation epoch applies a random strategy")
		learnDemote   = flag.Float64("learn-demote-margin", 0.10, "relative regret growth over the promotion baseline that triggers demotion")
		learnSeed     = flag.Int64("learn-seed", 1, "seeds the replay buffer and every retrain")
		modelKeep     = flag.Int("model-keep", 8, "checkpoints the learner's registry GC retains (0: unbounded; active/shadow/last-good never deleted)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := experiments.NewEnv()
	if *fresh {
		env.Season = workload.Seasoning{} // factory-fresh device, GC idle
	}

	// The fault plan applies to the serving shards only — self-training and
	// the keeper's offline runner keep the immortal environment, so a sick
	// daemon still trains on healthy labels.
	servOpts := env.Options
	if *faultPlan != "" {
		plan, err := loadFaultPlan(*faultPlan, *faultSeed)
		if err != nil {
			fatal(err)
		}
		servOpts.FaultPlan = plan
		if !*quiet && plan != nil {
			fmt.Fprintf(os.Stderr, "ssdkeeperd: fault plan: %s (seed %d)\n", plan, plan.Seed)
		}
	}

	var k *keeper.Keeper
	var reg *policy.Registry
	var modelVersion string
	var modelPrecision nn.Precision
	if !*noKeeper {
		prov, r, err := loadProvider(ctx, env, *modelDir, *modelPath, *trainWork, *quantize, *quiet)
		if err != nil {
			fatal(err)
		}
		reg, modelVersion, modelPrecision = r, prov.Version(), prov.Precision()
		k, err = keeper.NewWithProvider(keeper.Config{
			Device:         env.Device,
			Options:        env.Options,
			Strategies:     env.Strategies,
			SaturationIOPS: env.SaturationIOPS,
			Window:         sim.Time(*window),
			AdaptEvery:     sim.Time(*adaptEvery),
			Hybrid:         *hybrid,
			Season:         env.Season,
		}, prov)
		if err != nil {
			fatal(err)
		}
	}

	// The sample journal is wired whenever a keeper serves (the export
	// endpoint is useful on its own for a sidecar trainer); the in-daemon
	// learner additionally needs the checkpoint registry to act on.
	var sampleLog *learn.Log
	var learner *learn.Learner
	var sink learn.Sink
	if k != nil {
		sampleLog = learn.NewLog(8192)
		sink = sampleLog
		if *learnOn {
			if reg == nil {
				fatal(errors.New("-learn needs -model-dir (the learner writes and promotes registry checkpoints)"))
			}
			prec := nn.Float64
			if *quantize {
				prec = nn.Int8
			}
			var logf func(string, ...any)
			if !*quiet {
				logf = func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "ssdkeeperd: "+format+"\n", args...)
				}
			}
			var err error
			learner, err = learn.New(learn.Config{
				Classes:       len(env.Strategies),
				Seed:          *learnSeed,
				MinSamples:    *learnMin,
				RetrainEvery:  *learnRetrain,
				MinEpochs:     *learnEpochs,
				AgreeMin:      *learnAgree,
				MinComparable: *learnComp,
				DemoteMargin:  *learnDemote,
				Logf:          logf,
			}, &learn.RegistryActuator{Reg: reg, Src: k.Source(), Precision: prec, Keep: *modelKeep})
			if err != nil {
				fatal(err)
			}
			sink = learn.MultiSink{sampleLog, learner}
		}
	}

	var auditLog func(string, ...any)
	if !*quiet {
		auditLog = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ssdkeeperd: "+format+"\n", args...)
		}
	}
	s, err := serve.New(serve.Config{
		Device:        env.Device,
		Options:       servOpts,
		Season:        env.Season,
		Tenants:       *tenants,
		QueueLen:      *queueLen,
		QueueDepth:    *queueDepth,
		MaxBytes:      *maxBytes,
		Accel:         *accel,
		ShardCount:    *shards,
		Sink:          sink,
		Learner:       learner,
		ExploreRate:   *learnExplore,
		ExploreSeed:   *learnSeed,
		AuditEvery:    *auditEvery,
		DegradedScore: *degraded,
		AuditLog:      auditLog,
	}, k)
	if err != nil {
		fatal(err)
	}
	if sampleLog != nil {
		s.SetSampleLog(sampleLog)
	}
	s.Start()

	if learner != nil {
		go func() {
			tick := time.NewTicker(*learnInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-tick.C:
					if err := learner.Step(now); err != nil {
						fmt.Fprintf(os.Stderr, "ssdkeeperd: %v\n", err)
					}
				}
			}
		}()
	}

	if k != nil && reg != nil {
		s.SetReloader(registryReloader(reg, k.Source(), *quantize))
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				st, err := s.Reload("active", "")
				if err != nil {
					fmt.Fprintf(os.Stderr, "ssdkeeperd: SIGHUP reload failed: %v\n", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "ssdkeeperd: SIGHUP reload: active %s (was %s)\n",
					st.Version, st.Previous)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler(*timeout)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	var ws *wire.Server
	if *wireListen != "" {
		ln, err := net.Listen("tcp", *wireListen)
		if err != nil {
			s.Drain()
			fatal(err)
		}
		ws = wire.NewServer(s.Node)
		go func() {
			if err := ws.Serve(ln); err != nil {
				errc <- err
			}
		}()
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "ssdkeeperd: serving on %s (accel %g, shards %d, keeper %v",
			*addr, *accel, s.ShardCount(), k != nil)
		if *wireListen != "" {
			fmt.Fprintf(os.Stderr, ", wire %s", *wireListen)
		}
		if modelVersion != "" {
			fmt.Fprintf(os.Stderr, ", model %s, precision %s", modelVersion, modelPrecision)
		}
		fmt.Fprintln(os.Stderr, ")")
	}

	select {
	case err := <-errc:
		s.Drain()
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: reject what is queued, finish what is in flight, then
	// close the listener once every blocked handler has been answered.
	if !*quiet {
		fmt.Fprintln(os.Stderr, "ssdkeeperd: draining...")
	}
	res := s.Drain()
	if ws != nil {
		// After the drain every admitted request has resolved, so closing
		// the wire listener cannot orphan a completion.
		ws.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fatal(err)
	}
	switches := s.KeeperSwitches()
	fmt.Fprintf(os.Stderr,
		"ssdkeeperd: drained clean: %d requests, makespan %v, %d keeper switches, fairness %.3f\n",
		res.Requests, res.Makespan, switches, res.Fairness)
	if err := s.Err(); err != nil {
		fatal(err)
	}
}

// loadProvider resolves the policy provider the daemon starts with, in
// precedence order: the latest version from a -model-dir registry, a single
// -model checkpoint file, or a quick self-training run so the daemon is
// usable out of the box (smoke tests and demos; real deployments train with
// keeper-train). The registry (non-nil only with -model-dir) also backs the
// hot-reload endpoint. Checkpoints carry their own deployment precision;
// quantize forces the int8 kernel regardless of what the artifact declares.
func loadProvider(ctx context.Context, env experiments.Env, dir, path string, workloads int, quantize, quiet bool) (*policy.Model, *policy.Registry, error) {
	if dir != "" {
		reg, err := policy.NewRegistry(dir, env.Device.Channels, env.Strategies)
		if err != nil {
			return nil, nil, err
		}
		m, err := reg.Latest()
		if err != nil {
			return nil, nil, err
		}
		if quantize {
			if m, err = m.WithPrecision(nn.Int8); err != nil {
				return nil, nil, err
			}
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "ssdkeeperd: loaded model %s from %s (precision %s)\n",
				m.Version(), dir, m.Precision())
		}
		return m, reg, nil
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		net, _, prec, err := policy.LoadCheckpointPrecision(f, env.Device.Channels, env.Strategies)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if quantize {
			prec = nn.Int8
		}
		m, err := policy.NewModelPrecision(filepath.Base(path), net, env.Strategies, prec)
		if err != nil {
			return nil, nil, err
		}
		return m, nil, nil
	}
	scale := experiments.QuickScale()
	if workloads > 0 {
		scale.DatasetWorkloads = workloads
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ssdkeeperd: no -model; self-training on %d quick workloads...\n",
			scale.DatasetWorkloads)
	}
	res, err := keeper.Train(ctx, keeper.TrainConfig{
		Dataset: dataset.Config{
			Device: env.Device, Options: env.Options, Strategies: env.Strategies,
			Workloads: scale.DatasetWorkloads, Requests: scale.DatasetRequests,
			MaxIOPS: env.SaturationIOPS, Season: env.Season, Seed: scale.Seed,
		},
		Hidden:     16,
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, nil)
	if err != nil {
		return nil, nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ssdkeeperd: self-trained model: loss %.3f, test accuracy %.1f%%\n",
			res.History.FinalLoss, 100*res.History.FinalAcc)
	}
	prec := nn.Float64
	if quantize {
		prec = nn.Int8
	}
	m, err := policy.NewModelPrecision("self-trained", res.Model, env.Strategies, prec)
	if err != nil {
		return nil, nil, err
	}
	return m, nil, nil
}

// registryReloader maps the /model/reload protocol onto the checkpoint
// registry and the keeper's policy source. version "" resolves to the
// registry's latest; role=shadow with version "none" clears the candidate.
// With quantize set, every model a reload publishes is forced onto the int8
// kernel, so a daemon started with -quantize keeps serving quantized across
// hot swaps.
func registryReloader(reg *policy.Registry, src *policy.Source, quantize bool) serve.Reloader {
	return func(role, version string) (serve.ReloadStatus, error) {
		if role == "shadow" && version == "none" {
			st := serve.ReloadStatus{Role: role}
			if prev := src.SetShadow(nil); prev != nil {
				st.Previous = prev.Version()
			}
			return st, nil
		}
		var m *policy.Model
		var err error
		if version == "" {
			m, err = reg.Latest()
		} else {
			m, err = reg.Load(version)
		}
		if err != nil {
			return serve.ReloadStatus{}, err
		}
		if quantize {
			if m, err = m.WithPrecision(nn.Int8); err != nil {
				return serve.ReloadStatus{}, err
			}
		}
		st := serve.ReloadStatus{Role: role, Version: m.Version()}
		if role == "shadow" {
			if prev := src.SetShadow(m); prev != nil {
				st.Previous = prev.Version()
			}
			return st, nil
		}
		prev, err := src.SetActive(m)
		if err != nil {
			return serve.ReloadStatus{}, err
		}
		st.Previous = prev.Version()
		return st, nil
	}
}

// loadFaultPlan reads a fault-plan DSL file: events separated by commas or
// newlines, blank lines and #-comments ignored. Returns nil for an
// effectively empty file (an immortal device).
func loadFaultPlan(path string, seed int64) (*nand.FaultPlan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var events []string
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.Trim(line, " \t,")
		if line != "" {
			events = append(events, line)
		}
	}
	plan, err := nand.ParseFaultPlan(strings.Join(events, ","))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if plan != nil {
		plan.Seed = seed
	}
	return plan, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdkeeperd:", err)
	os.Exit(1)
}
