module ssdkeeper

go 1.22
