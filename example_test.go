package ssdkeeper_test

// Runnable godoc examples for the public API. `go test` executes them and
// checks the output, so they double as documentation and regression tests.

import (
	"fmt"

	"ssdkeeper"
)

// ExampleParseStrategy shows the paper's strategy notation.
func ExampleParseStrategy() {
	for _, name := range []string{"Shared", "7:1", "5:1:1:1", "2:2:2:2"} {
		s, err := ssdkeeper.ParseStrategy(name, 8)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%s -> %s\n", name, s.Name(8))
	}
	// Output:
	// Shared -> Shared
	// 7:1 -> 7:1
	// 5:1:1:1 -> 5:1:1:1
	// 2:2:2:2 -> Isolated
}

// ExampleStrategy_Bind shows how a two-group strategy splits channels
// between write- and read-dominated tenants.
func ExampleStrategy_Bind() {
	s := ssdkeeper.Strategy{Kind: ssdkeeper.TwoGroup, WriteChannels: 6}
	binding, _ := s.Bind(8, []ssdkeeper.TenantTraits{
		{WriteDominated: true},
		{WriteDominated: false},
	})
	fmt.Println("writer:", binding.Channels(0))
	fmt.Println("reader:", binding.Channels(1))
	// Output:
	// writer: [0 1 2 3 4 5]
	// reader: [6 7]
}

// ExampleFourTenantSpace shows the paper's 42-strategy label space.
func ExampleFourTenantSpace() {
	space := ssdkeeper.FourTenantSpace(8)
	fmt.Println("strategies:", len(space))
	fmt.Println("first:", space[0].Name(8))
	fmt.Println("last:", space[len(space)-1].Name(8))
	// Output:
	// strategies: 42
	// first: Shared
	// last: 5:1:1:1
}

// ExampleRun simulates a small two-tenant mix under a 6:2 split and prints
// how many requests completed.
func ExampleRun() {
	cfg := ssdkeeper.EvalConfig()
	spec := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.9, Share: 0.6},
			{WriteRatio: 0.1, Share: 0.4},
		},
		Requests: 500,
		IOPS:     6000,
		Seed:     1,
	}
	mix, _ := spec.Build(cfg.PageSize)
	res, err := ssdkeeper.Run(ssdkeeper.RunConfig{
		Device:   cfg,
		Options:  ssdkeeper.DefaultOptions(),
		Strategy: ssdkeeper.Strategy{Kind: ssdkeeper.TwoGroup, WriteChannels: 6},
		Traits:   spec.Traits(),
	}, mix)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("completed:", res.Device.Read.Count+res.Device.Write.Count)
	// Output:
	// completed: 500
}
