// Training: run SSDKeeper's offline learning pipeline end to end at a small
// scale — synthesize mixed workloads, label each one by simulating all 42
// channel-allocation strategies, train the 9-64-42 classifier with the
// paper's optimizers, and compare their convergence (Figure 4 / Table III in
// miniature).
//
// Run with: go run ./examples/training
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ssdkeeper"
)

func main() {
	env := ssdkeeper.NewEnv()
	scale := ssdkeeper.QuickScale()
	scale.DatasetWorkloads = 40
	scale.DatasetRequests = 2500
	scale.TrainIterations = 120

	fmt.Printf("labelling %d mixed workloads x %d strategies (%d requests each)...\n",
		scale.DatasetWorkloads, len(env.Strategies), scale.DatasetRequests)
	samples, err := ssdkeeper.BuildDataset(context.Background(), env, scale, func(done, total int) {
		if done%10 == 0 {
			fmt.Printf("  %d/%d\n", done, total)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ssdkeeper.LabelBalance(samples, env))

	// Compare the paper's optimizers on the same dataset.
	configs := []struct {
		name string
		act  ssdkeeper.Activation
		opt  ssdkeeper.Optimizer
	}{
		{"SGD", ssdkeeper.Logistic{}, ssdkeeper.NewSGD(0.2)},
		{"SGD-momentum", ssdkeeper.Logistic{}, ssdkeeper.NewMomentum(0.2, 0.9)},
		{"Adam-ReLU", ssdkeeper.ReLU{}, ssdkeeper.NewAdam(0.02)},
		{"Adam-logistic", ssdkeeper.Logistic{}, ssdkeeper.NewAdam(0.02)},
	}
	fmt.Printf("\n%-14s %8s %10s %12s\n", "optimizer", "loss", "accuracy", "time(ms)")
	var best *ssdkeeper.TrainResult
	for _, c := range configs {
		res, err := ssdkeeper.TrainOnSamples(ssdkeeper.TrainConfig{
			Dataset: ssdkeeper.DatasetConfig{
				Device: env.Device, Options: env.Options, Strategies: env.Strategies,
				Workloads: scale.DatasetWorkloads, Requests: scale.DatasetRequests,
				MaxIOPS: env.SaturationIOPS, Season: env.Season, Seed: scale.Seed,
			},
			Hidden:     64,
			Activation: c.act,
			Optimizer:  c.opt,
			Iterations: scale.TrainIterations,
			BatchSize:  16,
			Seed:       scale.Seed,
		}, samples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8.3f %9.1f%% %12d\n",
			c.name, res.History.FinalLoss, 100*res.History.FinalAcc,
			res.History.TrainingTime.Milliseconds())
		if c.name == "Adam-logistic" {
			r := res
			best = &r
		}
	}

	// How good are the deployed model's choices, really? Top-1 accuracy
	// understates it: with 42 near-tied strategies, what matters is how
	// much latency the chosen strategy gives up against the optimum.
	eval, err := ssdkeeper.EvaluateModel(best.Model, best.TestSamples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", eval)

	// Persist the deployed model the way a real controller image would.
	const path = "ssdkeeper-model.json"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := best.Model.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved the Adam-logistic model to %s (%d parameters)\n",
		path, best.Model.ParamCount())
	fmt.Println("load it with ssdkeeper.LoadModel and wrap it in a Keeper to allocate channels online.")
}
