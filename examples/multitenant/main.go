// Multitenant: the paper's headline scenario. Four tenants with the access
// patterns of the Table II workloads share one SSD; SSDKeeper observes the
// mixed stream, predicts a channel allocation with its trained model, and
// re-binds the channels — beating both a traditional shared SSD and a
// blindly partitioned one.
//
// Run with: go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"

	"ssdkeeper"
)

func main() {
	env := ssdkeeper.NewEnv()

	// Train a small model first (a production deployment would load a
	// pre-trained one; see examples/training).
	scale := ssdkeeper.QuickScale()
	scale.DatasetWorkloads = 30
	scale.DatasetRequests = 2500
	scale.TrainIterations = 120
	fmt.Println("training the strategy model on", scale.DatasetWorkloads, "labelled workloads...")
	samples, err := ssdkeeper.BuildDataset(context.Background(), env, scale, nil)
	if err != nil {
		log.Fatal(err)
	}
	trained, err := ssdkeeper.TrainBest(env, scale, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model test accuracy: %.1f%%\n\n", 100*trained.History.FinalAcc)

	// Build Mix2 from Table IV: prxy_0 + src_1 + rsrch_0 + mds_1 — a hot
	// proxy writer, a huge read-mostly source tree, and two lighter
	// tenants.
	profiles := ssdkeeper.TableII(0.0008, env.Device.PageSize, 7)
	names := ssdkeeper.Mixes()[1]
	mix, err := ssdkeeper.BuildMix(names, profiles, 12000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mix2 = %v: %d requests\n\n", names, len(mix))

	// Baselines.
	traits := make([]ssdkeeper.TenantTraits, 4)
	for i, n := range names {
		traits[i] = ssdkeeper.TenantTraits{WriteDominated: profiles[n].WriteRatio >= 0.5}
	}
	runBaseline := func(s ssdkeeper.Strategy) float64 {
		res, err := ssdkeeper.Run(ssdkeeper.RunConfig{
			Device: env.Device, Options: env.Options,
			Strategy: s, Traits: traits, Season: env.Season,
		}, mix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s write %9.1fus  read %9.1fus  total %9.1fus\n",
			s.Name(env.Device.Channels), res.Device.Write.Mean(),
			res.Device.Read.Mean(), res.Device.Total())
		return res.Device.Total()
	}
	sharedTotal := runBaseline(ssdkeeper.Strategy{Kind: ssdkeeper.Shared})
	runBaseline(ssdkeeper.Strategy{Kind: ssdkeeper.Isolated})

	// SSDKeeper: observe under Shared for 150ms, then re-allocate.
	k, err := ssdkeeper.NewKeeper(ssdkeeper.KeeperConfig{
		Device:         env.Device,
		Options:        env.Options,
		Strategies:     env.Strategies,
		SaturationIOPS: env.SaturationIOPS,
		Window:         150 * ssdkeeper.Millisecond,
		Hybrid:         true,
		Season:         env.Season,
	}, trained.Model)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := k.Run(mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s write %9.1fus  read %9.1fus  total %9.1fus\n",
		"SSDKeeper(+hybrid)", rep.Device.Write.Mean(),
		rep.Device.Read.Mean(), rep.Device.Total())

	if len(rep.Switches) > 0 {
		sw := rep.Switches[0]
		fmt.Printf("\ncollected features %v at t=%v\n", sw.Vector, sw.At)
		fmt.Printf("chosen allocation: %s\n", sw.Strategy.Name(env.Device.Channels))
	}
	fmt.Printf("improvement over Shared: %.1f%%\n",
		100*(sharedTotal-rep.Device.Total())/sharedTotal)
}
