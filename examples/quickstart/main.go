// Quickstart: simulate two tenants sharing one SSD and compare the three
// canonical channel allocations — Shared (a traditional SSD), Isolated (a
// blindly partitioned Open-Channel SSD) and a two-group split — to see the
// access-conflict problem SSDKeeper solves.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssdkeeper"
)

func main() {
	// The SSD: Table I timing (16KB pages, 20us reads, 200us programs,
	// 1.5ms erases) on the scaled evaluation geometry, aged so garbage
	// collection is active — like a real device in steady state.
	cfg := ssdkeeper.EvalConfig()

	// The tenants: a write-heavy database (70% of traffic) and a
	// read-heavy analytics job (30%), arriving at 8000 requests/s.
	spec := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.95, Share: 0.7},
			{WriteRatio: 0.05, Share: 0.3},
		},
		Requests: 10000,
		IOPS:     8000,
		Seed:     42,
	}
	mix, err := spec.Build(cfg.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed workload: %d requests from %d tenants\n\n", len(mix), len(spec.Tenants))

	strategies := []ssdkeeper.Strategy{
		{Kind: ssdkeeper.Shared},
		{Kind: ssdkeeper.Isolated},
		{Kind: ssdkeeper.TwoGroup, WriteChannels: 6}, // 6 channels for the writer, 2 for the reader
	}
	fmt.Printf("%-10s %12s %12s %12s %12s\n",
		"strategy", "write(us)", "read(us)", "total(us)", "conflicts")
	var sharedTotal float64
	for _, s := range strategies {
		res, err := ssdkeeper.Run(ssdkeeper.RunConfig{
			Device:   cfg,
			Options:  ssdkeeper.DefaultOptions(),
			Strategy: s,
			Traits:   spec.Traits(),
			Season:   ssdkeeper.DefaultSeasoning(),
		}, mix)
		if err != nil {
			log.Fatal(err)
		}
		if s.Kind == ssdkeeper.Shared {
			sharedTotal = res.Device.Total()
		}
		fmt.Printf("%-10s %12.1f %12.1f %12.1f %12d\n",
			s.Name(cfg.Channels),
			res.Device.Write.Mean(), res.Device.Read.Mean(),
			res.Device.Total(), res.Conflicts)
	}

	res, err := ssdkeeper.Run(ssdkeeper.RunConfig{
		Device:   cfg,
		Options:  ssdkeeper.DefaultOptions(),
		Strategy: ssdkeeper.Strategy{Kind: ssdkeeper.TwoGroup, WriteChannels: 6},
		Traits:   spec.Traits(),
		Hybrid:   true, // dynamic page allocation for the writer, static for the reader
		Season:   ssdkeeper.DefaultSeasoning(),
	}, mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12.1f %12.1f %12.1f %12d   (6:2 + hybrid page allocation)\n",
		"6:2+hyb",
		res.Device.Write.Mean(), res.Device.Read.Mean(),
		res.Device.Total(), res.Conflicts)

	fmt.Printf("\nright-sizing the channel split improves total latency over Shared by %.1f%%\n",
		100*(sharedTotal-res.Device.Total())/sharedTotal)
	fmt.Println("SSDKeeper learns to pick that split automatically — see examples/multitenant.")
}
