// Online adaptation: the "self-adapting" in SSDKeeper. The tenant mix
// changes character mid-run — a read-mostly analytics phase gives way to a
// write-heavy ingest phase — and the keeper, re-observing the stream
// periodically, re-allocates the channels each time. A single static choice
// cannot fit both phases; the periodic keeper follows the workload.
//
// Run with: go run ./examples/onlineadaptation
package main

import (
	"context"
	"fmt"
	"log"

	"ssdkeeper"
)

// phase builds one phase of the workload and shifts it to start at `at`.
func phase(spec ssdkeeper.MixSpec, pageSize int, at ssdkeeper.Time) (ssdkeeper.Trace, error) {
	tr, err := spec.Build(pageSize)
	if err != nil {
		return nil, err
	}
	return tr.Shift(at), nil
}

func main() {
	env := ssdkeeper.NewEnv()
	scale := ssdkeeper.QuickScale()
	scale.DatasetWorkloads = 30
	scale.DatasetRequests = 2500
	scale.TrainIterations = 120
	fmt.Println("training the strategy model...")
	samples, err := ssdkeeper.BuildDataset(context.Background(), env, scale, nil)
	if err != nil {
		log.Fatal(err)
	}
	trained, err := ssdkeeper.TrainBest(env, scale, samples)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 (0..~0.5s): read-dominated mix. Phase 2: write-heavy
	// ingest on the same tenants.
	readPhase := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.1, Share: 0.4},
			{WriteRatio: 0.05, Share: 0.3},
			{WriteRatio: 0.9, Share: 0.15},
			{WriteRatio: 0.1, Share: 0.15},
		},
		Requests: 4000, IOPS: 8000, Seed: 11,
	}
	writePhase := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.95, Share: 0.5},
			{WriteRatio: 0.9, Share: 0.3},
			{WriteRatio: 0.1, Share: 0.1},
			{WriteRatio: 0.05, Share: 0.1},
		},
		Requests: 4000, IOPS: 8000, Seed: 12,
	}
	p1, err := phase(readPhase, env.Device.PageSize, 0)
	if err != nil {
		log.Fatal(err)
	}
	cut := p1[len(p1)-1].Time + ssdkeeper.Millisecond
	p2, err := phase(writePhase, env.Device.PageSize, cut)
	if err != nil {
		log.Fatal(err)
	}
	mix := append(append(ssdkeeper.Trace{}, p1...), p2...)
	if err := mix.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-phase workload: %d requests, phase change at %v\n\n", len(mix), cut)

	// Static Shared baseline.
	traits := make([]ssdkeeper.TenantTraits, 4)
	res, err := ssdkeeper.Run(ssdkeeper.RunConfig{
		Device: env.Device, Options: env.Options,
		Strategy: ssdkeeper.Strategy{Kind: ssdkeeper.Shared},
		Traits:   traits, Season: env.Season,
	}, mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s total %9.1fus\n", "Shared (static)", res.Device.Total())

	// One-shot SSDKeeper: adapts once, to the read phase it observed,
	// and is stuck with that choice when the ingest starts.
	oneShot, err := ssdkeeper.NewKeeper(ssdkeeper.KeeperConfig{
		Device: env.Device, Options: env.Options, Strategies: env.Strategies,
		SaturationIOPS: env.SaturationIOPS,
		Window:         100 * ssdkeeper.Millisecond,
		Hybrid:         true,
		Season:         env.Season,
	}, trained.Model)
	if err != nil {
		log.Fatal(err)
	}
	oneRep, err := oneShot.Run(mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s total %9.1fus  (switched %d time)\n",
		"SSDKeeper (one-shot)", oneRep.Device.Total(), len(oneRep.Switches))

	// Periodic SSDKeeper: re-observes every 150ms and follows the phase
	// change.
	periodic, err := ssdkeeper.NewKeeper(ssdkeeper.KeeperConfig{
		Device: env.Device, Options: env.Options, Strategies: env.Strategies,
		SaturationIOPS: env.SaturationIOPS,
		Window:         100 * ssdkeeper.Millisecond,
		AdaptEvery:     150 * ssdkeeper.Millisecond,
		Hybrid:         true,
		Season:         env.Season,
	}, trained.Model)
	if err != nil {
		log.Fatal(err)
	}
	perRep, err := periodic.Run(mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s total %9.1fus  (switched %d times)\n\n",
		"SSDKeeper (periodic)", perRep.Device.Total(), len(perRep.Switches))

	fmt.Println("allocation timeline:")
	for _, sw := range perRep.Switches {
		fmt.Printf("  t=%-12v features %v -> %s\n",
			sw.At, sw.Vector, sw.Strategy.Name(env.Device.Channels))
	}
}
