// QoS: combine the two isolation mechanisms this library models. A
// latency-sensitive tenant shares the SSD with a bulk writer; we compare
//
//  1. nothing (shared channels, fair queues),
//  2. host-side weighted queue arbitration alone,
//  3. SSDKeeper-style channel isolation alone, and
//  4. both together,
//
// and report the latency-sensitive tenant's mean and p99 read latency.
//
// Run with: go run ./examples/qos
package main

import (
	"fmt"
	"log"

	"ssdkeeper"
)

func main() {
	cfg := ssdkeeper.EvalConfig()

	// Tenant 0: latency-sensitive reader (25% of traffic).
	// Tenant 1: bulk writer at 75%.
	spec := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.05, Share: 0.25},
			{WriteRatio: 0.95, Share: 0.75},
		},
		Requests: 12000,
		IOPS:     9000,
		Seed:     17,
	}
	mix, err := spec.Build(cfg.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	traits := spec.Traits()

	type setup struct {
		name     string
		strategy ssdkeeper.Strategy
		weighted bool
	}
	setups := []setup{
		{"shared + fair queues", ssdkeeper.Strategy{Kind: ssdkeeper.Shared}, false},
		{"shared + WRR 4:1", ssdkeeper.Strategy{Kind: ssdkeeper.Shared}, true},
		{"channels 2:6 + fair", ssdkeeper.Strategy{Kind: ssdkeeper.TwoGroup, WriteChannels: 6}, false},
		{"channels 2:6 + WRR", ssdkeeper.Strategy{Kind: ssdkeeper.TwoGroup, WriteChannels: 6}, true},
	}

	fmt.Printf("%-22s %14s %14s %14s\n", "setup", "reader mean", "reader p99", "writer mean")
	for _, s := range setups {
		dev, err := ssdkeeper.NewDevice(ssdkeeper.RunConfig{
			Device:   cfg,
			Options:  ssdkeeper.DefaultOptions(),
			Strategy: s.strategy,
			Traits:   traits,
			Season:   ssdkeeper.DefaultSeasoning(),
		})
		if err != nil {
			log.Fatal(err)
		}
		hostCfg := ssdkeeper.HostConfig{QueueDepth: 6, Outstanding: 6}
		if s.weighted {
			hostCfg.Arbitration = ssdkeeper.WeightedRoundRobin
			hostCfg.Weights = map[int]int{0: 4, 1: 1} // favor the reader
		}
		host, err := ssdkeeper.NewHost(dev, hostCfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := host.Run(mix)
		if err != nil {
			log.Fatal(err)
		}
		reader := res.PerTenant[0]
		writer := res.PerTenant[1]
		fmt.Printf("%-22s %12.0fus %12v %12.0fus\n",
			s.name, reader.Read.Mean(), reader.Read.P99(), writer.Write.Mean())
	}

	fmt.Println("\nqueue arbitration shapes who submits; channel allocation shapes")
	fmt.Println("whom a submission collides with — the best isolation uses both.")
}
