package ssdkeeper_test

// External-package test: proves the public façade alone is sufficient for
// the library's main flows (simulate, learn, allocate), exactly as a
// downstream importer would use it.

import (
	"bytes"
	"context"
	"testing"

	"ssdkeeper"
)

func TestPublicAPISimulateFlow(t *testing.T) {
	cfg := ssdkeeper.EvalConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5},
			{WriteRatio: 0.1, Share: 0.5},
		},
		Requests: 800,
		IOPS:     8000,
		Seed:     1,
	}
	mix, err := spec.Build(cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ssdkeeper.ParseStrategy("6:2", cfg.Channels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ssdkeeper.Run(ssdkeeper.RunConfig{
		Device:   cfg,
		Options:  ssdkeeper.DefaultOptions(),
		Strategy: s,
		Traits:   spec.Traits(),
		Season:   ssdkeeper.DefaultSeasoning(),
	}, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(mix) || res.Device.Total() <= 0 {
		t.Errorf("implausible result: %d requests, total %v", res.Requests, res.Device.Total())
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	profiles := ssdkeeper.TableII(0.0001, ssdkeeper.EvalConfig().PageSize, 3)
	tr, err := ssdkeeper.GenerateTrace(profiles["web_2"])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ssdkeeper.WriteMSR(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, _, err := ssdkeeper.ReadMSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Errorf("round trip %d vs %d records", len(back), len(tr))
	}
}

func TestPublicAPILearningFlow(t *testing.T) {
	env := ssdkeeper.NewEnv()
	scale := ssdkeeper.QuickScale()
	scale.DatasetWorkloads = 6
	scale.DatasetRequests = 400

	samples, err := ssdkeeper.BuildDataset(context.Background(), env, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := ssdkeeper.TrainBest(env, scale, samples)
	if err != nil {
		t.Fatal(err)
	}

	// Model persistence through the façade.
	var buf bytes.Buffer
	if err := trained.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	model, err := ssdkeeper.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	k, err := ssdkeeper.NewKeeper(ssdkeeper.KeeperConfig{
		Device:         env.Device,
		Options:        env.Options,
		Strategies:     env.Strategies,
		SaturationIOPS: env.SaturationIOPS,
		Window:         50 * ssdkeeper.Millisecond,
		Season:         env.Season,
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	spec := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.95, Share: 0.4},
			{WriteRatio: 0.05, Share: 0.3},
			{WriteRatio: 0.9, Share: 0.2},
			{WriteRatio: 0.1, Share: 0.1},
		},
		Requests: 2000,
		IOPS:     9000,
		Seed:     5,
	}
	mix, err := spec.Build(env.Device.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := k.Run(mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Switches) == 0 {
		t.Error("keeper never adapted")
	}
}

func TestPublicAPIOpenChannelFlow(t *testing.T) {
	dev, err := ssdkeeper.NewOpenChannel(ssdkeeper.EvalConfig(), ssdkeeper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := ssdkeeper.Strategy{Kind: ssdkeeper.FourWay, Parts: []int{5, 1, 1, 1}}
	binding, err := s.Bind(8, make([]ssdkeeper.TenantTraits, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Apply(binding); err != nil {
		t.Fatal(err)
	}
	if got := len(dev.Leased(0)); got != 5 {
		t.Errorf("tenant 0 leased %d channels, want 5", got)
	}
}

func TestPublicAPIRunLayer(t *testing.T) {
	cfg := ssdkeeper.EvalConfig()
	spec := ssdkeeper.MixSpec{
		Tenants: []ssdkeeper.TenantSpec{
			{WriteRatio: 0.9, Share: 0.6},
			{WriteRatio: 0.1, Share: 0.4},
		},
		Requests: 1200,
		IOPS:     8000,
		Seed:     9,
	}
	mix, err := spec.Build(cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rc := ssdkeeper.RunConfig{
		Device:   cfg,
		Options:  ssdkeeper.DefaultOptions(),
		Strategy: ssdkeeper.Strategy{Kind: ssdkeeper.Shared},
		Traits:   spec.Traits(),
		Season:   ssdkeeper.DefaultSeasoning(),
	}

	// RunContext through the façade, with cancellation honored.
	res, err := ssdkeeper.RunContext(context.Background(), rc, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(mix) {
		t.Errorf("completed %d of %d", res.Requests, len(mix))
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ssdkeeper.RunContext(cancelled, rc, mix); err == nil {
		t.Error("cancelled RunContext succeeded")
	}

	// Instrumented runner: counters visible through the façade types.
	runner := ssdkeeper.NewRunner(ssdkeeper.WithProbe(ssdkeeper.NewCounterProbe(cfg)))
	run, err := runner.Run(context.Background(), rc, mix)
	if err != nil {
		t.Fatal(err)
	}
	if run.Counters == nil || run.Counters.Get("sim.events") <= 0 {
		t.Error("instrumented run reported no events")
	}
	if run.Counters.Get("ftl.gc.runs") <= 0 {
		t.Error("seasoned run reported no GC activity")
	}
}

func TestPublicAPIStrategySpaces(t *testing.T) {
	if got := len(ssdkeeper.TwoTenantSpace(8)); got != 8 {
		t.Errorf("two-tenant space %d", got)
	}
	if got := len(ssdkeeper.FourTenantSpace(8)); got != 42 {
		t.Errorf("four-tenant space %d", got)
	}
}
