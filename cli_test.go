package ssdkeeper_test

// End-to-end smoke tests for the command-line tools: each binary is built
// once and driven through its primary flows against real files, exactly as
// a user would. Skipped under -short.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildTools compiles every cmd/ binary into a shared temp dir once.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI smoke tests in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"ssdsim", "tracegen", "traceinfo", "keeper-train", "experiments"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = repoRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func runTool(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestCLIPipeline(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	tracePath := filepath.Join(work, "mix.csv")

	// tracegen: synthesize a Table IV mix.
	out, errOut := runTool(t, filepath.Join(bins, "tracegen"),
		"-mix", "Mix1", "-scale", "0.0004", "-head", "2500", "-seed", "3")
	if !strings.Contains(errOut, "generated") {
		t.Errorf("tracegen stderr missing summary: %q", errOut)
	}
	if err := os.WriteFile(tracePath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	// traceinfo: analyze it.
	out, _ = runTool(t, filepath.Join(bins, "traceinfo"), "-trace", tracePath)
	for _, want := range []string{"requests", "dominance", "feature vector", "intensity timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("traceinfo output missing %q:\n%s", want, out)
		}
	}

	// ssdsim: replay under two strategies; outputs must differ.
	shared, _ := runTool(t, filepath.Join(bins, "ssdsim"),
		"-trace", tracePath, "-strategy", "Shared")
	grouped, _ := runTool(t, filepath.Join(bins, "ssdsim"),
		"-trace", tracePath, "-strategy", "6:2", "-v")
	for _, want := range []string{"strategy Shared", "conflicts:", "ftl:", "makespan:"} {
		if !strings.Contains(shared, want) {
			t.Errorf("ssdsim output missing %q", want)
		}
	}
	if !strings.Contains(grouped, "per-channel bus utilization") {
		t.Error("ssdsim -v did not print channel utilization")
	}
	if shared == grouped {
		t.Error("different strategies produced identical reports")
	}

	// ssdsim -counters: the probe table must appear, with nonzero GC and
	// bus-busy counters on the (default) seasoned device.
	counters, _ := runTool(t, filepath.Join(bins, "ssdsim"),
		"-trace", tracePath, "-strategy", "Shared", "-counters")
	if !strings.Contains(counters, "probe counters:") {
		t.Fatalf("ssdsim -counters did not print the counter table:\n%s", counters)
	}
	for _, name := range []string{"ftl.gc.runs", "ch0.busy_ns", "sim.events"} {
		if v := counterValue(t, counters, name); v <= 0 {
			t.Errorf("counter %s = %d, want > 0 on a seasoned run", name, v)
		}
	}

	// ssdsim rejects a bad strategy.
	cmd := exec.Command(filepath.Join(bins, "ssdsim"), "-trace", tracePath, "-strategy", "9:1")
	if err := cmd.Run(); err == nil {
		t.Error("ssdsim accepted a 9:1 split on an 8-channel device")
	}
}

// counterValue extracts one value from ssdsim's "name value" counter table.
func counterValue(t *testing.T, out, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("counter %s has non-numeric value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("counter %s not in output:\n%s", name, out)
	return 0
}

func TestCLITrainAndReuse(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	modelPath := filepath.Join(work, "model.json")
	dataPath := filepath.Join(work, "data.jsonl")

	// keeper-train at smoke size: writes dataset and model.
	_, errOut := runTool(t, filepath.Join(bins, "keeper-train"),
		"-workloads", "6", "-requests", "500", "-iterations", "15",
		"-out", modelPath, "-dataset", dataPath)
	for _, want := range []string{"trained adam/logistic", "regret", "wrote"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("keeper-train stderr missing %q:\n%s", want, errOut)
		}
	}
	for _, p := range []string{modelPath, dataPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty", p)
		}
	}

	// Retrain from the saved dataset with another optimizer.
	_, errOut = runTool(t, filepath.Join(bins, "keeper-train"),
		"-reuse", "-dataset", dataPath, "-optimizer", "sgd-momentum",
		"-iterations", "10", "-out", modelPath)
	if !strings.Contains(errOut, "sgd-momentum") {
		t.Errorf("retrain stderr: %q", errOut)
	}

	// experiments: reuse both artifacts for fig6 (cheap, model-driven).
	outDir := filepath.Join(work, "results")
	stdout, _ := runTool(t, filepath.Join(bins, "experiments"),
		"-run", "fig6", "-scale", "quick", "-samples", dataPath,
		"-model", modelPath, "-out", outDir, "-q")
	if !strings.Contains(stdout, "Figure 6") {
		t.Error("experiments fig6 output malformed")
	}
	for _, f := range []string{"fig6.txt", "fig6.json"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("missing artifact %s", f)
		}
	}
}

func TestCLIExperimentsFig2Quick(t *testing.T) {
	bins := buildTools(t)
	stdout, _ := runTool(t, filepath.Join(bins, "experiments"),
		"-run", "fig2", "-scale", "quick", "-q")
	for _, want := range []string{"Figure 2(a)", "Figure 2(c)", "best strategy per write proportion"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}
}
