package simrun

import (
	"fmt"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/stats"
)

// CounterProbe implements sim.Probe by aggregating observations into a
// stats.Counters registry:
//
//	sim.events               engine events fired
//	chN.busy_ns              bus occupancy per channel, simulated ns
//	chN.waits                operations that queued behind a busy bus
//	die.busy_ns              die occupancy, summed over dies
//	die.wait_ns              time spent queued on busy dies, summed
//	dieN(chC).queue_max      per-die queue depth high-water mark
//	ftl.gc.runs              garbage-collection invocations
//	ftl.gc.moved_pages       valid pages relocated by GC
//	ftl.gc.erases            blocks erased
//	ftl.gc.stall_ns          die time consumed by GC passes (erase stalls)
//	ftl.wl.moved_pages       pages migrated by static wear leveling
//	ftl.cmt.hits             cached-mapping-table hits
//	ftl.cmt.misses           cached-mapping-table misses
//	health.die_failures      dies killed by injected faults
//	health.rebuilt_pages     valid pages rebuilt off dead dies
//	health.blocks_retired    blocks retired by injected faults
//	health.retired_moved     valid pages relocated off retired blocks
//	health.read_retries      reads that needed extra sensing passes
//	health.retry_passes      extra sensing passes charged to dies
//	health.slow_programs     programs stretched by wear-dependent slowdown
//	health.slow_extra_ns     extra die time from program slowdown
//
// All counter handles are resolved at construction, so the per-event cost
// is an index and an add — no map lookups, no allocation.
type CounterProbe struct {
	set *stats.Counters

	events *stats.Counter

	busBusy  []*stats.Counter // per channel
	busWaits []*stats.Counter // per channel

	dieBusy     *stats.Counter
	dieWait     *stats.Counter
	dieQueueMax []*stats.Counter // per die

	gcRuns, gcMoved, gcErases, gcStall *stats.Counter
	wlMoved                            *stats.Counter
	cmtHits, cmtMisses                 *stats.Counter

	dieFailures, rebuiltPages   *stats.Counter
	blocksRetired, retiredMoved *stats.Counter
	readRetries, retryPasses    *stats.Counter
	slowPrograms, slowExtra     *stats.Counter
}

var _ sim.Probe = (*CounterProbe)(nil)

// NewCounterProbe builds a probe sized for the given geometry. The counter
// registration order fixes the rendering order of the table.
func NewCounterProbe(cfg nand.Config) *CounterProbe {
	cs := stats.NewCounters()
	p := &CounterProbe{
		set:    cs,
		events: cs.Counter("sim.events"),
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		p.busBusy = append(p.busBusy, cs.Counter(fmt.Sprintf("ch%d.busy_ns", ch)))
		p.busWaits = append(p.busWaits, cs.Counter(fmt.Sprintf("ch%d.waits", ch)))
	}
	p.dieBusy = cs.Counter("die.busy_ns")
	p.dieWait = cs.Counter("die.wait_ns")
	for die := 0; die < cfg.TotalDies(); die++ {
		name := fmt.Sprintf("die%d(ch%d).queue_max", die, cfg.ChannelOfDie(die))
		p.dieQueueMax = append(p.dieQueueMax, cs.Counter(name))
	}
	p.gcRuns = cs.Counter("ftl.gc.runs")
	p.gcMoved = cs.Counter("ftl.gc.moved_pages")
	p.gcErases = cs.Counter("ftl.gc.erases")
	p.gcStall = cs.Counter("ftl.gc.stall_ns")
	p.wlMoved = cs.Counter("ftl.wl.moved_pages")
	p.cmtHits = cs.Counter("ftl.cmt.hits")
	p.cmtMisses = cs.Counter("ftl.cmt.misses")
	p.dieFailures = cs.Counter("health.die_failures")
	p.rebuiltPages = cs.Counter("health.rebuilt_pages")
	p.blocksRetired = cs.Counter("health.blocks_retired")
	p.retiredMoved = cs.Counter("health.retired_moved")
	p.readRetries = cs.Counter("health.read_retries")
	p.retryPasses = cs.Counter("health.retry_passes")
	p.slowPrograms = cs.Counter("health.slow_programs")
	p.slowExtra = cs.Counter("health.slow_extra_ns")
	return p
}

// Counters returns the underlying registry (Runner.Counters finds it here).
func (p *CounterProbe) Counters() *stats.Counters { return p.set }

// EventFired implements sim.Probe.
func (p *CounterProbe) EventFired(sim.Time) { p.events.Add(1) }

// ResourceQueued implements sim.Probe.
func (p *CounterProbe) ResourceQueued(kind sim.ResourceKind, index, queueLen int) {
	switch kind {
	case sim.KindBus:
		p.busWaits[index].Add(1)
	case sim.KindDie:
		p.dieQueueMax[index].Observe(int64(queueLen))
	}
}

// ResourceGranted implements sim.Probe.
func (p *CounterProbe) ResourceGranted(kind sim.ResourceKind, index int, hold, wait sim.Time) {
	switch kind {
	case sim.KindBus:
		p.busBusy[index].Add(int64(hold))
	case sim.KindDie:
		p.dieBusy.Add(int64(hold))
		p.dieWait.Add(int64(wait))
	}
}

// GC implements sim.Probe.
func (p *CounterProbe) GC(plane, moved, wearMoved, erases int, dieTime sim.Time) {
	p.gcRuns.Add(1)
	p.gcMoved.Add(int64(moved))
	p.gcErases.Add(int64(erases))
	p.gcStall.Add(int64(dieTime))
	p.wlMoved.Add(int64(wearMoved))
}

// CMT implements sim.Probe.
func (p *CounterProbe) CMT(hit bool) {
	if hit {
		p.cmtHits.Add(1)
	} else {
		p.cmtMisses.Add(1)
	}
}

// DieFailed implements sim.Probe.
func (p *CounterProbe) DieFailed(die, rebuilt int) {
	p.dieFailures.Add(1)
	p.rebuiltPages.Add(int64(rebuilt))
}

// BlockRetired implements sim.Probe.
func (p *CounterProbe) BlockRetired(plane, moved int) {
	p.blocksRetired.Add(1)
	p.retiredMoved.Add(int64(moved))
}

// ReadRetry implements sim.Probe.
func (p *CounterProbe) ReadRetry(die, passes int) {
	p.readRetries.Add(1)
	p.retryPasses.Add(int64(passes))
}

// ProgramSlowdown implements sim.Probe.
func (p *CounterProbe) ProgramSlowdown(die int, extra sim.Time) {
	p.slowPrograms.Add(1)
	p.slowExtra.Add(int64(extra))
}
