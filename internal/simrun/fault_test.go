package simrun

import (
	"context"
	"testing"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// faultTrace synthesizes a deterministic two-tenant mix long enough to
// straddle the fault plan's events.
func faultTrace(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	const pageSize = 16 * 1024
	for i := 0; i < n; i++ {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		tr = append(tr, trace.Record{
			Time:   sim.Time(i) * 100 * sim.Microsecond,
			Tenant: i % 2,
			Op:     op,
			Offset: int64((i * 7) % 512 * pageSize),
			Size:   pageSize,
		})
	}
	return tr
}

func testFaultPlan() *nand.FaultPlan {
	return &nand.FaultPlan{Seed: 7, Events: []nand.FaultEvent{
		{Kind: nand.FaultRetryTail, Prob: 0.1, At: 20 * sim.Millisecond},
		{Kind: nand.FaultDieFail, Channel: 0, Die: 0, At: 50 * sim.Millisecond},
		{Kind: nand.FaultProgramSlowdown, Factor: 1.5, At: 80 * sim.Millisecond},
		{Kind: nand.FaultRetireBlock, Channel: 1, Block: 3, At: 110 * sim.Millisecond},
	}}
}

// TestFaultPlanReplaysIdentically pins the tentpole determinism contract: a
// session with an active FaultPlan replays bit-identically whether the
// device is freshly built or reused-and-Reset by the runner, and the faults
// actually fire.
func TestFaultPlanReplaysIdentically(t *testing.T) {
	cfg := nand.TinyConfig()
	plan := testFaultPlan()
	rc := Config{
		Device:  cfg,
		Options: ssd.Options{FaultPlan: plan},
		Season:  DefaultSeasoning(),
	}
	tr := faultTrace(1500)

	run := func(r *Runner) (Result, ssd.HealthSnapshot) {
		sess, err := r.NewSession(rc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background(), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res, sess.Device().HealthSnapshot()
	}

	reused := NewInstrumentedRunner(cfg)
	res1, hs1 := run(reused)
	c1 := counterMap(t, res1)
	res2, hs2 := run(reused) // device cache hit: Reset + fault re-arm path
	c2 := counterMap(t, res2)
	fresh, hs3 := run(NewInstrumentedRunner(cfg)) // brand-new device
	c3 := counterMap(t, fresh)

	if hs1.DieFailures != 1 {
		t.Fatalf("die failure did not fire: %+v", hs1)
	}
	if hs1.ReadRetries == 0 {
		t.Error("retry tail drew no retries; plan too weak for the trace")
	}
	if hs1.BlocksRetired == 0 {
		t.Error("no blocks retired")
	}
	if hs1 != hs2 || hs1 != hs3 {
		t.Errorf("health snapshots diverge:\nreused1 %+v\nreused2 %+v\nfresh   %+v", hs1, hs2, hs3)
	}
	for _, pair := range []struct {
		name string
		a, b Result
	}{{"reused-vs-reset", res1, res2}, {"reused-vs-fresh", res1, fresh}} {
		if pair.a.Makespan != pair.b.Makespan {
			t.Errorf("%s: makespan %v vs %v", pair.name, pair.a.Makespan, pair.b.Makespan)
		}
		if pair.a.Conflicts != pair.b.Conflicts || pair.a.ConflictWait != pair.b.ConflictWait {
			t.Errorf("%s: conflicts %d/%v vs %d/%v", pair.name,
				pair.a.Conflicts, pair.a.ConflictWait, pair.b.Conflicts, pair.b.ConflictWait)
		}
		if pair.a.FTL != pair.b.FTL {
			t.Errorf("%s: FTL counters %+v vs %+v", pair.name, pair.a.FTL, pair.b.FTL)
		}
	}
	for name, v := range c1 {
		if c2[name] != v || c3[name] != v {
			t.Errorf("counter %s diverges: %d / %d / %d", name, v, c2[name], c3[name])
		}
	}
}

// TestZeroFaultPathUnchanged pins the fast-path contract: a nil FaultPlan
// produces exactly the same run as before the health tier existed — here
// approximated as "identical with and without a plan containing no events
// vs no plan at all" and "health counters all zero without a plan".
func TestZeroFaultPathUnchanged(t *testing.T) {
	cfg := nand.TinyConfig()
	tr := faultTrace(800)
	rc := Config{Device: cfg, Season: DefaultSeasoning()}

	r := NewInstrumentedRunner(cfg)
	sess, err := r.NewSession(rc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if hs := sess.Device().HealthSnapshot(); hs != (ssd.HealthSnapshot{}) {
		t.Errorf("immortal device reports health activity: %+v", hs)
	}
	for name, v := range counterMap(t, res) {
		if len(name) >= 7 && name[:7] == "health." && v != 0 {
			t.Errorf("immortal run moved health counter %s = %d", name, v)
		}
	}
}

func counterMap(t *testing.T, res Result) map[string]int64 {
	t.Helper()
	if res.Counters == nil {
		t.Fatal("no counters on instrumented result")
	}
	m := make(map[string]int64)
	for _, name := range res.Counters.Names() {
		m[name] = res.Counters.Get(name)
	}
	return m
}
