// Package simrun is the simulation-run layer: the one place that owns the
// construct-wire-replay lifecycle of a simulated SSD (nand geometry → ssd
// controller → FTL → seasoning → strategy binding → trace replay → stats).
// Every consumer — workload.Run, the figure drivers, the dataset labeler,
// the online keeper, the CLIs and the root façade — runs simulations
// through a Runner instead of wiring device + FTL + engine by hand.
//
// A Runner owns one simulation engine and one probe, and reuses both across
// sessions: Engine.Reset keeps the event heap's capacity, so loops that run
// many simulations back to back (the 42-strategy label loop) stop paying a
// heap allocation per run. Runs accept a context.Context and stop between
// events when it is cancelled. Probes (sim.Probe) observe every layer of a
// run; NewCounterProbe aggregates the observations into a stats.Counters
// registry, and the default no-op probe keeps the hot path allocation-free.
package simrun

import (
	"context"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
)

// Seasoning describes how the device is aged before traffic (see
// ftl.Season). The zero value leaves the device factory-fresh, which
// disables garbage collection for realistic workload sizes; experiments use
// DefaultSeasoning so GC stalls — a dominant interference source on a
// steady-state SSD — are present.
type Seasoning struct {
	ValidFrac  float64 // fraction of seasoned pages holding live cold data
	FreeBlocks int     // free blocks left per plane
	Seed       int64
}

// Enabled reports whether any aging is requested.
func (s Seasoning) Enabled() bool { return s.ValidFrac > 0 || s.FreeBlocks > 0 }

// DefaultSeasoning returns the aging used throughout the evaluation: planes
// nearly full, half the resident pages live. With five free blocks per
// plane, garbage collection engages within the first few thousand requests
// of a typical mix.
func DefaultSeasoning() Seasoning {
	return Seasoning{ValidFrac: 0.5, FreeBlocks: 5, Seed: 1}
}

// Config bundles everything needed to build a device and replay a trace on
// it under one strategy.
type Config struct {
	Device   nand.Config
	Options  ssd.Options
	Strategy alloc.Strategy
	// Traits drive the strategy binding. Empty traits skip binding
	// entirely, leaving every tenant on all channels with static
	// allocation — the state an online controller (the keeper) starts
	// from before its first adaptation.
	Traits []alloc.TenantTraits
	// Hybrid enables the paper's hybrid page allocator: dynamic page
	// allocation for write-dominated tenants, static for read-dominated
	// ones. When false every tenant uses static allocation (the SSDSim
	// default).
	Hybrid bool
	// Season ages the device before the run.
	Season Seasoning
}

// Result couples a device result with the probe counters captured during
// the run. Counters is nil when the runner has no counter probe.
type Result struct {
	ssd.Result
	Counters *stats.Counters
}

// Option configures a Runner.
type Option func(*Runner)

// WithProbe makes every session built by the runner instrument all layers
// (engine, buses, dies, FTL) with p.
func WithProbe(p sim.Probe) Option {
	return func(r *Runner) { r.probe = p }
}

// Runner owns a reusable simulation engine and a probe. It is single-
// goroutine, like the engine itself; concurrent labeling uses one Runner
// per worker.
type Runner struct {
	eng   *sim.Engine
	probe sim.Probe
	// col is the latency collector shared by every session the runner
	// builds; NewSession resets it, and results snapshot out of it, so
	// back-to-back runs reuse its accumulators and histogram storage.
	col *stats.Collector

	// dev caches the previous session's device. When the next session asks
	// for the same geometry and options the device is Reset and reused —
	// the FTL keeps its materialized plane storage, the resources their
	// queues — instead of rebuilt, which removes nearly all per-session
	// allocation from back-to-back run loops.
	dev     *ssd.Device
	devCfg  nand.Config
	devOpts ssd.Options
}

// NewRunner returns a runner with a fresh engine and, unless WithProbe says
// otherwise, no-op instrumentation.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{eng: sim.NewEngine(), col: stats.NewCollector()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// NewInstrumentedRunner returns a runner whose sessions are instrumented
// with a CounterProbe for the given geometry — the standard shape for
// serving shards and drain-replay verification, which both want the probe's
// counter registry alongside the device result.
func NewInstrumentedRunner(cfg nand.Config) *Runner {
	return NewRunner(WithProbe(NewCounterProbe(cfg)))
}

// Probe returns the runner's probe (nil when running uninstrumented).
func (r *Runner) Probe() sim.Probe { return r.probe }

// Counters returns the registry behind the runner's probe, or nil when the
// probe does not expose one. Counter values accumulate across sessions
// until Reset is called on the registry.
func (r *Runner) Counters() *stats.Counters {
	if cp, ok := r.probe.(interface{ Counters() *stats.Counters }); ok {
		return cp.Counters()
	}
	return nil
}

// Session is one configured device ready to replay traffic: built on the
// runner's (reset) engine, seasoned, and with the strategy bound. Starting
// a new session on the same runner invalidates the previous one.
type Session struct {
	r   *Runner
	dev *ssd.Device
}

// NewSession resets the runner's engine and builds a device on it per cfg:
// construct, season, bind the strategy. Counters accumulated by a counter
// probe are zeroed, so each session reports its own run.
func (r *Runner) NewSession(cfg Config) (*Session, error) {
	r.eng.Reset()
	r.col.Reset()
	if cs := r.Counters(); cs != nil {
		cs.Reset()
	}
	var dev *ssd.Device
	if r.dev != nil && cfg.Device == r.devCfg && cfg.Options == r.devOpts {
		dev = r.dev
		dev.Reset()
	} else {
		var err error
		dev, err = ssd.NewOnCollector(r.eng, r.probe, r.col, cfg.Device, cfg.Options)
		if err != nil {
			return nil, err
		}
		r.dev = dev
		r.devCfg = cfg.Device
		r.devOpts = cfg.Options
	}
	if cfg.Season.Enabled() {
		if err := dev.FTL().Season(cfg.Season.ValidFrac, cfg.Season.FreeBlocks, cfg.Season.Seed); err != nil {
			return nil, err
		}
	}
	if len(cfg.Traits) > 0 {
		if err := Apply(dev, cfg.Strategy, cfg.Traits, cfg.Hybrid); err != nil {
			return nil, err
		}
	}
	return &Session{r: r, dev: dev}, nil
}

// Device exposes the session's device, for drivers that pump the engine
// themselves (host interface, open-channel wrapper) or rebind strategies
// mid-run (the keeper).
func (s *Session) Device() *ssd.Device { return s.dev }

// Run replays the trace and returns the result with the runner's counters
// attached. It stops early with ctx's error when the context is cancelled.
func (s *Session) Run(ctx context.Context, t trace.Trace) (Result, error) {
	return s.RunObserved(ctx, t, nil)
}

// RunObserved is Run with an arrival hook: onArrival (may be nil) sees each
// record at its arrival instant — the keeper's features collector and
// window timer hang off it.
func (s *Session) RunObserved(ctx context.Context, t trace.Trace, onArrival func(i int, r trace.Record)) (Result, error) {
	res, err := s.dev.RunContext(ctx, t, onArrival)
	if err != nil {
		return Result{}, err
	}
	return Result{Result: res, Counters: s.r.Counters()}, nil
}

// Run builds a session for cfg and replays the trace on it — the whole
// lifecycle in one call.
func (r *Runner) Run(ctx context.Context, cfg Config, t trace.Trace) (Result, error) {
	sess, err := r.NewSession(cfg)
	if err != nil {
		return Result{}, err
	}
	return sess.Run(ctx, t)
}

// Apply binds a strategy onto a device's FTL: channel sets for every tenant
// and, when hybrid is set, the per-tenant page allocation mode.
func Apply(dev *ssd.Device, s alloc.Strategy, traits []alloc.TenantTraits, hybrid bool) error {
	binding, err := s.Bind(dev.Config().Channels, traits)
	if err != nil {
		return err
	}
	for tenant, set := range binding.Sets {
		if err := dev.FTL().SetTenantChannels(tenant, set); err != nil {
			return err
		}
		mode := ftl.StaticAlloc
		if hybrid && traits[tenant].WriteDominated {
			mode = ftl.DynamicAlloc
		}
		dev.FTL().SetTenantMode(tenant, mode)
	}
	return nil
}
