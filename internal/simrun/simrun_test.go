package simrun_test

// External test package: workload imports simrun, so these tests use the
// same entry points production callers do (workload.MixSpec for traffic).

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

func testTrace(t *testing.T, cfg nand.Config, requests int) (trace.Trace, []alloc.TenantTraits) {
	t.Helper()
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.6},
			{WriteRatio: 0.1, Share: 0.4},
		},
		Requests: requests,
		IOPS:     8000,
		Seed:     11,
	}
	tr, err := spec.Build(cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return tr, spec.Traits()
}

func testConfig(cfg nand.Config, traits []alloc.TenantTraits) simrun.Config {
	return simrun.Config{
		Device:   cfg,
		Options:  ssd.DefaultOptions(),
		Strategy: alloc.Strategy{Kind: alloc.Shared},
		Traits:   traits,
		Season:   simrun.DefaultSeasoning(),
	}
}

// TestRunnerReuseIsDeterministic is the engine-reuse contract end to end:
// back-to-back sessions on one runner produce exactly the results a fresh
// runner produces.
func TestRunnerReuseIsDeterministic(t *testing.T) {
	cfg := nand.EvalConfig()
	tr, traits := testTrace(t, cfg, 1500)
	rc := testConfig(cfg, traits)

	fresh, err := simrun.NewRunner().Run(context.Background(), rc, tr)
	if err != nil {
		t.Fatal(err)
	}
	runner := simrun.NewRunner()
	for round := 0; round < 3; round++ {
		got, err := runner.Run(context.Background(), rc, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got.Requests != fresh.Requests {
			t.Fatalf("round %d: %d requests, fresh run had %d", round, got.Requests, fresh.Requests)
		}
		if got.Device.Total() != fresh.Device.Total() {
			t.Fatalf("round %d: total %v differs from fresh run %v (engine reuse not deterministic)",
				round, got.Device.Total(), fresh.Device.Total())
		}
		if got.Makespan != fresh.Makespan {
			t.Fatalf("round %d: makespan %v vs %v", round, got.Makespan, fresh.Makespan)
		}
	}
}

// TestCounterProbeSeasonedDevice is the acceptance check: a seasoned device
// under write pressure must report nonzero GC and bus-busy counters.
func TestCounterProbeSeasonedDevice(t *testing.T) {
	cfg := nand.EvalConfig()
	tr, traits := testTrace(t, cfg, 4000)
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg)))
	res, err := runner.Run(context.Background(), testConfig(cfg, traits), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters == nil {
		t.Fatal("instrumented run returned nil counters")
	}
	mustPositive := []string{"sim.events", "ftl.gc.runs", "ftl.gc.moved_pages", "die.busy_ns"}
	for _, name := range mustPositive {
		if got := res.Counters.Get(name); got <= 0 {
			t.Errorf("counter %s = %d, want > 0 on a seasoned device", name, got)
		}
	}
	// Shared strategy spreads traffic across all channels: every bus busy.
	var busBusy int64
	for ch := 0; ch < cfg.Channels; ch++ {
		busBusy += res.Counters.Get(fmt.Sprintf("ch%d.busy_ns", ch))
	}
	if busBusy <= 0 {
		t.Error("buses never busy under a Shared workload")
	}
	// GC runs imply stall time was charged.
	if got := res.Counters.Get("ftl.gc.stall_ns"); got <= 0 {
		t.Error("GC ran but charged no die time")
	}
}

// TestSessionCountersResetBetweenSessions: each session reports its own run.
func TestSessionCountersResetBetweenSessions(t *testing.T) {
	cfg := nand.EvalConfig()
	tr, traits := testTrace(t, cfg, 800)
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg)))
	rc := testConfig(cfg, traits)
	first, err := runner.Run(context.Background(), rc, tr)
	if err != nil {
		t.Fatal(err)
	}
	firstEvents := first.Counters.Get("sim.events")
	second, err := runner.Run(context.Background(), rc, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Counters.Get("sim.events"); got != firstEvents {
		t.Errorf("second identical session fired %d events, first %d — counters not reset per session",
			got, firstEvents)
	}
}

func TestRunCancellation(t *testing.T) {
	cfg := nand.EvalConfig()
	tr, traits := testTrace(t, cfg, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := simrun.NewRunner().Run(ctx, testConfig(cfg, traits), tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestEmptyTraitsSkipBinding: a session with no traits leaves every tenant
// on all channels — the unbound state the online keeper starts from.
func TestEmptyTraitsSkipBinding(t *testing.T) {
	cfg := nand.TinyConfig()
	sess, err := simrun.NewRunner().NewSession(simrun.Config{
		Device: cfg, Options: ssd.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	set := sess.Device().FTL().TenantChannels(0)
	if len(set) != cfg.Channels {
		t.Errorf("unbound tenant restricted to %d of %d channels", len(set), cfg.Channels)
	}
}

func TestApplyHybridModes(t *testing.T) {
	cfg := nand.TinyConfig()
	sess, err := simrun.NewRunner().NewSession(simrun.Config{
		Device: cfg, Options: ssd.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := sess.Device()
	traits := []alloc.TenantTraits{{WriteDominated: true}, {WriteDominated: false}}
	if err := simrun.Apply(dev, alloc.Strategy{Kind: alloc.Isolated}, traits, true); err != nil {
		t.Fatal(err)
	}
	if dev.FTL().TenantMode(0) != ftl.DynamicAlloc {
		t.Error("write-dominated tenant not dynamic under hybrid")
	}
	if dev.FTL().TenantMode(1) != ftl.StaticAlloc {
		t.Error("read-dominated tenant not static under hybrid")
	}
}

func TestRunnerCountersNilWithoutProbe(t *testing.T) {
	if c := simrun.NewRunner().Counters(); c != nil {
		t.Errorf("uninstrumented runner exposes counters %v", c)
	}
}

// Device reuse contract: a runner that resets and reuses its cached device
// (same geometry and options) must reproduce exactly what fresh runners
// produce, across different strategies and seasonings; changing the config
// mid-stream must transparently rebuild.
func TestRunnerDeviceReuseMatchesFreshAcrossConfigs(t *testing.T) {
	cfg := nand.EvalConfig()
	tr, traits := testTrace(t, cfg, 1200)
	runs := []simrun.Config{
		testConfig(cfg, traits),
		func() simrun.Config { // different strategy, same device
			rc := testConfig(cfg, traits)
			rc.Strategy = alloc.Strategy{Kind: alloc.Isolated}
			return rc
		}(),
		func() simrun.Config { // no seasoning at all
			rc := testConfig(cfg, traits)
			rc.Season = simrun.Seasoning{}
			return rc
		}(),
		func() simrun.Config { // different options: forces a rebuild
			rc := testConfig(cfg, traits)
			rc.Options.MaxOutstanding = 8
			return rc
		}(),
		testConfig(cfg, traits), // back to the first: rebuild again
	}
	reused := simrun.NewRunner()
	for i, rc := range runs {
		got, err := reused.Run(context.Background(), rc, tr)
		if err != nil {
			t.Fatalf("run %d (reused): %v", i, err)
		}
		want, err := simrun.NewRunner().Run(context.Background(), rc, tr)
		if err != nil {
			t.Fatalf("run %d (fresh): %v", i, err)
		}
		if got.Makespan != want.Makespan {
			t.Errorf("run %d: makespan %v (reused) vs %v (fresh)", i, got.Makespan, want.Makespan)
		}
		if g, w := got.Device.Total(), want.Device.Total(); g != w {
			t.Errorf("run %d: device total %v (reused) vs %v (fresh)", i, g, w)
		}
		if g, w := got.FTL, want.FTL; g != w {
			t.Errorf("run %d: FTL counters %+v (reused) vs %+v (fresh)", i, g, w)
		}
		if g, w := got.Conflicts, want.Conflicts; g != w {
			t.Errorf("run %d: conflicts %d (reused) vs %d (fresh)", i, g, w)
		}
		for id, wl := range want.PerTenant {
			gl, ok := got.PerTenant[id]
			if !ok || gl.Read.Count != wl.Read.Count || gl.Read.Mean() != wl.Read.Mean() ||
				gl.Write.Count != wl.Write.Count || gl.Write.Mean() != wl.Write.Mean() {
				t.Errorf("run %d tenant %d: latencies diverge (reused %+v vs fresh %+v)", i, id, gl, wl)
			}
		}
	}
}

// Results snapshotted out of a session must stay valid after the runner
// starts (and runs) the next session on the same reused device.
func TestResultSurvivesNextSession(t *testing.T) {
	cfg := nand.EvalConfig()
	tr, traits := testTrace(t, cfg, 1000)
	rc := testConfig(cfg, traits)
	r := simrun.NewRunner()
	first, err := r.Run(context.Background(), rc, tr)
	if err != nil {
		t.Fatal(err)
	}
	total := first.Device.Total()
	p99 := first.Device.Read.P99()
	if _, err := r.Run(context.Background(), rc, tr); err != nil {
		t.Fatal(err)
	}
	if first.Device.Total() != total || first.Device.Read.P99() != p99 {
		t.Error("first session's result mutated by the second session")
	}
}
