//go:build amd64

#include "textflag.h"

// func matvecInt8AVX2(w, x *int8, out *int32, inPad, rows int)
//
// For each of `rows` weight rows (stride inPad bytes, inPad a positive
// multiple of 32): widen 16 int8 to int16 (VPMOVSXBW), multiply pairwise
// against the widened input and sum adjacent products into int32 lanes
// (VPMADDWD), accumulate, then reduce the 8 int32 lanes to out[o].
// |w|,|x| <= 127, so each VPMADDWD lane is at most 2*127*127 and the int32
// accumulator cannot overflow for any realistic layer width.
TEXT ·matvecInt8AVX2(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), SI
	MOVQ x+8(FP), DX
	MOVQ out+16(FP), DI
	MOVQ inPad+24(FP), CX
	MOVQ rows+32(FP), BX

rowloop:
	VPXOR Y0, Y0, Y0 // acc
	MOVQ  CX, R9     // bytes left in this row
	MOVQ  DX, R10    // input cursor (rewinds every row)

inner:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (R10), Y2
	VPMADDWD  Y2, Y1, Y1
	VPADDD    Y1, Y0, Y0
	VPMOVSXBW 16(SI), Y1
	VPMOVSXBW 16(R10), Y2
	VPMADDWD  Y2, Y1, Y1
	VPADDD    Y1, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $32, R10
	SUBQ      $32, R9
	JNE       inner

	// Horizontal sum of the 8 int32 lanes of Y0.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1 // high qword -> low
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1 // odd dword -> even
	VPADDD       X1, X0, X0
	VMOVD        X0, (DI)
	ADDQ         $4, DI
	DECQ         BX
	JNE          rowloop

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
