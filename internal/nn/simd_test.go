package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatvecInt8KernelMatchesGeneric pins the dispatched kernel (SIMD where
// the host supports it) to the scalar reference over random shapes and
// full-range int8 values, including negative extremes. Integer addition is
// associative, so the two must agree exactly, not approximately.
func TestMatvecInt8KernelMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ inPad, rows int }{
		{32, 1}, {32, 64}, {64, 42}, {96, 7}, {128, 130}, {32, 0},
	} {
		w := make([]int8, tc.rows*tc.inPad)
		x := make([]int8, tc.inPad)
		for i := range w {
			w[i] = int8(rng.Intn(255) - 127)
		}
		for i := range x {
			x[i] = int8(rng.Intn(255) - 127)
		}
		got := make([]int32, tc.rows)
		want := make([]int32, tc.rows)
		matvecInt8(w, x, got, tc.inPad, tc.rows)
		matvecInt8Generic(w, x, want, tc.inPad, tc.rows)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("inPad=%d rows=%d: out[%d] = %d, scalar reference %d",
					tc.inPad, tc.rows, o, got[o], want[o])
			}
		}
	}
}

// TestSigLevelMatchesLogistic bounds the LUT against the exact level
// round(127*sigmoid(z)): at the table's 1/128 z resolution the level may be
// off by one only near a rounding boundary, never more, and the saturated
// clamps must be exact.
func TestSigLevelMatchesLogistic(t *testing.T) {
	for z := -10.0; z <= 10.0; z += 0.003 {
		exact := math.Round(127 / (1 + math.Exp(-z)))
		got := float64(sigLevel(z))
		if math.Abs(got-exact) > 1 {
			t.Fatalf("sigLevel(%v) = %v, exact level %v", z, got, exact)
		}
	}
	if sigLevel(-100) != 0 || sigLevel(100) != 127 {
		t.Fatalf("saturation clamps wrong: %d, %d", sigLevel(-100), sigLevel(100))
	}
}

// TestArgmaxInvariant pins which activations allow ranking on
// pre-activations.
func TestArgmaxInvariant(t *testing.T) {
	for _, tc := range []struct {
		act  Activation
		want bool
	}{
		{Logistic{}, true}, {Tanh{}, true}, {Identity{}, true}, {ReLU{}, false},
	} {
		if got := argmaxInvariant(tc.act); got != tc.want {
			t.Errorf("argmaxInvariant(%s) = %v, want %v", tc.act.Name(), got, tc.want)
		}
	}
}

// BenchmarkMatvecInt8 measures the layer kernel alone at the paper model's
// two layer shapes.
func BenchmarkMatvecInt8(b *testing.B) {
	for _, tc := range []struct {
		name        string
		inPad, rows int
	}{
		{"9x64", 32, 64}, {"64x42", 64, 42},
	} {
		w := make([]int8, tc.rows*tc.inPad)
		x := make([]int8, tc.inPad)
		rng := rand.New(rand.NewSource(1))
		for i := range w {
			w[i] = int8(rng.Intn(255) - 127)
		}
		for i := range x {
			x[i] = int8(rng.Intn(255) - 127)
		}
		out := make([]int32, tc.rows)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matvecInt8(w, x, out, tc.inPad, tc.rows)
			}
		})
	}
}
