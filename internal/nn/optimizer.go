package nn

import "math"

// Optimizer applies one update step to a parameter tensor given its
// gradient. The id identifies the tensor so stateful optimizers (momentum,
// Adam, ...) can keep per-tensor state; a given id must always refer to a
// tensor of the same length.
type Optimizer interface {
	Step(id int, params, grads []float64)
	Name() string
}

// SGD is plain stochastic gradient descent: w := w - lr*g. The paper uses an
// initial learning rate of 0.2.
type SGD struct {
	LR float64
}

// NewSGD returns plain SGD with the paper's learning rate when lr <= 0.
func NewSGD(lr float64) *SGD {
	if lr <= 0 {
		lr = 0.2
	}
	return &SGD{LR: lr}
}

// Step applies w := w - lr*g.
func (s *SGD) Step(_ int, params, grads []float64) {
	for i := range params {
		params[i] -= s.LR * grads[i]
	}
}

// Name returns "sgd".
func (s *SGD) Name() string { return "sgd" }

// Momentum is SGD with classical momentum: v := mu*v - lr*g; w := w + v.
// The paper uses momentum 0.9.
type Momentum struct {
	LR, Mu float64
	vel    map[int][]float64
}

// NewMomentum returns SGD-momentum with the paper's hyperparameters when
// arguments are non-positive (lr 0.2, mu 0.9).
func NewMomentum(lr, mu float64) *Momentum {
	if lr <= 0 {
		lr = 0.2
	}
	if mu <= 0 {
		mu = 0.9
	}
	return &Momentum{LR: lr, Mu: mu, vel: make(map[int][]float64)}
}

// Step applies the momentum update.
func (m *Momentum) Step(id int, params, grads []float64) {
	v, ok := m.vel[id]
	if !ok {
		v = make([]float64, len(params))
		m.vel[id] = v
	}
	for i := range params {
		v[i] = m.Mu*v[i] - m.LR*grads[i]
		params[i] += v[i]
	}
}

// Name returns "sgd-momentum".
func (m *Momentum) Name() string { return "sgd-momentum" }

// AdaGrad accumulates squared gradients and scales the step by their inverse
// square root; it "works well with sparse gradients" (Section II.B).
type AdaGrad struct {
	LR, Eps float64
	acc     map[int][]float64
}

// NewAdaGrad returns AdaGrad with lr defaulting to 0.05.
func NewAdaGrad(lr float64) *AdaGrad {
	if lr <= 0 {
		lr = 0.05
	}
	return &AdaGrad{LR: lr, Eps: 1e-8, acc: make(map[int][]float64)}
}

// Step applies the AdaGrad update.
func (a *AdaGrad) Step(id int, params, grads []float64) {
	acc, ok := a.acc[id]
	if !ok {
		acc = make([]float64, len(params))
		a.acc[id] = acc
	}
	for i := range params {
		g := grads[i]
		acc[i] += g * g
		params[i] -= a.LR * g / (math.Sqrt(acc[i]) + a.Eps)
	}
}

// Name returns "adagrad".
func (a *AdaGrad) Name() string { return "adagrad" }

// RMSProp keeps an exponential moving average of squared gradients; it
// "works well in on-line and non-stationary settings" (Section II.B).
type RMSProp struct {
	LR, Rho, Eps float64
	acc          map[int][]float64
}

// NewRMSProp returns RMSProp with lr 0.01 and rho 0.9 defaults.
func NewRMSProp(lr, rho float64) *RMSProp {
	if lr <= 0 {
		lr = 0.01
	}
	if rho <= 0 {
		rho = 0.9
	}
	return &RMSProp{LR: lr, Rho: rho, Eps: 1e-8, acc: make(map[int][]float64)}
}

// Step applies the RMSProp update.
func (r *RMSProp) Step(id int, params, grads []float64) {
	acc, ok := r.acc[id]
	if !ok {
		acc = make([]float64, len(params))
		r.acc[id] = acc
	}
	for i := range params {
		g := grads[i]
		acc[i] = r.Rho*acc[i] + (1-r.Rho)*g*g
		params[i] -= r.LR * g / (math.Sqrt(acc[i]) + r.Eps)
	}
}

// Name returns "rmsprop".
func (r *RMSProp) Name() string { return "rmsprop" }

// Adam combines momentum (first moment) and RMSProp (second moment) with
// bias correction, per Kingma & Ba. The paper's initial learning rate is
// 0.02.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	m, v                  map[int][]float64
	t                     map[int]int
}

// NewAdam returns Adam with the paper's learning rate (0.02) and the
// standard beta defaults when arguments are non-positive.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 0.02
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[int][]float64), v: make(map[int][]float64), t: make(map[int]int),
	}
}

// Step applies the bias-corrected Adam update.
func (a *Adam) Step(id int, params, grads []float64) {
	m, ok := a.m[id]
	if !ok {
		m = make([]float64, len(params))
		a.m[id] = m
		a.v[id] = make([]float64, len(params))
	}
	v := a.v[id]
	a.t[id]++
	t := float64(a.t[id])
	c1 := 1 - math.Pow(a.Beta1, t)
	c2 := 1 - math.Pow(a.Beta2, t)
	for i := range params {
		g := grads[i]
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
		mhat := m[i] / c1
		vhat := v[i] / c2
		params[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
	}
}

// Name returns "adam".
func (a *Adam) Name() string { return "adam" }
