package nn

import "fmt"

// Inference is a per-caller forward-pass arena over a shared, read-only
// network. Many Inference instances may run concurrently against the same
// Network as long as nobody trains it: each owns its activation scratch, so
// Forward/Predict here never touch the network's own buffers and need no
// locking. This is what lets every serving shard (and every pooled Predict
// caller) run the classifier contention-free.
type Inference struct {
	net *Network
	as  [][]float64

	// Batch scratch: one flat activation plane per layer plus the row
	// headers ForwardBatch returns, grown on demand and reused across
	// calls.
	batchAs [][]float64
	rows    [][]float64
}

// CloneForInference returns an inference handle sharing the network's
// weights with private scratch. The handle is NOT safe for concurrent use
// with itself — clone once per goroutine.
func (n *Network) CloneForInference() *Inference {
	inf := &Inference{
		net:     n,
		as:      make([][]float64, 0, len(n.Layers)),
		batchAs: make([][]float64, len(n.Layers)),
	}
	for _, l := range n.Layers {
		inf.as = append(inf.as, make([]float64, l.Out))
	}
	return inf
}

// InputDim returns the expected input width.
func (inf *Inference) InputDim() int { return inf.net.InputDim() }

// OutputDim returns the number of classes.
func (inf *Inference) OutputDim() int { return inf.net.OutputDim() }

// Forward computes logits for one input. The returned slice is scratch owned
// by this Inference: copy it before the next call if you need to keep it.
func (inf *Inference) Forward(x []float64) ([]float64, error) {
	if len(x) != inf.net.InputDim() {
		return nil, fmt.Errorf("nn: input dim %d, want %d", len(x), inf.net.InputDim())
	}
	return forwardInto(inf.net.Layers, x, nil, inf.as), nil
}

// Predict returns the argmax class for one input.
func (inf *Inference) Predict(x []float64) (int, error) {
	logits, err := inf.Forward(x)
	if err != nil {
		return 0, err
	}
	return argmax(logits), nil
}

// ForwardBatch computes logits for every input in one pass over the weight
// matrices: each weight row is loaded once and applied to the whole batch.
// The per-sample accumulation order is exactly Forward's (bias first, then
// inputs in ascending index), so each returned row is bit-identical to a
// standalone Forward of the same input. Returned rows are scratch owned by
// this handle.
func (inf *Inference) ForwardBatch(xs [][]float64) ([][]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	dim := inf.net.InputDim()
	for s, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("nn: batch input %d dim %d, want %d", s, len(x), dim)
		}
	}
	if cap(inf.rows) < n {
		inf.rows = make([][]float64, n)
	}
	out := inf.rows[:n]
	ins := xs
	for li, l := range inf.net.Layers {
		if need := n * l.Out; cap(inf.batchAs[li]) < need {
			inf.batchAs[li] = make([]float64, need)
		}
		plane := inf.batchAs[li][:n*l.Out]
		for o := 0; o < l.Out; o++ {
			row := l.W[o*l.In : (o+1)*l.In]
			bo := l.B[o]
			for s, in := range ins {
				acc := bo
				for i, v := range in {
					acc += row[i] * v
				}
				plane[s*l.Out+o] = l.Act.F(acc)
			}
		}
		if li == 0 {
			ins = out
		}
		for s := 0; s < n; s++ {
			out[s] = plane[s*l.Out : (s+1)*l.Out]
		}
	}
	return out, nil
}

// PredictBatch writes the argmax class of each input into classes, deciding
// for the whole batch in one pass over the weight matrices. classes must
// have len(xs) entries.
func (inf *Inference) PredictBatch(xs [][]float64, classes []int) error {
	if len(classes) != len(xs) {
		return fmt.Errorf("nn: %d class slots for %d inputs", len(classes), len(xs))
	}
	logits, err := inf.ForwardBatch(xs)
	if err != nil {
		return err
	}
	for s, row := range logits {
		classes[s] = argmax(row)
	}
	return nil
}

// forwardInto is the shared forward kernel: it fills as[li] with layer li's
// activations (and zs[li] with pre-activations when zs is non-nil — the
// training path needs them for backprop) and returns the final activation
// slice. Inputs x and the weight slices are only read.
func forwardInto(layers []*Dense, x []float64, zs, as [][]float64) []float64 {
	in := x
	for li, l := range layers {
		a := as[li]
		var z []float64
		if zs != nil {
			z = zs[li]
		}
		for o := 0; o < l.Out; o++ {
			s := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, v := range in {
				s += row[i] * v
			}
			if z != nil {
				z[o] = s
			}
			a[o] = l.Act.F(s)
		}
		in = a
	}
	return in
}

// argmax returns the index of the largest logit (first on ties).
func argmax(logits []float64) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}
