package nn

import "fmt"

// Inference is a per-caller forward-pass arena over a shared, read-only
// network. Many Inference instances may run concurrently against the same
// Network as long as nobody trains it: each owns its activation scratch, so
// Forward/Predict here never touch the network's own buffers and need no
// locking. This is what lets every serving shard (and every pooled Predict
// caller) run the classifier contention-free.
type Inference struct {
	net *Network
	as  [][]float64
}

// CloneForInference returns an inference handle sharing the network's
// weights with private scratch. The handle is NOT safe for concurrent use
// with itself — clone once per goroutine.
func (n *Network) CloneForInference() *Inference {
	inf := &Inference{net: n, as: make([][]float64, 0, len(n.Layers))}
	for _, l := range n.Layers {
		inf.as = append(inf.as, make([]float64, l.Out))
	}
	return inf
}

// InputDim returns the expected input width.
func (inf *Inference) InputDim() int { return inf.net.InputDim() }

// OutputDim returns the number of classes.
func (inf *Inference) OutputDim() int { return inf.net.OutputDim() }

// Forward computes logits for one input. The returned slice is scratch owned
// by this Inference: copy it before the next call if you need to keep it.
func (inf *Inference) Forward(x []float64) ([]float64, error) {
	if len(x) != inf.net.InputDim() {
		return nil, fmt.Errorf("nn: input dim %d, want %d", len(x), inf.net.InputDim())
	}
	return forwardInto(inf.net.Layers, x, nil, inf.as), nil
}

// Predict returns the argmax class for one input.
func (inf *Inference) Predict(x []float64) (int, error) {
	logits, err := inf.Forward(x)
	if err != nil {
		return 0, err
	}
	return argmax(logits), nil
}

// forwardInto is the shared forward kernel: it fills as[li] with layer li's
// activations (and zs[li] with pre-activations when zs is non-nil — the
// training path needs them for backprop) and returns the final activation
// slice. Inputs x and the weight slices are only read.
func forwardInto(layers []*Dense, x []float64, zs, as [][]float64) []float64 {
	in := x
	for li, l := range layers {
		a := as[li]
		var z []float64
		if zs != nil {
			z = zs[li]
		}
		for o := 0; o < l.Out; o++ {
			s := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, v := range in {
				s += row[i] * v
			}
			if z != nil {
				z[o] = s
			}
			a[o] = l.Act.F(s)
		}
		in = a
	}
	return in
}

// argmax returns the index of the largest logit (first on ties).
func argmax(logits []float64) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}
