package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInferenceMatchesNetworkForward: a clone's forward pass is bit-identical
// to the network's own, and clones don't disturb the network's scratch.
func TestInferenceMatchesNetworkForward(t *testing.T) {
	net, err := NewMLP([]int{9, 16, 7}, ReLU{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inf := net.CloneForInference()
	if inf.InputDim() != 9 || inf.OutputDim() != 7 {
		t.Fatalf("clone dims %d/%d", inf.InputDim(), inf.OutputDim())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		x := make([]float64, 9)
		for j := range x {
			x[j] = rng.Float64()
		}
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := append([]float64(nil), want...)
		got, err := inf.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantCopy {
			if got[j] != wantCopy[j] {
				t.Fatalf("input %d logit %d: clone %v != network %v", i, j, got[j], wantCopy[j])
			}
		}
		wantIdx, _ := net.Predict(x)
		gotIdx, err := inf.Predict(x)
		if err != nil || gotIdx != wantIdx {
			t.Fatalf("input %d: clone predict %d (%v), network %d", i, gotIdx, err, wantIdx)
		}
	}
	if _, err := inf.Forward(make([]float64, 3)); err == nil {
		t.Error("wrong input dim accepted")
	}
}

// TestInferenceConcurrent runs many clones over one network at once; under
// -race this pins that per-clone scratch shares nothing mutable.
func TestInferenceConcurrent(t *testing.T) {
	net, err := NewMLP([]int{9, 32, 5}, Logistic{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 9)
	for j := range x {
		x[j] = float64(j) / 9
	}
	want, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inf := net.CloneForInference()
			for i := 0; i < 200; i++ {
				got, err := inf.Predict(x)
				if err != nil || got != want {
					t.Errorf("concurrent predict %d (%v), want %d", got, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
