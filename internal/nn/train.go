package nn

import (
	"fmt"
	"math/rand"
	"time"
)

// Dataset is a labelled classification set.
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks shape consistency against a class count.
func (d Dataset) Validate(inputDim, classes int) error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("nn: %d inputs vs %d labels", len(d.X), len(d.Y))
	}
	for i, x := range d.X {
		if len(x) != inputDim {
			return fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x), inputDim)
		}
		if d.Y[i] < 0 || d.Y[i] >= classes {
			return fmt.Errorf("nn: sample %d label %d outside [0,%d)", i, d.Y[i], classes)
		}
	}
	return nil
}

// Shuffle permutes the dataset in place, deterministically by seed.
func (d Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split divides the dataset into a training and test portion; frac is the
// training fraction (the paper uses 0.7).
func (d Dataset) Split(frac float64) (train, test Dataset) {
	n := int(float64(len(d.X)) * frac)
	if n < 0 {
		n = 0
	}
	if n > len(d.X) {
		n = len(d.X)
	}
	return Dataset{X: d.X[:n], Y: d.Y[:n]}, Dataset{X: d.X[n:], Y: d.Y[n:]}
}

// TrainConfig controls a training run. One iteration is one epoch (a full
// pass over the training set in minibatches), matching the paper's
// 200-iteration x-axis.
type TrainConfig struct {
	Iterations int
	BatchSize  int
	Optimizer  Optimizer
	Seed       int64
	// EvalEvery records loss/accuracy once per this many iterations
	// (default 1).
	EvalEvery int
}

// HistoryPoint is one recorded evaluation during training.
type HistoryPoint struct {
	Iteration    int
	TrainLoss    float64
	TestAccuracy float64
}

// History is the loss/accuracy trajectory of a training run — the series
// plotted in Figure 4.
type History struct {
	Points       []HistoryPoint
	TrainingTime time.Duration
	FinalLoss    float64
	FinalAcc     float64
}

// Train fits the network on train, evaluating on test. The same network can
// be trained further by calling Train again.
func Train(net *Network, train, test Dataset, cfg TrainConfig) (History, error) {
	if cfg.Iterations <= 0 {
		return History{}, fmt.Errorf("nn: non-positive iteration count %d", cfg.Iterations)
	}
	if cfg.Optimizer == nil {
		return History{}, fmt.Errorf("nn: nil optimizer")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if err := train.Validate(net.InputDim(), net.OutputDim()); err != nil {
		return History{}, fmt.Errorf("nn: train set: %w", err)
	}
	if err := test.Validate(net.InputDim(), net.OutputDim()); err != nil {
		return History{}, fmt.Errorf("nn: test set: %w", err)
	}
	if train.Len() == 0 {
		return History{}, fmt.Errorf("nn: empty training set")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}
	bx := make([][]float64, 0, cfg.BatchSize)
	by := make([]int, 0, cfg.BatchSize)

	var h History
	start := time.Now()
	for it := 1; it <= cfg.Iterations; it++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		batches := 0
		for at := 0; at < len(order); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			bx, by = bx[:0], by[:0]
			for _, idx := range order[at:end] {
				bx = append(bx, train.X[idx])
				by = append(by, train.Y[idx])
			}
			loss, err := net.TrainBatch(bx, by, cfg.Optimizer)
			if err != nil {
				return History{}, err
			}
			epochLoss += loss
			batches++
		}
		if it%cfg.EvalEvery == 0 || it == cfg.Iterations {
			acc := 0.0
			if test.Len() > 0 {
				var err error
				acc, err = net.Accuracy(test.X, test.Y)
				if err != nil {
					return History{}, err
				}
			}
			h.Points = append(h.Points, HistoryPoint{
				Iteration:    it,
				TrainLoss:    epochLoss / float64(batches),
				TestAccuracy: acc,
			})
		}
	}
	h.TrainingTime = time.Since(start)
	if n := len(h.Points); n > 0 {
		h.FinalLoss = h.Points[n-1].TrainLoss
		h.FinalAcc = h.Points[n-1].TestAccuracy
	}
	return h, nil
}
