package nn

// matvecInt8Generic is the portable integer layer kernel: a scalar int32
// multiply-accumulate over int8 operands, one weight row at a time. It is
// the semantic reference for matvecInt8AVX2 — integer addition is
// associative, so both orderings produce identical sums.
func matvecInt8Generic(w, x []int8, out []int32, inPad, rows int) {
	x = x[:inPad]
	for o := 0; o < rows; o++ {
		out[o] = dotInt8(w[o*inPad:o*inPad+inPad], x)
	}
}

// dotInt8 is the scalar inner loop: an int32 accumulate of int8 products.
// Two accumulator chains hide the add latency; the reslice of qx lets the
// compiler drop its bounds checks.
func dotInt8(row, qx []int8) int32 {
	var acc0, acc1 int32
	qx = qx[:len(row)]
	n := len(row) &^ 1
	for i := 0; i < n; i += 2 {
		acc0 += int32(row[i]) * int32(qx[i])
		acc1 += int32(row[i+1]) * int32(qx[i+1])
	}
	if len(row)&1 != 0 {
		acc0 += int32(row[n]) * int32(qx[n])
	}
	return acc0 + acc1
}
