//go:build !amd64

package nn

// Portable dispatch: every architecture without a SIMD kernel serves int8
// through the scalar loop. The scalar and SIMD kernels compute identical
// int32 sums, so precision-sensitive callers see no difference.

func matvecInt8(w, x []int8, out []int32, inPad, rows int) {
	matvecInt8Generic(w, x, out, inPad, rows)
}
