package nn

import (
	"fmt"
	"math"
)

// The paper argues SSDKeeper's model fits comfortably in controller SRAM
// (Section IV.D counts 16 bytes per neuron). Deployed FTL models are
// normally quantized below float64; this file provides simulated
// quantization — weights are rounded to the target precision's grid but
// kept as float64 — so the accuracy cost of each deployment precision can
// be measured with the regular evaluation path.

// Precision is a storage format for deployed model parameters.
type Precision uint8

// Deployment precisions.
const (
	Float64 Precision = iota
	Float32
	Float16
	Int8
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int8:
		return "int8"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision parses a precision name as rendered by String. The empty
// string parses as Float64, matching the checkpoint convention that an
// absent precision field means an unquantized model.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64":
		return Float64, nil
	case "float32":
		return Float32, nil
	case "float16":
		return Float16, nil
	case "int8":
		return Int8, nil
	}
	return Float64, fmt.Errorf("nn: unknown precision %q", s)
}

// Bytes returns the per-parameter storage cost.
func (p Precision) Bytes() int {
	switch p {
	case Float64:
		return 8
	case Float32:
		return 4
	case Float16:
		return 2
	case Int8:
		return 1
	default:
		return 8
	}
}

// quantizeValue rounds v onto the precision's representable grid.
func quantizeValue(v float64, p Precision, scale float64) float64 {
	switch p {
	case Float64:
		return v
	case Float32:
		return float64(float32(v))
	case Float16:
		return float16Round(v)
	case Int8:
		if scale == 0 {
			return 0
		}
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		}
		if q < -128 {
			q = -128
		}
		return q * scale
	default:
		return v
	}
}

// float16Round rounds a float64 to the nearest IEEE 754 half-precision
// value (without handling the subnormal corner cases exactly — values that
// small are zero for our purposes).
func float16Round(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	abs := math.Abs(v)
	if abs < 6.104e-05 { // below half-precision normal range
		return 0
	}
	if abs > 65504 { // half-precision max
		return math.Copysign(65504, v)
	}
	// Round the mantissa to 10 bits: scale so the mantissa lsb is 1.
	exp := math.Floor(math.Log2(abs))
	step := math.Exp2(exp - 10)
	return math.Round(v/step) * step
}

// Quantized returns a copy of the network whose parameters are rounded to
// the given precision's grid (per-tensor affine scaling for Int8). The copy
// is independently trainable and serializable.
func (n *Network) Quantized(p Precision) *Network {
	out := &Network{}
	for _, l := range n.Layers {
		scaleW := int8Scale(l.W)
		scaleB := int8Scale(l.B)
		nl := &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W:  make([]float64, len(l.W)),
			B:  make([]float64, len(l.B)),
			gw: make([]float64, len(l.W)),
			gb: make([]float64, len(l.B)),
		}
		for i, w := range l.W {
			nl.W[i] = quantizeValue(w, p, scaleW)
		}
		for i, b := range l.B {
			nl.B[i] = quantizeValue(b, p, scaleB)
		}
		out.Layers = append(out.Layers, nl)
	}
	out.initScratch()
	return out
}

// int8Scale returns the per-tensor affine scale mapping the tensor's range
// onto [-128, 127].
func int8Scale(vals []float64) float64 {
	maxAbs := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	return maxAbs / 127
}

// StorageBytes estimates the deployed parameter footprint at a precision
// (Int8 includes one float32 scale per tensor).
func (n *Network) StorageBytes(p Precision) int {
	total := n.ParamCount() * p.Bytes()
	if p == Int8 {
		total += len(n.Layers) * 2 * 4
	}
	return total
}
