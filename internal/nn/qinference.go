package nn

import (
	"fmt"
	"math"
)

// This file is the deployed counterpart of quantize.go. Quantized (there)
// simulates a storage precision by rounding weights onto its grid while
// keeping float64 arithmetic, so accuracy cost can be measured with the
// regular evaluation path. QuantizeInt8 (here) builds the artifact that is
// actually served: weights stored as int8 with one scale per tensor, and a
// forward kernel whose inner loop is an int32 multiply-accumulate over int8
// operands (AVX2 VPMADDWD where available, a scalar loop elsewhere — both
// compute identical sums; see simd.go).
//
// The numerical contract ties the two files together: an int8 weight w8 with
// scale s represents exactly the float64 value float64(w8)*s, and s is the
// same int8Scale used by Quantized(Int8). Activations are quantized to int8
// per sample; logits differ from the simulated path only by that activation
// quantization. Three serving-side choices buy the speedup:
//
//   - weight rows are zero-padded to a multiple of 32 bytes so the integer
//     kernel needs no tail handling (padding contributes nothing to a dot);
//   - a logistic hidden layer's activations are produced directly as int8
//     levels round(127*sigmoid(z)) through a lookup table with the fixed
//     codomain scale 1/127 — no float activation plane, no math.Exp, no
//     re-quantization scan. The table has 1/128-of-a-unit z resolution, so
//     a level can be off by one only when z sits within a table step of a
//     rounding boundary. Non-logistic hidden layers keep the generic path:
//     float activations, then a dynamic symmetric re-quantization;
//   - Predict/PredictBatch rank classes on final-layer pre-activations when
//     the output activation is strictly increasing (logistic, tanh,
//     identity — argmax is invariant under them). This skips the output
//     activation entirely and ranks at full float resolution where a
//     saturated activation would collapse near-ties onto the same value.

// QuantizedNet is an immutable int8 deployment artifact built from a trained
// Network. It is shared read-only across any number of QuantizedInference
// instances; per-caller scratch lives in the inference handle, mirroring
// Network/Inference.
type QuantizedNet struct {
	layers []qlayer
}

// qlayer is one dense layer in deployed form. Biases stay float64: they are
// added once per output after the integer dot product is dequantized, so
// quantizing them buys nothing and costs accuracy.
type qlayer struct {
	in, out int
	inPad   int    // in rounded up to a multiple of 32 (kernel row stride)
	w       []int8 // row-major, stride inPad; float weight == float64(w[o*inPad+i]) * wScale
	wScale  float64
	b       []float64
	act     Activation
}

// QuantizeInt8 converts the network to its int8 deployment form using the
// same per-tensor affine scale as Quantized(Int8): scale = maxAbs/127,
// weight w maps to round(w/scale). The conversion is deterministic, so the
// same checkpoint always yields the same served decisions.
func (n *Network) QuantizeInt8() *QuantizedNet {
	q := &QuantizedNet{layers: make([]qlayer, 0, len(n.Layers))}
	for _, l := range n.Layers {
		scale := int8Scale(l.W)
		inPad := (l.In + 31) &^ 31
		ql := qlayer{
			in: l.In, out: l.Out, inPad: inPad,
			w:      make([]int8, l.Out*inPad),
			wScale: scale,
			b:      append([]float64(nil), l.B...),
			act:    l.Act,
		}
		if scale != 0 {
			for o := 0; o < l.Out; o++ {
				for i := 0; i < l.In; i++ {
					v := math.Round(l.W[o*l.In+i] / scale)
					if v > 127 {
						v = 127
					}
					if v < -127 {
						v = -127
					}
					ql.w[o*inPad+i] = int8(v)
				}
			}
		}
		q.layers = append(q.layers, ql)
	}
	return q
}

// InputDim returns the expected input width.
func (q *QuantizedNet) InputDim() int { return q.layers[0].in }

// OutputDim returns the number of classes.
func (q *QuantizedNet) OutputDim() int { return q.layers[len(q.layers)-1].out }

// StorageBytes returns the deployed parameter footprint: one byte per
// weight, eight per (float64) bias, plus one scale per tensor. Kernel row
// padding is a runtime layout choice, not a deployed parameter, so it does
// not count.
func (q *QuantizedNet) StorageBytes() int {
	total := 0
	for _, l := range q.layers {
		total += l.in*l.out + 8*len(l.b) + 8
	}
	return total
}

// The logistic level table: sigLevel(z) equals round(127*sigmoid(z)) up to
// the table's z resolution of 1/128. Outside [sigLUTMin, sigLUTMax] the
// exact level is already pinned at 0 or 127, so clamping there is exact.
const (
	sigLUTMin = -6.5
	sigLUTMax = 6.5
	sigLUTRes = 128 // table buckets per unit of z
	// invLevels is the fixed activation scale of a LUT-quantized layer
	// output: level 127 represents activation 1.0.
	invLevels = 1.0 / 127
)

var sigLevelLUT = buildSigLevelLUT()

func buildSigLevelLUT() []int8 {
	t := make([]int8, int((sigLUTMax-sigLUTMin)*sigLUTRes))
	for i := range t {
		z := sigLUTMin + (float64(i)+0.5)/sigLUTRes
		t[i] = int8(math.Round(127 / (1 + math.Exp(-z))))
	}
	return t
}

// sigLevel returns the int8 activation level of sigmoid(z) under the fixed
// 1/127 codomain scale.
func sigLevel(z float64) int8 {
	if z <= sigLUTMin {
		return 0
	}
	if z >= sigLUTMax {
		return 127
	}
	return sigLevelLUT[int((z-sigLUTMin)*sigLUTRes)]
}

// argmaxInvariant reports whether act is strictly increasing, i.e. whether
// ranking pre-activations picks the same class as ranking activations. ReLU
// is excluded: it collapses every negative pre-activation to 0, which can
// move a first-on-ties argmax.
func argmaxInvariant(act Activation) bool {
	switch act.(type) {
	case Logistic, Tanh, Identity:
		return true
	}
	return false
}

// QuantizedInference is a per-caller forward-pass arena over a shared
// QuantizedNet, mirroring CloneForInference: the int8 weights are shared
// read-only, while the activation planes and accumulator scratch are
// private. Any number of handles run concurrently over one QuantizedNet; a
// single handle is NOT safe for concurrent use with itself.
type QuantizedInference struct {
	net *QuantizedNet

	maxInPad int // widest kernel row stride across layers
	maxOut   int // widest layer output

	// Single-sample scratch: two int8 activation planes (current layer
	// input / next layer input), the int32 accumulators, a float scratch
	// row for non-LUT activations, and the logits row Forward returns.
	qx, qnext []int8
	accs      []int32
	fa        []float64
	logits    []float64

	// Batch scratch, grown on demand and reused across calls: the same
	// planes with one row per sample (int8 planes at stride maxInPad,
	// accumulators at the layer's output width), per-sample activation
	// scales, the batch logits plane and the row headers ForwardBatch
	// returns.
	batchQX, batchNext []int8
	batchAccs          []int32
	scales             []float64
	logitsPlane        []float64
	rows               [][]float64
}

// CloneForInference returns an inference handle sharing the quantized
// weights with private scratch. Clone once per goroutine.
func (q *QuantizedNet) CloneForInference() *QuantizedInference {
	inf := &QuantizedInference{net: q}
	for _, l := range q.layers {
		if l.inPad > inf.maxInPad {
			inf.maxInPad = l.inPad
		}
		if l.out > inf.maxOut {
			inf.maxOut = l.out
		}
	}
	inf.qx = make([]int8, inf.maxInPad)
	inf.qnext = make([]int8, inf.maxInPad)
	inf.accs = make([]int32, inf.maxOut)
	inf.fa = make([]float64, inf.maxOut)
	inf.logits = make([]float64, q.OutputDim())
	return inf
}

// InputDim returns the expected input width.
func (inf *QuantizedInference) InputDim() int { return inf.net.InputDim() }

// OutputDim returns the number of classes.
func (inf *QuantizedInference) OutputDim() int { return inf.net.OutputDim() }

// quantizeInput fills dst[:in] with round(x/scale) under the dynamic
// symmetric scale mapping the sample's max magnitude onto 127, and zeroes
// the kernel padding dst[in:inPad]. A zero input yields scale 0 and an
// all-zero dst; the caller multiplies by the scale afterwards, so the layer
// degenerates to its biases, matching quantizeValue's convention.
func quantizeInput(dst []int8, x []float64, in, inPad int) (scale float64) {
	scale = quantizeActivations(dst[:in], x)
	for i := in; i < inPad; i++ {
		dst[i] = 0
	}
	return scale
}

// quantizeActivations fills dst with round(x/scale) where scale maps the
// sample's max magnitude onto 127 (symmetric, dynamic).
func quantizeActivations(dst []int8, x []float64) (scale float64) {
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range x {
			dst[i] = 0
		}
		return 0
	}
	scale = maxAbs / 127
	inv := 1 / scale
	for i, v := range x {
		dst[i] = int8(math.Round(v * inv))
	}
	return scale
}

// activateQuantize turns one hidden layer's integer accumulators into the
// next layer's int8 input row dst (padded to padTo) and returns that row's
// activation scale. Logistic layers go straight to int8 levels through the
// LUT at the fixed codomain scale; anything else computes float activations
// into fa and re-quantizes dynamically. Both the single and the batched
// forward pass each sample through this one function, which is what makes
// them bit-identical.
func activateQuantize(l *qlayer, accs []int32, deq float64, dst []int8, fa []float64, padTo int) float64 {
	if _, ok := l.act.(Logistic); ok {
		for o, a := range accs {
			dst[o] = sigLevel(float64(a)*deq + l.b[o])
		}
		for i := len(accs); i < padTo; i++ {
			dst[i] = 0
		}
		return invLevels
	}
	fa = fa[:len(accs)]
	for o, a := range accs {
		fa[o] = l.act.F(float64(a)*deq + l.b[o])
	}
	scale := quantizeActivations(dst[:len(accs)], fa)
	for i := len(accs); i < padTo; i++ {
		dst[i] = 0
	}
	return scale
}

// run drives one sample through every layer's integer kernel and returns
// the final layer's accumulators plus their dequantization factor. The
// caller turns them into logits (Forward) or a class (Predict).
func (inf *QuantizedInference) run(x []float64) (accs []int32, deq float64) {
	layers := inf.net.layers
	cur, nxt := inf.qx, inf.qnext
	sx := quantizeInput(cur, x, layers[0].in, layers[0].inPad)
	for li := range layers {
		l := &layers[li]
		accs = inf.accs[:l.out]
		matvecInt8(l.w, cur, accs, l.inPad, l.out)
		deq = l.wScale * sx
		if li == len(layers)-1 {
			break
		}
		sx = activateQuantize(l, accs, deq, nxt, inf.fa, layers[li+1].inPad)
		cur, nxt = nxt, cur
	}
	return accs, deq
}

// Forward computes logits for one input. The returned slice is scratch owned
// by this handle: copy it before the next call if you need to keep it.
func (inf *QuantizedInference) Forward(x []float64) ([]float64, error) {
	if len(x) != inf.net.InputDim() {
		return nil, fmt.Errorf("nn: input dim %d, want %d", len(x), inf.net.InputDim())
	}
	accs, deq := inf.run(x)
	l := &inf.net.layers[len(inf.net.layers)-1]
	logits := inf.logits[:l.out]
	for o, a := range accs {
		logits[o] = l.act.F(float64(a)*deq + l.b[o])
	}
	return logits, nil
}

// argmaxPreact ranks the final layer's classes from its integer
// accumulators: directly on pre-activations when the output activation is
// strictly increasing, through act.F otherwise.
func argmaxPreact(l *qlayer, accs []int32, deq float64) int {
	skip := argmaxInvariant(l.act)
	best := 0
	bv := float64(accs[0])*deq + l.b[0]
	if !skip {
		bv = l.act.F(bv)
	}
	for o := 1; o < len(accs); o++ {
		v := float64(accs[o])*deq + l.b[o]
		if !skip {
			v = l.act.F(v)
		}
		if v > bv {
			best, bv = o, v
		}
	}
	return best
}

// Predict returns the argmax class for one input.
func (inf *QuantizedInference) Predict(x []float64) (int, error) {
	if len(x) != inf.net.InputDim() {
		return 0, fmt.Errorf("nn: input dim %d, want %d", len(x), inf.net.InputDim())
	}
	accs, deq := inf.run(x)
	return argmaxPreact(&inf.net.layers[len(inf.net.layers)-1], accs, deq), nil
}

// growBatch sizes the batch scratch for n samples. Planes are reused across
// calls, so a steady batch size allocates only once.
func (inf *QuantizedInference) growBatch(n int) {
	if cap(inf.batchQX) < n*inf.maxInPad {
		inf.batchQX = make([]int8, n*inf.maxInPad)
		inf.batchNext = make([]int8, n*inf.maxInPad)
	}
	if cap(inf.batchAccs) < n*inf.maxOut {
		inf.batchAccs = make([]int32, n*inf.maxOut)
	}
	if cap(inf.scales) < n {
		inf.scales = make([]float64, n)
	}
	if cap(inf.logitsPlane) < n*inf.net.OutputDim() {
		inf.logitsPlane = make([]float64, n*inf.net.OutputDim())
	}
	if cap(inf.rows) < n {
		inf.rows = make([][]float64, n)
	}
}

// checkBatch validates a batch's input dimensions.
func (inf *QuantizedInference) checkBatch(xs [][]float64) error {
	dim := inf.net.InputDim()
	for s, x := range xs {
		if len(x) != dim {
			return fmt.Errorf("nn: batch input %d dim %d, want %d", s, len(x), dim)
		}
	}
	return nil
}

// runBatch drives every sample through the layer kernels in one pass over
// the weight matrices and leaves the final layer's accumulators in
// batchAccs (stride OutputDim) with the final per-sample input scales in
// scales. The per-sample arithmetic goes through the same helpers as run,
// so results are bit-identical to standalone single-sample calls.
func (inf *QuantizedInference) runBatch(xs [][]float64) {
	n := len(xs)
	inf.growBatch(n)
	layers := inf.net.layers
	stride := inf.maxInPad
	cur, nxt := inf.batchQX, inf.batchNext
	scales := inf.scales[:n]
	for s, x := range xs {
		scales[s] = quantizeInput(cur[s*stride:(s+1)*stride], x, layers[0].in, layers[0].inPad)
	}
	for li := range layers {
		l := &layers[li]
		for s := 0; s < n; s++ {
			matvecInt8(l.w, cur[s*stride:], inf.batchAccs[s*l.out:s*l.out+l.out], l.inPad, l.out)
		}
		if li == len(layers)-1 {
			return
		}
		padTo := layers[li+1].inPad
		for s := 0; s < n; s++ {
			accs := inf.batchAccs[s*l.out : s*l.out+l.out]
			scales[s] = activateQuantize(l, accs, l.wScale*scales[s], nxt[s*stride:], inf.fa, padTo)
		}
		cur, nxt = nxt, cur
	}
}

// ForwardBatch computes logits for every input in one pass over the weight
// matrices, amortizing scratch management, kernel dispatch and loop control
// across samples. Each returned row is bit-identical to a standalone
// Forward of the same input. Returned rows are scratch owned by this
// handle.
func (inf *QuantizedInference) ForwardBatch(xs [][]float64) ([][]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	if err := inf.checkBatch(xs); err != nil {
		return nil, err
	}
	inf.runBatch(xs)
	l := &inf.net.layers[len(inf.net.layers)-1]
	rows := inf.rows[:n]
	plane := inf.logitsPlane[:n*l.out]
	for s := 0; s < n; s++ {
		deq := l.wScale * inf.scales[s]
		accs := inf.batchAccs[s*l.out : s*l.out+l.out]
		row := plane[s*l.out : (s+1)*l.out]
		for o, a := range accs {
			row[o] = l.act.F(float64(a)*deq + l.b[o])
		}
		rows[s] = row
	}
	return rows, nil
}

// PredictBatch writes the argmax class of each input into classes, deciding
// for the whole batch in one pass over the weight matrices without ever
// materializing float logits. classes must have len(xs) entries.
func (inf *QuantizedInference) PredictBatch(xs [][]float64, classes []int) error {
	if len(classes) != len(xs) {
		return fmt.Errorf("nn: %d class slots for %d inputs", len(classes), len(xs))
	}
	if len(xs) == 0 {
		return nil
	}
	if err := inf.checkBatch(xs); err != nil {
		return err
	}
	inf.runBatch(xs)
	l := &inf.net.layers[len(inf.net.layers)-1]
	for s := range xs {
		accs := inf.batchAccs[s*l.out : s*l.out+l.out]
		classes[s] = argmaxPreact(l, accs, l.wScale*inf.scales[s])
	}
	return nil
}
