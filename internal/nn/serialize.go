package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelFile is the on-disk JSON schema. It stores enough to rebuild the
// network exactly; gradients and optimizer state are not persisted (the
// trained model is deployed for inference inside the FTL, per Section IV.D).
type modelFile struct {
	Version int         `json:"version"`
	Layers  []layerFile `json:"layers"`
}

type layerFile struct {
	In         int       `json:"in"`
	Out        int       `json:"out"`
	Activation string    `json:"activation"`
	W          []float64 `json:"w"`
	B          []float64 `json:"b"`
}

// Save writes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	mf := modelFile{Version: 1}
	for _, l := range n.Layers {
		mf.Layers = append(mf.Layers, layerFile{
			In: l.In, Out: l.Out, Activation: l.Act.Name(), W: l.W, B: l.B,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(mf)
}

// Load reads a network saved by Save.
func Load(r io.Reader) (*Network, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("nn: decode model: %w", err)
	}
	if mf.Version != 1 {
		return nil, fmt.Errorf("nn: unsupported model version %d", mf.Version)
	}
	if len(mf.Layers) == 0 {
		return nil, fmt.Errorf("nn: model has no layers")
	}
	n := &Network{}
	prevOut := -1
	for i, lf := range mf.Layers {
		if lf.In <= 0 || lf.Out <= 0 {
			return nil, fmt.Errorf("nn: layer %d has invalid shape %dx%d", i, lf.In, lf.Out)
		}
		if prevOut != -1 && lf.In != prevOut {
			return nil, fmt.Errorf("nn: layer %d input %d does not match previous output %d", i, lf.In, prevOut)
		}
		if len(lf.W) != lf.In*lf.Out || len(lf.B) != lf.Out {
			return nil, fmt.Errorf("nn: layer %d weight/bias sizes inconsistent", i)
		}
		act, err := ActivationByName(lf.Activation)
		if err != nil {
			return nil, err
		}
		n.Layers = append(n.Layers, &Dense{
			In: lf.In, Out: lf.Out, Act: act,
			W:  lf.W,
			B:  lf.B,
			gw: make([]float64, lf.In*lf.Out),
			gb: make([]float64, lf.Out),
		})
		prevOut = lf.Out
	}
	n.initScratch()
	return n, nil
}
