package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully-connected layer: out = act(W·in + b). Weights are
// stored row-major: W[o*In+i] connects input i to output o.
type Dense struct {
	In, Out int
	W       []float64
	B       []float64
	Act     Activation

	// Gradient accumulators, reused across batches.
	gw []float64
	gb []float64
}

// NewDense builds a layer with activation-appropriate initialization: He for
// ReLU, Xavier otherwise.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:   make([]float64, in*out),
		B:   make([]float64, out),
		Act: act,
		gw:  make([]float64, in*out),
		gb:  make([]float64, out),
	}
	var scale float64
	if _, isRelu := act.(ReLU); isRelu {
		scale = math.Sqrt(2 / float64(in))
	} else {
		scale = math.Sqrt(1 / float64(in))
	}
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Network is a feed-forward classifier. The final layer produces logits; the
// softmax is folded into the cross-entropy loss.
type Network struct {
	Layers []*Dense

	// Per-layer forward scratch (pre-activations and activations),
	// reused across samples.
	zs  [][]float64
	as  [][]float64
	del [][]float64
}

// NewMLP builds a multi-layer perceptron with the given layer sizes (e.g.
// {9, 64, 42} for the paper's network), hidden activation act and an
// Identity output layer. The seed makes initialization reproducible.
func NewMLP(sizes []int, act Activation, seed int64) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output sizes, got %v", sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer size in %v", sizes)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{}
	for i := 0; i+1 < len(sizes); i++ {
		a := act
		if i == len(sizes)-2 {
			a = Identity{}
		}
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], a, rng))
	}
	n.initScratch()
	return n, nil
}

func (n *Network) initScratch() {
	n.zs = n.zs[:0]
	n.as = n.as[:0]
	n.del = n.del[:0]
	for _, l := range n.Layers {
		n.zs = append(n.zs, make([]float64, l.Out))
		n.as = append(n.as, make([]float64, l.Out))
		n.del = append(n.del, make([]float64, l.Out))
	}
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim returns the number of classes.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// Forward computes logits for one input. The returned slice is scratch owned
// by the network: copy it before the next call if you need to keep it.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("nn: input dim %d, want %d", len(x), n.InputDim())
	}
	return forwardInto(n.Layers, x, n.zs, n.as), nil
}

// Predict returns the argmax class for one input.
func (n *Network) Predict(x []float64) (int, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	return argmax(logits), nil
}

// Probs returns the softmax class distribution for one input in a fresh
// slice.
func (n *Network) Probs(x []float64) ([]float64, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(logits))
	Softmax(logits, out)
	return out, nil
}

// lossGrad runs forward+backward for one sample, accumulating parameter
// gradients into the layers and returning the cross-entropy loss.
func (n *Network) lossGrad(x []float64, label int) (float64, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	if label < 0 || label >= len(logits) {
		return 0, fmt.Errorf("nn: label %d outside [0,%d)", label, len(logits))
	}
	last := len(n.Layers) - 1
	probs := n.del[last]
	Softmax(logits, probs)
	loss := -math.Log(math.Max(probs[label], 1e-15))
	// dL/dlogit = softmax - onehot.
	probs[label] -= 1

	// Backward pass.
	for li := last; li >= 0; li-- {
		l := n.Layers[li]
		delta := n.del[li]
		var in []float64
		if li == 0 {
			in = x
		} else {
			in = n.as[li-1]
		}
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			l.gb[o] += d
			grow := l.gw[o*l.In : (o+1)*l.In]
			for i, v := range in {
				grow[i] += d * v
			}
		}
		if li > 0 {
			prev := n.Layers[li-1]
			pd := n.del[li-1]
			pz := n.zs[li-1]
			pa := n.as[li-1]
			for i := 0; i < l.In; i++ {
				s := 0.0
				for o := 0; o < l.Out; o++ {
					s += l.W[o*l.In+i] * delta[o]
				}
				pd[i] = s * prev.Act.Deriv(pz[i], pa[i])
			}
		}
	}
	return loss, nil
}

// zeroGrads clears the accumulated gradients.
func (n *Network) zeroGrads() {
	for _, l := range n.Layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// TrainBatch accumulates gradients over a minibatch and applies one
// optimizer step with the mean gradient. It returns the mean loss.
func (n *Network) TrainBatch(xs [][]float64, labels []int, opt Optimizer) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	if len(xs) != len(labels) {
		return 0, fmt.Errorf("nn: %d inputs vs %d labels", len(xs), len(labels))
	}
	n.zeroGrads()
	total := 0.0
	for i, x := range xs {
		loss, err := n.lossGrad(x, labels[i])
		if err != nil {
			return 0, err
		}
		total += loss
	}
	inv := 1 / float64(len(xs))
	for li, l := range n.Layers {
		for i := range l.gw {
			l.gw[i] *= inv
		}
		for i := range l.gb {
			l.gb[i] *= inv
		}
		opt.Step(2*li, l.W, l.gw)
		opt.Step(2*li+1, l.B, l.gb)
	}
	return total * inv, nil
}

// Loss returns the mean cross-entropy over a labelled set.
func (n *Network) Loss(xs [][]float64, labels []int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	total := 0.0
	probs := make([]float64, n.OutputDim())
	for i, x := range xs {
		logits, err := n.Forward(x)
		if err != nil {
			return 0, err
		}
		Softmax(logits, probs)
		total += -math.Log(math.Max(probs[labels[i]], 1e-15))
	}
	return total / float64(len(xs)), nil
}

// Accuracy returns the top-1 accuracy over a labelled set.
func (n *Network) Accuracy(xs [][]float64, labels []int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	correct := 0
	for i, x := range xs {
		p, err := n.Predict(x)
		if err != nil {
			return 0, err
		}
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}

// ParamCount returns the number of trainable parameters, and StorageBytes
// the footprint under the paper's 16-bytes-per-neuron accounting.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}
