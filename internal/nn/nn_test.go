package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp quick's wild values into a sane range.
			logits[i] = math.Mod(v, 50)
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		out := make([]float64, len(logits))
		Softmax(logits, out)
		sum := 0.0
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	logits := []float64{1000, 1001, 999}
	out := make([]float64, 3)
	Softmax(logits, out)
	for _, p := range out {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("softmax overflowed: %v", out)
		}
	}
	if !(out[1] > out[0] && out[0] > out[2]) {
		t.Errorf("ordering lost: %v", out)
	}
}

func TestActivationDerivatives(t *testing.T) {
	acts := []Activation{ReLU{}, Logistic{}, Tanh{}, Identity{}}
	for _, act := range acts {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			y := act.F(x)
			got := act.Deriv(x, y)
			h := 1e-6
			want := (act.F(x+h) - act.F(x-h)) / (2 * h)
			if math.Abs(got-want) > 1e-4 {
				t.Errorf("%s'(%v) = %v, numeric %v", act.Name(), x, got, want)
			}
		}
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"relu", "logistic", "tanh", "identity"} {
		act, err := ActivationByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if act.Name() != name {
			t.Errorf("round trip %s -> %s", name, act.Name())
		}
	}
	if _, err := ActivationByName("swish"); err == nil {
		t.Error("unknown activation accepted")
	}
}

// TestGradientCheck verifies backprop against numerical differentiation on a
// small network — the canonical correctness test for an NN implementation.
func TestGradientCheck(t *testing.T) {
	for _, act := range []Activation{Logistic{}, Tanh{}, ReLU{}} {
		net, err := NewMLP([]int{3, 5, 4}, act, 7)
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{0.3, -0.6, 0.9}
		label := 2

		net.zeroGrads()
		if _, err := net.lossGrad(x, label); err != nil {
			t.Fatal(err)
		}

		lossAt := func() float64 {
			logits, err := net.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			probs := make([]float64, len(logits))
			Softmax(logits, probs)
			return -math.Log(probs[label])
		}

		const h = 1e-6
		checked := 0
		for li, l := range net.Layers {
			for wi := range l.W {
				orig := l.W[wi]
				l.W[wi] = orig + h
				up := lossAt()
				l.W[wi] = orig - h
				down := lossAt()
				l.W[wi] = orig
				numeric := (up - down) / (2 * h)
				analytic := l.gw[wi]
				if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Errorf("%s layer %d W[%d]: analytic %v vs numeric %v",
						act.Name(), li, wi, analytic, numeric)
				}
				checked++
			}
			for bi := range l.B {
				orig := l.B[bi]
				l.B[bi] = orig + h
				up := lossAt()
				l.B[bi] = orig - h
				down := lossAt()
				l.B[bi] = orig
				numeric := (up - down) / (2 * h)
				if analytic := l.gb[bi]; math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Errorf("%s layer %d B[%d]: analytic %v vs numeric %v",
						act.Name(), li, bi, analytic, numeric)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no parameters checked")
		}
	}
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP([]int{5}, ReLU{}, 1); err == nil {
		t.Error("single-layer spec accepted")
	}
	if _, err := NewMLP([]int{5, 0, 3}, ReLU{}, 1); err == nil {
		t.Error("zero-width layer accepted")
	}
	net, err := NewMLP([]int{9, 64, 42}, Logistic{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.InputDim() != 9 || net.OutputDim() != 42 {
		t.Errorf("dims %d/%d, want 9/42", net.InputDim(), net.OutputDim())
	}
	// Paper network size: 9*64+64 + 64*42+42 parameters.
	want := 9*64 + 64 + 64*42 + 42
	if got := net.ParamCount(); got != want {
		t.Errorf("param count %d, want %d", got, want)
	}
}

func TestForwardRejectsWrongDim(t *testing.T) {
	net, _ := NewMLP([]int{3, 2}, ReLU{}, 1)
	if _, err := net.Forward([]float64{1, 2}); err == nil {
		t.Error("wrong input dim accepted")
	}
	if _, err := net.lossGrad([]float64{1, 2, 3}, 9); err == nil {
		t.Error("out-of-range label accepted")
	}
}

// toyDataset builds a linearly-separable-ish 3-class problem.
func toyDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var d Dataset
	for i := 0; i < n; i++ {
		class := rng.Intn(3)
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64() * 0.3
		}
		x[class] += 2 // class signal
		d.X = append(d.X, x)
		d.Y = append(d.Y, class)
	}
	return d
}

func TestTrainingLearnsToyProblemWithEveryOptimizer(t *testing.T) {
	train := toyDataset(300, 1)
	test := toyDataset(100, 2)
	opts := []Optimizer{
		NewSGD(0.2),
		NewMomentum(0.2, 0.9),
		NewAdaGrad(0.05),
		NewRMSProp(0.01, 0.9),
		NewAdam(0.02),
	}
	for _, opt := range opts {
		net, err := NewMLP([]int{4, 16, 3}, Logistic{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := Train(net, train, test, TrainConfig{
			Iterations: 30, BatchSize: 16, Optimizer: opt, Seed: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", opt.Name(), err)
		}
		if hist.FinalAcc < 0.9 {
			t.Errorf("%s: final accuracy %.2f < 0.9", opt.Name(), hist.FinalAcc)
		}
		if hist.FinalLoss > hist.Points[0].TrainLoss {
			t.Errorf("%s: loss did not decrease (%.3f -> %.3f)",
				opt.Name(), hist.Points[0].TrainLoss, hist.FinalLoss)
		}
	}
}

func TestTrainHistoryShape(t *testing.T) {
	train := toyDataset(60, 5)
	test := toyDataset(20, 6)
	net, _ := NewMLP([]int{4, 8, 3}, ReLU{}, 1)
	hist, err := Train(net, train, test, TrainConfig{
		Iterations: 10, BatchSize: 8, Optimizer: NewAdam(0), Seed: 1, EvalEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Points) != 5 {
		t.Errorf("history has %d points, want 5 (every 2 of 10)", len(hist.Points))
	}
	if hist.Points[len(hist.Points)-1].Iteration != 10 {
		t.Error("final iteration not recorded")
	}
	if hist.TrainingTime <= 0 {
		t.Error("training time not recorded")
	}
}

func TestTrainValidation(t *testing.T) {
	net, _ := NewMLP([]int{4, 3}, ReLU{}, 1)
	good := toyDataset(10, 1)
	if _, err := Train(net, good, Dataset{}, TrainConfig{Iterations: 0, Optimizer: NewSGD(0)}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Train(net, good, Dataset{}, TrainConfig{Iterations: 1}); err == nil {
		t.Error("nil optimizer accepted")
	}
	if _, err := Train(net, Dataset{}, Dataset{}, TrainConfig{Iterations: 1, Optimizer: NewSGD(0)}); err == nil {
		t.Error("empty training set accepted")
	}
	bad := Dataset{X: [][]float64{{1, 2, 3, 4}}, Y: []int{7}}
	if _, err := Train(net, bad, Dataset{}, TrainConfig{Iterations: 1, Optimizer: NewSGD(0)}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestDatasetSplitAndShuffle(t *testing.T) {
	d := toyDataset(100, 9)
	train, test := d.Split(0.7)
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split %d/%d, want 70/30", train.Len(), test.Len())
	}
	// Shuffle is deterministic per seed and preserves pairing.
	d2 := toyDataset(100, 9)
	d.Shuffle(5)
	d2.Shuffle(5)
	for i := range d.X {
		if d.Y[i] != d2.Y[i] {
			t.Fatal("shuffle not deterministic")
		}
		// The class signal must still be at index Y[i].
		if d.X[i][d.Y[i]] < 1 {
			t.Fatal("shuffle broke X/Y pairing")
		}
	}
}

func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 per optimizer; gradient = 2(w-3).
	opts := []Optimizer{
		NewSGD(0.1),
		NewMomentum(0.05, 0.8),
		NewAdaGrad(0.9),
		NewRMSProp(0.1, 0.9),
		NewAdam(0.3),
	}
	for _, opt := range opts {
		w := []float64{-4}
		g := []float64{0}
		for i := 0; i < 500; i++ {
			g[0] = 2 * (w[0] - 3)
			opt.Step(0, w, g)
		}
		if math.Abs(w[0]-3) > 0.05 {
			t.Errorf("%s converged to %v, want 3", opt.Name(), w[0])
		}
	}
}

func TestMomentumAcceleratesOnRavine(t *testing.T) {
	// On an ill-conditioned quadratic momentum should reach the optimum
	// faster than plain SGD at the same learning rate.
	steps := func(opt Optimizer) int {
		w := []float64{-4}
		g := []float64{0}
		for i := 0; i < 10000; i++ {
			g[0] = 0.02 * (w[0] - 3) // shallow gradient
			opt.Step(0, w, g)
			if math.Abs(w[0]-3) < 0.01 {
				return i
			}
		}
		return 10000
	}
	sgd := steps(NewSGD(0.5))
	mom := steps(NewMomentum(0.5, 0.9))
	if mom >= sgd {
		t.Errorf("momentum (%d steps) not faster than SGD (%d steps)", mom, sgd)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	net, err := NewMLP([]int{9, 64, 42}, Logistic{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 9)
	for i := range x {
		x[i] = float64(i) / 9
	}
	wantPred, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	wantLogits, _ := net.Forward(x)
	wantCopy := append([]float64(nil), wantLogits...)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := back.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if gotPred != wantPred {
		t.Errorf("prediction changed after round trip: %d vs %d", gotPred, wantPred)
	}
	gotLogits, _ := back.Forward(x)
	for i := range wantCopy {
		if math.Abs(gotLogits[i]-wantCopy[i]) > 1e-12 {
			t.Fatalf("logit %d changed: %v vs %v", i, gotLogits[i], wantCopy[i])
		}
	}
	// The loaded network must be trainable.
	if _, err := back.TrainBatch([][]float64{x}, []int{3}, NewAdam(0)); err != nil {
		t.Errorf("loaded network not trainable: %v", err)
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := []string{
		``,
		`{"version":2,"layers":[]}`,
		`{"version":1,"layers":[]}`,
		`{"version":1,"layers":[{"in":2,"out":1,"activation":"relu","w":[1],"b":[1]}]}`,                                                                          // W wrong len
		`{"version":1,"layers":[{"in":2,"out":1,"activation":"nope","w":[1,2],"b":[1]}]}`,                                                                        // bad act
		`{"version":1,"layers":[{"in":0,"out":1,"activation":"relu","w":[],"b":[1]}]}`,                                                                           // bad shape
		`{"version":1,"layers":[{"in":2,"out":3,"activation":"relu","w":[1,2,3,4,5,6],"b":[1,2,3]},{"in":2,"out":1,"activation":"identity","w":[1,2],"b":[1]}]}`, // mismatched chain
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: corrupt model accepted", i)
		}
	}
}

func TestProbsSumToOne(t *testing.T) {
	net, _ := NewMLP([]int{4, 8, 5}, Tanh{}, 2)
	p, err := net.Probs([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum %v", sum)
	}
}

func TestAccuracyAndLossEmptySets(t *testing.T) {
	net, _ := NewMLP([]int{4, 3}, ReLU{}, 1)
	if acc, err := net.Accuracy(nil, nil); err != nil || acc != 0 {
		t.Errorf("empty accuracy = %v, %v", acc, err)
	}
	if loss, err := net.Loss(nil, nil); err != nil || loss != 0 {
		t.Errorf("empty loss = %v, %v", loss, err)
	}
}

func TestTrainBatchValidation(t *testing.T) {
	net, _ := NewMLP([]int{2, 2}, ReLU{}, 1)
	if _, err := net.TrainBatch(nil, nil, NewSGD(0)); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := net.TrainBatch([][]float64{{1, 2}}, []int{0, 1}, NewSGD(0)); err == nil {
		t.Error("mismatched batch accepted")
	}
}
