package nn

import (
	"math"
	"testing"
)

func TestPrecisionMetadata(t *testing.T) {
	cases := []struct {
		p     Precision
		bytes int
		name  string
	}{
		{Float64, 8, "float64"},
		{Float32, 4, "float32"},
		{Float16, 2, "float16"},
		{Int8, 1, "int8"},
	}
	for _, c := range cases {
		if c.p.Bytes() != c.bytes || c.p.String() != c.name {
			t.Errorf("%v: bytes %d name %s", c.p, c.p.Bytes(), c.p.String())
		}
	}
}

func TestFloat16Round(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 0},
		{1, 1},
		{0.5, 0.5},
		{1e-9, 0},             // below normal range
		{1e6, 65504},          // clamped to half max
		{-1e6, -65504},        // clamped negative
		{1.0009765625, 1.001}, // rounds within 10-bit mantissa
	}
	for _, c := range cases {
		got := float16Round(c.in)
		if math.Abs(got-c.want) > 5e-4*(1+math.Abs(c.want)) {
			t.Errorf("float16Round(%v) = %v, want about %v", c.in, got, c.want)
		}
	}
	// Round-trip stability: quantizing twice changes nothing.
	for _, v := range []float64{0.123, -3.75, 42.42, 1e-3} {
		once := float16Round(v)
		if float16Round(once) != once {
			t.Errorf("float16Round not idempotent at %v", v)
		}
	}
}

func TestQuantizedPreservesShapeAndAccuracy(t *testing.T) {
	train := toyDataset(300, 1)
	test := toyDataset(100, 2)
	net, err := NewMLP([]int{4, 16, 3}, Logistic{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(net, train, test, TrainConfig{
		Iterations: 25, BatchSize: 16, Optimizer: NewAdam(0), Seed: 4,
	}); err != nil {
		t.Fatal(err)
	}
	baseAcc, err := net.Accuracy(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if baseAcc < 0.9 {
		t.Fatalf("base accuracy %v too low for the test to be meaningful", baseAcc)
	}
	for _, p := range []Precision{Float64, Float32, Float16, Int8} {
		q := net.Quantized(p)
		if q.InputDim() != net.InputDim() || q.OutputDim() != net.OutputDim() {
			t.Fatalf("%v: shape changed", p)
		}
		acc, err := q.Accuracy(test.X, test.Y)
		if err != nil {
			t.Fatal(err)
		}
		// This easy problem should survive aggressive quantization.
		if acc < baseAcc-0.1 {
			t.Errorf("%v: accuracy %v dropped more than 10pp from %v", p, acc, baseAcc)
		}
	}
	// Float64 quantization is the identity.
	q := net.Quantized(Float64)
	for li, l := range net.Layers {
		for i := range l.W {
			if q.Layers[li].W[i] != l.W[i] {
				t.Fatal("float64 quantization changed weights")
			}
		}
	}
}

func TestQuantizedIsACopy(t *testing.T) {
	net, _ := NewMLP([]int{3, 4, 2}, ReLU{}, 1)
	q := net.Quantized(Float32)
	q.Layers[0].W[0] = 999
	if net.Layers[0].W[0] == 999 {
		t.Error("quantized network shares weight storage with the original")
	}
}

func TestInt8ScaleAndBounds(t *testing.T) {
	if int8Scale([]float64{0, 0}) != 0 {
		t.Error("zero tensor should have zero scale")
	}
	scale := int8Scale([]float64{-2, 1})
	if math.Abs(scale-2.0/127) > 1e-12 {
		t.Errorf("scale %v", scale)
	}
	// Quantized values stay within the tensor's range.
	got := quantizeValue(3.0, Int8, scale) // beyond maxAbs: clamps to 127*scale
	if got > 2.0+1e-9 {
		t.Errorf("int8 quantization escaped range: %v", got)
	}
}

func TestStorageBytes(t *testing.T) {
	net, _ := NewMLP([]int{9, 64, 42}, Logistic{}, 1)
	params := net.ParamCount()
	if got := net.StorageBytes(Float64); got != params*8 {
		t.Errorf("float64 storage %d", got)
	}
	if got := net.StorageBytes(Int8); got != params+2*2*4 {
		t.Errorf("int8 storage %d, want params + scales", got)
	}
	// The paper's envelope: the 9-64-42 model must fit in tens of KB.
	if net.StorageBytes(Float64) > 64*1024 {
		t.Errorf("deployed model %dB exceeds the paper's SRAM envelope", net.StorageBytes(Float64))
	}
}
