// Package nn is a small, dependency-free neural-network library sufficient
// to reproduce the paper's strategy learner: dense feed-forward networks,
// ReLU/logistic/tanh activations, softmax cross-entropy classification, and
// the SGD, SGD-momentum, AdaGrad, RMSProp and Adam optimizers compared in
// Figure 4 and Table III.
package nn

import (
	"fmt"
	"math"
)

// Activation is an elementwise nonlinearity. Deriv receives both the
// pre-activation input x and the output y = F(x), so implementations can use
// whichever is cheaper.
type Activation interface {
	F(x float64) float64
	Deriv(x, y float64) float64
	Name() string
}

// ReLU is max(0, x).
type ReLU struct{}

// F returns max(0, x).
func (ReLU) F(x float64) float64 { return math.Max(0, x) }

// Deriv returns 1 for positive inputs, else 0.
func (ReLU) Deriv(x, _ float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// Name returns "relu".
func (ReLU) Name() string { return "relu" }

// Logistic is the sigmoid 1/(1+e^-x) — the "logistic" activation of the
// paper's best-performing Adam-logistic configuration.
type Logistic struct{}

// F returns the sigmoid of x.
func (Logistic) F(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Deriv returns y(1-y).
func (Logistic) Deriv(_, y float64) float64 { return y * (1 - y) }

// Name returns "logistic".
func (Logistic) Name() string { return "logistic" }

// Tanh is the hyperbolic tangent.
type Tanh struct{}

// F returns tanh(x).
func (Tanh) F(x float64) float64 { return math.Tanh(x) }

// Deriv returns 1-y².
func (Tanh) Deriv(_, y float64) float64 { return 1 - y*y }

// Name returns "tanh".
func (Tanh) Name() string { return "tanh" }

// Identity passes values through; used for the output layer, whose softmax
// is folded into the loss.
type Identity struct{}

// F returns x.
func (Identity) F(x float64) float64 { return x }

// Deriv returns 1.
func (Identity) Deriv(_, _ float64) float64 { return 1 }

// Name returns "identity".
func (Identity) Name() string { return "identity" }

// ActivationByName resolves a serialized activation name.
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "relu":
		return ReLU{}, nil
	case "logistic":
		return Logistic{}, nil
	case "tanh":
		return Tanh{}, nil
	case "identity":
		return Identity{}, nil
	default:
		return nil, fmt.Errorf("nn: unknown activation %q", name)
	}
}

// Softmax writes the softmax of logits into out (which may alias logits),
// using the max-subtraction trick for numerical stability.
func Softmax(logits, out []float64) {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}
