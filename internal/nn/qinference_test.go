package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randInputs draws n inputs shaped like feature vectors (entries in [0,1],
// the range every layer input actually sees under logistic hiddens).
func randInputs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
	}
	return xs
}

// trainedNet fits a small classifier well enough that argmax decisions are
// meaningful rather than coin flips.
func trainedNet(t *testing.T, sizes []int) *Network {
	t.Helper()
	net, err := NewMLP(sizes, Logistic{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	train := toyDataset(300, 1)
	if _, err := Train(net, train, Dataset{}, TrainConfig{
		Iterations: 20, BatchSize: 16, Optimizer: NewAdam(0), Seed: 4,
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestQuantizedInferenceMatchesSimulatedInt8 ties the deployed kernel to the
// simulated one: with activation quantization error bounded by the dynamic
// scale, int8 logits must stay within a small tolerance of the float64
// forward over the weight-rounded network (Quantized(Int8)), and the weight
// grids must agree exactly.
func TestQuantizedInferenceMatchesSimulatedInt8(t *testing.T) {
	net, err := NewMLP([]int{4, 16, 3}, Logistic{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim := net.Quantized(Int8) // float64 arithmetic over the int8 weight grid
	q := net.QuantizeInt8()
	for li := range q.layers {
		ql := &q.layers[li]
		for o := 0; o < ql.out; o++ {
			for i := 0; i < ql.in; i++ {
				got := float64(ql.w[o*ql.inPad+i]) * ql.wScale
				want := sim.Layers[li].W[o*ql.in+i]
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("layer %d weight (%d,%d): deployed grid %v != simulated grid %v", li, o, i, got, want)
				}
			}
			for i := ql.in; i < ql.inPad; i++ {
				if ql.w[o*ql.inPad+i] != 0 {
					t.Fatalf("layer %d row %d: kernel padding byte %d not zero", li, o, i)
				}
			}
		}
	}
	inf := q.CloneForInference()
	for i, x := range randInputs(100, 4, 11) {
		want, err := sim.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inf.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			// Activation quantization error: each layer rounds
			// activations onto a 1/254-of-range grid; through two small
			// layers a few percent absolute is the expected envelope.
			if math.Abs(got[j]-want[j]) > 0.05 {
				t.Fatalf("input %d logit %d: int8 kernel %v vs simulated %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestQuantizedForwardBatchBitParity pins the batched kernel to the
// single-sample one, bit for bit, across batch sizes (including odd sizes
// and a batch larger than any scratch grown so far).
func TestQuantizedForwardBatchBitParity(t *testing.T) {
	net := trainedNet(t, []int{4, 16, 3})
	q := net.QuantizeInt8()
	inf := q.CloneForInference()
	ref := q.CloneForInference()
	for _, n := range []int{1, 3, 8, 64, 7} {
		xs := randInputs(n, 4, int64(100+n))
		got, err := inf.ForwardBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for s := range xs {
			want, err := ref.Forward(xs[s])
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[s][j] != want[j] {
					t.Fatalf("batch %d sample %d logit %d: %v != %v", n, s, j, got[s][j], want[j])
				}
			}
		}
		classes := make([]int, n)
		if err := inf.PredictBatch(xs, classes); err != nil {
			t.Fatal(err)
		}
		for s := range xs {
			want, err := ref.Predict(xs[s])
			if err != nil {
				t.Fatal(err)
			}
			if classes[s] != want {
				t.Fatalf("batch %d sample %d: class %d != %d", n, s, classes[s], want)
			}
		}
	}
}

// TestFloatForwardBatchBitParity is the float64 half of the per-precision
// batch-parity contract: Inference.ForwardBatch must reproduce N standalone
// Forwards exactly.
func TestFloatForwardBatchBitParity(t *testing.T) {
	net := trainedNet(t, []int{4, 16, 3})
	inf := net.CloneForInference()
	ref := net.CloneForInference()
	for _, n := range []int{1, 3, 8, 64, 7} {
		xs := randInputs(n, 4, int64(200+n))
		got, err := inf.ForwardBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for s := range xs {
			want, err := ref.Forward(xs[s])
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[s][j] != want[j] {
					t.Fatalf("batch %d sample %d logit %d: %v != %v", n, s, j, got[s][j], want[j])
				}
			}
		}
		classes := make([]int, n)
		if err := inf.PredictBatch(xs, classes); err != nil {
			t.Fatal(err)
		}
		for s := range xs {
			want, err := ref.Predict(xs[s])
			if err != nil {
				t.Fatal(err)
			}
			if classes[s] != want {
				t.Fatalf("batch %d sample %d: class %d != %d", n, s, classes[s], want)
			}
		}
	}
}

// TestQuantizedInferenceConcurrent runs many handles over one QuantizedNet
// at once, mixing single and batched calls; under -race this pins that the
// shared artifact is read-only and every mutable buffer is per-handle.
func TestQuantizedInferenceConcurrent(t *testing.T) {
	net := trainedNet(t, []int{4, 16, 3})
	q := net.QuantizeInt8()
	xs := randInputs(32, 4, 5)
	want := make([]int, len(xs))
	refInf := q.CloneForInference()
	for i, x := range xs {
		c, err := refInf.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inf := q.CloneForInference()
			classes := make([]int, len(xs))
			for iter := 0; iter < 50; iter++ {
				if g%2 == 0 {
					if err := inf.PredictBatch(xs, classes); err != nil {
						errs <- err
						return
					}
				} else {
					for i, x := range xs {
						c, err := inf.Predict(x)
						if err != nil {
							errs <- err
							return
						}
						classes[i] = c
					}
				}
				for i := range classes {
					if classes[i] != want[i] {
						t.Errorf("goroutine %d iter %d: sample %d class %d, want %d",
							g, iter, i, classes[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQuantizedInferenceErrors covers the dimension and geometry guards.
func TestQuantizedInferenceErrors(t *testing.T) {
	net, _ := NewMLP([]int{4, 8, 3}, Logistic{}, 1)
	inf := net.QuantizeInt8().CloneForInference()
	if inf.InputDim() != 4 || inf.OutputDim() != 3 {
		t.Fatalf("dims %d/%d", inf.InputDim(), inf.OutputDim())
	}
	if _, err := inf.Forward(make([]float64, 2)); err == nil {
		t.Error("wrong single dim accepted")
	}
	if _, err := inf.ForwardBatch([][]float64{make([]float64, 4), make([]float64, 5)}); err == nil {
		t.Error("wrong batch dim accepted")
	}
	if err := inf.PredictBatch(make([][]float64, 3), make([]int, 2)); err == nil {
		t.Error("mismatched class slots accepted")
	}
	if out, err := inf.ForwardBatch(nil); err != nil || out != nil {
		t.Errorf("empty batch: %v %v", out, err)
	}
	// A zero input must degenerate to the bias path, not divide by zero.
	if _, err := inf.Forward(make([]float64, 4)); err != nil {
		t.Errorf("zero input: %v", err)
	}
}

// TestQuantizedNetStorage sanity-checks the deployed footprint accounting:
// int8 weights shrink the paper's 9-64-42 model roughly 8x on the weight
// tensors.
func TestQuantizedNetStorage(t *testing.T) {
	net, _ := NewMLP([]int{9, 64, 42}, Logistic{}, 1)
	q := net.QuantizeInt8()
	weights := 9*64 + 64*42
	biases := 64 + 42
	want := weights + 8*biases + 2*8
	if got := q.StorageBytes(); got != want {
		t.Errorf("storage %d, want %d", got, want)
	}
}
