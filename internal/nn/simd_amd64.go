//go:build amd64

package nn

// AVX2 path for the int8 serving kernel. The assembly routine computes one
// dense layer (rows x inPad int8 matrix times an int8 vector) with
// VPMOVSXBW + VPMADDWD: 16 widening int16 multiplies per instruction,
// pairwise-summed into int32 lanes. Integer addition is associative, so the
// result is bit-identical to the scalar loop in simd.go — the fallback and
// the SIMD path are interchangeable, never approximations of each other.
//
// Rows must be padded to a multiple of 32 bytes (qlayer.inPad) with zeros;
// zero operands contribute nothing to the dot products, and the padding
// keeps the inner loop free of tail handling.

// matvecInt8AVX2 computes out[o] = sum_i w[o*inPad+i]*x[i] for o < rows.
// Implemented in simd_amd64.s. inPad must be a positive multiple of 32;
// w must hold rows*inPad bytes and x inPad bytes.
//
//go:noescape
func matvecInt8AVX2(w, x *int8, out *int32, inPad, rows int)

// cpuid executes the CPUID instruction (simd_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (simd_amd64.s).
func xgetbv0() (eax, edx uint32)

// useAVX2 gates the assembly kernel. A variable rather than a constant so
// tests can force the scalar path and compare the two.
var useAVX2 = detectAVX2()

// detectAVX2 reports whether the CPU and OS support AVX2: the feature bit
// itself (leaf 7 EBX[5]), OSXSAVE (leaf 1 ECX[27]), and YMM state enabled in
// XCR0 (bits 1 and 2).
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // SSE and AVX state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// matvecInt8 dispatches one layer's integer matrix-vector product to the
// best available kernel.
func matvecInt8(w, x []int8, out []int32, inPad, rows int) {
	if rows == 0 {
		return
	}
	if useAVX2 {
		matvecInt8AVX2(&w[0], &x[0], &out[0], inPad, rows)
		return
	}
	matvecInt8Generic(w, x, out, inPad, rows)
}
