package ocssd

import (
	"strings"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

func mustOC(t *testing.T) *Device {
	t.Helper()
	d, err := New(nand.TinyConfig(), ssd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLeaseExclusivity(t *testing.T) {
	d := mustOC(t)
	if err := d.Lease(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lease(1, []int{1, 2}); err == nil {
		t.Error("overlapping lease accepted")
	}
	if err := d.Lease(0, []int{3}); err == nil {
		t.Error("double lease by one tenant accepted")
	}
	if err := d.Lease(1, []int{2, 3}); err != nil {
		t.Errorf("disjoint lease rejected: %v", err)
	}
	if got := d.Leased(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("tenant 0 lease %v", got)
	}
	free := d.FreeChannels()
	if len(free) != 4 { // 8 - 2 - 2
		t.Errorf("free channels %v", free)
	}
}

func TestLeaseValidation(t *testing.T) {
	d := mustOC(t)
	cases := []struct {
		tenants  []int
		channels []int
	}{
		{nil, []int{0}},
		{[]int{0}, nil},
		{[]int{0}, []int{9}},
		{[]int{0}, []int{-1}},
		{[]int{0}, []int{1, 1}},
		{[]int{-3}, []int{1}},
	}
	for i, c := range cases {
		if err := d.LeaseGroup(c.tenants, c.channels); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGroupLeaseSharesChannels(t *testing.T) {
	d := mustOC(t)
	if err := d.LeaseGroup([]int{0, 2}, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := d.Leased(2); len(got) != 3 {
		t.Errorf("group member lease %v", got)
	}
	// Channels stay owned until the last member releases.
	if err := d.Release(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Lease(5, []int{0}); err == nil {
		t.Error("channel released while a group member still holds it")
	}
	if err := d.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Lease(5, []int{0}); err != nil {
		t.Errorf("channel not freed after last release: %v", err)
	}
}

func TestReleaseUnknownTenant(t *testing.T) {
	d := mustOC(t)
	if err := d.Release(7); err == nil {
		t.Error("releasing a non-lease accepted")
	}
}

func TestRunRequiresLeases(t *testing.T) {
	d := mustOC(t)
	cfg := d.Geometry()
	tr := trace.Trace{{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize}}
	if _, err := d.Run(tr); err == nil || !strings.Contains(err.Error(), "lease") {
		t.Errorf("run without lease: %v", err)
	}
	if err := d.Lease(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device.Write.Count != 1 {
		t.Error("write not recorded")
	}
}

func TestIOConfinedToLease(t *testing.T) {
	d := mustOC(t)
	cfg := d.Geometry()
	if err := d.Lease(0, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	var tr trace.Trace
	for lpn := int64(0); lpn < 32; lpn++ {
		tr = append(tr, trace.Record{
			Time: 0, Tenant: 0, Op: trace.Write,
			Offset: lpn * int64(cfg.PageSize), Size: cfg.PageSize,
		})
	}
	if _, err := d.Run(tr); err != nil {
		t.Fatal(err)
	}
	// Every mapped page must sit on a leased channel.
	f := d.Underlying().FTL()
	for lpn := int64(0); lpn < 32; lpn++ {
		addr, ok := f.Lookup(ftl.Key{Tenant: 0, LPN: lpn})
		if !ok {
			t.Fatalf("lpn %d unmapped", lpn)
		}
		if addr.Channel != 2 && addr.Channel != 3 {
			t.Errorf("lpn %d escaped the lease to channel %d", lpn, addr.Channel)
		}
	}
}

func TestApplyBinding(t *testing.T) {
	d := mustOC(t)
	s := alloc.Strategy{Kind: alloc.FourWay, Parts: []int{5, 1, 1, 1}}
	binding, err := s.Bind(8, make([]alloc.TenantTraits, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(binding); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Leased(0)); got != 5 {
		t.Errorf("tenant 0 leased %d channels, want 5", got)
	}
	if got := len(d.FreeChannels()); got != 0 {
		t.Errorf("%d channels free after full binding", got)
	}
	// Re-apply a different binding: leases must be replaced.
	s2 := alloc.Strategy{Kind: alloc.Isolated}
	b2, err := s2.Bind(8, make([]alloc.TenantTraits, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(b2); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Leased(0)); got != 2 {
		t.Errorf("tenant 0 leased %d channels after re-apply, want 2", got)
	}
}

func TestApplyRejectsShared(t *testing.T) {
	d := mustOC(t)
	s := alloc.Strategy{Kind: alloc.Shared}
	binding, err := s.Bind(8, make([]alloc.TenantTraits, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(binding); err == nil {
		t.Error("Shared binding accepted on an Open-Channel device")
	}
}

func TestApplyTwoGroupBinding(t *testing.T) {
	d := mustOC(t)
	s := alloc.Strategy{Kind: alloc.TwoGroup, WriteChannels: 6}
	traits := []alloc.TenantTraits{
		{WriteDominated: true}, {WriteDominated: false},
		{WriteDominated: true}, {WriteDominated: false},
	}
	binding, err := s.Bind(8, traits)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(binding); err != nil {
		t.Fatal(err)
	}
	// Write tenants 0 and 2 share the 6-channel slice.
	if got := d.Leased(0); len(got) != 6 {
		t.Errorf("write group lease %v", got)
	}
	if got := d.Leased(1); len(got) != 2 {
		t.Errorf("read group lease %v", got)
	}
}

func TestSubmitRequiresLease(t *testing.T) {
	d := mustOC(t)
	cfg := d.Geometry()
	r := trace.Record{Time: 0, Tenant: 3, Op: trace.Read, Offset: 0, Size: cfg.PageSize}
	if err := d.Submit(r, nil); err == nil {
		t.Error("submit without lease accepted")
	}
	if err := d.Lease(3, []int{7}); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(r, nil); err != nil {
		t.Errorf("submit with lease rejected: %v", err)
	}
	d.Underlying().Engine().Run()
}
