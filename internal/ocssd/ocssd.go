// Package ocssd exposes the simulated SSD through an Open-Channel-style
// interface (LightNVM, paper Section II.A): the host — not the FTL — decides
// which channels each tenant may use, by taking explicit leases. The
// device enforces the isolation contract: a channel belongs to at most one
// lease group, and a tenant without a lease cannot perform I/O.
//
// SSDKeeper's channel allocator runs unchanged on top of this interface
// ("It can be also used in Open-Channel SSDs by modifying the file system or
// calling the library in userspace", Section V): Apply translates a strategy
// binding into leases.
package ocssd

import (
	"fmt"
	"sort"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// Device is an Open-Channel view of the simulated SSD.
type Device struct {
	dev *ssd.Device

	// leases maps tenant -> channel set. Members of a group lease (same
	// channels) may share; otherwise channels are exclusive.
	leases map[int][]int
	// owner maps channel -> lease group id (the smallest tenant in the
	// group), for overlap checks.
	owner map[int]int
}

// New creates an Open-Channel device. No tenant may perform I/O until it
// holds a lease.
func New(cfg nand.Config, opts ssd.Options) (*Device, error) {
	sess, err := simrun.NewRunner().NewSession(simrun.Config{Device: cfg, Options: opts})
	if err != nil {
		return nil, err
	}
	return &Device{
		dev:    sess.Device(),
		leases: make(map[int][]int),
		owner:  make(map[int]int),
	}, nil
}

// Underlying exposes the wrapped device (for seasoning and engine access).
func (d *Device) Underlying() *ssd.Device { return d.dev }

// Geometry returns the device geometry, as the Open-Channel identify
// command would.
func (d *Device) Geometry() nand.Config { return d.dev.Config() }

// Lease grants tenant exclusive use of the given channels. It fails if the
// tenant already holds a lease or any channel is owned by another lease
// group. Use LeaseGroup to share channels among tenants deliberately.
func (d *Device) Lease(tenant int, channels []int) error {
	return d.LeaseGroup([]int{tenant}, channels)
}

// LeaseGroup grants a set of tenants shared use of the given channels (the
// paper's two-group strategies put all write-dominated tenants on one such
// shared slice). All tenants must be lease-free and all channels unowned.
func (d *Device) LeaseGroup(tenants []int, channels []int) error {
	if len(tenants) == 0 {
		return fmt.Errorf("ocssd: empty tenant group")
	}
	if len(channels) == 0 {
		return fmt.Errorf("ocssd: empty channel set")
	}
	cfg := d.dev.Config()
	seen := map[int]bool{}
	for _, ch := range channels {
		if ch < 0 || ch >= cfg.Channels {
			return fmt.Errorf("ocssd: channel %d outside device", ch)
		}
		if seen[ch] {
			return fmt.Errorf("ocssd: duplicate channel %d in lease", ch)
		}
		seen[ch] = true
		if owner, taken := d.owner[ch]; taken {
			return fmt.Errorf("ocssd: channel %d already leased (group %d)", ch, owner)
		}
	}
	group := tenants[0]
	for _, t := range tenants {
		if t < 0 {
			return fmt.Errorf("ocssd: negative tenant %d", t)
		}
		if _, has := d.leases[t]; has {
			return fmt.Errorf("ocssd: tenant %d already holds a lease", t)
		}
		if t < group {
			group = t
		}
	}
	set := append([]int(nil), channels...)
	sort.Ints(set)
	for _, t := range tenants {
		d.leases[t] = set
		if err := d.dev.FTL().SetTenantChannels(t, set); err != nil {
			return err
		}
	}
	for _, ch := range channels {
		d.owner[ch] = group
	}
	return nil
}

// Release returns a tenant's lease. Channels shared with other group
// members stay owned until the last member releases.
func (d *Device) Release(tenant int) error {
	set, ok := d.leases[tenant]
	if !ok {
		return fmt.Errorf("ocssd: tenant %d holds no lease", tenant)
	}
	delete(d.leases, tenant)
	if err := d.dev.FTL().SetTenantChannels(tenant, nil); err != nil {
		return err
	}
	// Free channels with no remaining leaseholder.
	for _, ch := range set {
		stillUsed := false
		for _, other := range d.leases {
			for _, c := range other {
				if c == ch {
					stillUsed = true
				}
			}
		}
		if !stillUsed {
			delete(d.owner, ch)
		}
	}
	return nil
}

// Leased returns tenant's channel set, or nil.
func (d *Device) Leased(tenant int) []int {
	set, ok := d.leases[tenant]
	if !ok {
		return nil
	}
	return append([]int(nil), set...)
}

// FreeChannels lists channels under no lease.
func (d *Device) FreeChannels() []int {
	cfg := d.dev.Config()
	var free []int
	for ch := 0; ch < cfg.Channels; ch++ {
		if _, taken := d.owner[ch]; !taken {
			free = append(free, ch)
		}
	}
	return free
}

// Apply installs a strategy binding as leases, releasing any previous ones.
// Shared bindings (every tenant on every channel) are rejected: an
// Open-Channel deployment by definition partitions the channels; use the
// regular FTL-managed device for Shared.
func (d *Device) Apply(binding alloc.Binding) error {
	cfg := d.dev.Config()
	for tenant, set := range binding.Sets {
		if len(set) == cfg.Channels {
			return fmt.Errorf("ocssd: tenant %d binding spans every channel; Shared has no isolation to enforce", tenant)
		}
	}
	// Release everything, then group tenants by identical sets.
	for tenant := range d.leases {
		if err := d.Release(tenant); err != nil {
			return err
		}
	}
	groups := map[string][]int{}
	keys := map[string][]int{}
	for tenant, set := range binding.Sets {
		k := fmt.Sprint(set)
		groups[k] = append(groups[k], tenant)
		keys[k] = set
	}
	// Deterministic application order.
	names := make([]string, 0, len(groups))
	for k := range groups {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		sort.Ints(groups[k])
		if err := d.LeaseGroup(groups[k], keys[k]); err != nil {
			return err
		}
	}
	return nil
}

// Run replays a trace, enforcing that every tenant holds a lease.
func (d *Device) Run(tr trace.Trace) (ssd.Result, error) {
	for i, r := range tr {
		if _, ok := d.leases[r.Tenant]; !ok {
			return ssd.Result{}, fmt.Errorf("ocssd: record %d: tenant %d has no lease", i, r.Tenant)
		}
	}
	return d.dev.Run(tr, nil)
}

// Submit issues one request if its tenant holds a lease. done (may be nil)
// runs at completion with the response latency.
func (d *Device) Submit(r trace.Record, done func(lat sim.Time)) error {
	if _, ok := d.leases[r.Tenant]; !ok {
		return fmt.Errorf("ocssd: tenant %d has no lease", r.Tenant)
	}
	return d.dev.Submit(r, done)
}
