package stats

import (
	"strings"
	"testing"
)

func TestCountersCreateOnFirstUse(t *testing.T) {
	cs := NewCounters()
	a := cs.Counter("a")
	a.Add(3)
	a.Add(4)
	if got := a.Value(); got != 7 {
		t.Errorf("a = %d, want 7", got)
	}
	// Same name returns the same handle.
	if cs.Counter("a") != a {
		t.Error("Counter(\"a\") returned a different handle")
	}
	if cs.Len() != 1 {
		t.Errorf("Len = %d, want 1", cs.Len())
	}
}

func TestCountersInsertionOrder(t *testing.T) {
	cs := NewCounters()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		cs.Counter(name).Add(1)
	}
	names := cs.Names()
	want := []string{"zeta", "alpha", "mid"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v, want insertion order %v", names, want)
		}
	}
}

func TestCounterObserveIsHighWater(t *testing.T) {
	cs := NewCounters()
	c := cs.Counter("depth")
	c.Observe(3)
	c.Observe(9)
	c.Observe(5)
	if got := c.Value(); got != 9 {
		t.Errorf("high-water = %d, want 9", got)
	}
}

func TestCountersGetAndReset(t *testing.T) {
	cs := NewCounters()
	cs.Counter("x").Add(5)
	if got := cs.Get("x"); got != 5 {
		t.Errorf("Get(x) = %d, want 5", got)
	}
	if got := cs.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	cs.Reset()
	if got := cs.Get("x"); got != 0 {
		t.Errorf("after Reset x = %d, want 0", got)
	}
	if cs.Len() != 1 {
		t.Error("Reset dropped registered counters")
	}
}

func TestCountersString(t *testing.T) {
	cs := NewCounters()
	cs.Counter("ftl.gc.runs").Add(12)
	cs.Counter("sim.events").Add(34567)
	out := cs.String()
	for _, want := range []string{"ftl.gc.runs", "12", "sim.events", "34567"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Insertion order in the rendering too.
	if strings.Index(out, "ftl.gc.runs") > strings.Index(out, "sim.events") {
		t.Error("table rows not in insertion order")
	}
}
