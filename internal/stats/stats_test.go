package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ssdkeeper/internal/sim"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, d := range []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond} {
		a.Add(d)
	}
	if a.Count != 3 {
		t.Errorf("count = %d, want 3", a.Count)
	}
	if got := a.Mean(); math.Abs(got-20) > 1e-9 {
		t.Errorf("mean = %v us, want 20", got)
	}
	if a.Min != 10*sim.Microsecond || a.Max != 30*sim.Microsecond {
		t.Errorf("min/max = %v/%v", a.Min, a.Max)
	}
	if got := a.Stddev(); math.Abs(got-10) > 1e-9 {
		t.Errorf("stddev = %v, want 10", got)
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Stddev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestAccMerge(t *testing.T) {
	var a, b, all Acc
	samples := []sim.Time{5, 100, 42, 7, 999, 1}
	for i, s := range samples {
		all.Add(s)
		if i%2 == 0 {
			a.Add(s)
		} else {
			b.Add(s)
		}
	}
	a.Merge(b)
	if a.Count != all.Count || a.Sum != all.Sum || a.Min != all.Min || a.Max != all.Max {
		t.Errorf("merge mismatch: %+v vs %+v", a, all)
	}
	var empty Acc
	a.Merge(empty)
	if a.Count != all.Count {
		t.Error("merging empty changed the accumulator")
	}
}

func TestAccMergeProperty(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b, all Acc
		for _, x := range xs {
			a.Add(sim.Time(x))
			all.Add(sim.Time(x))
		}
		for _, y := range ys {
			b.Add(sim.Time(y))
			all.Add(sim.Time(y))
		}
		a.Merge(b)
		return a.Count == all.Count && a.Sum == all.Sum &&
			a.Min == all.Min && a.Max == all.Max &&
			math.Abs(a.Stddev()-all.Stddev()) < 1e-6*(1+all.Stddev())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLatencyTotalIsSumOfMeans(t *testing.T) {
	var l Latency
	l.Read.Add(10 * sim.Microsecond)
	l.Read.Add(30 * sim.Microsecond)
	l.Write.Add(100 * sim.Microsecond)
	if got := l.Total(); math.Abs(got-120) > 1e-9 {
		t.Errorf("total = %v, want 120 (20 read + 100 write)", got)
	}
}

func TestCollectorPerTenantAndDevice(t *testing.T) {
	c := NewCollector()
	c.AddRead(0, 10*sim.Microsecond)
	c.AddWrite(0, 100*sim.Microsecond)
	c.AddRead(3, 20*sim.Microsecond)
	if got := c.Device().Read.Count; got != 2 {
		t.Errorf("device reads = %d, want 2", got)
	}
	if got := c.Tenant(0).Write.Count; got != 1 {
		t.Errorf("tenant 0 writes = %d, want 1", got)
	}
	if got := c.Tenant(3).Read.Mean(); math.Abs(got-20) > 1e-9 {
		t.Errorf("tenant 3 read mean = %v", got)
	}
	if l := c.Tenant(9); l.Read.Count != 0 || l.Write.Count != 0 {
		t.Error("unknown tenant should be zero")
	}
	ids := c.Tenants()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Errorf("tenants = %v, want [0 3]", ids)
	}
	if !strings.Contains(c.String(), "tenant 3") {
		t.Error("String() should mention tenant 3")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 8}, 4)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v, want %v", got, want)
		}
	}
	if z := Normalize([]float64{1, 2}, 0); z[0] != 0 || z[1] != 0 {
		t.Error("zero base should yield zeros")
	}
}

func TestArgMin(t *testing.T) {
	if got := ArgMin([]float64{3, 1, 2}); got != 1 {
		t.Errorf("argmin = %d, want 1", got)
	}
	if got := ArgMin([]float64{5, 5, 5}); got != 0 {
		t.Errorf("argmin ties should pick first, got %d", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("argmin of empty = %d, want -1", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal values index %v, want 1", got)
	}
	// One tenant dominating: index approaches 1/n.
	if got := JainIndex([]float64{1000, 0.001, 0.001, 0.001}); got > 0.26 {
		t.Errorf("dominated index %v, want about 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty index %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero index %v, want 1", got)
	}
	// Scale invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Error("Jain index not scale invariant")
	}
}

func TestCollectorFairness(t *testing.T) {
	c := NewCollector()
	if c.Fairness() != 0 {
		t.Error("empty collector fairness should be 0")
	}
	c.AddRead(0, 100*sim.Microsecond)
	c.AddRead(1, 100*sim.Microsecond)
	if got := c.Fairness(); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal tenants fairness %v", got)
	}
	c.AddWrite(1, 100*sim.Millisecond)
	if got := c.Fairness(); got > 0.6 {
		t.Errorf("skewed tenants fairness %v, want well below 1", got)
	}
}

func TestAccSnapshotIsolatesHistogram(t *testing.T) {
	var a Acc
	a.Add(100)
	snap := a.Snapshot()
	a.Reset()
	a.Add(1)
	if snap.Count != 1 || snap.P99() < 100 {
		t.Errorf("snapshot mutated by reset+add: count=%d p99=%v", snap.Count, snap.P99())
	}
	if a.Count != 1 || a.Min != 1 {
		t.Errorf("reset acc wrong: count=%d min=%v", a.Count, a.Min)
	}
}

// A Reset collector must be observably identical to a fresh one: same tenant
// set, zero device totals, and reusable without cross-run bleed.
func TestCollectorResetBehavesFresh(t *testing.T) {
	c := NewCollector()
	c.AddRead(3, 100)
	c.AddWrite(5, 200)
	c.Reset()
	if got := c.Tenants(); len(got) != 0 {
		t.Fatalf("tenants after reset = %v, want none", got)
	}
	if d := c.Device(); d.Read.Count != 0 || d.Write.Count != 0 {
		t.Fatalf("device totals survived reset: %+v", d)
	}
	// Second run on the reused collector matches a fresh collector.
	fresh := NewCollector()
	for _, col := range []*Collector{c, fresh} {
		col.AddRead(1, 50)
		col.AddRead(1, 150)
		col.AddWrite(2, 300)
	}
	if got, want := c.Tenant(1).Read.Mean(), fresh.Tenant(1).Read.Mean(); got != want {
		t.Errorf("tenant mean on reused = %v, fresh = %v", got, want)
	}
	if got, want := c.Device().Total(), fresh.Device().Total(); got != want {
		t.Errorf("device total on reused = %v, fresh = %v", got, want)
	}
	if got, want := len(c.Tenants()), len(fresh.Tenants()); got != want {
		t.Errorf("tenant count on reused = %d, fresh = %d", got, want)
	}
}
