package stats

import (
	"fmt"
	"strings"
)

// Counter is one named value inside a Counters registry. Callers hold the
// pointer returned by Counters.Counter and bump it directly, so the hot
// path is a field increment — no map lookup, no allocation.
//
// Counters are not synchronized: like the simulation engine itself, a
// registry belongs to a single goroutine (one per simrun.Runner).
type Counter struct {
	v int64
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) { c.v += d }

// Observe raises the counter to v if v exceeds the current value, turning
// the counter into a high-water mark.
func (c *Counter) Observe(v int64) {
	if v > c.v {
		c.v = v
	}
}

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v }

// Counters is an insertion-ordered registry of named counters. Probes
// register their counters once at construction and the registry renders
// them as a stable, human-readable table after a run.
type Counters struct {
	names []string
	index map[string]int
	vals  []*Counter
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{index: make(map[string]int)}
}

// Counter returns the counter registered under name, creating it at the end
// of the registry order on first use.
func (cs *Counters) Counter(name string) *Counter {
	if i, ok := cs.index[name]; ok {
		return cs.vals[i]
	}
	c := &Counter{}
	cs.index[name] = len(cs.vals)
	cs.names = append(cs.names, name)
	cs.vals = append(cs.vals, c)
	return c
}

// Get returns the value of the named counter, or zero if it was never
// registered.
func (cs *Counters) Get(name string) int64 {
	if i, ok := cs.index[name]; ok {
		return cs.vals[i].v
	}
	return 0
}

// Names returns the registered names in insertion order.
func (cs *Counters) Names() []string {
	return append([]string(nil), cs.names...)
}

// Len returns the number of registered counters.
func (cs *Counters) Len() int { return len(cs.vals) }

// Reset zeroes every registered counter, keeping the registrations, so a
// reused runner starts each session from a clean slate.
func (cs *Counters) Reset() {
	for _, c := range cs.vals {
		c.v = 0
	}
}

// String renders a two-column name/value table in registration order.
func (cs *Counters) String() string {
	width := 0
	for _, n := range cs.names {
		if len(n) > width {
			width = len(n)
		}
	}
	var b strings.Builder
	for i, n := range cs.names {
		fmt.Fprintf(&b, "%-*s %d\n", width, n, cs.vals[i].v)
	}
	return b.String()
}
