package stats

import (
	"math/bits"

	"ssdkeeper/internal/sim"
)

// Histogram is a log-scaled latency histogram in the HdrHistogram spirit:
// values are bucketed by magnitude (power of two) with 8 linear sub-buckets
// per magnitude, giving quantiles with bounded (~12%) relative error at any
// scale from nanoseconds to hours, in constant memory.
type Histogram struct {
	counts [64 * subBuckets]uint64
	total  uint64
}

const subBuckets = 8

// bucketOf maps a non-negative duration to a bucket index.
func bucketOf(d sim.Time) int {
	v := uint64(d)
	if v < subBuckets {
		return int(v) // exact buckets for tiny values
	}
	mag := bits.Len64(v) - 1                         // floor(log2(v)), >= 3 here
	sub := (v >> (uint(mag) - 3)) & (subBuckets - 1) // top 3 bits after the leading 1
	return mag*subBuckets + int(sub)
}

// upperBoundOf returns the largest value a bucket can hold.
func upperBoundOf(idx int) sim.Time {
	if idx < subBuckets {
		return sim.Time(idx)
	}
	mag := idx / subBuckets
	sub := uint64(idx % subBuckets)
	// Reconstruct: leading 1 at mag, next 3 bits = sub, rest all ones.
	base := uint64(1) << uint(mag)
	step := base >> 3
	return sim.Time(base + (sub+1)*step - 1)
}

// Add records one duration. Negative durations are clamped to zero.
func (h *Histogram) Add(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Reset clears all recorded values in place, so a histogram (and the Acc
// holding it) can be reused across simulation runs without reallocating.
func (h *Histogram) Reset() { *h = Histogram{} }

// Clone returns an independent copy. Results that outlive the run they were
// collected in snapshot their histograms so collector reuse cannot mutate
// them retroactively.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	return &c
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of the
// recorded values, or 0 if the histogram is empty. Accuracy is limited by
// the bucket width (~12% relative).
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target value, 1-based.
	rank := uint64(q*float64(h.total-1)) + 1
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return upperBoundOf(i)
		}
	}
	return upperBoundOf(len(h.counts) - 1)
}

// P50 returns the median upper bound.
func (h *Histogram) P50() sim.Time { return h.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound.
func (h *Histogram) P95() sim.Time { return h.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound — the tail-latency metric QoS
// work on SSDs (e.g. the paper's AutoSSD and RL-GC citations) optimizes.
func (h *Histogram) P99() sim.Time { return h.Quantile(0.99) }
