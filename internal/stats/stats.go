// Package stats accumulates response-latency statistics per tenant and
// operation type, the quantities every figure in the paper is built from.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ssdkeeper/internal/sim"
)

// Acc accumulates a stream of latency samples: moments plus a log-scaled
// histogram for percentiles.
type Acc struct {
	Count uint64
	Sum   sim.Time
	Min   sim.Time
	Max   sim.Time
	// sumSq accumulates squared microseconds for variance; float64 avoids
	// overflow on long runs.
	sumSq float64
	// hist is allocated on first Add; the zero Acc stays cheap to copy.
	hist *Histogram
}

// Add records one latency sample.
func (a *Acc) Add(d sim.Time) {
	if a.Count == 0 || d < a.Min {
		a.Min = d
	}
	if d > a.Max {
		a.Max = d
	}
	a.Count++
	a.Sum += d
	us := d.Micros()
	a.sumSq += us * us
	if a.hist == nil {
		a.hist = &Histogram{}
	}
	a.hist.Add(d)
}

// Merge folds other into a.
func (a *Acc) Merge(other Acc) {
	if other.Count == 0 {
		return
	}
	if a.Count == 0 || other.Min < a.Min {
		a.Min = other.Min
	}
	if other.Max > a.Max {
		a.Max = other.Max
	}
	a.Count += other.Count
	a.Sum += other.Sum
	a.sumSq += other.sumSq
	if other.hist != nil {
		if a.hist == nil {
			a.hist = &Histogram{}
		}
		a.hist.Merge(other.hist)
	}
}

// Reset clears the accumulator in place, keeping the histogram's backing
// storage for reuse.
func (a *Acc) Reset() {
	h := a.hist
	*a = Acc{}
	if h != nil {
		h.Reset()
		a.hist = h
	}
}

// Snapshot returns an independent copy of the accumulator: the histogram is
// cloned, so later Reset/Add calls on a (a reused per-run accumulator)
// cannot mutate the snapshot.
func (a Acc) Snapshot() Acc {
	a.hist = a.hist.Clone()
	return a
}

// Quantile returns an upper bound for the q-quantile of the recorded
// latencies (0 for an empty accumulator).
func (a Acc) Quantile(q float64) sim.Time {
	if a.hist == nil {
		return 0
	}
	return a.hist.Quantile(q)
}

// P50 returns the median latency upper bound.
func (a Acc) P50() sim.Time { return a.Quantile(0.50) }

// P99 returns the 99th-percentile latency upper bound.
func (a Acc) P99() sim.Time { return a.Quantile(0.99) }

// Mean returns the average latency in microseconds (0 if empty).
func (a Acc) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum.Micros() / float64(a.Count)
}

// Stddev returns the sample standard deviation in microseconds.
func (a Acc) Stddev() float64 {
	if a.Count < 2 {
		return 0
	}
	n := float64(a.Count)
	mean := a.Mean()
	v := (a.sumSq - n*mean*mean) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Latency groups read and write accumulators, mirroring the paper's split
// into read response latency and write response latency.
type Latency struct {
	Read  Acc
	Write Acc
}

// Total returns the paper's "total response latency": the sum of the read
// and write average latencies, in microseconds. (Section III.B: "We utilize
// the sum of write response latency and read response latency to evaluate
// the overall performance.")
func (l Latency) Total() float64 { return l.Read.Mean() + l.Write.Mean() }

// Merge folds other into l.
func (l *Latency) Merge(other Latency) {
	l.Read.Merge(other.Read)
	l.Write.Merge(other.Write)
}

// Reset clears both accumulators in place.
func (l *Latency) Reset() {
	l.Read.Reset()
	l.Write.Reset()
}

// Snapshot returns an independent copy (histograms cloned).
func (l Latency) Snapshot() Latency {
	return Latency{Read: l.Read.Snapshot(), Write: l.Write.Snapshot()}
}

// Collector accumulates per-tenant latencies for one simulation run. A
// collector is reusable: Reset clears it for the next run while keeping the
// per-tenant accumulators (and their histogram storage) on a free list, so
// loops that run thousands of simulations (the 42-strategy label loop)
// allocate no fresh accumulators after the first run.
type Collector struct {
	perTenant map[int]*Latency
	device    Latency
	free      []*Latency // reset accumulators awaiting reuse
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{perTenant: make(map[int]*Latency)}
}

// AddRead records a completed read for a tenant.
func (c *Collector) AddRead(tenant int, d sim.Time) {
	c.tenant(tenant).Read.Add(d)
	c.device.Read.Add(d)
}

// AddWrite records a completed write for a tenant.
func (c *Collector) AddWrite(tenant int, d sim.Time) {
	c.tenant(tenant).Write.Add(d)
	c.device.Write.Add(d)
}

func (c *Collector) tenant(id int) *Latency {
	l, ok := c.perTenant[id]
	if !ok {
		if n := len(c.free); n > 0 {
			l = c.free[n-1]
			c.free = c.free[:n-1]
		} else {
			l = &Latency{}
		}
		c.perTenant[id] = l
	}
	return l
}

// Reset clears the collector for a new run. Tenant accumulators are
// recycled onto the free list, so the set of observed tenants (and
// therefore Tenants and the per-tenant result map) starts empty, exactly as
// on a fresh collector.
func (c *Collector) Reset() {
	for id, l := range c.perTenant {
		l.Reset()
		c.free = append(c.free, l)
		delete(c.perTenant, id)
	}
	c.device.Reset()
}

// Device returns the aggregate latency over all tenants.
func (c *Collector) Device() Latency { return c.device }

// Tenant returns the latency accumulated for one tenant (zero value if the
// tenant issued no requests).
func (c *Collector) Tenant(id int) Latency {
	if l, ok := c.perTenant[id]; ok {
		return *l
	}
	return Latency{}
}

// Tenants returns the tenant IDs observed, sorted.
func (c *Collector) Tenants() []int {
	ids := make([]int, 0, len(c.perTenant))
	for id := range c.perTenant {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// String renders a compact multi-line summary.
func (c *Collector) String() string {
	var b strings.Builder
	d := c.Device()
	fmt.Fprintf(&b, "device: read %.1fus (n=%d) write %.1fus (n=%d) total %.1fus\n",
		d.Read.Mean(), d.Read.Count, d.Write.Mean(), d.Write.Count, d.Total())
	for _, id := range c.Tenants() {
		l := c.Tenant(id)
		fmt.Fprintf(&b, "tenant %d: read %.1fus (n=%d) write %.1fus (n=%d)\n",
			id, l.Read.Mean(), l.Read.Count, l.Write.Mean(), l.Write.Count)
	}
	return b.String()
}

// Normalize divides each value by base, returning 0 when base is 0. It is
// the helper behind every "normalized latency" series in the figures.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// ArgMin returns the index of the smallest value (first on ties) and -1 for
// an empty slice.
func ArgMin(values []float64) int {
	if len(values) == 0 {
		return -1
	}
	best := 0
	for i, v := range values {
		if v < values[best] {
			best = i
		}
	}
	return best
}

// JainIndex computes Jain's fairness index over a set of per-tenant
// quantities: (sum x)^2 / (n * sum x^2). It is 1.0 when all tenants see the
// same value and approaches 1/n as one tenant dominates — the standard
// multi-tenant isolation metric.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1 // all zeros: perfectly equal
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// Fairness returns Jain's index over the tenants' total (read mean + write
// mean) latencies — 1.0 means every tenant experiences the device equally.
func (c *Collector) Fairness() float64 {
	ids := c.Tenants()
	if len(ids) == 0 {
		return 0
	}
	totals := make([]float64, len(ids))
	for i, id := range ids {
		totals[i] = c.Tenant(id).Total()
	}
	return JainIndex(totals)
}
