package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ssdkeeper/internal/sim"
)

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	if h.Count() != 0 {
		t.Error("empty histogram count not 0")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	v := 240 * sim.Microsecond
	h.Add(v)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		// Bucket upper bound must contain the value within 12.5%.
		if got < v || float64(got) > float64(v)*1.125+1 {
			t.Errorf("quantile(%v) = %v, want about %v", q, got, v)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	values := make([]sim.Time, 10000)
	for i := range values {
		// Log-uniform between 1us and 1s.
		v := sim.Time(math.Exp(rng.Float64()*math.Log(1e9-1e3)) * 1e3)
		if v < sim.Microsecond {
			v = sim.Microsecond
		}
		values[i] = v
		h.Add(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := values[int(q*float64(len(values)-1))]
		got := h.Quantile(q)
		rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if rel > 0.15 {
			t.Errorf("quantile(%v) = %v vs exact %v (rel err %.2f)", q, got, exact, rel)
		}
	}
}

func TestHistogramBucketMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var h Histogram
		for _, v := range raw {
			h.Add(sim.Time(v))
		}
		if len(raw) == 0 {
			return h.Quantile(0.5) == 0
		}
		prev := sim.Time(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketRoundTripProperty(t *testing.T) {
	// Every value must fall within its bucket's bounds: value <= upper
	// bound and (for idx > 0) value > previous bucket's upper bound.
	f := func(v uint64) bool {
		d := sim.Time(v >> 1) // keep positive
		idx := bucketOf(d)
		if d > upperBoundOf(idx) {
			return false
		}
		if idx > 0 && d <= upperBoundOf(idx-1) && bucketOf(d) != idx-0 {
			// Values at bucket edges must still map consistently.
			return upperBoundOf(idx-1) < d || bucketOf(d) == idx
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		v := sim.Time(rng.Int63n(int64(sim.Second)))
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Errorf("merged count %d, want %d", a.Count(), all.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("quantile(%v) differs after merge", q)
		}
	}
	a.Merge(nil) // must not panic
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Count() != 1 {
		t.Error("negative value dropped")
	}
	if got := h.Quantile(1); got != 0 {
		t.Errorf("clamped value quantile %v", got)
	}
}

func TestAccPercentiles(t *testing.T) {
	var a Acc
	for i := 1; i <= 100; i++ {
		a.Add(sim.Time(i) * sim.Microsecond)
	}
	p50 := a.P50()
	if p50 < 45*sim.Microsecond || p50 > 60*sim.Microsecond {
		t.Errorf("p50 = %v, want about 50us", p50)
	}
	p99 := a.P99()
	if p99 < 95*sim.Microsecond || p99 > 115*sim.Microsecond {
		t.Errorf("p99 = %v, want about 99us", p99)
	}
	var empty Acc
	if empty.P50() != 0 {
		t.Error("empty Acc quantile not 0")
	}
}

func TestAccMergePreservesHistogram(t *testing.T) {
	var a, b Acc
	for i := 0; i < 50; i++ {
		a.Add(10 * sim.Microsecond)
		b.Add(1000 * sim.Microsecond)
	}
	a.Merge(b)
	// Median of the merged stream sits at either mode; p99 must be the
	// slow mode.
	if a.P99() < 900*sim.Microsecond {
		t.Errorf("merged p99 = %v, want about 1000us", a.P99())
	}
}

func TestHistogramMergeNilIsNoop(t *testing.T) {
	var h Histogram
	h.Add(100)
	h.Merge(nil)
	if h.Count() != 1 || h.P50() < 100 {
		t.Errorf("merge(nil) changed histogram: count=%d", h.Count())
	}
}

func TestHistogramMergeEmptyOperands(t *testing.T) {
	var empty, h Histogram
	h.Add(50)
	h.Merge(&empty) // empty into populated
	if h.Count() != 1 {
		t.Errorf("count after merging empty = %d, want 1", h.Count())
	}
	empty.Merge(&h) // populated into empty
	if empty.Count() != 1 || empty.Quantile(1) != h.Quantile(1) {
		t.Errorf("empty.Merge lost data: count=%d", empty.Count())
	}
	var a, b Histogram
	a.Merge(&b) // empty into empty
	if a.Count() != 0 || a.Quantile(0.99) != 0 {
		t.Errorf("empty-empty merge produced data: count=%d", a.Count())
	}
}

func TestHistogramMergeSelf(t *testing.T) {
	var h Histogram
	for i := sim.Time(1); i <= 10; i++ {
		h.Add(i * 100)
	}
	before := h.Quantile(1)
	h.Merge(&h)
	if h.Count() != 20 {
		t.Errorf("self-merge count = %d, want 20", h.Count())
	}
	if h.Quantile(1) != before {
		t.Errorf("self-merge moved max quantile: %v -> %v", before, h.Quantile(1))
	}
}

func TestHistogramMergeMatchesCombinedAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b, both Histogram
	for i := 0; i < 500; i++ {
		v := sim.Time(rng.Int63n(1 << 40))
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a != both {
		t.Fatal("merged histogram differs from one built by combined adds")
	}
}

func TestHistogramResetAndClone(t *testing.T) {
	var h Histogram
	h.Add(42)
	c := h.Clone()
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("reset histogram not empty: count=%d", h.Count())
	}
	if c.Count() != 1 {
		t.Errorf("clone mutated by reset: count=%d", c.Count())
	}
	var nilH *Histogram
	if nilH.Clone() != nil {
		t.Error("nil.Clone() != nil")
	}
}
