package dataset

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/workload"
)

// quickConfig returns a dataset configuration small enough for unit tests:
// the two-tenant strategy space padded to 4 tenants is not valid here, so we
// use a hand-picked subset of the four-tenant space.
func quickConfig() Config {
	cfg := nand.EvalConfig()
	return Config{
		Device:  cfg,
		Options: ssd.DefaultOptions(),
		Strategies: []alloc.Strategy{
			{Kind: alloc.Shared},
			{Kind: alloc.Isolated},
			{Kind: alloc.TwoGroup, WriteChannels: 6},
			{Kind: alloc.FourWay, Parts: []int{5, 1, 1, 1}},
		},
		Workloads: 4,
		Requests:  800,
		MaxIOPS:   16000,
		Season:    workload.DefaultSeasoning(),
		Seed:      7,
		Workers:   2,
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	cfg := quickConfig()
	var calls int
	a, err := Generate(context.Background(), cfg, func(done, total int) {
		calls++
		if total != cfg.Workloads {
			t.Errorf("progress total %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Workloads {
		t.Fatalf("got %d samples", len(a))
	}
	if calls != cfg.Workloads {
		t.Errorf("progress called %d times", calls)
	}
	b, err := Generate(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("sample %d label differs between runs", i)
		}
		for j := range a[i].Latencies {
			if a[i].Latencies[j] != b[i].Latencies[j] {
				t.Fatalf("sample %d latency %d differs", i, j)
			}
		}
	}
	for i, s := range a {
		if s.Label < 0 || s.Label >= len(cfg.Strategies) {
			t.Errorf("sample %d label %d out of range", i, s.Label)
		}
		if len(s.Latencies) != len(cfg.Strategies) {
			t.Errorf("sample %d has %d latencies", i, len(s.Latencies))
		}
		// The label must be within the tie tolerance of the argmin.
		best := s.Latencies[0]
		for _, l := range s.Latencies {
			if l < best {
				best = l
			}
		}
		if s.Latencies[s.Label] > best*1.02+1e-9 {
			t.Errorf("sample %d: label %d (%.1f) outside 2%% of optimum (%.1f)",
				i, s.Label, s.Latencies[s.Label], best)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := quickConfig()
	bad.Workloads = 0
	if _, err := Generate(context.Background(), bad, nil); err == nil {
		t.Error("zero workloads accepted")
	}
	bad = quickConfig()
	bad.Strategies = nil
	if _, err := Generate(context.Background(), bad, nil); err == nil {
		t.Error("empty strategy space accepted")
	}
	bad = quickConfig()
	bad.MaxIOPS = 0
	if _, err := Generate(context.Background(), bad, nil); err == nil {
		t.Error("zero MaxIOPS accepted")
	}
	bad = quickConfig()
	bad.Requests = -1
	if _, err := Generate(context.Background(), bad, nil); err == nil {
		t.Error("negative requests accepted")
	}
}

func TestGenerateCancellation(t *testing.T) {
	cfg := quickConfig()
	cfg.Workloads = 8

	// Already-cancelled context: nothing is produced.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Generate(ctx, cfg, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Generate returned %v, want context.Canceled", err)
	}

	// Cancel mid-run, from the first progress callback: Generate must stop
	// and report the cancellation, not a partial dataset.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	samples, err := Generate(ctx, cfg, func(done, total int) { cancel() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Generate returned %v, want context.Canceled", err)
	}
	if samples != nil {
		t.Errorf("cancelled Generate returned %d samples, want none", len(samples))
	}
}

// TestGenerateParallelWorkers exercises the fan-out with more workers than
// workloads would strictly need; run under -race it checks the shared
// progress counter and result slice for data races.
func TestGenerateParallelWorkers(t *testing.T) {
	cfg := quickConfig()
	cfg.Workloads = 6
	cfg.Workers = 4
	samples, err := Generate(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != cfg.Workloads {
		t.Fatalf("got %d samples, want %d", len(samples), cfg.Workloads)
	}
	for i, s := range samples {
		if len(s.Latencies) != len(cfg.Strategies) {
			t.Errorf("sample %d has %d latencies", i, len(s.Latencies))
		}
	}
}

// TestGenerateDeterministicAcrossWorkerCounts asserts the satellite
// guarantee: the same seed yields byte-identical samples regardless of how
// many workers labelled them (specs are pre-drawn from one PRNG; workers
// only consume them).
func TestGenerateDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := quickConfig()
	ref.Workers = 1
	want, err := Generate(context.Background(), ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		cfg := quickConfig()
		cfg.Workers = workers
		got, err := Generate(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Vector != want[i].Vector || got[i].Label != want[i].Label {
				t.Fatalf("workers=%d: sample %d differs from single-worker run", workers, i)
			}
			for j := range want[i].Latencies {
				if got[i].Latencies[j] != want[i].Latencies[j] {
					t.Fatalf("workers=%d: sample %d latency %d differs", workers, i, j)
				}
			}
		}
	}
}

func TestLabelFeatureVectorMatchesSpec(t *testing.T) {
	cfg := quickConfig()
	rng := rand.New(rand.NewSource(9))
	spec := workload.RandomMixSpec(rng, cfg.Requests, cfg.MaxIOPS)
	s, err := Label(context.Background(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantLevel := features.LevelOf(spec.IOPS, cfg.MaxIOPS)
	if s.Vector.Intensity != wantLevel {
		t.Errorf("intensity %d, want %d", s.Vector.Intensity, wantLevel)
	}
	for i, tenant := range spec.Tenants {
		if s.Vector.ReadChar[i] != (tenant.WriteRatio < 0.5) {
			t.Errorf("tenant %d characteristic wrong", i)
		}
		if s.Vector.Prop[i] != tenant.Share {
			t.Errorf("tenant %d proportion %v, want %v", i, s.Vector.Prop[i], tenant.Share)
		}
	}
}

func TestToNN(t *testing.T) {
	samples := []Sample{
		{Vector: features.Vector{Intensity: 3}, Label: 1},
		{Vector: features.Vector{Intensity: 9}, Label: 0},
	}
	d := ToNN(samples)
	if d.Len() != 2 {
		t.Fatalf("len %d", d.Len())
	}
	if len(d.X[0]) != features.Dim {
		t.Errorf("input dim %d", len(d.X[0]))
	}
	if d.Y[0] != 1 || d.Y[1] != 0 {
		t.Errorf("labels %v", d.Y)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := quickConfig()
	cfg.Workloads = 2
	samples, err := Generate(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(samples) {
		t.Fatalf("round trip %d vs %d samples", len(back), len(samples))
	}
	for i := range samples {
		if back[i].Label != samples[i].Label {
			t.Errorf("sample %d label changed", i)
		}
		if back[i].Vector != samples[i].Vector {
			t.Errorf("sample %d vector changed", i)
		}
	}
}

func TestLoadSamplesRejectsGarbage(t *testing.T) {
	if _, err := LoadSamples(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLabelHistogram(t *testing.T) {
	samples := []Sample{{Label: 0}, {Label: 0}, {Label: 2}, {Label: 99}}
	h := LabelHistogram(samples, 3)
	if h[0] != 2 || h[1] != 0 || h[2] != 1 {
		t.Errorf("histogram %v", h)
	}
}

// Labels must not depend on how many workers fan the per-strategy loop out,
// nor on reusing one labeler's runners across calls.
func TestLabelDeterministicAcrossWorkerCounts(t *testing.T) {
	base := quickConfig()
	rng := rand.New(rand.NewSource(base.Seed))
	spec := workload.RandomMixSpec(rng, base.Requests, base.MaxIOPS)
	var want Sample
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := base
		cfg.Workers = workers
		lab := NewLabeler(cfg)
		got, err := lab.Label(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Second call on the same labeler reuses its runners (reset
		// engines and devices) and must reproduce the first exactly.
		again, err := lab.Label(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d relabel: %v", workers, err)
		}
		for i := range got.Latencies {
			if got.Latencies[i] != again.Latencies[i] {
				t.Fatalf("workers=%d: relabel on reused runners diverged at strategy %d: %v vs %v",
					workers, i, got.Latencies[i], again.Latencies[i])
			}
		}
		if workers == 1 {
			want = got
			continue
		}
		if got.Label != want.Label {
			t.Errorf("workers=%d label %d, workers=1 label %d", workers, got.Label, want.Label)
		}
		for i := range want.Latencies {
			if got.Latencies[i] != want.Latencies[i] {
				t.Errorf("workers=%d latency[%d] = %v, workers=1 = %v",
					workers, i, got.Latencies[i], want.Latencies[i])
			}
		}
	}
}
