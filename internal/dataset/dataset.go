// Package dataset implements the paper's strategy-learner data pipeline
// (Sections IV.C and V.B): synthesize mixed workloads with random access
// patterns, replay each one under every channel-allocation strategy on the
// simulator, label it with the strategy that minimizes total response
// latency, and emit a shuffled, split classification dataset.
//
// Label generation is embarrassingly parallel — every (workload, strategy)
// simulation is independent — so it fans out across a worker pool.
package dataset

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ssdkeeper/internal/ftl"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/workload"
)

// Config controls dataset generation.
type Config struct {
	Device     nand.Config
	Options    ssd.Options
	Strategies []alloc.Strategy // label space; index = class
	Workloads  int              // mixed workloads to synthesize (paper: 5000)
	Requests   int              // requests per mixed workload (paper: 2M)
	MaxIOPS    float64          // intensity sampling range / level-19 rate
	Hybrid     bool             // run label simulations with hybrid page allocation
	Season     workload.Seasoning
	// TieTolerance denoises labels: among strategies whose total latency
	// is within this fraction of the minimum, the earliest strategy in
	// the space wins. Simulated latencies of near-equivalent strategies
	// differ by sampling noise; without a tolerance the argmin flips
	// arbitrarily between them and the classifier learns that noise.
	// Negative disables; zero applies the 2% default.
	TieTolerance float64
	// FaultFraction is the share of workloads labelled under a randomly
	// synthesized nand.FaultPlan (die failure, retry tail, program
	// slowdown), so the trained model sees the health features populated
	// and learns strategy choice on degraded devices too. The plan is held
	// constant across the per-strategy loop — every strategy is measured
	// under the same injuries — and the sample's vector carries the plan's
	// ground-truth health features. Zero keeps the immortal pipeline.
	FaultFraction float64
	Seed          int64
	Workers       int // 0 = GOMAXPROCS
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	switch {
	case len(c.Strategies) == 0:
		return fmt.Errorf("dataset: empty strategy space")
	case c.Workloads <= 0:
		return fmt.Errorf("dataset: non-positive workload count")
	case c.Requests <= 0:
		return fmt.Errorf("dataset: non-positive request count")
	case c.MaxIOPS <= 0:
		return fmt.Errorf("dataset: non-positive MaxIOPS")
	}
	return nil
}

// Sample is one labelled mixed workload: the feature vector SSDKeeper would
// observe, the winning strategy, and the measured per-strategy latencies
// (kept so analyses like Figure 6 can be recomputed without re-simulating).
type Sample struct {
	Spec      workload.MixSpec `json:"spec"`
	Vector    features.Vector  `json:"vector"`
	Label     int              `json:"label"`
	Latencies []float64        `json:"latencies_us"` // total latency per strategy
	// Fault is the plan the workload was labelled under, nil for immortal
	// samples. Kept for provenance and so datasets regenerate faithfully.
	Fault *nand.FaultPlan `json:"fault,omitempty"`
}

// Generate runs the full label-generation pipeline. progress (may be nil) is
// called after each workload completes, from multiple goroutines, with the
// number done so far. Cancelling ctx stops the workers between simulations
// and returns the context's error; samples labelled so far are discarded
// (partial datasets would silently bias training).
func Generate(ctx context.Context, cfg Config, progress func(done, total int)) ([]Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Split the budget across the two parallel dimensions: outer workers
	// take whole workloads; each one labels with inner workers fanning the
	// per-strategy loop out. Many workloads → all-outer (one labeler per
	// worker, serial strategy loop, minimal cross-goroutine traffic); few
	// workloads → the spare budget parallelizes inside each label. Either
	// split produces identical samples.
	outer := workers
	if outer > cfg.Workloads {
		outer = cfg.Workloads
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}

	// Draw every spec (and fault plan) up front from one PRNG so results do
	// not depend on worker interleaving.
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]workload.MixSpec, cfg.Workloads)
	plans := make([]*nand.FaultPlan, cfg.Workloads)
	for i := range specs {
		specs[i] = workload.RandomMixSpec(rng, cfg.Requests, cfg.MaxIOPS)
		if cfg.FaultFraction > 0 && rng.Float64() < cfg.FaultFraction {
			plans[i] = RandomFaultPlan(rng, cfg.Device, specs[i])
		}
	}

	samples := make([]Sample, cfg.Workloads)
	errs := make([]error, cfg.Workloads)
	var done atomic.Int64
	var wg sync.WaitGroup
	// Buffered to the full workload count: the scheduling loop never
	// blocks on a slow worker, and cancellation only has to stop reads.
	work := make(chan int, cfg.Workloads)
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One labeler per worker: the runners (engines, devices,
			// collectors) are reused across every simulation this worker
			// runs.
			lcfg := cfg
			lcfg.Workers = inner
			lab := NewLabeler(lcfg)
			for i := range work {
				if ctx.Err() != nil {
					return
				}
				samples[i], errs[i] = lab.LabelFaulted(ctx, specs[i], plans[i])
				if progress != nil {
					progress(int(done.Add(1)), cfg.Workloads)
				}
			}
		}()
	}
schedule:
	for i := 0; i < cfg.Workloads; i++ {
		select {
		case <-ctx.Done():
			break schedule
		case work <- i:
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dataset: workload %d: %w", i, err)
		}
	}
	return samples, nil
}

// Infeasible is the latency recorded for a strategy whose channel partition
// cannot hold its tenants' live data (ftl.ErrDeviceFull). It never wins the
// label and is JSON-safe, unlike +Inf.
const Infeasible = math.MaxFloat64

// Labeler labels workloads one after another on a pool of private
// simrun.Runners, so the simulation engines, devices, and collectors are
// reused across the whole per-strategy loop instead of being reallocated per
// simulation. With more than one worker (Config.Workers; 0 = GOMAXPROCS)
// each Label call splits its per-strategy loop across the runners; the
// strategies run concurrently but each result lands in its strategy's slot,
// so the sample is identical for any worker count. A Labeler belongs to one
// goroutine at a time; Generate gives each outer worker its own.
type Labeler struct {
	cfg     Config
	workers int
	runners []*simrun.Runner // one per worker, created lazily, reused across calls
}

// NewLabeler returns a labeler for the given generation config.
func NewLabeler(cfg Config) *Labeler {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Labeler{cfg: cfg, workers: w}
}

// runnerFor returns (creating on first use) the worker's private runner.
func (l *Labeler) runnerFor(w int) *simrun.Runner {
	for len(l.runners) <= w {
		l.runners = append(l.runners, simrun.NewRunner())
	}
	return l.runners[w]
}

// Label runs one mixed workload under every strategy and returns the
// labelled sample (Algorithm 1, lines 3-8). Strategies that overflow their
// partitions score Infeasible. Cancelling ctx aborts mid-loop.
func Label(ctx context.Context, cfg Config, spec workload.MixSpec) (Sample, error) {
	return NewLabeler(cfg).Label(ctx, spec)
}

// Label labels one workload on an immortal device. See the package-level
// Label.
func (l *Labeler) Label(ctx context.Context, spec workload.MixSpec) (Sample, error) {
	return l.LabelFaulted(ctx, spec, nil)
}

// LabelFaulted labels one workload, optionally under a fault plan applied
// identically to every strategy's replay. A nil plan is the immortal path.
func (l *Labeler) LabelFaulted(ctx context.Context, spec workload.MixSpec, plan *nand.FaultPlan) (Sample, error) {
	cfg := l.cfg
	opts := cfg.Options
	if plan != nil {
		opts.FaultPlan = plan
	}
	tr, err := spec.Build(cfg.Device.PageSize)
	if err != nil {
		return Sample{}, err
	}
	traits := spec.Traits()
	lat := make([]float64, len(cfg.Strategies))
	errs := make([]error, len(cfg.Strategies))
	// runOne replays the workload under strategy si on runner r. The trace
	// and traits are shared read-only; the result lands in the strategy's
	// own slot, so the outcome is independent of which worker ran it.
	runOne := func(r *simrun.Runner, si int) {
		res, err := r.Run(ctx, simrun.Config{
			Device:   cfg.Device,
			Options:  opts,
			Strategy: cfg.Strategies[si],
			Traits:   traits,
			Hybrid:   cfg.Hybrid,
			Season:   cfg.Season,
		}, tr)
		if errors.Is(err, ftl.ErrDeviceFull) {
			lat[si] = Infeasible
			return
		}
		if err != nil {
			errs[si] = err
			return
		}
		lat[si] = workload.TotalLatency(res.Result)
	}
	workers := l.workers
	if workers > len(cfg.Strategies) {
		workers = len(cfg.Strategies)
	}
	if workers <= 1 {
		r := l.runnerFor(0)
		for si := range cfg.Strategies {
			if err := ctx.Err(); err != nil {
				return Sample{}, err
			}
			runOne(r, si)
		}
	} else {
		// Atomic dispenser over strategy indices: workers pull the next
		// unclaimed strategy until the space is exhausted.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			r := l.runnerFor(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					si := int(next.Add(1)) - 1
					if si >= len(cfg.Strategies) || ctx.Err() != nil {
						return
					}
					runOne(r, si)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return Sample{}, err
	}
	// Report errors in strategy order so the failure surfaced does not
	// depend on worker interleaving.
	feasible := 0
	for si, err := range errs {
		if err != nil {
			return Sample{}, fmt.Errorf("strategy %s: %w", cfg.Strategies[si].Name(cfg.Device.Channels), err)
		}
		if lat[si] != Infeasible {
			feasible++
		}
	}
	if feasible == 0 {
		return Sample{}, fmt.Errorf("dataset: no feasible strategy for spec (device too small for working sets)")
	}
	best := 0
	for i, v := range lat {
		if v < lat[best] {
			best = i
		}
	}
	tol := cfg.TieTolerance
	if tol == 0 {
		tol = 0.02
	}
	if tol > 0 {
		cutoff := lat[best] * (1 + tol)
		for i, v := range lat {
			if v <= cutoff {
				best = i
				break
			}
		}
	}
	ratios := make([]float64, len(spec.Tenants))
	shares := make([]float64, len(spec.Tenants))
	for i, t := range spec.Tenants {
		ratios[i] = t.WriteRatio
		shares[i] = t.Share
	}
	vec, err := features.FromSpecShares(features.LevelOf(spec.IOPS, cfg.MaxIOPS), ratios, shares)
	if err != nil {
		return Sample{}, err
	}
	if plan != nil {
		vec.DeadDieFrac, vec.RetryRate, vec.WearSpread = planHealthFeatures(cfg.Device, plan, spec)
	}
	return Sample{Spec: spec, Vector: vec, Label: best, Latencies: lat, Fault: plan}, nil
}

// RandomFaultPlan synthesizes a training fault plan for one workload: a die
// failure partway through the replay, usually a read-retry tail, sometimes a
// wear program slowdown. Event times land inside the spec's nominal duration
// (Requests/IOPS) so the injuries actually bite during the labelled window.
// All randomness comes from rng, so generation stays deterministic per seed.
func RandomFaultPlan(rng *rand.Rand, dev nand.Config, spec workload.MixSpec) *nand.FaultPlan {
	dur := sim.Time(float64(spec.Requests) / spec.IOPS * float64(sim.Second))
	at := func(lo, hi float64) sim.Time {
		return sim.Time(float64(dur) * (lo + (hi-lo)*rng.Float64()))
	}
	die := rng.Intn(dev.TotalDies())
	plan := &nand.FaultPlan{Seed: rng.Int63() + 1}
	if rng.Float64() < 0.8 {
		plan.Events = append(plan.Events, nand.FaultEvent{
			Kind: nand.FaultRetryTail, Prob: 0.02 + 0.18*rng.Float64(), At: at(0.05, 0.3),
		})
	}
	plan.Events = append(plan.Events, nand.FaultEvent{
		Kind: nand.FaultDieFail, At: at(0.3, 0.7),
		Channel: dev.ChannelOfDie(die), Die: die % dev.DiesPerChannel(),
	})
	if rng.Float64() < 0.3 {
		plan.Events = append(plan.Events, nand.FaultEvent{
			Kind: nand.FaultProgramSlowdown, Factor: 1.2 + 0.8*rng.Float64(), At: at(0.3, 0.8),
		})
	}
	sort.Slice(plan.Events, func(i, j int) bool { return plan.Events[i].At < plan.Events[j].At })
	return plan
}

// planHealthFeatures derives the ground-truth health features the plan
// implies — the analog of FromSpecShares for the health dimensions. Dead-die
// fraction counts distinct failed dies; retry rate is the tail probability
// weighted by the mix's read share (only reads retry); wear spread stays 0
// (plans don't prescribe an erase-count distribution).
func planHealthFeatures(dev nand.Config, plan *nand.FaultPlan, spec workload.MixSpec) (deadFrac, retryRate, wearSpread float64) {
	dead := map[int]struct{}{}
	prob := 0.0
	for _, e := range plan.Events {
		switch e.Kind {
		case nand.FaultDieFail:
			dead[e.Channel*dev.DiesPerChannel()+e.Die] = struct{}{}
		case nand.FaultRetryTail:
			if e.Prob > prob {
				prob = e.Prob
			}
		}
	}
	deadFrac = float64(len(dead)) / float64(dev.TotalDies())
	readShare := 0.0
	for _, t := range spec.Tenants {
		readShare += t.Share * (1 - t.WriteRatio)
	}
	retryRate = prob * readShare
	return deadFrac, retryRate, 0
}

// ToNN converts samples into an nn.Dataset of 9-D inputs and class labels.
func ToNN(samples []Sample) nn.Dataset {
	d := nn.Dataset{
		X: make([][]float64, len(samples)),
		Y: make([]int, len(samples)),
	}
	for i, s := range samples {
		d.X[i] = s.Vector.Input()
		d.Y[i] = s.Label
	}
	return d
}

// Save writes samples as JSON lines.
func Save(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	for i := range samples {
		if err := enc.Encode(&samples[i]); err != nil {
			return fmt.Errorf("dataset: save sample %d: %w", i, err)
		}
	}
	return nil
}

// LoadSamples reads JSON-lines samples written by Save.
func LoadSamples(r io.Reader) ([]Sample, error) {
	dec := json.NewDecoder(r)
	var out []Sample
	for dec.More() {
		var s Sample
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("dataset: load sample %d: %w", len(out), err)
		}
		out = append(out, s)
	}
	return out, nil
}

// LabelHistogram counts how often each strategy wins, a useful diagnostic
// for class imbalance in generated datasets.
func LabelHistogram(samples []Sample, classes int) []int {
	hist := make([]int, classes)
	for _, s := range samples {
		if s.Label >= 0 && s.Label < classes {
			hist[s.Label]++
		}
	}
	return hist
}
