// Package ftl implements a page-level flash translation layer: logical-to-
// physical mapping, static and dynamic page allocation (the two modes the
// paper's hybrid page allocator switches between), greedy garbage
// collection, and wear accounting.
//
// The FTL is tenant-aware: each tenant has its own logical address space and
// an assigned set of channels (set by the channel allocator), plus a page
// allocation mode. Static allocation stripes consecutive logical pages
// across the tenant's channels (maximizing read parallelism); dynamic
// allocation places each write on the least-loaded channel and die of the
// tenant's set (minimizing write queueing).
package ftl

import (
	"errors"
	"fmt"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
)

// ErrDeviceFull reports that a plane ran out of free blocks with nothing
// left to reclaim: the live data routed to it exceeds its capacity. Channel
// partitions that cannot hold their tenants' working sets fail with this
// error; callers score such strategies as infeasible.
var ErrDeviceFull = errors.New("ftl: out of free blocks (live data exceeds plane capacity)")

// PageMode selects how physical pages are chosen for writes.
type PageMode uint8

// Page allocation modes (paper Section IV.E).
const (
	// StaticAlloc stripes logical pages over the tenant's channels, then
	// dies, then planes, so sequential reads hit distinct resources.
	StaticAlloc PageMode = iota
	// DynamicAlloc sends each write to the least-loaded channel and die
	// in the tenant's set at the moment of the write.
	DynamicAlloc
)

// String returns "static" or "dynamic".
func (m PageMode) String() string {
	if m == StaticAlloc {
		return "static"
	}
	return "dynamic"
}

// Load supplies live device load, used by dynamic allocation. The SSD device
// implements it; tests use fakes.
type Load interface {
	// ChannelLoad estimates pending work on a channel bus.
	ChannelLoad(ch int) sim.Time
	// DieLoad estimates pending work on a flat die index.
	DieLoad(die int) sim.Time
}

// zeroLoad is used when no telemetry is wired; dynamic allocation then
// degenerates to round-robin via tie-breaking.
type zeroLoad struct{}

func (zeroLoad) ChannelLoad(int) sim.Time { return 0 }
func (zeroLoad) DieLoad(int) sim.Time     { return 0 }

// owner records which logical page occupies a physical page.
type owner struct {
	tenant int
	lpn    int64
}

// block is the erase-unit state.
type block struct {
	writePtr   int // next page to program; == PagesPerBlock when full
	validCount int
	owners     []owner // per page; owner of an invalidated page is cleared
	valid      []bool
	erases     int
}

// plane holds per-plane block bookkeeping. Blocks are materialized lazily:
// with Table I geometry a device has 262144 blocks, almost all of which a
// simulation never touches. Materialization is chunked: block structs and
// their owner/valid page arrays are carved out of per-plane slabs of
// blockChunk blocks, so touching a block costs 3 allocations per chunk
// instead of 3 per block — seasoning a device (which touches every block of
// every plane) drops from tens of thousands of allocations to a few
// hundred.
type plane struct {
	blocks    []*block // lazily filled; nil = never used
	nextFresh int      // first never-used block index
	recycled  []int    // erased blocks available for reuse
	active    int      // currently open block, -1 if none
	full      []int    // closed blocks, candidates for GC

	// Slab remainders for chunked block materialization.
	slabBlocks []block
	slabOwners []owner
	slabValid  []bool
}

// blockChunk is how many blocks one slab materializes at a time. 64 covers
// a whole EvalConfig plane in one chunk; for the full Table I geometry the
// worst-case over-allocation per plane (63 unused blocks) is ~140KB, well
// under the cost of the per-block garbage it replaces.
const blockChunk = 64

func (p *plane) freeBlocks(total int) int {
	return (total - p.nextFresh) + len(p.recycled)
}

// Key identifies a logical page: a tenant and a logical page number.
type Key struct {
	Tenant int
	LPN    int64
}

// FTL is the translation layer state for one device.
type FTL struct {
	cfg    nand.Config
	load   Load
	probe  sim.Probe
	health *nand.Health // nil = immortal device, zero-cost fast path

	planes  []plane
	mapping map[Key]int64 // logical page -> PPN

	channels map[int][]int    // tenant -> channel set; nil entry = all channels
	modes    map[int]PageMode // tenant -> page allocation mode
	rr       []int            // per-die round-robin plane cursor

	gcLowWater int // free blocks per plane that triggers GC

	// Counters.
	writes        uint64
	preloads      uint64 // implicit mappings created by reads of unwritten data
	invalidations uint64
	gcRuns        uint64
	gcMoved       uint64
	gcErases      uint64
	wlRuns        uint64
	wlMoved       uint64
	cmtMisses     uint64

	// cmt is the optional cached mapping table (nil = unlimited SRAM).
	cmt *CMT

	// plan is the scratch GC plan collect returns. Callers consume the plan
	// synchronously (the device charges its DieTime before the next mapping
	// call), so one reusable record replaces a heap allocation per GC pass.
	plan GCPlan
}

// New creates an FTL over the given geometry. load may be nil, in which case
// dynamic allocation behaves as round-robin.
func New(cfg nand.Config, load Load) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if load == nil {
		load = zeroLoad{}
	}
	low := int(cfg.GCThreshold * float64(cfg.BlocksPerPlane))
	if low < 1 {
		low = 1
	}
	f := &FTL{
		cfg:        cfg,
		load:       load,
		probe:      sim.NopProbe{},
		planes:     make([]plane, cfg.TotalPlanes()),
		mapping:    make(map[Key]int64),
		channels:   make(map[int][]int),
		modes:      make(map[int]PageMode),
		rr:         make([]int, cfg.TotalDies()),
		gcLowWater: low,
	}
	for i := range f.planes {
		f.planes[i].active = -1
	}
	return f, nil
}

// Reset restores the FTL to its factory-fresh state — no mappings, no
// tenant bindings, every block erased-and-never-used with zero wear — while
// keeping all materialized block storage, maps, and slices for reuse. An
// enabled CMT is emptied but stays enabled. A reset FTL behaves identically
// to one just built by New over the same geometry; only the allocation
// pattern differs. Run loops (internal/simrun) use it to rebuild a device
// per session without re-materializing plane state.
func (f *FTL) Reset() {
	for i := range f.planes {
		p := &f.planes[i]
		for _, b := range p.blocks {
			if b == nil {
				continue
			}
			b.writePtr = 0
			b.validCount = 0
			b.erases = 0
			clear(b.owners)
			clear(b.valid)
		}
		p.nextFresh = 0
		p.recycled = p.recycled[:0]
		p.active = -1
		p.full = p.full[:0]
	}
	clear(f.mapping)
	clear(f.channels)
	clear(f.modes)
	clear(f.rr)
	f.writes = 0
	f.preloads = 0
	f.invalidations = 0
	f.gcRuns = 0
	f.gcMoved = 0
	f.gcErases = 0
	f.wlRuns = 0
	f.wlMoved = 0
	f.cmtMisses = 0
	f.cmt.Reset()
}

// SetLoad replaces the load telemetry source (used when the device is
// constructed after the FTL).
func (f *FTL) SetLoad(load Load) {
	if load == nil {
		load = zeroLoad{}
	}
	f.load = load
}

// SetProbe attaches a probe notified of garbage-collection passes and
// mapping-cache outcomes. A nil probe restores the no-op default.
func (f *FTL) SetProbe(p sim.Probe) {
	if p == nil {
		p = sim.NopProbe{}
	}
	f.probe = p
}

// SetHealth attaches the device health state the FTL routes around: page
// placement skips dead dies and popFree skips retired blocks. nil (the
// default) keeps the immortal fast path — every health check is a single
// nil comparison. The caller owns resetting h; FTL.Reset does not touch it.
func (f *FTL) SetHealth(h *nand.Health) { f.health = h }

// SetTenantChannels assigns the channel set a tenant's future writes may
// use. Existing mappings are untouched: data already written stays where it
// is and reads follow the mapping, exactly as a real re-allocation would
// behave without migration.
func (f *FTL) SetTenantChannels(tenant int, channels []int) error {
	for _, c := range channels {
		if c < 0 || c >= f.cfg.Channels {
			return fmt.Errorf("ftl: channel %d outside device (%d channels)", c, f.cfg.Channels)
		}
	}
	if len(channels) == 0 {
		delete(f.channels, tenant) // back to all channels
		return nil
	}
	f.channels[tenant] = append([]int(nil), channels...)
	return nil
}

// SetTenantMode sets the page allocation mode for a tenant's writes.
func (f *FTL) SetTenantMode(tenant int, mode PageMode) {
	f.modes[tenant] = mode
}

// TenantChannels returns the channel set for a tenant (all channels if
// unset).
func (f *FTL) TenantChannels(tenant int) []int {
	if set, ok := f.channels[tenant]; ok {
		return set
	}
	all := make([]int, f.cfg.Channels)
	for i := range all {
		all[i] = i
	}
	return all
}

// TenantMode returns the page allocation mode for a tenant (static if
// unset).
func (f *FTL) TenantMode(tenant int) PageMode { return f.modes[tenant] }

// Lookup returns the physical address of a logical page, if mapped.
func (f *FTL) Lookup(k Key) (nand.Addr, bool) {
	ppn, ok := f.mapping[k]
	if !ok {
		return nand.Addr{}, false
	}
	return f.cfg.AddrOf(ppn), true
}

// PredictDie returns, without mutating any state, the flat die index an
// operation on k would target: the mapped location for existing data, or
// the tenant's placement rule for new writes and preload reads. Dynamic-
// allocation targets cannot be known in advance (they depend on load at the
// instant of the write), so those return ok=false. Conflict-aware host
// schedulers use this to steer dispatch away from busy dies.
func (f *FTL) PredictDie(k Key, isWrite bool) (die int, ok bool) {
	if a, mapped := f.Lookup(k); mapped && !isWrite {
		return f.cfg.DieID(a), true
	}
	if isWrite && f.TenantMode(k.Tenant) == DynamicAlloc {
		return 0, false
	}
	// Static placement is a pure function of the LPN and channel set
	// (and, on a degraded device, of which dies are live).
	set := f.TenantChannels(k.Tenant)
	l := k.LPN
	ch := set[int(l%int64(len(set)))]
	l /= int64(len(set))
	dieInCh := int(l % int64(f.cfg.DiesPerChannel()))
	if f.health != nil {
		if c2, d2, live := f.redirect(set, ch, dieInCh); live {
			ch, dieInCh = c2, d2
		}
	}
	chip := dieInCh / f.cfg.DiesPerChip
	d := dieInCh % f.cfg.DiesPerChip
	return f.cfg.DieID(nand.Addr{Channel: ch, Chip: chip, Die: d}), true
}

// MapRead returns the physical address to read for a logical page. Reads of
// never-written pages are backed by an implicit static preload: the page is
// placed as static allocation would have placed it, modelling a device whose
// resident data was written with the tenant's striping. No program time is
// charged for preloads.
func (f *FTL) MapRead(k Key) (nand.Addr, error) {
	if a, ok := f.Lookup(k); ok {
		return a, nil
	}
	a, _, err := f.place(k, StaticAlloc)
	if err != nil {
		return nand.Addr{}, err
	}
	f.preloads++
	return a, nil
}

// MapWrite allocates a physical page for a logical write, invalidating any
// previous mapping, and returns the address plus an optional GC plan that
// the caller must account for (the FTL metadata effects of the plan are
// already applied; the caller charges its time on the die).
func (f *FTL) MapWrite(k Key) (nand.Addr, *GCPlan, error) {
	mode := f.TenantMode(k.Tenant)
	if old, ok := f.mapping[k]; ok {
		f.invalidate(old)
	}
	a, gc, err := f.place(k, mode)
	if err != nil {
		return nand.Addr{}, nil, err
	}
	f.writes++
	return a, gc, nil
}

// place picks a plane according to mode, appends the page to the plane's
// active block, updates the mapping, and runs GC if the plane is low on free
// blocks.
func (f *FTL) place(k Key, mode PageMode) (nand.Addr, *GCPlan, error) {
	set := f.TenantChannels(k.Tenant)
	var ch, dieInCh, pl int
	switch mode {
	case StaticAlloc:
		// Channel-first striping within the tenant's set: consecutive
		// LPNs land on consecutive channels, then dies, then planes.
		l := k.LPN
		ch = set[int(l%int64(len(set)))]
		l /= int64(len(set))
		dieInCh = int(l % int64(f.cfg.DiesPerChannel()))
		l /= int64(f.cfg.DiesPerChannel())
		pl = int(l % int64(f.cfg.PlanesPerDie))
		if f.health != nil {
			c2, d2, live := f.redirect(set, ch, dieInCh)
			if !live {
				return nand.Addr{}, nil, fmt.Errorf("ftl: no live dies: %w", ErrDeviceFull)
			}
			ch, dieInCh = c2, d2
		}
	case DynamicAlloc:
		ch = -1
		var best sim.Time
		for _, c := range set {
			if f.health != nil && f.health.LiveInChannel(c) == 0 {
				continue
			}
			if l := f.load.ChannelLoad(c); ch == -1 || l < best {
				ch, best = c, l
			}
		}
		if ch == -1 {
			// The tenant's whole channel set is dead; spill to any
			// live channel, like the static redirect's last resort.
			for c := 0; c < f.cfg.Channels; c++ {
				if f.health.LiveInChannel(c) == 0 {
					continue
				}
				if l := f.load.ChannelLoad(c); ch == -1 || l < best {
					ch, best = c, l
				}
			}
			if ch == -1 {
				return nand.Addr{}, nil, fmt.Errorf("ftl: no live dies: %w", ErrDeviceFull)
			}
		}
		dieInCh = -1
		firstDie := ch * f.cfg.DiesPerChannel()
		var bestDie sim.Time
		for d := 0; d < f.cfg.DiesPerChannel(); d++ {
			if f.health != nil && f.health.DieDead(firstDie+d) {
				continue
			}
			if l := f.load.DieLoad(firstDie + d); dieInCh == -1 || l < bestDie {
				dieInCh, bestDie = d, l
			}
		}
		die := firstDie + dieInCh
		pl = f.rr[die]
		f.rr[die] = (pl + 1) % f.cfg.PlanesPerDie
	default:
		return nand.Addr{}, nil, fmt.Errorf("ftl: unknown page mode %d", mode)
	}

	chip := dieInCh / f.cfg.DiesPerChip
	die := dieInCh % f.cfg.DiesPerChip
	base := nand.Addr{Channel: ch, Chip: chip, Die: die, Plane: pl}
	planeID := f.cfg.PlaneID(base)

	blockID, page, err := f.appendPage(planeID, k)
	if err != nil {
		return nand.Addr{}, nil, err
	}
	base.Block = blockID
	base.Page = page
	f.mapping[k] = f.cfg.PPN(base)

	var gc *GCPlan
	if f.planes[planeID].freeBlocks(f.cfg.BlocksPerPlane) <= f.gcLowWater {
		gc = f.collect(planeID)
	}
	return base, gc, nil
}

// appendPage writes k into the plane's active block, opening a new block if
// needed, and returns the (block, page) location.
func (f *FTL) appendPage(planeID int, k Key) (blockID, page int, err error) {
	p := &f.planes[planeID]
	if p.active == -1 || f.blockAt(p, p.active).writePtr == f.cfg.PagesPerBlock {
		// Pop the replacement before retiring the active block: if the
		// plane is out of free blocks the active block must stay active
		// (and out of the GC candidate list) so state remains
		// consistent across the error.
		id, ok := f.popFree(p, planeID)
		if !ok {
			return 0, 0, fmt.Errorf("plane %d: %w", planeID, ErrDeviceFull)
		}
		if p.active != -1 {
			p.full = append(p.full, p.active)
		}
		p.active = id
	}
	b := f.blockAt(p, p.active)
	page = b.writePtr
	b.writePtr++
	b.owners[page] = owner{tenant: k.Tenant, lpn: k.LPN}
	b.valid[page] = true
	b.validCount++
	return p.active, page, nil
}

// blockAt materializes the block lazily, carving it from the plane's slab.
func (f *FTL) blockAt(p *plane, id int) *block {
	if p.blocks == nil {
		p.blocks = make([]*block, f.cfg.BlocksPerPlane)
	}
	if b := p.blocks[id]; b != nil {
		return b
	}
	if len(p.slabBlocks) == 0 {
		chunk := blockChunk
		if chunk > f.cfg.BlocksPerPlane {
			chunk = f.cfg.BlocksPerPlane
		}
		pages := f.cfg.PagesPerBlock
		p.slabBlocks = make([]block, chunk)
		p.slabOwners = make([]owner, chunk*pages)
		p.slabValid = make([]bool, chunk*pages)
	}
	b := &p.slabBlocks[0]
	p.slabBlocks = p.slabBlocks[1:]
	pages := f.cfg.PagesPerBlock
	b.owners = p.slabOwners[:pages:pages]
	p.slabOwners = p.slabOwners[pages:]
	b.valid = p.slabValid[:pages:pages]
	p.slabValid = p.slabValid[pages:]
	p.blocks[id] = b
	return b
}

// popFree takes a free block. Never-used blocks go first; among recycled
// blocks the least-erased is chosen — dynamic wear leveling, which spreads
// erases evenly across the blocks in circulation. Retired fresh blocks are
// skipped (retired recycled blocks were removed from the list when they
// retired).
func (f *FTL) popFree(p *plane, planeID int) (int, bool) {
	if f.health != nil {
		for p.nextFresh < f.cfg.BlocksPerPlane && f.health.BlockRetired(planeID, p.nextFresh) {
			p.nextFresh++
		}
	}
	if p.nextFresh < f.cfg.BlocksPerPlane {
		id := p.nextFresh
		p.nextFresh++
		return id, true
	}
	n := len(p.recycled)
	if n == 0 {
		return 0, false
	}
	best := 0
	bestErases := f.blockAt(p, p.recycled[0]).erases
	for i := 1; i < n; i++ {
		if e := f.blockAt(p, p.recycled[i]).erases; e < bestErases {
			best, bestErases = i, e
		}
	}
	id := p.recycled[best]
	p.recycled[best] = p.recycled[n-1]
	p.recycled = p.recycled[:n-1]
	return id, true
}

// invalidate clears the valid bit of a physical page.
func (f *FTL) invalidate(ppn int64) {
	a := f.cfg.AddrOf(ppn)
	p := &f.planes[f.cfg.PlaneID(a)]
	b := f.blockAt(p, a.Block)
	if b.valid[a.Page] {
		b.valid[a.Page] = false
		b.owners[a.Page] = owner{}
		b.validCount--
		f.invalidations++
	}
}

// Counters is a snapshot of FTL activity, for tests and reports.
type Counters struct {
	Writes        uint64
	Preloads      uint64
	Invalidations uint64
	GCRuns        uint64
	GCMovedPages  uint64
	GCErases      uint64
	WLRuns        uint64
	WLMovedPages  uint64
	Mapped        int
}

// Counters returns current FTL activity counters.
func (f *FTL) Counters() Counters {
	return Counters{
		Writes:        f.writes,
		Preloads:      f.preloads,
		Invalidations: f.invalidations,
		GCRuns:        f.gcRuns,
		GCMovedPages:  f.gcMoved,
		GCErases:      f.gcErases,
		WLRuns:        f.wlRuns,
		WLMovedPages:  f.wlMoved,
		Mapped:        len(f.mapping),
	}
}
