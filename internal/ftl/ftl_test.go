package ftl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
)

// fakeLoad steers dynamic allocation in tests.
type fakeLoad struct {
	ch  map[int]sim.Time
	die map[int]sim.Time
}

func (f fakeLoad) ChannelLoad(c int) sim.Time { return f.ch[c] }
func (f fakeLoad) DieLoad(d int) sim.Time     { return f.die[d] }

func mustFTL(t *testing.T, cfg nand.Config, load Load) *FTL {
	t.Helper()
	f, err := New(cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStaticAllocStripesAcrossTenantChannels(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	if err := f.SetTenantChannels(0, []int{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f.SetTenantMode(0, StaticAlloc)
	want := []int{2, 3, 4, 2, 3, 4}
	for lpn, wantCh := range want {
		a, gc, err := f.MapWrite(Key{Tenant: 0, LPN: int64(lpn)})
		if err != nil {
			t.Fatal(err)
		}
		if gc != nil {
			t.Fatal("unexpected GC on fresh device")
		}
		if a.Channel != wantCh {
			t.Errorf("lpn %d on channel %d, want %d", lpn, a.Channel, wantCh)
		}
	}
}

func TestStaticAllocSpreadsOverDiesAndPlanes(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	if err := f.SetTenantChannels(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	// One channel, 2 dies, 4 planes: LPNs 0..7 should hit 8 distinct
	// (die, plane) pairs before reusing any.
	seen := map[[2]int]bool{}
	for lpn := int64(0); lpn < 8; lpn++ {
		a, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn})
		if err != nil {
			t.Fatal(err)
		}
		if a.Channel != 0 {
			t.Fatalf("write escaped the tenant's channel set: %v", a)
		}
		key := [2]int{cfg.DieID(a), a.Plane}
		if seen[key] {
			t.Errorf("lpn %d reuses die/plane %v before full coverage", lpn, key)
		}
		seen[key] = true
	}
}

func TestDynamicAllocChoosesLeastLoadedChannelAndDie(t *testing.T) {
	cfg := nand.TinyConfig()
	load := fakeLoad{
		ch:  map[int]sim.Time{0: 500, 1: 100, 2: 900},
		die: map[int]sim.Time{2: 50, 3: 10}, // dies of channel 1
	}
	f := mustFTL(t, cfg, load)
	if err := f.SetTenantChannels(0, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.SetTenantMode(0, DynamicAlloc)
	a, _, err := f.MapWrite(Key{Tenant: 0, LPN: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Channel != 1 {
		t.Errorf("dynamic write on channel %d, want least-loaded 1", a.Channel)
	}
	if got := cfg.DieID(a); got != 3 {
		t.Errorf("dynamic write on die %d, want least-loaded 3", got)
	}
}

func TestDynamicAllocRotatesPlanes(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	if err := f.SetTenantChannels(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	f.SetTenantMode(0, DynamicAlloc)
	planes := map[int]bool{}
	for lpn := int64(0); lpn < int64(cfg.PlanesPerDie); lpn++ {
		a, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn})
		if err != nil {
			t.Fatal(err)
		}
		planes[a.Plane] = true
	}
	if len(planes) != cfg.PlanesPerDie {
		t.Errorf("dynamic writes used %d planes, want %d", len(planes), cfg.PlanesPerDie)
	}
}

func TestOverwriteInvalidatesOldPage(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	k := Key{Tenant: 0, LPN: 42}
	a1, _, err := f.MapWrite(k)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := f.MapWrite(k)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("overwrite mapped to the same physical page")
	}
	got, ok := f.Lookup(k)
	if !ok || got != a2 {
		t.Errorf("lookup = %v,%v, want %v", got, ok, a2)
	}
	if c := f.Counters(); c.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", c.Invalidations)
	}
}

func TestMapReadPreloadsUnwrittenData(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	k := Key{Tenant: 1, LPN: 99}
	a, err := f.MapRead(k)
	if err != nil {
		t.Fatal(err)
	}
	// Second read must hit the same page.
	b, err := f.MapRead(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("repeated read moved: %v then %v", a, b)
	}
	c := f.Counters()
	if c.Preloads != 1 {
		t.Errorf("preloads = %d, want 1", c.Preloads)
	}
	if c.Writes != 0 {
		t.Errorf("preload counted as write")
	}
}

func TestMapReadFollowsMappingAfterChannelChange(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	if err := f.SetTenantChannels(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	k := Key{Tenant: 0, LPN: 5}
	wrote, _, err := f.MapWrite(k)
	if err != nil {
		t.Fatal(err)
	}
	// Re-allocate the tenant elsewhere; reads must still find old data.
	if err := f.SetTenantChannels(0, []int{6, 7}); err != nil {
		t.Fatal(err)
	}
	got, err := f.MapRead(k)
	if err != nil {
		t.Fatal(err)
	}
	if got != wrote {
		t.Errorf("read went to %v, want original %v", got, wrote)
	}
	// New writes use the new set.
	a, _, err := f.MapWrite(Key{Tenant: 0, LPN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a.Channel != 6 && a.Channel != 7 {
		t.Errorf("new write on channel %d, want 6 or 7", a.Channel)
	}
}

func TestSetTenantChannelsRejectsOutOfRange(t *testing.T) {
	f := mustFTL(t, nand.TinyConfig(), nil)
	if err := f.SetTenantChannels(0, []int{8}); err == nil {
		t.Error("channel 8 accepted on an 8-channel device")
	}
	if err := f.SetTenantChannels(0, []int{-1}); err == nil {
		t.Error("negative channel accepted")
	}
}

// gcConfig returns a tiny geometry that forces GC quickly: 1 channel,
// 1 die, 1 plane, 8 blocks of 4 pages.
func gcConfig() nand.Config {
	c := nand.TinyConfig()
	c.Channels = 1
	c.ChipsPerChannel = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 8
	c.PagesPerBlock = 4
	c.GCThreshold = 0.15 // low water = 1 free block
	return c
}

func TestGCReclaimsInvalidatedSpace(t *testing.T) {
	f := mustFTL(t, gcConfig(), nil)
	// Overwrite a small working set far beyond physical capacity; GC
	// must keep reclaiming or MapWrite would fail.
	sawGC := false
	for round := 0; round < 50; round++ {
		for lpn := int64(0); lpn < 8; lpn++ {
			_, gc, err := f.MapWrite(Key{Tenant: 0, LPN: lpn})
			if err != nil {
				t.Fatalf("round %d lpn %d: %v", round, lpn, err)
			}
			if gc != nil {
				sawGC = true
				if gc.DieTime <= 0 {
					t.Error("GC plan with non-positive die time")
				}
				if gc.Moved < 0 || gc.Moved > 4 {
					t.Errorf("GC moved %d pages from a 4-page block", gc.Moved)
				}
			}
		}
	}
	if !sawGC {
		t.Fatal("GC never triggered despite 25x overwrite pressure")
	}
	c := f.Counters()
	if c.GCRuns == 0 || c.GCErases == 0 {
		t.Errorf("counters show no GC: %+v", c)
	}
	// All 8 logical pages must still resolve.
	for lpn := int64(0); lpn < 8; lpn++ {
		if _, ok := f.Lookup(Key{Tenant: 0, LPN: lpn}); !ok {
			t.Errorf("lpn %d lost after GC", lpn)
		}
	}
}

func TestGCPreservesMappingIntegrity(t *testing.T) {
	f := mustFTL(t, gcConfig(), nil)
	// Interleave writes of two tenants and verify mappings stay
	// mutually distinct through heavy GC churn.
	for round := 0; round < 40; round++ {
		for lpn := int64(0); lpn < 4; lpn++ {
			for tenant := 0; tenant < 2; tenant++ {
				if _, _, err := f.MapWrite(Key{Tenant: tenant, LPN: lpn}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	seen := map[nand.Addr]Key{}
	for tenant := 0; tenant < 2; tenant++ {
		for lpn := int64(0); lpn < 4; lpn++ {
			k := Key{Tenant: tenant, LPN: lpn}
			a, ok := f.Lookup(k)
			if !ok {
				t.Fatalf("%v unmapped", k)
			}
			if prev, dup := seen[a]; dup {
				t.Fatalf("PPN %v owned by both %v and %v", a, prev, k)
			}
			seen[a] = k
		}
	}
}

func TestWearAccounting(t *testing.T) {
	f := mustFTL(t, gcConfig(), nil)
	for round := 0; round < 60; round++ {
		for lpn := int64(0); lpn < 8; lpn++ {
			if _, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn}); err != nil {
				t.Fatal(err)
			}
		}
	}
	w := f.Wear()
	if w.TotalErases == 0 {
		t.Fatal("no erases recorded")
	}
	if w.MaxErases < w.MinErases {
		t.Errorf("max %d < min %d", w.MaxErases, w.MinErases)
	}
	if w.MeanErases <= 0 {
		t.Errorf("mean erases %v", w.MeanErases)
	}
	if w.Blocks == 0 || w.Blocks > 8 {
		t.Errorf("blocks = %d", w.Blocks)
	}
}

func TestDeviceFullWithoutReclaimableSpaceErrors(t *testing.T) {
	f := mustFTL(t, gcConfig(), nil)
	// Unique LPNs: nothing invalidated, so GC has nothing to reclaim and
	// the device must eventually report exhaustion rather than loop.
	var lastErr error
	for lpn := int64(0); lpn < 64; lpn++ {
		_, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn})
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Fatal("32-page device absorbed 64 unique pages without error")
	}
}

// Property: after any sequence of writes over a small LPN space, every
// written key resolves, and no two keys share a physical page.
func TestMappingBijectionProperty(t *testing.T) {
	cfg := gcConfig()
	f := func(ops []uint8) bool {
		ftl, err := New(cfg, nil)
		if err != nil {
			return false
		}
		written := map[Key]bool{}
		for _, op := range ops {
			k := Key{Tenant: int(op >> 6 & 1), LPN: int64(op & 7)}
			if _, _, err := ftl.MapWrite(k); err != nil {
				return false // 16 distinct keys max; must always fit
			}
			written[k] = true
		}
		seen := map[nand.Addr]bool{}
		for k := range written {
			a, ok := ftl.Lookup(k)
			if !ok || seen[a] {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPageModeString(t *testing.T) {
	if StaticAlloc.String() != "static" || DynamicAlloc.String() != "dynamic" {
		t.Error("page mode strings wrong")
	}
}

func TestTenantDefaultsAllChannelsStatic(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	if got := len(f.TenantChannels(7)); got != cfg.Channels {
		t.Errorf("default channel set size %d, want %d", got, cfg.Channels)
	}
	if f.TenantMode(7) != StaticAlloc {
		t.Error("default mode should be static")
	}
	// Empty set resets to all channels.
	if err := f.SetTenantChannels(7, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetTenantChannels(7, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(f.TenantChannels(7)); got != cfg.Channels {
		t.Errorf("reset channel set size %d, want %d", got, cfg.Channels)
	}
}

// A Reset FTL must be indistinguishable from a fresh one: same placements,
// same GC activity, same wear, for the same request sequence.
func TestFTLResetBehavesFresh(t *testing.T) {
	cfg := gcConfig()
	drive := func(f *FTL) (Counters, WearStats) {
		if err := f.Season(0.5, 5, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			k := Key{Tenant: 0, LPN: int64(i % 8)}
			if _, _, err := f.MapWrite(k); err != nil {
				t.Fatal(err)
			}
		}
		return f.Counters(), f.Wear()
	}
	reused := mustFTL(t, cfg, nil)
	first, firstWear := drive(reused)
	reused.Reset()
	second, secondWear := drive(reused)
	if first != second {
		t.Errorf("counters diverge after Reset: %+v vs %+v", first, second)
	}
	if firstWear != secondWear {
		t.Errorf("wear diverges after Reset: %+v vs %+v", firstWear, secondWear)
	}
	fresh := mustFTL(t, cfg, nil)
	third, thirdWear := drive(fresh)
	if second != third {
		t.Errorf("reset FTL diverges from fresh: %+v vs %+v", second, third)
	}
	if secondWear != thirdWear {
		t.Errorf("reset FTL wear diverges from fresh: %+v vs %+v", secondWear, thirdWear)
	}
}

func TestFTLResetClearsBindingsAndCMT(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	f.EnableCMT(4)
	if err := f.SetTenantChannels(1, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	f.SetTenantMode(1, DynamicAlloc)
	f.MapPenalty(Key{Tenant: 1, LPN: 9}) // populate the CMT
	f.Reset()
	if got := f.TenantChannels(1); len(got) != cfg.Channels {
		t.Errorf("tenant channels after reset = %v, want all %d", got, cfg.Channels)
	}
	if f.TenantMode(1) != StaticAlloc {
		t.Error("tenant mode survived reset")
	}
	if f.cmt.Len() != 0 {
		t.Errorf("CMT entries after reset = %d, want 0 (still enabled)", f.cmt.Len())
	}
	if hits, misses := f.CMTStats(); hits != 0 || misses != 0 {
		t.Errorf("CMT counters after reset = %d/%d", hits, misses)
	}
}

// The memoized seasoning layout must reproduce the direct rng loop draw for
// draw — this pins the cache's build order to the loop's visit order.
func TestSeasonLayoutMatchesDirectDraws(t *testing.T) {
	const planes, fill, pages = 3, 4, 8
	const validFrac, seed = 0.5, 42
	l := seasonLayoutFor(planes, fill, pages, validFrac, seed)
	if l == nil {
		t.Fatal("layout unexpectedly uncached")
	}
	rng := rand.New(rand.NewSource(seed))
	var lpn int64
	for b := 0; b < planes*fill; b++ {
		var count int32
		for page := 0; page < pages; page++ {
			idx := b*pages + page
			want := rng.Float64() < validFrac
			if l.valid[idx] != want {
				t.Fatalf("block %d page %d: valid=%v, rng says %v", b, page, l.valid[idx], want)
			}
			if want {
				if l.owners[idx] != (owner{tenant: coldTenant, lpn: lpn}) {
					t.Fatalf("block %d page %d: owner %+v, want lpn %d", b, page, l.owners[idx], lpn)
				}
				lpn++
				count++
			}
		}
		if l.counts[b] != count {
			t.Fatalf("block %d: count %d, want %d", b, l.counts[b], count)
		}
	}
}

func TestSeasonLayoutSkipsHugeGeometries(t *testing.T) {
	if l := seasonLayoutFor(64, 4090, 128, 0.5, 1); l != nil {
		t.Error("huge layout was cached; should fall back to the direct loop")
	}
}
