package ftl

import (
	"container/list"

	"ssdkeeper/internal/sim"
)

// The FTL's page-level mapping table is far larger than controller SRAM
// (Table I's 512GB device needs ~256MB of map entries), so real FTLs keep
// the full table in flash and cache hot entries in SRAM — DFTL's Cached
// Mapping Table. A lookup that misses the cache must first read a
// translation page from flash.
//
// The simulator models this as an optional LRU cache over Key->PPN entries:
// misses report a translation-read penalty that the device charges on the
// die holding the data (a simplification of DFTL's separate translation
// blocks that preserves the contention effect: mapping misses add die
// traffic).

// CMT is an LRU cached mapping table.
type CMT struct {
	capacity int
	order    *list.List // front = most recent; values are Key
	index    map[Key]*list.Element

	hits   uint64
	misses uint64
}

// NewCMT returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every lookup hits, as if SRAM were unlimited — the
// default, matching SSDSim).
func NewCMT(capacity int) *CMT {
	if capacity <= 0 {
		return nil
	}
	return &CMT{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[Key]*list.Element, capacity),
	}
}

// Reset empties the cache and zeroes its counters, keeping the index map's
// storage. Safe on a nil CMT.
func (c *CMT) Reset() {
	if c == nil {
		return
	}
	c.order.Init()
	clear(c.index)
	c.hits = 0
	c.misses = 0
}

// touch records an access to k and reports whether it was cached. The entry
// becomes most-recently-used either way (a miss loads it).
func (c *CMT) touch(k Key) bool {
	if c == nil {
		return true
	}
	if el, ok := c.index[k]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	if c.order.Len() >= c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.index, last.Value.(Key))
	}
	c.index[k] = c.order.PushFront(k)
	return false
}

// Stats returns hit/miss counters.
func (c *CMT) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *CMT) Len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}

// EnableCMT turns on mapping-table caching with the given entry capacity.
// Must be called before traffic. The returned penalty is what each miss
// costs on the die (one translation-page read).
func (f *FTL) EnableCMT(entries int) sim.Time {
	f.cmt = NewCMT(entries)
	return f.cfg.ReadLatency
}

// MapPenalty reports the translation penalty for accessing k's mapping and
// updates the cache: zero on a hit (or when the CMT is disabled), one
// translation-page read on a miss. Device request paths call it once per
// page access.
func (f *FTL) MapPenalty(k Key) sim.Time {
	if f.cmt == nil {
		return 0
	}
	hit := f.cmt.touch(k)
	f.probe.CMT(hit)
	if hit {
		return 0
	}
	f.cmtMisses++
	return f.cfg.ReadLatency
}

// CMTStats exposes cache counters (zero when disabled).
func (f *FTL) CMTStats() (hits, misses uint64) {
	return f.cmt.Stats()
}
