package ftl

import (
	"testing"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
)

func healthFTL(t *testing.T) (*FTL, *nand.Health, nand.Config) {
	t.Helper()
	cfg := nand.TinyConfig()
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := nand.NewHealth(cfg, &nand.FaultPlan{Seed: 1})
	f.SetHealth(h)
	return f, h, cfg
}

// TestPlaceSkipsDeadDie pins that static placement never lands on a dead die
// and that PredictDie mirrors the redirected target exactly.
func TestPlaceSkipsDeadDie(t *testing.T) {
	f, _, cfg := healthFTL(t)
	// Tenant 0 confined to channel 2; kill the channel's first die.
	if err := f.SetTenantChannels(0, []int{2}); err != nil {
		t.Fatal(err)
	}
	dead := 2 * cfg.DiesPerChannel()
	f.FailDie(dead)
	for lpn := int64(0); lpn < 64; lpn++ {
		k := Key{Tenant: 0, LPN: lpn}
		want, ok := f.PredictDie(k, true)
		if !ok {
			t.Fatalf("PredictDie lost static predictability for %v", k)
		}
		a, _, err := f.MapWrite(k)
		if err != nil {
			t.Fatal(err)
		}
		got := cfg.DieID(a)
		if got == dead {
			t.Fatalf("LPN %d placed on dead die %d", lpn, dead)
		}
		if got != want {
			t.Fatalf("LPN %d: PredictDie said %d, placement chose %d", lpn, want, got)
		}
	}
}

// TestPlaceSpillsWhenChannelDead pins the last-resort redirect: a tenant
// whose whole channel set is dead still writes, onto live dies elsewhere.
func TestPlaceSpillsWhenChannelDead(t *testing.T) {
	f, h, cfg := healthFTL(t)
	if err := f.SetTenantChannels(0, []int{1}); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < cfg.DiesPerChannel(); d++ {
		f.FailDie(1*cfg.DiesPerChannel() + d)
	}
	a, _, err := f.MapWrite(Key{Tenant: 0, LPN: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Channel == 1 {
		t.Fatalf("write landed on dead channel 1 (%v)", a)
	}
	if h.DieDead(cfg.DieID(a)) {
		t.Fatalf("write landed on dead die (%v)", a)
	}
}

// TestDynamicAllocSkipsDeadDie covers the dynamic arm's live-die filter.
func TestDynamicAllocSkipsDeadDie(t *testing.T) {
	f, _, cfg := healthFTL(t)
	f.SetTenantMode(0, DynamicAlloc)
	if err := f.SetTenantChannels(0, []int{3}); err != nil {
		t.Fatal(err)
	}
	dead := 3 * cfg.DiesPerChannel()
	f.FailDie(dead)
	for lpn := int64(0); lpn < 32; lpn++ {
		a, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn})
		if err != nil {
			t.Fatal(err)
		}
		if cfg.DieID(a) == dead {
			t.Fatalf("dynamic placement used dead die %d", dead)
		}
	}
}

// TestFailDieRebuildsMappings writes through a die, kills it, and checks
// every logical page is remapped off it deterministically.
func TestFailDieRebuildsMappings(t *testing.T) {
	f, h, cfg := healthFTL(t)
	const pages = 512
	for lpn := int64(0); lpn < pages; lpn++ {
		if _, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn}); err != nil {
			t.Fatal(err)
		}
	}
	victim := 0
	before := 0
	for lpn := int64(0); lpn < pages; lpn++ {
		a, ok := f.Lookup(Key{Tenant: 0, LPN: lpn})
		if !ok {
			t.Fatalf("LPN %d unmapped", lpn)
		}
		if cfg.DieID(a) == victim {
			before++
		}
	}
	if before == 0 {
		t.Fatal("no pages on the victim die; test is vacuous")
	}
	rebuilt, perDie := f.FailDie(victim)
	if rebuilt != before {
		t.Errorf("rebuilt %d pages, want %d", rebuilt, before)
	}
	if perDie[victim] != 0 {
		t.Error("rebuild charged time on the dead die")
	}
	var charged bool
	for d, tm := range perDie {
		if tm > 0 && d != victim {
			charged = true
		}
	}
	if !charged {
		t.Error("rebuild charged no destination die time")
	}
	for lpn := int64(0); lpn < pages; lpn++ {
		a, ok := f.Lookup(Key{Tenant: 0, LPN: lpn})
		if !ok {
			t.Fatalf("LPN %d lost its mapping after FailDie", lpn)
		}
		if cfg.DieID(a) == victim {
			t.Fatalf("LPN %d still mapped to dead die", lpn)
		}
	}
	if h.DieFailures != 1 {
		t.Errorf("DieFailures = %d, want 1", h.DieFailures)
	}
	// Idempotent.
	if again, _ := f.FailDie(victim); again != 0 {
		t.Errorf("second FailDie rebuilt %d pages, want 0", again)
	}
}

// TestRetireBlockRelocatesAndQuarantines retires the active block of a plane
// and checks its pages move, it never returns to circulation, and popFree
// skips retired fresh blocks.
func TestRetireBlockRelocatesAndQuarantines(t *testing.T) {
	f, h, cfg := healthFTL(t)
	// Confine tenant 0 to channel 0 statically and fill a bit.
	if err := f.SetTenantChannels(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < int64(cfg.PagesPerBlock*2); lpn++ {
		if _, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn}); err != nil {
			t.Fatal(err)
		}
	}
	// Find a plane with an active block.
	plane := -1
	for i := range f.planes {
		if f.planes[i].active != -1 && f.blockAt(&f.planes[i], f.planes[i].active).validCount > 0 {
			plane = i
			break
		}
	}
	if plane == -1 {
		t.Fatal("no active block found")
	}
	victim := f.planes[plane].active
	valid := f.blockAt(&f.planes[plane], victim).validCount
	moved, dieTime := f.RetireBlock(plane, victim)
	if moved != valid {
		t.Errorf("moved %d pages, want %d", moved, valid)
	}
	if want := sim.Time(moved) * (cfg.ReadLatency + cfg.WriteLatency); dieTime != want {
		t.Errorf("dieTime %v, want %v", dieTime, want)
	}
	if !h.BlockRetired(plane, victim) {
		t.Error("block not marked retired")
	}
	if f.planes[plane].active == victim {
		t.Error("retired block still active")
	}
	// Retiring a fresh (never-used) block makes popFree skip it.
	p := &f.planes[plane]
	fresh := p.nextFresh
	f.RetireBlock(plane, fresh)
	id, ok := f.popFree(p, plane)
	if !ok || id == fresh {
		t.Errorf("popFree returned retired fresh block %d (ok=%v)", id, ok)
	}
	// Idempotent.
	if again, _ := f.RetireBlock(plane, victim); again != 0 {
		t.Errorf("second RetireBlock moved %d pages, want 0", again)
	}
}

