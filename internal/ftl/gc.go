package ftl

import (
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
)

// GCPlan describes one garbage-collection pass on a plane: the valid pages
// moved (plane-internal copyback: a read plus a program on the same die, no
// channel bus traffic), the block erase, and any wear-leveling migration the
// pass triggered. The FTL applies the metadata effects synchronously; the
// device charges DieTime on the die's resource so foreground operations
// queue behind it.
type GCPlan struct {
	Plane      int
	VictimAddr nand.Addr // coordinates of the erased block
	Moved      int       // valid pages relocated by GC
	WearMoves  int       // valid pages relocated by static wear leveling
	DieTime    sim.Time  // total die occupancy of the pass
}

// collect runs greedy garbage collection on a plane: it picks the closed
// block with the fewest valid pages, relocates its valid pages into the
// plane's write stream, erases it, and returns the plan. Returns nil when
// the plane has no closed blocks to collect.
func (f *FTL) collect(planeID int) *GCPlan {
	p := &f.planes[planeID]
	if len(p.full) == 0 {
		return nil
	}
	// Greedy victim selection: fewest valid pages.
	bestIdx := 0
	bestValid := f.blockAt(p, p.full[0]).validCount
	for i := 1; i < len(p.full); i++ {
		if v := f.blockAt(p, p.full[i]).validCount; v < bestValid {
			bestIdx, bestValid = i, v
		}
	}
	victimID := p.full[bestIdx]
	p.full = append(p.full[:bestIdx], p.full[bestIdx+1:]...)
	victim := f.blockAt(p, victimID)

	moved := 0
	aborted := false
	for page := 0; page < f.cfg.PagesPerBlock; page++ {
		if !victim.valid[page] {
			continue
		}
		k := Key{Tenant: victim.owners[page].tenant, LPN: victim.owners[page].lpn}
		blockID, newPage, err := f.appendPage(planeID, k)
		if err != nil {
			// The plane ran out of space mid-move. The victim still
			// holds valid data, so it must NOT be erased; put it
			// back in the candidate list and report only the moves
			// that happened.
			aborted = true
			break
		}
		addr := f.cfg.PlaneAddr(planeID)
		addr.Block = blockID
		addr.Page = newPage
		f.mapping[k] = f.cfg.PPN(addr)
		victim.valid[page] = false
		victim.owners[page] = owner{}
		victim.validCount--
		moved++
	}

	victimAddr := f.cfg.PlaneAddr(planeID)
	victimAddr.Block = victimID
	if aborted {
		p.full = append(p.full, victimID)
		if moved == 0 {
			return nil
		}
		f.gcMoved += uint64(moved)
		dieTime := sim.Time(moved) * (f.cfg.ReadLatency + f.cfg.WriteLatency)
		f.probe.GC(planeID, moved, 0, 0, dieTime)
		f.plan = GCPlan{
			Plane:      planeID,
			VictimAddr: victimAddr,
			Moved:      moved,
			DieTime:    dieTime,
		}
		return &f.plan
	}
	f.eraseBlock(p, victimID)

	f.gcRuns++
	f.gcMoved += uint64(moved)
	f.gcErases++

	wlMoved, wlTime := f.levelWear(planeID)

	dieTime := sim.Time(moved)*(f.cfg.ReadLatency+f.cfg.WriteLatency) + f.cfg.EraseLatency + wlTime
	f.probe.GC(planeID, moved, wlMoved, 1, dieTime)
	f.plan = GCPlan{
		Plane:      planeID,
		VictimAddr: victimAddr,
		Moved:      moved,
		WearMoves:  wlMoved,
		DieTime:    dieTime,
	}
	return &f.plan
}

// eraseBlock resets a block and returns it to the plane's recycled pool.
func (f *FTL) eraseBlock(p *plane, id int) {
	b := f.blockAt(p, id)
	b.writePtr = 0
	b.validCount = 0
	for i := range b.valid {
		b.valid[i] = false
		b.owners[i] = owner{}
	}
	b.erases++
	p.recycled = append(p.recycled, id)
}

// WearStats summarizes erase-count distribution across materialized blocks,
// the quantity wear leveling balances.
type WearStats struct {
	Blocks      int // blocks ever written
	TotalErases uint64
	MinErases   int
	MaxErases   int
	MeanErases  float64
}

// Wear scans materialized blocks and reports erase statistics.
func (f *FTL) Wear() WearStats {
	var s WearStats
	first := true
	for i := range f.planes {
		p := &f.planes[i]
		if p.blocks == nil {
			continue
		}
		for _, b := range p.blocks {
			if b == nil {
				continue
			}
			s.Blocks++
			s.TotalErases += uint64(b.erases)
			if first || b.erases < s.MinErases {
				s.MinErases = b.erases
			}
			if first || b.erases > s.MaxErases {
				s.MaxErases = b.erases
			}
			first = false
		}
	}
	if s.Blocks > 0 {
		s.MeanErases = float64(s.TotalErases) / float64(s.Blocks)
	}
	return s
}

// FreeBlocks returns the number of free (never-used plus recycled) blocks in
// a plane, for tests.
func (f *FTL) FreeBlocks(planeID int) int {
	return f.planes[planeID].freeBlocks(f.cfg.BlocksPerPlane)
}
