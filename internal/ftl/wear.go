package ftl

import "ssdkeeper/internal/sim"

// Static wear leveling (the third classic FTL duty, alongside mapping and
// GC): dynamic wear leveling alone — always writing into free blocks —
// cannot touch blocks pinned under cold data, whose erase counts stall while
// hot blocks churn. When a plane's erase spread exceeds the configured
// threshold, the coldest closed block's valid pages are migrated into the
// write stream and the block is erased, so its under-erased cells re-enter
// circulation.

// levelWear runs one wear-leveling pass on a plane if the spread warrants
// it, returning the pages moved and the extra die time (0, 0 otherwise).
// Called from collect, after a GC pass has refreshed the free pool.
func (f *FTL) levelWear(planeID int) (moved int, dieTime sim.Time) {
	if f.cfg.WearThreshold <= 0 {
		return 0, 0
	}
	p := &f.planes[planeID]
	if len(p.full) == 0 || p.blocks == nil {
		return 0, 0
	}

	// Spread is measured over all materialized blocks; the migration
	// victim must be a closed block (the active block and free blocks
	// are already in circulation).
	maxErase := 0
	for _, b := range p.blocks {
		if b != nil && b.erases > maxErase {
			maxErase = b.erases
		}
	}
	victimIdx := -1
	victimErase := 0
	for i, id := range p.full {
		e := f.blockAt(p, id).erases
		if victimIdx == -1 || e < victimErase {
			victimIdx, victimErase = i, e
		}
	}
	if victimIdx == -1 || maxErase-victimErase < f.cfg.WearThreshold {
		return 0, 0
	}

	victimID := p.full[victimIdx]
	p.full = append(p.full[:victimIdx], p.full[victimIdx+1:]...)
	victim := f.blockAt(p, victimID)
	for page := 0; page < f.cfg.PagesPerBlock; page++ {
		if !victim.valid[page] {
			continue
		}
		k := Key{Tenant: victim.owners[page].tenant, LPN: victim.owners[page].lpn}
		blockID, newPage, err := f.appendPage(planeID, k)
		if err != nil {
			// Out of space mid-migration: put the victim back and
			// charge only what was done, exactly as GC does.
			p.full = append(p.full, victimID)
			f.wlMoved += uint64(moved)
			return moved, sim.Time(moved) * (f.cfg.ReadLatency + f.cfg.WriteLatency)
		}
		addr := f.cfg.PlaneAddr(planeID)
		addr.Block = blockID
		addr.Page = newPage
		f.mapping[k] = f.cfg.PPN(addr)
		victim.valid[page] = false
		victim.owners[page] = owner{}
		victim.validCount--
		moved++
	}
	f.eraseBlock(p, victimID)
	f.wlRuns++
	f.wlMoved += uint64(moved)
	return moved, sim.Time(moved)*(f.cfg.ReadLatency+f.cfg.WriteLatency) + f.cfg.EraseLatency
}
