package ftl

import (
	"sort"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
)

// Health-aware routing and fault repair. All entry points are no-ops until
// SetHealth wires a *nand.Health, so an immortal device pays one nil check.
//
// Invariants the rest of the FTL relies on:
//   - a retired block is never in a plane's recycled or full list, is never
//     the active block, and popFree skips it on the fresh path — so GC and
//     wear leveling never see retired blocks and eraseBlock can stay
//     health-blind;
//   - a dead die receives no placements (place and PredictDie redirect), so
//     its planes' GC never triggers again.

// redirect returns live placement coordinates for a static placement that
// computed (ch, dieInCh): the original target if its die is live, else a
// deterministic probe sequence — later dies on the same channel (staying
// inside the tenant's allocation), then the remaining channels of the set in
// set order, then any live die on the device. live=false only when every die
// is dead.
func (f *FTL) redirect(set []int, ch, dieInCh int) (newCh, newDie int, live bool) {
	h := f.health
	dpc := f.cfg.DiesPerChannel()
	if !h.DieDead(ch*dpc + dieInCh) {
		return ch, dieInCh, true
	}
	for k := 1; k < dpc; k++ {
		if d := (dieInCh + k) % dpc; !h.DieDead(ch*dpc + d) {
			return ch, d, true
		}
	}
	start := 0
	for i, c := range set {
		if c == ch {
			start = i
			break
		}
	}
	for i := 1; i <= len(set); i++ {
		c := set[(start+i)%len(set)]
		if h.LiveInChannel(c) == 0 {
			continue
		}
		for k := 0; k < dpc; k++ {
			if d := (dieInCh + k) % dpc; !h.DieDead(c*dpc + d) {
				return c, d, true
			}
		}
	}
	for c := 0; c < f.cfg.Channels; c++ {
		if h.LiveInChannel(c) == 0 {
			continue
		}
		for d := 0; d < dpc; d++ {
			if !h.DieDead(c*dpc + d) {
				return c, d, true
			}
		}
	}
	return 0, 0, false
}

// FailDie kills a device-wide die: the die is marked dead in the health
// state, and every valid logical page mapped to it is rebuilt onto live dies
// through the owning tenant's normal placement path (so the rebuild respects
// channel allocations and triggers GC where it must). Rebuild order is
// sorted by (tenant, LPN) so the relocation — and therefore every subsequent
// allocation decision — is deterministic despite map iteration.
//
// Returns the number of pages rebuilt and the per-destination-die time the
// rebuild occupies (program per page, plus any GC the rebuild triggered);
// the device charges these on the die resources so foreground traffic queues
// behind the rebuild storm. Pages that cannot be rebuilt (device full) stay
// mapped to the dead die and remain readable in-model. Idempotent.
func (f *FTL) FailDie(die int) (rebuilt int, perDie []sim.Time) {
	if f.health == nil || f.health.DieDead(die) {
		return 0, nil
	}
	f.health.FailDie(die)

	var keys []Key
	for k, ppn := range f.mapping {
		if f.cfg.DieID(f.cfg.AddrOf(ppn)) == die {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].LPN < keys[j].LPN
	})

	perDie = make([]sim.Time, f.cfg.TotalDies())
	pageTime := f.cfg.ReadLatency + f.cfg.WriteLatency
	for _, k := range keys {
		f.invalidate(f.mapping[k])
		a, gc, err := f.place(k, f.TenantMode(k.Tenant))
		if err != nil {
			break
		}
		perDie[f.cfg.DieID(a)] += pageTime
		if gc != nil {
			perDie[gc.Plane/f.cfg.PlanesPerDie] += gc.DieTime
		}
		rebuilt++
	}
	f.probe.DieFailed(die, rebuilt)
	return rebuilt, perDie
}

// RetireBlock takes one block of one plane out of circulation: valid pages
// are relocated into the plane's write stream (the wear-leveling idiom) and
// the block never re-enters the free pool. Relocation is best-effort — if
// the plane fills mid-move the remaining pages stay mapped to the retired
// block and remain readable in-model. Returns the pages moved and the die
// time the relocation occupies. Idempotent.
func (f *FTL) RetireBlock(planeID, blockID int) (moved int, dieTime sim.Time) {
	if f.health == nil || f.health.BlockRetired(planeID, blockID) {
		return 0, 0
	}
	// Mark first: appendPage below must not re-open the victim.
	f.health.RetireBlock(planeID, blockID)
	p := &f.planes[planeID]

	for i, id := range p.recycled {
		if id == blockID {
			p.recycled = append(p.recycled[:i], p.recycled[i+1:]...)
			f.probe.BlockRetired(planeID, 0)
			return 0, 0
		}
	}
	if p.active == blockID {
		p.active = -1
	} else {
		for i, id := range p.full {
			if id == blockID {
				p.full = append(p.full[:i], p.full[i+1:]...)
				break
			}
		}
	}
	if blockID >= p.nextFresh || p.blocks == nil || p.blocks[blockID] == nil {
		// Never used: nothing to relocate; popFree will skip it.
		f.probe.BlockRetired(planeID, 0)
		return 0, 0
	}

	victim := p.blocks[blockID]
	for page := 0; page < f.cfg.PagesPerBlock && victim.validCount > 0; page++ {
		if !victim.valid[page] {
			continue
		}
		k := Key{Tenant: victim.owners[page].tenant, LPN: victim.owners[page].lpn}
		newBlock, newPage, err := f.appendPage(planeID, k)
		if err != nil {
			break
		}
		addr := f.cfg.PlaneAddr(planeID)
		addr.Block = newBlock
		addr.Page = newPage
		f.mapping[k] = f.cfg.PPN(addr)
		victim.valid[page] = false
		victim.owners[page] = owner{}
		victim.validCount--
		moved++
	}
	dieTime = sim.Time(moved) * (f.cfg.ReadLatency + f.cfg.WriteLatency)
	f.probe.BlockRetired(planeID, moved)
	return moved, dieTime
}

// BlockErases returns the erase count of a block, zero if it was never
// materialized. The device's program-slowdown model keys off it.
func (f *FTL) BlockErases(planeID, blockID int) int {
	p := &f.planes[planeID]
	if p.blocks == nil || p.blocks[blockID] == nil {
		return 0
	}
	return p.blocks[blockID].erases
}

// Health returns the attached health state (nil on an immortal device).
func (f *FTL) Health() *nand.Health { return f.health }
