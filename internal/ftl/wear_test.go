package ftl

import (
	"testing"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
)

// wearConfig: single plane, 8 blocks of 4 pages, wear leveling on.
func wearConfig(threshold int) nand.Config {
	c := gcConfig()
	c.WearThreshold = threshold
	return c
}

// churn overwrites a hot LPN set while one cold LPN set stays untouched,
// the classic workload that skews wear.
func churn(t *testing.T, f *FTL, rounds int) {
	t.Helper()
	// Cold data: written once, never overwritten.
	for lpn := int64(100); lpn < 104; lpn++ {
		if _, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn}); err != nil {
			t.Fatal(err)
		}
	}
	// Hot data: overwritten every round.
	for round := 0; round < rounds; round++ {
		for lpn := int64(0); lpn < 6; lpn++ {
			if _, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestWearLevelingReducesEraseSpread(t *testing.T) {
	without := mustFTL(t, wearConfig(0), nil)
	churn(t, without, 400)
	with := mustFTL(t, wearConfig(4), nil)
	churn(t, with, 400)

	spreadWithout := without.Wear().MaxErases - without.Wear().MinErases
	spreadWith := with.Wear().MaxErases - with.Wear().MinErases
	if with.Counters().WLRuns == 0 {
		t.Fatal("wear leveling never triggered")
	}
	if spreadWith >= spreadWithout {
		t.Errorf("wear leveling did not reduce spread: %d with vs %d without",
			spreadWith, spreadWithout)
	}
	// Data must survive the migrations.
	for lpn := int64(100); lpn < 104; lpn++ {
		if _, ok := with.Lookup(Key{Tenant: 0, LPN: lpn}); !ok {
			t.Errorf("cold lpn %d lost during wear leveling", lpn)
		}
	}
	for lpn := int64(0); lpn < 6; lpn++ {
		if _, ok := with.Lookup(Key{Tenant: 0, LPN: lpn}); !ok {
			t.Errorf("hot lpn %d lost during wear leveling", lpn)
		}
	}
}

func TestWearLevelingDisabledByZeroThreshold(t *testing.T) {
	f := mustFTL(t, wearConfig(0), nil)
	churn(t, f, 200)
	if got := f.Counters().WLRuns; got != 0 {
		t.Errorf("wear leveling ran %d times with threshold 0", got)
	}
}

func TestWearLevelingChargesDieTime(t *testing.T) {
	f := mustFTL(t, wearConfig(3), nil)
	// Capture a plan whose pass includes wear moves.
	sawWear := false
	for round := 0; round < 400 && !sawWear; round++ {
		for lpn := int64(0); lpn < 6; lpn++ {
			_, plan, err := f.MapWrite(Key{Tenant: 0, LPN: lpn})
			if err != nil {
				t.Fatal(err)
			}
			if plan != nil && plan.WearMoves > 0 {
				sawWear = true
				base := f.cfg.EraseLatency +
					sim.Time(plan.Moved)*(f.cfg.ReadLatency+f.cfg.WriteLatency)
				if plan.DieTime <= base {
					t.Errorf("plan die time %v does not include wear-move cost", plan.DieTime)
				}
			}
		}
		// Seed some cold data on the first round.
		if round == 0 {
			for lpn := int64(50); lpn < 54; lpn++ {
				if _, _, err := f.MapWrite(Key{Tenant: 0, LPN: lpn}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if !sawWear {
		t.Skip("workload never combined GC and wear leveling in one pass")
	}
}

func TestPopFreePrefersLeastErased(t *testing.T) {
	cfg := gcConfig()
	f := mustFTL(t, cfg, nil)
	p := &f.planes[0]
	// Materialize three blocks with distinct erase counts and recycle
	// them.
	for _, id := range []int{0, 1, 2} {
		f.blockAt(p, id)
	}
	p.nextFresh = cfg.BlocksPerPlane // exhaust fresh blocks
	f.blockAt(p, 0).erases = 5
	f.blockAt(p, 1).erases = 1
	f.blockAt(p, 2).erases = 9
	p.recycled = []int{0, 1, 2}
	id, ok := f.popFree(p, 0)
	if !ok || id != 1 {
		t.Errorf("popFree = %d,%v; want least-erased block 1", id, ok)
	}
}
