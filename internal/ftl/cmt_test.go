package ftl

import (
	"testing"

	"ssdkeeper/internal/nand"
)

func TestCMTDisabledIsFree(t *testing.T) {
	f := mustFTL(t, nand.TinyConfig(), nil)
	if pen := f.MapPenalty(Key{Tenant: 0, LPN: 1}); pen != 0 {
		t.Errorf("penalty %v with CMT disabled", pen)
	}
	if h, m := f.CMTStats(); h != 0 || m != 0 {
		t.Error("disabled CMT reported stats")
	}
}

func TestCMTMissThenHit(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	f.EnableCMT(4)
	k := Key{Tenant: 0, LPN: 7}
	if pen := f.MapPenalty(k); pen != cfg.ReadLatency {
		t.Errorf("first access penalty %v, want %v", pen, cfg.ReadLatency)
	}
	if pen := f.MapPenalty(k); pen != 0 {
		t.Errorf("second access penalty %v, want 0 (cached)", pen)
	}
	hits, misses := f.CMTStats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
}

func TestCMTLRUEviction(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	f.EnableCMT(2)
	a := Key{Tenant: 0, LPN: 1}
	b := Key{Tenant: 0, LPN: 2}
	c := Key{Tenant: 0, LPN: 3}
	f.MapPenalty(a) // miss, cache {a}
	f.MapPenalty(b) // miss, cache {b,a}
	f.MapPenalty(a) // hit, cache {a,b}
	f.MapPenalty(c) // miss, evicts LRU entry b -> {c,a}
	if pen := f.MapPenalty(a); pen != 0 {
		t.Error("recently used entry was evicted")
	}
	if pen := f.MapPenalty(b); pen != cfg.ReadLatency {
		t.Error("evicted entry should miss")
	}
}

func TestCMTDistinguishesTenants(t *testing.T) {
	cfg := nand.TinyConfig()
	f := mustFTL(t, cfg, nil)
	f.EnableCMT(8)
	f.MapPenalty(Key{Tenant: 0, LPN: 5})
	if pen := f.MapPenalty(Key{Tenant: 1, LPN: 5}); pen != cfg.ReadLatency {
		t.Error("tenant 1's mapping aliased tenant 0's")
	}
}

func TestNewCMTZeroCapacityDisabled(t *testing.T) {
	if c := NewCMT(0); c != nil {
		t.Error("zero-capacity CMT should be nil (disabled)")
	}
	var c *CMT
	if !c.touch(Key{}) {
		t.Error("nil CMT should always hit")
	}
	if c.Len() != 0 {
		t.Error("nil CMT length")
	}
}

func TestCMTCapacityHeld(t *testing.T) {
	f := mustFTL(t, nand.TinyConfig(), nil)
	f.EnableCMT(16)
	for lpn := int64(0); lpn < 100; lpn++ {
		f.MapPenalty(Key{Tenant: 0, LPN: lpn})
	}
	if got := f.cmt.Len(); got != 16 {
		t.Errorf("cache holds %d entries, want 16", got)
	}
}
