package ftl

import (
	"fmt"
	"math/rand"
	"sync"
)

// coldTenant owns seasoning data: resident pages that belong to no real
// tenant. Garbage collection relocates them (paying the realistic move
// cost), but no request ever reads or overwrites them.
const coldTenant = -1

// Season ages the device in place, as SSDSim-style warm-up phases do: every
// plane is filled until only a small pool of free blocks remains, and each
// page of those blocks is valid with probability validFrac (owned by cold
// data). A freshly-created SSD never garbage-collects, so an unseasoned
// simulation hides the GC stalls that dominate multi-tenant interference on
// a device in steady state; seasoning restores them.
//
// freeBlocks is the number of blocks left free per plane; values at or below
// the GC low-water mark are raised just above it so the first tenant write
// does not immediately GC. Season must be called before any traffic.
func (f *FTL) Season(validFrac float64, freeBlocks int, seed int64) error {
	if validFrac < 0 || validFrac >= 1 {
		return fmt.Errorf("ftl: seasoning valid fraction %v outside [0,1)", validFrac)
	}
	if f.writes > 0 || f.preloads > 0 {
		return fmt.Errorf("ftl: cannot season a device that has already served traffic")
	}
	if freeBlocks <= f.gcLowWater {
		freeBlocks = f.gcLowWater + 1
	}
	if freeBlocks >= f.cfg.BlocksPerPlane {
		return nil // nothing to fill
	}
	fill := f.cfg.BlocksPerPlane - freeBlocks
	pages := f.cfg.PagesPerBlock
	if layout := seasonLayoutFor(len(f.planes), fill, pages, validFrac, seed); layout != nil {
		return f.applySeasonLayout(layout, fill)
	}
	rng := rand.New(rand.NewSource(seed))
	var lpn int64
	for planeID := range f.planes {
		p := &f.planes[planeID]
		for i := 0; i < fill; i++ {
			id, ok := f.popFree(p, planeID)
			if !ok {
				return fmt.Errorf("ftl: plane %d ran out of blocks while seasoning", planeID)
			}
			b := f.blockAt(p, id)
			b.writePtr = pages
			for page := 0; page < pages; page++ {
				if rng.Float64() < validFrac {
					b.valid[page] = true
					b.owners[page] = owner{tenant: coldTenant, lpn: lpn}
					b.validCount++
					lpn++
				}
			}
			p.full = append(p.full, id)
		}
	}
	return nil
}

// seasonLayout is the memoized result of one seasoning parameterization: the
// valid bitmap, page owners, and per-block valid counts for every filled
// block, flattened plane-major in the exact order the rng loop visits them.
// Layouts are immutable once built.
type seasonLayout struct {
	valid  []bool
	owners []owner
	counts []int32 // one per filled block
}

// seasonKey identifies a seasoning layout: the geometry the loop iterates
// over plus the distribution parameters.
type seasonKey struct {
	planes, fill, pages int
	validFrac           float64
	seed                int64
}

// seasonLayoutCacheMax bounds how many pages of seasoning state a cached
// layout may cover (~2M pages = 32MB of owners). Experiment geometries are
// far below it; full Table I seasoning skips the cache and pays the direct
// loop instead of pinning hundreds of MB.
const seasonLayoutCacheMax = 1 << 21

var seasonLayouts struct {
	sync.Mutex
	m map[seasonKey]*seasonLayout
}

// seasonLayoutFor returns the cached layout for the parameters, building it
// on first use, or nil when the layout is too large to cache. Building
// replays exactly the rng draw sequence of the direct loop, so the applied
// state is byte-for-byte identical.
func seasonLayoutFor(planes, fill, pages int, validFrac float64, seed int64) *seasonLayout {
	total := planes * fill * pages
	if total <= 0 || total > seasonLayoutCacheMax {
		return nil
	}
	k := seasonKey{planes: planes, fill: fill, pages: pages, validFrac: validFrac, seed: seed}
	seasonLayouts.Lock()
	defer seasonLayouts.Unlock()
	if l, ok := seasonLayouts.m[k]; ok {
		return l
	}
	l := &seasonLayout{
		valid:  make([]bool, total),
		owners: make([]owner, total),
		counts: make([]int32, planes*fill),
	}
	rng := rand.New(rand.NewSource(seed))
	var lpn int64
	for b := 0; b < planes*fill; b++ {
		base := b * pages
		var count int32
		for page := 0; page < pages; page++ {
			if rng.Float64() < validFrac {
				l.valid[base+page] = true
				l.owners[base+page] = owner{tenant: coldTenant, lpn: lpn}
				count++
				lpn++
			}
		}
		l.counts[b] = count
	}
	if seasonLayouts.m == nil {
		seasonLayouts.m = make(map[seasonKey]*seasonLayout)
	}
	seasonLayouts.m[k] = l
	return l
}

// applySeasonLayout copies a memoized layout into the planes, replacing the
// per-page rng loop with block-sized copies.
func (f *FTL) applySeasonLayout(l *seasonLayout, fill int) error {
	pages := f.cfg.PagesPerBlock
	idx := 0
	for planeID := range f.planes {
		p := &f.planes[planeID]
		for i := 0; i < fill; i++ {
			id, ok := f.popFree(p, planeID)
			if !ok {
				return fmt.Errorf("ftl: plane %d ran out of blocks while seasoning", planeID)
			}
			b := f.blockAt(p, id)
			b.writePtr = pages
			base := idx * pages
			copy(b.valid, l.valid[base:base+pages])
			copy(b.owners, l.owners[base:base+pages])
			b.validCount = int(l.counts[idx])
			idx++
			p.full = append(p.full, id)
		}
	}
	return nil
}

// LiveColdPages counts resident seasoning pages, for tests.
func (f *FTL) LiveColdPages() int {
	count := 0
	for i := range f.planes {
		p := &f.planes[i]
		if p.blocks == nil {
			continue
		}
		for _, b := range p.blocks {
			if b == nil {
				continue
			}
			for page, v := range b.valid {
				if v && b.owners[page].tenant == coldTenant {
					count++
				}
			}
		}
	}
	return count
}
