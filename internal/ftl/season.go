package ftl

import (
	"fmt"
	"math/rand"
)

// coldTenant owns seasoning data: resident pages that belong to no real
// tenant. Garbage collection relocates them (paying the realistic move
// cost), but no request ever reads or overwrites them.
const coldTenant = -1

// Season ages the device in place, as SSDSim-style warm-up phases do: every
// plane is filled until only a small pool of free blocks remains, and each
// page of those blocks is valid with probability validFrac (owned by cold
// data). A freshly-created SSD never garbage-collects, so an unseasoned
// simulation hides the GC stalls that dominate multi-tenant interference on
// a device in steady state; seasoning restores them.
//
// freeBlocks is the number of blocks left free per plane; values at or below
// the GC low-water mark are raised just above it so the first tenant write
// does not immediately GC. Season must be called before any traffic.
func (f *FTL) Season(validFrac float64, freeBlocks int, seed int64) error {
	if validFrac < 0 || validFrac >= 1 {
		return fmt.Errorf("ftl: seasoning valid fraction %v outside [0,1)", validFrac)
	}
	if f.writes > 0 || f.preloads > 0 {
		return fmt.Errorf("ftl: cannot season a device that has already served traffic")
	}
	if freeBlocks <= f.gcLowWater {
		freeBlocks = f.gcLowWater + 1
	}
	if freeBlocks >= f.cfg.BlocksPerPlane {
		return nil // nothing to fill
	}
	rng := rand.New(rand.NewSource(seed))
	fill := f.cfg.BlocksPerPlane - freeBlocks
	var lpn int64
	for planeID := range f.planes {
		p := &f.planes[planeID]
		for i := 0; i < fill; i++ {
			id, ok := f.popFree(p)
			if !ok {
				return fmt.Errorf("ftl: plane %d ran out of blocks while seasoning", planeID)
			}
			b := f.blockAt(p, id)
			b.writePtr = f.cfg.PagesPerBlock
			for page := 0; page < f.cfg.PagesPerBlock; page++ {
				if rng.Float64() < validFrac {
					b.valid[page] = true
					b.owners[page] = owner{tenant: coldTenant, lpn: lpn}
					b.validCount++
					lpn++
				}
			}
			p.full = append(p.full, id)
		}
	}
	return nil
}

// LiveColdPages counts resident seasoning pages, for tests.
func (f *FTL) LiveColdPages() int {
	count := 0
	for i := range f.planes {
		p := &f.planes[i]
		if p.blocks == nil {
			continue
		}
		for _, b := range p.blocks {
			if b == nil {
				continue
			}
			for page, v := range b.valid {
				if v && b.owners[page].tenant == coldTenant {
					count++
				}
			}
		}
	}
	return count
}
