package experiments

import (
	"context"
	"strings"
	"testing"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
)

// The experiment smoke tests run everything at QuickScale: small enough for
// CI, but exercising every code path end to end (dataset -> training ->
// keeper -> figures).

func TestFig2Quick(t *testing.T) {
	env := NewEnv()
	res, err := Fig2(context.Background(), env, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("fig2 has %d points, want 9 (10%%..90%%)", len(res.Points))
	}
	for _, p := range res.Points {
		if len(p.Rows) != 8 {
			t.Fatalf("wp %.1f has %d strategies, want 8", p.WriteProportion, len(p.Rows))
		}
		if p.Best == "" {
			t.Errorf("wp %.1f has no best strategy", p.WriteProportion)
		}
		var sharedNorm float64
		for _, r := range p.Rows {
			if r.Strategy == "Shared" && !r.Infeasible {
				sharedNorm = r.NormTotal
			}
		}
		if sharedNorm != 1 {
			t.Errorf("wp %.1f: Shared normalized total = %v, want 1", p.WriteProportion, sharedNorm)
		}
	}
	out := res.Render()
	for _, want := range []string{"Figure 2(a)", "Figure 2(b)", "Figure 2(c)", "Shared", "7:1", "best strategy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDatasetTrainingAndMapsQuick(t *testing.T) {
	env := NewEnv()
	scale := QuickScale()

	samples, err := BuildDataset(context.Background(), env, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != scale.DatasetWorkloads {
		t.Fatalf("dataset has %d samples", len(samples))
	}
	if !strings.Contains(LabelBalance(samples, env), "samples") {
		t.Error("label balance summary malformed")
	}

	runs, err := Fig4Table3(env, scale, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("fig4 has %d optimizer runs, want 4", len(runs))
	}
	names := map[string]bool{}
	for _, r := range runs {
		names[r.Name] = true
		if len(r.History.Points) == 0 {
			t.Errorf("%s has empty history", r.Name)
		}
		first, last := r.History.Points[0].TrainLoss, r.History.FinalLoss
		if last >= first {
			t.Errorf("%s loss did not decrease: %.3f -> %.3f", r.Name, first, last)
		}
	}
	for _, want := range []string{"SGD", "SGD-momentum", "Adam-ReLU", "Adam-logistic"} {
		if !names[want] {
			t.Errorf("missing optimizer run %s", want)
		}
	}
	out := RenderFig4(runs)
	for _, want := range []string{"Figure 4(a)", "Figure 4(b)", "Table III", "Adam-logistic"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 render missing %q", want)
		}
	}

	best, err := TrainBest(env, scale, samples)
	if err != nil {
		t.Fatal(err)
	}

	eval, err := EvaluateModel(best.Model, best.TestSamples)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Samples == 0 {
		t.Error("no held-out samples to evaluate")
	}
	if eval.Top3 < eval.Top1 {
		t.Error("top-3 accuracy below top-1")
	}
	if !strings.Contains(eval.String(), "regret") {
		t.Error("eval string malformed")
	}

	reports, err := Fig5Table5(context.Background(), env, scale, best.Model, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("fig5 has %d mixes, want 4", len(reports))
	}
	for _, r := range reports {
		if r.Chosen == "" {
			t.Errorf("%s has no chosen strategy", r.Name)
		}
		for _, row := range []LatencyRow{r.Shared, r.Isolated, r.Keeper, r.KeeperHybrid} {
			if row.TotalUs <= 0 {
				t.Errorf("%s has empty latency row", r.Name)
			}
		}
		if r.OracleName == "" {
			t.Errorf("%s missing oracle", r.Name)
		}
		// The oracle is exhaustive: nothing can beat it.
		if r.Oracle.TotalUs > r.Shared.TotalUs+1e-9 || r.Oracle.TotalUs > r.Keeper.TotalUs+1e-9 {
			t.Errorf("%s oracle (%v) beaten by a candidate", r.Name, r.Oracle.TotalUs)
		}
	}
	t5 := RenderTable5(reports)
	if !strings.Contains(t5, "Mix1") || !strings.Contains(t5, "Table V") {
		t.Error("table5 render malformed")
	}
	f5 := RenderFig5(reports)
	for _, want := range []string{"Figure 5(a)", "SSDKeeper", "average improvement"} {
		if !strings.Contains(f5, want) {
			t.Errorf("fig5 render missing %q", want)
		}
	}

	cells, err := Fig6(env, scale, best.Model)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != features.Levels*scale.Fig6PerLevel {
		t.Fatalf("fig6 has %d cells, want %d", len(cells), features.Levels*scale.Fig6PerLevel)
	}
	for _, c := range cells {
		if c.TotalWriteProportion < 0 || c.TotalWriteProportion > 1 {
			t.Errorf("cell write proportion %v", c.TotalWriteProportion)
		}
		if c.Simplified == "" || c.Strategy == "" {
			t.Error("cell missing strategy names")
		}
	}
	f6 := RenderFig6(cells)
	if !strings.Contains(f6, "Figure 6") || !strings.Contains(f6, "level 19") {
		t.Error("fig6 render malformed")
	}
}

func TestSimplifyName(t *testing.T) {
	cases := []struct {
		parts []int
		want  string
	}{
		{[]int{5, 1, 1, 1}, "5:1:1:1"},
		{[]int{1, 5, 1, 1}, "5:1:1:1"},
		{[]int{1, 1, 1, 5}, "5:1:1:1"},
		{[]int{2, 1, 4, 1}, "4:2:1:1"},
		{[]int{1, 3, 3, 1}, "3:3:1:1"},
	}
	for _, c := range cases {
		s := strategyOfParts(c.parts)
		if got := SimplifyName(s, 8); got != c.want {
			t.Errorf("SimplifyName(%v) = %s, want %s", c.parts, got, c.want)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	bad := DefaultScale()
	bad.Fig2Requests = 0
	if err := validateScale(bad); err == nil {
		t.Error("zero Fig2Requests accepted")
	}
	bad = DefaultScale()
	bad.TableIIScale = -1
	if err := validateScale(bad); err == nil {
		t.Error("negative TableIIScale accepted")
	}
	if err := validateScale(DefaultScale()); err != nil {
		t.Errorf("default scale rejected: %v", err)
	}
	if err := validateScale(PaperScale()); err != nil {
		t.Errorf("paper scale rejected: %v", err)
	}
	if err := validateScale(QuickScale()); err != nil {
		t.Errorf("quick scale rejected: %v", err)
	}
}

func TestNewEnvShape(t *testing.T) {
	env := NewEnv()
	if len(env.Strategies) != 42 {
		t.Errorf("strategy space %d, want 42", len(env.Strategies))
	}
	if env.Device.Channels != 8 {
		t.Errorf("channels %d", env.Device.Channels)
	}
	if env.Options.ReadPriority {
		t.Error("default arbitration should be FIFO")
	}
	if !env.Season.Enabled() {
		t.Error("evaluation device should be seasoned")
	}
}

func TestEvaluateModelSyntheticSamples(t *testing.T) {
	// A forced model that always predicts class 1 against hand-built
	// latency tables with known optima.
	model := forcedClassModel(t, 3, 1)
	samples := []dataset.Sample{
		// Label 1 optimal: perfect pick, regret 0.
		{Vector: features.Vector{Intensity: 1}, Label: 1, Latencies: []float64{200, 100, 300}},
		// Label 0 optimal: pick (1) is 50% slower, rank 2.
		{Vector: features.Vector{Intensity: 2}, Label: 0, Latencies: []float64{100, 150, 300}},
		// Pick is infeasible: capped at 1000% regret.
		{Vector: features.Vector{Intensity: 3}, Label: 0, Latencies: []float64{100, dataset.Infeasible, 300}},
	}
	ev, err := EvaluateModel(model, samples)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != 3 {
		t.Fatalf("samples %d", ev.Samples)
	}
	if got := ev.Top1; got < 0.33 || got > 0.34 {
		t.Errorf("top1 = %v, want 1/3", got)
	}
	// Sample 1: rank 0 -> top3; sample 2: rank 1 -> top3; sample 3:
	// infeasible has the worst latency, rank 2 -> still top3.
	if ev.Top3 != 1.0 {
		t.Errorf("top3 = %v, want 1", ev.Top3)
	}
	// Regret: (0 + 0.5 + 10) / 3 * 100.
	want := 100 * (0 + 0.5 + 10) / 3
	if diff := ev.MeanRegretPct - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("regret %v, want %v", ev.MeanRegretPct, want)
	}
}

func TestEvaluateModelRejectsShortLatencyTable(t *testing.T) {
	model := forcedClassModel(t, 5, 4)
	samples := []dataset.Sample{
		{Vector: features.Vector{}, Label: 0, Latencies: []float64{1, 2}},
	}
	if _, err := EvaluateModel(model, samples); err == nil {
		t.Error("prediction outside latency table accepted")
	}
}

func TestFig2AdaptiveQuick(t *testing.T) {
	env := NewEnv()
	scale := QuickScale()
	res, err := Fig2Adaptive(context.Background(), env, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows %d, want 9", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Chosen == "" || row.Best == "" {
			t.Errorf("wp %.1f missing strategies", row.WriteProportion)
		}
		if row.BestUs <= 0 {
			t.Errorf("wp %.1f best latency %v", row.WriteProportion, row.BestUs)
		}
		if row.RegretPct < -1e-9 {
			t.Errorf("wp %.1f negative regret %v", row.WriteProportion, row.RegretPct)
		}
	}
	if res.BestStaticName == "" {
		t.Error("no best static strategy")
	}
	out := res.Render()
	for _, want := range []string{"Self-adjusting", "regret", "best single static"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
