package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/workload"
)

// Fig2Row is one (strategy, write-proportion) cell of Figure 2.
type Fig2Row struct {
	Strategy   string
	WriteUs    float64
	ReadUs     float64
	TotalUs    float64
	NormWrite  float64 // normalized to Shared at the same write proportion
	NormRead   float64
	NormTotal  float64
	Infeasible bool
}

// Fig2Point holds all strategies at one write proportion.
type Fig2Point struct {
	WriteProportion float64
	Rows            []Fig2Row
	Best            string // strategy with the lowest total latency
}

// Fig2Result is the full motivation sweep.
type Fig2Result struct {
	Points []Fig2Point
}

// Fig2 reproduces the motivation experiment (Section III, Figure 2): two
// tenants — one write-only, one read-only — share the SSD; the write
// proportion sweeps 10%..90% of a fixed total request count; every strategy
// in the two-tenant space runs at each point. Latencies are reported raw and
// normalized to Shared, exactly as the figure plots them.
func Fig2(ctx context.Context, env Env, scale Scale) (Fig2Result, error) {
	if err := validateScale(scale); err != nil {
		return Fig2Result{}, err
	}
	space := alloc.TwoTenantSpace(env.Device.Channels)
	runner := simrun.NewRunner()
	var out Fig2Result
	for i := 1; i <= 9; i++ {
		wp := float64(i) / 10
		spec := workload.MixSpec{
			Tenants: []workload.TenantSpec{
				{WriteRatio: 1, Share: wp},
				{WriteRatio: 0, Share: 1 - wp},
			},
			Requests: scale.Fig2Requests,
			IOPS:     scale.Fig2IOPS,
			Seed:     scale.Seed,
		}
		tr, err := spec.Build(env.Device.PageSize)
		if err != nil {
			return Fig2Result{}, err
		}
		point := Fig2Point{WriteProportion: wp}
		var sharedW, sharedR, sharedT float64
		bestTotal := 0.0
		for _, s := range space {
			name := s.Name(env.Device.Channels)
			res, err := env.runOne(ctx, runner, s, spec.Traits(), false, tr)
			if errors.Is(err, ftl.ErrDeviceFull) {
				point.Rows = append(point.Rows, Fig2Row{Strategy: name, Infeasible: true})
				continue
			}
			if err != nil {
				return Fig2Result{}, fmt.Errorf("fig2 wp=%.1f %s: %w", wp, name, err)
			}
			row := Fig2Row{
				Strategy: name,
				WriteUs:  res.Device.Write.Mean(),
				ReadUs:   res.Device.Read.Mean(),
				TotalUs:  res.Device.Total(),
			}
			if s.Kind == alloc.Shared {
				sharedW, sharedR, sharedT = row.WriteUs, row.ReadUs, row.TotalUs
			}
			if point.Best == "" || row.TotalUs < bestTotal {
				point.Best, bestTotal = name, row.TotalUs
			}
			point.Rows = append(point.Rows, row)
		}
		for ri := range point.Rows {
			r := &point.Rows[ri]
			if r.Infeasible {
				continue
			}
			r.NormWrite = safeDiv(r.WriteUs, sharedW)
			r.NormRead = safeDiv(r.ReadUs, sharedR)
			r.NormTotal = safeDiv(r.TotalUs, sharedT)
		}
		out.Points = append(out.Points, point)
	}
	return out, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Render formats the sweep as three aligned tables (write, read, total
// normalized latency), mirroring Figure 2's three panels.
func (r Fig2Result) Render() string {
	if len(r.Points) == 0 {
		return "fig2: no data\n"
	}
	var b strings.Builder
	panels := []struct {
		title string
		pick  func(Fig2Row) float64
	}{
		{"(a) normalized write latency", func(row Fig2Row) float64 { return row.NormWrite }},
		{"(b) normalized read latency", func(row Fig2Row) float64 { return row.NormRead }},
		{"(c) normalized total latency", func(row Fig2Row) float64 { return row.NormTotal }},
	}
	for _, panel := range panels {
		fmt.Fprintf(&b, "Figure 2%s (vs Shared)\n", panel.title)
		fmt.Fprintf(&b, "%-10s", "strategy")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%8.0f%%", p.WriteProportion*100)
		}
		b.WriteString("\n")
		for ri := range r.Points[0].Rows {
			fmt.Fprintf(&b, "%-10s", r.Points[0].Rows[ri].Strategy)
			for _, p := range r.Points {
				if p.Rows[ri].Infeasible {
					fmt.Fprintf(&b, "%9s", "inf")
					continue
				}
				fmt.Fprintf(&b, "%9.2f", panel.pick(p.Rows[ri]))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	b.WriteString("best strategy per write proportion:")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " %.0f%%=%s", p.WriteProportion*100, p.Best)
	}
	b.WriteString("\n")
	return b.String()
}
