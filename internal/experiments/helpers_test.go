package experiments

import (
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
)

// strategyOfParts builds a FourWay strategy for tests.
func strategyOfParts(parts []int) alloc.Strategy {
	return alloc.Strategy{Kind: alloc.FourWay, Parts: parts}
}

// forcedClassModel returns a network that always predicts the given class.
func forcedClassModel(t *testing.T, classes, class int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP([]int{features.Dim, 4, classes}, nn.Logistic{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := net.Layers[len(net.Layers)-1]
	for i := range out.W {
		out.W[i] = 0
	}
	for i := range out.B {
		out.B[i] = 0
	}
	out.B[class] = 100
	return net
}
