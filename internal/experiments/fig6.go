package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/workload"
)

// Fig6Cell is one probed point of the Figure 6 strategy map.
type Fig6Cell struct {
	Intensity            int
	TotalWriteProportion float64
	Strategy             string // full strategy name
	Simplified           string // the paper's collapsed notation (see SimplifyName)
}

// Fig6 reproduces the channel-allocation analysis (Section V.D): for every
// intensity level 0..19, it draws random 4-tenant feature vectors spanning
// the write-proportion axis, asks the trained model for a strategy, and
// emits (intensity, total write proportion, strategy) cells.
func Fig6(env Env, scale Scale, model *nn.Network) ([]Fig6Cell, error) {
	pol, err := policy.NewANN(model, env.Strategies)
	if err != nil {
		return nil, err
	}
	return Fig6Policy(env, scale, pol)
}

// Fig6Policy is Fig6 over any decision policy (a loaded checkpoint, an
// oracle): the probed strategy map shows whatever brain the policy wraps.
func Fig6Policy(env Env, scale Scale, pol policy.Policy) ([]Fig6Cell, error) {
	if err := validateScale(scale); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(scale.Seed + 6))
	var cells []Fig6Cell
	for level := 0; level < features.Levels; level++ {
		for p := 0; p < scale.Fig6PerLevel; p++ {
			spec := workload.RandomMixSpec(rng, 1, env.SaturationIOPS)
			ratios := make([]float64, len(spec.Tenants))
			shares := make([]float64, len(spec.Tenants))
			for i, t := range spec.Tenants {
				ratios[i] = t.WriteRatio
				shares[i] = t.Share
			}
			vec, err := features.FromSpecShares(level, ratios, shares)
			if err != nil {
				return nil, err
			}
			s, err := pol.Decide(vec)
			if err != nil {
				return nil, err
			}
			var wr [features.MaxTenants]float64
			copy(wr[:], ratios)
			cells = append(cells, Fig6Cell{
				Intensity:            level,
				TotalWriteProportion: vec.TotalWriteProportion(wr),
				Strategy:             s.Name(env.Device.Channels),
				Simplified:           SimplifyName(s, env.Device.Channels),
			})
		}
	}
	return cells, nil
}

// SimplifyName collapses four-way strategies the way Figure 6's legend does:
// 5:1:1:1, 1:5:1:1, 1:1:5:1 and 1:1:1:5 all render as "5:1:1:1" (parts
// sorted descending). Two-group and named strategies pass through.
func SimplifyName(s alloc.Strategy, channels int) string {
	if s.Kind != alloc.FourWay {
		return s.Name(channels)
	}
	parts := append([]int(nil), s.Parts...)
	sort.Sort(sort.Reverse(sort.IntSlice(parts)))
	strs := make([]string, len(parts))
	for i, p := range parts {
		strs[i] = strconv.Itoa(p)
	}
	return strings.Join(strs, ":")
}

// RenderFig6 formats the strategy map as CSV (one row per cell) followed by
// a per-level majority summary that shows the trend the paper reads off the
// scatter plot.
func RenderFig6(cells []Fig6Cell) string {
	var b strings.Builder
	b.WriteString("Figure 6: intensity_level,total_write_proportion,strategy\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%.3f,%s\n", c.Intensity, c.TotalWriteProportion, c.Simplified)
	}
	b.WriteString("\nper-level dominant strategy (low/high write proportion halves):\n")
	type key struct {
		level int
		high  bool
	}
	counts := map[key]map[string]int{}
	for _, c := range cells {
		k := key{level: c.Intensity, high: c.TotalWriteProportion >= 0.5}
		if counts[k] == nil {
			counts[k] = map[string]int{}
		}
		counts[k][c.Simplified]++
	}
	for level := 0; level < 20; level++ {
		low := dominant(counts[key{level, false}])
		high := dominant(counts[key{level, true}])
		fmt.Fprintf(&b, "level %2d: write<50%% -> %-10s write>=50%% -> %s\n", level, low, high)
	}
	return b.String()
}

func dominant(m map[string]int) string {
	best, bestN := "-", 0
	// Deterministic tie-break: lexicographic scan.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	return best
}
