package experiments

import (
	"context"
	"fmt"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

// The die-failure trajectory experiment extends the paper's evaluation to a
// sick device: the same four-tenant mix replays twice through an injected
// die failure (plus the read-retry tail that accompanies failing flash), once
// under a static Shared allocation and once under the keeper's online loop.
// The windowed latency series shows the failure hit both configurations; the
// keeper's curve recovers as its health-aware features push it to re-bind
// channels around the dead die.

// trajWindows is the number of latency windows across the run — enough to
// resolve the pre-fault plateau, the hit, and the recovery without turning
// the result file into a scatter plot.
const trajWindows = 24

// TrajPoint is one latency window of a trajectory run.
type TrajPoint struct {
	EndS        float64 // window end, simulated seconds
	MeanUs      float64 // mean completed-request latency inside the window
	Completed   int64   // requests completed inside the window
	DeadDieFrac float64 // device health at the window boundary
}

// HealthTrajResult carries both trajectories and their summary.
type HealthTrajResult struct {
	FaultSpec string // the injected plan in DSL form
	FaultAtS  float64
	Keeper    []TrajPoint
	Static    []TrajPoint
	// KeeperUs / StaticUs are the overall mean request latencies (µs).
	KeeperUs float64
	StaticUs float64
	Switches int // keeper re-allocations across the run
}

// trajSpec is the fixed four-tenant mix the trajectory replays: two
// write-dominated and two read-dominated tenants with skewed shares, the
// shape the 42-strategy space was built for.
func trajSpec(scale Scale) workload.MixSpec {
	return workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.4},
			{WriteRatio: 0.7, Share: 0.3},
			{WriteRatio: 0.2, Share: 0.2},
			{WriteRatio: 0.05, Share: 0.1},
		},
		Requests: scale.Fig2Requests,
		IOPS:     scale.Fig2IOPS,
		Seed:     scale.Seed,
	}
}

// HealthTrajectory runs the die-failure trajectory at the given scale. The
// model must be trained on env.Strategies (the four-tenant space); pass the
// TrainBest result. Deterministic for a fixed scale.Seed.
func HealthTrajectory(ctx context.Context, env Env, scale Scale, model *nn.Network) (HealthTrajResult, error) {
	if err := validateScale(scale); err != nil {
		return HealthTrajResult{}, err
	}
	spec := trajSpec(scale)
	duration := sim.Time(float64(spec.Requests) / spec.IOPS * float64(sim.Second))
	faultAt := duration * 2 / 5
	plan := &nand.FaultPlan{
		Seed: scale.Seed,
		Events: []nand.FaultEvent{
			// The die dies at 40% of the run; the retry tail models the
			// marginal flash that failing hardware exposes alongside it.
			{Kind: nand.FaultDieFail, At: faultAt, Channel: 1, Die: 0},
			{Kind: nand.FaultRetryTail, At: faultAt, Prob: 0.25},
		},
	}
	opts := env.Options
	opts.FaultPlan = plan

	out := HealthTrajResult{
		FaultSpec: plan.String(),
		FaultAtS:  float64(faultAt) / float64(sim.Second),
	}
	window := duration / trajWindows

	tr, err := spec.Build(env.Device.PageSize)
	if err != nil {
		return HealthTrajResult{}, err
	}

	// Static baseline: Shared allocation, no keeper.
	runner := simrun.NewRunner()
	sess, err := runner.NewSession(simrun.Config{
		Device:   env.Device,
		Options:  opts,
		Strategy: alloc.Strategy{Kind: alloc.Shared},
		Traits:   spec.Traits(),
		Season:   env.Season,
	})
	if err != nil {
		return HealthTrajResult{}, err
	}
	static, staticUs, err := runTrajectory(ctx, sess, tr, window, nil)
	if err != nil {
		return HealthTrajResult{}, fmt.Errorf("healthtraj static: %w", err)
	}
	out.Static, out.StaticUs = static, staticUs

	// Keeper run: unbound start, online adaptation throughout so the
	// controller can re-bind after the failure. The adaptation window scales
	// with the run (not the fixed keeperWindow) so quick-scale runs still
	// adapt several times on each side of the fault.
	adaptEvery := duration / 12
	k, err := keeper.New(keeper.Config{
		Device:         env.Device,
		Options:        opts,
		Strategies:     env.Strategies,
		SaturationIOPS: env.SaturationIOPS,
		Window:         adaptEvery,
		AdaptEvery:     adaptEvery,
		Hybrid:         true,
		Season:         env.Season,
	}, model)
	if err != nil {
		return HealthTrajResult{}, err
	}
	ksess, err := runner.NewSession(simrun.Config{
		Device:  env.Device,
		Options: opts,
		Season:  env.Season,
	})
	if err != nil {
		return HealthTrajResult{}, err
	}
	ctrl := k.Controller(ksess.Device())
	kept, keeperUs, err := runTrajectory(ctx, ksess, tr, window, ctrl)
	if err != nil {
		return HealthTrajResult{}, fmt.Errorf("healthtraj keeper: %w", err)
	}
	if err := ctrl.Err(); err != nil {
		return HealthTrajResult{}, fmt.Errorf("healthtraj keeper: %w", err)
	}
	out.Keeper, out.KeeperUs = kept, keeperUs
	out.Switches = ctrl.SwitchCount()
	return out, nil
}

// runTrajectory replays the trace on the session, sampling the device's
// cumulative latency at every window boundary (observed from the arrival
// hook, so no extra engine events perturb the schedule). ctrl, when non-nil,
// receives every arrival — the keeper's online loop.
func runTrajectory(ctx context.Context, sess *simrun.Session, tr trace.Trace, window sim.Time, ctrl *keeper.Controller) ([]TrajPoint, float64, error) {
	dev := sess.Device()
	var points []TrajPoint
	var lastSum sim.Time
	var lastCount uint64
	next := window
	sample := func(at sim.Time) {
		l := dev.Stats().Device()
		sum := l.Read.Sum + l.Write.Sum
		count := l.Read.Count + l.Write.Count
		p := TrajPoint{
			EndS:        float64(at) / float64(sim.Second),
			Completed:   int64(count - lastCount),
			DeadDieFrac: dev.HealthSnapshot().DeadDieFrac,
		}
		if d := count - lastCount; d > 0 {
			p.MeanUs = float64(sum-lastSum) / float64(d) / 1e3
		}
		lastSum, lastCount = sum, count
		points = append(points, p)
	}
	res, err := sess.RunObserved(ctx, tr, func(_ int, r trace.Record) {
		now := dev.Engine().Now()
		for now >= next {
			sample(next)
			next += window
		}
		if ctrl != nil {
			ctrl.Observe(now, r)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	// Completions trailing the last arrival land in one final window.
	if end := res.Result.Makespan; end >= next-window {
		sample(end)
	}
	return points, res.Result.Device.Total(), nil
}

// Render formats the trajectory side by side.
func (r HealthTrajResult) Render() string {
	var b strings.Builder
	b.WriteString("Die-failure trajectory: windowed mean latency, static Shared vs keeper\n")
	fmt.Fprintf(&b, "fault plan: %s (at %.2fs)\n\n", r.FaultSpec, r.FaultAtS)
	fmt.Fprintf(&b, "%8s %12s %12s %10s\n", "end(s)", "static(us)", "keeper(us)", "dead-die")
	n := len(r.Static)
	if len(r.Keeper) > n {
		n = len(r.Keeper)
	}
	for i := 0; i < n; i++ {
		var end, st, kp, dead float64
		if i < len(r.Static) {
			end, st, dead = r.Static[i].EndS, r.Static[i].MeanUs, r.Static[i].DeadDieFrac
		}
		if i < len(r.Keeper) {
			kp = r.Keeper[i].MeanUs
			if i >= len(r.Static) {
				end, dead = r.Keeper[i].EndS, r.Keeper[i].DeadDieFrac
			}
		}
		fmt.Fprintf(&b, "%8.2f %12.1f %12.1f %10.3f\n", end, st, kp, dead)
	}
	fmt.Fprintf(&b, "\noverall mean latency: static %.1fus, keeper %.1fus (%d keeper switches)\n",
		r.StaticUs, r.KeeperUs, r.Switches)
	return b.String()
}
