package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/workload"
)

// Section III.B motivates SSDKeeper with the two-tenant sweep: "single
// channel allocation method can not adapt to variable mixed workloads ...
// These observations motivate us to find a self-adjusting channel
// allocation strategy." Fig2Adaptive closes that loop: it trains a
// two-tenant model (8-strategy space) and walks the Figure 2 sweep,
// comparing the model's pick at every write proportion against the best
// and worst static strategies.

// Fig2AdaptiveRow is one write-proportion point.
type Fig2AdaptiveRow struct {
	WriteProportion float64
	Chosen          string
	ChosenUs        float64
	Best            string
	BestUs          float64
	SharedUs        float64
	WorstUs         float64
	// RegretPct is how much slower the model's pick is than the best
	// static strategy at this point.
	RegretPct float64
}

// Fig2AdaptiveResult carries the sweep and its summary.
type Fig2AdaptiveResult struct {
	Rows []Fig2AdaptiveRow
	// MeanRegretPct summarizes adaptivity; a single static strategy's
	// regret is its distance from the per-point best, the adaptive
	// model's should be near zero.
	MeanRegretPct float64
	// BestStaticRegretPct is the mean regret of the single best fixed
	// strategy chosen in hindsight — what a non-adaptive tuner achieves.
	BestStaticRegretPct float64
	BestStaticName      string
}

// twoTenantSpec draws a random two-tenant mix (one write-dominated, one
// read-dominated tenant, random shares and intensity).
func twoTenantSpec(rng *rand.Rand, requests int, maxIOPS float64) workload.MixSpec {
	share := 0.1 + 0.8*rng.Float64()
	return workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.75 + 0.25*rng.Float64(), Share: share},
			{WriteRatio: 0.25 * rng.Float64(), Share: 1 - share},
		},
		Requests: requests,
		IOPS:     maxIOPS * (0.02 + 0.98*rng.Float64()),
		Seed:     rng.Int63(),
	}
}

// Fig2Adaptive trains a two-tenant strategy model and evaluates it across
// the Figure 2 write-proportion sweep.
func Fig2Adaptive(ctx context.Context, env Env, scale Scale, progress func(done, total int)) (Fig2AdaptiveResult, error) {
	if err := validateScale(scale); err != nil {
		return Fig2AdaptiveResult{}, err
	}
	space := alloc.TwoTenantSpace(env.Device.Channels)

	// Label a two-tenant dataset. dataset.Generate draws 4-tenant specs,
	// so label the hand-drawn two-tenant specs directly.
	cfg := dataset.Config{
		Device:     env.Device,
		Options:    env.Options,
		Strategies: space,
		Workloads:  scale.DatasetWorkloads,
		Requests:   scale.DatasetRequests,
		MaxIOPS:    env.SaturationIOPS,
		Season:     env.Season,
		Seed:       scale.Seed,
	}
	rng := rand.New(rand.NewSource(scale.Seed + 2))
	labeler := dataset.NewLabeler(cfg)
	samples := make([]dataset.Sample, cfg.Workloads)
	for i := range samples {
		spec := twoTenantSpec(rng, cfg.Requests, cfg.MaxIOPS)
		s, err := labeler.Label(ctx, spec)
		if err != nil {
			return Fig2AdaptiveResult{}, fmt.Errorf("fig2adaptive: workload %d: %w", i, err)
		}
		samples[i] = s
		if progress != nil {
			progress(i+1, cfg.Workloads)
		}
	}

	trained, err := keeper.TrainOnSamples(keeper.TrainConfig{
		Dataset:    cfg,
		Hidden:     64,
		Activation: nn.Logistic{},
		Optimizer:  nn.NewAdam(0.02),
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, samples)
	if err != nil {
		return Fig2AdaptiveResult{}, err
	}
	pol, err := policy.NewANN(trained.Model, space)
	if err != nil {
		return Fig2AdaptiveResult{}, err
	}

	// Walk the Figure 2 sweep: at each write proportion, measure every
	// static strategy, then the model's pick from ground-truth features.
	runner := simrun.NewRunner()
	var out Fig2AdaptiveResult
	perStrategyRegret := make([]float64, len(space))
	for i := 1; i <= 9; i++ {
		wp := float64(i) / 10
		spec := workload.MixSpec{
			Tenants: []workload.TenantSpec{
				{WriteRatio: 1, Share: wp},
				{WriteRatio: 0, Share: 1 - wp},
			},
			Requests: scale.Fig2Requests,
			IOPS:     scale.Fig2IOPS,
			Seed:     scale.Seed,
		}
		tr, err := spec.Build(env.Device.PageSize)
		if err != nil {
			return Fig2AdaptiveResult{}, err
		}
		lat := make([]float64, len(space))
		row := Fig2AdaptiveRow{WriteProportion: wp}
		bestIdx, worst := 0, 0.0
		for si, s := range space {
			res, err := env.runOne(ctx, runner, s, spec.Traits(), false, tr)
			if err != nil {
				lat[si] = dataset.Infeasible
				continue
			}
			lat[si] = res.Device.Total()
			if s.Kind == alloc.Shared {
				row.SharedUs = lat[si]
			}
			if lat[si] < lat[bestIdx] {
				bestIdx = si
			}
			if lat[si] > worst && lat[si] != dataset.Infeasible {
				worst = lat[si]
			}
		}
		vec, err := features.FromSpecShares(
			features.LevelOf(spec.IOPS, env.SaturationIOPS),
			[]float64{1, 0}, []float64{wp, 1 - wp})
		if err != nil {
			return Fig2AdaptiveResult{}, err
		}
		chosen, err := pol.Decide(vec)
		if err != nil {
			return Fig2AdaptiveResult{}, err
		}
		pick := alloc.Index(space, chosen)
		row.Chosen = space[pick].Name(env.Device.Channels)
		row.ChosenUs = lat[pick]
		row.Best = space[bestIdx].Name(env.Device.Channels)
		row.BestUs = lat[bestIdx]
		row.WorstUs = worst
		if row.BestUs > 0 && row.ChosenUs != dataset.Infeasible {
			row.RegretPct = 100 * (row.ChosenUs - row.BestUs) / row.BestUs
		} else if row.ChosenUs == dataset.Infeasible {
			row.RegretPct = 1000
		}
		out.MeanRegretPct += row.RegretPct
		for si := range space {
			if lat[si] == dataset.Infeasible {
				perStrategyRegret[si] += 1000
			} else {
				perStrategyRegret[si] += 100 * (lat[si] - row.BestUs) / row.BestUs
			}
		}
		out.Rows = append(out.Rows, row)
	}
	out.MeanRegretPct /= float64(len(out.Rows))
	bestStatic := 0
	for si := range space {
		perStrategyRegret[si] /= float64(len(out.Rows))
		if perStrategyRegret[si] < perStrategyRegret[bestStatic] {
			bestStatic = si
		}
	}
	out.BestStaticRegretPct = perStrategyRegret[bestStatic]
	out.BestStaticName = space[bestStatic].Name(env.Device.Channels)
	return out, nil
}

// Render formats the adaptive sweep.
func (r Fig2AdaptiveResult) Render() string {
	var b strings.Builder
	b.WriteString("Self-adjusting allocation across the Figure 2 sweep (Section III.B)\n")
	fmt.Fprintf(&b, "%6s %10s %12s %10s %12s %12s %10s\n",
		"write%", "chosen", "chosen(us)", "best", "best(us)", "Shared(us)", "regret%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5.0f%% %10s %12.1f %10s %12.1f %12.1f %9.1f%%\n",
			100*row.WriteProportion, row.Chosen, row.ChosenUs,
			row.Best, row.BestUs, row.SharedUs, row.RegretPct)
	}
	fmt.Fprintf(&b, "\nadaptive model mean regret: %.1f%%   best single static strategy (%s): %.1f%%\n",
		r.MeanRegretPct, r.BestStaticName, r.BestStaticRegretPct)
	return b.String()
}
