// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated substrate: the Figure 2 motivation
// sweep, the Figure 4 / Table III optimizer comparison, the Table V mixed-
// workload characterization, the Figure 5 end-to-end latency comparison and
// the Figure 6 strategy map.
//
// Everything is parameterized by a Scale so the same code runs laptop-sized
// by default and paper-sized with flags. Results carry raw microseconds plus
// the normalized series the figures plot.
package experiments

import (
	"context"
	"fmt"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

// Scale sets every experiment's size knobs. DefaultScale finishes in minutes
// on one core; PaperScale mirrors the paper's dataset sizes (5000 workloads,
// 2M-request traces) and is only practical on a large machine.
type Scale struct {
	// Fig2Requests is the fixed total request count of each motivation
	// run ("always keep the total number of I/O requests fixed").
	Fig2Requests int
	// Fig2IOPS is the aggregate arrival rate of the two-tenant mix.
	Fig2IOPS float64
	// DatasetWorkloads is the number of labelled mixed workloads
	// (paper: 5000).
	DatasetWorkloads int
	// DatasetRequests is the per-workload request count (paper: 2M).
	DatasetRequests int
	// TrainIterations is the training epoch count (paper: 200).
	TrainIterations int
	// TrainBatch is the minibatch size.
	TrainBatch int
	// MixHead is the per-mix prefix replayed in Figure 5 (paper: 1M).
	MixHead int
	// TableIIScale multiplies the Table II request counts when
	// generating the synthetic real-workload equivalents.
	TableIIScale float64
	// Fig6PerLevel is the number of random mixes probed per intensity
	// level in the Figure 6 strategy map.
	Fig6PerLevel int
	// FaultFraction is the share of dataset workloads labelled under a
	// synthesized fault plan (dataset.Config.FaultFraction); zero keeps
	// the immortal training pipeline.
	FaultFraction float64
	// Workers bounds label-generation parallelism (0 = GOMAXPROCS).
	Workers int
	Seed    int64
}

// DefaultScale returns laptop-sized parameters.
func DefaultScale() Scale {
	return Scale{
		Fig2Requests:     12000,
		Fig2IOPS:         8000,
		DatasetWorkloads: 250,
		DatasetRequests:  5000,
		TrainIterations:  200,
		TrainBatch:       32,
		MixHead:          30000,
		TableIIScale:     0.002,
		Fig6PerLevel:     20,
		Seed:             1,
	}
}

// PaperScale returns the paper's sizes. A full run performs 5000*42
// simulations of 2M-request traces; budget accordingly.
func PaperScale() Scale {
	s := DefaultScale()
	s.Fig2Requests = 2000000
	s.DatasetWorkloads = 5000
	s.DatasetRequests = 2000000
	s.MixHead = 1000000
	s.TableIIScale = 0.08
	return s
}

// QuickScale returns the smallest scale that still exercises every code
// path; used by tests and smoke benchmarks.
func QuickScale() Scale {
	return Scale{
		Fig2Requests:     1500,
		Fig2IOPS:         8000,
		DatasetWorkloads: 12,
		DatasetRequests:  600,
		TrainIterations:  40,
		TrainBatch:       16,
		MixHead:          2500,
		TableIIScale:     0.0002,
		Fig6PerLevel:     3,
		Seed:             1,
	}
}

// Env is the common device environment of the evaluation: Table I timing on
// the eval geometry, FIFO arbitration, a seasoned (steady-state) device, and
// the 42-strategy space.
type Env struct {
	Device  nand.Config
	Options ssd.Options
	Season  workload.Seasoning
	// SaturationIOPS calibrates the intensity-level axis (level 19 = a
	// saturated device) and bounds dataset intensity sampling.
	SaturationIOPS float64
	// Strategies is the four-tenant label space (42 strategies).
	Strategies []alloc.Strategy
}

// NewEnv returns the standard environment.
func NewEnv() Env {
	cfg := nand.EvalConfig()
	return Env{
		Device:  cfg,
		Options: ssd.DefaultOptions(),
		Season:  workload.DefaultSeasoning(),
		// Measured: seasoned mixed traffic saturates the Table I
		// device's 16 dies between 14K and 20K requests/s; level 19
		// is pinned just above that knee.
		SaturationIOPS: 16000,
		Strategies:     alloc.FourTenantSpace(cfg.Channels),
	}
}

// runOne replays a trace under one strategy in this environment, on the
// given runner so sweeps reuse one engine across their whole loop.
func (e Env) runOne(ctx context.Context, r *simrun.Runner, s alloc.Strategy, traits []alloc.TenantTraits, hybrid bool, tr trace.Trace) (ssd.Result, error) {
	res, err := r.Run(ctx, simrun.Config{
		Device:   e.Device,
		Options:  e.Options,
		Strategy: s,
		Traits:   traits,
		Hybrid:   hybrid,
		Season:   e.Season,
	}, tr)
	if err != nil {
		return ssd.Result{}, err
	}
	return res.Result, nil
}

func validateScale(s Scale) error {
	switch {
	case s.Fig2Requests <= 0, s.DatasetWorkloads <= 0, s.DatasetRequests <= 0,
		s.TrainIterations <= 0, s.MixHead <= 0, s.Fig6PerLevel <= 0:
		return fmt.Errorf("experiments: scale has non-positive sizes: %+v", s)
	case s.Fig2IOPS <= 0, s.TableIIScale <= 0:
		return fmt.Errorf("experiments: scale has non-positive rates: %+v", s)
	}
	return nil
}
