package experiments

import (
	"context"
	"fmt"
	"strings"

	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nn"
)

// BuildDataset runs the labelled-data pipeline (Algorithm 1, lines 1-8) at
// the given scale. progress may be nil; cancelling ctx aborts generation.
func BuildDataset(ctx context.Context, env Env, scale Scale, progress func(done, total int)) ([]dataset.Sample, error) {
	if err := validateScale(scale); err != nil {
		return nil, err
	}
	return dataset.Generate(ctx, dataset.Config{
		Device:        env.Device,
		Options:       env.Options,
		Strategies:    env.Strategies,
		Workloads:     scale.DatasetWorkloads,
		Requests:      scale.DatasetRequests,
		MaxIOPS:       env.SaturationIOPS,
		Season:        env.Season,
		FaultFraction: scale.FaultFraction,
		Seed:          scale.Seed,
		Workers:       scale.Workers,
	}, progress)
}

// OptimizerRun is one curve pair of Figure 4 plus one row of Table III.
type OptimizerRun struct {
	Name    string
	History nn.History
}

// optimizerConfigs returns the paper's four configurations with its stated
// hyperparameters: SGD lr 0.2, momentum 0.9, Adam lr 0.02 (Section V.B).
func optimizerConfigs() []struct {
	name string
	act  nn.Activation
	opt  func() nn.Optimizer
} {
	return []struct {
		name string
		act  nn.Activation
		opt  func() nn.Optimizer
	}{
		{"SGD", nn.Logistic{}, func() nn.Optimizer { return nn.NewSGD(0.2) }},
		{"SGD-momentum", nn.Logistic{}, func() nn.Optimizer { return nn.NewMomentum(0.2, 0.9) }},
		{"Adam-ReLU", nn.ReLU{}, func() nn.Optimizer { return nn.NewAdam(0.02) }},
		{"Adam-logistic", nn.Logistic{}, func() nn.Optimizer { return nn.NewAdam(0.02) }},
	}
}

// Fig4Table3 trains the paper's four optimizer configurations on one shared
// dataset and returns their loss/accuracy histories (Figure 4) and final
// metrics (Table III).
func Fig4Table3(env Env, scale Scale, samples []dataset.Sample) ([]OptimizerRun, error) {
	if err := validateScale(scale); err != nil {
		return nil, err
	}
	var runs []OptimizerRun
	for _, cfg := range optimizerConfigs() {
		res, err := keeper.TrainOnSamples(keeper.TrainConfig{
			Dataset:    datasetConfig(env, scale),
			Hidden:     64,
			Activation: cfg.act,
			Optimizer:  cfg.opt(),
			Iterations: scale.TrainIterations,
			BatchSize:  scale.TrainBatch,
			Seed:       scale.Seed,
		}, samples)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", cfg.name, err)
		}
		runs = append(runs, OptimizerRun{Name: cfg.name, History: res.History})
	}
	return runs, nil
}

// datasetConfig mirrors BuildDataset's configuration for components that
// need it without regenerating data.
func datasetConfig(env Env, scale Scale) dataset.Config {
	return dataset.Config{
		Device:     env.Device,
		Options:    env.Options,
		Strategies: env.Strategies,
		Workloads:  scale.DatasetWorkloads,
		Requests:   scale.DatasetRequests,
		MaxIOPS:    env.SaturationIOPS,
		Season:     env.Season,
		Seed:       scale.Seed,
		Workers:    scale.Workers,
	}
}

// TrainBest trains the configuration the paper deploys (Adam-logistic, the
// Table III winner) and returns the result for use by Table V / Figures 5-6.
func TrainBest(env Env, scale Scale, samples []dataset.Sample) (keeper.TrainResult, error) {
	return keeper.TrainOnSamples(keeper.TrainConfig{
		Dataset:    datasetConfig(env, scale),
		Hidden:     64,
		Activation: nn.Logistic{},
		Optimizer:  nn.NewAdam(0.02),
		Iterations: scale.TrainIterations,
		BatchSize:  scale.TrainBatch,
		Seed:       scale.Seed,
	}, samples)
}

// ModelEval summarizes how good a trained model's strategy choices are on
// held-out samples. Top-1 accuracy alone understates quality here: with 42
// classes whose best entries are often near-ties, picking the second-best
// strategy costs almost nothing. Regret — how much slower the predicted
// strategy is than the measured optimum — is the operational metric.
type ModelEval struct {
	Samples int
	Top1    float64 // exact-argmin accuracy (the paper's 94.5% metric)
	Top3    float64 // prediction within the three best strategies
	// MeanRegretPct is the mean excess total latency of the predicted
	// strategy over the optimal one, as a percentage.
	MeanRegretPct float64
}

// EvaluateModel scores a model on held-out samples using their stored
// per-strategy latencies (no re-simulation needed).
func EvaluateModel(model *nn.Network, test []dataset.Sample) (ModelEval, error) {
	var ev ModelEval
	var regretSum float64
	for _, s := range test {
		pred, err := model.Predict(s.Vector.Input())
		if err != nil {
			return ModelEval{}, err
		}
		if pred < 0 || pred >= len(s.Latencies) {
			return ModelEval{}, fmt.Errorf("experiments: prediction %d outside latency table", pred)
		}
		ev.Samples++
		if pred == s.Label {
			ev.Top1++
		}
		// Rank of the predicted strategy's latency, and the true
		// minimum (the label may be a tolerance-canonicalized
		// near-optimum rather than the strict argmin).
		rank := 0
		best := s.Latencies[0]
		for _, l := range s.Latencies {
			if l < s.Latencies[pred] {
				rank++
			}
			if l < best {
				best = l
			}
		}
		if rank < 3 {
			ev.Top3++
		}
		if s.Latencies[pred] == dataset.Infeasible {
			regretSum += 10 // cap infeasible picks at 1000% regret
		} else if best > 0 {
			regretSum += (s.Latencies[pred] - best) / best
		}
	}
	if ev.Samples > 0 {
		n := float64(ev.Samples)
		ev.Top1 /= n
		ev.Top3 /= n
		ev.MeanRegretPct = 100 * regretSum / n
	}
	return ev, nil
}

// String renders the evaluation one line.
func (e ModelEval) String() string {
	return fmt.Sprintf("held-out: %d samples, top-1 %.1f%%, top-3 %.1f%%, mean latency regret %.1f%%",
		e.Samples, 100*e.Top1, 100*e.Top3, e.MeanRegretPct)
}

// NewKeeper wraps a trained model in a Keeper bound to this environment.
func NewKeeper(env Env, model *nn.Network) (*keeper.Keeper, error) {
	return keeper.New(keeper.Config{
		Device:         env.Device,
		Options:        env.Options,
		Strategies:     env.Strategies,
		SaturationIOPS: env.SaturationIOPS,
		Window:         keeperWindow,
		Season:         env.Season,
	}, model)
}

// RenderFig4 formats the Figure 4 curves as two CSV-ish blocks (loss and
// test accuracy per iteration) plus the Table III summary.
func RenderFig4(runs []OptimizerRun) string {
	var b strings.Builder
	b.WriteString("Figure 4(a): training loss per iteration\niteration")
	for _, r := range runs {
		fmt.Fprintf(&b, ",%s", r.Name)
	}
	b.WriteString("\n")
	if len(runs) > 0 {
		for pi, p := range runs[0].History.Points {
			fmt.Fprintf(&b, "%d", p.Iteration)
			for _, r := range runs {
				fmt.Fprintf(&b, ",%.4f", r.History.Points[pi].TrainLoss)
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("\nFigure 4(b): test accuracy per iteration\niteration")
	for _, r := range runs {
		fmt.Fprintf(&b, ",%s", r.Name)
	}
	b.WriteString("\n")
	if len(runs) > 0 {
		for pi, p := range runs[0].History.Points {
			fmt.Fprintf(&b, "%d", p.Iteration)
			for _, r := range runs {
				fmt.Fprintf(&b, ",%.4f", r.History.Points[pi].TestAccuracy)
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("\nTable III: final loss, accuracy and training time\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %16s\n", "Optimizer", "Loss", "Accuracy", "TrainingTime(ms)")
	for _, r := range runs {
		fmt.Fprintf(&b, "%-14s %8.2f %9.1f%% %16d\n",
			r.Name, r.History.FinalLoss, 100*r.History.FinalAcc,
			r.History.TrainingTime.Milliseconds())
	}
	return b.String()
}

// LabelBalance reports how many distinct strategies appear as labels and the
// most common one — a dataset diagnostic printed by the CLI.
func LabelBalance(samples []dataset.Sample, env Env) string {
	hist := dataset.LabelHistogram(samples, len(env.Strategies))
	distinct, top, topIdx := 0, 0, 0
	for i, n := range hist {
		if n > 0 {
			distinct++
		}
		if n > top {
			top, topIdx = n, i
		}
	}
	return fmt.Sprintf("%d samples, %d distinct winning strategies, most common %s (%d wins)",
		len(samples), distinct, env.Strategies[topIdx].Name(env.Device.Channels), top)
}
