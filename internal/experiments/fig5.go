package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// keeperWindow is T in Algorithm 2: how long SSDKeeper observes the mixed
// workload under Shared before predicting. Scaled traces span a few seconds,
// so a 200ms window gives the collector thousands of arrivals.
const keeperWindow = 200 * sim.Millisecond

// LatencyRow is one bar group of Figure 5.
type LatencyRow struct {
	WriteUs float64
	ReadUs  float64
	TotalUs float64
}

func toRow(r ssd.Result) LatencyRow {
	return LatencyRow{
		WriteUs: r.Device.Write.Mean(),
		ReadUs:  r.Device.Read.Mean(),
		TotalUs: r.Device.Total(),
	}
}

// MixReport is Table V's row and Figure 5's bar group for one mix.
type MixReport struct {
	Name      string
	Workloads [4]string
	// Vector is the feature vector SSDKeeper collected during its
	// observation window (Table V "Characteristics of Mixed Workload").
	Vector features.Vector
	// Chosen is the strategy SSDKeeper selected (Table V last column).
	Chosen string

	Shared LatencyRow
	// Keeper replays the whole mix under the strategy SSDKeeper chose —
	// the paper's evaluation procedure ("the best selected channel
	// allocation strategy by SSDKeeper is Shared, so it has the same
	// performance as Shared").
	Isolated     LatencyRow
	Keeper       LatencyRow // chosen strategy, static page allocation
	KeeperHybrid LatencyRow // chosen strategy + hybrid page allocator
	// KeeperOnline is the same model operating truly online: Shared for
	// the observation window, then a mid-run re-bind without data
	// migration. The gap to Keeper is the adaptation cost the paper does
	// not charge.
	KeeperOnline LatencyRow

	// Oracle is the best static strategy found by exhaustive search
	// (filled only when Fig5Table5 runs with oracle=true); OracleName
	// names it. It bounds what any allocator could achieve.
	Oracle     LatencyRow
	OracleName string

	// ImprovementPct is the total-latency improvement of SSDKeeper's
	// channel allocation over Shared, the paper's headline metric.
	ImprovementPct float64
	// HybridDeltaPct is the extra improvement from the hybrid page
	// allocator (negative when it hurts; on a seasoned device dynamic
	// allocation scatters overwrites and raises GC write amplification —
	// see EXPERIMENTS.md).
	HybridDeltaPct float64
}

// Fig5Table5 reproduces the performance analysis (Section V.C): the four
// Table IV mixes of synthetic Table II workloads replayed under Shared,
// Isolated, SSDKeeper, and SSDKeeper with the hybrid page allocator. With
// oracle set it additionally sweeps all 42 strategies per mix to report the
// exhaustive optimum.
func Fig5Table5(ctx context.Context, env Env, scale Scale, model *nn.Network, oracle bool) ([]MixReport, error) {
	if err := validateScale(scale); err != nil {
		return nil, err
	}
	profiles := trace.TableII(scale.TableIIScale, env.Device.PageSize, scale.Seed)
	isolated := alloc.Strategy{Kind: alloc.Isolated}
	shared := alloc.Strategy{Kind: alloc.Shared}
	runner := simrun.NewRunner()
	var reports []MixReport
	for mi, names := range trace.Mixes() {
		mix, err := trace.BuildMix(names, profiles, scale.MixHead)
		if err != nil {
			return nil, err
		}
		report := MixReport{Name: fmt.Sprintf("Mix%d", mi+1), Workloads: names}

		// Baselines bind groups by the tenants' true dominance.
		traits := traitsOf(names, profiles)
		sharedRes, err := env.runOne(ctx, runner, shared, traits, false, mix)
		if err != nil {
			return nil, fmt.Errorf("%s shared: %w", report.Name, err)
		}
		report.Shared = toRow(sharedRes)
		isoRes, err := env.runOne(ctx, runner, isolated, traits, false, mix)
		if err != nil {
			return nil, fmt.Errorf("%s isolated: %w", report.Name, err)
		}
		report.Isolated = toRow(isoRes)

		// Observation pass: the real online mechanism collects the
		// features and predicts (also yielding the online-adaptation
		// number).
		k, err := keeper.New(keeper.Config{
			Device:         env.Device,
			Options:        env.Options,
			Strategies:     env.Strategies,
			SaturationIOPS: env.SaturationIOPS,
			Window:         keeperWindow,
			Season:         env.Season,
		}, model)
		if err != nil {
			return nil, err
		}
		rep, err := k.RunContext(ctx, mix)
		if err != nil {
			return nil, fmt.Errorf("%s keeper: %w", report.Name, err)
		}
		report.KeeperOnline = toRow(rep.Result)
		chosen := rep.Chosen()
		report.Chosen = chosen.Name(env.Device.Channels)
		chosenTraits := traits
		if len(rep.Switches) > 0 {
			report.Vector = rep.Switches[0].Vector
			chosenTraits = report.Vector.Traits()
		}

		// Evaluation passes, per the paper: the chosen strategy runs
		// the whole mix, without and with the hybrid page allocator.
		keeperRes, err := env.runOne(ctx, runner, chosen, chosenTraits, false, mix)
		if err != nil {
			return nil, fmt.Errorf("%s chosen %s: %w", report.Name, report.Chosen, err)
		}
		report.Keeper = toRow(keeperRes)
		hybridRes, err := env.runOne(ctx, runner, chosen, chosenTraits, true, mix)
		if err != nil {
			return nil, fmt.Errorf("%s chosen %s hybrid: %w", report.Name, report.Chosen, err)
		}
		report.KeeperHybrid = toRow(hybridRes)
		report.ImprovementPct = 100 * (report.Shared.TotalUs - report.Keeper.TotalUs) / report.Shared.TotalUs
		report.HybridDeltaPct = 100 * (report.Keeper.TotalUs - report.KeeperHybrid.TotalUs) / report.Keeper.TotalUs

		if oracle {
			bestName, bestRow, err := exhaustiveBest(ctx, runner, env, traits, mix)
			if err != nil {
				return nil, fmt.Errorf("%s oracle: %w", report.Name, err)
			}
			report.Oracle = bestRow
			report.OracleName = bestName
		}
		reports = append(reports, report)
	}
	return reports, nil
}

// exhaustiveBest replays the mix under every strategy and returns the one
// with the lowest total latency. Infeasible partitions are skipped.
func exhaustiveBest(ctx context.Context, runner *simrun.Runner, env Env, traits []alloc.TenantTraits, mix trace.Trace) (string, LatencyRow, error) {
	bestName := ""
	var bestRow LatencyRow
	for _, s := range env.Strategies {
		res, err := env.runOne(ctx, runner, s, traits, false, mix)
		if errors.Is(err, ftl.ErrDeviceFull) {
			continue
		}
		if err != nil {
			return "", LatencyRow{}, err
		}
		row := toRow(res)
		if bestName == "" || row.TotalUs < bestRow.TotalUs {
			bestName, bestRow = s.Name(env.Device.Channels), row
		}
	}
	if bestName == "" {
		return "", LatencyRow{}, fmt.Errorf("no feasible strategy")
	}
	return bestName, bestRow, nil
}

// traitsOf derives each tenant's write dominance from its profile.
func traitsOf(names [4]string, profiles map[string]trace.Profile) []alloc.TenantTraits {
	traits := make([]alloc.TenantTraits, len(names))
	for i, n := range names {
		traits[i] = alloc.TenantTraits{WriteDominated: profiles[n].WriteRatio >= 0.5}
	}
	return traits
}

// RenderTable5 formats the Table V rows.
func RenderTable5(reports []MixReport) string {
	var b strings.Builder
	b.WriteString("Table V: mixed workload characteristics and SSDKeeper channel allocation\n")
	fmt.Fprintf(&b, "%-6s %-34s %-40s %s\n", "Mix", "Workloads", "Collected features", "Chosen")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-6s %-34s %-40s %s\n",
			r.Name, strings.Join(r.Workloads[:], ","), r.Vector.String(), r.Chosen)
	}
	return b.String()
}

// RenderFig5 formats the Figure 5 latency comparison, normalized to Shared
// as in the paper.
func RenderFig5(reports []MixReport) string {
	var b strings.Builder
	panels := []struct {
		title string
		pick  func(LatencyRow) float64
	}{
		{"(a) write latency (us)", func(l LatencyRow) float64 { return l.WriteUs }},
		{"(b) read latency (us)", func(l LatencyRow) float64 { return l.ReadUs }},
		{"(c) total latency (us)", func(l LatencyRow) float64 { return l.TotalUs }},
	}
	withOracle := len(reports) > 0 && reports[0].OracleName != ""
	for _, panel := range panels {
		fmt.Fprintf(&b, "Figure 5%s\n", panel.title)
		fmt.Fprintf(&b, "%-6s %10s %10s %10s %14s %13s", "Mix", "Shared", "Isolated", "SSDKeeper", "SSDKeeper+hyb", "(online)")
		if withOracle {
			fmt.Fprintf(&b, " %16s", "Oracle")
		}
		b.WriteString("\n")
		for _, r := range reports {
			fmt.Fprintf(&b, "%-6s %10.1f %10.1f %10.1f %14.1f %13.1f",
				r.Name, panel.pick(r.Shared), panel.pick(r.Isolated),
				panel.pick(r.Keeper), panel.pick(r.KeeperHybrid), panel.pick(r.KeeperOnline))
			if withOracle {
				fmt.Fprintf(&b, " %10.1f (%s)", panel.pick(r.Oracle), r.OracleName)
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	var sum, hybSum float64
	for _, r := range reports {
		fmt.Fprintf(&b, "%s: SSDKeeper improves total latency over Shared by %.1f%% (hybrid page allocation: %+.1f%%)\n",
			r.Name, r.ImprovementPct, r.HybridDeltaPct)
		sum += r.ImprovementPct
		hybSum += r.HybridDeltaPct
	}
	if n := float64(len(reports)); n > 0 {
		fmt.Fprintf(&b, "average improvement: %.1f%% (paper: 24%%); hybrid page allocation delta: %+.1f%% (paper: +2.1%%)\n",
			sum/n, hybSum/n)
	}
	return b.String()
}
