package alloc

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a strategy in the paper's notation for a device with the
// given channel count: "Shared", "Isolated" (case-insensitive), a two-group
// split "W:R" (write-group channels first), or a four-way split like
// "5:1:1:1". The parts of a split must sum to the channel count.
func Parse(name string, channels int) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "shared":
		return Strategy{Kind: Shared}, nil
	case "isolated":
		return Strategy{Kind: Isolated}, nil
	case "":
		return Strategy{}, fmt.Errorf("alloc: empty strategy name")
	}
	parts := strings.Split(name, ":")
	nums := make([]int, len(parts))
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return Strategy{}, fmt.Errorf("alloc: bad strategy %q: %v", name, err)
		}
		if n < 1 {
			return Strategy{}, fmt.Errorf("alloc: strategy %q has non-positive part %d", name, n)
		}
		nums[i] = n
		sum += n
	}
	if sum != channels {
		return Strategy{}, fmt.Errorf("alloc: strategy %q allocates %d of %d channels", name, sum, channels)
	}
	var s Strategy
	switch len(nums) {
	case 2:
		s = Strategy{Kind: TwoGroup, WriteChannels: nums[0]}
	case 4:
		equal := true
		for _, n := range nums {
			if n != nums[0] {
				equal = false
			}
		}
		if equal {
			// An equal four-way split IS Isolated in the canonical
			// space; normalize so Index lookups work.
			s = Strategy{Kind: Isolated}
		} else {
			s = Strategy{Kind: FourWay, Parts: nums}
		}
	default:
		return Strategy{}, fmt.Errorf("alloc: strategy %q: want 2 or 4 parts, got %d", name, len(nums))
	}
	if err := s.Validate(channels, len(nums)); err != nil {
		return Strategy{}, err
	}
	return s, nil
}
