package alloc

import (
	"testing"
	"testing/quick"
)

func TestTwoTenantSpaceMatchesPaper(t *testing.T) {
	space := TwoTenantSpace(8)
	if len(space) != 8 {
		t.Fatalf("two-tenant space has %d strategies, want 8", len(space))
	}
	want := []string{"Shared", "7:1", "6:2", "5:3", "Isolated", "3:5", "2:6", "1:7"}
	for i, s := range space {
		if got := s.Name(8); got != want[i] {
			t.Errorf("strategy %d = %s, want %s", i, got, want[i])
		}
	}
}

func TestFourTenantSpaceHas42Strategies(t *testing.T) {
	space := FourTenantSpace(8)
	if len(space) != 42 {
		t.Fatalf("four-tenant space has %d strategies, want 42 (paper IV.C)", len(space))
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, s := range space {
		n := s.Name(8)
		if seen[n] {
			t.Errorf("duplicate strategy %s", n)
		}
		seen[n] = true
	}
	// The paper's examples must be present.
	for _, name := range []string{"Shared", "Isolated", "7:1", "1:7", "5:1:1:1", "4:2:1:1", "3:3:1:1", "3:2:2:1"} {
		if !seen[name] {
			t.Errorf("strategy %s missing from space", name)
		}
	}
	// 2:2:2:2 must not appear as a FourWay duplicate of Isolated.
	if seen["2:2:2:2"] {
		t.Error("2:2:2:2 should be represented as Isolated only")
	}
}

func TestCompositionsCount(t *testing.T) {
	if got := len(Compositions(8, 4)); got != 35 {
		t.Errorf("compositions of 8 into 4 parts = %d, want C(7,3)=35", got)
	}
	if got := len(Compositions(8, 2)); got != 7 {
		t.Errorf("compositions of 8 into 2 parts = %d, want 7", got)
	}
	if got := len(Compositions(3, 4)); got != 0 {
		t.Errorf("compositions of 3 into 4 parts = %d, want 0", got)
	}
}

func TestCompositionsPropertySumAndPositivity(t *testing.T) {
	f := func(total, k uint8) bool {
		n := int(total)%10 + 1
		parts := int(k)%4 + 1
		for _, comp := range Compositions(n, parts) {
			sum := 0
			for _, p := range comp {
				if p < 1 {
					return false
				}
				sum += p
			}
			if sum != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedBindGivesAllChannelsToEveryone(t *testing.T) {
	s := Strategy{Kind: Shared}
	b, err := s.Bind(8, make([]TenantTraits, 4))
	if err != nil {
		t.Fatal(err)
	}
	for tenant := 0; tenant < 4; tenant++ {
		if len(b.Channels(tenant)) != 8 {
			t.Errorf("tenant %d has %d channels, want 8", tenant, len(b.Channels(tenant)))
		}
	}
}

func TestIsolatedBindIsDisjointEqualPartition(t *testing.T) {
	s := Strategy{Kind: Isolated}
	b, err := s.Bind(8, make([]TenantTraits, 4))
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for tenant := 0; tenant < 4; tenant++ {
		set := b.Channels(tenant)
		if len(set) != 2 {
			t.Errorf("tenant %d has %d channels, want 2", tenant, len(set))
		}
		for _, ch := range set {
			used[ch]++
		}
	}
	for ch, n := range used {
		if n != 1 {
			t.Errorf("channel %d assigned %d times", ch, n)
		}
	}
	if len(used) != 8 {
		t.Errorf("%d channels used, want 8", len(used))
	}
}

func TestIsolatedBindRejectsUnevenSplit(t *testing.T) {
	s := Strategy{Kind: Isolated}
	if _, err := s.Bind(8, make([]TenantTraits, 3)); err == nil {
		t.Error("isolated with 3 tenants on 8 channels should fail")
	}
}

func TestTwoGroupBindSplitsByDominance(t *testing.T) {
	s := Strategy{Kind: TwoGroup, WriteChannels: 5}
	traits := []TenantTraits{
		{WriteDominated: true},
		{WriteDominated: false},
		{WriteDominated: true},
		{WriteDominated: false},
	}
	b, err := s.Bind(8, traits)
	if err != nil {
		t.Fatal(err)
	}
	// Writers share channels 0-4, readers share 5-7.
	for _, tenant := range []int{0, 2} {
		set := b.Channels(tenant)
		if len(set) != 5 || set[0] != 0 || set[4] != 4 {
			t.Errorf("write tenant %d set = %v, want [0..4]", tenant, set)
		}
	}
	for _, tenant := range []int{1, 3} {
		set := b.Channels(tenant)
		if len(set) != 3 || set[0] != 5 || set[2] != 7 {
			t.Errorf("read tenant %d set = %v, want [5..7]", tenant, set)
		}
	}
}

func TestTwoGroupBindDegeneratesToSharedWhenHomogeneous(t *testing.T) {
	s := Strategy{Kind: TwoGroup, WriteChannels: 7}
	traits := []TenantTraits{{WriteDominated: true}, {WriteDominated: true}}
	b, err := s.Bind(8, traits)
	if err != nil {
		t.Fatal(err)
	}
	for tenant := range traits {
		if len(b.Channels(tenant)) != 8 {
			t.Errorf("homogeneous two-group should degrade to Shared; tenant %d got %v",
				tenant, b.Channels(tenant))
		}
	}
}

func TestFourWayBindAssignsByTenantIndex(t *testing.T) {
	s := Strategy{Kind: FourWay, Parts: []int{5, 1, 1, 1}}
	b, err := s.Bind(8, make([]TenantTraits, 4))
	if err != nil {
		t.Fatal(err)
	}
	wantLens := []int{5, 1, 1, 1}
	next := 0
	for tenant, want := range wantLens {
		set := b.Channels(tenant)
		if len(set) != want {
			t.Fatalf("tenant %d has %d channels, want %d", tenant, len(set), want)
		}
		for _, ch := range set {
			if ch != next {
				t.Fatalf("tenant %d channels %v not contiguous from %d", tenant, set, next)
			}
			next++
		}
	}
	if next != 8 {
		t.Errorf("channels covered: %d, want 8", next)
	}
}

func TestValidateCatchesBadStrategies(t *testing.T) {
	cases := []struct {
		s       Strategy
		tenants int
	}{
		{Strategy{Kind: TwoGroup, WriteChannels: 0}, 2},
		{Strategy{Kind: TwoGroup, WriteChannels: 8}, 2},
		{Strategy{Kind: FourWay, Parts: []int{4, 4}}, 4},
		{Strategy{Kind: FourWay, Parts: []int{5, 1, 1, 2}}, 4}, // sums to 9
		{Strategy{Kind: FourWay, Parts: []int{8, 0, -1, 1}}, 4},
		{Strategy{Kind: Kind(99)}, 2},
	}
	for i, c := range cases {
		if err := c.s.Validate(8, c.tenants); err == nil {
			t.Errorf("case %d: invalid strategy accepted: %+v", i, c.s)
		}
	}
}

func TestBindAllStrategiesInFourTenantSpace(t *testing.T) {
	traits := []TenantTraits{
		{WriteDominated: true}, {WriteDominated: false},
		{WriteDominated: true}, {WriteDominated: false},
	}
	for _, s := range FourTenantSpace(8) {
		b, err := s.Bind(8, traits)
		if err != nil {
			t.Errorf("%s: bind failed: %v", s.Name(8), err)
			continue
		}
		for tenant := 0; tenant < 4; tenant++ {
			set := b.Channels(tenant)
			if len(set) == 0 {
				t.Errorf("%s: tenant %d has no channels", s.Name(8), tenant)
			}
			for _, ch := range set {
				if ch < 0 || ch >= 8 {
					t.Errorf("%s: tenant %d channel %d out of range", s.Name(8), tenant, ch)
				}
			}
		}
	}
}

func TestIndexAndEqual(t *testing.T) {
	space := FourTenantSpace(8)
	for i, s := range space {
		if got := Index(space, s); got != i {
			t.Errorf("Index(space, space[%d]) = %d", i, got)
		}
	}
	if Index(space, Strategy{Kind: FourWay, Parts: []int{2, 2, 2, 2}}) != -1 {
		t.Error("2:2:2:2 FourWay should not be found (it is Isolated)")
	}
	if !Equal(Strategy{Kind: Shared}, Strategy{}) {
		t.Error("zero strategy should equal Shared")
	}
	if Equal(Strategy{Kind: FourWay, Parts: []int{5, 1, 1, 1}}, Strategy{Kind: FourWay, Parts: []int{1, 5, 1, 1}}) {
		t.Error("different part orders must not be equal")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		s    Strategy
		want string
	}{
		{Strategy{Kind: Shared}, "Shared"},
		{Strategy{Kind: Isolated}, "Isolated"},
		{Strategy{Kind: TwoGroup, WriteChannels: 7}, "7:1"},
		{Strategy{Kind: TwoGroup, WriteChannels: 2}, "2:6"},
		{Strategy{Kind: FourWay, Parts: []int{3, 2, 2, 1}}, "3:2:2:1"},
	}
	for _, c := range cases {
		if got := c.s.Name(8); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestSpacesGeneralizeToOtherChannelCounts(t *testing.T) {
	// 4-channel device: Shared, 3:1, Isolated(2:2), 1:3.
	small := TwoTenantSpace(4)
	if len(small) != 4 {
		t.Errorf("two-tenant space on 4 channels: %d strategies", len(small))
	}
	// 12-channel device: 12 two-tenant strategies plus C(11,3)-1 = 164
	// four-way compositions.
	big := FourTenantSpace(12)
	want := 12 + 164
	if len(big) != want {
		t.Errorf("four-tenant space on 12 channels: %d strategies, want %d", len(big), want)
	}
	traits := []TenantTraits{
		{WriteDominated: true}, {WriteDominated: false},
		{WriteDominated: true}, {WriteDominated: false},
	}
	for _, s := range big {
		if _, err := s.Bind(12, traits); err != nil {
			t.Fatalf("%s on 12 channels: %v", s.Name(12), err)
		}
	}
}
