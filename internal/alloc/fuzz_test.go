package alloc

import "testing"

// FuzzParse drives the strategy parser: it must never panic, and anything
// it accepts must validate and render back to a parseable name.
func FuzzParse(f *testing.F) {
	f.Add("Shared", 8)
	f.Add("7:1", 8)
	f.Add("5:1:1:1", 8)
	f.Add("::::", 8)
	f.Add("-1:9", 8)
	f.Add("1:1:1:1:1:1:1:1", 8)
	f.Add("Isolated", 8)
	f.Add("isolated", 4)
	f.Add(" Shared ", 8)
	f.Add("6:2", 8)
	f.Add("0:8", 8)
	f.Add("8:0:0:0", 8)
	f.Add("4:4", 2)
	f.Add("2:2", 64)
	f.Add("16:16:16:16", 64)
	f.Add("9999999999999999999:1", 8)
	f.Add("+3:5", 8)
	f.Add("3 : 5", 8)
	f.Add("3:5:", 8)
	f.Add(":3:5", 8)
	f.Add("٣:٥", 8) // non-ASCII digits must not parse as numbers
	f.Add("1:1:1", 8)
	f.Add("0x4:4", 8)
	f.Fuzz(func(t *testing.T, name string, channels int) {
		if channels < 2 || channels > 64 {
			return
		}
		s, err := Parse(name, channels)
		if err != nil {
			return
		}
		tenants := 2
		if s.Kind == FourWay {
			tenants = 4
		}
		if s.Kind == Isolated && channels%tenants != 0 {
			tenants = channels // make the split exact for validation
		}
		if err := s.Validate(channels, tenants); err != nil {
			t.Fatalf("accepted strategy fails validation: %v", err)
		}
		// Round trip through the canonical name.
		back, err := Parse(s.Name(channels), channels)
		if err != nil {
			t.Fatalf("canonical name %q does not re-parse: %v", s.Name(channels), err)
		}
		if !Equal(s, back) {
			t.Fatalf("round trip changed strategy: %+v vs %+v", s, back)
		}
	})
}
