package alloc

import "testing"

func TestParseNamedStrategies(t *testing.T) {
	cases := []struct {
		in   string
		want Strategy
	}{
		{"Shared", Strategy{Kind: Shared}},
		{"shared", Strategy{Kind: Shared}},
		{" ISOLATED ", Strategy{Kind: Isolated}},
		{"7:1", Strategy{Kind: TwoGroup, WriteChannels: 7}},
		{"1:7", Strategy{Kind: TwoGroup, WriteChannels: 1}},
		{"5:1:1:1", Strategy{Kind: FourWay, Parts: []int{5, 1, 1, 1}}},
		{"3:2:2:1", Strategy{Kind: FourWay, Parts: []int{3, 2, 2, 1}}},
		{"2:2:2:2", Strategy{Kind: Isolated}}, // canonicalized
	}
	for _, c := range cases {
		got, err := Parse(c.in, 8)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	bad := []string{
		"", "sharedd", "7:2", // sums to 9
		"4:4:0", "0:8", "-1:9", "x:y", "1:1:1:1:4", "8",
		"5:1:1:2", // sums to 9
	}
	for _, in := range bad {
		if _, err := Parse(in, 8); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParseRoundTripsSpace(t *testing.T) {
	for _, s := range FourTenantSpace(8) {
		got, err := Parse(s.Name(8), 8)
		if err != nil {
			t.Errorf("Parse(%s): %v", s.Name(8), err)
			continue
		}
		if !Equal(got, s) {
			t.Errorf("Parse(Name(%s)) = %+v", s.Name(8), got)
		}
	}
}
