// Package alloc defines the channel-allocation strategy space of the paper
// (Section IV.C): Shared (stripe everything across all channels, like a
// traditional SSD), Isolated (equal static split, like a blindly partitioned
// Open-Channel SSD), two-group splits that divide the channels between the
// write-dominated and read-dominated tenants (7:1 ... 1:7), and — for four
// tenants — every four-way composition of the channels.
//
// For an 8-channel SSD the space has 8 strategies with two tenants and 42
// with four tenants, matching the paper's 42-neuron output layer.
package alloc

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates strategy families.
type Kind uint8

// Strategy families.
const (
	// Shared stripes every tenant across all channels.
	Shared Kind = iota
	// Isolated splits the channels equally among tenants.
	Isolated
	// TwoGroup gives WriteChannels channels to the write-dominated
	// tenants (as a shared group) and the rest to the read-dominated
	// tenants.
	TwoGroup
	// FourWay assigns Parts[i] dedicated channels to tenant i.
	FourWay
)

// Strategy is one point in the allocation space. The zero value is Shared.
type Strategy struct {
	Kind          Kind
	WriteChannels int   // TwoGroup only: channels for the write group
	Parts         []int // FourWay only: channels per tenant, by tenant index
}

// String renders the paper's notation: "Shared", "Isolated", "5:1:1:1", ...
// A TwoGroup strategy needs the device channel count to show both group
// sizes, so String renders it as "7:_"; use Name for the full form.
func (s Strategy) String() string {
	switch s.Kind {
	case Shared:
		return "Shared"
	case Isolated:
		return "Isolated"
	case TwoGroup:
		return fmt.Sprintf("%d:_", s.WriteChannels)
	case FourWay:
		parts := make([]string, len(s.Parts))
		for i, p := range s.Parts {
			parts[i] = strconv.Itoa(p)
		}
		return strings.Join(parts, ":")
	default:
		return fmt.Sprintf("kind(%d)", s.Kind)
	}
}

// Name renders the strategy given the channel count (needed so TwoGroup can
// show both group sizes).
func (s Strategy) Name(channels int) string {
	if s.Kind == TwoGroup {
		return fmt.Sprintf("%d:%d", s.WriteChannels, channels-s.WriteChannels)
	}
	return s.String()
}

// Validate checks internal consistency against a channel count and tenant
// count.
func (s Strategy) Validate(channels, tenants int) error {
	switch s.Kind {
	case Shared:
		return nil
	case Isolated:
		if channels%tenants != 0 {
			return fmt.Errorf("alloc: isolated needs channels %% tenants == 0, got %d %% %d", channels, tenants)
		}
		return nil
	case TwoGroup:
		if s.WriteChannels < 1 || s.WriteChannels > channels-1 {
			return fmt.Errorf("alloc: two-group write channels %d outside [1,%d]", s.WriteChannels, channels-1)
		}
		return nil
	case FourWay:
		if len(s.Parts) != tenants {
			return fmt.Errorf("alloc: four-way has %d parts for %d tenants", len(s.Parts), tenants)
		}
		sum := 0
		for _, p := range s.Parts {
			if p < 1 {
				return fmt.Errorf("alloc: four-way part %d < 1", p)
			}
			sum += p
		}
		if sum != channels {
			return fmt.Errorf("alloc: four-way parts sum to %d, want %d", sum, channels)
		}
		return nil
	default:
		return fmt.Errorf("alloc: unknown kind %d", s.Kind)
	}
}

// TenantTraits carries the per-tenant information a strategy needs to bind
// abstract groups to concrete tenants.
type TenantTraits struct {
	// WriteDominated is true when the tenant's requests are mostly
	// writes (the paper's per-workload read/write characteristic).
	WriteDominated bool
}

// Binding maps each tenant to the set of channel indices it may use. Sets
// may overlap (Shared, and group members inside TwoGroup share channels).
type Binding struct {
	Sets [][]int
}

// Channels returns tenant t's channel set.
func (b Binding) Channels(t int) []int { return b.Sets[t] }

// Bind resolves the strategy into per-tenant channel sets for a device with
// the given channel count. For TwoGroup, write-dominated tenants share the
// first WriteChannels channels and the rest share the remainder; if either
// group is empty the strategy degenerates to Shared (all channels to the
// non-empty group), mirroring the paper's treatment of homogeneous mixes.
func (s Strategy) Bind(channels int, tenants []TenantTraits) (Binding, error) {
	n := len(tenants)
	if n == 0 {
		return Binding{}, fmt.Errorf("alloc: no tenants")
	}
	if err := s.Validate(channels, n); err != nil {
		return Binding{}, err
	}
	all := seq(0, channels)
	sets := make([][]int, n)
	switch s.Kind {
	case Shared:
		for i := range sets {
			sets[i] = all
		}
	case Isolated:
		per := channels / n
		for i := range sets {
			sets[i] = seq(i*per, per)
		}
	case TwoGroup:
		wset := seq(0, s.WriteChannels)
		rset := seq(s.WriteChannels, channels-s.WriteChannels)
		nw := 0
		for _, t := range tenants {
			if t.WriteDominated {
				nw++
			}
		}
		if nw == 0 || nw == n {
			// Degenerate: one empty group; everyone shares all channels.
			for i := range sets {
				sets[i] = all
			}
			break
		}
		for i, t := range tenants {
			if t.WriteDominated {
				sets[i] = wset
			} else {
				sets[i] = rset
			}
		}
	case FourWay:
		start := 0
		for i, p := range s.Parts {
			sets[i] = seq(start, p)
			start += p
		}
	}
	return Binding{Sets: sets}, nil
}

func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// TwoTenantSpace returns the 8-strategy space of the paper's Figure 2 for a
// device with the given (even) channel count: Shared, then two-group splits
// from (channels-1):1 down to 1:(channels-1), with the equal split reported
// as Isolated. For 8 channels: Shared, 7:1, 6:2, 5:3, Isolated, 3:5, 2:6,
// 1:7.
func TwoTenantSpace(channels int) []Strategy {
	out := []Strategy{{Kind: Shared}}
	for w := channels - 1; w >= 1; w-- {
		if 2*w == channels {
			out = append(out, Strategy{Kind: Isolated})
			continue
		}
		out = append(out, Strategy{Kind: TwoGroup, WriteChannels: w})
	}
	return out
}

// FourTenantSpace returns the 42-strategy space of Section IV.C for an
// 8-channel device (and the analogous space for other channel counts
// divisible by 4): the 8 two-tenant strategies (with Isolated now meaning an
// equal four-way split) plus every four-way composition of the channels
// except the equal one, in lexicographic order.
func FourTenantSpace(channels int) []Strategy {
	out := TwoTenantSpace(channels)
	equal := channels / 4
	for _, parts := range Compositions(channels, 4) {
		if parts[0] == equal && parts[1] == equal && parts[2] == equal && parts[3] == equal {
			continue // already present as Isolated
		}
		out = append(out, Strategy{Kind: FourWay, Parts: parts})
	}
	return out
}

// Compositions enumerates the ordered compositions of total into k positive
// parts, in lexicographic order. For (8, 4) there are C(7,3) = 35.
func Compositions(total, k int) [][]int {
	var out [][]int
	cur := make([]int, k)
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == k-1 {
			cur[pos] = remaining
			out = append(out, append([]int(nil), cur...))
			return
		}
		// Leave at least 1 for each remaining part.
		for v := 1; v <= remaining-(k-1-pos); v++ {
			cur[pos] = v
			rec(pos+1, remaining-v)
		}
	}
	if k >= 1 && total >= k {
		rec(0, total)
	}
	return out
}

// Index returns the position of strategy s in space, or -1. Strategies are
// compared structurally.
func Index(space []Strategy, s Strategy) int {
	for i, c := range space {
		if Equal(c, s) {
			return i
		}
	}
	return -1
}

// Equal reports structural equality of two strategies.
func Equal(a, b Strategy) bool {
	if a.Kind != b.Kind || a.WriteChannels != b.WriteChannels || len(a.Parts) != len(b.Parts) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	return true
}
