// Package workload builds multi-tenant workloads and runs them on the
// simulated SSD under a chosen channel-allocation strategy. It is the layer
// the motivation experiment (Figure 2), the label-generation pipeline, and
// the evaluation mixes all share.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// TenantSpec describes one tenant of a synthetic mixed workload.
type TenantSpec struct {
	WriteRatio float64 // fraction of this tenant's requests that write
	Share      float64 // this tenant's fraction of total requests
}

// WriteDominated reports whether the tenant writes more than it reads (the
// paper's binary read/write characteristic).
func (t TenantSpec) WriteDominated() bool { return t.WriteRatio >= 0.5 }

// MixSpec describes a synthetic mixed workload by exactly the quantities the
// features collector observes: total intensity and per-tenant read/write
// mix and share. This is the knob the paper turns to synthesize its 5,000
// training workloads ("we mainly change the read/write characteristics and
// read/write proportion").
type MixSpec struct {
	Tenants  []TenantSpec
	Requests int     // total requests across tenants
	IOPS     float64 // aggregate arrival rate
	Seed     int64
}

// Validate reports the first inconsistency.
func (m MixSpec) Validate() error {
	if len(m.Tenants) == 0 {
		return fmt.Errorf("workload: mix has no tenants")
	}
	if m.Requests <= 0 {
		return fmt.Errorf("workload: mix needs positive request count")
	}
	if m.IOPS <= 0 {
		return fmt.Errorf("workload: mix needs positive IOPS")
	}
	sum := 0.0
	for i, t := range m.Tenants {
		if t.WriteRatio < 0 || t.WriteRatio > 1 {
			return fmt.Errorf("workload: tenant %d write ratio %v outside [0,1]", i, t.WriteRatio)
		}
		if t.Share < 0 {
			return fmt.Errorf("workload: tenant %d negative share", i)
		}
		sum += t.Share
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: tenant shares sum to %v, want 1", sum)
	}
	return nil
}

// Traits returns the alloc binding traits implied by the spec.
func (m MixSpec) Traits() []alloc.TenantTraits {
	out := make([]alloc.TenantTraits, len(m.Tenants))
	for i, t := range m.Tenants {
		out[i] = alloc.TenantTraits{WriteDominated: t.WriteDominated()}
	}
	return out
}

// Build synthesizes the mixed trace: each tenant gets Share*Requests
// requests at Share*IOPS, then the per-tenant streams are merged
// chronologically.
func (m MixSpec) Build(pageSize int) (trace.Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	parts := make([]trace.Trace, 0, len(m.Tenants))
	for i, t := range m.Tenants {
		count := int(float64(m.Requests)*t.Share + 0.5)
		if count == 0 {
			continue
		}
		iops := m.IOPS * t.Share
		if iops <= 0 {
			iops = 1
		}
		p := trace.Profile{
			Name:       fmt.Sprintf("tenant%d", i),
			WriteRatio: t.WriteRatio,
			Count:      count,
			IOPS:       iops,
			Address:    64 << 20, // hot working set; overwrites keep GC live
			SeqProb:    0.3,
			MinPages:   1,
			MaxPages:   4,
			PageSize:   pageSize,
			Burstiness: 0.8,
			Seed:       m.Seed + int64(i)*104729,
		}
		tr, err := trace.Generate(p)
		if err != nil {
			return nil, err
		}
		parts = append(parts, tr.Retag(i))
	}
	return trace.Merge(parts...), nil
}

// RandomMixSpec draws a 4-tenant mix with random read/write characteristics,
// random shares, and a random intensity — the data-set sampling procedure of
// Section V.B. maxIOPS bounds the intensity range (level 19).
func RandomMixSpec(rng *rand.Rand, requests int, maxIOPS float64) MixSpec {
	const tenants = 4
	spec := MixSpec{
		Requests: requests,
		// Keep away from 0 IOPS: drop the bottom 2% of the range.
		IOPS: maxIOPS * (0.02 + 0.98*rng.Float64()),
		Seed: rng.Int63(),
	}
	shares := make([]float64, tenants)
	sum := 0.0
	for i := range shares {
		shares[i] = 0.05 + rng.Float64()
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	for i := 0; i < tenants; i++ {
		// Workloads are read- or write-dominated, never balanced
		// (paper: "each workload is read-dominated or write-dominated").
		var wr float64
		if rng.Intn(2) == 0 {
			wr = 0.75 + 0.25*rng.Float64() // write-dominated: 75-100% writes
		} else {
			wr = 0.25 * rng.Float64() // read-dominated: 0-25% writes
		}
		spec.Tenants = append(spec.Tenants, TenantSpec{WriteRatio: wr, Share: shares[i]})
	}
	return spec
}

// Seasoning aliases the simulation-run layer's aging description (see
// simrun.Seasoning and ftl.Season).
type Seasoning = simrun.Seasoning

// DefaultSeasoning returns the aging used throughout the evaluation (see
// simrun.DefaultSeasoning).
func DefaultSeasoning() Seasoning { return simrun.DefaultSeasoning() }

// RunConfig aliases the simulation-run layer's configuration: everything
// needed to build a device and replay a trace under one strategy.
type RunConfig = simrun.Config

// NewDevice builds a device with the strategy bound and the seasoning
// applied, ready to accept the trace. The device lives on its own
// single-use runner; loops that run many simulations should hold a
// simrun.Runner instead and reuse its engine.
func NewDevice(rc RunConfig) (*ssd.Device, error) {
	sess, err := simrun.NewRunner().NewSession(rc)
	if err != nil {
		return nil, err
	}
	return sess.Device(), nil
}

// runnerPool recycles runners across Run calls. A reset engine behaves
// identically to a fresh one, so pooled reuse keeps results byte-for-byte
// unchanged while callers that invoke Run in a loop (or from several
// goroutines) stop paying an engine + collector allocation per run.
var runnerPool = sync.Pool{New: func() any { return simrun.NewRunner() }}

// Run replays the trace under the run configuration and returns the device
// result. Runners are pooled and reused across calls.
func Run(rc RunConfig, t trace.Trace) (ssd.Result, error) {
	r := runnerPool.Get().(*simrun.Runner)
	res, err := r.Run(context.Background(), rc, t)
	runnerPool.Put(r)
	if err != nil {
		return ssd.Result{}, err
	}
	return res.Result, nil
}

// Apply binds a strategy onto a device's FTL (see simrun.Apply).
func Apply(dev *ssd.Device, s alloc.Strategy, traits []alloc.TenantTraits, hybrid bool) error {
	return simrun.Apply(dev, s, traits, hybrid)
}

// TraitsFromTrace classifies each of the first n tenants of a trace by its
// observed write ratio, producing the binding traits a strategy needs.
// Tenants with no requests default to read-dominated.
func TraitsFromTrace(t trace.Trace, tenants int) []alloc.TenantTraits {
	writes := make([]int, tenants)
	total := make([]int, tenants)
	for _, r := range t {
		if r.Tenant >= 0 && r.Tenant < tenants {
			total[r.Tenant]++
			if r.Op == trace.Write {
				writes[r.Tenant]++
			}
		}
	}
	traits := make([]alloc.TenantTraits, tenants)
	for i := range traits {
		traits[i] = alloc.TenantTraits{WriteDominated: total[i] > 0 && writes[i]*2 >= total[i]}
	}
	return traits
}

// TotalLatency is the paper's objective: the sum of mean read and mean write
// response latency for a run, in microseconds.
func TotalLatency(r ssd.Result) float64 { return r.Device.Total() }

// SaturationIOPS estimates the request rate at which the device saturates,
// used to scale the intensity axis of the data-set sampler and the features
// collector. It assumes the average request touches avgPages pages and the
// mix is half reads: each page op occupies its die for roughly the mean of
// tR and tPROG plus a transfer.
func SaturationIOPS(cfg nand.Config, avgPages float64) float64 {
	perPage := (cfg.ReadLatency + cfg.WriteLatency) / 2
	dieIOPS := float64(sim.Second) / float64(perPage+cfg.XferLatency)
	return float64(cfg.TotalDies()) * dieIOPS / avgPages
}
