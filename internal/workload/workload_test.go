package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

func twoTenantSpec(wp float64, requests int, iops float64) MixSpec {
	return MixSpec{
		Tenants: []TenantSpec{
			{WriteRatio: 1, Share: wp},
			{WriteRatio: 0, Share: 1 - wp},
		},
		Requests: requests,
		IOPS:     iops,
		Seed:     42,
	}
}

func TestMixSpecValidate(t *testing.T) {
	good := twoTenantSpec(0.3, 100, 1000)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []MixSpec{
		{},
		{Tenants: []TenantSpec{{WriteRatio: 0.5, Share: 1}}, Requests: 0, IOPS: 1},
		{Tenants: []TenantSpec{{WriteRatio: 0.5, Share: 1}}, Requests: 1, IOPS: 0},
		{Tenants: []TenantSpec{{WriteRatio: 2, Share: 1}}, Requests: 1, IOPS: 1},
		{Tenants: []TenantSpec{{WriteRatio: 0.5, Share: 0.4}}, Requests: 1, IOPS: 1}, // shares != 1
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMixSpecBuildProportions(t *testing.T) {
	spec := twoTenantSpec(0.3, 10000, 5000)
	tr, err := spec.Build(16384)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Tenants != 2 {
		t.Fatalf("tenants %d", s.Tenants)
	}
	// Tenant 0 writes everything, tenant 1 reads everything, so the
	// overall write ratio equals tenant 0's share.
	if math.Abs(s.WriteRatio-0.3) > 0.02 {
		t.Errorf("write ratio %v, want 0.3", s.WriteRatio)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixSpecTraits(t *testing.T) {
	spec := twoTenantSpec(0.5, 10, 10)
	traits := spec.Traits()
	if !traits[0].WriteDominated || traits[1].WriteDominated {
		t.Errorf("traits wrong: %+v", traits)
	}
}

func TestRandomMixSpecAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		spec := RandomMixSpec(rng, 1000, 16000)
		if err := spec.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		if len(spec.Tenants) != 4 {
			t.Fatalf("draw %d has %d tenants", i, len(spec.Tenants))
		}
		for ti, tenant := range spec.Tenants {
			// Tenants must be clearly read- or write-dominated.
			if tenant.WriteRatio > 0.25 && tenant.WriteRatio < 0.75 {
				t.Errorf("draw %d tenant %d balanced ratio %v", i, ti, tenant.WriteRatio)
			}
		}
		if spec.IOPS <= 0 || spec.IOPS > 16000 {
			t.Errorf("draw %d IOPS %v out of range", i, spec.IOPS)
		}
	}
}

func TestRunStrategiesDiffer(t *testing.T) {
	cfg := nand.EvalConfig()
	spec := twoTenantSpec(0.7, 6000, 8000)
	tr, err := spec.Build(cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s alloc.Strategy) ssd.Result {
		res, err := Run(RunConfig{
			Device: cfg, Options: ssd.DefaultOptions(),
			Strategy: s, Traits: spec.Traits(),
			Season: DefaultSeasoning(),
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := run(alloc.Strategy{Kind: alloc.Shared})
	grouped := run(alloc.Strategy{Kind: alloc.TwoGroup, WriteChannels: 7})
	if shared.Device.Total() == grouped.Device.Total() {
		t.Error("strategies produced identical latency; binding has no effect")
	}
	// At 70% writes on a seasoned device, isolating the write stream onto
	// 7 channels must beat Shared (the paper's core claim).
	if grouped.Device.Total() >= shared.Device.Total() {
		t.Errorf("7:1 (%v) not better than Shared (%v) at write-heavy load",
			grouped.Device.Total(), shared.Device.Total())
	}
}

func TestApplyHybridSetsModes(t *testing.T) {
	cfg := nand.TinyConfig()
	dev, err := NewDevice(RunConfig{Device: cfg, Options: ssd.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	traits := []alloc.TenantTraits{{WriteDominated: true}, {WriteDominated: false}}
	if err := Apply(dev, alloc.Strategy{Kind: alloc.Isolated}, traits, true); err != nil {
		t.Fatal(err)
	}
	if got := dev.FTL().TenantMode(0); got != ftl.DynamicAlloc {
		t.Errorf("write-dominated tenant mode %v, want dynamic", got)
	}
	if got := dev.FTL().TenantMode(1); got != ftl.StaticAlloc {
		t.Errorf("read-dominated tenant mode %v, want static", got)
	}
	// Non-hybrid: everything static.
	if err := Apply(dev, alloc.Strategy{Kind: alloc.Isolated}, traits, false); err != nil {
		t.Fatal(err)
	}
	if got := dev.FTL().TenantMode(0); got != ftl.StaticAlloc {
		t.Errorf("non-hybrid mode %v, want static", got)
	}
}

func TestNewDeviceSeasonsBeforeTraffic(t *testing.T) {
	cfg := nand.EvalConfig()
	dev, err := NewDevice(RunConfig{
		Device: cfg, Options: ssd.DefaultOptions(),
		Strategy: alloc.Strategy{Kind: alloc.Shared},
		Traits:   []alloc.TenantTraits{{}},
		Season:   DefaultSeasoning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.FTL().LiveColdPages(); got == 0 {
		t.Error("seasoning left no cold data")
	}
}

func TestRunPropagatesDeviceFull(t *testing.T) {
	cfg := nand.EvalConfig()
	// A write-dominated tenant forced onto one heavily seasoned channel
	// with a working set that cannot fit must surface ErrDeviceFull. (A
	// second read-dominated tenant keeps the two-group split from
	// degenerating to Shared.)
	spec := MixSpec{
		Tenants: []TenantSpec{
			{WriteRatio: 1, Share: 0.9},
			{WriteRatio: 0, Share: 0.1},
		},
		Requests: 40000,
		IOPS:     16000,
		Seed:     1,
	}
	tr, err := spec.Build(cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunConfig{
		Device: cfg, Options: ssd.DefaultOptions(),
		Strategy: alloc.Strategy{Kind: alloc.TwoGroup, WriteChannels: 1},
		Traits:   spec.Traits(),
		Season:   Seasoning{ValidFrac: 0.9, FreeBlocks: 4, Seed: 1},
	}, tr)
	if !errors.Is(err, ftl.ErrDeviceFull) {
		t.Errorf("want ErrDeviceFull, got %v", err)
	}
}

func TestSaturationIOPSReasonable(t *testing.T) {
	cfg := nand.DefaultConfig()
	got := SaturationIOPS(cfg, 4.5)
	// 16 dies, ~150us mixed per page op incl transfer, /4.5 pages.
	if got < 10000 || got > 60000 {
		t.Errorf("saturation estimate %v implausible", got)
	}
	// More pages per request must lower the request-rate ceiling.
	if SaturationIOPS(cfg, 8) >= SaturationIOPS(cfg, 1) {
		t.Error("saturation not monotone in request size")
	}
}

func TestTotalLatencyMatchesDeviceTotal(t *testing.T) {
	cfg := nand.TinyConfig()
	spec := twoTenantSpec(0.5, 200, 2000)
	tr, err := spec.Build(cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Device: cfg, Options: ssd.DefaultOptions(),
		Strategy: alloc.Strategy{Kind: alloc.Shared}, Traits: spec.Traits(),
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if TotalLatency(res) != res.Device.Total() {
		t.Error("TotalLatency helper disagrees with Device.Total")
	}
}

func TestTraitsFromTrace(t *testing.T) {
	tr := trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Size: 1},
		{Time: 1, Tenant: 0, Op: trace.Write, Size: 1},
		{Time: 2, Tenant: 0, Op: trace.Read, Size: 1},
		{Time: 3, Tenant: 1, Op: trace.Read, Size: 1},
		{Time: 4, Tenant: 9, Op: trace.Write, Size: 1}, // outside range
	}
	traits := TraitsFromTrace(tr, 3)
	if len(traits) != 3 {
		t.Fatalf("traits len %d", len(traits))
	}
	if !traits[0].WriteDominated {
		t.Error("tenant 0 should be write-dominated (2 of 3 writes)")
	}
	if traits[1].WriteDominated {
		t.Error("tenant 1 should be read-dominated")
	}
	if traits[2].WriteDominated {
		t.Error("silent tenant 2 should default to read-dominated")
	}
}
