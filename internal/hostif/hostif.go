// Package hostif models the host-side interface of a modern multi-queue
// SSD (in the MQSim tradition the paper builds its methodology on): each
// tenant owns a submission queue, and the controller pulls from the queues
// with round-robin or weighted-round-robin arbitration under bounded
// per-tenant and device-wide in-flight budgets.
//
// Queue arbitration is the *host-visible* isolation knob, complementary to
// SSDKeeper's channel allocation inside the FTL: arbitration shapes who gets
// to submit, channel allocation shapes whom a submission can collide with.
package hostif

import (
	"fmt"
	"sort"

	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// Arbitration selects the controller's queue-service discipline.
type Arbitration uint8

// Queue-service disciplines.
const (
	// RoundRobin serves non-empty queues in cyclic order, one command
	// per turn (NVMe's default arbitration).
	RoundRobin Arbitration = iota
	// WeightedRoundRobin gives each queue Weight consecutive turns per
	// cycle (NVMe WRR with a single priority class).
	WeightedRoundRobin
	// ConflictAware dispatches, among the queue heads, the command whose
	// predicted target die currently carries the least pending work —
	// the host-side conflict-minimizing scheduling of the paper's
	// related work (Gao et al.), approximated at dispatch granularity.
	// Commands whose target cannot be predicted (dynamic-allocation
	// writes) fall back to round-robin order.
	ConflictAware
)

// Config parameterizes the host interface.
type Config struct {
	// QueueDepth bounds each tenant's in-flight commands (0 = 32).
	QueueDepth int
	// Outstanding bounds device-wide in-flight commands (0 = unbounded).
	Outstanding int
	Arbitration Arbitration
	// Weights gives per-tenant WRR weights (default 1). Ignored for
	// RoundRobin.
	Weights map[int]int
}

// queue is one tenant's submission queue.
type queue struct {
	tenant   int
	pending  []trace.Record
	inFlight int
	weight   int
	// turns counts the consecutive dispatches in the current WRR cycle.
	turns int
	// stalled counts dispatch attempts deferred because the queue was at
	// its in-flight bound (a fairness diagnostic).
	stalled uint64
	// onComplete is the completion callback every command of this queue
	// shares, created once at queue construction so dispatch allocates no
	// per-command closure.
	onComplete func(sim.Time)
}

// Host drives a device through per-tenant queues.
type Host struct {
	cfg Config
	dev *ssd.Device

	queues map[int]*queue
	order  []int // deterministic arbitration order (sorted tenants)
	next   int   // arbitration cursor into order
	total  int   // device-wide in-flight
}

// New creates a host interface over a device.
func New(dev *ssd.Device, cfg Config) (*Host, error) {
	if dev == nil {
		return nil, fmt.Errorf("hostif: nil device")
	}
	if cfg.QueueDepth < 0 || cfg.Outstanding < 0 {
		return nil, fmt.Errorf("hostif: negative bounds")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 32
	}
	for t, w := range cfg.Weights {
		if w < 1 {
			return nil, fmt.Errorf("hostif: tenant %d weight %d < 1", t, w)
		}
	}
	return &Host{
		cfg:    cfg,
		dev:    dev,
		queues: make(map[int]*queue),
	}, nil
}

// queueOf returns (creating if needed) a tenant's queue.
func (h *Host) queueOf(tenant int) *queue {
	q, ok := h.queues[tenant]
	if !ok {
		w := 1
		if h.cfg.Arbitration == WeightedRoundRobin {
			if cw, has := h.cfg.Weights[tenant]; has {
				w = cw
			}
		}
		q = &queue{tenant: tenant, weight: w}
		q.onComplete = func(sim.Time) {
			q.inFlight--
			h.total--
			// Completion frees budget; keep the pipeline full.
			_ = h.dispatch()
		}
		h.queues[tenant] = q
		h.order = append(h.order, tenant)
		sort.Ints(h.order)
	}
	return q
}

// enqueue adds a record to its tenant's queue and tries to dispatch.
func (h *Host) enqueue(r trace.Record) error {
	q := h.queueOf(r.Tenant)
	q.pending = append(q.pending, r)
	return h.dispatch()
}

// dispatch pulls commands from the queues under the arbitration discipline
// until bounds bind or all queues are dry.
func (h *Host) dispatch() error {
	if len(h.order) == 0 {
		return nil
	}
	// One full scan with no progress means every queue is empty or at
	// its bound.
	idle := 0
	for idle < len(h.order) {
		if h.cfg.Outstanding > 0 && h.total >= h.cfg.Outstanding {
			// The device-wide bound defers every queue that still holds
			// work; charge those stalls too, or an Outstanding-bound host
			// looks stall-free no matter how starved its tenants are.
			for _, t := range h.order {
				if q := h.queues[t]; len(q.pending) > 0 {
					q.stalled++
				}
			}
			return nil
		}
		tenant := h.order[h.next%len(h.order)]
		if h.cfg.Arbitration == ConflictAware {
			if best, ok := h.coolestHead(); ok {
				tenant = best
			}
		}
		q := h.queues[tenant]
		if len(q.pending) == 0 || q.inFlight >= h.cfg.QueueDepth {
			if len(q.pending) > 0 {
				q.stalled++
			}
			q.turns = 0
			h.next++
			idle++
			continue
		}
		r := q.pending[0]
		q.pending = q.pending[1:]
		q.inFlight++
		h.total++
		if err := h.dev.SubmitAt(r, r.Time, q.onComplete); err != nil {
			return err
		}
		idle = 0
		q.turns++
		limit := 1
		if h.cfg.Arbitration == WeightedRoundRobin {
			limit = q.weight
		}
		if q.turns >= limit {
			q.turns = 0
			h.next++
		}
	}
	return nil
}

// coolestHead returns the dispatchable tenant whose head command's first
// page targets the least-loaded predicted die. ok is false when no head has
// a predictable target (then the caller keeps round-robin order).
func (h *Host) coolestHead() (tenant int, ok bool) {
	pageSize := int64(h.dev.Config().PageSize)
	f := h.dev.FTL()
	var bestLoad sim.Time
	for _, t := range h.order {
		q := h.queues[t]
		if len(q.pending) == 0 || q.inFlight >= h.cfg.QueueDepth {
			continue
		}
		r := q.pending[0]
		k := ftl.Key{Tenant: r.Tenant, LPN: r.Offset / pageSize}
		die, predictable := f.PredictDie(k, r.Op == trace.Write)
		if !predictable {
			continue
		}
		load := h.dev.DieLoad(die)
		if !ok || load < bestLoad {
			tenant, bestLoad, ok = t, load, true
		}
	}
	return tenant, ok
}

// Run replays a trace through the queued interface and returns the device
// result. Arrivals enter their tenant's queue at their trace timestamps;
// response latency includes any queueing the arbitration imposes.
func (h *Host) Run(t trace.Trace) (ssd.Result, error) {
	if err := t.Validate(); err != nil {
		return ssd.Result{}, err
	}
	eng := h.dev.Engine()
	var submitErr error
	// One injection closure for the whole replay, scheduled through the
	// typed fast path with the record index as the event argument.
	var inject func(arg uint64)
	inject = func(arg uint64) {
		i := int(arg)
		if i >= len(t) || submitErr != nil {
			return
		}
		if err := h.enqueue(t[i]); err != nil {
			submitErr = err
			return
		}
		if i+1 < len(t) {
			eng.ScheduleCall(t[i+1].Time, inject, arg+1)
		}
	}
	if len(t) > 0 {
		eng.ScheduleCall(t[0].Time, inject, 0)
	}
	eng.Run()
	if submitErr != nil {
		return ssd.Result{}, submitErr
	}
	// Everything must have drained: queues empty, nothing in flight.
	for tenant, q := range h.queues {
		if len(q.pending) > 0 || q.inFlight > 0 {
			return ssd.Result{}, fmt.Errorf("hostif: tenant %d queue not drained", tenant)
		}
	}
	res := resultOf(h.dev, len(t))
	return res, nil
}

// TenantStalls is one tenant's deferred-dispatch count.
type TenantStalls struct {
	Tenant int
	Stalls uint64
}

// Stalls reports how many dispatch attempts each tenant's queue deferred (a
// fairness diagnostic). The snapshot covers every tenant that has enqueued
// at least once — stalled or not — in ascending tenant order, so repeated
// calls and repeated runs render identically.
func (h *Host) Stalls() []TenantStalls {
	out := make([]TenantStalls, 0, len(h.order))
	for _, t := range h.order {
		out = append(out, TenantStalls{Tenant: t, Stalls: h.queues[t].stalled})
	}
	return out
}

// resultOf assembles a device result the way ssd.Run does after a manual
// drive of the engine.
func resultOf(dev *ssd.Device, requests int) ssd.Result {
	return dev.Snapshot(requests)
}
