package hostif

import (
	"testing"

	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// newDevice builds a device through the simulation-run layer, as production
// callers do.
func newDevice(cfg nand.Config) (*ssd.Device, error) {
	sess, err := simrun.NewRunner().NewSession(simrun.Config{
		Device: cfg, Options: ssd.DefaultOptions(),
	})
	if err != nil {
		return nil, err
	}
	return sess.Device(), nil
}

func device(t *testing.T) *ssd.Device {
	t.Helper()
	d, err := newDevice(nand.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// burst builds n simultaneous single-page writes for a tenant, with
// distinct offsets.
func burst(cfg nand.Config, tenant, n int, at sim.Time) trace.Trace {
	var tr trace.Trace
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Record{
			Time: at, Tenant: tenant, Op: trace.Write,
			Offset: int64(tenant*1000+i) * int64(cfg.PageSize), Size: cfg.PageSize,
		})
	}
	return tr
}

func TestHostRunsEverything(t *testing.T) {
	dev := device(t)
	cfg := dev.Config()
	h, err := New(dev, Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Merge(burst(cfg, 0, 50, 0), burst(cfg, 1, 50, 0))
	res, err := h.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device.Write.Count != 100 {
		t.Errorf("completed %d of 100", res.Device.Write.Count)
	}
}

func TestConfigValidation(t *testing.T) {
	dev := device(t)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := New(dev, Config{QueueDepth: -1}); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := New(dev, Config{Weights: map[int]int{0: 0}}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestQueueDepthBoundsPerTenantInFlight(t *testing.T) {
	dev := device(t)
	cfg := dev.Config()
	h, err := New(dev, Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A tenant bursting 10 writes with depth 1 serializes them.
	res, err := h.Run(burst(cfg, 0, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	serial := 10 * (cfg.XferLatency + cfg.WriteLatency)
	if res.Device.Write.Max < serial {
		t.Errorf("max latency %v; depth-1 should serialize to >= %v",
			res.Device.Write.Max, serial)
	}
}

func TestRoundRobinIsFairUnderSymmetricLoad(t *testing.T) {
	dev := device(t)
	cfg := dev.Config()
	h, err := New(dev, Config{QueueDepth: 2, Outstanding: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Merge(burst(cfg, 0, 40, 0), burst(cfg, 1, 40, 0))
	res, err := h.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	a := res.PerTenant[0].Write.Mean()
	b := res.PerTenant[1].Write.Mean()
	ratio := a / b
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("round robin unfair: tenant means %v vs %v", a, b)
	}
}

func TestWeightedRoundRobinFavorsHeavyTenant(t *testing.T) {
	cfg := nand.TinyConfig()
	run := func(weights map[int]int, arb Arbitration) (heavy, light float64) {
		d, err := newDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := New(d, Config{
			QueueDepth:  8,
			Outstanding: 4, // scarce: arbitration decides who goes
			Arbitration: arb,
			Weights:     weights,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Merge(burst(cfg, 0, 60, 0), burst(cfg, 1, 60, 0))
		res, err := h.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTenant[0].Write.Mean(), res.PerTenant[1].Write.Mean()
	}
	fairHeavy, fairLight := run(nil, RoundRobin)
	wrrHeavy, wrrLight := run(map[int]int{0: 4, 1: 1}, WeightedRoundRobin)
	// With weight 4, tenant 0's mean latency must improve relative to
	// tenant 1 compared to fair arbitration.
	fairRatio := fairHeavy / fairLight
	wrrRatio := wrrHeavy / wrrLight
	if wrrRatio >= fairRatio {
		t.Errorf("WRR did not favor the weighted tenant: ratio %v (WRR) vs %v (RR)",
			wrrRatio, fairRatio)
	}
}

func TestOutstandingBoundsDeviceWideInFlight(t *testing.T) {
	dev := device(t)
	cfg := dev.Config()
	h, err := New(dev, Config{QueueDepth: 32, Outstanding: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Merge(burst(cfg, 0, 5, 0), burst(cfg, 1, 5, 0))
	res, err := h.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Fully serialized across the whole device.
	serial := 10 * (cfg.XferLatency + cfg.WriteLatency)
	if res.Makespan < serial {
		t.Errorf("makespan %v < fully serialized %v", res.Makespan, serial)
	}
}

func TestArrivalsSpreadOverTime(t *testing.T) {
	dev := device(t)
	cfg := dev.Config()
	h, err := New(dev, Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var tr trace.Trace
	for i := 0; i < 20; i++ {
		tr = append(tr, trace.Record{
			Time: sim.Time(i) * 300 * sim.Microsecond, Tenant: 0,
			Op: trace.Write, Offset: int64(i) * int64(cfg.PageSize), Size: cfg.PageSize,
		})
	}
	res, err := h.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Paced arrivals under a generous depth: close to uncontended.
	base := (cfg.XferLatency + cfg.WriteLatency).Micros()
	if res.Device.Write.Mean() > 2*base {
		t.Errorf("paced arrivals too slow: %v vs base %v", res.Device.Write.Mean(), base)
	}
	for _, s := range h.Stalls() {
		if s.Stalls > 0 {
			t.Errorf("paced workload stalled: %v", h.Stalls())
		}
	}
}

func TestStallsEmptyHost(t *testing.T) {
	dev := device(t)
	h, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// No tenant ever enqueued: the snapshot is empty, and running an empty
	// trace must neither panic nor invent queues.
	if got := h.Stalls(); len(got) != 0 {
		t.Errorf("stalls before any traffic: %v", got)
	}
	if _, err := h.Run(trace.Trace{}); err != nil {
		t.Fatal(err)
	}
	if got := h.Stalls(); len(got) != 0 {
		t.Errorf("stalls after empty run: %v", got)
	}
}

func TestStallsSingleTenantDeterministic(t *testing.T) {
	cfg := nand.TinyConfig()
	run := func() []TenantStalls {
		d, err := newDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := New(d, Config{QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Run(burst(cfg, 3, 20, 0)); err != nil {
			t.Fatal(err)
		}
		return h.Stalls()
	}
	got := run()
	if len(got) != 1 || got[0].Tenant != 3 {
		t.Fatalf("single-tenant snapshot %v, want exactly tenant 3", got)
	}
	// Depth 1 with a 20-deep burst must defer dispatches.
	if got[0].Stalls == 0 {
		t.Error("depth-1 burst recorded no stalls")
	}
	again := run()
	if len(again) != 1 || again[0] != got[0] {
		t.Errorf("snapshot not deterministic across runs: %v vs %v", got, again)
	}
}

func TestStallsAllStalledOrderedSnapshot(t *testing.T) {
	cfg := nand.TinyConfig()
	run := func() []TenantStalls {
		d, err := newDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Outstanding 1 over four bursting tenants: at any instant three
		// queues hold work they cannot dispatch, so every tenant stalls.
		h, err := New(d, Config{QueueDepth: 8, Outstanding: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Merge(burst(cfg, 2, 10, 0), burst(cfg, 0, 10, 0),
			burst(cfg, 3, 10, 0), burst(cfg, 1, 10, 0))
		if _, err := h.Run(tr); err != nil {
			t.Fatal(err)
		}
		return h.Stalls()
	}
	got := run()
	if len(got) != 4 {
		t.Fatalf("snapshot %v, want all four tenants", got)
	}
	for i, s := range got {
		if s.Tenant != i {
			t.Errorf("snapshot position %d holds tenant %d; want ascending tenant order (%v)", i, s.Tenant, got)
		}
		if s.Stalls == 0 {
			t.Errorf("tenant %d never stalled under Outstanding=1 contention", s.Tenant)
		}
	}
	again := run()
	for i := range got {
		if again[i] != got[i] {
			t.Errorf("snapshot not deterministic across runs: %v vs %v", got, again)
			break
		}
	}
}

func TestRejectsInvalidTrace(t *testing.T) {
	dev := device(t)
	h, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := trace.Trace{{Time: 10, Size: 1}, {Time: 0, Size: 1}}
	if _, err := h.Run(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestConflictAwareAvoidsHotDie(t *testing.T) {
	cfg := nand.TinyConfig()
	run := func(arb Arbitration) float64 {
		d, err := newDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Tenant 0 confined to channel 0 (hot); tenant 1 to channel 4
		// (cold).
		if err := d.FTL().SetTenantChannels(0, []int{0}); err != nil {
			t.Fatal(err)
		}
		if err := d.FTL().SetTenantChannels(1, []int{4}); err != nil {
			t.Fatal(err)
		}
		h, err := New(d, Config{QueueDepth: 8, Outstanding: 2, Arbitration: arb})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Merge(burst(cfg, 0, 30, 0), burst(cfg, 1, 30, 0))
		res, err := h.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.Device.Total()
	}
	rr := run(RoundRobin)
	ca := run(ConflictAware)
	// Conflict-aware dispatch must not be worse than blind round-robin on
	// this die-skewed workload, and typically improves it.
	if ca > rr*1.05 {
		t.Errorf("conflict-aware (%v) worse than round-robin (%v)", ca, rr)
	}
}

func TestConflictAwareFallsBackForDynamicWrites(t *testing.T) {
	cfg := nand.TinyConfig()
	d, err := newDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.FTL().SetTenantMode(0, ftl.DynamicAlloc)
	h, err := New(d, Config{Arbitration: ConflictAware})
	if err != nil {
		t.Fatal(err)
	}
	// Unpredictable targets must still dispatch (via round-robin path).
	res, err := h.Run(burst(cfg, 0, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Device.Write.Count != 10 {
		t.Errorf("completed %d of 10 dynamic writes", res.Device.Write.Count)
	}
}
