package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMSR drives the trace parser with arbitrary input: it must never
// panic, and whatever it accepts must round-trip through WriteMSR.
func FuzzReadMSR(f *testing.F) {
	f.Add("100,hostA,0,Read,0,4096,0\n110,hostB,0,Write,4096,8192,0\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("junk")
	f.Add("100,h,0,Read,0,4096\n") // 6 fields, no response time
	f.Add("100,h,0,w,0,1,0\n")     // shorthand op
	f.Add("9999999999999,h,0,Read,0,1,0\n")
	f.Add("100,h,0,Read,-5,1,0\n")
	f.Add("0,,,R,0,0") // regression: zero-size record must be rejected

	f.Fuzz(func(t *testing.T, in string) {
		tr, tenants, err := ReadMSR(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted traces must satisfy the package invariants.
		if vErr := tr.Validate(); vErr != nil {
			t.Fatalf("accepted trace fails validation: %v", vErr)
		}
		if len(tenants) > len(tr) {
			t.Fatalf("more tenants (%d) than records (%d)", len(tenants), len(tr))
		}
		// Round trip what was accepted.
		var buf bytes.Buffer
		if err := WriteMSR(&buf, tr); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, _, err := ReadMSR(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed record count: %d -> %d", len(tr), len(back))
		}
	})
}

// FuzzGenerate drives the synthetic generator with arbitrary profile
// numbers; accepted profiles must produce valid traces of the right length.
func FuzzGenerate(f *testing.F) {
	f.Add(0.5, 100, 1000.0, int64(1<<26), 0.3, 1, 4, int64(7))
	f.Fuzz(func(t *testing.T, ratio float64, count int, iops float64,
		addr int64, seq float64, minP, maxP int, seed int64) {
		if count > 5000 {
			count = 5000 // bound fuzz runtime
		}
		p := Profile{
			Name: "fuzz", WriteRatio: ratio, Count: count, IOPS: iops,
			Address: addr, SeqProb: seq, MinPages: minP, MaxPages: maxP,
			PageSize: 4096, Seed: seed,
		}
		tr, err := Generate(p)
		if err != nil {
			return
		}
		if len(tr) != count {
			t.Fatalf("generated %d records, want %d", len(tr), count)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generated trace invalid: %v", err)
		}
	})
}
