package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ssdkeeper/internal/sim"
)

// The MSR Cambridge trace CSV format is
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows filetime (100ns ticks since 1601) and Type is
// "Read" or "Write". ReadMSR normalizes timestamps so the first record is at
// zero simulated time; WriteMSR is its inverse (starting at tick 0).

const filetimeTick = 100 * sim.Nanosecond

// ReadMSR parses an MSR-format CSV stream. Hostnames are mapped to tenant
// IDs in order of first appearance; the mapping is returned alongside the
// trace. Blank lines are skipped. ResponseTime (the 7th field) is optional
// and ignored — the simulator produces its own response times.
func ReadMSR(r io.Reader) (Trace, map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out Trace
	tenants := map[string]int{}
	var base int64
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 6 {
			return nil, nil, fmt.Errorf("trace: line %d: want >=6 fields, got %d", line, len(fields))
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: bad timestamp: %v", line, err)
		}
		if first {
			base = ts
			first = false
		}
		if ts < base {
			return nil, nil, fmt.Errorf("trace: line %d: timestamp goes backwards", line)
		}
		host := fields[1]
		tenant, ok := tenants[host]
		if !ok {
			tenant = len(tenants)
			tenants[host] = tenant
		}
		var op Op
		switch strings.ToLower(fields[3]) {
		case "read", "r":
			op = Read
		case "write", "w":
			op = Write
		default:
			return nil, nil, fmt.Errorf("trace: line %d: unknown type %q", line, fields[3])
		}
		off, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: bad offset: %v", line, err)
		}
		if off < 0 {
			return nil, nil, fmt.Errorf("trace: line %d: negative offset %d", line, off)
		}
		size, err := strconv.Atoi(fields[5])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: bad size: %v", line, err)
		}
		if size <= 0 {
			return nil, nil, fmt.Errorf("trace: line %d: non-positive size %d", line, size)
		}
		out = append(out, Record{
			Time:   sim.Time(ts-base) * filetimeTick,
			Tenant: tenant,
			Op:     op,
			Offset: off,
			Size:   size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, tenants, nil
}

// WriteMSR serializes a trace in MSR CSV format. Tenant n is written with
// hostname "tenant_n"; response time is written as 0.
func WriteMSR(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		ticks := int64(r.Time / filetimeTick)
		if _, err := fmt.Fprintf(bw, "%d,tenant_%d,0,%s,%d,%d,0\n",
			ticks, r.Tenant, r.Op, r.Offset, r.Size); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}
