package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ssdkeeper/internal/sim"
)

func TestValidateOrderingAndFields(t *testing.T) {
	good := Trace{
		{Time: 0, Op: Read, Offset: 0, Size: 4096},
		{Time: 10, Op: Write, Offset: 4096, Size: 4096},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []Trace{
		{{Time: 10, Size: 1}, {Time: 5, Size: 1}}, // out of order
		{{Time: 0, Size: 0}},                      // zero size
		{{Time: 0, Size: 1, Offset: -1}},          // negative offset
		{{Time: 0, Size: 1, Tenant: -2}},          // negative tenant
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := Trace{
		{Time: 0, Tenant: 0, Op: Read, Size: 100},
		{Time: 10, Tenant: 1, Op: Write, Size: 200},
		{Time: 30, Tenant: 0, Op: Write, Size: 300},
		{Time: 50, Tenant: 2, Op: Write, Size: 400},
	}
	s := tr.Summarize()
	if s.Requests != 4 || s.Reads != 1 || s.Writes != 3 {
		t.Errorf("counts wrong: %+v", s)
	}
	if math.Abs(s.WriteRatio-0.75) > 1e-12 {
		t.Errorf("write ratio = %v, want 0.75", s.WriteRatio)
	}
	if s.Bytes != 1000 || s.Span != 50 || s.Tenants != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
}

func TestRetagShiftHead(t *testing.T) {
	tr := Trace{{Time: 5, Tenant: 0, Size: 1}, {Time: 9, Tenant: 0, Size: 1}}
	tagged := tr.Retag(3)
	if tagged[0].Tenant != 3 || tagged[1].Tenant != 3 {
		t.Error("retag failed")
	}
	if tr[0].Tenant != 0 {
		t.Error("retag mutated original")
	}
	shifted := tr.Shift(100)
	if shifted[0].Time != 105 || tr[0].Time != 5 {
		t.Error("shift wrong or mutated original")
	}
	if got := len(tr.Head(1)); got != 1 {
		t.Errorf("head(1) len = %d", got)
	}
	if got := len(tr.Head(99)); got != 2 {
		t.Errorf("head(99) len = %d", got)
	}
}

func TestMergeChronological(t *testing.T) {
	a := Trace{{Time: 0, Tenant: 0, Size: 1}, {Time: 20, Tenant: 0, Size: 1}}
	b := Trace{{Time: 10, Tenant: 1, Size: 1}, {Time: 15, Tenant: 1, Size: 1}}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d records, want 4", len(m))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged trace invalid: %v", err)
	}
	wantTenants := []int{0, 1, 1, 0}
	for i, r := range m {
		if r.Tenant != wantTenants[i] {
			t.Errorf("record %d tenant %d, want %d", i, r.Tenant, wantTenants[i])
		}
	}
}

func TestMergePreservesEqualTimestampOrder(t *testing.T) {
	a := Trace{{Time: 10, Tenant: 0, Size: 1}}
	b := Trace{{Time: 10, Tenant: 1, Size: 1}}
	m := Merge(a, b)
	if m[0].Tenant != 0 || m[1].Tenant != 1 {
		t.Error("equal timestamps should keep input order")
	}
}

func TestMergePropertyCountAndOrder(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := make(Trace, len(xs))
		var at sim.Time
		for i, x := range xs {
			at += sim.Time(x)
			a[i] = Record{Time: at, Tenant: 0, Size: 1}
		}
		b := make(Trace, len(ys))
		at = 0
		for i, y := range ys {
			at += sim.Time(y)
			b[i] = Record{Time: at, Tenant: 1, Size: 1}
		}
		m := Merge(a, b)
		return len(m) == len(a)+len(b) && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministicAndWellFormed(t *testing.T) {
	p := Profile{
		Name: "t", WriteRatio: 0.3, Count: 2000, IOPS: 10000,
		Address: 1 << 30, SeqProb: 0.3, MinPages: 1, MaxPages: 8,
		PageSize: 16384, Seed: 7,
	}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2000 {
		t.Fatalf("generated %d records", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	s := a.Summarize()
	if math.Abs(s.WriteRatio-0.3) > 0.05 {
		t.Errorf("write ratio %v too far from 0.3", s.WriteRatio)
	}
	// Rate check: 2000 requests at 10K IOPS should take about 0.2s.
	gotSec := float64(s.Span) / float64(sim.Second)
	if gotSec < 0.1 || gotSec > 0.4 {
		t.Errorf("span %.3fs, want about 0.2s", gotSec)
	}
	for _, r := range a {
		if r.Offset%int64(p.PageSize) != 0 {
			t.Fatal("offset not page aligned")
		}
		if r.Size < p.PageSize || r.Size > p.MaxPages*p.PageSize {
			t.Fatalf("size %d outside [1,8] pages", r.Size)
		}
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	base := Profile{Name: "x", WriteRatio: 0.5, Count: 10, IOPS: 100,
		Address: 1 << 20, MinPages: 1, MaxPages: 4, PageSize: 4096}
	muts := []func(*Profile){
		func(p *Profile) { p.WriteRatio = 1.5 },
		func(p *Profile) { p.Count = 0 },
		func(p *Profile) { p.IOPS = 0 },
		func(p *Profile) { p.PageSize = 0 },
		func(p *Profile) { p.MinPages = 0 },
		func(p *Profile) { p.MaxPages = 0 },
		func(p *Profile) { p.Address = 1 },
		func(p *Profile) { p.SeqProb = 2 },
	}
	for i, mut := range muts {
		p := base
		mut(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTableIIProfiles(t *testing.T) {
	profiles := TableII(0.001, 16384, 42)
	if len(profiles) != 6 {
		t.Fatalf("TableII returned %d profiles", len(profiles))
	}
	wantRatios := map[string]float64{
		"mds_0": 0.88, "mds_1": 0.07, "rsrch_0": 0.91,
		"prxy_0": 0.97, "src_1": 0.05, "web_2": 0.01,
	}
	for name, ratio := range wantRatios {
		p, ok := profiles[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if p.WriteRatio != ratio {
			t.Errorf("%s write ratio %v, want %v", name, p.WriteRatio, ratio)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Relative intensity ordering must match Table II request counts.
	if !(profiles["src_1"].IOPS > profiles["prxy_0"].IOPS &&
		profiles["prxy_0"].IOPS > profiles["web_2"].IOPS &&
		profiles["web_2"].IOPS > profiles["mds_1"].IOPS) {
		t.Error("intensity ordering does not match Table II")
	}
	for _, name := range TableIINames() {
		if _, ok := profiles[name]; !ok {
			t.Errorf("TableIINames lists %s but TableII lacks it", name)
		}
	}
}

func TestBuildMixTagsAndTruncates(t *testing.T) {
	profiles := TableII(0.0001, 16384, 1)
	mix, err := BuildMix(Mixes()[1], profiles, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 500 {
		t.Fatalf("mix has %d records, want 500", len(mix))
	}
	seen := map[int]bool{}
	for _, r := range mix {
		seen[r.Tenant] = true
	}
	for tenant := 0; tenant < 4; tenant++ {
		if !seen[tenant] {
			t.Errorf("tenant %d absent from mix", tenant)
		}
	}
}

func TestMSRRoundTrip(t *testing.T) {
	orig := Trace{
		{Time: 0, Tenant: 0, Op: Read, Offset: 16384, Size: 4096},
		{Time: 250 * sim.Microsecond, Tenant: 1, Op: Write, Offset: 0, Size: 8192},
		{Time: sim.Millisecond, Tenant: 0, Op: Write, Offset: 32768, Size: 16384},
	}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, tenants, err := ReadMSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Errorf("tenant map %v, want 2 hosts", tenants)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("record %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestReadMSRRejectsGarbage(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Read,0,4096,0\n",
		"100,h,0,Frobnicate,0,4096,0\n",
		"100,h,0\n",
		"100,h,0,Read,xyz,4096,0\n",
		"100,h,0,Read,0,xyz,0\n",
		"200,h,0,Read,0,1,0\n100,h,0,Read,0,1,0\n", // backwards time
	}
	for i, c := range cases {
		if _, _, err := ReadMSR(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadMSRSkipsBlankLinesAndNormalizesBase(t *testing.T) {
	in := "\n1000,hostA,0,Read,0,4096,0\n\n1010,hostB,0,w,4096,4096,0\n"
	tr, tenants, err := ReadMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("parsed %d records", len(tr))
	}
	if tr[0].Time != 0 {
		t.Errorf("first time = %v, want 0 (normalized)", tr[0].Time)
	}
	if tr[1].Time != 1*sim.Microsecond {
		t.Errorf("second time = %v, want 1us (10 filetime ticks)", tr[1].Time)
	}
	if tenants["hostA"] != 0 || tenants["hostB"] != 1 {
		t.Errorf("tenant map %v", tenants)
	}
	if tr[1].Op != Write {
		t.Error("lowercase 'w' should parse as Write")
	}
}

func TestSortByTime(t *testing.T) {
	tr := Trace{{Time: 30, Size: 1}, {Time: 10, Size: 1}, {Time: 20, Size: 1}}
	SortByTime(tr)
	if err := tr.Validate(); err != nil {
		t.Errorf("sorted trace invalid: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "Read" || Write.String() != "Write" {
		t.Error("op strings wrong")
	}
}

func TestPerTenant(t *testing.T) {
	tr := Trace{
		{Time: 0, Tenant: 0, Op: Read, Size: 100},
		{Time: 1, Tenant: 1, Op: Write, Size: 200},
		{Time: 2, Tenant: 0, Op: Write, Size: 300},
	}
	per := tr.PerTenant()
	if len(per) != 2 {
		t.Fatalf("per-tenant map has %d entries", len(per))
	}
	if per[0].Requests != 2 || per[0].Writes != 1 {
		t.Errorf("tenant 0 stats %+v", per[0])
	}
	if per[1].Requests != 1 || per[1].WriteRatio != 1 {
		t.Errorf("tenant 1 stats %+v", per[1])
	}
}

func TestWindows(t *testing.T) {
	w := 10 * sim.Millisecond
	tr := Trace{
		{Time: 0, Op: Read, Size: 1},
		{Time: 5 * sim.Millisecond, Op: Write, Size: 1},
		// nothing in [10ms, 20ms)
		{Time: 25 * sim.Millisecond, Op: Write, Size: 1},
	}
	wins := tr.Windows(w)
	if len(wins) != 3 {
		t.Fatalf("windows %d, want 3", len(wins))
	}
	if wins[0].Requests != 2 || wins[1].Requests != 0 || wins[2].Requests != 1 {
		t.Errorf("window counts %d/%d/%d", wins[0].Requests, wins[1].Requests, wins[2].Requests)
	}
	if tr.Windows(0) != nil || Trace(nil).Windows(w) != nil {
		t.Error("degenerate inputs should return nil")
	}
}
