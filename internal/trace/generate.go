package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"ssdkeeper/internal/sim"
)

// Profile parameterizes a synthetic workload generator. Generated traces are
// deterministic functions of the profile (including Seed).
type Profile struct {
	Name       string
	WriteRatio float64 // fraction of requests that are writes, in [0,1]
	Count      int     // number of requests to generate
	IOPS       float64 // mean arrival rate (Poisson arrivals)
	Address    int64   // addressable bytes (logical space of the tenant)
	SeqProb    float64 // probability a request continues the previous one
	MinPages   int     // request size lower bound, in pages
	MaxPages   int     // request size upper bound, in pages
	PageSize   int     // bytes per page, for size/alignment
	// Burstiness in [0,1] shapes arrivals: 0 is pure Poisson; larger
	// values compress most inter-arrival gaps and stretch the rest,
	// preserving the mean rate while clustering requests the way real
	// block traces do. Access conflicts — the phenomenon the paper
	// optimizes — are driven by exactly these clusters.
	Burstiness float64
	Seed       int64
}

// Validate reports the first invalid field.
func (p Profile) Validate() error {
	switch {
	case p.WriteRatio < 0 || p.WriteRatio > 1:
		return fmt.Errorf("trace: profile %q: WriteRatio %v outside [0,1]", p.Name, p.WriteRatio)
	case p.Count <= 0:
		return fmt.Errorf("trace: profile %q: Count must be positive", p.Name)
	case p.IOPS <= 0:
		return fmt.Errorf("trace: profile %q: IOPS must be positive", p.Name)
	case p.PageSize <= 0:
		return fmt.Errorf("trace: profile %q: PageSize must be positive", p.Name)
	case p.MinPages <= 0 || p.MaxPages < p.MinPages:
		return fmt.Errorf("trace: profile %q: bad page range [%d,%d]", p.Name, p.MinPages, p.MaxPages)
	case p.Address < int64(p.MaxPages)*int64(p.PageSize):
		return fmt.Errorf("trace: profile %q: address space smaller than max request", p.Name)
	case p.SeqProb < 0 || p.SeqProb > 1:
		return fmt.Errorf("trace: profile %q: SeqProb %v outside [0,1]", p.Name, p.SeqProb)
	case p.Burstiness < 0 || p.Burstiness > 1:
		return fmt.Errorf("trace: profile %q: Burstiness %v outside [0,1]", p.Name, p.Burstiness)
	}
	return nil
}

// Generate produces a synthetic single-tenant trace (tenant 0; use Retag to
// assign). Arrivals are Poisson with rate IOPS; the read/write decision,
// request size (uniform in [MinPages, MaxPages]) and addresses (sequential
// with probability SeqProb, else uniform page-aligned) are drawn from a
// seeded PRNG, so identical profiles generate identical traces.
func Generate(p Profile) (Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	out := make(Trace, 0, p.Count)
	meanIat := float64(sim.Second) / p.IOPS
	// Two-state gap scaling: a fraction q of gaps are shrunk by factor
	// `short`, the rest stretched by `long`, chosen so the mean gap (and
	// therefore the overall IOPS) is unchanged: q*short+(1-q)*long = 1.
	const q = 0.8
	short := 1 - 0.9*p.Burstiness
	long := (1 - q*short) / (1 - q)
	var now sim.Time
	pages := p.Address / int64(p.PageSize)
	var nextSeq int64
	for i := 0; i < p.Count; i++ {
		gap := rng.ExpFloat64() * meanIat
		if rng.Float64() < q {
			gap *= short
		} else {
			gap *= long
		}
		now += sim.Time(gap)
		op := Read
		if rng.Float64() < p.WriteRatio {
			op = Write
		}
		n := p.MinPages
		if p.MaxPages > p.MinPages {
			n += rng.Intn(p.MaxPages - p.MinPages + 1)
		}
		var page int64
		if rng.Float64() < p.SeqProb && nextSeq+int64(n) <= pages {
			page = nextSeq
		} else {
			page = rng.Int63n(pages - int64(n) + 1)
		}
		nextSeq = page + int64(n)
		out = append(out, Record{
			Time:   now,
			Op:     op,
			Offset: page * int64(p.PageSize),
			Size:   n * p.PageSize,
		})
	}
	return out, nil
}

// TableII returns synthetic equivalents of the paper's six evaluated MSR
// workloads, keyed by name. Request counts are the paper's Table II values
// multiplied by scale (clamped to at least 100); arrival rates are the real
// counts spread over one compressed week so relative intensities between the
// workloads are preserved (src_1 and prxy_0 dominate, exactly as in the
// paper's mixes).
func TableII(scale float64, pageSize int, seed int64) map[string]Profile {
	type row struct {
		name       string
		writeRatio float64
		count      int
	}
	rows := []row{
		{"mds_0", 0.88, 1211034},
		{"mds_1", 0.07, 1637711},
		{"rsrch_0", 0.91, 1433654},
		{"prxy_0", 0.97, 12518968},
		{"src_1", 0.05, 45746222},
		{"web_2", 0.01, 5175367},
	}
	// The MSR traces each span one week. Compressing that week by 250x
	// turns the per-workload request counts into rates between ~0.5K and
	// ~19K IOPS, so the heaviest mix (Mix2) approaches channel saturation
	// on the Table I device while the lightest (Mix1) stays gentle — the
	// regime the paper's intensity levels are defined over.
	const compressedWeek = 2419.2 // seconds
	out := make(map[string]Profile, len(rows))
	for i, r := range rows {
		count := int(float64(r.count) * scale)
		if count < 100 {
			count = 100
		}
		out[r.name] = Profile{
			Name:       r.name,
			WriteRatio: r.writeRatio,
			Count:      count,
			IOPS:       float64(r.count) / compressedWeek,
			Address:    64 << 20, // hot working set per tenant
			SeqProb:    0.3,
			MinPages:   1,
			MaxPages:   4,
			PageSize:   pageSize,
			Burstiness: 0.8, // block traces are heavily clustered
			Seed:       seed + int64(i)*7919,
		}
	}
	return out
}

// TableIINames returns the workload names in the paper's Table II order.
func TableIINames() []string {
	return []string{"mds_0", "mds_1", "rsrch_0", "prxy_0", "src_1", "web_2"}
}

// Mixes returns the paper's Table IV tenant compositions, in order
// Mix1..Mix4. Each entry lists the four Table II workload names; tenant i of
// the mix runs the i-th workload.
func Mixes() [][4]string {
	return [][4]string{
		{"mds_0", "mds_1", "rsrch_0", "prxy_0"},
		{"prxy_0", "src_1", "rsrch_0", "mds_1"},
		{"web_2", "rsrch_0", "prxy_0", "mds_0"},
		{"rsrch_0", "web_2", "mds_1", "prxy_0"},
	}
}

// BuildMix generates the named Table II workloads, tags them as tenants
// 0..3, merges them chronologically, and truncates to head requests (the
// paper mixes full traces then takes a 1M-request prefix).
func BuildMix(names [4]string, profiles map[string]Profile, head int) (Trace, error) {
	parts := make([]Trace, 4)
	for i, name := range names {
		p, ok := profiles[name]
		if !ok {
			return nil, fmt.Errorf("trace: unknown workload %q", name)
		}
		t, err := Generate(p)
		if err != nil {
			return nil, err
		}
		parts[i] = t.Retag(i)
	}
	mixed := Merge(parts...)
	if err := mixed.Validate(); err != nil {
		return nil, err
	}
	return mixed.Head(head), nil
}

// SortByTime sorts a trace in place by timestamp, preserving the relative
// order of equal timestamps.
func SortByTime(t Trace) {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}
