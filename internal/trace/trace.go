// Package trace defines the block-level I/O trace representation used by the
// simulator, reads and writes MSR-Cambridge-style CSV traces, and generates
// deterministic synthetic equivalents of the paper's Table II workloads.
//
// The real MSR Cambridge traces are not redistributable, so the evaluation
// uses synthetic traces whose read/write mix, intensity, and (scaled) request
// counts match Table II. SSDKeeper's features are exactly those statistics,
// so the substitution preserves the decision problem (see DESIGN.md §5).
package trace

import (
	"fmt"

	"ssdkeeper/internal/sim"
)

// Op is the request direction.
type Op uint8

// Request directions.
const (
	Read Op = iota
	Write
)

// String returns "Read" or "Write" (the MSR trace spelling).
func (o Op) String() string {
	if o == Read {
		return "Read"
	}
	return "Write"
}

// Record is one block-level I/O request. Offset and Size are in bytes;
// Tenant identifies the workload that issued the request (the paper assumes
// a workloadID is available inside the SSD, per FlashShare/MQSim).
type Record struct {
	Time   sim.Time
	Tenant int
	Op     Op
	Offset int64
	Size   int
}

// Trace is an ordered sequence of records. Invariant: non-decreasing Time.
type Trace []Record

// Validate checks the time-ordering invariant and field sanity.
func (t Trace) Validate() error {
	var prev sim.Time
	for i, r := range t {
		if r.Time < prev {
			return fmt.Errorf("trace: record %d at %v before predecessor at %v", i, r.Time, prev)
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace: record %d has non-positive size %d", i, r.Size)
		}
		if r.Offset < 0 {
			return fmt.Errorf("trace: record %d has negative offset %d", i, r.Offset)
		}
		if r.Tenant < 0 {
			return fmt.Errorf("trace: record %d has negative tenant %d", i, r.Tenant)
		}
		prev = r.Time
	}
	return nil
}

// Stats summarizes a trace the way Table II does.
type Stats struct {
	Requests   int
	Reads      int
	Writes     int
	ReadRatio  float64
	WriteRatio float64
	Bytes      int64
	Span       sim.Time // time between first and last request
	Tenants    int
}

// Summarize computes Table II-style statistics.
func (t Trace) Summarize() Stats {
	var s Stats
	seen := map[int]bool{}
	for _, r := range t {
		s.Requests++
		s.Bytes += int64(r.Size)
		if r.Op == Read {
			s.Reads++
		} else {
			s.Writes++
		}
		seen[r.Tenant] = true
	}
	if s.Requests > 0 {
		s.ReadRatio = float64(s.Reads) / float64(s.Requests)
		s.WriteRatio = float64(s.Writes) / float64(s.Requests)
		s.Span = t[len(t)-1].Time - t[0].Time
	}
	s.Tenants = len(seen)
	return s
}

// Windows partitions the trace into fixed-width time windows (starting at
// the first record) and summarizes each; empty trailing windows are not
// emitted but interior gaps produce zero-valued entries, so the slice is a
// uniform timeline. Used for intensity analysis.
func (t Trace) Windows(width sim.Time) []Stats {
	if len(t) == 0 || width <= 0 {
		return nil
	}
	base := t[0].Time
	last := int((t[len(t)-1].Time - base) / width)
	out := make([]Stats, last+1)
	buckets := make([]Trace, last+1)
	for _, r := range t {
		idx := int((r.Time - base) / width)
		buckets[idx] = append(buckets[idx], r)
	}
	for i, b := range buckets {
		out[i] = b.Summarize()
	}
	return out
}

// PerTenant computes Table II-style statistics separately for each tenant,
// keyed by tenant ID.
func (t Trace) PerTenant() map[int]Stats {
	parts := map[int]Trace{}
	for _, r := range t {
		parts[r.Tenant] = append(parts[r.Tenant], r)
	}
	out := make(map[int]Stats, len(parts))
	for id, part := range parts {
		out[id] = part.Summarize()
	}
	return out
}

// Retag returns a copy of the trace with every record assigned to tenant id.
func (t Trace) Retag(id int) Trace {
	out := make(Trace, len(t))
	for i, r := range t {
		r.Tenant = id
		out[i] = r
	}
	return out
}

// Shift returns a copy with d added to every timestamp.
func (t Trace) Shift(d sim.Time) Trace {
	out := make(Trace, len(t))
	for i, r := range t {
		r.Time += d
		out[i] = r
	}
	return out
}

// Head returns the first n records (or the whole trace if shorter), the
// paper's "take one million traces" prefix operation.
func (t Trace) Head(n int) Trace {
	if n >= len(t) {
		return t
	}
	return t[:n]
}

// Merge interleaves several traces in chronological order ("we first mix the
// four workloads in chronological order", §V.C). Records with equal
// timestamps keep the input-trace order, making mixes deterministic.
func Merge(traces ...Trace) Trace {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		best := -1
		var bestTime sim.Time
		for k, t := range traces {
			if idx[k] >= len(t) {
				continue
			}
			rt := t[idx[k]].Time
			if best == -1 || rt < bestTime {
				best, bestTime = k, rt
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out
}
