package nand

import (
	"strings"
	"testing"

	"ssdkeeper/internal/sim"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("die:ch2:die1@30s, retire:ch0:blk12@45s, retry:0.01@10s, slow:1.5@20s")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Events); got != 4 {
		t.Fatalf("parsed %d events, want 4", got)
	}
	// Events are sorted by time.
	want := []FaultEvent{
		{Kind: FaultRetryTail, Prob: 0.01, At: 10 * sim.Second},
		{Kind: FaultProgramSlowdown, Factor: 1.5, At: 20 * sim.Second},
		{Kind: FaultDieFail, Channel: 2, Die: 1, At: 30 * sim.Second},
		{Kind: FaultRetireBlock, Channel: 0, Block: 12, At: 45 * sim.Second},
	}
	for i, w := range want {
		if plan.Events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, plan.Events[i], w)
		}
	}
	if err := plan.Validate(TinyConfig()); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseFaultPlanEmpty(t *testing.T) {
	for _, s := range []string{"", "   ", ",", " , "} {
		plan, err := ParseFaultPlan(s)
		if err != nil || plan != nil {
			t.Errorf("ParseFaultPlan(%q) = %v, %v; want nil, nil", s, plan, err)
		}
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	bad := []string{
		"die:ch2:die1",         // no time
		"die:ch2@30s",          // missing die part
		"die:chX:die1@30s",     // bad channel
		"die:ch-1:die1@30s",    // negative
		"retire:ch0:12@45s",    // missing blk prefix
		"retry:1.5@10s",        // prob > 1
		"retry:x@10s",          // not a number
		"slow:0.5@10s",         // factor < 1
		"die:ch2:die1@-30s",    // negative time
		"explode:ch0:die0@10s", // unknown kind
	}
	for _, s := range bad {
		if _, err := ParseFaultPlan(s); err == nil {
			t.Errorf("ParseFaultPlan(%q) succeeded, want error", s)
		}
	}
}

func TestFaultPlanStringRoundTrip(t *testing.T) {
	const src = "retry:0.01@10s,slow:1.5@20s,die:ch2:die1@30s,retire:ch0:blk12@45s"
	plan, err := ParseFaultPlan(src)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", plan.String(), err)
	}
	if len(re.Events) != len(plan.Events) {
		t.Fatalf("round trip lost events: %q -> %q", src, plan.String())
	}
	for i := range plan.Events {
		if re.Events[i] != plan.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, re.Events[i], plan.Events[i])
		}
	}
}

func TestFaultPlanValidateGeometry(t *testing.T) {
	cfg := TinyConfig()
	bad := []FaultEvent{
		{Kind: FaultDieFail, Channel: cfg.Channels, Die: 0},
		{Kind: FaultDieFail, Channel: 0, Die: cfg.DiesPerChannel()},
		{Kind: FaultRetireBlock, Channel: 0, Block: cfg.BlocksPerPlane},
	}
	for _, ev := range bad {
		plan := &FaultPlan{Seed: 1, Events: []FaultEvent{ev}}
		if err := plan.Validate(cfg); err == nil {
			t.Errorf("Validate accepted out-of-range event %+v", ev)
		}
	}
}

func TestHealthDieAccounting(t *testing.T) {
	cfg := TinyConfig()
	h := NewHealth(cfg, &FaultPlan{Seed: 1})
	if h.LiveDieFrac() != 1 || h.LiveDies() != cfg.TotalDies() {
		t.Fatalf("fresh health not fully live: frac %v dies %d", h.LiveDieFrac(), h.LiveDies())
	}
	h.FailDie(3)
	h.FailDie(3) // idempotent
	if h.DieFailures != 1 {
		t.Errorf("DieFailures = %d, want 1", h.DieFailures)
	}
	if !h.DieDead(3) || h.DieDead(2) {
		t.Errorf("dead-die flags wrong: die3=%v die2=%v", h.DieDead(3), h.DieDead(2))
	}
	ch := cfg.ChannelOfDie(3)
	if h.LiveInChannel(ch) != cfg.DiesPerChannel()-1 {
		t.Errorf("LiveInChannel(%d) = %d, want %d", ch, h.LiveInChannel(ch), cfg.DiesPerChannel()-1)
	}
	h.Reset()
	if h.DieDead(3) || h.LiveDies() != cfg.TotalDies() || h.DieFailures != 0 {
		t.Errorf("Reset did not revive: dead=%v live=%d failures=%d", h.DieDead(3), h.LiveDies(), h.DieFailures)
	}
}

func TestHealthRetiredBlocks(t *testing.T) {
	h := NewHealth(TinyConfig(), &FaultPlan{Seed: 1})
	h.RetireBlock(5, 12)
	h.RetireBlock(5, 12)
	if h.BlocksRetired != 1 {
		t.Errorf("BlocksRetired = %d, want 1", h.BlocksRetired)
	}
	if !h.BlockRetired(5, 12) || h.BlockRetired(5, 13) || h.BlockRetired(4, 12) {
		t.Error("retired-block lookup wrong")
	}
	h.Reset()
	if h.BlockRetired(5, 12) {
		t.Error("Reset kept a retired block")
	}
}

// TestHealthRetriesDeterministic pins the replay contract: retry decisions
// are a pure function of (seed, page), so the same page always draws the
// same tail regardless of read order or repetition, and a different seed
// draws a different pattern.
func TestHealthRetriesDeterministic(t *testing.T) {
	cfg := TinyConfig()
	h := NewHealth(cfg, &FaultPlan{Seed: 42})
	h.SetRetryProb(0.2)
	first := make([]int, 256)
	for p := range first {
		first[p] = h.RetriesFor(0, p/cfg.PagesPerBlock, p%cfg.PagesPerBlock)
	}
	slow := 0
	for p := len(first) - 1; p >= 0; p-- { // reverse order, second pass
		got := h.RetriesFor(0, p/cfg.PagesPerBlock, p%cfg.PagesPerBlock)
		if got != first[p] {
			t.Fatalf("page %d retries changed across reads: %d then %d", p, first[p], got)
		}
		if got > 0 {
			slow++
			if got > 3 {
				t.Fatalf("page %d draws %d retries, cap is 3", p, got)
			}
		}
	}
	if slow == 0 || slow == len(first) {
		t.Errorf("retry tail hit %d/%d pages at prob 0.2; want a strict subset", slow, len(first))
	}
	other := NewHealth(cfg, &FaultPlan{Seed: 43})
	other.SetRetryProb(0.2)
	diff := 0
	for p := range first {
		if other.RetriesFor(0, p/cfg.PagesPerBlock, p%cfg.PagesPerBlock) != first[p] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed change did not move the retry pattern")
	}
}

func TestHealthZeroProbDrawsNothing(t *testing.T) {
	h := NewHealth(TinyConfig(), &FaultPlan{Seed: 1})
	for p := 0; p < 64; p++ {
		if h.RetriesFor(0, 0, p) != 0 {
			t.Fatal("retries drawn with tail disarmed")
		}
	}
	if h.ReadRetries != 0 {
		t.Errorf("ReadRetries = %d, want 0", h.ReadRetries)
	}
}

// FuzzParseFaultPlan asserts the parser never panics, and that every plan it
// accepts round-trips through String unchanged — the CLI contract.
func FuzzParseFaultPlan(f *testing.F) {
	f.Add("die:ch2:die1@30s,retire:ch0:blk12@45s")
	f.Add("retry:0.01@10s")
	f.Add("slow:1.5@1h")
	f.Add("die:ch0:die0@0s")
	f.Add(",,die:ch1:die1@5ms,")
	f.Add("die:ch2:die1@")
	f.Add("retry:@1s")
	f.Add("retire:ch999999999999999999:blk0@1s")
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseFaultPlan(s)
		if err != nil {
			if plan != nil {
				t.Fatal("non-nil plan alongside error")
			}
			return
		}
		if plan == nil {
			return
		}
		if strings.TrimSpace(plan.String()) == "" {
			t.Fatalf("accepted plan renders empty: %q", s)
		}
		re, err := ParseFaultPlan(plan.String())
		if err != nil {
			t.Fatalf("String() output %q does not reparse: %v", plan.String(), err)
		}
		if len(re.Events) != len(plan.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(plan.Events), len(re.Events))
		}
		for i := range plan.Events {
			if re.Events[i] != plan.Events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, plan.Events[i], re.Events[i])
			}
		}
	})
}
