package nand

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ssdkeeper/internal/sim"
)

// FaultKind classifies an injected device-health event.
type FaultKind uint8

// Fault kinds understood by the FaultPlan DSL and the device health model.
const (
	// FaultDieFail kills one die: every valid page on it is rebuilt onto
	// live dies and the die stops accepting placements.
	FaultDieFail FaultKind = iota
	// FaultRetireBlock retires one block index on every plane of a
	// channel: valid pages are relocated and the blocks leave circulation.
	FaultRetireBlock
	// FaultRetryTail enables a read-retry latency tail: from the event
	// time on, a Prob fraction of physical pages need extra sensing
	// passes on every read.
	FaultRetryTail
	// FaultProgramSlowdown enables wear-dependent program slowdown: from
	// the event time on, programming a block whose erase count has
	// reached the wear threshold takes Factor times the normal latency.
	FaultProgramSlowdown
)

// String returns the DSL keyword for the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDieFail:
		return "die"
	case FaultRetireBlock:
		return "retire"
	case FaultRetryTail:
		return "retry"
	case FaultProgramSlowdown:
		return "slow"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// FaultEvent is one scheduled health event. Which fields are meaningful
// depends on Kind: die failure uses Channel and Die (die index within the
// channel); block retirement uses Channel and Block (block index within each
// plane of the channel); retry tails use Prob; program slowdown uses Factor.
type FaultEvent struct {
	Kind    FaultKind
	At      sim.Time
	Channel int
	Die     int // die index within the channel (FaultDieFail)
	Block   int // block index within each plane of the channel (FaultRetireBlock)
	Prob    float64
	Factor  float64
}

// String renders the event in DSL form.
func (e FaultEvent) String() string {
	at := time.Duration(e.At).String()
	switch e.Kind {
	case FaultDieFail:
		return fmt.Sprintf("die:ch%d:die%d@%s", e.Channel, e.Die, at)
	case FaultRetireBlock:
		return fmt.Sprintf("retire:ch%d:blk%d@%s", e.Channel, e.Block, at)
	case FaultRetryTail:
		return fmt.Sprintf("retry:%s@%s", strconv.FormatFloat(e.Prob, 'g', -1, 64), at)
	case FaultProgramSlowdown:
		return fmt.Sprintf("slow:%s@%s", strconv.FormatFloat(e.Factor, 'g', -1, 64), at)
	default:
		return e.Kind.String()
	}
}

// FaultPlan is a deterministic, seedable schedule of health events. The same
// plan replays bit-identically across simrun device reuse and Reset: event
// times are fixed simulated instants, and the read-retry tail is a pure hash
// of (Seed, physical page), never a mutable random stream.
//
// A nil *FaultPlan means an immortal device; every health hook in the device
// stack is a nil check away from the fault-free fast path.
type FaultPlan struct {
	Seed   int64
	Events []FaultEvent
}

// String renders the plan in the comma-separated DSL accepted by
// ParseFaultPlan. Parse(plan.String()) reproduces the events.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Validate checks every event against the device geometry.
func (p *FaultPlan) Validate(cfg Config) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("nand: fault %d (%s): negative time", i, e)
		}
		switch e.Kind {
		case FaultDieFail:
			if e.Channel < 0 || e.Channel >= cfg.Channels {
				return fmt.Errorf("nand: fault %d (%s): channel out of range [0,%d)", i, e, cfg.Channels)
			}
			if e.Die < 0 || e.Die >= cfg.DiesPerChannel() {
				return fmt.Errorf("nand: fault %d (%s): die out of range [0,%d)", i, e, cfg.DiesPerChannel())
			}
		case FaultRetireBlock:
			if e.Channel < 0 || e.Channel >= cfg.Channels {
				return fmt.Errorf("nand: fault %d (%s): channel out of range [0,%d)", i, e, cfg.Channels)
			}
			if e.Block < 0 || e.Block >= cfg.BlocksPerPlane {
				return fmt.Errorf("nand: fault %d (%s): block out of range [0,%d)", i, e, cfg.BlocksPerPlane)
			}
		case FaultRetryTail:
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("nand: fault %d (%s): probability out of [0,1]", i, e)
			}
		case FaultProgramSlowdown:
			if e.Factor < 1 {
				return fmt.Errorf("nand: fault %d (%s): factor must be >= 1", i, e)
			}
		default:
			return fmt.Errorf("nand: fault %d: unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// ParseFaultPlan parses the comma-separated fault DSL:
//
//	die:ch<C>:die<D>@<dur>     kill die D of channel C at time dur
//	retire:ch<C>:blk<B>@<dur>  retire block B on every plane of channel C
//	retry:<prob>@<dur>         read-retry tail: prob of pages grow retries
//	slow:<factor>@<dur>        program slowdown factor on worn blocks
//
// Durations use Go syntax ("30s", "1.5ms"). An empty string returns nil.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	plan := &FaultPlan{Seed: 1}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		ev, err := parseFaultEvent(tok)
		if err != nil {
			return nil, err
		}
		plan.Events = append(plan.Events, ev)
	}
	if len(plan.Events) == 0 {
		return nil, nil
	}
	// Deterministic arming order regardless of how the user listed them.
	sort.SliceStable(plan.Events, func(i, j int) bool {
		return plan.Events[i].At < plan.Events[j].At
	})
	return plan, nil
}

func parseFaultEvent(tok string) (FaultEvent, error) {
	var ev FaultEvent
	body, atStr, ok := strings.Cut(tok, "@")
	if !ok {
		return ev, fmt.Errorf("nand: fault %q: missing @time", tok)
	}
	d, err := time.ParseDuration(atStr)
	if err != nil {
		return ev, fmt.Errorf("nand: fault %q: bad time: %v", tok, err)
	}
	if d < 0 {
		return ev, fmt.Errorf("nand: fault %q: negative time", tok)
	}
	ev.At = sim.Time(d)
	kind, rest, _ := strings.Cut(body, ":")
	switch kind {
	case "die":
		chs, dies, ok := strings.Cut(rest, ":")
		if !ok {
			return ev, fmt.Errorf("nand: fault %q: want die:ch<C>:die<D>@time", tok)
		}
		ev.Kind = FaultDieFail
		if ev.Channel, err = parsePrefixed(chs, "ch"); err != nil {
			return ev, fmt.Errorf("nand: fault %q: %v", tok, err)
		}
		if ev.Die, err = parsePrefixed(dies, "die"); err != nil {
			return ev, fmt.Errorf("nand: fault %q: %v", tok, err)
		}
	case "retire":
		chs, blks, ok := strings.Cut(rest, ":")
		if !ok {
			return ev, fmt.Errorf("nand: fault %q: want retire:ch<C>:blk<B>@time", tok)
		}
		ev.Kind = FaultRetireBlock
		if ev.Channel, err = parsePrefixed(chs, "ch"); err != nil {
			return ev, fmt.Errorf("nand: fault %q: %v", tok, err)
		}
		if ev.Block, err = parsePrefixed(blks, "blk"); err != nil {
			return ev, fmt.Errorf("nand: fault %q: %v", tok, err)
		}
	case "retry":
		ev.Kind = FaultRetryTail
		ev.Prob, err = strconv.ParseFloat(rest, 64)
		if err != nil || ev.Prob < 0 || ev.Prob > 1 {
			return ev, fmt.Errorf("nand: fault %q: want retry:<prob in [0,1]>@time", tok)
		}
	case "slow":
		ev.Kind = FaultProgramSlowdown
		ev.Factor, err = strconv.ParseFloat(rest, 64)
		if err != nil || ev.Factor < 1 {
			return ev, fmt.Errorf("nand: fault %q: want slow:<factor >= 1>@time", tok)
		}
	default:
		return ev, fmt.Errorf("nand: fault %q: unknown kind %q", tok, kind)
	}
	return ev, nil
}

func parsePrefixed(s, prefix string) (int, error) {
	num, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("want %s<N>, got %q", prefix, s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want %s<N>, got %q", prefix, s)
	}
	return n, nil
}

// Health is the mutable health state of one device instance: which dies are
// dead, which blocks are retired, and the active latency-tail parameters.
// The FTL consults it when placing pages and recycling blocks; the device
// consults it when timing flash operations. It is not safe for concurrent
// use — like the FTL, it lives inside one engine's single-threaded run.
type Health struct {
	cfg  Config
	plan *FaultPlan

	deadDies    []bool
	liveInCh    []int // live dies per channel
	liveTotal   int
	retired     map[int64]struct{} // plane*BlocksPerPlane + block
	retryProb   float64
	retryScaled uint64 // retryProb as a 2^63-scaled threshold for hash draws
	slowFactor  float64

	// Monotone event counters, reset with the device. The probe layer
	// mirrors these into run counters; they also feed the keeper's
	// health features and the serve tier's health score.
	DieFailures   int64
	BlocksRetired int64
	ReadRetries   int64
	SlowPrograms  int64
}

// NewHealth returns the health state for a fresh device under plan.
// plan may be nil (immortal device — but then callers skip Health entirely).
func NewHealth(cfg Config, plan *FaultPlan) *Health {
	h := &Health{
		cfg:      cfg,
		plan:     plan,
		deadDies: make([]bool, cfg.TotalDies()),
		liveInCh: make([]int, cfg.Channels),
		retired:  make(map[int64]struct{}),
	}
	h.Reset()
	return h
}

// Reset restores factory health: all dies live, no retired blocks, no
// latency tails, counters zeroed. Scheduled fault events are re-armed by the
// device, not here.
func (h *Health) Reset() {
	for i := range h.deadDies {
		h.deadDies[i] = false
	}
	for c := range h.liveInCh {
		h.liveInCh[c] = h.cfg.DiesPerChannel()
	}
	h.liveTotal = h.cfg.TotalDies()
	clear(h.retired)
	h.retryProb, h.retryScaled = 0, 0
	h.slowFactor = 0
	h.DieFailures, h.BlocksRetired, h.ReadRetries, h.SlowPrograms = 0, 0, 0, 0
}

// FailDie marks device-wide die index dead. Idempotent.
func (h *Health) FailDie(die int) {
	if die < 0 || die >= len(h.deadDies) || h.deadDies[die] {
		return
	}
	h.deadDies[die] = true
	h.liveInCh[h.cfg.ChannelOfDie(die)]--
	h.liveTotal--
	h.DieFailures++
}

// DieDead reports whether device-wide die index is dead.
func (h *Health) DieDead(die int) bool { return h.deadDies[die] }

// LiveDies returns the number of live dies in the device.
func (h *Health) LiveDies() int { return h.liveTotal }

// LiveDieFrac returns the fraction of the device's dies still live.
func (h *Health) LiveDieFrac() float64 {
	if len(h.deadDies) == 0 {
		return 1
	}
	return float64(h.liveTotal) / float64(len(h.deadDies))
}

// LiveInChannel returns the number of live dies on a channel.
func (h *Health) LiveInChannel(ch int) int { return h.liveInCh[ch] }

// RetireBlock marks (plane, block) retired. Idempotent.
func (h *Health) RetireBlock(plane, block int) {
	key := int64(plane)*int64(h.cfg.BlocksPerPlane) + int64(block)
	if _, ok := h.retired[key]; ok {
		return
	}
	h.retired[key] = struct{}{}
	h.BlocksRetired++
}

// BlockRetired reports whether (plane, block) has been retired.
func (h *Health) BlockRetired(plane, block int) bool {
	if len(h.retired) == 0 {
		return false
	}
	_, ok := h.retired[int64(plane)*int64(h.cfg.BlocksPerPlane)+int64(block)]
	return ok
}

// SetRetryProb arms the read-retry tail: from now on, roughly prob of
// physical pages need extra sensing passes on every read.
func (h *Health) SetRetryProb(prob float64) {
	h.retryProb = prob
	h.retryScaled = uint64(prob * (1 << 63))
}

// RetryProb returns the active read-retry probability.
func (h *Health) RetryProb() float64 { return h.retryProb }

// SetSlowFactor arms wear-dependent program slowdown.
func (h *Health) SetSlowFactor(f float64) { h.slowFactor = f }

// SlowFactor returns the active program-slowdown factor (0 = off).
func (h *Health) SlowFactor() float64 { return h.slowFactor }

// RetriesFor returns the number of extra sensing passes a read of the
// physical page at (plane, block, page) needs, in [0, 3]. The decision is a
// pure hash of (Seed, page address): a weak page is consistently weak until
// the device resets, so replays — drain→batch replay, simrun reuse — see
// identical latencies no matter how often or in what order pages are read.
func (h *Health) RetriesFor(plane, block, page int) int {
	if h.retryScaled == 0 {
		return 0
	}
	ppn := (int64(plane)*int64(h.cfg.BlocksPerPlane)+int64(block))*int64(h.cfg.PagesPerBlock) + int64(page)
	x := splitmix64(uint64(h.plan.Seed)*0x9e3779b97f4a7c15 + uint64(ppn) + 1)
	if x>>1 >= h.retryScaled { // top 63 bits vs scaled threshold
		return 0
	}
	h.ReadRetries++
	return 1 + int(x&3)%3 // 1..3 extra passes, hash-determined
}

// splitmix64 is the SplitMix64 finalizer: a fixed, cross-platform mixing
// function (math/rand is not stable across Go releases).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
