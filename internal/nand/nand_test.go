package nand

import (
	"testing"
	"testing/quick"

	"ssdkeeper/internal/sim"
)

func TestDefaultConfigMatchesTableI(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.Channels != 8 || c.ChipsPerChannel != 2 {
		t.Errorf("channels/chips = %d/%d, want 8/2", c.Channels, c.ChipsPerChannel)
	}
	if got := c.DiesPerChip * c.PlanesPerDie; got != 4 {
		t.Errorf("planes per chip = %d, want 4 (Table I)", got)
	}
	if c.PagesPerBlock != 128 || c.BlocksPerPlane != 4096 || c.PageSize != 16*1024 {
		t.Errorf("block geometry mismatch with Table I: %+v", c)
	}
	if c.ReadLatency != 20*sim.Microsecond || c.WriteLatency != 200*sim.Microsecond || c.EraseLatency != 1500*sim.Microsecond {
		t.Errorf("timing mismatch with Table I")
	}
	// Table I: 512GB physical capacity.
	if got := c.PhysicalBytes(); got != 512<<30 {
		t.Errorf("physical capacity = %d bytes, want 512GiB", got)
	}
}

func TestConfigValidateRejectsBadFields(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.ChipsPerChannel = -1 },
		func(c *Config) { c.DiesPerChip = 0 },
		func(c *Config) { c.PlanesPerDie = 0 },
		func(c *Config) { c.BlocksPerPlane = 1 },
		func(c *Config) { c.PagesPerBlock = 0 },
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.ReadLatency = 0 },
		func(c *Config) { c.WriteLatency = 0 },
		func(c *Config) { c.EraseLatency = 0 },
		func(c *Config) { c.XferLatency = 0 },
		func(c *Config) { c.OverProvision = 0.9 },
		func(c *Config) { c.GCThreshold = 1.5 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestAddrRoundTripPPN(t *testing.T) {
	c := TinyConfig()
	addrs := []Addr{
		{},
		{Channel: 7, Chip: 1, Die: 0, Plane: 3, Block: 63, Page: 31},
		{Channel: 3, Chip: 0, Die: 0, Plane: 2, Block: 10, Page: 5},
	}
	for _, a := range addrs {
		ppn := c.PPN(a)
		back := c.AddrOf(ppn)
		if back != a {
			t.Errorf("round trip %v -> %d -> %v", a, ppn, back)
		}
	}
}

func TestPPNRoundTripProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(ch, chip, die, plane, block, page uint16) bool {
		a := Addr{
			Channel: int(ch) % c.Channels,
			Chip:    int(chip) % c.ChipsPerChannel,
			Die:     int(die) % c.DiesPerChip,
			Plane:   int(plane) % c.PlanesPerDie,
			Block:   int(block) % c.BlocksPerPlane,
			Page:    int(page) % c.PagesPerBlock,
		}
		return c.AddrOf(c.PPN(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPlaneIDBijective(t *testing.T) {
	c := DefaultConfig()
	seen := make(map[int]bool)
	for ch := 0; ch < c.Channels; ch++ {
		for chip := 0; chip < c.ChipsPerChannel; chip++ {
			for die := 0; die < c.DiesPerChip; die++ {
				for pl := 0; pl < c.PlanesPerDie; pl++ {
					a := Addr{Channel: ch, Chip: chip, Die: die, Plane: pl}
					id := c.PlaneID(a)
					if id < 0 || id >= c.TotalPlanes() {
						t.Fatalf("plane id %d out of range", id)
					}
					if seen[id] {
						t.Fatalf("plane id %d assigned twice", id)
					}
					seen[id] = true
					back := c.PlaneAddr(id)
					if back != a {
						t.Fatalf("PlaneAddr(%d) = %v, want %v", id, back, a)
					}
				}
			}
		}
	}
	if len(seen) != c.TotalPlanes() {
		t.Errorf("covered %d planes, want %d", len(seen), c.TotalPlanes())
	}
}

func TestDieIDRange(t *testing.T) {
	c := DefaultConfig()
	seen := make(map[int]bool)
	for ch := 0; ch < c.Channels; ch++ {
		for chip := 0; chip < c.ChipsPerChannel; chip++ {
			for die := 0; die < c.DiesPerChip; die++ {
				id := c.DieID(Addr{Channel: ch, Chip: chip, Die: die})
				seen[id] = true
			}
		}
	}
	if len(seen) != c.TotalDies() {
		t.Errorf("die ids cover %d, want %d", len(seen), c.TotalDies())
	}
}

func TestArrayTime(t *testing.T) {
	c := DefaultConfig()
	if c.ArrayTime(OpRead) != c.ReadLatency {
		t.Error("read array time mismatch")
	}
	if c.ArrayTime(OpWrite) != c.WriteLatency {
		t.Error("write array time mismatch")
	}
	if c.ArrayTime(OpErase) != c.EraseLatency {
		t.Error("erase array time mismatch")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpErase.String() != "erase" {
		t.Error("op strings wrong")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Channel: 1, Chip: 0, Die: 0, Plane: 2, Block: 3, Page: 4}
	if got := a.String(); got != "c1.h0.d0.p2.b3.g4" {
		t.Errorf("Addr.String() = %q", got)
	}
}

func TestCountHelpers(t *testing.T) {
	c := DefaultConfig()
	if c.DiesPerChannel() != 2 {
		t.Errorf("DiesPerChannel = %d, want 2", c.DiesPerChannel())
	}
	if c.TotalDies() != 16 {
		t.Errorf("TotalDies = %d, want 16", c.TotalDies())
	}
	if c.TotalPlanes() != 64 {
		t.Errorf("TotalPlanes = %d, want 64", c.TotalPlanes())
	}
	if c.PagesPerPlane() != 4096*128 {
		t.Errorf("PagesPerPlane = %d", c.PagesPerPlane())
	}
}
