// Package nand models NAND flash geometry and timing.
//
// The hierarchy follows the paper's Figure 1: an SSD has channels; each
// channel connects several chips; a chip contains dies; a die contains
// planes; a plane contains blocks; a block contains pages. A die is the unit
// that executes flash commands, a block is the erase unit, and a page is the
// read/write unit.
package nand

import (
	"fmt"

	"ssdkeeper/internal/sim"
)

// Config describes the geometry and timing of a simulated SSD. The zero
// value is invalid; start from DefaultConfig and adjust.
type Config struct {
	Channels        int // independent channel buses
	ChipsPerChannel int
	DiesPerChip     int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageSize        int // bytes

	ReadLatency  sim.Time // flash array sensing time (tR)
	WriteLatency sim.Time // page program time (tPROG)
	EraseLatency sim.Time // block erase time (tBERS)
	XferLatency  sim.Time // one page transfer over the channel bus

	// OverProvision is the fraction of each plane's blocks reserved for
	// garbage collection headroom (not addressable by the host).
	OverProvision float64
	// GCThreshold is the fraction of free blocks per plane below which
	// garbage collection is triggered.
	GCThreshold float64
	// WearThreshold is the per-plane erase-count spread (max - min over
	// closed blocks) that triggers static wear leveling: the coldest
	// block's data is migrated so its under-erased block re-enters
	// circulation. Zero disables wear leveling.
	WearThreshold int
}

// DefaultConfig returns the configuration of Table I in the paper: an
// 8-channel SSD with 2 chips per channel, 4 planes per chip, 4096 blocks per
// plane, 128 pages of 16KB per block (512GB raw), 20us reads, 200us writes,
// 1.5ms erases. The paper does not state the bus transfer time; we use 40us
// per 16KB page (ONFI-class 400MB/s), the same order SSDSim uses.
func DefaultConfig() Config {
	return Config{
		Channels:        8,
		ChipsPerChannel: 2,
		DiesPerChip:     1,
		PlanesPerDie:    4,
		BlocksPerPlane:  4096,
		PagesPerBlock:   128,
		PageSize:        16 * 1024,
		ReadLatency:     20 * sim.Microsecond,
		WriteLatency:    200 * sim.Microsecond,
		EraseLatency:    1500 * sim.Microsecond,
		XferLatency:     40 * sim.Microsecond,
		OverProvision:   0.07,
		GCThreshold:     0.05,
		WearThreshold:   16,
	}
}

// TinyConfig returns a drastically shrunk geometry with the same timing and
// parallelism (8 channels, 2 chips), suitable for unit tests and fast
// experiment sweeps where per-plane capacity does not matter.
func TinyConfig() Config {
	c := DefaultConfig()
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

// EvalConfig returns the geometry the experiment harness runs on: Table I
// timing and parallelism (8 channels x 2 chips x 4 planes) with per-plane
// capacity scaled down 256x (2GiB instead of 512GB) so that seasoned-device
// simulations — where garbage collection is active, as on any SSD in steady
// state — stay laptop-fast. Contention behaviour depends on the channel and
// die counts and the op latencies, which are unchanged; capacity only
// scales how much traffic is needed to exercise GC.
func EvalConfig() Config {
	c := DefaultConfig()
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

// Validate returns an error describing the first invalid field, or nil.
func (c Config) Validate() error {
	type check struct {
		ok   bool
		what string
	}
	checks := []check{
		{c.Channels > 0, "Channels must be positive"},
		{c.ChipsPerChannel > 0, "ChipsPerChannel must be positive"},
		{c.DiesPerChip > 0, "DiesPerChip must be positive"},
		{c.PlanesPerDie > 0, "PlanesPerDie must be positive"},
		{c.BlocksPerPlane > 1, "BlocksPerPlane must exceed 1"},
		{c.PagesPerBlock > 0, "PagesPerBlock must be positive"},
		{c.PageSize > 0, "PageSize must be positive"},
		{c.ReadLatency > 0, "ReadLatency must be positive"},
		{c.WriteLatency > 0, "WriteLatency must be positive"},
		{c.EraseLatency > 0, "EraseLatency must be positive"},
		{c.XferLatency > 0, "XferLatency must be positive"},
		{c.OverProvision >= 0 && c.OverProvision < 0.5, "OverProvision must be in [0, 0.5)"},
		{c.GCThreshold >= 0 && c.GCThreshold < 1, "GCThreshold must be in [0, 1)"},
		{c.WearThreshold >= 0, "WearThreshold must be non-negative"},
	}
	for _, ck := range checks {
		if !ck.ok {
			return fmt.Errorf("nand: %s", ck.what)
		}
	}
	return nil
}

// DiesPerChannel returns the number of dies attached to one channel.
func (c Config) DiesPerChannel() int { return c.ChipsPerChannel * c.DiesPerChip }

// TotalDies returns the number of dies in the device.
func (c Config) TotalDies() int { return c.Channels * c.DiesPerChannel() }

// ChannelOfDie returns the channel a flat die index is attached to.
func (c Config) ChannelOfDie(die int) int { return die / c.DiesPerChannel() }

// TotalPlanes returns the number of planes in the device.
func (c Config) TotalPlanes() int { return c.TotalDies() * c.PlanesPerDie }

// PagesPerPlane returns the number of physical pages in one plane.
func (c Config) PagesPerPlane() int { return c.BlocksPerPlane * c.PagesPerBlock }

// TotalPages returns the number of physical pages in the device.
func (c Config) TotalPages() int64 {
	return int64(c.TotalPlanes()) * int64(c.PagesPerPlane())
}

// PhysicalBytes returns the raw capacity in bytes.
func (c Config) PhysicalBytes() int64 {
	return c.TotalPages() * int64(c.PageSize)
}

// Addr identifies one physical page.
type Addr struct {
	Channel int
	Chip    int // chip index within the channel
	Die     int // die index within the chip
	Plane   int
	Block   int
	Page    int
}

// String renders the address in ch/chip/die/plane/block/page form.
func (a Addr) String() string {
	return fmt.Sprintf("c%d.h%d.d%d.p%d.b%d.g%d", a.Channel, a.Chip, a.Die, a.Plane, a.Block, a.Page)
}

// PlaneID flattens the plane coordinates of a into a device-wide index in
// [0, TotalPlanes).
func (c Config) PlaneID(a Addr) int {
	die := (a.Channel*c.ChipsPerChannel+a.Chip)*c.DiesPerChip + a.Die
	return die*c.PlanesPerDie + a.Plane
}

// DieID flattens the die coordinates of a into a device-wide index in
// [0, TotalDies).
func (c Config) DieID(a Addr) int {
	return (a.Channel*c.ChipsPerChannel+a.Chip)*c.DiesPerChip + a.Die
}

// PlaneAddr reconstructs the channel/chip/die/plane coordinates of a flat
// plane index (Block and Page are zero).
func (c Config) PlaneAddr(plane int) Addr {
	die := plane / c.PlanesPerDie
	chip := die / c.DiesPerChip
	return Addr{
		Channel: chip / c.ChipsPerChannel,
		Chip:    chip % c.ChipsPerChannel,
		Die:     die % c.DiesPerChip,
		Plane:   plane % c.PlanesPerDie,
	}
}

// PPN encodes a as a flat physical page number.
func (c Config) PPN(a Addr) int64 {
	plane := int64(c.PlaneID(a))
	return (plane*int64(c.BlocksPerPlane)+int64(a.Block))*int64(c.PagesPerBlock) + int64(a.Page)
}

// AddrOf decodes a flat physical page number into coordinates.
func (c Config) AddrOf(ppn int64) Addr {
	page := int(ppn % int64(c.PagesPerBlock))
	ppn /= int64(c.PagesPerBlock)
	block := int(ppn % int64(c.BlocksPerPlane))
	plane := int(ppn / int64(c.BlocksPerPlane))
	a := c.PlaneAddr(plane)
	a.Block = block
	a.Page = page
	return a
}

// Op is a flash operation kind.
type Op uint8

// Flash operation kinds.
const (
	OpRead Op = iota
	OpWrite
	OpErase
)

// String returns "read", "write" or "erase".
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ArrayTime returns the time the die's flash array is occupied by op.
func (c Config) ArrayTime(op Op) sim.Time {
	switch op {
	case OpRead:
		return c.ReadLatency
	case OpWrite:
		return c.WriteLatency
	case OpErase:
		return c.EraseLatency
	default:
		panic("nand: unknown op")
	}
}
