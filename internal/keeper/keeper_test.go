package keeper

import (
	"context"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/workload"
)

func testStrategies() []alloc.Strategy {
	return []alloc.Strategy{
		{Kind: alloc.Shared},
		{Kind: alloc.Isolated},
		{Kind: alloc.TwoGroup, WriteChannels: 6},
	}
}

func testConfig() Config {
	return Config{
		Device:         nand.EvalConfig(),
		Options:        ssd.DefaultOptions(),
		Strategies:     testStrategies(),
		SaturationIOPS: 16000,
		Window:         100 * sim.Millisecond,
	}
}

func testModel(t *testing.T, classes int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP([]int{features.Dim, 8, classes}, nn.Logistic{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// forcedModel returns a model that always predicts the given class, by
// setting that output's bias very high.
func forcedModel(t *testing.T, classes, class int) *nn.Network {
	t.Helper()
	net := testModel(t, classes)
	out := net.Layers[len(net.Layers)-1]
	for i := range out.W {
		out.W[i] = 0
	}
	for i := range out.B {
		out.B[i] = 0
	}
	out.B[class] = 100
	return net
}

func TestNewValidatesModelShape(t *testing.T) {
	cfg := testConfig()
	if _, err := New(cfg, nil); err == nil {
		t.Error("nil model accepted")
	}
	wrongIn, _ := nn.NewMLP([]int{5, 4, 3}, nn.ReLU{}, 1)
	if _, err := New(cfg, wrongIn); err == nil {
		t.Error("wrong input dim accepted")
	}
	wrongOut := testModel(t, 7)
	if _, err := New(cfg, wrongOut); err == nil {
		t.Error("wrong class count accepted")
	}
	if _, err := New(cfg, testModel(t, len(cfg.Strategies))); err != nil {
		t.Errorf("valid keeper rejected: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Strategies = nil },
		func(c *Config) { c.SaturationIOPS = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.AdaptEvery = -1 },
		func(c *Config) { c.Device.Channels = 0 },
	}
	for i, mut := range muts {
		cfg := testConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPredictMapsClassToStrategy(t *testing.T) {
	cfg := testConfig()
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 2))
	if err != nil {
		t.Fatal(err)
	}
	s, idx, err := k.Predict(features.Vector{Intensity: 5})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 || !alloc.Equal(s, cfg.Strategies[2]) {
		t.Errorf("predicted %d (%v)", idx, s)
	}
}

func TestRunSwitchesAfterWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Season = workload.DefaultSeasoning()
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 2))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5},
			{WriteRatio: 0.1, Share: 0.5},
		},
		Requests: 4000,
		IOPS:     8000,
		Seed:     3,
	}
	tr, err := spec.Build(cfg.Device.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := k.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Switches) != 1 {
		t.Fatalf("got %d switches, want 1", len(rep.Switches))
	}
	sw := rep.Switches[0]
	if sw.At != cfg.Window {
		t.Errorf("switched at %v, want %v", sw.At, cfg.Window)
	}
	if sw.Index != 2 {
		t.Errorf("switched to class %d, want forced 2", sw.Index)
	}
	if !alloc.Equal(rep.Chosen(), cfg.Strategies[2]) {
		t.Errorf("Chosen() = %v", rep.Chosen())
	}
	// The window saw ~half the trace; observed features must reflect the
	// two tenants' characteristics.
	if sw.Vector.ReadChar[0] || !sw.Vector.ReadChar[1] {
		t.Errorf("collected characteristics wrong: %v", sw.Vector)
	}
	if rep.Result.Requests != 4000 {
		t.Errorf("requests %d", rep.Result.Requests)
	}
}

func TestRunNoSwitchOnShortTrace(t *testing.T) {
	cfg := testConfig()
	cfg.Window = sim.Second * 100 // longer than the trace
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.MixSpec{
		Tenants:  []workload.TenantSpec{{WriteRatio: 1, Share: 1}},
		Requests: 200,
		IOPS:     5000,
		Seed:     1,
	}
	tr, err := spec.Build(cfg.Device.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := k.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Switches) != 0 {
		t.Errorf("switched %d times on a short trace", len(rep.Switches))
	}
	if got := rep.Chosen(); got.Kind != alloc.Shared {
		t.Errorf("Chosen() = %v, want Shared fallback", got)
	}
}

func TestRunPeriodicAdaptation(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 50 * sim.Millisecond
	cfg.AdaptEvery = 100 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 0))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5},
			{WriteRatio: 0.1, Share: 0.5},
		},
		Requests: 5000,
		IOPS:     10000,
		Seed:     2,
	}
	tr, err := spec.Build(cfg.Device.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := k.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Trace spans ~500ms: first switch at 50ms then every 100ms.
	if len(rep.Switches) < 3 {
		t.Errorf("only %d switches with periodic adaptation", len(rep.Switches))
	}
	for i := 1; i < len(rep.Switches); i++ {
		if got := rep.Switches[i].At - rep.Switches[i-1].At; got != cfg.AdaptEvery {
			t.Errorf("switch gap %v, want %v", got, cfg.AdaptEvery)
		}
	}
}

func TestHybridModeFor(t *testing.T) {
	if HybridModeFor(true) != ftl.DynamicAlloc {
		t.Error("write-dominated should get dynamic")
	}
	if HybridModeFor(false) != ftl.StaticAlloc {
		t.Error("read-dominated should get static")
	}
}

func TestTrainOnSamplesProducesWorkingKeeper(t *testing.T) {
	cfg := testConfig()
	dsCfg := dataset.Config{
		Device:     cfg.Device,
		Options:    cfg.Options,
		Strategies: cfg.Strategies,
		Workloads:  6,
		Requests:   500,
		MaxIOPS:    cfg.SaturationIOPS,
		Season:     workload.DefaultSeasoning(),
		Seed:       4,
	}
	samples, err := dataset.Generate(context.Background(), dsCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainOnSamples(TrainConfig{
		Dataset:    dsCfg,
		Hidden:     8,
		Iterations: 20,
		BatchSize:  4,
		Seed:       1,
	}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.InputDim() != features.Dim || res.Model.OutputDim() != len(cfg.Strategies) {
		t.Errorf("model shape %d->%d", res.Model.InputDim(), res.Model.OutputDim())
	}
	if len(res.History.Points) == 0 {
		t.Error("no training history")
	}
	if _, err := New(cfg, res.Model); err != nil {
		t.Errorf("trained model rejected by keeper: %v", err)
	}
}

func TestTrainEndToEnd(t *testing.T) {
	cfg := testConfig()
	res, err := Train(context.Background(), TrainConfig{
		Dataset: dataset.Config{
			Device:     cfg.Device,
			Options:    cfg.Options,
			Strategies: cfg.Strategies,
			Workloads:  4,
			Requests:   400,
			MaxIOPS:    cfg.SaturationIOPS,
			Season:     workload.DefaultSeasoning(),
			Seed:       2,
		},
		Hidden:     8,
		Iterations: 10,
		BatchSize:  4,
		Seed:       1,
	}, func(done, total int) {
		if total != 4 {
			t.Errorf("progress total %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Errorf("samples %d", len(res.Samples))
	}
	// 0.7*4 truncates to 2 training samples, leaving 2 held out.
	if len(res.TestSamples) != 2 {
		t.Errorf("test samples %d, want 2", len(res.TestSamples))
	}
}

func TestReportChosenDefaultsToShared(t *testing.T) {
	var r Report
	if got := r.Chosen(); got.Kind != alloc.Shared {
		t.Errorf("empty report chose %v", got)
	}
}

func TestKeeperAccessors(t *testing.T) {
	cfg := testConfig()
	model := testModel(t, len(cfg.Strategies))
	k, err := New(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	if k.Model() != model {
		t.Error("Model() accessor broken")
	}
	if k.Config().Window != cfg.Window {
		t.Error("Config() accessor broken")
	}
}
