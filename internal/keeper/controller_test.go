package keeper

import (
	"context"
	"math"
	"testing"

	"ssdkeeper/internal/features"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

// parityMix is a deterministic four-tenant mix that crosses several epoch
// boundaries under the parity config.
func parityMix(t *testing.T, pageSize int) trace.Trace {
	t.Helper()
	spec := workload.MixSpec{
		Tenants: []workload.TenantSpec{
			{WriteRatio: 0.9, Share: 0.5},
			{WriteRatio: 0.1, Share: 0.3},
			{WriteRatio: 0.8, Share: 0.1},
			{WriteRatio: 0.2, Share: 0.1},
		},
		Requests: 6000, IOPS: 9000, Seed: 42,
	}
	tr, err := spec.Build(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestControllerTraceParity proves the Controller extraction changed
// nothing in trace mode: Keeper.RunContext (which now drives a Controller
// from the arrival hook) must produce exactly the switches and result of
// the pre-extraction inline loop, which this test replays verbatim against
// its own session.
func TestControllerTraceParity(t *testing.T) {
	cfg := testConfig()
	cfg.Season = workload.DefaultSeasoning()
	cfg.AdaptEvery = 150 * sim.Millisecond
	cfg.Hybrid = true
	model := forcedModel(t, len(cfg.Strategies), 2)
	tr := parityMix(t, cfg.Device.PageSize)

	k, err := New(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the pre-Controller keeper loop, inlined.
	sess, err := simrun.NewRunner().NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := sess.Device()
	kRef, err := New(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	var want Report
	col := features.NewCollector(cfg.SaturationIOPS, 0)
	adapt := func(now sim.Time) error {
		vec := col.Vector(now)
		strat, idx, err := kRef.Predict(vec)
		if err != nil {
			return err
		}
		if err := simrun.Apply(dev, strat, vec.Traits(), cfg.Hybrid); err != nil {
			return err
		}
		want.Switches = append(want.Switches, Switch{At: now, Vector: vec, Strategy: strat, Index: idx})
		return nil
	}
	var hookErr error
	next := cfg.Window
	onArrival := func(_ int, r trace.Record) {
		if hookErr != nil {
			return
		}
		now := dev.Engine().Now()
		for now >= next {
			if err := adapt(next); err != nil {
				hookErr = err
				return
			}
			if cfg.AdaptEvery <= 0 {
				next = sim.Time(int64(^uint64(0) >> 2))
				break
			}
			col.Reset(next)
			next += cfg.AdaptEvery
		}
		col.Observe(r)
	}
	res, err := sess.RunObserved(context.Background(), tr, onArrival)
	if err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	want.Result = res.Result

	if len(got.Switches) != len(want.Switches) {
		t.Fatalf("switch count %d, reference %d", len(got.Switches), len(want.Switches))
	}
	for i := range want.Switches {
		g, w := got.Switches[i], want.Switches[i]
		if g.At != w.At || g.Index != w.Index || g.Vector != w.Vector {
			t.Errorf("switch %d: got {at=%v idx=%d %v}, reference {at=%v idx=%d %v}",
				i, g.At, g.Index, g.Vector, w.At, w.Index, w.Vector)
		}
	}
	if got.Makespan != want.Makespan {
		t.Errorf("makespan %v, reference %v", got.Makespan, want.Makespan)
	}
	for _, c := range []struct {
		name     string
		got, ref float64
	}{
		{"read mean", got.Device.Read.Mean(), want.Device.Read.Mean()},
		{"write mean", got.Device.Write.Mean(), want.Device.Write.Mean()},
		{"fairness", got.Fairness, want.Fairness},
	} {
		if c.got != c.ref || math.IsNaN(c.got) != math.IsNaN(c.ref) {
			t.Errorf("%s %v, reference %v", c.name, c.got, c.ref)
		}
	}
	if got.FTL != want.FTL {
		t.Errorf("FTL counters %+v, reference %+v", got.FTL, want.FTL)
	}
}

// TestControllerTickFiresGapEpochs drives a controller by hand: epoch
// boundaries that pass with no arrivals must still fire, in order, when
// Tick observes the passage of time.
func TestControllerTickFiresGapEpochs(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := simrun.NewRunner().NewSession(simrun.Config{Device: cfg.Device, Options: cfg.Options})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())

	rec := trace.Record{Tenant: 0, Op: trace.Write, Offset: 0, Size: 4096}
	c.Observe(1*sim.Millisecond, rec)
	if c.SwitchCount() != 0 {
		t.Fatalf("switched before the first window elapsed")
	}
	// Jump past four boundaries with no traffic at all.
	c.Tick(45 * sim.Millisecond)
	if got := c.SwitchCount(); got != 4 {
		t.Fatalf("tick past 4 boundaries fired %d switches", got)
	}
	sw := c.Switches()
	for i, s := range sw {
		if want := sim.Time(10+10*i) * sim.Millisecond; s.At != want {
			t.Errorf("switch %d at %v, want %v", i, s.At, want)
		}
		if s.Index != 1 {
			t.Errorf("switch %d predicted class %d, want 1", i, s.Index)
		}
	}
	// Only the first window saw the arrival.
	if sw[0].Vector.Prop[0] != 1 {
		t.Errorf("first window lost its arrival: %v", sw[0].Vector)
	}
	if sw[1].Vector.Prop[0] != 0 {
		t.Errorf("second window inherited arrivals: %v", sw[1].Vector)
	}
	if _, ok := c.LastSwitch(); !ok {
		t.Error("LastSwitch empty after switches")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestControllerSingleShot reproduces the paper's one-adaptation mode:
// AdaptEvery == 0 must adapt exactly once no matter how far time advances.
func TestControllerSingleShot(t *testing.T) {
	cfg := testConfig() // AdaptEvery 0
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 2))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := simrun.NewRunner().NewSession(simrun.Config{Device: cfg.Device, Options: cfg.Options})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())
	rec := trace.Record{Tenant: 1, Op: trace.Read, Offset: 0, Size: 4096}
	c.Observe(10*sim.Millisecond, rec)
	c.Tick(10 * cfg.Window)
	c.Observe(20*cfg.Window, rec)
	if got := c.SwitchCount(); got != 1 {
		t.Fatalf("single-shot controller switched %d times", got)
	}
	if sw := c.Switches(); sw[0].At != cfg.Window {
		t.Errorf("single switch at %v, want %v", sw[0].At, cfg.Window)
	}
}

// TestControllerSkipIdleWindows covers the live-server mode: with SkipIdle
// set, boundaries whose window saw no arrivals pass silently (no re-bind, no
// switch), and adaptation resumes at the first boundary after traffic.
func TestControllerSkipIdleWindows(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := simrun.NewRunner().NewSession(simrun.Config{Device: cfg.Device, Options: cfg.Options})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())
	c.SkipIdle = true

	rec := trace.Record{Tenant: 0, Op: trace.Write, Offset: 0, Size: 4096}
	c.Observe(1*sim.Millisecond, rec)
	// Boundary 10ms fires (its window has the arrival); 20/30/40ms are idle.
	c.Tick(45 * sim.Millisecond)
	if got := c.SwitchCount(); got != 1 {
		t.Fatalf("switches after idle gap = %d, want 1", got)
	}
	// Traffic in window [40,50)ms re-arms the 50ms boundary.
	c.Observe(46*sim.Millisecond, rec)
	c.Tick(55 * sim.Millisecond)
	if got := c.SwitchCount(); got != 2 {
		t.Fatalf("switches after traffic resumed = %d, want 2", got)
	}
	sw := c.Switches()
	if sw[0].At != 10*sim.Millisecond || sw[1].At != 50*sim.Millisecond {
		t.Errorf("switch times %v and %v, want 10ms and 50ms", sw[0].At, sw[1].At)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestControllerDetachAttachTenant pins the migration contract: detaching a
// tenant erases its in-window feature contribution, and a reattached tenant's
// features restart from zero — the handoff destination never inherits arrival
// history from before the move.
func TestControllerDetachAttachTenant(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := simrun.NewRunner().NewSession(simrun.Config{Device: cfg.Device, Options: cfg.Options})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())

	wr := trace.Record{Tenant: 0, Op: trace.Write, Offset: 0, Size: 4096}
	rd := trace.Record{Tenant: 1, Op: trace.Read, Offset: 0, Size: 4096}
	c.Observe(1*sim.Millisecond, wr)
	c.Observe(2*sim.Millisecond, rd)
	c.Observe(3*sim.Millisecond, rd)
	c.Observe(4*sim.Millisecond, rd)
	// Tenant 1 departs mid-window: its three reads must vanish from the
	// window that is still being collected.
	c.DetachTenant(1)
	c.Tick(15 * sim.Millisecond)
	if got := c.SwitchCount(); got != 1 {
		t.Fatalf("switches after first boundary = %d, want 1", got)
	}
	v := c.Switches()[0].Vector
	if v.Prop[1] != 0 {
		t.Errorf("detached tenant kept proportion %v", v.Prop[1])
	}
	if v.Prop[0] != 1 {
		t.Errorf("surviving tenant proportion %v, want 1 (sole remaining traffic)", v.Prop[0])
	}

	// The tenant re-attaches (handoff landed): only post-attach arrivals
	// count, so one read makes it read-dominated with a fresh proportion.
	c.AttachTenant(1)
	c.Observe(16*sim.Millisecond, rd)
	c.Observe(17*sim.Millisecond, wr)
	c.Tick(25 * sim.Millisecond)
	if got := c.SwitchCount(); got != 2 {
		t.Fatalf("switches after second boundary = %d, want 2", got)
	}
	v = c.Switches()[1].Vector
	if v.Prop[1] != 0.5 || v.Prop[0] != 0.5 {
		t.Errorf("reattached window proportions %v, want 0.5/0.5 from fresh arrivals only", v.Prop)
	}
	if !v.ReadChar[1] {
		t.Errorf("reattached tenant not read-dominated from its single fresh read: %v", v.ReadChar)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestControllerSkipIdleSingleShot: an idle single-shot controller keeps
// sliding its window until traffic appears, then adapts exactly once.
func TestControllerSkipIdleSingleShot(t *testing.T) {
	cfg := testConfig() // Window 100ms, AdaptEvery 0
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 2))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := simrun.NewRunner().NewSession(simrun.Config{Device: cfg.Device, Options: cfg.Options})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())
	c.SkipIdle = true

	c.Tick(10 * cfg.Window) // ten empty windows: nothing fires
	if got := c.SwitchCount(); got != 0 {
		t.Fatalf("idle single shot switched %d times", got)
	}
	rec := trace.Record{Tenant: 1, Op: trace.Read, Offset: 0, Size: 4096}
	c.Observe(10*cfg.Window+sim.Millisecond, rec)
	c.Tick(12 * cfg.Window)
	if got := c.SwitchCount(); got != 1 {
		t.Fatalf("single shot after traffic switched %d times, want 1", got)
	}
	if sw := c.Switches(); sw[0].At != 11*cfg.Window {
		t.Errorf("switch at %v, want %v", sw[0].At, 11*cfg.Window)
	}
	c.Tick(20 * cfg.Window)
	if got := c.SwitchCount(); got != 1 {
		t.Errorf("single shot fired again: %d switches", got)
	}
}
