package keeper

import (
	"fmt"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/trace"
)

// vector returns a deterministic feature vector varying with i.
func vector(i int) features.Vector {
	v := features.Vector{Intensity: i % features.Levels}
	v.ReadChar[i%features.MaxTenants] = true
	v.Prop[i%features.MaxTenants] = 1
	return v
}

func errInvalidClass(idx int) error {
	return fmt.Errorf("predicted class %d, want 1 or 2", idx)
}

// driveEpochs runs a fixed deterministic arrival pattern through a
// controller: traffic in every window, boundaries every 10ms, up to epochs
// boundaries. swapAt, when >0, hot-swaps the keeper's active provider just
// before the swapAt-th epoch boundary fires.
func driveEpochs(t *testing.T, k *Keeper, epochs, swapAt int, next policy.Provider) *Controller {
	t.Helper()
	sess, err := simrun.NewRunner().NewSession(simrun.Config{
		Device: k.cfg.Device, Options: k.cfg.Options,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())
	for e := 1; e <= epochs; e++ {
		if e == swapAt {
			if _, err := k.Source().SetActive(next); err != nil {
				t.Fatal(err)
			}
		}
		// Two arrivals inside window (e-1)*10ms .. e*10ms, with a
		// tenant mix that varies by epoch so vectors differ.
		base := sim.Time(e-1) * 10 * sim.Millisecond
		c.Observe(base+2*sim.Millisecond, trace.Record{
			Tenant: e % 4, Op: trace.Write, Offset: 0, Size: 4096,
		})
		c.Observe(base+5*sim.Millisecond, trace.Record{
			Tenant: (e + 1) % 4, Op: trace.Read, Offset: 8192, Size: 4096,
		})
		c.Tick(sim.Time(e) * 10 * sim.Millisecond)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestControllerHotSwapParity pins the swap semantics the serving daemon
// relies on: swapping the active provider before epoch E yields, from E
// onward, exactly the decisions of a controller that ran the new policy all
// along — and the epochs before E are untouched.
func TestControllerHotSwapParity(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond

	oldNet := forcedModel(t, len(cfg.Strategies), 0)
	newNet := forcedModel(t, len(cfg.Strategies), 2)
	newProv, err := policy.NewModel("v2", newNet, cfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}

	const epochs, swapAt = 8, 4
	swapped, err := New(cfg, oldNet)
	if err != nil {
		t.Fatal(err)
	}
	cSwapped := driveEpochs(t, swapped, epochs, swapAt, newProv)

	allNew, err := NewWithProvider(cfg, newProv)
	if err != nil {
		t.Fatal(err)
	}
	cNew := driveEpochs(t, allNew, epochs, 0, nil)

	got, want := cSwapped.Switches(), cNew.Switches()
	if len(got) != epochs || len(want) != epochs {
		t.Fatalf("switch counts %d and %d, want %d", len(got), len(want), epochs)
	}
	for i := range got {
		if i < swapAt-1 {
			// Before the swap the old policy decided: forced class 0.
			if got[i].Index != 0 {
				t.Errorf("pre-swap epoch %d decided class %d, want 0", i+1, got[i].Index)
			}
			continue
		}
		// From epoch swapAt onward: identical to running v2 throughout.
		if got[i].At != want[i].At || got[i].Index != want[i].Index ||
			!alloc.Equal(got[i].Strategy, want[i].Strategy) || got[i].Vector != want[i].Vector {
			t.Errorf("post-swap epoch %d: got {at=%v idx=%d}, new-policy run {at=%v idx=%d}",
				i+1, got[i].At, got[i].Index, want[i].At, want[i].Index)
		}
	}
	if v := cSwapped.PolicyVersion(); v != "v2" {
		t.Errorf("policy version after swap = %q, want v2", v)
	}
}

// TestControllerShadowCounters: a shadow candidate decides alongside the
// active policy every epoch; agreement and divergence are counted and the
// device only ever follows the active policy.
func TestControllerShadowCounters(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond

	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: an agreeing shadow (same forced class).
	agreeProv, err := policy.NewModel("twin", forcedModel(t, len(cfg.Strategies), 1), cfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	k.Source().SetShadow(agreeProv)
	c := driveEpochs(t, k, 3, 0, nil)
	if agree, diverge, errs := c.ShadowStats(); agree != 3 || diverge != 0 || errs != 0 {
		t.Errorf("agreeing shadow stats = %d/%d/%d, want 3/0/0", agree, diverge, errs)
	}

	// Phase 2: swap the shadow for a diverging candidate; the same
	// controller picks it up at its next epoch.
	divergeProv := policy.StaticProvider{Ver: "cand", Strategy: cfg.Strategies[2]}
	k.Source().SetShadow(divergeProv)
	for e := 4; e <= 6; e++ {
		base := sim.Time(e-1) * 10 * sim.Millisecond
		c.Observe(base+2*sim.Millisecond, trace.Record{Tenant: 0, Op: trace.Write, Size: 4096})
		c.Tick(sim.Time(e) * 10 * sim.Millisecond)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if agree, diverge, errs := c.ShadowStats(); agree != 3 || diverge != 3 || errs != 0 {
		t.Errorf("after diverging shadow: stats = %d/%d/%d, want 3/3/0", agree, diverge, errs)
	}

	// Every switch followed the active policy (class 1), never the shadow.
	for i, sw := range c.Switches() {
		if sw.Index != 1 {
			t.Errorf("switch %d followed class %d; shadow leaked into the device", i, sw.Index)
		}
	}

	// Clearing the shadow stops the comparison.
	k.Source().SetShadow(nil)
	base := sim.Time(6) * 10 * sim.Millisecond
	c.Observe(base+2*sim.Millisecond, trace.Record{Tenant: 0, Op: trace.Write, Size: 4096})
	c.Tick(70 * sim.Millisecond)
	if agree, diverge, _ := c.ShadowStats(); agree != 3 || diverge != 3 {
		t.Errorf("counters moved after shadow cleared: %d/%d", agree, diverge)
	}
}

// TestKeeperPredictConcurrent exercises the pooled Predict path from many
// goroutines (meaningful under -race: no shared scratch, no mutex) and
// across a mid-flight hot swap.
func TestKeeperPredictConcurrent(t *testing.T) {
	cfg := testConfig()
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	newProv, err := policy.NewModel("v2", forcedModel(t, len(cfg.Strategies), 2), cfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				_, idx, err := k.Predict(vector(i))
				if err != nil {
					done <- err
					return
				}
				if idx != 1 && idx != 2 {
					done <- errInvalidClass(idx)
					return
				}
			}
			done <- nil
		}()
	}
	if _, err := k.Source().SetActive(newProv); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// After the swap settles, every Predict answers the new class.
	if _, idx, err := k.Predict(vector(0)); err != nil || idx != 2 {
		t.Errorf("post-swap predict = class %d (%v), want 2", idx, err)
	}
}
