package keeper

import (
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/trace"
)

// collectSink buffers every offered sample in order.
type collectSink struct{ samples []learn.Sample }

func (s *collectSink) Offer(smp learn.Sample) { s.samples = append(s.samples, smp) }

// driveSampledEpochs runs epochs deterministic boundaries through a sinked
// controller: two arrivals per window, then the boundary tick, then two
// completions attributed to the freshly decided epoch.
func driveSampledEpochs(t *testing.T, k *Keeper, c *Controller, epochs int) {
	t.Helper()
	for e := 1; e <= epochs; e++ {
		base := sim.Time(e-1) * 10 * sim.Millisecond
		c.Observe(base+2*sim.Millisecond, trace.Record{Tenant: e % 4, Op: trace.Write, Size: 4096})
		c.Observe(base+5*sim.Millisecond, trace.Record{Tenant: (e + 1) % 4, Op: trace.Read, Offset: 8192, Size: 4096})
		c.Tick(sim.Time(e) * 10 * sim.Millisecond)
		c.Complete(100 * sim.Microsecond)
		c.Complete(300 * sim.Microsecond)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

func sampledController(t *testing.T, k *Keeper) (*Controller, *collectSink) {
	t.Helper()
	sess, err := simrun.NewRunner().NewSession(simrun.Config{
		Device: k.cfg.Device, Options: k.cfg.Options,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := k.Controller(sess.Device())
	sink := &collectSink{}
	c.Sink = sink
	return c, sink
}

// TestControllerEmitsSamples pins the outcome feed: one sample per adaptation
// epoch, flushed at the next boundary with the completions realized in
// between, carrying the applied strategy and the policy version.
func TestControllerEmitsSamples(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	c, sink := sampledController(t, k)

	const epochs = 6
	driveSampledEpochs(t, k, c, epochs)

	// The sample decided at epoch e flushes when epoch e+1 fires, so the
	// last epoch's sample is still open.
	if len(sink.samples) != epochs-1 {
		t.Fatalf("got %d samples from %d epochs, want %d", len(sink.samples), epochs, epochs-1)
	}
	for i, s := range sink.samples {
		at := sim.Time(i+1) * 10 * sim.Millisecond
		if s.At != at || s.Epoch != 10*sim.Millisecond {
			t.Errorf("sample %d spans [%v, +%v), want [%v, +10ms)", i, s.At, s.Epoch, at)
		}
		if s.StrategyIndex != 1 || !alloc.Equal(s.Strategy, cfg.Strategies[1]) {
			t.Errorf("sample %d applied class %d, want the forced class 1", i, s.StrategyIndex)
		}
		if s.PolicyVersion != c.PolicyVersion() {
			t.Errorf("sample %d policy %q, controller %q", i, s.PolicyVersion, c.PolicyVersion())
		}
		if s.Explore || s.ShadowIndex != -1 || s.ShadowVersion != "" {
			t.Errorf("sample %d carries explore/shadow state with neither enabled: %+v", i, s)
		}
		if s.Completed != 2 || s.LatencySum != 400*sim.Microsecond {
			t.Errorf("sample %d outcome = %d completions, %v total, want 2 and 400µs",
				i, s.Completed, s.LatencySum)
		}
		if got := s.MeanLatency(); got != 200*sim.Microsecond {
			t.Errorf("sample %d mean latency %v, want 200µs", i, got)
		}
	}

	// Without a sink, Complete is a free no-op.
	c2 := k.Controller(nil)
	c2.Complete(sim.Millisecond) // must not panic or accumulate
}

// TestControllerSamplesCarryShadowDecision: with a shadow installed, each
// sample records the candidate's counterfactual decision and agreement.
func TestControllerSamplesCarryShadowDecision(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	k.Source().SetShadow(policy.StaticProvider{Ver: "cand", Strategy: cfg.Strategies[2]})
	c, sink := sampledController(t, k)
	driveSampledEpochs(t, k, c, 4)

	if len(sink.samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(sink.samples))
	}
	for i, s := range sink.samples {
		if s.ShadowVersion != "cand" || s.ShadowIndex != 2 || s.ShadowAgreed || s.ShadowErred {
			t.Errorf("sample %d shadow = {%q idx=%d agreed=%v erred=%v}, want cand/2/diverged",
				i, s.ShadowVersion, s.ShadowIndex, s.ShadowAgreed, s.ShadowErred)
		}
	}
}

// TestControllerExploration: with ε = 1 every epoch applies a random
// strategy; the sample records the applied strategy and flags divergence from
// the policy's own choice as exploration, while shadow agreement keeps
// comparing against the policy's intent.
func TestControllerExploration(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.AdaptEvery = 10 * sim.Millisecond
	k, err := New(cfg, forcedModel(t, len(cfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	// An agreeing twin shadow: same forced class as the active policy.
	twin, err := policy.NewModel("twin", forcedModel(t, len(cfg.Strategies), 1), cfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	k.Source().SetShadow(twin)
	c, sink := sampledController(t, k)
	c.EnableExploration(1, 11)

	const epochs = 24
	driveSampledEpochs(t, k, c, epochs)

	explored := 0
	for i, s := range sink.samples {
		if s.Explore {
			explored++
			if s.StrategyIndex == 1 {
				t.Errorf("sample %d flagged Explore but applied the policy's own class", i)
			}
		} else if s.StrategyIndex != 1 {
			t.Errorf("sample %d applied class %d unflagged", i, s.StrategyIndex)
		}
		// Shadow agreement is judged against the policy's intended decision,
		// so the agreeing twin stays in agreement even on exploring epochs.
		if !s.ShadowAgreed {
			t.Errorf("sample %d: exploration leaked into shadow comparison", i)
		}
		// The device followed the applied (possibly explored) strategy.
		if sw := c.Switches()[i]; !alloc.Equal(sw.Strategy, s.Strategy) {
			t.Errorf("sample %d strategy %v, switch applied %v", i, s.Strategy, sw.Strategy)
		}
	}
	if explored == 0 {
		t.Error("ε = 1 over 24 epochs explored nothing")
	}
	if agree, diverge, errs := c.ShadowStats(); diverge != 0 || errs != 0 || agree != epochs {
		t.Errorf("shadow stats %d/%d/%d, want %d/0/0", agree, diverge, errs, epochs)
	}

	// rate <= 0 disables exploration again.
	c.EnableExploration(0, 1)
	if c.exploreRng != nil {
		t.Error("EnableExploration(0) left the explorer armed")
	}
}
