package keeper

import (
	"math/rand"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
)

// batchVectors returns a deterministic spread of feature vectors.
func batchVectors(n int) []features.Vector {
	rng := rand.New(rand.NewSource(99))
	vs := make([]features.Vector, n)
	for i := range vs {
		v := features.Vector{Intensity: rng.Intn(features.Levels)}
		for t := 0; t < features.MaxTenants; t++ {
			v.ReadChar[t] = rng.Intn(2) == 1
			v.Prop[t] = rng.Float64()
		}
		vs[i] = v
	}
	return vs
}

// TestPredictBatchMatchesPredict: the batched prediction path must agree
// with per-vector Predict for the float64 kernel, the int8 kernel, and a
// provider whose policy has no batch form (the per-vector fallback).
func TestPredictBatchMatchesPredict(t *testing.T) {
	cfg := testConfig()
	vs := batchVectors(29)
	net := testModel(t, len(cfg.Strategies))

	float64Model, err := policy.NewModel("f64", net, cfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	int8Model, err := policy.NewModelPrecision("i8", net, cfg.Strategies, nn.Int8)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := policy.NewOracle([]dataset.Sample{
		{Vector: vs[0], Label: 1},
		{Vector: vs[1], Label: 2},
	}, cfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}

	providers := map[string]policy.Provider{
		"float64":  float64Model,
		"int8":     int8Model,
		"no-batch": policy.OracleProvider{Oracle: oracle}, // lacks DecideBatch
	}
	for name, prov := range providers {
		k, err := NewWithProvider(cfg, prov)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := make([]alloc.Strategy, len(vs))
		idx := make([]int, len(vs))
		if err := k.PredictBatch(vs, out, idx); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, v := range vs {
			want, wantIdx, err := k.Predict(v)
			if err != nil {
				t.Fatal(err)
			}
			if !alloc.Equal(out[i], want) || idx[i] != wantIdx {
				t.Fatalf("%s vector %d: batch (%v, %d), Predict (%v, %d)",
					name, i, out[i], idx[i], want, wantIdx)
			}
		}
		// idx is optional; out length is not.
		if err := k.PredictBatch(vs, out, nil); err != nil {
			t.Fatalf("%s without idx: %v", name, err)
		}
		if err := k.PredictBatch(vs, out[:3], nil); err == nil {
			t.Errorf("%s: short out accepted", name)
		}
		if err := k.PredictBatch(vs, out, idx[:3]); err == nil {
			t.Errorf("%s: short idx accepted", name)
		}
	}
}
