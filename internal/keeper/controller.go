package keeper

import (
	"math/rand"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// Controller is the keeper's online loop — sliding-window feature
// collection, epoch-boundary ANN prediction, channel (and page-mode)
// re-binding — detached from any particular traffic source. Keeper.Run
// drives one from a trace replay's arrival hook; the serving daemon
// (internal/serve) drives one from live arrivals and wall-clock ticks.
//
// The controller is single-goroutine, like the engine of the device it
// re-binds: callers serialize Observe/Tick with the simulation they pace.
//
// Epoch semantics (Algorithm 2, generalized): the first window covers
// [0, Window). When simulated time reaches an epoch boundary the collected
// features are predicted and the device re-bound at that boundary time.
// With AdaptEvery == 0 the controller adapts once and then only observes;
// with AdaptEvery > 0 the window resets at each boundary and the next epoch
// ends AdaptEvery later. Boundaries with no intervening arrivals still fire
// (in order) as soon as time passes them, each seeing the features
// collected since the previous boundary.
type Controller struct {
	// SkipIdle, when set, suppresses adaptation at epoch boundaries whose
	// window saw no arrivals: the binding is left alone and no switch is
	// recorded. A live server sets it so an idle device is not re-bound
	// once per window on zero information; trace replay leaves it unset,
	// keeping the historical fire-every-boundary semantics.
	SkipIdle bool

	// Sink, when set, receives one learn.Sample per adaptation epoch: the
	// vector observed, the strategy applied, and the latency/throughput the
	// device realized under it until the next epoch fired. Nil keeps the
	// historical behavior at zero cost. Set before traffic starts; Offer is
	// called from whichever goroutine drives the controller.
	Sink learn.Sink

	k        *Keeper
	dev      *ssd.Device
	col      *features.Collector
	next     sim.Time
	observed int  // arrivals observed in the current window
	done     bool // single-shot adaptation already fired
	switches []Switch
	err      error

	// Per-controller policy instances, instantiated lazily from the
	// keeper's source and refreshed at each epoch boundary when the
	// published version changes. The controller owns them outright (they
	// carry the ANN's forward-pass scratch), so prediction takes no lock —
	// and because every controller re-checks at its own next boundary, a
	// SetActive on the source is an atomic, drain-free hot swap across all
	// serving shards.
	pol    policy.Policy
	polVer string

	// Shadow evaluation: when the source publishes a shadow candidate, it
	// decides on the same vector at every adaptation epoch and the
	// (dis)agreement is counted. Shadow decisions never touch the device.
	shadowPol     policy.Policy
	shadowVer     string
	shadowAgree   uint64
	shadowDiverge uint64
	shadowErrs    uint64

	// Outcome feed: the sample opened at the last adaptation epoch, flushed
	// with its realized outcome when the next epoch fires. Complete
	// accumulates into the open epoch; idle (skipped) boundaries extend it.
	pending     learn.Sample
	hasPending  bool
	epCompleted uint64
	epLatSum    sim.Time

	// ε-greedy exploration: with probability exploreRate an epoch applies a
	// uniformly random strategy instead of the policy's choice, feeding the
	// outcome index measurements the greedy policy would never take.
	exploreRate float64
	exploreRng  *rand.Rand

	// Health-feature state: retries seen up to the previous epoch boundary,
	// so each window's retry rate is a per-window delta, and the arrival
	// count of the window being adapted on (advance resets c.observed before
	// later boundaries fire).
	lastRetries int64
}

// Controller returns an online controller bound to dev, with the first
// epoch boundary one Window from time zero. The device must use the
// keeper's geometry (its channel count bounds the strategy space).
func (k *Keeper) Controller(dev *ssd.Device) *Controller {
	return &Controller{
		k:    k,
		dev:  dev,
		col:  features.NewCollector(k.cfg.SaturationIOPS, 0),
		next: k.cfg.Window,
	}
}

// refresh re-instantiates the controller's policy instances when the
// source's published versions changed since the last epoch. Version strings
// identify immutable providers, so a plain compare suffices.
func (c *Controller) refresh() {
	act := c.k.source.Active()
	if c.pol == nil || c.polVer != act.Version() {
		c.pol = act.NewPolicy()
		c.polVer = act.Version()
	}
	sh := c.k.source.Shadow()
	switch {
	case sh == nil:
		c.shadowPol, c.shadowVer = nil, ""
	case c.shadowPol == nil || c.shadowVer != sh.Version():
		c.shadowPol = sh.NewPolicy()
		c.shadowVer = sh.Version()
	}
}

// adapt predicts from the current window and re-binds the device at epoch
// boundary time now. When a shadow candidate is installed it decides on the
// same vector and the comparison is counted; shadow failures are counted,
// not fatal — a broken candidate must not take down the active loop. With a
// Sink installed the previous epoch's sample is flushed with its realized
// outcome and a new one opens on this epoch's decision.
func (c *Controller) adapt(now sim.Time) error {
	c.refresh()
	vec := c.col.Vector(now)
	c.mergeHealth(&vec)
	strat, err := c.pol.Decide(vec)
	if err != nil {
		return err
	}
	// Exploration overrides the applied strategy only; shadow comparison and
	// the sample's agreement fields stay against the policy's own choice, so
	// an exploring epoch never pollutes the promotion gate's tallies.
	applied, explored := strat, false
	if c.exploreRng != nil && c.exploreRng.Float64() < c.exploreRate {
		applied = c.k.cfg.Strategies[c.exploreRng.Intn(len(c.k.cfg.Strategies))]
		explored = !alloc.Equal(applied, strat)
	}
	if err := simrun.Apply(c.dev, applied, vec.Traits(), c.k.cfg.Hybrid); err != nil {
		return err
	}
	c.switches = append(c.switches, Switch{
		At: now, Vector: vec, Strategy: applied, Index: alloc.Index(c.k.cfg.Strategies, applied),
	})
	shadowIdx, shadowAgreed, shadowErred := -1, false, false
	if c.shadowPol != nil {
		switch shadow, err := c.shadowPol.Decide(vec); {
		case err != nil:
			c.shadowErrs++
			shadowErred = true
		case alloc.Equal(shadow, strat):
			c.shadowAgree++
			shadowIdx, shadowAgreed = alloc.Index(c.k.cfg.Strategies, shadow), true
		default:
			c.shadowDiverge++
			shadowIdx = alloc.Index(c.k.cfg.Strategies, shadow)
		}
	}
	if c.Sink != nil {
		c.flushSample(now)
		c.pending = learn.Sample{
			At:            now,
			Vector:        vec,
			Strategy:      applied,
			StrategyIndex: alloc.Index(c.k.cfg.Strategies, applied),
			Explore:       explored,
			PolicyVersion: c.polVer,
			ShadowVersion: c.shadowVer,
			ShadowIndex:   shadowIdx,
			ShadowAgreed:  shadowAgreed,
			ShadowErred:   shadowErred,
		}
		c.hasPending = true
	}
	return nil
}

// mergeHealth folds the device's health summary into the feature vector for
// this epoch. On an immortal device the snapshot is the zero value, so the
// vector (and therefore every decision) is bit-identical to the pre-health
// controller. RetryRate is a per-window delta — retries since the previous
// boundary over arrivals in the window — so a long-healed burst ages out
// instead of haunting every later epoch.
func (c *Controller) mergeHealth(vec *features.Vector) {
	hs := c.dev.HealthSnapshot()
	if hs == (ssd.HealthSnapshot{}) && c.lastRetries == 0 {
		return
	}
	vec.DeadDieFrac = hs.DeadDieFrac
	delta := hs.ReadRetries - c.lastRetries
	c.lastRetries = hs.ReadRetries
	if c.observed > 0 && delta > 0 {
		rate := float64(delta) / float64(c.observed)
		if rate > 1 {
			rate = 1
		}
		vec.RetryRate = rate
	}
	if hs.WearSpread > 1 {
		hs.WearSpread = 1
	}
	vec.WearSpread = hs.WearSpread
}

// flushSample closes the open epoch's sample with the completions realized
// since it was decided and hands it to the sink, then resets the outcome
// accumulators for the epoch starting at now.
func (c *Controller) flushSample(now sim.Time) {
	if c.hasPending {
		c.pending.Epoch = now - c.pending.At
		c.pending.Completed = c.epCompleted
		c.pending.LatencySum = c.epLatSum
		c.Sink.Offer(c.pending)
		c.hasPending = false
	}
	c.epCompleted, c.epLatSum = 0, 0
}

// Complete records one request completion's simulated latency against the
// open adaptation epoch. A no-op without a sink; called from the same
// goroutine that drives Observe/Tick (the shard's completion callbacks run
// in engine context, which the shard goroutine owns).
func (c *Controller) Complete(lat sim.Time) {
	if c.Sink == nil {
		return
	}
	c.epCompleted++
	c.epLatSum += lat
}

// EnableExploration turns on ε-greedy strategy exploration: each adaptation
// epoch applies a uniformly random strategy with probability rate. The
// sample emitted for an exploring epoch is flagged Explore, so the learner
// can use its outcome while keeping it out of regret estimates. rate <= 0
// disables exploration.
func (c *Controller) EnableExploration(rate float64, seed int64) {
	if rate <= 0 {
		c.exploreRate, c.exploreRng = 0, nil
		return
	}
	if rate > 1 {
		rate = 1
	}
	c.exploreRate = rate
	c.exploreRng = rand.New(rand.NewSource(seed))
}

// advance fires every epoch boundary at or before now, in order. It is a
// no-op once the controller has failed or finished its single adaptation.
func (c *Controller) advance(now sim.Time) {
	if c.err != nil || c.done {
		return
	}
	for now >= c.next {
		if !c.SkipIdle || c.observed > 0 {
			if err := c.adapt(c.next); err != nil {
				c.err = err
				return
			}
			if c.k.cfg.AdaptEvery <= 0 {
				c.done = true
				return
			}
		}
		c.col.Reset(c.next)
		c.observed = 0
		step := c.k.cfg.AdaptEvery
		if step <= 0 {
			// Idle single shot: slide the window until traffic appears.
			step = c.k.cfg.Window
		}
		c.next += step
	}
}

// Observe records one request arrival at simulated time now, first firing
// any epoch boundaries the arrival stepped past. Trace mode calls it from
// the replay's arrival hook; live mode calls it at admission.
func (c *Controller) Observe(now sim.Time, r trace.Record) {
	c.advance(now)
	if c.err != nil {
		return
	}
	c.observed++
	c.col.Observe(r)
}

// Tick fires any epoch boundaries at or before now without recording an
// arrival. Live traffic pauses between requests; the daemon's pacer ticks
// the controller so adaptation epochs track time, not just arrivals.
func (c *Controller) Tick(now sim.Time) { c.advance(now) }

// DetachTenant removes a departing tenant's contributions from the current
// feature window: after a tenant-granular drain the workload is gone, and
// the next adaptation epoch must not re-bind channels on its ghost
// features. Subsequent Observes for other tenants proceed normally.
func (c *Controller) DetachTenant(tenant int) { c.col.ClearTenant(tenant) }

// AttachTenant (re)admits a tenant to feature collection after a handoff
// replay seats it here. The collector counts whatever arrives, so attaching
// only clears any stale window contributions — the tenant starts its life
// on this device with a clean feature slate.
func (c *Controller) AttachTenant(tenant int) { c.col.ClearTenant(tenant) }

// Err returns the first prediction or re-binding failure; once set the
// controller stops adapting and observing.
func (c *Controller) Err() error { return c.err }

// Switches returns a copy of the re-allocations performed so far.
func (c *Controller) Switches() []Switch {
	return append([]Switch(nil), c.switches...)
}

// SwitchCount returns the number of re-allocations performed so far without
// copying (the daemon's metrics path polls it).
func (c *Controller) SwitchCount() int { return len(c.switches) }

// LastSwitch returns the most recent re-allocation, if any.
func (c *Controller) LastSwitch() (Switch, bool) {
	if len(c.switches) == 0 {
		return Switch{}, false
	}
	return c.switches[len(c.switches)-1], true
}

// PolicyVersion returns the version of the policy applied at the last
// adaptation epoch ("" before the first). A hot swap becomes visible here
// one epoch after SetActive.
func (c *Controller) PolicyVersion() string { return c.polVer }

// ShadowStats returns the shadow-evaluation counters: epochs where the
// candidate agreed with the active policy, epochs where it diverged, and
// epochs where it errored. All zero when no shadow is installed.
func (c *Controller) ShadowStats() (agree, diverge, errs uint64) {
	return c.shadowAgree, c.shadowDiverge, c.shadowErrs
}
