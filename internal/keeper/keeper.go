// Package keeper implements SSDKeeper itself (Section IV): the features
// collector, strategy learner, channel allocator and hybrid page allocator,
// composed into the online workflow of Algorithm 2 — run Shared while
// collecting features for a window T, forward-propagate the features through
// the trained network, then re-bind the channels (and page modes) to the
// predicted strategy for the rest of the run.
package keeper

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/workload"
)

// Config parameterizes a Keeper.
type Config struct {
	Device     nand.Config
	Options    ssd.Options
	Strategies []alloc.Strategy // label space the model was trained on
	// SaturationIOPS calibrates the intensity-level axis; must match the
	// value used during dataset generation.
	SaturationIOPS float64
	// Window is T in Algorithm 2: how long to observe the mixed workload
	// under Shared before predicting.
	Window sim.Time
	// Hybrid enables the hybrid page allocator after the prediction:
	// dynamic page allocation for write-dominated tenants, static for
	// read-dominated ones.
	Hybrid bool
	// AdaptEvery, when positive, re-collects features and re-allocates
	// every period after the first window — the self-adapting extension
	// exercised by the online-adaptation example. Zero reproduces the
	// paper's single adaptation.
	AdaptEvery sim.Time
	// Season ages the device before the run; must match the seasoning
	// used during dataset generation.
	Season workload.Seasoning
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	switch {
	case len(c.Strategies) == 0:
		return fmt.Errorf("keeper: empty strategy space")
	case c.SaturationIOPS <= 0:
		return fmt.Errorf("keeper: non-positive SaturationIOPS")
	case c.Window <= 0:
		return fmt.Errorf("keeper: non-positive window")
	case c.AdaptEvery < 0:
		return fmt.Errorf("keeper: negative AdaptEvery")
	}
	return nil
}

// Keeper binds a decision policy to a device configuration. Runs execute on
// a private simrun.Runner, so repeated Run calls on one Keeper reuse the
// simulation engine. The policy is consumed through a policy.Source, so the
// active provider can be hot-swapped while controllers are running; each
// controller owns its per-instance policy (and with it, the ANN's inference
// scratch), which is what lets every serving shard predict concurrently with
// no shared lock.
type Keeper struct {
	cfg    Config
	model  *nn.Network // retained by New for persistence; nil for provider-built keepers
	source *policy.Source
	runner *simrun.Runner

	// pool recycles per-caller policy instances for Predict so casual
	// callers (trace replay, tests) stay contention-free without managing
	// instances themselves. Controllers bypass it entirely.
	pool sync.Pool
}

// New validates that the model matches the feature dimensionality and
// strategy space, and returns a Keeper serving it as the active policy.
func New(cfg Config, model *nn.Network) (*Keeper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prov, err := policy.NewModel("in-memory", model, cfg.Strategies)
	if err != nil {
		return nil, fmt.Errorf("keeper: %w", err)
	}
	k, err := NewWithProvider(cfg, prov)
	if err != nil {
		return nil, err
	}
	k.model = model
	return k, nil
}

// NewWithProvider returns a Keeper whose decisions come from the given
// versioned provider (a registry checkpoint, a static strategy, an oracle).
func NewWithProvider(cfg Config, prov policy.Provider) (*Keeper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src, err := policy.NewSource(prov)
	if err != nil {
		return nil, fmt.Errorf("keeper: %w", err)
	}
	return &Keeper{cfg: cfg, source: src, runner: simrun.NewRunner()}, nil
}

// Config returns the keeper's configuration.
func (k *Keeper) Config() Config { return k.cfg }

// Model returns the network passed to New (for persistence), or nil when
// the keeper was built from a provider.
func (k *Keeper) Model() *nn.Network { return k.model }

// Source returns the policy source. Swapping its active provider re-points
// every controller at the next adaptation epoch; installing a shadow starts
// side-by-side evaluation.
func (k *Keeper) Source() *policy.Source { return k.source }

// pooledPolicy is one recycled Predict instance, tagged with the provider
// version it was instantiated from so a hot swap invalidates it.
type pooledPolicy struct {
	version string
	pol     policy.Policy
}

// Predict maps a feature vector to the chosen strategy and its index in the
// strategy space (-1 if the policy chose outside it). Safe for concurrent
// use with no shared lock: each call borrows a pooled per-caller policy
// instance, so forward passes never share scratch.
func (k *Keeper) Predict(v features.Vector) (alloc.Strategy, int, error) {
	prov := k.source.Active()
	pp, _ := k.pool.Get().(*pooledPolicy)
	if pp == nil || pp.version != prov.Version() {
		pp = &pooledPolicy{version: prov.Version(), pol: prov.NewPolicy()}
	}
	strat, err := pp.pol.Decide(v)
	k.pool.Put(pp)
	if err != nil {
		return alloc.Strategy{}, 0, err
	}
	return strat, alloc.Index(k.cfg.Strategies, strat), nil
}

// PredictBatch maps many feature vectors to strategies in one pass over the
// model's weight matrices — deciding for a whole fleet of shards or epochs
// at the cost of loading each weight row once. out must have len(vs)
// entries; idx, when non-nil, receives each strategy's index in the space
// (-1 if outside it). Like Predict it borrows a pooled per-caller policy
// instance, so it is safe for concurrent use with no shared lock; policies
// that do not implement policy.BatchPolicy fall back to per-vector Decide.
func (k *Keeper) PredictBatch(vs []features.Vector, out []alloc.Strategy, idx []int) error {
	if len(out) != len(vs) {
		return fmt.Errorf("keeper: %d strategy slots for %d vectors", len(out), len(vs))
	}
	if idx != nil && len(idx) != len(vs) {
		return fmt.Errorf("keeper: %d index slots for %d vectors", len(idx), len(vs))
	}
	prov := k.source.Active()
	pp, _ := k.pool.Get().(*pooledPolicy)
	if pp == nil || pp.version != prov.Version() {
		pp = &pooledPolicy{version: prov.Version(), pol: prov.NewPolicy()}
	}
	var err error
	if bp, ok := pp.pol.(policy.BatchPolicy); ok {
		err = bp.DecideBatch(vs, out)
	} else {
		for i, v := range vs {
			if out[i], err = pp.pol.Decide(v); err != nil {
				break
			}
		}
	}
	k.pool.Put(pp)
	if err != nil {
		return err
	}
	if idx != nil {
		for i := range out {
			idx[i] = alloc.Index(k.cfg.Strategies, out[i])
		}
	}
	return nil
}

// Switch records one channel re-allocation during a run.
type Switch struct {
	At       sim.Time
	Vector   features.Vector
	Strategy alloc.Strategy
	Index    int
}

// Report is the outcome of one SSDKeeper-managed run.
type Report struct {
	ssd.Result
	Switches []Switch
}

// Chosen returns the first (paper: only) strategy switch, or Shared if the
// trace ended before the window elapsed.
func (r Report) Chosen() alloc.Strategy {
	if len(r.Switches) == 0 {
		return alloc.Strategy{Kind: alloc.Shared}
	}
	return r.Switches[0].Strategy
}

// Run replays a trace under SSDKeeper management (Algorithm 2). The device
// starts in Shared with hybrid page allocation driven by live observations;
// after Window elapses the keeper predicts and re-binds channels. With
// AdaptEvery set it keeps re-observing and re-binding.
func (k *Keeper) Run(t trace.Trace) (Report, error) {
	return k.RunContext(context.Background(), t)
}

// RunContext is Run with cancellation: the replay stops between simulated
// events when ctx is cancelled and the context's error is returned.
func (k *Keeper) RunContext(ctx context.Context, t trace.Trace) (Report, error) {
	// Empty traits skip strategy binding: the device starts unbound
	// (every tenant on all channels, static allocation), the state
	// Algorithm 2 observes from before its first prediction.
	sess, err := k.runner.NewSession(simrun.Config{
		Device:  k.cfg.Device,
		Options: k.cfg.Options,
		Season:  k.cfg.Season,
	})
	if err != nil {
		return Report{}, err
	}
	dev := sess.Device()
	ctrl := k.Controller(dev)
	onArrival := func(_ int, r trace.Record) {
		ctrl.Observe(dev.Engine().Now(), r)
	}

	res, err := sess.RunObserved(ctx, t, onArrival)
	if err != nil {
		return Report{}, err
	}
	if err := ctrl.Err(); err != nil {
		return Report{}, err
	}
	return Report{Result: res.Result, Switches: ctrl.switches}, nil
}

// HybridModeFor returns the page mode the hybrid page allocator gives a
// tenant with the observed characteristic (Section IV.E): dynamic for
// write-dominated, static for read-dominated.
func HybridModeFor(writeDominated bool) ftl.PageMode {
	if writeDominated {
		return ftl.DynamicAlloc
	}
	return ftl.StaticAlloc
}

// TrainConfig bundles the dataset and optimization settings for Train.
type TrainConfig struct {
	Dataset dataset.Config
	// Hidden is the hidden-layer width (paper: 64).
	Hidden int
	// Activation for the hidden layer (paper's best: logistic).
	Activation nn.Activation
	Optimizer  nn.Optimizer
	Iterations int
	BatchSize  int
	TrainFrac  float64 // paper: 0.7
	Seed       int64
}

// TrainResult carries the trained model and its evaluation.
type TrainResult struct {
	Model   *nn.Network
	History nn.History
	Samples []dataset.Sample
	// TestSamples is the held-out 30% (in shuffled order), kept so
	// callers can compute latency regret from the stored per-strategy
	// measurements without re-simulating.
	TestSamples []dataset.Sample
}

// Train runs the full offline pipeline of Algorithm 1: generate labelled
// mixed workloads, split 7:3, and fit the classifier. progress is forwarded
// to dataset generation (may be nil); cancelling ctx aborts generation.
func Train(ctx context.Context, cfg TrainConfig, progress func(done, total int)) (TrainResult, error) {
	samples, err := dataset.Generate(ctx, cfg.Dataset, progress)
	if err != nil {
		return TrainResult{}, err
	}
	return TrainOnSamples(cfg, samples)
}

// TrainOnSamples fits the classifier on pre-generated samples (so callers
// can reuse one dataset across optimizer comparisons, as Figure 4 does).
func TrainOnSamples(cfg TrainConfig, samples []dataset.Sample) (TrainResult, error) {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.Activation == nil {
		cfg.Activation = nn.Logistic{}
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = nn.NewAdam(0)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 200
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.7
	}
	// Shuffle the samples themselves (not just the tensors) so the
	// held-out split can be returned alongside the model.
	shuffled := append([]dataset.Sample(nil), samples...)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ds := dataset.ToNN(shuffled)
	train, test := ds.Split(cfg.TrainFrac)
	cut := train.Len()
	net, err := nn.NewMLP([]int{features.Dim, cfg.Hidden, len(cfg.Dataset.Strategies)},
		cfg.Activation, cfg.Seed)
	if err != nil {
		return TrainResult{}, err
	}
	hist, err := nn.Train(net, train, test, nn.TrainConfig{
		Iterations: cfg.Iterations,
		BatchSize:  cfg.BatchSize,
		Optimizer:  cfg.Optimizer,
		Seed:       cfg.Seed + 1,
	})
	if err != nil {
		return TrainResult{}, err
	}
	return TrainResult{
		Model:       net,
		History:     hist,
		Samples:     samples,
		TestSamples: shuffled[cut:],
	}, nil
}
