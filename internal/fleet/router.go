package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/wire"
)

// Migration gate policies: what the router does with a migrating tenant's
// requests while its handoff is in flight.
const (
	// GateQueue holds the request at the router until the migration
	// completes (bounded by Config.GateWait), then forwards to the new
	// owner. Clients see added latency, not errors.
	GateQueue = "queue"
	// GateReject answers 503 with Retry-After immediately — the documented
	// migration window; clients retry and land on the new owner.
	GateReject = "reject"
)

// Config parameterizes a Router.
type Config struct {
	// Nodes is the fleet's node base URLs (http://host:port). The ring is
	// built over the set; order does not matter.
	Nodes []string
	// VNodes is the virtual-node count per node (default 64).
	VNodes int
	// Tenants is the tenant-ID space routed (default 4, matching the
	// nodes' default).
	Tenants int
	// GatePolicy is GateQueue (default) or GateReject.
	GatePolicy string
	// GateWait bounds how long a queued request waits for a migration
	// before giving up with 503 (default 15s).
	GateWait time.Duration
	// ReqTimeout bounds each proxied request (default 60s; batches ride
	// the same budget).
	ReqTimeout time.Duration
	// Conns sizes the per-node connection pool (default 64).
	Conns int
	// WireNodes, when set, enables the wire data plane: entry i is the
	// wire (host:port) address of Nodes[i], or "" to keep that node on
	// HTTP. Proxied I/O rides persistent multiplexed wire connections;
	// HTTP remains the control plane (drain/handoff/release, status) and
	// the compatibility data plane for clients that speak it.
	WireNodes []string
	// WireConns sizes the per-node wire connection pool (default 4; each
	// connection pipelines any number of in-flight requests, so this is
	// about spreading demux work, not about concurrency limits).
	WireConns int
}

func (c *Config) fillDefaults() {
	if c.VNodes == 0 {
		c.VNodes = defaultVNodes
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.GatePolicy == "" {
		c.GatePolicy = GateQueue
	}
	if c.GateWait == 0 {
		c.GateWait = 15 * time.Second
	}
	if c.ReqTimeout == 0 {
		c.ReqTimeout = 60 * time.Second
	}
	if c.Conns == 0 {
		c.Conns = 64
	}
	if c.WireConns == 0 {
		c.WireConns = 4
	}
}

// routeTable is the router's placement state, swapped whole through one
// atomic pointer (copy-on-write): the proxy hot path does one load and no
// locking; only the migration path (serialized by Router.migMu) publishes
// new tables.
type routeTable struct {
	version   uint64
	ring      *Ring
	overrides map[int]string        // tenant → owner, where it differs from the ring
	migrating map[int]chan struct{} // tenant → gate, closed when its migration ends
}

// owner resolves a tenant's current owner: explicit override first (the
// migration history), ring placement otherwise.
func (t *routeTable) owner(tenant int) string {
	if addr, ok := t.overrides[tenant]; ok {
		return addr
	}
	return t.ring.Owner(tenant)
}

// Router proxies client I/O to each tenant's owner node and executes
// tenant migrations. It is the fleet's only writer of placement state;
// nodes stay ignorant of each other.
type Router struct {
	cfg     Config
	client  *http.Client
	table   atomic.Pointer[routeTable]
	met     metrics
	members *Membership // optional; enriches /fleet/status and /metrics

	// wires maps a node's base URL to its persistent wire client (absent
	// for HTTP-only nodes). Built once at construction; connections dial
	// lazily and redial after failures.
	wires map[string]*wire.Client

	// migMu serializes migrations: one tenant moves at a time, so the
	// drain/handoff/flip sequence never interleaves with another move of
	// the same (or any) tenant.
	migMu sync.Mutex
}

// NewRouter builds a router over the given fleet. The ring is constructed
// once; placement changes only through Migrate's overrides.
func NewRouter(cfg Config) (*Router, error) {
	cfg.fillDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.GatePolicy != GateQueue && cfg.GatePolicy != GateReject {
		return nil, fmt.Errorf("fleet: unknown gate policy %q", cfg.GatePolicy)
	}
	if len(cfg.WireNodes) != 0 && len(cfg.WireNodes) != len(cfg.Nodes) {
		return nil, fmt.Errorf("fleet: %d wire addresses for %d nodes", len(cfg.WireNodes), len(cfg.Nodes))
	}
	r := &Router{
		cfg: cfg,
		client: &http.Client{
			Timeout: cfg.ReqTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Conns * len(ring.Nodes()),
				MaxIdleConnsPerHost: cfg.Conns,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	r.wires = make(map[string]*wire.Client)
	for i, wa := range cfg.WireNodes {
		if wa != "" {
			r.wires[cfg.Nodes[i]] = wire.NewClient(wa, cfg.WireConns)
		}
	}
	r.table.Store(&routeTable{
		version:   1,
		ring:      ring,
		overrides: map[int]string{},
		migrating: map[int]chan struct{}{},
	})
	return r, nil
}

// Close tears down the router's persistent wire connections. In-flight
// calls fail with a transport error; HTTP proxying is unaffected.
func (r *Router) Close() {
	for _, wc := range r.wires {
		wc.Close()
	}
}

// SetMembership attaches a prober whose snapshots enrich /fleet/status and
// /metrics. Call before serving.
func (r *Router) SetMembership(m *Membership) { r.members = m }

// publish swaps in a new route table derived from the current one. Caller
// must hold migMu (handlers only ever read the table).
func (r *Router) publish(mutate func(*routeTable)) *routeTable {
	cur := r.table.Load()
	next := &routeTable{
		version:   cur.version + 1,
		ring:      cur.ring,
		overrides: make(map[int]string, len(cur.overrides)),
		migrating: make(map[int]chan struct{}, len(cur.migrating)),
	}
	for k, v := range cur.overrides {
		next.overrides[k] = v
	}
	for k, v := range cur.migrating {
		next.migrating[k] = v
	}
	mutate(next)
	r.table.Store(next)
	return next
}

// Owner returns the tenant's current owner node.
func (r *Router) Owner(tenant int) string { return r.table.Load().owner(tenant) }

// resolve returns the tenant's owner once any in-flight migration of that
// tenant has been dealt with per the gate policy. A nil error with an empty
// address never happens; a gate rejection returns errMigrating.
var errMigrating = fmt.Errorf("fleet: tenant migrating")

func (r *Router) resolve(tenant int) (string, error) {
	deadline := time.Now().Add(r.cfg.GateWait)
	for {
		tab := r.table.Load()
		gate, mig := tab.migrating[tenant]
		if !mig {
			return tab.owner(tenant), nil
		}
		if r.cfg.GatePolicy == GateReject {
			r.met.gateRejects.Add(1)
			return "", errMigrating
		}
		r.met.gateWaits.Add(1)
		wait := time.Until(deadline)
		if wait <= 0 {
			r.met.gateRejects.Add(1)
			return "", errMigrating
		}
		t := time.NewTimer(wait)
		select {
		case <-gate:
			t.Stop()
			// Re-load the table: the migration published a new owner.
		case <-t.C:
			r.met.gateRejects.Add(1)
			return "", errMigrating
		}
	}
}

// Handler returns the router's HTTP surface: the proxied data plane
// (/io, /io/batch), the fleet control plane (/fleet/status, /fleet/migrate),
// and the usual /metrics, /healthz, /readyz.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/io", r.handleIO)
	mux.HandleFunc("/io/batch", r.handleBatch)
	mux.HandleFunc("/fleet/status", r.handleStatus)
	mux.HandleFunc("/fleet/migrate", r.handleMigrate)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteMetrics(w)
	})
	ok := func(w http.ResponseWriter, req *http.Request) { fmt.Fprintln(w, "ok") }
	mux.HandleFunc("/healthz", ok)
	// The router holds no device state; it is ready as soon as it routes.
	mux.HandleFunc("/readyz", ok)
	return mux
}

func writeGateReject(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "tenant migrating", http.StatusServiceUnavailable)
}

// ioBodyPool recycles /io request bodies and ioRespPool the rendered
// responses, so the proxy fast path reads, decodes, forwards, and renders
// without per-request allocations of its own.
var (
	ioBodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	ioRespPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 64)
		return &b
	}}
)

// handleIO proxies one JSON request to its tenant's owner — over the
// persistent wire transport when the owner has one, over HTTP otherwise
// (the body is decoded only to learn the tenant, then forwarded verbatim).
// A "migrating" rejection from a node that gated the tenant under our feet
// is retried through resolve (the request never reached a device, so the
// retry cannot duplicate work). One client request counts as one proxied
// request no matter how many retry attempts it takes.
func (r *Router) handleIO(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	bodyBuf := ioBodyPool.Get().(*bytes.Buffer)
	bodyBuf.Reset()
	defer ioBodyPool.Put(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, req.Body, 1<<20)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body := bodyBuf.Bytes()
	sreq, err := serve.DecodeJSONRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sreq.Tenant < 0 || sreq.Tenant >= r.cfg.Tenants {
		http.Error(w, fmt.Sprintf("tenant %d outside [0,%d)", sreq.Tenant, r.cfg.Tenants), http.StatusBadRequest)
		return
	}
	for attempt := 0; ; attempt++ {
		owner, err := r.resolve(sreq.Tenant)
		if err != nil {
			writeGateReject(w)
			return
		}
		if wc := r.wires[owner]; wc != nil {
			lat, at, reason, err := wc.Do(sreq, r.cfg.ReqTimeout)
			if err != nil {
				r.met.proxyErrs.Add(1)
				http.Error(w, fmt.Sprintf("upstream %s: %v", owner, err), http.StatusBadGateway)
				return
			}
			if attempt == 0 { // one client request counts once, whatever the retries do
				r.met.proxied.Add(1)
				r.met.wireProxied.Add(1)
			}
			if reason == "migrating" && r.cfg.GatePolicy == GateQueue && attempt < 4 {
				continue
			}
			if reason != "" {
				writeReasonReject(w, reason)
				return
			}
			bp := ioRespPool.Get().(*[]byte)
			out := serve.AppendIOResponse((*bp)[:0], lat, at)
			w.Header().Set("Content-Type", "application/json")
			w.Write(out)
			*bp = out[:0]
			ioRespPool.Put(bp)
			return
		}
		resp, err := r.client.Post(owner+"/io", "application/json", bytes.NewReader(body))
		if err != nil {
			r.met.proxyErrs.Add(1)
			http.Error(w, fmt.Sprintf("upstream %s: %v", owner, err), http.StatusBadGateway)
			return
		}
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if attempt == 0 {
			r.met.proxied.Add(1)
		}
		if resp.StatusCode == http.StatusServiceUnavailable &&
			strings.Contains(string(respBody), "migrating") &&
			r.cfg.GatePolicy == GateQueue && attempt < 4 {
			// The node gated this tenant between our table load and the
			// forward; wait the migration out and retry at the new owner.
			continue
		}
		for _, h := range []string{"Content-Type", "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return
	}
}

// writeReasonReject maps a wire rejection token onto the HTTP status the
// node's own front end would have used, so clients cannot tell which data
// plane carried their request.
func writeReasonReject(w http.ResponseWriter, reason string) {
	var status int
	switch reason {
	case "queue_full":
		status = http.StatusTooManyRequests
	case "migrating", "draining":
		status = http.StatusServiceUnavailable
	case "timeout":
		status = http.StatusGatewayTimeout
	default:
		status = http.StatusBadRequest
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, wire.ReasonError(reason).Error(), status)
}

// Batch bounds, aligned with the node-side decoder (serve/http.go): the
// body cap matches, the line cap matches, and an oversized line answers a
// clear 400 instead of silently truncating the batch.
const (
	maxBatchBody  = 4 << 20
	maxBatchLines = 65536
)

// batchLine is one scanned line's routing and outcome. Wire outcomes land
// from connection read goroutines: the observer fills lat/ok/reason, then
// publishes with an atomic store to state; the renderer reads fields only
// after observing the store (lines never resolved by the deadline render
// as upstream failures without touching the racy fields).
type batchLine struct {
	req    serve.Request
	owner  int16  // index into batchState.owners; -1 for local rejections
	pos    int32  // position within the owner's sub-batch
	state  uint32 // wire lines: 0 in flight, 1 resolved (atomic)
	ok     bool
	lat    int64
	reason string // interned rejection token for local/wire rejections
}

// ownerBatch is one node's slice of a batch: for HTTP owners the
// accumulated sub-batch body and the reply arena; for wire owners just the
// line count (requests pipeline individually, no body is built).
type ownerBatch struct {
	addr  string
	wc    *wire.Client
	n     int32
	body  []byte  // HTTP: sub-batch request body
	arena []byte  // HTTP: reply bytes, gathered without per-line strings
	offs  []int32 // HTTP: arena offsets; reply i is arena[offs[i]:offs[i+1]]
	fail  bool    // HTTP: whole sub-batch failed
}

// batchState is a batch's whole scratch space, pooled so the steady-state
// scatter/gather path allocates nothing. A state whose wire outcomes all
// arrived goes back to the pool; one abandoned at the deadline is left to
// the garbage collector, because late observers still hold it.
type batchState struct {
	lines       []batchLine
	owners      []ownerBatch
	tenantOwner []int16 // per tenant: -2 unresolved, -1 gate-rejected, else owner index
	remaining   atomic.Int64
	wireDone    chan struct{}
}

func (st *batchState) Done(tag uint64, latencyNS, _ int64, reason string, err error) {
	l := &st.lines[tag]
	switch {
	case err != nil:
		l.reason = wire.ReasonUpstream
	case reason != "":
		l.reason = reason
	default:
		l.ok = true
		l.lat = latencyNS
	}
	atomic.StoreUint32(&l.state, 1)
	if st.remaining.Add(-1) == 0 {
		close(st.wireDone)
	}
}

var batchStatePool = sync.Pool{New: func() any { return new(batchState) }}

func (r *Router) getBatchState() *batchState {
	st := batchStatePool.Get().(*batchState)
	st.lines = st.lines[:0]
	st.owners = st.owners[:0] // slots are reset as ownerIndex reuses them
	if cap(st.tenantOwner) < r.cfg.Tenants {
		st.tenantOwner = make([]int16, r.cfg.Tenants)
	}
	st.tenantOwner = st.tenantOwner[:r.cfg.Tenants]
	for i := range st.tenantOwner {
		st.tenantOwner[i] = -2
	}
	st.remaining.Store(0)
	st.wireDone = make(chan struct{})
	return st
}

// ownerIndex interns an owner address into the batch's owner list. A slot
// within the pooled slice's capacity is reused in place — its body, arena,
// and offs keep the capacity they grew in earlier batches, which is what
// keeps the steady-state HTTP scatter/gather path allocation-free.
func (st *batchState) ownerIndex(r *Router, addr string) int16 {
	for i := range st.owners {
		if st.owners[i].addr == addr {
			return int16(i)
		}
	}
	n := len(st.owners)
	if n < cap(st.owners) {
		st.owners = st.owners[:n+1]
		ob := &st.owners[n]
		ob.addr, ob.wc = addr, r.wires[addr]
		ob.n, ob.fail = 0, false
		ob.body, ob.arena, ob.offs = ob.body[:0], ob.arena[:0], ob.offs[:0]
	} else {
		st.owners = append(st.owners, ownerBatch{addr: addr, wc: r.wires[addr]})
	}
	return int16(n)
}

var (
	batchScanPool = sync.Pool{New: func() any {
		b := make([]byte, 64<<10)
		return &b
	}}
	batchWriterPool = sync.Pool{New: func() any {
		return bufio.NewWriterSize(nil, 32<<10)
	}}
)

// handleBatch proxies a line-protocol batch, splitting it by owner node.
// Lines keep their positions: owners are resolved once per (batch, tenant),
// wire owners have each line pipelined individually onto their persistent
// connections (tagged with the line index, so replies demux straight into
// place), HTTP owners receive sub-batches preserving relative order, and
// the replies are gathered back into one response in the original line
// order. Steady state allocates nothing: the scan buffer, line table,
// per-owner bodies, and reply arenas are all pooled, and lines are decoded
// with DecodeLineBytes straight off the scanner's buffer.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	st := r.getBatchState()
	abandoned := false
	defer func() {
		if !abandoned {
			batchStatePool.Put(st)
		}
	}()

	bufp := batchScanPool.Get().(*[]byte)
	defer batchScanPool.Put(bufp)
	sc := bufio.NewScanner(http.MaxBytesReader(w, req.Body, maxBatchBody))
	sc.Buffer(*bufp, maxBatchBody)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if len(st.lines) >= maxBatchLines {
			http.Error(w, fmt.Sprintf("batch exceeds %d lines", maxBatchLines), http.StatusBadRequest)
			return
		}
		sreq, err := serve.DecodeLineBytes(raw)
		if err != nil || sreq.Tenant < 0 || sreq.Tenant >= r.cfg.Tenants {
			st.lines = append(st.lines, batchLine{owner: -1, reason: "invalid"})
			continue
		}
		own := st.tenantOwner[sreq.Tenant]
		if own == -2 { // first line of this tenant: resolve once per batch
			addr, err := r.resolve(sreq.Tenant)
			if err != nil {
				own = -1
			} else {
				own = st.ownerIndex(r, addr)
			}
			st.tenantOwner[sreq.Tenant] = own
		}
		if own == -1 {
			st.lines = append(st.lines, batchLine{owner: -1, reason: "migrating"})
			continue
		}
		ob := &st.owners[own]
		if ob.wc == nil {
			ob.body = append(ob.body, raw...)
			ob.body = append(ob.body, '\n')
		}
		st.lines = append(st.lines, batchLine{req: sreq, owner: own, pos: ob.n})
		ob.n++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			err = fmt.Errorf("batch line exceeds %d bytes", maxBatchBody)
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Scatter. Wire lines pipeline one by one (the outbox coalesces their
	// frames into few writes); HTTP owners get one goroutine each.
	wireLines := int64(0)
	for i := range st.owners {
		if st.owners[i].wc != nil {
			wireLines += int64(st.owners[i].n)
		}
	}
	st.remaining.Store(wireLines)
	var wg sync.WaitGroup
	for i := range st.owners {
		ob := &st.owners[i]
		if ob.wc != nil {
			continue
		}
		wg.Add(1)
		go func(ob *ownerBatch) {
			defer wg.Done()
			r.gatherHTTP(ob)
		}(ob)
	}
	if wireLines > 0 {
		r.met.proxied.Add(uint64(wireLines))
		r.met.wireProxied.Add(uint64(wireLines))
		for i := range st.lines {
			l := &st.lines[i]
			if l.owner < 0 {
				continue
			}
			wc := st.owners[l.owner].wc
			if wc == nil {
				continue
			}
			if err := wc.Start(l.req, uint64(i), st); err != nil {
				st.Done(uint64(i), 0, 0, "", err)
			}
		}
	}
	wg.Wait()
	if wireLines > 0 {
		t := time.NewTimer(r.cfg.ReqTimeout)
		select {
		case <-st.wireDone:
			t.Stop()
		case <-t.C:
			abandoned = true // late observers still hold st; leave it to GC
		}
	}

	// Gather: render replies in original line order.
	w.Header().Set("Content-Type", "text/plain")
	bw := batchWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Flush()
		bw.Reset(nil)
		batchWriterPool.Put(bw)
	}()
	var num [20]byte
	for i := range st.lines {
		l := &st.lines[i]
		switch {
		case l.owner < 0:
			bw.WriteString("rej ")
			bw.WriteString(l.reason)
		case st.owners[l.owner].wc != nil:
			if atomic.LoadUint32(&l.state) != 1 {
				bw.WriteString("rej upstream")
			} else if l.ok {
				bw.WriteString("ok ")
				bw.Write(strconv.AppendInt(num[:0], l.lat, 10))
			} else {
				bw.WriteString("rej ")
				bw.WriteString(l.reason)
			}
		default:
			ob := &st.owners[l.owner]
			if ob.fail || int(l.pos) >= len(ob.offs)-1 {
				bw.WriteString("rej upstream")
			} else {
				bw.Write(ob.arena[ob.offs[l.pos]:ob.offs[l.pos+1]])
			}
		}
		bw.WriteByte('\n')
	}
}

// gatherHTTP forwards one HTTP owner's sub-batch and collects its reply
// lines into the owner's arena. Missing trailer lines (node died mid-reply)
// leave offs short; the renderer answers "rej upstream" for those.
func (r *Router) gatherHTTP(ob *ownerBatch) {
	resp, err := r.client.Post(ob.addr+"/io/batch", "text/plain", bytes.NewReader(ob.body))
	if err != nil {
		r.met.proxyErrs.Add(1)
		ob.fail = true
		return
	}
	defer resp.Body.Close()
	r.met.proxied.Add(uint64(ob.n))
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		ob.fail = true
		return
	}
	bufp := batchScanPool.Get().(*[]byte)
	defer batchScanPool.Put(bufp)
	rs := bufio.NewScanner(resp.Body)
	rs.Buffer(*bufp, maxBatchBody)
	ob.offs = append(ob.offs, int32(len(ob.arena)))
	got := int32(0)
	for rs.Scan() && got < ob.n {
		ob.arena = append(ob.arena, rs.Bytes()...)
		ob.offs = append(ob.offs, int32(len(ob.arena)))
		got++
	}
}

// statusReply is /fleet/status's JSON document.
type statusReply struct {
	Nodes       []string          `json:"nodes"`
	WireNodes   map[string]string `json:"wire_nodes,omitempty"` // node URL → wire addr
	RingVersion uint64            `json:"ring_version"`
	Tenants     map[string]string `json:"tenants"` // tenant → owner
	Migrating   []int             `json:"migrating,omitempty"`
	Ready       map[string]bool   `json:"ready,omitempty"`
	Migrations  map[string]uint64 `json:"migrations"`
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	tab := r.table.Load()
	st := statusReply{
		Nodes:       tab.ring.Nodes(),
		RingVersion: tab.version,
		Tenants:     map[string]string{},
		Migrations: map[string]uint64{
			"started":   r.met.migStarted.Load(),
			"completed": r.met.migCompleted.Load(),
			"aborted":   r.met.migAborted.Load(),
		},
	}
	for t := 0; t < r.cfg.Tenants; t++ {
		st.Tenants[strconv.Itoa(t)] = tab.owner(t)
	}
	if len(r.wires) > 0 {
		st.WireNodes = map[string]string{}
		for node, wc := range r.wires {
			st.WireNodes[node] = wc.Addr()
		}
	}
	for t := range tab.migrating {
		st.Migrating = append(st.Migrating, t)
	}
	if r.members != nil {
		st.Ready = map[string]bool{}
		for _, ns := range r.members.Snapshot() {
			st.Ready[ns.Addr] = ns.Ready
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleMigrate is the fleet's admin lever: POST /fleet/migrate?tenant=N&to=URL
// moves a tenant to an explicit node. The rebalancer uses Migrate directly.
func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tenant, err := strconv.Atoi(req.URL.Query().Get("tenant"))
	if err != nil || tenant < 0 || tenant >= r.cfg.Tenants {
		http.Error(w, "tenant: integer in range required", http.StatusBadRequest)
		return
	}
	target := req.URL.Query().Get("to")
	if err := r.Migrate(tenant, target); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "tenant %d → %s\n", tenant, target)
}

// Migrate moves one tenant to the target node, live:
//
//  1. gate — publish the tenant as MIGRATING; new requests queue at the
//     router (or 503 per policy) while everything already admitted at the
//     source completes normally;
//  2. drain — POST source /tenant/drain quiesces the tenant's queues across
//     the source's shards and returns its dispatched-record log;
//  3. handoff — POST target /tenant/handoff replays the log there, so the
//     tenant's device footprint exists on the target before traffic does;
//  4. flip — publish the ring override and close the gate: queued requests
//     proceed to the new owner;
//  5. release — POST source /tenant/release reopens the source gate
//     (harmless; nothing routes there anymore).
//
// The drain completes (never discards) admitted work and the replay
// produces no client completions, so a migration loses nothing and
// duplicates nothing — the property the migration race test and the fleet
// smoke assert.
func (r *Router) Migrate(tenant int, target string) error {
	if tenant < 0 || tenant >= r.cfg.Tenants {
		return fmt.Errorf("fleet: tenant %d outside [0,%d)", tenant, r.cfg.Tenants)
	}
	r.migMu.Lock()
	defer r.migMu.Unlock()

	tab := r.table.Load()
	valid := false
	for _, n := range tab.ring.Nodes() {
		if n == target {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("fleet: %q is not a fleet node", target)
	}
	source := tab.owner(tenant)
	if source == target {
		return nil
	}

	start := time.Now()
	r.met.migStarted.Add(1)
	gate := make(chan struct{})
	r.publish(func(t *routeTable) { t.migrating[tenant] = gate })

	abort := func(err error) error {
		r.publish(func(t *routeTable) { delete(t.migrating, tenant) })
		close(gate)
		r.met.migAborted.Add(1)
		return err
	}

	drainResp, err := r.client.Post(
		fmt.Sprintf("%s/tenant/drain?tenant=%d", source, tenant), "", nil)
	if err != nil {
		return abort(fmt.Errorf("fleet: drain on %s: %w", source, err))
	}
	drainBody, _ := io.ReadAll(io.LimitReader(drainResp.Body, 1<<30))
	drainResp.Body.Close()
	if drainResp.StatusCode != http.StatusOK {
		return abort(fmt.Errorf("fleet: drain on %s: %s: %s",
			source, drainResp.Status, strings.TrimSpace(string(drainBody))))
	}

	handResp, err := r.client.Post(
		fmt.Sprintf("%s/tenant/handoff?tenant=%d", target, tenant),
		"application/json", bytes.NewReader(drainBody))
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(handResp.Body, 1<<20))
		handResp.Body.Close()
		if handResp.StatusCode != http.StatusOK {
			err = fmt.Errorf("fleet: handoff on %s: %s", target, handResp.Status)
		}
	} else {
		err = fmt.Errorf("fleet: handoff on %s: %w", target, err)
	}
	if err != nil {
		// Roll back: reopen the source so the tenant keeps serving where
		// its state still lives.
		r.release(source, tenant)
		return abort(err)
	}

	r.publish(func(t *routeTable) {
		t.overrides[tenant] = target
		delete(t.migrating, tenant)
	})
	close(gate)
	// Best-effort: the source's gate no longer matters for routing, but an
	// open gate keeps its /readyz honest.
	r.release(source, tenant)
	r.met.migCompleted.Add(1)
	r.met.handoffNS.Add(time.Since(start).Nanoseconds())
	return nil
}

// release reopens a node's tenant gate, best-effort.
func (r *Router) release(node string, tenant int) {
	resp, err := r.client.Post(
		fmt.Sprintf("%s/tenant/release?tenant=%d", node, tenant), "", nil)
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
}
