package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/serve"
)

// Migration gate policies: what the router does with a migrating tenant's
// requests while its handoff is in flight.
const (
	// GateQueue holds the request at the router until the migration
	// completes (bounded by Config.GateWait), then forwards to the new
	// owner. Clients see added latency, not errors.
	GateQueue = "queue"
	// GateReject answers 503 with Retry-After immediately — the documented
	// migration window; clients retry and land on the new owner.
	GateReject = "reject"
)

// Config parameterizes a Router.
type Config struct {
	// Nodes is the fleet's node base URLs (http://host:port). The ring is
	// built over the set; order does not matter.
	Nodes []string
	// VNodes is the virtual-node count per node (default 64).
	VNodes int
	// Tenants is the tenant-ID space routed (default 4, matching the
	// nodes' default).
	Tenants int
	// GatePolicy is GateQueue (default) or GateReject.
	GatePolicy string
	// GateWait bounds how long a queued request waits for a migration
	// before giving up with 503 (default 15s).
	GateWait time.Duration
	// ReqTimeout bounds each proxied request (default 60s; batches ride
	// the same budget).
	ReqTimeout time.Duration
	// Conns sizes the per-node connection pool (default 64).
	Conns int
}

func (c *Config) fillDefaults() {
	if c.VNodes == 0 {
		c.VNodes = defaultVNodes
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.GatePolicy == "" {
		c.GatePolicy = GateQueue
	}
	if c.GateWait == 0 {
		c.GateWait = 15 * time.Second
	}
	if c.ReqTimeout == 0 {
		c.ReqTimeout = 60 * time.Second
	}
	if c.Conns == 0 {
		c.Conns = 64
	}
}

// routeTable is the router's placement state, swapped whole through one
// atomic pointer (copy-on-write): the proxy hot path does one load and no
// locking; only the migration path (serialized by Router.migMu) publishes
// new tables.
type routeTable struct {
	version   uint64
	ring      *Ring
	overrides map[int]string        // tenant → owner, where it differs from the ring
	migrating map[int]chan struct{} // tenant → gate, closed when its migration ends
}

// owner resolves a tenant's current owner: explicit override first (the
// migration history), ring placement otherwise.
func (t *routeTable) owner(tenant int) string {
	if addr, ok := t.overrides[tenant]; ok {
		return addr
	}
	return t.ring.Owner(tenant)
}

// Router proxies client I/O to each tenant's owner node and executes
// tenant migrations. It is the fleet's only writer of placement state;
// nodes stay ignorant of each other.
type Router struct {
	cfg     Config
	client  *http.Client
	table   atomic.Pointer[routeTable]
	met     metrics
	members *Membership // optional; enriches /fleet/status and /metrics

	// migMu serializes migrations: one tenant moves at a time, so the
	// drain/handoff/flip sequence never interleaves with another move of
	// the same (or any) tenant.
	migMu sync.Mutex
}

// NewRouter builds a router over the given fleet. The ring is constructed
// once; placement changes only through Migrate's overrides.
func NewRouter(cfg Config) (*Router, error) {
	cfg.fillDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.GatePolicy != GateQueue && cfg.GatePolicy != GateReject {
		return nil, fmt.Errorf("fleet: unknown gate policy %q", cfg.GatePolicy)
	}
	r := &Router{
		cfg: cfg,
		client: &http.Client{
			Timeout: cfg.ReqTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Conns * len(ring.Nodes()),
				MaxIdleConnsPerHost: cfg.Conns,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	r.table.Store(&routeTable{
		version:   1,
		ring:      ring,
		overrides: map[int]string{},
		migrating: map[int]chan struct{}{},
	})
	return r, nil
}

// SetMembership attaches a prober whose snapshots enrich /fleet/status and
// /metrics. Call before serving.
func (r *Router) SetMembership(m *Membership) { r.members = m }

// publish swaps in a new route table derived from the current one. Caller
// must hold migMu (handlers only ever read the table).
func (r *Router) publish(mutate func(*routeTable)) *routeTable {
	cur := r.table.Load()
	next := &routeTable{
		version:   cur.version + 1,
		ring:      cur.ring,
		overrides: make(map[int]string, len(cur.overrides)),
		migrating: make(map[int]chan struct{}, len(cur.migrating)),
	}
	for k, v := range cur.overrides {
		next.overrides[k] = v
	}
	for k, v := range cur.migrating {
		next.migrating[k] = v
	}
	mutate(next)
	r.table.Store(next)
	return next
}

// Owner returns the tenant's current owner node.
func (r *Router) Owner(tenant int) string { return r.table.Load().owner(tenant) }

// resolve returns the tenant's owner once any in-flight migration of that
// tenant has been dealt with per the gate policy. A nil error with an empty
// address never happens; a gate rejection returns errMigrating.
var errMigrating = fmt.Errorf("fleet: tenant migrating")

func (r *Router) resolve(tenant int) (string, error) {
	deadline := time.Now().Add(r.cfg.GateWait)
	for {
		tab := r.table.Load()
		gate, mig := tab.migrating[tenant]
		if !mig {
			return tab.owner(tenant), nil
		}
		if r.cfg.GatePolicy == GateReject {
			r.met.gateRejects.Add(1)
			return "", errMigrating
		}
		r.met.gateWaits.Add(1)
		wait := time.Until(deadline)
		if wait <= 0 {
			r.met.gateRejects.Add(1)
			return "", errMigrating
		}
		t := time.NewTimer(wait)
		select {
		case <-gate:
			t.Stop()
			// Re-load the table: the migration published a new owner.
		case <-t.C:
			r.met.gateRejects.Add(1)
			return "", errMigrating
		}
	}
}

// Handler returns the router's HTTP surface: the proxied data plane
// (/io, /io/batch), the fleet control plane (/fleet/status, /fleet/migrate),
// and the usual /metrics, /healthz, /readyz.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/io", r.handleIO)
	mux.HandleFunc("/io/batch", r.handleBatch)
	mux.HandleFunc("/fleet/status", r.handleStatus)
	mux.HandleFunc("/fleet/migrate", r.handleMigrate)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteMetrics(w)
	})
	ok := func(w http.ResponseWriter, req *http.Request) { fmt.Fprintln(w, "ok") }
	mux.HandleFunc("/healthz", ok)
	// The router holds no device state; it is ready as soon as it routes.
	mux.HandleFunc("/readyz", ok)
	return mux
}

func writeGateReject(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "tenant migrating", http.StatusServiceUnavailable)
}

// handleIO proxies one JSON request to its tenant's owner. The body is
// decoded only to learn the tenant, then forwarded verbatim. A 503
// "migrating" answer from a node that gated the tenant under our feet is
// retried through resolve (the request never reached a device, so the
// retry cannot duplicate work).
func (r *Router) handleIO(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sreq, err := serve.DecodeJSONRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sreq.Tenant < 0 || sreq.Tenant >= r.cfg.Tenants {
		http.Error(w, fmt.Sprintf("tenant %d outside [0,%d)", sreq.Tenant, r.cfg.Tenants), http.StatusBadRequest)
		return
	}
	for attempt := 0; ; attempt++ {
		owner, err := r.resolve(sreq.Tenant)
		if err != nil {
			writeGateReject(w)
			return
		}
		resp, err := r.client.Post(owner+"/io", "application/json", bytes.NewReader(body))
		if err != nil {
			r.met.proxyErrs.Add(1)
			http.Error(w, fmt.Sprintf("upstream %s: %v", owner, err), http.StatusBadGateway)
			return
		}
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		r.met.proxied.Add(1)
		if resp.StatusCode == http.StatusServiceUnavailable &&
			strings.Contains(string(respBody), "migrating") &&
			r.cfg.GatePolicy == GateQueue && attempt < 4 {
			// The node gated this tenant between our table load and the
			// forward; wait the migration out and retry at the new owner.
			continue
		}
		for _, h := range []string{"Content-Type", "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return
	}
}

// handleBatch proxies a line-protocol batch, splitting it by owner node.
// Lines keep their positions: the batch is scattered into per-owner
// sub-batches (preserving relative order, which fixes each sub-batch's
// reply order), forwarded concurrently, and the replies are gathered back
// into one response in the original line order.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	type lineRoute struct {
		line  string
		owner string // "" for locally rejected lines
		reply string
	}
	var lines []lineRoute
	owners := map[string][]int{} // owner → indexes of its lines
	sc := bufio.NewScanner(http.MaxBytesReader(w, req.Body, 4<<20))
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		raw := sc.Text()
		if len(raw) == 0 {
			continue
		}
		sreq, err := serve.DecodeLine(raw)
		if err != nil {
			lines = append(lines, lineRoute{line: raw, reply: "rej invalid"})
			continue
		}
		if sreq.Tenant < 0 || sreq.Tenant >= r.cfg.Tenants {
			lines = append(lines, lineRoute{line: raw, reply: "rej invalid"})
			continue
		}
		owner, err := r.resolve(sreq.Tenant)
		if err != nil {
			r.met.gateRejects.Add(1)
			lines = append(lines, lineRoute{line: raw, reply: "rej migrating"})
			continue
		}
		idx := len(lines)
		lines = append(lines, lineRoute{line: raw, owner: owner})
		owners[owner] = append(owners[owner], idx)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var wg sync.WaitGroup
	for owner, idxs := range owners {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			var sb strings.Builder
			for _, i := range idxs {
				sb.WriteString(lines[i].line)
				sb.WriteByte('\n')
			}
			resp, err := r.client.Post(owner+"/io/batch", "text/plain", strings.NewReader(sb.String()))
			if err != nil {
				r.met.proxyErrs.Add(1)
				for _, i := range idxs {
					lines[i].reply = "rej upstream"
				}
				return
			}
			defer resp.Body.Close()
			r.met.proxied.Add(uint64(len(idxs)))
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				for _, i := range idxs {
					lines[i].reply = "rej upstream"
				}
				return
			}
			rs := bufio.NewScanner(resp.Body)
			rs.Buffer(make([]byte, 64<<10), 64<<10)
			at := 0
			for rs.Scan() && at < len(idxs) {
				lines[idxs[at]].reply = rs.Text()
				at++
			}
			for ; at < len(idxs); at++ {
				lines[idxs[at]].reply = "rej upstream"
			}
		}(owner, idxs)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain")
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for i := range lines {
		bw.WriteString(lines[i].reply)
		bw.WriteByte('\n')
	}
}

// statusReply is /fleet/status's JSON document.
type statusReply struct {
	Nodes       []string          `json:"nodes"`
	RingVersion uint64            `json:"ring_version"`
	Tenants     map[string]string `json:"tenants"` // tenant → owner
	Migrating   []int             `json:"migrating,omitempty"`
	Ready       map[string]bool   `json:"ready,omitempty"`
	Migrations  map[string]uint64 `json:"migrations"`
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	tab := r.table.Load()
	st := statusReply{
		Nodes:       tab.ring.Nodes(),
		RingVersion: tab.version,
		Tenants:     map[string]string{},
		Migrations: map[string]uint64{
			"started":   r.met.migStarted.Load(),
			"completed": r.met.migCompleted.Load(),
			"aborted":   r.met.migAborted.Load(),
		},
	}
	for t := 0; t < r.cfg.Tenants; t++ {
		st.Tenants[strconv.Itoa(t)] = tab.owner(t)
	}
	for t := range tab.migrating {
		st.Migrating = append(st.Migrating, t)
	}
	if r.members != nil {
		st.Ready = map[string]bool{}
		for _, ns := range r.members.Snapshot() {
			st.Ready[ns.Addr] = ns.Ready
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleMigrate is the fleet's admin lever: POST /fleet/migrate?tenant=N&to=URL
// moves a tenant to an explicit node. The rebalancer uses Migrate directly.
func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tenant, err := strconv.Atoi(req.URL.Query().Get("tenant"))
	if err != nil || tenant < 0 || tenant >= r.cfg.Tenants {
		http.Error(w, "tenant: integer in range required", http.StatusBadRequest)
		return
	}
	target := req.URL.Query().Get("to")
	if err := r.Migrate(tenant, target); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "tenant %d → %s\n", tenant, target)
}

// Migrate moves one tenant to the target node, live:
//
//  1. gate — publish the tenant as MIGRATING; new requests queue at the
//     router (or 503 per policy) while everything already admitted at the
//     source completes normally;
//  2. drain — POST source /tenant/drain quiesces the tenant's queues across
//     the source's shards and returns its dispatched-record log;
//  3. handoff — POST target /tenant/handoff replays the log there, so the
//     tenant's device footprint exists on the target before traffic does;
//  4. flip — publish the ring override and close the gate: queued requests
//     proceed to the new owner;
//  5. release — POST source /tenant/release reopens the source gate
//     (harmless; nothing routes there anymore).
//
// The drain completes (never discards) admitted work and the replay
// produces no client completions, so a migration loses nothing and
// duplicates nothing — the property the migration race test and the fleet
// smoke assert.
func (r *Router) Migrate(tenant int, target string) error {
	if tenant < 0 || tenant >= r.cfg.Tenants {
		return fmt.Errorf("fleet: tenant %d outside [0,%d)", tenant, r.cfg.Tenants)
	}
	r.migMu.Lock()
	defer r.migMu.Unlock()

	tab := r.table.Load()
	valid := false
	for _, n := range tab.ring.Nodes() {
		if n == target {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("fleet: %q is not a fleet node", target)
	}
	source := tab.owner(tenant)
	if source == target {
		return nil
	}

	start := time.Now()
	r.met.migStarted.Add(1)
	gate := make(chan struct{})
	r.publish(func(t *routeTable) { t.migrating[tenant] = gate })

	abort := func(err error) error {
		r.publish(func(t *routeTable) { delete(t.migrating, tenant) })
		close(gate)
		r.met.migAborted.Add(1)
		return err
	}

	drainResp, err := r.client.Post(
		fmt.Sprintf("%s/tenant/drain?tenant=%d", source, tenant), "", nil)
	if err != nil {
		return abort(fmt.Errorf("fleet: drain on %s: %w", source, err))
	}
	drainBody, _ := io.ReadAll(io.LimitReader(drainResp.Body, 1<<30))
	drainResp.Body.Close()
	if drainResp.StatusCode != http.StatusOK {
		return abort(fmt.Errorf("fleet: drain on %s: %s: %s",
			source, drainResp.Status, strings.TrimSpace(string(drainBody))))
	}

	handResp, err := r.client.Post(
		fmt.Sprintf("%s/tenant/handoff?tenant=%d", target, tenant),
		"application/json", bytes.NewReader(drainBody))
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(handResp.Body, 1<<20))
		handResp.Body.Close()
		if handResp.StatusCode != http.StatusOK {
			err = fmt.Errorf("fleet: handoff on %s: %s", target, handResp.Status)
		}
	} else {
		err = fmt.Errorf("fleet: handoff on %s: %w", target, err)
	}
	if err != nil {
		// Roll back: reopen the source so the tenant keeps serving where
		// its state still lives.
		r.release(source, tenant)
		return abort(err)
	}

	r.publish(func(t *routeTable) {
		t.overrides[tenant] = target
		delete(t.migrating, tenant)
	})
	close(gate)
	// Best-effort: the source's gate no longer matters for routing, but an
	// open gate keeps its /readyz honest.
	r.release(source, tenant)
	r.met.migCompleted.Add(1)
	r.met.handoffNS.Add(time.Since(start).Nanoseconds())
	return nil
}

// release reopens a node's tenant gate, best-effort.
func (r *Router) release(node string, tenant int) {
	resp, err := r.client.Post(
		fmt.Sprintf("%s/tenant/release?tenant=%d", node, tenant), "", nil)
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
}
