package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/ssd"
)

// testNode is one in-process fleet member: a serve node plus its HTTP
// binding, exactly what a real deployment runs per process.
type testNode struct {
	srv *serve.Server
	ts  *httptest.Server
}

func startNode(t *testing.T) *testNode {
	t.Helper()
	s, err := serve.New(serve.Config{
		Device:  nand.EvalConfig(),
		Options: ssd.DefaultOptions(),
		Accel:   50, // completions land within a pacer tick
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return &testNode{srv: s, ts: httptest.NewServer(s.Handler(10 * time.Second))}
}

func (n *testNode) stop() {
	n.srv.Drain()
	n.ts.Close()
}

func startFleet(t *testing.T, nodes int, gatePolicy string) ([]*testNode, *Router) {
	t.Helper()
	members := make([]*testNode, nodes)
	addrs := make([]string, nodes)
	for i := range members {
		members[i] = startNode(t)
		addrs[i] = members[i].ts.URL
		t.Cleanup(members[i].stop)
	}
	r, err := NewRouter(Config{Nodes: addrs, GatePolicy: gatePolicy, GateWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return members, r
}

func postIO(t *testing.T, client *http.Client, base string, tenant int, pageNo int64) (int, string) {
	t.Helper()
	body := fmt.Sprintf(`{"tenant":%d,"op":"read","offset":%d,"size":16384}`, tenant, pageNo*16384)
	resp, err := client.Post(base+"/io", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /io: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// TestRouterProxiesIO: requests reach the owner node and answer 200; the
// batch path splits by owner and reassembles line order.
func TestRouterProxiesIO(t *testing.T) {
	_, router := startFleet(t, 2, GateQueue)
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	for tenant := 0; tenant < 4; tenant++ {
		code, body := postIO(t, http.DefaultClient, front.URL, tenant, int64(tenant))
		if code != http.StatusOK {
			t.Fatalf("tenant %d: /io = %d: %s", tenant, code, body)
		}
		var jr struct {
			LatencyNS int64 `json:"latency_ns"`
		}
		if err := json.Unmarshal([]byte(body), &jr); err != nil || jr.LatencyNS <= 0 {
			t.Fatalf("tenant %d: bad response %q", tenant, body)
		}
	}

	// A batch mixing all tenants — owners differ per line, order must hold.
	batch := "0 R 0 16384\n1 W 16384 16384\nbogus\n2 R 32768 16384\n3 W 49152 16384\n"
	resp, err := http.Post(front.URL+"/io/batch", "text/plain", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("batch answered %d lines, want 5: %q", len(lines), data)
	}
	for i, ln := range lines {
		if i == 2 {
			if !strings.HasPrefix(ln, "rej invalid") {
				t.Errorf("line %d = %q, want rej invalid", i, ln)
			}
			continue
		}
		if !strings.HasPrefix(ln, "ok ") {
			t.Errorf("line %d = %q, want ok", i, ln)
		}
	}
}

// TestRouterStatusAndMetrics: the control surface reflects placement and
// migrations.
func TestRouterStatusAndMetrics(t *testing.T) {
	nodes, router := startFleet(t, 2, GateQueue)
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Nodes       []string          `json:"nodes"`
		RingVersion uint64            `json:"ring_version"`
		Tenants     map[string]string `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Nodes) != 2 || len(st.Tenants) != 4 {
		t.Fatalf("status: %+v", st)
	}

	// Migrate tenant 0 to whichever node does not own it, via the admin
	// endpoint, then confirm the table flipped and metrics counted it.
	owner := router.Owner(0)
	target := nodes[0].ts.URL
	if target == owner {
		target = nodes[1].ts.URL
	}
	mresp, err := http.Post(fmt.Sprintf("%s/fleet/migrate?tenant=0&to=%s", front.URL, target), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/migrate = %d: %s", mresp.StatusCode, mbody)
	}
	if got := router.Owner(0); got != target {
		t.Errorf("owner after migrate = %q, want %q", got, target)
	}
	var buf strings.Builder
	router.WriteMetrics(&buf)
	for _, want := range []string{
		"ssdkeeper_fleet_nodes 2",
		`ssdkeeper_migrations_total{outcome="completed"} 1`,
		`ssdkeeper_migrations_total{outcome="aborted"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}
	// Post-migration traffic flows to the new owner.
	if code, body := postIO(t, http.DefaultClient, front.URL, 0, 1); code != http.StatusOK {
		t.Errorf("post-migration /io = %d: %s", code, body)
	}
}

// TestMigrationUnderLoad is the fleet's zero-loss/zero-duplication
// guarantee under -race: clients hammer one tenant through the router while
// that tenant is migrated between nodes (twice — there and back). Every
// client request must be answered ok — the queue gate hides the handoff —
// and afterwards the client success count must equal the sum of client
// completions across all nodes: nothing lost, nothing double-counted.
func TestMigrationUnderLoad(t *testing.T) {
	nodes, router := startFleet(t, 3, GateQueue)
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	const (
		tenant  = 1
		clients = 8
		perEach = 40
	)
	var ok, rejected, failed atomic.Uint64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 20 * time.Second}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				code, body := postIO(t, client, front.URL, tenant, int64(c*perEach+i)%256)
				switch {
				case code == http.StatusOK:
					ok.Add(1)
				case code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Add(1)
					t.Errorf("client %d req %d: status %d: %s", c, i, code, body)
				}
			}
		}(c)
	}

	// Two live migrations while the load runs: owner → other node → back.
	src := router.Owner(tenant)
	var others []string
	for _, n := range nodes {
		if n.ts.URL != src {
			others = append(others, n.ts.URL)
		}
	}
	time.Sleep(50 * time.Millisecond) // let load build up
	if err := router.Migrate(tenant, others[0]); err != nil {
		t.Errorf("migrate 1: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := router.Migrate(tenant, others[1]); err != nil {
		t.Errorf("migrate 2: %v", err)
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d requests failed outright", failed.Load())
	}
	var completed uint64
	for _, n := range nodes {
		completed += n.srv.TenantCompleted(tenant)
	}
	total := ok.Load() + rejected.Load()
	if total != clients*perEach {
		t.Fatalf("answered %d of %d requests", total, clients*perEach)
	}
	if completed != ok.Load() {
		t.Fatalf("fleet completed %d requests for tenant %d, clients saw %d oks: lost %d / duplicated %d",
			completed, tenant, ok.Load(),
			int64(ok.Load())-int64(completed), int64(completed)-int64(ok.Load()))
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded")
	}
}

// TestGateRejectPolicy: with GateReject the router answers 503+Retry-After
// during a handoff instead of queueing.
func TestGateRejectPolicy(t *testing.T) {
	nodes, router := startFleet(t, 2, GateReject)
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// Hold the gate open manually by starting a migration against a source
	// that is slow to drain — simpler: gate via the internal table as the
	// migration path does, then assert the handler's behavior.
	gate := make(chan struct{})
	router.publish(func(tab *routeTable) { tab.migrating[0] = gate })
	code, _ := postIO(t, http.DefaultClient, front.URL, 0, 0)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("gated tenant /io = %d, want 503", code)
	}
	router.publish(func(tab *routeTable) { delete(tab.migrating, 0) })
	close(gate)
	if code, body := postIO(t, http.DefaultClient, front.URL, 0, 0); code != http.StatusOK {
		t.Fatalf("ungated tenant /io = %d: %s", code, body)
	}
	_ = nodes
}

// TestMembershipProbe: the prober reads readiness and per-tenant load from
// a live node's real endpoints.
func TestMembershipProbe(t *testing.T) {
	n := startNode(t)
	defer n.stop()

	// Complete one request so the metrics have a nonzero completion.
	code, body := postIO(t, http.DefaultClient, n.ts.URL, 2, 0)
	if code != http.StatusOK {
		t.Fatalf("/io = %d: %s", code, body)
	}

	m := NewMembership([]string{n.ts.URL}, 4, 5*time.Second)
	m.Poll()
	snap := m.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d nodes", len(snap))
	}
	st := snap[0]
	if !st.Ready || st.Err != nil {
		t.Fatalf("node status %+v", st)
	}
	if st.CompletedByTenant[2] != 1 {
		t.Errorf("completed[2] = %d, want 1 (%v)", st.CompletedByTenant[2], st.CompletedByTenant)
	}
}

func TestPromSamples(t *testing.T) {
	text := strings.Join([]string{
		`# HELP ssdkeeper_completed_total x`,
		`# TYPE ssdkeeper_completed_total counter`,
		`ssdkeeper_completed_total{tenant="0",op="read"} 3`,
		`ssdkeeper_completed_total{tenant="0",op="write"} 2`,
		`ssdkeeper_completed_total{tenant="1",op="read"} 7`,
		`ssdkeeper_completed_totals_bogus{tenant="9"} 99`,
		`ssdkeeper_latency_seconds{tenant="1",op="read",quantile="0.99"} 0.004`,
		`ssdkeeper_latency_seconds_count{tenant="1",op="read"} 7`,
		`ssdkeeper_up 1`,
	}, "\n")
	got := promSamples(text, "ssdkeeper_completed_total")
	if len(got) != 3 {
		t.Fatalf("parsed %d samples, want 3: %+v", len(got), got)
	}
	var t0 float64
	for _, s := range got {
		if s.labels["tenant"] == "0" {
			t0 += s.value
		}
	}
	if t0 != 5 {
		t.Errorf("tenant 0 total = %v, want 5", t0)
	}
	if up := promSamples(text, "ssdkeeper_up"); len(up) != 1 || up[0].value != 1 {
		t.Errorf("ssdkeeper_up parse: %+v", up)
	}
	lat := promSamples(text, "ssdkeeper_latency_seconds")
	if len(lat) != 1 || lat[0].labels["quantile"] != "0.99" {
		t.Errorf("latency parse picked up suffix series: %+v", lat)
	}
}
