package fleet

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Rebalancer is the fleet-level analogue of the keeper's online loop: where
// the keeper re-binds channels inside one device when the workload mix
// shifts, the rebalancer re-places tenants across devices when one node
// runs hot. It watches per-node per-tenant completion rates from the
// membership prober, and when a node's load exceeds the fleet mean by
// HotFactor it migrates that node's hottest movable tenant to the
// least-loaded ready node.
type Rebalancer struct {
	// HotFactor is the imbalance trigger: a node is hot when its
	// completions-per-interval exceed HotFactor × the fleet mean (default
	// 1.5). Values ≤ 1 would thrash; fillDefaults refuses them.
	HotFactor float64
	// MinLoad is the minimum per-interval completion count before a node
	// can be considered hot (default 100) — an idle fleet never migrates.
	MinLoad uint64
	// Cooldown is the minimum time between migrations (default 10s), so
	// one hot window cannot bounce a tenant back and forth.
	Cooldown time.Duration
	// Log, when set, receives one line per decision.
	Log func(format string, args ...any)

	router  *Router
	members *Membership

	last        map[string]map[int]uint64 // previous sweep's completed totals
	lastMigrate time.Time
}

// NewRebalancer wires a rebalancer over a router and its membership prober.
func NewRebalancer(r *Router, m *Membership) *Rebalancer {
	return &Rebalancer{
		HotFactor: 1.5,
		MinLoad:   100,
		Cooldown:  10 * time.Second,
		router:    r,
		members:   m,
		last:      map[string]map[int]uint64{},
	}
}

func (rb *Rebalancer) logf(format string, args ...any) {
	if rb.Log != nil {
		rb.Log(format, args...)
	}
}

// Step runs one rebalancing decision over the latest membership snapshot.
// It returns the migrated tenant and target, or tenant -1 when it chose not
// to act. The first sweep only establishes the completion baseline.
func (rb *Rebalancer) Step() (tenant int, target string, err error) {
	statuses := rb.members.Snapshot()

	// Per-node load this interval = sum of per-tenant completion deltas
	// since the previous sweep, attributed by current ownership.
	type nodeLoad struct {
		addr     string
		ready    bool
		degraded bool
		health   float64
		total    uint64
		tenants  map[int]uint64
	}
	loads := make([]nodeLoad, 0, len(statuses))
	for _, st := range statuses {
		nl := nodeLoad{
			addr:     st.Addr,
			ready:    st.Ready,
			degraded: st.Degraded,
			health:   st.HealthScore,
			tenants:  map[int]uint64{},
		}
		prev := rb.last[st.Addr]
		cur := map[int]uint64{}
		for t, c := range st.CompletedByTenant {
			cur[t] = c
			d := c - prev[t]
			if c < prev[t] {
				d = c // node restarted; counter reset
			}
			nl.tenants[t] = d
			nl.total += d
		}
		rb.last[st.Addr] = cur
		loads = append(loads, nl)
	}
	if len(loads) < 2 {
		return -1, "", nil
	}
	if time.Since(rb.lastMigrate) < rb.Cooldown {
		return -1, "", nil
	}

	// Quarantine pre-pass: device health trumps hotspot math. A node whose
	// auditor flipped it degraded gets its tenants evacuated before any load
	// balancing — one tenant per step (most-loaded first, lowest id breaking
	// ties), to the least-loaded healthy ready node, through the same
	// gate→drain→handoff→flip→release machinery as a load migration.
	for _, sick := range loads {
		if !sick.degraded {
			continue
		}
		evac, evacLoad := -1, uint64(0)
		for t, d := range sick.tenants {
			if rb.router.Owner(t) != sick.addr {
				continue
			}
			if evac < 0 || d > evacLoad || (d == evacLoad && t < evac) {
				evac, evacLoad = t, d
			}
		}
		if evac < 0 {
			continue // already evacuated
		}
		var dest *nodeLoad
		for i := range loads {
			nl := &loads[i]
			if !nl.ready || nl.degraded || nl.addr == sick.addr {
				continue
			}
			if dest == nil || nl.total < dest.total ||
				(nl.total == dest.total && nl.addr < dest.addr) {
				dest = nl
			}
		}
		if dest == nil {
			rb.logf("fleet: node %s degraded (health %.2f) but no healthy ready target; tenant %d stays",
				sick.addr, sick.health, evac)
			continue
		}
		rb.logf("fleet: node %s degraded (health %.2f): evacuating tenant %d (load %d) → %s",
			sick.addr, sick.health, evac, evacLoad, dest.addr)
		if err := rb.router.Migrate(evac, dest.addr); err != nil {
			return -1, "", fmt.Errorf("fleet: quarantine migrate: %w", err)
		}
		rb.lastMigrate = time.Now()
		return evac, dest.addr, nil
	}

	var mean float64
	for _, nl := range loads {
		mean += float64(nl.total)
	}
	mean /= float64(len(loads))

	// Hottest node first; deterministic order for equal loads.
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].total != loads[j].total {
			return loads[i].total > loads[j].total
		}
		return loads[i].addr < loads[j].addr
	})
	hot := loads[0]
	if hot.total < rb.MinLoad || float64(hot.total) <= rb.HotFactor*mean {
		return -1, "", nil
	}
	// Need somewhere cooler and ready to put the tenant.
	var cold *nodeLoad
	for i := len(loads) - 1; i > 0; i-- {
		if loads[i].ready {
			cold = &loads[i]
			break
		}
	}
	if cold == nil || cold.addr == hot.addr {
		return -1, "", nil
	}

	// Hottest tenant currently owned by the hot node — but not one that
	// constitutes (almost) all of its load: moving the sole workload just
	// relocates the hotspot.
	best, bestLoad := -1, uint64(0)
	for t, d := range hot.tenants {
		if rb.router.Owner(t) != hot.addr {
			continue
		}
		if d > bestLoad {
			best, bestLoad = t, d
		}
	}
	if best < 0 || bestLoad == hot.total {
		// Single-tenant node: moving it only moves the problem, unless the
		// cold node is truly idle and the hot node is overloaded enough
		// that spreading still helps; keep it simple and stay put.
		return -1, "", nil
	}

	rb.logf("fleet: node %s hot (%d vs mean %.0f): migrating tenant %d (load %d) → %s",
		hot.addr, hot.total, mean, best, bestLoad, cold.addr)
	if err := rb.router.Migrate(best, cold.addr); err != nil {
		return -1, "", fmt.Errorf("fleet: rebalance migrate: %w", err)
	}
	rb.lastMigrate = time.Now()
	return best, cold.addr, nil
}

// Run polls and steps every interval until ctx ends. Errors are logged, not
// fatal: a failed migration aborts cleanly (the router rolls the tenant
// back to its source) and the next interval retries from fresh state.
func (rb *Rebalancer) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, _, err := rb.Step(); err != nil {
				rb.logf("%v", err)
			}
		}
	}
}
