package fleet

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/wire"
)

// benchBackend completes every wire request inline: the benchmark measures
// transport and proxy cost, not device simulation.
type benchBackend struct{}

func (benchBackend) SubmitTo(req serve.Request, c serve.Completion) error {
	c.Complete(serve.Response{Latency: 1000, At: 77}, nil)
	return nil
}

// BenchmarkProxyTransport compares the router's two data planes over stub
// upstreams that answer instantly, so the difference is pure transport:
// per-request HTTP round trips versus pipelined frames on persistent
// connections. The front end (recorder + request construction) is identical
// in both variants. bench_gate.sh asserts wire ≥ HTTP on ns/op from the
// same run.
func BenchmarkProxyTransport(b *testing.B) {
	body := []byte(`{"tenant":1,"op":"read","offset":4096,"size":4096}`)

	run := func(b *testing.B, r *Router) {
		h := r.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/io", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Errorf("status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		})
	}

	b.Run("http", func(b *testing.B) {
		up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"latency_ns":1000,"sim_ns":77}`)
		}))
		defer up.Close()
		r, err := NewRouter(Config{Nodes: []string{up.URL}})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		run(b, r)
	})

	b.Run("wire", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		ws := wire.NewServer(benchBackend{})
		go ws.Serve(ln)
		defer ws.Close()
		// The HTTP base URL must exist for the ring and control plane, but
		// no data-plane request touches it.
		up := httptest.NewServer(http.NewServeMux())
		defer up.Close()
		r, err := NewRouter(Config{Nodes: []string{up.URL}, WireNodes: []string{ln.Addr().String()}})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		run(b, r)
	})
}
