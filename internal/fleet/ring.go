// Package fleet composes serving nodes (internal/serve) into a fleet: a
// consistent-hash ring places tenants on nodes, a router process proxies
// client I/O to each tenant's owner node over the existing wire protocol,
// a membership prober tracks node readiness and load from /readyz and
// /metrics, and a rebalancer migrates hot tenants between nodes live —
// using the node core's tenant-granular drain/handoff primitives — without
// losing or duplicating a single completion.
//
// The paper's keeper adapts channel allocation inside one device; the fleet
// tier applies the same idea one level up, adapting tenant placement across
// devices. Placement must be restart-stable (a router restart must not
// reshuffle tenants), so the ring is a pure function of the node address
// list and the migration history lives in explicit overrides.
package fleet

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per physical node. 64 points per
// node keeps the placement spread within a few percent of even for small
// fleets while the ring stays tiny (hundreds of points).
const defaultVNodes = 64

// fnv1a hashes a byte string (FNV-1a, 64-bit) and then finalizes with an
// avalanche mixer. The stable, seedless FNV family matches what the serving
// layer uses for tenant→shard routing — placement must survive restarts and
// rebuilds — but raw FNV-1a of short keys differing only in a trailing
// digit ("tenant:0".."tenant:7", "addr#0".."addr#63") clusters badly on the
// ring: the last bytes barely diffuse. The multiply-xorshift finalizer
// (splitmix64's) spreads those keys uniformly around the 64-bit circle.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into nodes
}

// Ring is a consistent-hash ring over node addresses with virtual nodes.
// Placement is a pure function of the (unordered) address set and the
// virtual-node count: node-list order, process restarts, and rebuilds all
// map every tenant to the same owner (golden-pinned by TestRingGolden).
// Adding or removing one node moves only the tenants whose arcs it owned.
type Ring struct {
	nodes  []string
	vnodes int
	points []point
}

// NewRing builds a ring over the given node addresses. Addresses are
// deduplicated and sorted, so any ordering of the same set yields an
// identical ring. vnodes <= 0 uses the default.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	uniq := append([]string(nil), nodes...)
	sort.Strings(uniq)
	w := 1
	for i := 1; i < len(uniq); i++ {
		if uniq[i] != uniq[i-1] {
			uniq[w] = uniq[i]
			w++
		}
	}
	uniq = uniq[:w]
	r := &Ring{
		nodes:  uniq,
		vnodes: vnodes,
		points: make([]point, 0, len(uniq)*vnodes),
	}
	for ni, addr := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: fnv1a(fmt.Sprintf("%s#%d", addr, v)),
				node: ni,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically unlikely) break by node index so the ring
		// stays a pure function of the set.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's member addresses (sorted, deduplicated).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node address that owns the tenant: the first ring point
// clockwise from the tenant's hash.
func (r *Ring) Owner(tenant int) string {
	h := fnv1a(fmt.Sprintf("tenant:%d", tenant))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.nodes[r.points[i].node]
}
