package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/wire"
)

// startWireListener serves the wire protocol for a backend on an ephemeral
// port and returns the dial address.
func startWireListener(t *testing.T, b wire.Backend) (*wire.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.NewServer(b)
	go ws.Serve(ln)
	t.Cleanup(func() { ws.Close() })
	return ws, ln.Addr().String()
}

// startWireFleet is startFleet with the wire data plane everywhere: each
// node gets a wire listener, the router proxies over them, and the router
// itself listens on wire (the returned address) — no HTTP on the data path.
func startWireFleet(t *testing.T, nodes int, gatePolicy string) ([]*testNode, *Router, string) {
	t.Helper()
	members := make([]*testNode, nodes)
	addrs := make([]string, nodes)
	waddrs := make([]string, nodes)
	for i := range members {
		members[i] = startNode(t)
		addrs[i] = members[i].ts.URL
		t.Cleanup(members[i].stop)
		_, waddrs[i] = startWireListener(t, members[i].srv.Node)
	}
	r, err := NewRouter(Config{
		Nodes: addrs, WireNodes: waddrs,
		GatePolicy: gatePolicy, GateWait: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	_, front := startWireListener(t, r.WireBackend())
	return members, r, front
}

// strandBackend completes the first limit requests inline and strands the
// rest without answering; with kill set it tears the server down instead,
// so in-flight requests die with their connection.
type strandBackend struct {
	limit int64
	n     atomic.Int64
	kill  atomic.Bool
	ws    *wire.Server
}

func (b *strandBackend) SubmitTo(req serve.Request, c serve.Completion) error {
	if b.kill.Load() {
		go b.ws.Close() // not inline: Close waits for this read loop
		return nil
	}
	if b.n.Add(1) <= b.limit {
		c.Complete(serve.Response{Latency: 1000, At: 1}, nil)
	}
	return nil
}

// TestBatchWireUpstreamDies: a wire owner that answers part of a batch and
// strands or drops the rest must yield partial "ok" replies with the
// remainder "rej upstream" — bounded by the request timeout, never a hang.
func TestBatchWireUpstreamDies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bk := &strandBackend{limit: 4}
	ws := wire.NewServer(bk)
	bk.ws = ws
	go ws.Serve(ln)
	defer ws.Close()
	up := httptest.NewServer(http.NewServeMux()) // ring/control plane only
	defer up.Close()

	r, err := NewRouter(Config{
		Nodes: []string{up.URL}, WireNodes: []string{ln.Addr().String()},
		WireConns:  1, // single conn: submissions reach the backend in line order
		ReqTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	batch := strings.Repeat("1 R 0 16384\n", 8)
	start := time.Now()
	resp, err := http.Post(front.URL+"/io/batch", "text/plain", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 8 {
		t.Fatalf("batch answered %d lines, want 8: %q", len(lines), data)
	}
	for i, ln := range lines {
		want := "ok 1000"
		if i >= 4 {
			want = "rej upstream"
		}
		if ln != want {
			t.Errorf("line %d = %q, want %q", i, ln, want)
		}
	}
	if elapsed < 300*time.Millisecond {
		t.Errorf("stranded batch answered in %v, before the %v deadline", elapsed, 400*time.Millisecond)
	}
	if elapsed > 5*time.Second {
		t.Errorf("stranded batch took %v", elapsed)
	}

	// Now the upstream dies under the batch: the connection sweep must fail
	// every line promptly — no ok, no hang.
	bk.kill.Store(true)
	resp, err = http.Post(front.URL+"/io/batch", "text/plain", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines = strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 8 {
		t.Fatalf("post-death batch answered %d lines, want 8: %q", len(lines), data)
	}
	for i, ln := range lines {
		if ln != "rej upstream" {
			t.Errorf("post-death line %d = %q, want rej upstream", i, ln)
		}
	}
}

// TestBatchHTTPUpstreamDies: an HTTP owner whose connection drops mid-reply
// leaves the router with a short reply arena; the answered prefix renders
// and the missing trailer comes back "rej upstream".
func TestBatchHTTPUpstreamDies(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/io/batch" {
			http.NotFound(w, req)
			return
		}
		body, _ := io.ReadAll(req.Body)
		n := bytes.Count(body, []byte{'\n'})
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("recorder not hijackable")
			return
		}
		conn, bw, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		// Close-delimited body with only half the reply lines: the node
		// died mid-flush.
		fmt.Fprintf(bw, "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\n")
		for i := 0; i < n/2; i++ {
			fmt.Fprintf(bw, "ok 1000\n")
		}
		bw.Flush()
		conn.Close()
	}))
	defer up.Close()

	r, err := NewRouter(Config{Nodes: []string{up.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	batch := strings.Repeat("1 R 0 16384\n", 8)
	resp, err := http.Post(front.URL+"/io/batch", "text/plain", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 8 {
		t.Fatalf("batch answered %d lines, want 8: %q", len(lines), data)
	}
	for i, ln := range lines {
		want := "ok 1000"
		if i >= 4 {
			want = "rej upstream"
		}
		if ln != want {
			t.Errorf("line %d = %q, want %q", i, ln, want)
		}
	}
}

// TestGateWaitTimeout: under the queue policy a request gated by a
// migration that never finishes must come back as a migrating rejection
// after GateWait — on both data planes — not block forever.
func TestGateWaitTimeout(t *testing.T) {
	n := startNode(t)
	t.Cleanup(n.stop)
	const gateWait = 150 * time.Millisecond
	r, err := NewRouter(Config{
		Nodes: []string{n.ts.URL}, GatePolicy: GateQueue, GateWait: gateWait,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	front := httptest.NewServer(r.Handler())
	defer front.Close()
	_, waddr := startWireListener(t, r.WireBackend())
	wc := wire.NewClient(waddr, 1)
	defer wc.Close()

	gate := make(chan struct{})
	r.publish(func(tab *routeTable) { tab.migrating[0] = gate })

	start := time.Now()
	code, body := postIO(t, http.DefaultClient, front.URL, 0, 0)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "migrating") {
		t.Fatalf("gated /io = %d %q, want 503 migrating", code, body)
	}
	if e := time.Since(start); e < gateWait-10*time.Millisecond {
		t.Errorf("HTTP answered in %v, before the %v gate wait expired", e, gateWait)
	}

	start = time.Now()
	_, _, reason, err := wc.Do(serve.Request{Tenant: 0, Op: trace.Read, Size: 16384}, 5*time.Second)
	if err != nil || reason != "migrating" {
		t.Fatalf("gated wire call = reason %q err %v, want migrating", reason, err)
	}
	if e := time.Since(start); e < gateWait-10*time.Millisecond {
		t.Errorf("wire answered in %v, before the %v gate wait expired", e, gateWait)
	}

	// Release the gate: both planes flow again.
	r.publish(func(tab *routeTable) { delete(tab.migrating, 0) })
	close(gate)
	if code, body := postIO(t, http.DefaultClient, front.URL, 0, 0); code != http.StatusOK {
		t.Fatalf("ungated /io = %d: %s", code, body)
	}
	if _, _, reason, err := wc.Do(serve.Request{Tenant: 0, Op: trace.Read, Size: 16384}, 5*time.Second); err != nil || reason != "" {
		t.Fatalf("ungated wire call = reason %q err %v", reason, err)
	}
}

// TestWireMigrationUnderLoad is TestMigrationUnderLoad on the wire data
// plane end to end: concurrent wire clients hammer one tenant through the
// router's wire listener while the tenant migrates twice, and afterwards
// the client success count must equal the fleet-wide completion count for
// the tenant — nothing lost, nothing duplicated, on persistent pipelined
// connections crossing a drain/handoff/flip.
func TestWireMigrationUnderLoad(t *testing.T) {
	nodes, router, front := startWireFleet(t, 3, GateQueue)
	const (
		tenant  = 1
		clients = 8
		perEach = 40
	)
	wc := wire.NewClient(front, 4)
	defer wc.Close()

	var ok, rejected, failed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				req := serve.Request{
					Tenant: tenant,
					Op:     trace.Read,
					Offset: (int64(c*perEach+i) % 256) * 16384,
					Size:   16384,
				}
				_, _, reason, err := wc.Do(req, 30*time.Second)
				switch {
				case err != nil:
					failed.Add(1)
					t.Errorf("client %d req %d: %v", c, i, err)
				case reason == "":
					ok.Add(1)
				default:
					rejected.Add(1)
				}
			}
		}(c)
	}

	src := router.Owner(tenant)
	var others []string
	for _, n := range nodes {
		if n.ts.URL != src {
			others = append(others, n.ts.URL)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if err := router.Migrate(tenant, others[0]); err != nil {
		t.Errorf("migrate 1: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := router.Migrate(tenant, others[1]); err != nil {
		t.Errorf("migrate 2: %v", err)
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d wire calls failed outright", failed.Load())
	}
	total := ok.Load() + rejected.Load()
	if total != clients*perEach {
		t.Fatalf("answered %d of %d requests", total, clients*perEach)
	}
	var completed uint64
	for _, n := range nodes {
		completed += n.srv.TenantCompleted(tenant)
	}
	if completed != ok.Load() {
		t.Fatalf("fleet completed %d requests for tenant %d, clients saw %d oks: lost %d / duplicated %d",
			completed, tenant, ok.Load(),
			int64(ok.Load())-int64(completed), int64(completed)-int64(ok.Load()))
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded")
	}
}
