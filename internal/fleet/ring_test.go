package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingGolden pins tenant placement for a fixed node set: the ring must
// be a pure function of the address set, so these assignments survive
// process restarts, rebuilds, and Go version bumps. If this test breaks,
// every deployed fleet's placement shifts on upgrade — change the hash only
// with a migration story.
func TestRingGolden(t *testing.T) {
	r, err := NewRing([]string{"node-a", "node-b", "node-c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{
		0: "node-a",
		1: "node-a",
		2: "node-c",
		3: "node-b",
		4: "node-b",
		5: "node-c",
		6: "node-b",
		7: "node-b",
	}
	for tenant, owner := range want {
		if got := r.Owner(tenant); got != owner {
			t.Errorf("Owner(%d) = %q, want %q", tenant, got, owner)
		}
	}
}

// TestRingGoldenURLs pins placement for the smoke topology (three localhost
// nodes), so scripts/smoke_fleet.sh can rely on which node owns which
// tenant.
func TestRingGoldenURLs(t *testing.T) {
	r, err := NewRing([]string{
		"http://127.0.0.1:8081", "http://127.0.0.1:8082", "http://127.0.0.1:8083",
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Note tenant 3 also lands on :8082 and :8083 starts empty — the smoke
	// uses :8083 as the migration target for exactly that reason.
	want := map[int]string{
		0: "http://127.0.0.1:8082",
		1: "http://127.0.0.1:8082",
		2: "http://127.0.0.1:8081",
		3: "http://127.0.0.1:8082",
	}
	for tenant, owner := range want {
		if got := r.Owner(tenant); got != owner {
			t.Errorf("Owner(%d) = %q, want %q", tenant, got, owner)
		}
	}
}

// TestRingOrderIndependent: any ordering (and duplication) of the same
// address set builds an identical ring.
func TestRingOrderIndependent(t *testing.T) {
	base := []string{"node-a", "node-b", "node-c", "node-d"}
	ref, err := NewRing(base, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := append([]string(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		perm = append(perm, perm[0]) // duplicates must not matter either
		r, err := NewRing(perm, 32)
		if err != nil {
			t.Fatal(err)
		}
		for tenant := 0; tenant < 64; tenant++ {
			if got, want := r.Owner(tenant), ref.Owner(tenant); got != want {
				t.Fatalf("trial %d: Owner(%d) = %q, want %q (order %v)", trial, tenant, got, want, perm)
			}
		}
	}
}

// TestRingAddNodeMovesOnlyCaptured: growing the fleet by one node may move
// a tenant only onto the new node — consistent hashing's whole point. Every
// tenant not captured by the newcomer keeps its owner.
func TestRingAddNodeMovesOnlyCaptured(t *testing.T) {
	old, err := NewRing([]string{"node-a", "node-b", "node-c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing([]string{"node-a", "node-b", "node-c", "node-d"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for tenant := 0; tenant < 256; tenant++ {
		before, after := old.Owner(tenant), grown.Owner(tenant)
		if after != before {
			if after != "node-d" {
				t.Errorf("tenant %d moved %q → %q, not to the new node", tenant, before, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("new node captured no tenants out of 256")
	}
	if moved > 128 {
		t.Errorf("new node captured %d/256 tenants; expected roughly a quarter", moved)
	}
}

// TestRingSpread: virtual nodes keep the placement within sane bounds of
// even for a small fleet.
func TestRingSpread(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c"}
	r, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const tenants = 3000
	for tenant := 0; tenant < tenants; tenant++ {
		counts[r.Owner(tenant)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / tenants
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.0f%% of tenants; spread too skewed: %v",
				n, share*100, counts)
		}
	}
}

// TestRingRejectsEmpty guards the constructor contract.
func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty node list accepted")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	r, err := NewRing(nodes, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(i & 1023)
	}
}
