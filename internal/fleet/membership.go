package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NodeStatus is one probe sweep's view of a node. CompletedByTenant and
// P99ByTenant come from the node's /metrics; Ready from /readyz (which a
// node holds false while draining or while a tenant handoff is in flight,
// so the rebalancer never targets a node mid-migration).
type NodeStatus struct {
	Addr              string
	Ready             bool
	Err               error
	CompletedByTenant map[int]uint64
	P99ByTenant       map[int]float64 // seconds, reads and writes max'd
	// HealthScore is the node's worst shard device-health score from
	// ssdkeeper_health_score (1 healthy, 0 dead; 1 when the series is
	// absent, e.g. an older node). Degraded mirrors ssdkeeper_degraded: the
	// node's auditor has quarantined it, so the rebalancer should evacuate
	// its tenants rather than merely avoid placing new ones.
	HealthScore float64
	Degraded    bool
	ProbedAt    time.Time
}

// Membership probes fleet nodes for readiness and load. Snapshots are
// immutable copies; the prober is the only writer.
type Membership struct {
	addrs   []string
	client  *http.Client
	tenants int

	mu     sync.RWMutex
	status map[string]NodeStatus
}

// NewMembership builds a prober over the node base URLs.
func NewMembership(addrs []string, tenants int, timeout time.Duration) *Membership {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if tenants <= 0 {
		tenants = 4
	}
	return &Membership{
		addrs:   append([]string(nil), addrs...),
		client:  &http.Client{Timeout: timeout},
		tenants: tenants,
		status:  map[string]NodeStatus{},
	}
}

// Poll runs one probe sweep over all nodes (serially; fleets this layer
// targets are small and the probes are cheap).
func (m *Membership) Poll() {
	for _, addr := range m.addrs {
		st := m.probe(addr)
		m.mu.Lock()
		m.status[addr] = st
		m.mu.Unlock()
	}
}

// Run polls every interval until ctx ends.
func (m *Membership) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	m.Poll()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Poll()
		}
	}
}

// Snapshot returns a copy of the latest status for every probed node.
func (m *Membership) Snapshot() []NodeStatus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]NodeStatus, 0, len(m.addrs))
	for _, addr := range m.addrs {
		if st, ok := m.status[addr]; ok {
			out = append(out, st)
		}
	}
	return out
}

func (m *Membership) probe(addr string) NodeStatus {
	st := NodeStatus{
		Addr:              addr,
		CompletedByTenant: map[int]uint64{},
		P99ByTenant:       map[int]float64{},
		HealthScore:       1,
		ProbedAt:          time.Now(),
	}
	resp, err := m.client.Get(addr + "/readyz")
	if err != nil {
		st.Err = err
		return st
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	st.Ready = resp.StatusCode == http.StatusOK

	mresp, err := m.client.Get(addr + "/metrics")
	if err != nil {
		st.Err = err
		return st
	}
	body, err := io.ReadAll(io.LimitReader(mresp.Body, 8<<20))
	mresp.Body.Close()
	if err != nil {
		st.Err = err
		return st
	}
	for _, s := range promSamples(string(body), "ssdkeeper_completed_total") {
		if t, ok := s.tenant(); ok {
			st.CompletedByTenant[t] += uint64(s.value)
		}
	}
	for _, s := range promSamples(string(body), "ssdkeeper_latency_seconds") {
		if s.labels["quantile"] != "0.99" {
			continue
		}
		if t, ok := s.tenant(); ok && s.value > st.P99ByTenant[t] {
			st.P99ByTenant[t] = s.value
		}
	}
	if ss := promSamples(string(body), "ssdkeeper_health_score"); len(ss) > 0 {
		st.HealthScore = ss[0].value
	}
	if ss := promSamples(string(body), "ssdkeeper_degraded"); len(ss) > 0 {
		st.Degraded = ss[0].value != 0
	}
	return st
}

// promSample is one parsed exposition line.
type promSample struct {
	labels map[string]string
	value  float64
}

func (s promSample) tenant() (int, bool) {
	t, err := strconv.Atoi(s.labels["tenant"])
	if err != nil {
		return 0, false
	}
	return t, true
}

// promSamples extracts every sample of one metric from Prometheus text
// exposition. It is a deliberately small parser — enough for the repo's own
// /metrics output (no escaping inside label values beyond \" handling, no
// exemplars), so the fleet stays dependency-free.
func promSamples(text, name string) []promSample {
	var out []promSample
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Reject longer names sharing the prefix (e.g. _count suffixes).
		if len(rest) == 0 || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		labels := map[string]string{}
		if rest[0] == '{' {
			end := strings.Index(rest, "}")
			if end < 0 {
				continue
			}
			parseLabels(rest[1:end], labels)
			rest = rest[end+1:]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			continue
		}
		out = append(out, promSample{labels: labels, value: v})
	}
	return out
}

// parseLabels fills dst from `k="v",k2="v2"`.
func parseLabels(s string, dst map[string]string) {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for i < len(s) {
			if s[i] == '\\' && i+1 < len(s) {
				val.WriteByte(s[i+1])
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
			i++
		}
		dst[key] = val.String()
		s = s[i:]
		if len(s) > 0 && s[0] == '"' {
			s = s[1:]
		}
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// String renders a one-line summary for logs.
func (s NodeStatus) String() string {
	ready := "ready"
	if !s.Ready {
		ready = "not-ready"
	}
	if s.Degraded {
		ready += " degraded"
	}
	if s.Err != nil {
		return fmt.Sprintf("%s %s (%v)", s.Addr, ready, s.Err)
	}
	var total uint64
	for _, c := range s.CompletedByTenant {
		total += c
	}
	return fmt.Sprintf("%s %s completed=%d", s.Addr, ready, total)
}
