package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
	"ssdkeeper/internal/wire"
)

// wireFront is the router's wire.Backend: it lets the router itself listen
// on the wire protocol, so a client speaking wire to the router is proxied
// over wire to the owner node with no HTTP anywhere on the data path. The
// fast path spawns no goroutines: the listener's read goroutine resolves
// the owner from one atomic table load and pipelines the request onto the
// owner's wire client; the completion flows back through a pooled
// forwarder. Only the rare gated paths (tenant mid-migration, retry after
// a "migrating" rejection, HTTP-only owner) detach onto a goroutine,
// because they may block on the gate or on an HTTP round trip.
type wireFront struct{ r *Router }

// WireBackend returns the backend to hand wire.NewServer for a router-side
// wire listener.
func (r *Router) WireBackend() wire.Backend { return wireFront{r} }

// SubmitTo implements wire.Backend. The migrating-retry contract matches
// the HTTP proxy: under the queue gate policy a "migrating" rejection from
// a node that gated the tenant under our feet waits the migration out and
// retries at the new owner, up to the same attempt bound.
func (f wireFront) SubmitTo(req serve.Request, c serve.Completion) error {
	r := f.r
	if req.Tenant < 0 || req.Tenant >= r.cfg.Tenants {
		return fmt.Errorf("fleet: tenant %d outside [0,%d)", req.Tenant, r.cfg.Tenants)
	}
	tab := r.table.Load()
	if _, mig := tab.migrating[req.Tenant]; mig {
		go r.forwardGated(req, c, 0)
		return nil
	}
	r.met.proxied.Add(1)
	r.forward(tab.owner(req.Tenant), req, c, 0)
	return nil
}

// forwardGated resolves through the migration gate (blocking per policy)
// and then forwards; it runs on its own goroutine.
func (r *Router) forwardGated(req serve.Request, c serve.Completion, attempt int) {
	owner, err := r.resolve(req.Tenant)
	if err != nil {
		c.Complete(serve.Response{}, serve.ErrTenantMigrating)
		return
	}
	if attempt == 0 {
		r.met.proxied.Add(1)
	}
	r.forward(owner, req, c, attempt)
}

// forward sends one request to its owner: pipelined on the owner's wire
// client when it has one, over HTTP otherwise (detached, as it blocks).
func (r *Router) forward(owner string, req serve.Request, c serve.Completion, attempt int) {
	wc := r.wires[owner]
	if wc == nil {
		go r.forwardHTTP(owner, req, c)
		return
	}
	r.met.wireProxied.Add(1)
	fw := fwdPool.Get().(*fwd)
	fw.r, fw.req, fw.c, fw.attempt = r, req, c, attempt
	if err := wc.Start(req, 0, fw); err != nil {
		fwdPool.Put(fw)
		r.met.proxyErrs.Add(1)
		c.Complete(serve.Response{}, wire.ErrUpstream)
	}
}

// fwd relays one wire completion from an upstream node back into the
// router-side listener's completion. Pooled; Done runs on the upstream
// connection's read goroutine and must not block, so the migrating retry
// detaches.
type fwd struct {
	r       *Router
	req     serve.Request
	c       serve.Completion
	attempt int
}

var fwdPool = sync.Pool{New: func() any { return new(fwd) }}

func (f *fwd) Done(_ uint64, latencyNS, simNS int64, reason string, err error) {
	r, req, c, attempt := f.r, f.req, f.c, f.attempt
	f.r, f.req, f.c = nil, serve.Request{}, nil
	fwdPool.Put(f)
	switch {
	case err != nil:
		r.met.proxyErrs.Add(1)
		c.Complete(serve.Response{}, wire.ErrUpstream)
	case reason == "migrating" && r.cfg.GatePolicy == GateQueue && attempt < 4:
		go r.forwardGated(req, c, attempt+1)
	case reason != "":
		c.Complete(serve.Response{}, wire.ReasonError(reason))
	default:
		c.Complete(serve.Response{Latency: sim.Time(latencyNS), At: sim.Time(simNS)}, nil)
	}
}

// forwardHTTP carries one wire-front request to an HTTP-only owner — the
// compatibility bridge for mixed fleets where some nodes have no wire
// listener. One JSON round trip per request; runs detached.
func (r *Router) forwardHTTP(owner string, req serve.Request, c serve.Completion) {
	op := "read"
	if req.Op == trace.Write {
		op = "write"
	}
	body := fmt.Sprintf(`{"tenant":%d,"op":%q,"offset":%d,"size":%d,"key":%d}`,
		req.Tenant, op, req.Offset, req.Size, req.Key)
	resp, err := r.client.Post(owner+"/io", "application/json", strings.NewReader(body))
	if err != nil {
		r.met.proxyErrs.Add(1)
		c.Complete(serve.Response{}, wire.ErrUpstream)
		return
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var jr struct {
			LatencyNS int64 `json:"latency_ns"`
			SimNS     int64 `json:"sim_ns"`
		}
		if err := json.Unmarshal(respBody, &jr); err != nil {
			c.Complete(serve.Response{}, wire.ErrUpstream)
			return
		}
		c.Complete(serve.Response{Latency: sim.Time(jr.LatencyNS), At: sim.Time(jr.SimNS)}, nil)
	case resp.StatusCode == http.StatusTooManyRequests:
		c.Complete(serve.Response{}, serve.ErrQueueFull)
	case resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(respBody), "migrating"):
		c.Complete(serve.Response{}, serve.ErrTenantMigrating)
	case resp.StatusCode == http.StatusServiceUnavailable:
		c.Complete(serve.Response{}, serve.ErrDraining)
	case resp.StatusCode == http.StatusGatewayTimeout:
		c.Complete(serve.Response{}, serve.ErrCanceled)
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The node judged the request itself bad (e.g. per-node size
		// bounds); surface the in-protocol rejection both planes use,
		// not a transport failure implying an unknown outcome.
		c.Complete(serve.Response{}, errNodeRejected)
	default:
		c.Complete(serve.Response{}, wire.ErrUpstream)
	}
}

// errNodeRejected maps a node's HTTP 4xx onto serve.RejectReason's default
// "invalid" token, so a wire-front client sees the same rejection the HTTP
// plane would have surfaced.
var errNodeRejected = errors.New("fleet: node rejected request")
