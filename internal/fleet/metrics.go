package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the router's fleet-level instrumentation. Like the node's
// /metrics (PR 4), rendering is lock-free: every counter is an atomic, the
// route table is read through one atomic pointer load, and membership state
// arrives as an immutable snapshot — a stalled scraper can never stall the
// proxy hot path or a migration.
type metrics struct {
	proxied      atomic.Uint64 // requests forwarded to owner nodes (any plane)
	wireProxied  atomic.Uint64 // of those, carried by the wire data plane
	proxyErrs    atomic.Uint64 // forwards that failed at the transport
	gateWaits    atomic.Uint64 // requests held at the router for a migration
	gateRejects  atomic.Uint64 // requests answered 503 for a migration
	migStarted   atomic.Uint64
	migCompleted atomic.Uint64
	migAborted   atomic.Uint64
	handoffNS    atomic.Int64 // total wall time of completed migrations
}

// WriteMetrics renders the fleet series in Prometheus text exposition
// format: fleet size and readiness, ring version, tenant placement as an
// info series, proxy counters, and the migration counters.
func (r *Router) WriteMetrics(w io.Writer) {
	tab := r.table.Load()

	fmt.Fprintf(w, "# HELP ssdkeeper_fleet_nodes Nodes in the fleet ring.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_fleet_nodes gauge\n")
	fmt.Fprintf(w, "ssdkeeper_fleet_nodes %d\n", len(tab.ring.Nodes()))

	if r.members != nil {
		ready := 0
		for _, st := range r.members.Snapshot() {
			if st.Ready {
				ready++
			}
		}
		fmt.Fprintf(w, "# HELP ssdkeeper_fleet_nodes_ready Nodes whose /readyz answered ok at the last probe.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_fleet_nodes_ready gauge\n")
		fmt.Fprintf(w, "ssdkeeper_fleet_nodes_ready %d\n", ready)
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_ring_version Route-table version; bumps on every migration step.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_ring_version gauge\n")
	fmt.Fprintf(w, "ssdkeeper_ring_version %d\n", tab.version)

	fmt.Fprintf(w, "# HELP ssdkeeper_tenant_node Tenant placement (value is always 1; node label is the owner).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_tenant_node gauge\n")
	for t := 0; t < r.cfg.Tenants; t++ {
		state := "active"
		if _, mig := tab.migrating[t]; mig {
			state = "migrating"
		}
		fmt.Fprintf(w, "ssdkeeper_tenant_node{tenant=\"%d\",node=%q,state=%q} 1\n",
			t, tab.owner(t), state)
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_fleet_proxied_total Requests forwarded to owner nodes.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_fleet_proxied_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_fleet_proxied_total %d\n", r.met.proxied.Load())
	fmt.Fprintf(w, "# HELP ssdkeeper_fleet_wire_proxied_total Proxied requests carried by the persistent wire data plane.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_fleet_wire_proxied_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_fleet_wire_proxied_total %d\n", r.met.wireProxied.Load())
	fmt.Fprintf(w, "# HELP ssdkeeper_fleet_proxy_errors_total Forwards that failed at the transport.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_fleet_proxy_errors_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_fleet_proxy_errors_total %d\n", r.met.proxyErrs.Load())
	fmt.Fprintf(w, "# HELP ssdkeeper_fleet_gate_total Requests that hit a migrating tenant's gate, by outcome.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_fleet_gate_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_fleet_gate_total{outcome=\"queued\"} %d\n", r.met.gateWaits.Load())
	fmt.Fprintf(w, "ssdkeeper_fleet_gate_total{outcome=\"rejected\"} %d\n", r.met.gateRejects.Load())

	fmt.Fprintf(w, "# HELP ssdkeeper_migrations_total Tenant migrations, by outcome.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_migrations_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_migrations_total{outcome=\"started\"} %d\n", r.met.migStarted.Load())
	fmt.Fprintf(w, "ssdkeeper_migrations_total{outcome=\"completed\"} %d\n", r.met.migCompleted.Load())
	fmt.Fprintf(w, "ssdkeeper_migrations_total{outcome=\"aborted\"} %d\n", r.met.migAborted.Load())
	fmt.Fprintf(w, "# HELP ssdkeeper_migration_handoff_seconds_total Wall time spent in completed migrations (drain through ring flip).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_migration_handoff_seconds_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_migration_handoff_seconds_total %g\n", float64(r.met.handoffNS.Load())/1e9)
}
