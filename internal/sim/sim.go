// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes simulations fully deterministic and therefore
// reproducible across runs and platforms.
package sim

import (
	"container/heap"
	"context"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to prevent simulated
// and wall-clock time from being mixed accidentally.
type Time int64

// Common durations, expressed in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with a unit that keeps the magnitude readable.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Micros returns the time in microseconds as a float, the unit used by the
// paper's latency figures.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
	probe  Probe
}

// NewEngine returns an engine with its clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{probe: NopProbe{}}
}

// SetProbe attaches a probe notified after every event fires. A nil probe
// restores the no-op default.
func (e *Engine) SetProbe(p Probe) { e.probe = orNop(p) }

// Reset rewinds the engine to its initial state — clock at zero, no pending
// events, sequence and fired counters cleared — while keeping the event
// heap's allocated capacity. It makes one engine reusable across many
// simulations (internal/simrun runs the 42-strategy label loop on a single
// engine), and a reset engine behaves identically to a fresh one, so
// results stay byte-for-byte deterministic.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.fired = 0
	for i := range e.events {
		e.events[i].fn = nil // release captured closures
	}
	e.events = e.events[:0]
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for detecting runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a modelling bug, and silently clamping would
// corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) {
	e.Schedule(e.now+d, fn)
}

// Step executes the single earliest pending event and advances the clock to
// its timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	e.probe.EventFired(e.now)
	return true
}

// Run executes events until none remain and returns the final clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// ctxCheckInterval is how many events RunContext executes between context
// polls. Polling a channel per event would dominate the hot loop; every 1024
// events keeps cancellation latency far below a millisecond of wall time
// while costing nothing measurable.
const ctxCheckInterval = 1024

// RunContext executes events until none remain or ctx is cancelled,
// returning the clock value reached and ctx.Err() if the run was cut short.
// A background (non-cancellable) context takes the same path as Run.
func (e *Engine) RunContext(ctx context.Context) (Time, error) {
	if ctx.Done() == nil {
		return e.Run(), nil
	}
	for {
		for i := 0; i < ctxCheckInterval; i++ {
			if !e.Step() {
				return e.now, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return e.now, err
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if it has not already passed it) and returns it. Events
// scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
