// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes simulations fully deterministic and therefore
// reproducible across runs and platforms.
//
// The event queue is an inlined, index-addressed 4-ary min-heap over a
// plain []event — no container/heap, so pushes and pops move event values
// directly instead of boxing them through interface{}. Popped and reset
// slots are zeroed so the closures they captured become collectable
// immediately. See DESIGN.md "event-loop cost model" for the allocation
// budget this buys.
package sim

import (
	"context"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to prevent simulated
// and wall-clock time from being mixed accidentally.
type Time int64

// Common durations, expressed in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with a unit that keeps the magnitude readable.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Micros returns the time in microseconds as a float, the unit used by the
// paper's latency figures.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a single scheduled callback. Exactly one of fn and call is set:
// fn is the general closure path, call+arg the typed fast path that lets a
// long-lived function value be scheduled many times with varying state and
// no per-event closure allocation.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	call func(arg uint64)
	arg  uint64
}

// before orders events by (at, seq): earlier timestamps first, FIFO among
// equals. (at, seq) pairs are unique, so this is a strict total order and
// the pop sequence is independent of heap shape or arity.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// heapArity is the fan-out of the event heap. A 4-ary heap halves the tree
// depth of a binary heap, trading slightly more comparisons per level for
// far fewer cache-missing levels — the standard layout for hot simulator
// queues (d-ary heaps sit one cache line per node group).
const heapArity = 4

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events []event // inlined 4-ary min-heap ordered by (at, seq)
	fired  uint64
	probe  Probe
	// probeNop caches whether probe is the no-op default so Step can skip
	// the interface call entirely on the uninstrumented hot path.
	probeNop bool
}

// NewEngine returns an engine with its clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{probe: NopProbe{}, probeNop: true}
}

// SetProbe attaches a probe notified after every event fires. A nil probe
// restores the no-op default.
func (e *Engine) SetProbe(p Probe) {
	e.probe = orNop(p)
	_, e.probeNop = e.probe.(NopProbe)
}

// Reset rewinds the engine to its initial state — clock at zero, no pending
// events, sequence and fired counters cleared — while keeping the event
// heap's allocated capacity. It makes one engine reusable across many
// simulations (internal/simrun runs the 42-strategy label loop on a single
// engine), and a reset engine behaves identically to a fresh one, so
// results stay byte-for-byte deterministic.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.fired = 0
	for i := range e.events {
		e.events[i] = event{} // release captured closures
	}
	e.events = e.events[:0]
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for detecting runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt peeks at the timestamp of the earliest pending event without firing
// it. Pacers use it to sleep until the next completion is actually due
// instead of polling on a fixed tick.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// push inserts ev, sifting up by (at, seq). The hole-shifting form moves
// parents down and writes ev once instead of swapping element-by-element.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the popped event's closure is unreachable from the backing
// array the moment it returns — pending-closure memory is released even if
// the heap's capacity is retained for the next run.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	e.events = h
	if n > 0 {
		// Sift last down from the root: at each level pick the least of
		// up to heapArity children.
		i := 0
		for {
			c := heapArity*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + heapArity
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// checkSchedule validates a timestamp and assigns the FIFO sequence number.
// Scheduling in the past panics: it always indicates a modelling bug, and
// silently clamping would corrupt causality.
func (e *Engine) checkSchedule(at Time) uint64 {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	return e.seq
}

// Schedule registers fn to run at absolute time at.
func (e *Engine) Schedule(at Time, fn func()) {
	seq := e.checkSchedule(at)
	e.push(event{at: at, seq: seq, fn: fn})
}

// ScheduleCall registers the typed fast-path event fn(arg) at absolute time
// at. Unlike Schedule, the function value can be created once and reused for
// every event of its kind (per-event state travels in arg), so the dominant
// schedule sites — resource completions, trace-arrival injection — allocate
// nothing per event.
func (e *Engine) ScheduleCall(at Time, fn func(arg uint64), arg uint64) {
	seq := e.checkSchedule(at)
	e.push(event{at: at, seq: seq, call: fn, arg: arg})
}

// After schedules fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) {
	e.Schedule(e.now+d, fn)
}

// AfterCall schedules the typed fast-path event fn(arg) d nanoseconds after
// the current time.
func (e *Engine) AfterCall(d Time, fn func(arg uint64), arg uint64) {
	e.ScheduleCall(e.now+d, fn, arg)
}

// Step executes the single earliest pending event and advances the clock to
// its timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.fired++
	if ev.call != nil {
		ev.call(ev.arg)
	} else {
		ev.fn()
	}
	if !e.probeNop {
		e.probe.EventFired(e.now)
	}
	return true
}

// Run executes events until none remain and returns the final clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// ctxCheckInterval is how many events RunContext executes between context
// polls. Polling a channel per event would dominate the hot loop; every 1024
// events keeps cancellation latency far below a millisecond of wall time
// while costing nothing measurable.
const ctxCheckInterval = 1024

// RunContext executes events until none remain or ctx is cancelled,
// returning the clock value reached and ctx.Err() if the run was cut short.
// A background (non-cancellable) context takes the same path as Run.
func (e *Engine) RunContext(ctx context.Context) (Time, error) {
	if ctx.Done() == nil {
		return e.Run(), nil
	}
	for {
		for i := 0; i < ctxCheckInterval; i++ {
			if !e.Step() {
				return e.now, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return e.now, err
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if it has not already passed it) and returns it. Events
// scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
