package sim

import "container/heap"

// Resource models a unit of hardware that can serve one operation at a time,
// such as a flash channel bus or a die. Operations request the resource with
// Use; when the resource is free the operation occupies it for a fixed
// duration, after which the completion callback runs and the next waiter is
// granted.
//
// Waiters are ordered by (priority, arrival): lower priority values are
// served first, ties in FIFO order. This is how the device model implements
// the paper's read-priority channel arbitration — reads enqueue with a lower
// priority value than writes.
type Resource struct {
	eng  *Engine
	name string

	probe Probe
	kind  ResourceKind
	index int

	busy    bool
	waiters waiterHeap
	seq     uint64

	// Telemetry, exposed for dynamic page allocation and statistics.
	busyUntil Time
	busyTime  Time
	grants    uint64
	contended uint64 // grants that had to wait for a previous holder
	waitTime  Time   // total time spent waiting across all grants
	maxQueue  int
}

// waiter is one queued request for the resource.
type waiter struct {
	prio int
	seq  uint64
	at   Time // enqueue time, for wait accounting
	hold Time
	done func()
}

type waiterHeap []waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}

// NewResource creates a resource bound to an engine. The name appears only in
// diagnostics.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name, probe: NopProbe{}}
}

// Instrument attaches a probe that observes queueing and grants on this
// resource, identified to the probe as (kind, index). A nil probe restores
// the no-op default.
func (r *Resource) Instrument(p Probe, kind ResourceKind, index int) {
	r.probe = orNop(p)
	r.kind = kind
	r.index = index
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Use requests the resource with the given priority (lower is served first),
// occupies it for hold once granted, and then invokes done (which may be
// nil). If the resource is idle and nothing with better priority is queued,
// the grant happens immediately at the current simulated time.
func (r *Resource) Use(prio int, hold Time, done func()) {
	r.seq++
	w := waiter{prio: prio, seq: r.seq, at: r.eng.Now(), hold: hold, done: done}
	if !r.busy {
		r.grant(w)
		return
	}
	heap.Push(&r.waiters, w)
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	r.probe.ResourceQueued(r.kind, r.index, len(r.waiters))
}

// grant occupies the resource for w and schedules the release.
func (r *Resource) grant(w waiter) {
	now := r.eng.Now()
	r.busy = true
	r.grants++
	wait := now - w.at
	if wait > 0 {
		r.contended++
		r.waitTime += wait
	}
	r.probe.ResourceGranted(r.kind, r.index, w.hold, wait)
	r.busyTime += w.hold
	r.busyUntil = now + w.hold
	r.eng.Schedule(now+w.hold, func() {
		if w.done != nil {
			w.done()
		}
		r.release()
	})
}

// release frees the resource and grants the best waiter, if any.
func (r *Resource) release() {
	r.busy = false
	if len(r.waiters) > 0 {
		w := heap.Pop(&r.waiters).(waiter)
		r.grant(w)
	}
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of operations waiting (not counting the
// current holder).
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyUntil returns the time at which the current hold ends; if the resource
// is idle the value is in the past and callers should clamp to now.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Load returns an estimate of pending work used by dynamic page allocation:
// the remaining hold time of the current operation plus queued hold times.
func (r *Resource) Load(now Time) Time {
	var load Time
	if r.busy && r.busyUntil > now {
		load = r.busyUntil - now
	}
	for _, w := range r.waiters {
		load += w.hold
	}
	return load
}

// Stats is a snapshot of resource utilization counters.
type Stats struct {
	Name      string
	BusyTime  Time   // total occupied time
	Grants    uint64 // operations served
	Contended uint64 // operations that had to wait
	WaitTime  Time   // total waiting time across operations
	MaxQueue  int    // peak queue length observed
}

// Snapshot returns the current utilization counters.
func (r *Resource) Snapshot() Stats {
	return Stats{
		Name:      r.name,
		BusyTime:  r.busyTime,
		Grants:    r.grants,
		Contended: r.contended,
		WaitTime:  r.waitTime,
		MaxQueue:  r.maxQueue,
	}
}
