package sim

// Resource models a unit of hardware that can serve one operation at a time,
// such as a flash channel bus or a die. Operations request the resource with
// Use; when the resource is free the operation occupies it for a fixed
// duration, after which the completion callback runs and the next waiter is
// granted.
//
// Waiters are ordered by (priority, arrival): lower priority values are
// served first, ties in FIFO order. This is how the device model implements
// the paper's read-priority channel arbitration — reads enqueue with a lower
// priority value than writes.
//
// The wait queue is an inlined 4-ary min-heap over []waiter (no
// container/heap interface boxing), and release events go through the
// engine's typed ScheduleCall fast path with a completion function created
// once per resource — granting and releasing allocate nothing per
// operation.
type Resource struct {
	eng  *Engine
	name string

	probe Probe
	kind  ResourceKind
	index int

	busy    bool
	cur     waiter // the waiter currently holding the resource
	fin     func(uint64)
	waiters []waiter // inlined min-heap ordered by (prio, seq)
	seq     uint64

	// Telemetry, exposed for dynamic page allocation and statistics.
	busyUntil Time
	busyTime  Time
	grants    uint64
	contended uint64 // grants that had to wait for a previous holder
	waitTime  Time   // total time spent waiting across all grants
	maxQueue  int
}

// Completion is the typed completion callback for UseCompletion: a pooled
// operation record implements it once and is re-armed across stages, so
// multi-stage flash operations (die sense then bus transfer, and the
// converse for writes) schedule no per-stage closures.
type Completion interface {
	// OnComplete runs when the resource hold ends, before the next waiter
	// is granted.
	OnComplete()
}

// funcCompletion adapts a plain func() to Completion. A func value is
// pointer-shaped, so the interface conversion does not allocate.
type funcCompletion func()

// OnComplete implements Completion.
func (f funcCompletion) OnComplete() { f() }

// waiter is one queued request for the resource.
type waiter struct {
	prio int
	seq  uint64
	at   Time // enqueue time, for wait accounting
	hold Time
	done Completion
}

// wbefore orders waiters by (prio, seq): better priority first, FIFO among
// equals. Sequence numbers are unique per resource, so the order is total
// and independent of heap arity.
func (w *waiter) wbefore(o *waiter) bool {
	if w.prio != o.prio {
		return w.prio < o.prio
	}
	return w.seq < o.seq
}

// NewResource creates a resource bound to an engine. The name appears only in
// diagnostics.
func NewResource(eng *Engine, name string) *Resource {
	r := &Resource{eng: eng, name: name, probe: NopProbe{}}
	// One completion closure for the resource's lifetime; every release
	// event reuses it through the typed schedule path.
	r.fin = r.finish
	return r
}

// Reset returns the resource to its just-constructed state — idle, empty
// queue, zeroed telemetry and sequence counter — keeping the wait heap's
// capacity. The owning engine must have been Reset as well (so no release
// event for a previous hold is still pending).
func (r *Resource) Reset() {
	r.busy = false
	r.cur = waiter{}
	for i := range r.waiters {
		r.waiters[i] = waiter{}
	}
	r.waiters = r.waiters[:0]
	r.seq = 0
	r.busyUntil = 0
	r.busyTime = 0
	r.grants = 0
	r.contended = 0
	r.waitTime = 0
	r.maxQueue = 0
}

// Instrument attaches a probe that observes queueing and grants on this
// resource, identified to the probe as (kind, index). A nil probe restores
// the no-op default.
func (r *Resource) Instrument(p Probe, kind ResourceKind, index int) {
	r.probe = orNop(p)
	r.kind = kind
	r.index = index
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Use requests the resource with the given priority (lower is served first),
// occupies it for hold once granted, and then invokes done (which may be
// nil). If the resource is idle and nothing with better priority is queued,
// the grant happens immediately at the current simulated time.
func (r *Resource) Use(prio int, hold Time, done func()) {
	var c Completion
	if done != nil {
		c = funcCompletion(done)
	}
	r.UseCompletion(prio, hold, c)
}

// UseCompletion is Use with a typed completion callback; c may be nil. It is
// the allocation-free path for callers that pool their operation records.
func (r *Resource) UseCompletion(prio int, hold Time, c Completion) {
	r.seq++
	w := waiter{prio: prio, seq: r.seq, at: r.eng.Now(), hold: hold, done: c}
	if !r.busy {
		r.grant(w)
		return
	}
	r.pushWaiter(w)
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	r.probe.ResourceQueued(r.kind, r.index, len(r.waiters))
}

// pushWaiter inserts w into the wait heap, sifting up by (prio, seq).
func (r *Resource) pushWaiter(w waiter) {
	h := append(r.waiters, w)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !w.wbefore(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = w
	r.waiters = h
}

// popWaiter removes and returns the best waiter, zeroing the vacated slot so
// its completion callback is released.
func (r *Resource) popWaiter() waiter {
	h := r.waiters
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = waiter{}
	h = h[:n]
	r.waiters = h
	if n > 0 {
		i := 0
		for {
			c := heapArity*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + heapArity
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].wbefore(&h[m]) {
					m = j
				}
			}
			if !h[m].wbefore(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// grant occupies the resource for w and schedules the release.
func (r *Resource) grant(w waiter) {
	now := r.eng.Now()
	r.busy = true
	r.grants++
	wait := now - w.at
	if wait > 0 {
		r.contended++
		r.waitTime += wait
	}
	r.probe.ResourceGranted(r.kind, r.index, w.hold, wait)
	r.busyTime += w.hold
	r.busyUntil = now + w.hold
	r.cur = w
	r.eng.ScheduleCall(now+w.hold, r.fin, 0)
}

// finish ends the current hold: it runs the holder's completion and then
// releases the resource. It is the single release callback every scheduled
// hold shares (the holder is unique until release, so its state lives in
// r.cur rather than a per-event closure).
func (r *Resource) finish(uint64) {
	w := r.cur
	r.cur = waiter{} // release the completion reference
	if w.done != nil {
		w.done.OnComplete()
	}
	r.release()
}

// release frees the resource and grants the best waiter, if any.
func (r *Resource) release() {
	r.busy = false
	if len(r.waiters) > 0 {
		r.grant(r.popWaiter())
	}
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of operations waiting (not counting the
// current holder).
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyUntil returns the time at which the current hold ends; if the resource
// is idle the value is in the past and callers should clamp to now.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Load returns an estimate of pending work used by dynamic page allocation:
// the remaining hold time of the current operation plus queued hold times.
func (r *Resource) Load(now Time) Time {
	var load Time
	if r.busy && r.busyUntil > now {
		load = r.busyUntil - now
	}
	for i := range r.waiters {
		load += r.waiters[i].hold
	}
	return load
}

// Stats is a snapshot of resource utilization counters.
type Stats struct {
	Name      string
	BusyTime  Time   // total occupied time
	Grants    uint64 // operations served
	Contended uint64 // operations that had to wait
	WaitTime  Time   // total waiting time across operations
	MaxQueue  int    // peak queue length observed
}

// Snapshot returns the current utilization counters.
func (r *Resource) Snapshot() Stats {
	return Stats{
		Name:      r.name,
		BusyTime:  r.busyTime,
		Grants:    r.grants,
		Contended: r.contended,
		WaitTime:  r.waitTime,
		MaxQueue:  r.maxQueue,
	}
}
