package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{20 * Microsecond, "20.00us"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeMicros(t *testing.T) {
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros() = %v, want 1.5", got)
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("Run() = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestEngineScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for _, at := range []Time{10, 20, 30, 40} {
		e.Schedule(at, func() { count++ })
	}
	e.RunUntil(25)
	if count != 2 {
		t.Errorf("events fired by t=25: %d, want 2", count)
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 4 {
		t.Errorf("total events fired: %d, want 4", count)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("Now() = %v, want 1000", e.Now())
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5", e.Fired())
	}
}

// Property: regardless of insertion order, events fire sorted by timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResourceImmediateGrantWhenIdle(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var doneAt Time = -1
	r.Use(0, 100, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 100 {
		t.Errorf("completion at %v, want 100", doneAt)
	}
}

func TestResourceSerializesHolds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Use(0, 100, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourcePriorityPreemptsQueueOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var order []string
	r.Use(1, 100, func() { order = append(order, "first-write") })
	r.Use(1, 100, func() { order = append(order, "queued-write") })
	r.Use(0, 10, func() { order = append(order, "read") })
	e.Run()
	if order[0] != "first-write" || order[1] != "read" || order[2] != "queued-write" {
		t.Errorf("service order = %v; read should jump the queued write", order)
	}
}

func TestResourceConflictAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	r.Use(0, 100, nil)
	r.Use(0, 100, nil)
	r.Use(0, 100, nil)
	e.Run()
	s := r.Snapshot()
	if s.Grants != 3 {
		t.Errorf("grants = %d, want 3", s.Grants)
	}
	if s.Contended != 2 {
		t.Errorf("contended = %d, want 2", s.Contended)
	}
	// Second op waits 100, third waits 200.
	if s.WaitTime != 300 {
		t.Errorf("wait time = %v, want 300", s.WaitTime)
	}
	if s.BusyTime != 300 {
		t.Errorf("busy time = %v, want 300", s.BusyTime)
	}
	if s.MaxQueue != 2 {
		t.Errorf("max queue = %d, want 2", s.MaxQueue)
	}
}

func TestResourceLoadEstimate(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	r.Use(0, 100, nil)
	r.Use(0, 50, nil)
	if got := r.Load(0); got != 150 {
		t.Errorf("Load = %v, want 150", got)
	}
	e.Run()
	if got := r.Load(e.Now()); got != 0 {
		t.Errorf("Load after drain = %v, want 0", got)
	}
}

func TestResourceInterleavedArrivals(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	var ends []Time
	e.Schedule(0, func() { r.Use(0, 100, func() { ends = append(ends, e.Now()) }) })
	// Arrives while busy: starts at 100.
	e.Schedule(50, func() { r.Use(0, 100, func() { ends = append(ends, e.Now()) }) })
	// Arrives after idle gap: starts at its arrival.
	e.Schedule(500, func() { r.Use(0, 100, func() { ends = append(ends, e.Now()) }) })
	e.Run()
	want := []Time{100, 200, 600}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

// Property: total busy time equals the sum of holds, and every operation
// completes exactly once, under random arrivals/holds/priorities.
func TestResourceConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		r := NewResource(e, "x")
		n := 1 + rng.Intn(40)
		var wantBusy Time
		completed := 0
		for i := 0; i < n; i++ {
			hold := Time(1 + rng.Intn(1000))
			at := Time(rng.Intn(5000))
			prio := rng.Intn(3)
			wantBusy += hold
			e.Schedule(at, func() {
				r.Use(prio, hold, func() { completed++ })
			})
		}
		e.Run()
		s := r.Snapshot()
		if completed != n {
			t.Fatalf("trial %d: completed %d of %d", trial, completed, n)
		}
		if s.BusyTime != wantBusy {
			t.Fatalf("trial %d: busy %v, want %v", trial, s.BusyTime, wantBusy)
		}
		if s.Grants != uint64(n) {
			t.Fatalf("trial %d: grants %d, want %d", trial, s.Grants, n)
		}
	}
}

func TestEngineScheduleCallPassesArg(t *testing.T) {
	e := NewEngine()
	var got []uint64
	fn := func(arg uint64) { got = append(got, arg) }
	e.ScheduleCall(10, fn, 7)
	e.ScheduleCall(20, fn, 9)
	e.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("args = %v, want [7 9]", got)
	}
}

func TestEngineAfterCall(t *testing.T) {
	e := NewEngine()
	var at Time
	var arg uint64
	e.Schedule(10, func() {
		e.AfterCall(5, func(a uint64) { at, arg = e.Now(), a }, 3)
	})
	e.Run()
	if at != 15 || arg != 3 {
		t.Errorf("fired at %v with arg %d, want 15 and 3", at, arg)
	}
}

func TestEngineScheduleCallPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleCall in the past did not panic")
			}
		}()
		e.ScheduleCall(5, func(uint64) {}, 0)
	})
	e.Run()
}

// Property: a random interleave of typed and closure events fires in exactly
// (at, seq) order — i.e. sorted by time, FIFO among equal times — matching a
// stable sort of the schedule order. This pins the 4-ary heap's total order
// against the reference semantics regardless of arity or sift details.
func TestEngineMixedTypedOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(200)
		at := make([]Time, n)
		var fired []int
		rec := func(arg uint64) { fired = append(fired, int(arg)) }
		for i := 0; i < n; i++ {
			at[i] = Time(rng.Intn(50)) // dense range forces many ties
			if rng.Intn(2) == 0 {
				e.ScheduleCall(at[i], rec, uint64(i))
			} else {
				i := i
				e.Schedule(at[i], func() { fired = append(fired, i) })
			}
		}
		e.Run()
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return at[want[a]] < at[want[b]] })
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fired[%d] = %d, want %d (full %v)", trial, i, fired[i], want[i], fired)
			}
		}
	}
}

// Regression for the event-heap reference leak: popped and drained slots of
// the heap's backing array must not keep scheduled callbacks (and whatever
// they capture) reachable after the run consumed them.
func TestEngineReleasesEventReferencesAfterRun(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		payload := make([]byte, 1)
		e.Schedule(Time(i%10), func() { _ = payload })
		e.ScheduleCall(Time(i%10), func(uint64) { _ = payload }, 0)
	}
	e.Run()
	evs := e.events[:cap(e.events)]
	for i := range evs {
		if evs[i].fn != nil || evs[i].call != nil {
			t.Fatalf("backing slot %d still references a callback after Run", i)
		}
	}
}

func TestEngineResetReleasesPendingEventReferences(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Schedule(Time(1000+i), func() {})
	}
	e.RunUntil(10) // consume nothing, just advance
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatalf("Reset left pending=%d now=%v", e.Pending(), e.Now())
	}
	evs := e.events[:cap(e.events)]
	for i := range evs {
		if evs[i].fn != nil || evs[i].call != nil {
			t.Fatalf("backing slot %d still references a callback after Reset", i)
		}
	}
}

// RunUntil partway through a schedule followed by Reset must leave the
// engine indistinguishable from a fresh one.
func TestEngineRunUntilThenResetBehavesFresh(t *testing.T) {
	run := func(e *Engine) []Time {
		var fired []Time
		for _, at := range []Time{5, 15, 25} {
			at := at
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return fired
	}
	used := NewEngine()
	for _, at := range []Time{10, 20, 30, 40} {
		used.Schedule(at, func() {})
	}
	used.RunUntil(25) // fires 2 of 4, clock at 25, 2 pending
	used.Reset()
	fresh := NewEngine()
	got, want := run(used), run(fresh)
	if len(got) != len(want) {
		t.Fatalf("reset engine fired %v, fresh %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reset engine fired %v, fresh %v", got, want)
		}
	}
	if used.Fired() != fresh.Fired() {
		t.Errorf("Fired() = %d after reset, fresh %d", used.Fired(), fresh.Fired())
	}
}

// A Reset resource must reproduce a fresh resource's grant order, timing,
// and statistics exactly (including seq-based FIFO tie-breaks).
func TestResourceResetBehavesFresh(t *testing.T) {
	drive := func(e *Engine, r *Resource) ([]Time, Stats) {
		var ends []Time
		for i := 0; i < 4; i++ {
			prio := i % 2
			e.Schedule(Time(i*10), func() {
				r.Use(prio, 100, func() { ends = append(ends, e.Now()) })
			})
		}
		e.Run()
		return ends, r.Snapshot()
	}
	e := NewEngine()
	r := NewResource(e, "bus")
	first, firstStats := drive(e, r)
	e.Reset()
	r.Reset()
	second, secondStats := drive(e, r)
	if len(first) != len(second) {
		t.Fatalf("runs completed %d vs %d ops", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("completion times diverge: %v vs %v", first, second)
		}
	}
	if firstStats != secondStats {
		t.Errorf("stats diverge after reset: %+v vs %+v", firstStats, secondStats)
	}
}
