package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{20 * Microsecond, "20.00us"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeMicros(t *testing.T) {
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros() = %v, want 1.5", got)
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("Run() = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestEngineScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for _, at := range []Time{10, 20, 30, 40} {
		e.Schedule(at, func() { count++ })
	}
	e.RunUntil(25)
	if count != 2 {
		t.Errorf("events fired by t=25: %d, want 2", count)
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 4 {
		t.Errorf("total events fired: %d, want 4", count)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("Now() = %v, want 1000", e.Now())
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5", e.Fired())
	}
}

// Property: regardless of insertion order, events fire sorted by timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResourceImmediateGrantWhenIdle(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var doneAt Time = -1
	r.Use(0, 100, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 100 {
		t.Errorf("completion at %v, want 100", doneAt)
	}
}

func TestResourceSerializesHolds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Use(0, 100, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourcePriorityPreemptsQueueOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var order []string
	r.Use(1, 100, func() { order = append(order, "first-write") })
	r.Use(1, 100, func() { order = append(order, "queued-write") })
	r.Use(0, 10, func() { order = append(order, "read") })
	e.Run()
	if order[0] != "first-write" || order[1] != "read" || order[2] != "queued-write" {
		t.Errorf("service order = %v; read should jump the queued write", order)
	}
}

func TestResourceConflictAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	r.Use(0, 100, nil)
	r.Use(0, 100, nil)
	r.Use(0, 100, nil)
	e.Run()
	s := r.Snapshot()
	if s.Grants != 3 {
		t.Errorf("grants = %d, want 3", s.Grants)
	}
	if s.Contended != 2 {
		t.Errorf("contended = %d, want 2", s.Contended)
	}
	// Second op waits 100, third waits 200.
	if s.WaitTime != 300 {
		t.Errorf("wait time = %v, want 300", s.WaitTime)
	}
	if s.BusyTime != 300 {
		t.Errorf("busy time = %v, want 300", s.BusyTime)
	}
	if s.MaxQueue != 2 {
		t.Errorf("max queue = %d, want 2", s.MaxQueue)
	}
}

func TestResourceLoadEstimate(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	r.Use(0, 100, nil)
	r.Use(0, 50, nil)
	if got := r.Load(0); got != 150 {
		t.Errorf("Load = %v, want 150", got)
	}
	e.Run()
	if got := r.Load(e.Now()); got != 0 {
		t.Errorf("Load after drain = %v, want 0", got)
	}
}

func TestResourceInterleavedArrivals(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	var ends []Time
	e.Schedule(0, func() { r.Use(0, 100, func() { ends = append(ends, e.Now()) }) })
	// Arrives while busy: starts at 100.
	e.Schedule(50, func() { r.Use(0, 100, func() { ends = append(ends, e.Now()) }) })
	// Arrives after idle gap: starts at its arrival.
	e.Schedule(500, func() { r.Use(0, 100, func() { ends = append(ends, e.Now()) }) })
	e.Run()
	want := []Time{100, 200, 600}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

// Property: total busy time equals the sum of holds, and every operation
// completes exactly once, under random arrivals/holds/priorities.
func TestResourceConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		r := NewResource(e, "x")
		n := 1 + rng.Intn(40)
		var wantBusy Time
		completed := 0
		for i := 0; i < n; i++ {
			hold := Time(1 + rng.Intn(1000))
			at := Time(rng.Intn(5000))
			prio := rng.Intn(3)
			wantBusy += hold
			e.Schedule(at, func() {
				r.Use(prio, hold, func() { completed++ })
			})
		}
		e.Run()
		s := r.Snapshot()
		if completed != n {
			t.Fatalf("trial %d: completed %d of %d", trial, completed, n)
		}
		if s.BusyTime != wantBusy {
			t.Fatalf("trial %d: busy %v, want %v", trial, s.BusyTime, wantBusy)
		}
		if s.Grants != uint64(n) {
			t.Fatalf("trial %d: grants %d, want %d", trial, s.Grants, n)
		}
	}
}
