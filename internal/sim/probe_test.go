package sim

import (
	"context"
	"errors"
	"testing"
)

// recordingProbe captures every probe callback for assertions.
type recordingProbe struct {
	events   int
	queued   []int // queue lengths reported
	granted  []Time
	waits    []Time
	kinds    []ResourceKind
	indexes  []int
	gcCalls  int
	cmtCalls int
}

func (p *recordingProbe) EventFired(Time) { p.events++ }
func (p *recordingProbe) ResourceQueued(kind ResourceKind, index, queueLen int) {
	p.queued = append(p.queued, queueLen)
}
func (p *recordingProbe) ResourceGranted(kind ResourceKind, index int, hold, wait Time) {
	p.kinds = append(p.kinds, kind)
	p.indexes = append(p.indexes, index)
	p.granted = append(p.granted, hold)
	p.waits = append(p.waits, wait)
}
func (p *recordingProbe) GC(plane int, moved, wearMoved, erases int, dieTime Time) { p.gcCalls++ }
func (p *recordingProbe) CMT(hit bool)                                             { p.cmtCalls++ }
func (p *recordingProbe) DieFailed(die, rebuilt int)                               {}
func (p *recordingProbe) BlockRetired(plane, moved int)                            {}
func (p *recordingProbe) ReadRetry(die, passes int)                                {}
func (p *recordingProbe) ProgramSlowdown(die int, extra Time)                      {}

func TestEngineProbeSeesEveryEvent(t *testing.T) {
	e := NewEngine()
	var p recordingProbe
	e.SetProbe(&p)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if p.events != 7 {
		t.Errorf("probe saw %d events, want 7", p.events)
	}
}

func TestResourceProbeSeesQueueingAndGrants(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus0")
	var p recordingProbe
	r.Instrument(&p, KindBus, 3)
	e.Schedule(0, func() {
		r.Use(0, 10, nil) // immediate grant, wait 0
		r.Use(0, 10, nil) // queued behind the first, waits 10
	})
	e.Run()
	if len(p.queued) != 1 || p.queued[0] != 1 {
		t.Errorf("queued events %v, want one report of depth 1", p.queued)
	}
	if len(p.granted) != 2 {
		t.Fatalf("grants %d, want 2", len(p.granted))
	}
	if p.granted[0] != 10 || p.granted[1] != 10 {
		t.Errorf("hold times %v, want [10 10]", p.granted)
	}
	if p.waits[0] != 0 || p.waits[1] != 10 {
		t.Errorf("wait times %v, want [0 10]", p.waits)
	}
	for i := range p.kinds {
		if p.kinds[i] != KindBus || p.indexes[i] != 3 {
			t.Errorf("grant %d attributed to (%v,%d), want (KindBus,3)", i, p.kinds[i], p.indexes[i])
		}
	}
}

func TestSetProbeNilRestoresNop(t *testing.T) {
	e := NewEngine()
	e.SetProbe(nil) // must not panic when events fire
	e.Schedule(1, func() {})
	e.Run()
	r := NewResource(e, "x")
	r.Instrument(nil, KindDie, 0)
	r.Use(0, 1, nil)
	e.Run()
}

// TestEngineResetBehavesLikeFresh asserts the engine-reuse contract: a reset
// engine replays a schedule with exactly the same clock, order and counters
// as a brand-new engine.
func TestEngineResetBehavesLikeFresh(t *testing.T) {
	script := func(e *Engine) (order []int, end Time) {
		e.Schedule(5, func() { order = append(order, 1) })
		e.Schedule(5, func() { order = append(order, 2) })
		e.Schedule(3, func() {
			order = append(order, 0)
			e.After(10, func() { order = append(order, 3) })
		})
		end = e.Run()
		return order, end
	}
	fresh := NewEngine()
	wantOrder, wantEnd := script(fresh)

	reused := NewEngine()
	reused.Schedule(100, func() {})
	reused.Run()
	reused.Reset()
	if reused.Now() != 0 || reused.Fired() != 0 || reused.Pending() != 0 {
		t.Fatalf("after Reset: now=%v fired=%d pending=%d, want all zero",
			reused.Now(), reused.Fired(), reused.Pending())
	}
	gotOrder, gotEnd := script(reused)
	if gotEnd != wantEnd {
		t.Errorf("reset engine ended at %v, fresh at %v", gotEnd, wantEnd)
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("event counts differ: %v vs %v", gotOrder, wantOrder)
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order differs: %v vs %v", gotOrder, wantOrder)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	// Self-perpetuating schedule: without cancellation this would run
	// far past the poll interval.
	var fired int
	var reschedule func()
	reschedule = func() {
		fired++
		if fired == ctxCheckInterval/2 {
			cancel()
		}
		if fired < 10*ctxCheckInterval {
			e.After(1, reschedule)
		}
	}
	e.Schedule(0, reschedule)
	_, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if fired >= 10*ctxCheckInterval {
		t.Errorf("engine ran to completion (%d events) despite cancellation", fired)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(10*i), func() {})
	}
	end, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if end != 40 {
		t.Errorf("RunContext end %v, want 40", end)
	}
	if e.Fired() != 5 {
		t.Errorf("fired %d, want 5", e.Fired())
	}
}
