package sim

// ResourceKind labels the class of hardware a Resource models, so a probe
// can route its observations without string matching on resource names.
type ResourceKind uint8

// Resource kinds instrumented by the SSD model.
const (
	// KindBus is a channel bus; the index is the channel number.
	KindBus ResourceKind = iota
	// KindDie is a flash die; the index is the device-wide die number.
	KindDie
)

// Probe receives fine-grained observations from inside a simulation run:
// every event the engine fires, every queue/grant transition on an
// instrumented resource, and the FTL-level garbage-collection and mapping
// cache outcomes. Implementations must be cheap — probe methods sit on the
// simulation hot path and are called once per event or per flash operation.
//
// Probes are wired in by internal/simrun; NopProbe is the default and keeps
// the hot path allocation-free.
type Probe interface {
	// EventFired is called after each engine event executes, with the
	// clock value the event fired at.
	EventFired(now Time)
	// ResourceQueued is called when a request finds the resource busy and
	// joins the wait queue; queueLen is the queue length including the
	// new arrival (not counting the current holder).
	ResourceQueued(kind ResourceKind, index, queueLen int)
	// ResourceGranted is called when the resource is granted: hold is the
	// occupancy duration, wait the time spent queued (zero when granted
	// immediately).
	ResourceGranted(kind ResourceKind, index int, hold, wait Time)
	// GC is called once per garbage-collection invocation with the victim
	// plane, valid pages relocated by GC, pages migrated by static wear
	// leveling, blocks erased, and the total die time the cleaning
	// occupies (the erase stall seen by the die).
	GC(plane, moved, wearMoved, erases int, dieTime Time)
	// CMT is called for each mapping lookup against a configured cached
	// mapping table, with the hit/miss outcome.
	CMT(hit bool)
	// DieFailed is called once when an injected fault kills a die, with
	// the device-wide die index and the valid pages rebuilt onto live
	// dies.
	DieFailed(die, rebuilt int)
	// BlockRetired is called once per block an injected fault retires,
	// with the flat plane index and the valid pages relocated.
	BlockRetired(plane, moved int)
	// ReadRetry is called when a read needs extra sensing passes, with
	// the number of extra passes charged to the die.
	ReadRetry(die, passes int)
	// ProgramSlowdown is called when wear-dependent slowdown stretches a
	// program, with the extra die time beyond the nominal latency.
	ProgramSlowdown(die int, extra Time)
}

// NopProbe is a Probe that discards everything. It is the default probe on
// engines, resources and FTLs, so instrumented code never needs a nil check.
type NopProbe struct{}

// EventFired implements Probe.
func (NopProbe) EventFired(Time) {}

// ResourceQueued implements Probe.
func (NopProbe) ResourceQueued(ResourceKind, int, int) {}

// ResourceGranted implements Probe.
func (NopProbe) ResourceGranted(ResourceKind, int, Time, Time) {}

// GC implements Probe.
func (NopProbe) GC(int, int, int, int, Time) {}

// CMT implements Probe.
func (NopProbe) CMT(bool) {}

// DieFailed implements Probe.
func (NopProbe) DieFailed(int, int) {}

// BlockRetired implements Probe.
func (NopProbe) BlockRetired(int, int) {}

// ReadRetry implements Probe.
func (NopProbe) ReadRetry(int, int) {}

// ProgramSlowdown implements Probe.
func (NopProbe) ProgramSlowdown(int, Time) {}

// orNop maps nil to NopProbe so stored probes are always callable.
func orNop(p Probe) Probe {
	if p == nil {
		return NopProbe{}
	}
	return p
}
