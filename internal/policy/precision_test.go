package policy

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/nn"
)

// TestCheckpointPrecisionRoundTrip: the precision marker survives save/load,
// and a float64 save is byte-identical to the pre-precision format (the
// field is omitted), so existing artifacts and their checksums are
// untouched.
func TestCheckpointPrecisionRoundTrip(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)

	var legacy, f64, i8 bytes.Buffer
	if err := SaveCheckpoint(&legacy, net, Meta{Name: "p"}, testChannels, strategies); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpointPrecision(&f64, net, Meta{Name: "p"}, testChannels, strategies, nn.Float64); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpointPrecision(&i8, net, Meta{Name: "p"}, testChannels, strategies, nn.Int8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), f64.Bytes()) {
		t.Error("float64 SaveCheckpointPrecision output differs from SaveCheckpoint (format drift)")
	}

	_, _, p, err := LoadCheckpointPrecision(bytes.NewReader(f64.Bytes()), testChannels, strategies)
	if err != nil || p != nn.Float64 {
		t.Fatalf("float64 checkpoint: precision %v, err %v", p, err)
	}
	loaded, meta, p, err := LoadCheckpointPrecision(bytes.NewReader(i8.Bytes()), testChannels, strategies)
	if err != nil || p != nn.Int8 {
		t.Fatalf("int8 checkpoint: precision %v, err %v", p, err)
	}
	if meta.Name != "p" {
		t.Errorf("meta lost: %+v", meta)
	}
	// Weights are stored at full precision regardless of the marker.
	x := pinnedVectors(1)[0].Input()
	want, _ := net.Forward(x)
	wantCopy := append([]float64(nil), want...)
	got, _ := loaded.Forward(x)
	for j := range wantCopy {
		if got[j] != wantCopy[j] {
			t.Fatalf("int8-marked checkpoint altered stored weights (logit %d: %v != %v)",
				j, got[j], wantCopy[j])
		}
	}
}

// TestLoadCheckpointRefusesInt8: the float-only loader must not silently
// serve a model that was validated for int8 deployment at a different
// numerics; the error tells the operator where to take it.
func TestLoadCheckpointRefusesInt8(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	var buf bytes.Buffer
	if err := SaveCheckpointPrecision(&buf, net, Meta{}, testChannels, strategies, nn.Int8); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), testChannels, strategies)
	if err == nil {
		t.Fatal("float-only LoadCheckpoint accepted an int8 checkpoint")
	}
	if !strings.Contains(err.Error(), "precision-aware") {
		t.Errorf("refusal error %q does not point at a precision-aware consumer", err)
	}
}

// TestLoadCheckpointUnknownPrecision: a precision string this binary does
// not know is a hard error, not a silent float64 fallback.
func TestLoadCheckpointUnknownPrecision(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	var buf bytes.Buffer
	if err := SaveCheckpointPrecision(&buf, net, Meta{}, testChannels, strategies, nn.Int8); err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(buf.Bytes(), []byte(`"int8"`), []byte(`"int4"`), 1)
	if bytes.Equal(mangled, buf.Bytes()) {
		t.Fatal("fixture: precision marker not found in envelope")
	}
	_, _, _, err := LoadCheckpointPrecision(bytes.NewReader(mangled), testChannels, strategies)
	if err == nil {
		t.Fatal("unknown precision accepted")
	}
	if !strings.Contains(err.Error(), "newer binary") {
		t.Errorf("unknown-precision error %q does not hint at a version skew", err)
	}
}

// TestRegistryLoadsInt8Checkpoint: an int8 artifact dropped into a registry
// directory serves quantized with no extra flags.
func TestRegistryLoadsInt8Checkpoint(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "v001.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpointPrecision(f, net, Meta{}, testChannels, strategies, nn.Int8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg, err := NewRegistry(dir, testChannels, strategies)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision() != nn.Int8 {
		t.Fatalf("registry model precision = %v, want int8", m.Precision())
	}
	pol := m.NewPolicy()
	for _, v := range pinnedVectors(16) {
		if _, err := pol.Decide(v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelWithPrecision covers the daemon's -quantize path: same version,
// same metadata, swapped kernel; unsupported deploy precisions are refused.
func TestModelWithPrecision(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	m, err := NewModel("v1", net, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision() != nn.Float64 {
		t.Fatalf("default precision = %v", m.Precision())
	}
	q, err := m.WithPrecision(nn.Int8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Version() != "v1" || q.Precision() != nn.Int8 {
		t.Fatalf("WithPrecision: version %q precision %v", q.Version(), q.Precision())
	}
	if same, err := q.WithPrecision(nn.Int8); err != nil || same != q {
		t.Errorf("WithPrecision to the same precision should return the receiver")
	}
	if _, err := m.WithPrecision(nn.Float16); err == nil {
		t.Error("float16 deployment accepted (no kernel exists)")
	}
	if _, err := NewModelPrecision("v1", net, strategies, nn.Float32); err == nil {
		t.Error("float32 deployment accepted (no kernel exists)")
	}
}

// TestDecideBatchMatchesDecide: for both kernels, the batched decision path
// must choose exactly what per-vector Decide chooses.
func TestDecideBatchMatchesDecide(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	vs := pinnedVectors(33)

	for _, prec := range []nn.Precision{nn.Float64, nn.Int8} {
		m, err := NewModelPrecision("v1", net, strategies, prec)
		if err != nil {
			t.Fatal(err)
		}
		pol := m.NewPolicy().(*ANNPolicy)
		out := make([]alloc.Strategy, len(vs))
		if err := pol.DecideBatch(vs, out); err != nil {
			t.Fatal(err)
		}
		for i, v := range vs {
			want, err := pol.Decide(v)
			if err != nil {
				t.Fatal(err)
			}
			if !alloc.Equal(out[i], want) {
				t.Fatalf("%s vector %d: batch chose %+v, Decide chose %+v", prec, i, out[i], want)
			}
		}
		if err := pol.DecideBatch(vs, out[:1]); err == nil {
			t.Error("mismatched out length accepted")
		}
		if err := pol.DecideBatch(nil, nil); err != nil {
			t.Errorf("empty batch: %v", err)
		}
	}

	// StaticPolicy's batch form fills the pinned strategy.
	st := StaticPolicy{Strategy: strategies[2]}
	out := make([]alloc.Strategy, 4)
	if err := st.DecideBatch(vs[:4], out); err != nil {
		t.Fatal(err)
	}
	for _, got := range out {
		if !alloc.Equal(got, strategies[2]) {
			t.Fatalf("static batch = %+v", got)
		}
	}
}
