package policy

import (
	"fmt"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
)

// ANNPolicy is one consumer's inference instance over a shared, read-only
// classifier: argmax over the network's logits indexes the strategy space.
// Depending on the model's deployment precision it carries either a float64
// nn.Inference or an int8 nn.QuantizedInference; both are per-caller arenas
// over shared weights, so any number of ANNPolicy instances run concurrently
// over the same model without locking — but a single instance is not safe
// for concurrent use.
type ANNPolicy struct {
	inf        *nn.Inference          // float64 path (nil when quantized)
	qinf       *nn.QuantizedInference // int8 path (nil when float)
	strategies []alloc.Strategy
	dim        int // the model's input width: features.Dim or features.LegacyDim

	// Batch scratch, reused across DecideBatch calls: a flat input plane
	// (rows sliced per vector) and the per-vector class indices.
	inputs  []float64
	rows    [][]float64
	classes []int
}

// NewANN builds a float64 inference policy over a trained network and its
// strategy space. The network's geometry must match: features.Dim inputs
// (or features.LegacyDim for pre-health checkpoints, which are served
// through the legacy encoding), one output class per strategy.
func NewANN(model *nn.Network, strategies []alloc.Strategy) (*ANNPolicy, error) {
	if err := checkGeometry(model, strategies); err != nil {
		return nil, err
	}
	return &ANNPolicy{inf: model.CloneForInference(), strategies: strategies, dim: model.InputDim()}, nil
}

// NewQuantizedANN builds an int8 inference policy over a shared quantized
// deployment artifact.
func NewQuantizedANN(q *nn.QuantizedNet, strategies []alloc.Strategy) (*ANNPolicy, error) {
	switch {
	case q == nil:
		return nil, fmt.Errorf("policy: nil quantized network")
	case len(strategies) == 0:
		return nil, fmt.Errorf("policy: empty strategy space")
	case q.InputDim() != features.Dim && q.InputDim() != features.LegacyDim:
		return nil, fmt.Errorf("policy: network input dim %d, want features.Dim %d (or legacy %d)",
			q.InputDim(), features.Dim, features.LegacyDim)
	case q.OutputDim() != len(strategies):
		return nil, fmt.Errorf("policy: network has %d classes for %d strategies",
			q.OutputDim(), len(strategies))
	}
	return &ANNPolicy{qinf: q.CloneForInference(), strategies: strategies, dim: q.InputDim()}, nil
}

// appendInput encodes v at the model's input width: legacy-dim models get the
// pre-health encoding (health features dropped), current models the full one.
func (p *ANNPolicy) appendInput(dst []float64, v features.Vector) []float64 {
	if p.dim == features.LegacyDim {
		return v.AppendLegacyInput(dst)
	}
	return v.AppendInput(dst)
}

// Decide runs one forward pass and returns the argmax strategy.
func (p *ANNPolicy) Decide(v features.Vector) (alloc.Strategy, error) {
	p.growBatch(1)
	x := p.appendInput(p.inputs[:0], v)
	var idx int
	var err error
	if p.qinf != nil {
		idx, err = p.qinf.Predict(x)
	} else {
		idx, err = p.inf.Predict(x)
	}
	if err != nil {
		return alloc.Strategy{}, err
	}
	return p.strategies[idx], nil
}

// growBatch sizes the reusable input plane and class scratch for n vectors.
func (p *ANNPolicy) growBatch(n int) {
	if need := n * p.dim; cap(p.inputs) < need {
		p.inputs = make([]float64, 0, need)
	}
	if cap(p.rows) < n {
		p.rows = make([][]float64, n)
	}
	if cap(p.classes) < n {
		p.classes = make([]int, n)
	}
}

// DecideBatch decides for every vector in one pass over the weight matrices
// (nn ForwardBatch), writing the chosen strategies into out. out must have
// len(vs) entries. Steady-state it allocates nothing: the encoded inputs and
// class indices live in per-policy scratch.
func (p *ANNPolicy) DecideBatch(vs []features.Vector, out []alloc.Strategy) error {
	if len(out) != len(vs) {
		return fmt.Errorf("policy: %d strategy slots for %d vectors", len(out), len(vs))
	}
	if len(vs) == 0 {
		return nil
	}
	p.growBatch(len(vs))
	flat := p.inputs[:0]
	rows := p.rows[:len(vs)]
	for i, v := range vs {
		start := len(flat)
		flat = p.appendInput(flat, v)
		rows[i] = flat[start:len(flat):len(flat)]
	}
	p.inputs = flat
	classes := p.classes[:len(vs)]
	var err error
	if p.qinf != nil {
		err = p.qinf.PredictBatch(rows, classes)
	} else {
		err = p.inf.PredictBatch(rows, classes)
	}
	if err != nil {
		return err
	}
	for i, c := range classes {
		out[i] = p.strategies[c]
	}
	return nil
}

// checkGeometry validates a network against the feature schema and strategy
// space the binary was built with. Legacy-width (pre-health) networks pass:
// they serve through the legacy input encoding.
func checkGeometry(model *nn.Network, strategies []alloc.Strategy) error {
	switch {
	case model == nil:
		return fmt.Errorf("policy: nil network")
	case len(strategies) == 0:
		return fmt.Errorf("policy: empty strategy space")
	case model.InputDim() != features.Dim && model.InputDim() != features.LegacyDim:
		return fmt.Errorf("policy: network input dim %d, want features.Dim %d (or legacy %d)",
			model.InputDim(), features.Dim, features.LegacyDim)
	case model.OutputDim() != len(strategies):
		return fmt.Errorf("policy: network has %d classes for %d strategies",
			model.OutputDim(), len(strategies))
	}
	return nil
}

// Model is a versioned ANN artifact: a trained network bound to the strategy
// space it classifies over and the precision it deploys at, typically loaded
// from a checkpoint by the Registry. The network is treated as read-only;
// NewPolicy hands each consumer its own inference scratch. For Int8 the
// quantized deployment artifact is built once here and shared by every
// policy instance.
type Model struct {
	version    string
	meta       Meta
	net        *nn.Network
	qnet       *nn.QuantizedNet // non-nil iff precision == nn.Int8
	precision  nn.Precision
	strategies []alloc.Strategy
}

// NewModel wraps a trained network as a versioned float64 provider,
// validating its geometry once so NewPolicy cannot fail later.
func NewModel(version string, net *nn.Network, strategies []alloc.Strategy) (*Model, error) {
	return NewModelPrecision(version, net, strategies, nn.Float64)
}

// NewModelPrecision wraps a trained network as a versioned provider deployed
// at the given precision. Int8 builds the quantized artifact eagerly (the
// conversion is deterministic, so every consumer shares one artifact and
// serves identical decisions). Precisions without a dedicated kernel
// (Float32, Float16) are rejected: simulate them with net.Quantized instead.
func NewModelPrecision(version string, net *nn.Network, strategies []alloc.Strategy, p nn.Precision) (*Model, error) {
	if version == "" {
		return nil, fmt.Errorf("policy: model needs a version name")
	}
	if err := checkGeometry(net, strategies); err != nil {
		return nil, err
	}
	m := &Model{version: version, net: net, strategies: strategies, precision: p}
	switch p {
	case nn.Float64:
	case nn.Int8:
		m.qnet = net.QuantizeInt8()
	default:
		return nil, fmt.Errorf("policy: no serving kernel for precision %s (only float64 and int8 deploy)", p)
	}
	return m, nil
}

// Version returns the artifact's version name.
func (m *Model) Version() string { return m.version }

// Meta returns the training metadata recorded in the checkpoint envelope
// (zero for in-memory models).
func (m *Model) Meta() Meta { return m.meta }

// Net returns the underlying network. Callers must treat it as read-only.
func (m *Model) Net() *nn.Network { return m.net }

// Precision returns the deployment precision this model serves at.
func (m *Model) Precision() nn.Precision { return m.precision }

// WithPrecision returns a model identical to m but deployed at precision p
// (the daemon's -quantize flag forces Int8 this way). The version name is
// unchanged: precision is a serving property, not a different artifact.
func (m *Model) WithPrecision(p nn.Precision) (*Model, error) {
	if p == m.precision {
		return m, nil
	}
	nm, err := NewModelPrecision(m.version, m.net, m.strategies, p)
	if err != nil {
		return nil, err
	}
	nm.meta = m.meta
	return nm, nil
}

// NewPolicy instantiates a consumer-owned inference policy at the model's
// deployment precision. Geometry was validated at construction, so this
// cannot fail.
func (m *Model) NewPolicy() Policy {
	var p Policy
	var err error
	if m.qnet != nil {
		p, err = NewQuantizedANN(m.qnet, m.strategies)
	} else {
		p, err = NewANN(m.net, m.strategies)
	}
	if err != nil {
		// Unreachable: NewModelPrecision validated the same geometry.
		panic(fmt.Sprintf("policy: model %q invalid after construction: %v", m.version, err))
	}
	return p
}
