package policy

import (
	"fmt"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
)

// ANNPolicy is one consumer's inference instance over a shared, read-only
// classifier: argmax over the network's logits indexes the strategy space.
// The embedded nn.Inference carries private forward-pass scratch, so any
// number of ANNPolicy instances run concurrently over the same weights
// without locking — but a single instance is not safe for concurrent use.
type ANNPolicy struct {
	inf        *nn.Inference
	strategies []alloc.Strategy
}

// NewANN builds an inference policy over a trained network and its strategy
// space. The network's geometry must match: features.Dim inputs, one output
// class per strategy.
func NewANN(model *nn.Network, strategies []alloc.Strategy) (*ANNPolicy, error) {
	if err := checkGeometry(model, strategies); err != nil {
		return nil, err
	}
	return &ANNPolicy{inf: model.CloneForInference(), strategies: strategies}, nil
}

// Decide runs one forward pass and returns the argmax strategy.
func (p *ANNPolicy) Decide(v features.Vector) (alloc.Strategy, error) {
	idx, err := p.inf.Predict(v.Input())
	if err != nil {
		return alloc.Strategy{}, err
	}
	return p.strategies[idx], nil
}

// checkGeometry validates a network against the feature schema and strategy
// space the binary was built with.
func checkGeometry(model *nn.Network, strategies []alloc.Strategy) error {
	switch {
	case model == nil:
		return fmt.Errorf("policy: nil network")
	case len(strategies) == 0:
		return fmt.Errorf("policy: empty strategy space")
	case model.InputDim() != features.Dim:
		return fmt.Errorf("policy: network input dim %d, want features.Dim %d",
			model.InputDim(), features.Dim)
	case model.OutputDim() != len(strategies):
		return fmt.Errorf("policy: network has %d classes for %d strategies",
			model.OutputDim(), len(strategies))
	}
	return nil
}

// Model is a versioned ANN artifact: a trained network bound to the strategy
// space it classifies over, typically loaded from a checkpoint by the
// Registry. The network is treated as read-only; NewPolicy hands each
// consumer its own inference scratch.
type Model struct {
	version    string
	meta       Meta
	net        *nn.Network
	strategies []alloc.Strategy
}

// NewModel wraps a trained network as a versioned provider, validating its
// geometry once so NewPolicy cannot fail later.
func NewModel(version string, net *nn.Network, strategies []alloc.Strategy) (*Model, error) {
	if version == "" {
		return nil, fmt.Errorf("policy: model needs a version name")
	}
	if err := checkGeometry(net, strategies); err != nil {
		return nil, err
	}
	return &Model{version: version, net: net, strategies: strategies}, nil
}

// Version returns the artifact's version name.
func (m *Model) Version() string { return m.version }

// Meta returns the training metadata recorded in the checkpoint envelope
// (zero for in-memory models).
func (m *Model) Meta() Meta { return m.meta }

// Net returns the underlying network. Callers must treat it as read-only.
func (m *Model) Net() *nn.Network { return m.net }

// NewPolicy instantiates a consumer-owned inference policy. Geometry was
// validated at construction, so this cannot fail.
func (m *Model) NewPolicy() Policy {
	p, err := NewANN(m.net, m.strategies)
	if err != nil {
		// Unreachable: NewModel validated the same geometry.
		panic(fmt.Sprintf("policy: model %q invalid after construction: %v", m.version, err))
	}
	return p
}
