package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
)

// A checkpoint is an nn model wrapped in a versioned envelope:
//
//	{
//	  "format_version": 2,
//	  "feature_schema_hash": "…",   // binds the file to the feature/strategy schema
//	  "model_sha256": "…",          // content checksum over the embedded model
//	  "precision": "int8",          // deployment precision (absent ⇒ float64)
//	  "meta": { … },                // training provenance
//	  "model": { "version":1, "layers":[…] }   // the nn serialization, verbatim
//	}
//
// The schema hash is computed from the constants the binary was compiled
// with (features.Dim/Levels/MaxTenants, channel count, strategy-space
// names); loading refuses a checkpoint trained against a different schema
// with a clear error instead of silently misclassifying. The checksum
// catches truncation and bit rot. Files written before the envelope existed
// (a bare {"version":1,"layers":…} model) still load, with geometry-only
// validation.

// FormatVersion is the current checkpoint envelope format. Version 1 is the
// bare nn model file, retroactively.
const FormatVersion = 2

// Training provenance sources: offline is the keeper-train pipeline over
// synthetic labelled workloads; online is the continuous learner retraining
// on live traffic samples.
const (
	SourceOffline = "offline"
	SourceOnline  = "online"
)

// Meta is the training provenance recorded in a checkpoint.
type Meta struct {
	Name       string  `json:"name,omitempty"`
	TrainedAt  string  `json:"trained_at,omitempty"` // RFC 3339
	Samples    int     `json:"samples,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Optimizer  string  `json:"optimizer,omitempty"`
	Activation string  `json:"activation,omitempty"`
	Loss       float64 `json:"loss,omitempty"`
	Accuracy   float64 `json:"accuracy,omitempty"`
	// Source records how the model was trained: SourceOffline (synthetic
	// labelled workloads) or SourceOnline (live-traffic samples). Absent in
	// files written before continuous learning existed.
	Source string `json:"source,omitempty"`
	// Parent is the version whose live traffic the training samples were
	// harvested under — the checkpoint's ancestor in the online-learning
	// lineage. Only online checkpoints carry one.
	Parent string `json:"parent,omitempty"`
}

// envelope is the on-disk checkpoint schema.
type envelope struct {
	FormatVersion int    `json:"format_version"`
	SchemaHash    string `json:"feature_schema_hash"`
	Checksum      string `json:"model_sha256"`
	// Precision is the deployment precision the model was validated for
	// ("int8", ...). Absent or empty means float64, so files written
	// before the field existed load unchanged.
	Precision string          `json:"precision,omitempty"`
	Meta      Meta            `json:"meta"`
	Model     json.RawMessage `json:"model"`

	// Layers is only probed to recognize a pre-envelope bare model file.
	Layers json.RawMessage `json:"layers,omitempty"`
}

// SchemaHash fingerprints the feature encoding and strategy space the
// binary was built with. Any change to features.Dim/Levels/MaxTenants, the
// channel count, or the strategy space's composition or order changes the
// hash and invalidates old checkpoints. v2 is the health-extended schema
// (features.Dim inputs); checkpoints carrying the v1 hash still load as
// legacy-dim models (see LegacySchemaHash).
func SchemaHash(channels int, strategies []alloc.Strategy) string {
	return schemaHash("features/v2", features.Dim, channels, strategies)
}

// LegacySchemaHash reproduces the pre-health schema fingerprint: the v1
// format string over features.LegacyDim inputs, byte-for-byte what older
// binaries wrote into their envelopes. A checkpoint carrying this hash is
// accepted and served through the legacy input encoding
// (features.Vector.AppendLegacyInput), so models trained before the health
// features existed keep working on devices that never fault.
func LegacySchemaHash(channels int, strategies []alloc.Strategy) string {
	return schemaHash("features/v1", features.LegacyDim, channels, strategies)
}

func schemaHash(version string, dim, channels int, strategies []alloc.Strategy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s dim=%d levels=%d tenants=%d channels=%d strategies=",
		version, dim, features.Levels, features.MaxTenants, channels)
	for i, s := range strategies {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Name(channels))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// SaveCheckpoint writes net wrapped in the versioned envelope. channels and
// strategies describe the schema the model was trained against.
func SaveCheckpoint(w io.Writer, net *nn.Network, meta Meta, channels int, strategies []alloc.Strategy) error {
	return SaveCheckpointPrecision(w, net, meta, channels, strategies, nn.Float64)
}

// SaveCheckpointPrecision is SaveCheckpoint with an explicit deployment
// precision recorded in the envelope. The model weights are stored as
// trained (full float64, checksummed verbatim); the precision field declares
// which inference kernel consumers must deploy them with. Float64 writes the
// same bytes SaveCheckpoint always has, so the format stays compatible in
// both directions.
func SaveCheckpointPrecision(w io.Writer, net *nn.Network, meta Meta, channels int, strategies []alloc.Strategy, p nn.Precision) error {
	if err := checkGeometry(net, strategies); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		return err
	}
	model := bytes.TrimSpace(buf.Bytes())
	sum := sha256.Sum256(model)
	precision := ""
	if p != nn.Float64 {
		precision = p.String()
	}
	// A legacy-width model re-saved by this binary keeps the legacy hash, so
	// the envelope stays truthful about the encoding the weights expect.
	hash := SchemaHash(channels, strategies)
	if net.InputDim() == features.LegacyDim {
		hash = LegacySchemaHash(channels, strategies)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{
		FormatVersion: FormatVersion,
		SchemaHash:    hash,
		Checksum:      hex.EncodeToString(sum[:]),
		Precision:     precision,
		Meta:          meta,
		Model:         model,
	})
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint, verifying the
// format version, the feature-schema hash against the running binary's
// schema, the content checksum, and the network geometry. A pre-envelope
// bare model file (nn.Save output) is accepted with geometry validation
// only.
//
// LoadCheckpoint is the float-only entry point: a checkpoint that declares a
// non-float64 deployment precision is refused with a clear error, because
// running it through the float64 kernel would silently serve decisions the
// model was never validated for. Precision-aware consumers (the registry,
// ssdkeeperd, keeper-train -inspect) use LoadCheckpointPrecision.
func LoadCheckpoint(r io.Reader, channels int, strategies []alloc.Strategy) (*nn.Network, Meta, error) {
	net, meta, p, err := LoadCheckpointPrecision(r, channels, strategies)
	if err != nil {
		return nil, Meta{}, err
	}
	if p != nn.Float64 {
		return nil, Meta{}, fmt.Errorf(
			"policy: checkpoint declares %s deployment precision but this consumer only runs the float64 path: "+
				"load it through a precision-aware consumer (ssdkeeperd serves it quantized automatically) "+
				"or re-export the model without -quantize", p)
	}
	return net, meta, nil
}

// LoadCheckpointPrecision is LoadCheckpoint for precision-aware consumers:
// it additionally returns the deployment precision declared in the envelope
// (Float64 when the field is absent, including for every pre-precision and
// pre-envelope file).
func LoadCheckpointPrecision(r io.Reader, channels int, strategies []alloc.Strategy) (*nn.Network, Meta, nn.Precision, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, Meta{}, nn.Float64, fmt.Errorf("policy: read checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, Meta{}, nn.Float64, fmt.Errorf("policy: decode checkpoint: %w", err)
	}
	if env.FormatVersion == 0 && len(env.Layers) > 0 {
		// Pre-envelope bare model file.
		net, err := nn.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, Meta{}, nn.Float64, err
		}
		if err := checkGeometry(net, strategies); err != nil {
			return nil, Meta{}, nn.Float64, err
		}
		return net, Meta{Name: "legacy"}, nn.Float64, nil
	}
	if env.FormatVersion != FormatVersion {
		return nil, Meta{}, nn.Float64, fmt.Errorf("policy: checkpoint format version %d, this binary reads %d",
			env.FormatVersion, FormatVersion)
	}
	precision, err := nn.ParsePrecision(env.Precision)
	if err != nil {
		return nil, Meta{}, nn.Float64, fmt.Errorf("policy: checkpoint %w (written by a newer binary?)", err)
	}
	if want := SchemaHash(channels, strategies); env.SchemaHash != want {
		if env.SchemaHash != LegacySchemaHash(channels, strategies) {
			return nil, Meta{}, nn.Float64, fmt.Errorf(
				"policy: checkpoint feature-schema hash %s matches neither this binary's schema %s "+
					"(dim=%d, %d strategies over %d channels) nor the legacy pre-health schema: "+
					"retrain the model against the current schema",
				env.SchemaHash, want, features.Dim, len(strategies), channels)
		}
		// Legacy pre-health checkpoint: accepted; checkGeometry below
		// enforces the LegacyDim input width and the serving layer
		// encodes with AppendLegacyInput.
	}
	model := bytes.TrimSpace(env.Model)
	sum := sha256.Sum256(model)
	if got := hex.EncodeToString(sum[:]); got != env.Checksum {
		return nil, Meta{}, nn.Float64, fmt.Errorf("policy: checkpoint checksum mismatch: file says %s, content hashes to %s (corrupt or hand-edited model)",
			env.Checksum, got)
	}
	net, err := nn.Load(bytes.NewReader(model))
	if err != nil {
		return nil, Meta{}, nn.Float64, err
	}
	if err := checkGeometry(net, strategies); err != nil {
		return nil, Meta{}, nn.Float64, err
	}
	return net, env.Meta, precision, nil
}
