package policy

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
)

func testStrategies() []alloc.Strategy {
	return []alloc.Strategy{
		{Kind: alloc.Shared},
		{Kind: alloc.Isolated},
		{Kind: alloc.TwoGroup, WriteChannels: 6},
	}
}

const testChannels = 8

func testNet(t *testing.T, classes int, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP([]int{features.Dim, 8, classes}, nn.Logistic{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// pinnedVectors returns a deterministic spread of feature vectors.
func pinnedVectors(n int) []features.Vector {
	rng := rand.New(rand.NewSource(42))
	vs := make([]features.Vector, n)
	for i := range vs {
		v := features.Vector{Intensity: rng.Intn(features.Levels)}
		for t := 0; t < features.MaxTenants; t++ {
			v.ReadChar[t] = rng.Intn(2) == 1
			v.Prop[t] = rng.Float64()
		}
		vs[i] = v
	}
	return vs
}

// TestCheckpointRoundTripBitIdentical pins the satellite requirement:
// save → load → Forward on pinned inputs equals the original network
// bit for bit.
func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	meta := Meta{Name: "rt", Samples: 123, Iterations: 40, Loss: 0.5, Accuracy: 0.9}

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, meta, testChannels, strategies); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), testChannels, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	for i, v := range pinnedVectors(64) {
		x := v.Input()
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := append([]float64(nil), want...)
		got, err := loaded.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantCopy {
			if got[j] != wantCopy[j] {
				t.Fatalf("input %d logit %d: loaded %v != original %v (not bit-identical)",
					i, j, got[j], wantCopy[j])
			}
		}
	}
}

// TestLoadCheckpointRefusesSchemaMismatch: a checkpoint written against one
// strategy space must not load into a binary built for another.
func TestLoadCheckpointRefusesSchemaMismatch(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, Meta{}, testChannels, strategies); err != nil {
		t.Fatal(err)
	}

	// Same sizes, different composition: geometry check alone cannot catch it.
	other := []alloc.Strategy{
		{Kind: alloc.Shared},
		{Kind: alloc.Isolated},
		{Kind: alloc.TwoGroup, WriteChannels: 4},
	}
	_, _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), testChannels, other)
	if err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if !strings.Contains(err.Error(), "feature-schema hash") {
		t.Errorf("mismatch error %q does not name the schema hash", err)
	}

	// Different channel count also changes the schema.
	if _, _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), 16, strategies); err == nil {
		t.Fatal("channel-count mismatch accepted")
	}
}

func TestLoadCheckpointRefusesCorruption(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, Meta{}, testChannels, strategies); err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the embedded weights.
	corrupted := strings.Replace(buf.String(), `"version":1`, `"version": 1`, 1)
	if corrupted == buf.String() {
		t.Fatal("corruption did not apply")
	}
	_, _, err := LoadCheckpoint(strings.NewReader(corrupted), testChannels, strategies)
	if err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption error %q does not name the checksum", err)
	}
}

// TestLoadCheckpointLegacy: bare nn.Save output (pre-envelope) still loads.
func TestLoadCheckpointLegacy(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), testChannels, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != "legacy" {
		t.Errorf("legacy meta name %q", meta.Name)
	}
	if loaded.OutputDim() != len(strategies) {
		t.Errorf("legacy load output dim %d", loaded.OutputDim())
	}
	// A legacy file with the wrong geometry is still refused.
	wrong := testNet(t, len(strategies)+2, 7)
	buf.Reset()
	if err := wrong.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), testChannels, strategies); err == nil {
		t.Fatal("legacy geometry mismatch accepted")
	}
}

func TestANNPolicyMatchesNetworkPredict(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 11)
	pol, err := NewANN(net, strategies)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pinnedVectors(32) {
		wantIdx, err := net.Predict(v.Input())
		if err != nil {
			t.Fatal(err)
		}
		got, err := pol.Decide(v)
		if err != nil {
			t.Fatal(err)
		}
		if !alloc.Equal(got, strategies[wantIdx]) {
			t.Fatalf("input %d: policy chose %v, network argmax is class %d", i, got, wantIdx)
		}
	}
}

func TestStaticAndOracle(t *testing.T) {
	strategies := testStrategies()
	sp := StaticProvider{Strategy: strategies[1]}
	if sp.Version() != "static" {
		t.Errorf("static version %q", sp.Version())
	}
	got, err := sp.NewPolicy().Decide(features.Vector{})
	if err != nil || !alloc.Equal(got, strategies[1]) {
		t.Errorf("static decide = %v, %v", got, err)
	}

	// Oracle answers the label of the nearest sample.
	samples := []dataset.Sample{
		{Vector: features.Vector{Intensity: 2}, Label: 0},
		{Vector: features.Vector{Intensity: 18}, Label: 2},
	}
	oracle, err := NewOracle(samples, strategies)
	if err != nil {
		t.Fatal(err)
	}
	got, err = oracle.Decide(features.Vector{Intensity: 16})
	if err != nil || !alloc.Equal(got, strategies[2]) {
		t.Errorf("oracle near 18 = %v, %v; want %v", got, err, strategies[2])
	}
	got, err = oracle.Decide(features.Vector{Intensity: 4})
	if err != nil || !alloc.Equal(got, strategies[0]) {
		t.Errorf("oracle near 2 = %v, %v; want %v", got, err, strategies[0])
	}
	if _, err := NewOracle(nil, strategies); err == nil {
		t.Error("empty oracle accepted")
	}
	if _, err := NewOracle([]dataset.Sample{{Label: 9}}, strategies); err == nil {
		t.Error("out-of-space label accepted")
	}
}

func TestSourceSwapAndShadow(t *testing.T) {
	strategies := testStrategies()
	a := StaticProvider{Ver: "a", Strategy: strategies[0]}
	b := StaticProvider{Ver: "b", Strategy: strategies[1]}
	src, err := NewSource(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSource(nil); err == nil {
		t.Error("nil active accepted")
	}
	if got := src.Active().Version(); got != "a" {
		t.Errorf("active = %q", got)
	}
	if src.Shadow() != nil {
		t.Error("fresh source has a shadow")
	}
	prev, err := src.SetActive(b)
	if err != nil || prev.Version() != "a" {
		t.Errorf("SetActive returned %v, %v", prev, err)
	}
	if got := src.Active().Version(); got != "b" {
		t.Errorf("active after swap = %q", got)
	}
	if _, err := src.SetActive(nil); err == nil {
		t.Error("nil active swap accepted")
	}
	if prev := src.SetShadow(a); prev != nil {
		t.Errorf("first SetShadow returned %v", prev)
	}
	if got := src.Shadow().Version(); got != "a" {
		t.Errorf("shadow = %q", got)
	}
	if prev := src.SetShadow(nil); prev == nil || prev.Version() != "a" {
		t.Errorf("clearing shadow returned %v", prev)
	}
	if src.Shadow() != nil {
		t.Error("shadow not cleared")
	}
}

func TestRegistry(t *testing.T) {
	dir := t.TempDir()
	strategies := testStrategies()
	reg, err := NewRegistry(dir, testChannels, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Latest(); err == nil {
		t.Error("empty registry Latest succeeded")
	}
	for _, v := range []string{"v001", "v002", "v010"} {
		net := testNet(t, len(strategies), int64(len(v)))
		f, err := writeCheckpoint(dir, v, net, strategies)
		if err != nil {
			t.Fatalf("write %s: %v (%s)", v, err, f)
		}
	}
	versions, err := reg.Versions()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v001", "v002", "v010"}
	if len(versions) != len(want) {
		t.Fatalf("versions = %v", versions)
	}
	for i := range want {
		if versions[i] != want[i] {
			t.Fatalf("versions = %v, want %v", versions, want)
		}
	}
	latest, err := reg.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version() != "v010" {
		t.Errorf("latest = %q, want v010", latest.Version())
	}
	m, err := reg.Load("v001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewPolicy().Decide(features.Vector{Intensity: 10}); err != nil {
		t.Errorf("loaded policy decide: %v", err)
	}
	for _, bad := range []string{"", "../escape", "a/b", "x..y"} {
		if _, err := reg.Load(bad); err == nil {
			t.Errorf("version name %q accepted", bad)
		}
	}
	if _, err := NewRegistry(dir+"/missing", testChannels, strategies); err == nil {
		t.Error("missing dir accepted")
	}
}

func writeCheckpoint(dir, version string, net *nn.Network, strategies []alloc.Strategy) (string, error) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, Meta{Name: version}, testChannels, strategies); err != nil {
		return "", err
	}
	path := dir + "/" + version + ".json"
	return path, os.WriteFile(path, buf.Bytes(), 0o644)
}
