package policy

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/workload"
)

// Golden decision-parity fixtures: a committed dataset of labelled feature
// vectors (testdata/parity_samples.jsonl), a committed trained checkpoint
// (testdata/parity_model.json), and the decisions both serving kernels made
// on it when the fixtures were generated (testdata/parity_golden.json).
//
// TestInt8DecisionParityGolden replays both kernels over the committed
// artifacts and pins the outcome:
//
//   - every float64 decision must match the golden file exactly (checkpoint
//     loading is bit-identical, so any drift is a real inference change);
//   - every int8 decision must match the golden file exactly (the int8
//     quantization grid is deterministic);
//   - int8 must agree with float64 on at least minParityAgreement of the
//     vectors. Quantization moves logits by up to ~1% of their dynamic
//     range, which can flip an argmax only when the top two classes are
//     nearly tied — and near-ties are, by construction of the label
//     tolerance, decisions where either strategy performs equivalently.
//
// Regenerate with: UPDATE_PARITY_GOLDEN=1 go test ./internal/policy -run
// TestUpdateParityGolden (slow: it simulates the labelling sweep). The
// pinned float64 decisions assume the IEEE-754 evaluation order of the
// committed kernels; regenerate on the architecture CI runs if they drift.
const minParityAgreement = 0.95

const (
	paritySamplesPath = "testdata/parity_samples.jsonl"
	parityModelPath   = "testdata/parity_model.json"
	parityGoldenPath  = "testdata/parity_golden.json"
)

// parityGolden is the committed decision record.
type parityGolden struct {
	Agreement float64 `json:"agreement"`
	Float64   []int   `json:"float64"`
	Int8      []int   `json:"int8"`
}

// parityEnv mirrors the standard evaluation environment (experiments.NewEnv,
// which this package cannot import without a cycle): Table I device, default
// options and seasoning, the four-tenant strategy space, 16K saturation.
func parityEnv() dataset.Config {
	cfg := nand.EvalConfig()
	return dataset.Config{
		Device:     cfg,
		Options:    ssd.DefaultOptions(),
		Strategies: alloc.FourTenantSpace(cfg.Channels),
		Workloads:  96,
		Requests:   600,
		MaxIOPS:    16000,
		Season:     workload.DefaultSeasoning(),
		Seed:       1,
	}
}

// decideAll runs one kernel over every sample vector and returns the chosen
// class per sample.
func decideAll(t *testing.T, net *nn.Network, strategies []alloc.Strategy, samples []dataset.Sample, p nn.Precision) []int {
	t.Helper()
	m, err := NewModelPrecision("parity", net, strategies, p)
	if err != nil {
		t.Fatal(err)
	}
	pol := m.NewPolicy()
	out := make([]int, len(samples))
	for i, s := range samples {
		chosen, err := pol.Decide(s.Vector)
		if err != nil {
			t.Fatal(err)
		}
		idx := alloc.Index(strategies, chosen)
		if idx < 0 {
			t.Fatalf("decision %+v outside the strategy space", chosen)
		}
		out[i] = idx
	}
	return out
}

func agreementOf(a, b []int) float64 {
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// TestInt8DecisionParityGolden is the committed-parity gate; see the comment
// on minParityAgreement for what each assertion pins.
func TestInt8DecisionParityGolden(t *testing.T) {
	f, err := os.Open(paritySamplesPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_PARITY_GOLDEN=1)", err)
	}
	samples, err := dataset.LoadSamples(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	cfg := parityEnv()
	mf, err := os.Open(parityModelPath)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := LoadCheckpoint(mf, cfg.Device.Channels, cfg.Strategies)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(parityGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var golden parityGolden
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden.Float64) != len(samples) || len(golden.Int8) != len(samples) {
		t.Fatalf("golden has %d/%d decisions for %d samples",
			len(golden.Float64), len(golden.Int8), len(samples))
	}

	floatDec := decideAll(t, net, cfg.Strategies, samples, nn.Float64)
	int8Dec := decideAll(t, net, cfg.Strategies, samples, nn.Int8)
	for i := range samples {
		if floatDec[i] != golden.Float64[i] {
			t.Errorf("sample %d (%s): float64 decided %d, golden %d",
				i, samples[i].Vector, floatDec[i], golden.Float64[i])
		}
		if int8Dec[i] != golden.Int8[i] {
			t.Errorf("sample %d (%s): int8 decided %d, golden %d",
				i, samples[i].Vector, int8Dec[i], golden.Int8[i])
		}
	}
	agree := agreementOf(floatDec, int8Dec)
	if agree < minParityAgreement {
		t.Errorf("int8 agrees with float64 on %.1f%% of decisions, want >= %.0f%%",
			100*agree, 100*minParityAgreement)
	}
	if agree != golden.Agreement {
		t.Errorf("recomputed agreement %.4f != golden %.4f", agree, golden.Agreement)
	}
}

// TestUpdateParityGolden regenerates the committed fixtures. Guarded: the
// labelling sweep simulates every strategy for every workload.
func TestUpdateParityGolden(t *testing.T) {
	if os.Getenv("UPDATE_PARITY_GOLDEN") == "" {
		t.Skip("set UPDATE_PARITY_GOLDEN=1 to regenerate the parity fixtures")
	}
	cfg := parityEnv()
	samples, err := dataset.Generate(context.Background(), cfg, func(done, total int) {
		if done%16 == 0 {
			t.Logf("labelling %d/%d", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Train the fixture model. Determinism here is a convenience, not a
	// requirement: the trained weights are committed as a checkpoint, and
	// the golden decisions are derived from that artifact.
	net, err := nn.NewMLP([]int{features.Dim, 16, len(cfg.Strategies)}, nn.Logistic{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.ToNN(samples)
	ds.Shuffle(1)
	train, test := ds.Split(0.8)
	hist, err := nn.Train(net, train, test, nn.TrainConfig{
		Iterations: 80, BatchSize: 16, Optimizer: nn.NewAdam(0.02), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fixture model: loss %.3f, test accuracy %.1f%%", hist.FinalLoss, 100*hist.FinalAcc)

	if err := os.MkdirAll(filepath.Dir(paritySamplesPath), 0o755); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(paritySamplesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.Save(sf, samples); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Create(parityModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(mf, net, Meta{Name: "parity-fixture"}, cfg.Device.Channels, cfg.Strategies); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}

	floatDec := decideAll(t, net, cfg.Strategies, samples, nn.Float64)
	int8Dec := decideAll(t, net, cfg.Strategies, samples, nn.Int8)
	golden := parityGolden{
		Agreement: agreementOf(floatDec, int8Dec),
		Float64:   floatDec,
		Int8:      int8Dec,
	}
	raw, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(parityGoldenPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s, %s, %s (agreement %.1f%%)",
		paritySamplesPath, parityModelPath, parityGoldenPath, 100*golden.Agreement)
}
