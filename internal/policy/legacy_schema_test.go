package policy

import (
	"bytes"
	"strings"
	"testing"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
)

// legacyNet builds a network with the pre-health input width, standing in for
// a checkpoint trained before the feature schema grew the health dimensions.
func legacyNet(t *testing.T, classes int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP([]int{features.LegacyDim, 8, classes}, nn.Logistic{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestLegacyDimCheckpointRoundTrip pins the schema-bump compat contract: a
// legacy-width model saves under the v1 hash, loads back without error, and
// serves through the legacy input encoding — health features are dropped, so
// its decisions are independent of device health.
func TestLegacyDimCheckpointRoundTrip(t *testing.T) {
	strategies := testStrategies()
	net := legacyNet(t, len(strategies))

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, Meta{Name: "old"}, testChannels, strategies); err != nil {
		t.Fatal(err)
	}
	if want := LegacySchemaHash(testChannels, strategies); !strings.Contains(buf.String(), want) {
		t.Fatalf("legacy-width model did not save under the legacy hash %s", want)
	}
	loaded, meta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), testChannels, strategies)
	if err != nil {
		t.Fatalf("legacy-hash checkpoint refused: %v", err)
	}
	if meta.Name != "old" {
		t.Errorf("meta lost: %+v", meta)
	}
	if loaded.InputDim() != features.LegacyDim {
		t.Fatalf("loaded input dim %d", loaded.InputDim())
	}

	p, err := NewANN(loaded, strategies)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pinnedVectors(16) {
		healthy := v
		sick := v
		sick.DeadDieFrac, sick.RetryRate, sick.WearSpread = 0.5, 0.3, 0.9
		a, err := p.Decide(healthy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Decide(sick)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name(testChannels) != b.Name(testChannels) {
			t.Fatalf("legacy model saw health features: %s vs %s",
				a.Name(testChannels), b.Name(testChannels))
		}
		want, err := loaded.Predict(v.AppendLegacyInput(nil))
		if err != nil {
			t.Fatal(err)
		}
		if a.Name(testChannels) != strategies[want].Name(testChannels) {
			t.Fatalf("legacy encoding diverges from direct Predict")
		}
	}
}

// TestLegacyDimModelQuantizes: the int8 serving path accepts legacy-width
// models and batch decisions agree with the scalar path.
func TestLegacyDimModelQuantizes(t *testing.T) {
	strategies := testStrategies()
	net := legacyNet(t, len(strategies))
	m, err := NewModelPrecision("v1-legacy", net, strategies, nn.Int8)
	if err != nil {
		t.Fatal(err)
	}
	p := m.NewPolicy().(*ANNPolicy)
	vs := pinnedVectors(32)
	single := make([]string, len(vs))
	for i, v := range vs {
		s, err := p.Decide(v)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = s.Name(testChannels)
	}
	batchP := m.NewPolicy().(*ANNPolicy)
	out := make([]alloc.Strategy, len(vs))
	if err := batchP.DecideBatch(vs, out); err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if out[i].Name(testChannels) != single[i] {
			t.Fatalf("vector %d: batch %s vs scalar %s", i,
				out[i].Name(testChannels), single[i])
		}
	}
}

// TestWrongHashStillRefused: the legacy escape hatch only accepts the exact
// legacy hash; any other mismatch stays a loud error naming both hashes.
func TestWrongHashStillRefused(t *testing.T) {
	strategies := testStrategies()
	net := testNet(t, len(strategies), 7)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, Meta{}, testChannels, strategies); err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(buf.String(),
		SchemaHash(testChannels, strategies), "deadbeefdeadbeef", 1)
	_, _, err := LoadCheckpoint(strings.NewReader(doctored), testChannels, strategies)
	if err == nil {
		t.Fatal("doctored hash accepted")
	}
	if !strings.Contains(err.Error(), "legacy") {
		t.Errorf("error %q does not mention the legacy schema", err)
	}
}
