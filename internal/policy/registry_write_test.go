package policy

import (
	"os"
	"path/filepath"
	"testing"

	"ssdkeeper/internal/nn"
)

func writeVersion(t *testing.T, reg *Registry, version string, seed int64) {
	t.Helper()
	if err := reg.SaveCheckpoint(version, testNet(t, len(testStrategies()), seed), Meta{Name: version}, nn.Float64); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryNextVersion(t *testing.T) {
	reg, err := NewRegistry(t.TempDir(), testChannels, testStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := reg.NextVersion(); err != nil || v != "v001" {
		t.Fatalf("empty registry NextVersion = %q (%v), want v001", v, err)
	}
	writeVersion(t, reg, "v001", 1)
	writeVersion(t, reg, "v007", 2)
	// Non-numeric names count as versions but not for numbering.
	writeVersion(t, reg, "baseline", 3)
	if v, err := reg.NextVersion(); err != nil || v != "v008" {
		t.Fatalf("NextVersion = %q (%v), want v008 past the highest numeric", v, err)
	}
}

// TestRegistrySaveCheckpoint: a saved version loads back verified, refuses to
// be overwritten, and leaves no temp debris behind.
func TestRegistrySaveCheckpoint(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir, testChannels, testStrategies())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{Name: "online", Source: SourceOnline, Parent: "v001", Samples: 64}
	net := testNet(t, len(testStrategies()), 5)
	if err := reg.SaveCheckpoint("v002", net, meta, nn.Float64); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Load("v002")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Meta(); got.Source != SourceOnline || got.Parent != "v001" {
		t.Errorf("loaded provenance = %q/%q, want online/v001", got.Source, got.Parent)
	}
	if err := reg.SaveCheckpoint("v002", net, meta, nn.Float64); err == nil {
		t.Error("overwriting an existing version succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "v002.json" {
			t.Errorf("registry debris after save: %s", e.Name())
		}
	}
	if err := reg.SaveCheckpoint("../escape", net, meta, nn.Float64); err == nil {
		t.Error("path-escaping version name accepted")
	}
}

// TestRegistryGC: old checkpoints beyond the keep-count are deleted oldest
// first, protected versions survive regardless of age, and keep <= 0 is a
// no-op.
func TestRegistryGC(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir, testChannels, testStrategies())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		writeVersion(t, reg, []string{"", "v001", "v002", "v003", "v004", "v005", "v006"}[i], int64(i))
	}

	if deleted, err := reg.GC(0, "v001"); err != nil || deleted != nil {
		t.Fatalf("GC(0) = %v (%v), want no-op", deleted, err)
	}
	if deleted, err := reg.GC(10); err != nil || deleted != nil {
		t.Fatalf("GC over-capacity = %v (%v), want no-op", deleted, err)
	}

	// Keep 3 newest; v001 is protected (say, the active model), so only
	// v002 and v003 go.
	deleted, err := reg.GC(3, "v001")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 || deleted[0] != "v002" || deleted[1] != "v003" {
		t.Fatalf("GC deleted %v, want [v002 v003]", deleted)
	}
	left, err := reg.Versions()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v001", "v004", "v005", "v006"}
	if len(left) != len(want) {
		t.Fatalf("versions after GC = %v, want %v", left, want)
	}
	for i := range want {
		if left[i] != want[i] {
			t.Fatalf("versions after GC = %v, want %v", left, want)
		}
	}
	// The protected survivor still loads.
	if _, err := reg.Load("v001"); err != nil {
		t.Errorf("protected version unloadable after GC: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v002.json")); !os.IsNotExist(err) {
		t.Error("v002.json survived GC")
	}
}
