package policy

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/nn"
)

// Registry loads versioned model checkpoints from a directory. Every *.json
// file is one version, named by its base name without the extension
// (models/v003.json → version "v003"); Latest is the lexically greatest
// version, so zero-padded names sort naturally. The registry holds no cache
// and no lock — Load re-reads and re-verifies the file, and the returned
// *Model is immutable, so concurrent loads (e.g. a reload HTTP handler
// racing a SIGHUP) are safe.
type Registry struct {
	dir        string
	channels   int
	strategies []alloc.Strategy
}

// NewRegistry binds a checkpoint directory to the schema (channel count and
// strategy space) this binary serves.
func NewRegistry(dir string, channels int, strategies []alloc.Strategy) (*Registry, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("policy: model dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("policy: model dir %s is not a directory", dir)
	}
	return &Registry{dir: dir, channels: channels, strategies: strategies}, nil
}

// Dir returns the registry's directory.
func (r *Registry) Dir() string { return r.dir }

// Versions lists the available checkpoint versions in ascending order.
func (r *Registry) Versions() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("policy: list models: %w", err)
	}
	var versions []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		versions = append(versions, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(versions)
	return versions, nil
}

// Load reads, verifies, and wraps one version as a provider. The registry is
// precision-aware: a checkpoint that declares int8 deployment precision
// comes back as an int8-serving model, so quantized artifacts flow through
// -model-dir and /model/reload with no extra flags.
func (r *Registry) Load(version string) (*Model, error) {
	if err := checkVersionName(version); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(r.dir, version+".json"))
	if err != nil {
		return nil, fmt.Errorf("policy: version %q: %w", version, err)
	}
	defer f.Close()
	net, meta, precision, err := LoadCheckpointPrecision(f, r.channels, r.strategies)
	if err != nil {
		return nil, fmt.Errorf("policy: version %q: %w", version, err)
	}
	m, err := NewModelPrecision(version, net, r.strategies, precision)
	if err != nil {
		return nil, err
	}
	m.meta = meta
	return m, nil
}

// Latest loads the lexically greatest version.
func (r *Registry) Latest() (*Model, error) {
	versions, err := r.Versions()
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("policy: no *.json checkpoints in %s", r.dir)
	}
	return r.Load(versions[len(versions)-1])
}

// NextVersion returns the next free vNNN version name: one past the highest
// numeric vNNN already present ("v001" in an empty or non-numeric registry).
// Non-vNNN names (hand-placed checkpoints) are ignored for numbering but
// still count as versions everywhere else.
func (r *Registry) NextVersion() (string, error) {
	versions, err := r.Versions()
	if err != nil {
		return "", err
	}
	max := 0
	for _, v := range versions {
		if n, ok := versionNumber(v); ok && n > max {
			max = n
		}
	}
	return fmt.Sprintf("v%03d", max+1), nil
}

// versionNumber parses a vNNN version name.
func versionNumber(v string) (int, bool) {
	if len(v) < 2 || v[0] != 'v' {
		return 0, false
	}
	n, err := strconv.Atoi(v[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// SaveCheckpoint writes net as a new version, atomically: the envelope is
// written to a temp file in the registry directory and renamed into place,
// so a concurrent Load (the daemon's reload handler) never sees a partial
// file. The registry's own schema stamps the envelope.
func (r *Registry) SaveCheckpoint(version string, net *nn.Network, meta Meta, p nn.Precision) error {
	if err := checkVersionName(version); err != nil {
		return err
	}
	final := filepath.Join(r.dir, version+".json")
	if _, err := os.Stat(final); err == nil {
		return fmt.Errorf("policy: version %q already exists", version)
	}
	tmp, err := os.CreateTemp(r.dir, version+".tmp-*")
	if err != nil {
		return fmt.Errorf("policy: save %q: %w", version, err)
	}
	defer os.Remove(tmp.Name())
	if err := SaveCheckpointPrecision(tmp, net, meta, r.channels, r.strategies, p); err != nil {
		tmp.Close()
		return fmt.Errorf("policy: save %q: %w", version, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("policy: save %q: %w", version, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("policy: save %q: %w", version, err)
	}
	return nil
}

// GC deletes old checkpoints beyond the newest keep versions, never touching
// the protected ones (the caller passes the active and shadow versions, plus
// anything else it may roll back to). A long-running learner writes a new
// checkpoint every retrain; without GC the model dir grows unboundedly.
// Returns the versions deleted. keep <= 0 disables GC entirely.
func (r *Registry) GC(keep int, protect ...string) ([]string, error) {
	if keep <= 0 {
		return nil, nil
	}
	versions, err := r.Versions()
	if err != nil {
		return nil, err
	}
	if len(versions) <= keep {
		return nil, nil
	}
	protected := make(map[string]bool, len(protect))
	for _, p := range protect {
		protected[p] = true
	}
	var deleted []string
	for _, v := range versions[:len(versions)-keep] {
		if protected[v] {
			continue
		}
		if err := os.Remove(filepath.Join(r.dir, v+".json")); err != nil {
			return deleted, fmt.Errorf("policy: gc %q: %w", v, err)
		}
		deleted = append(deleted, v)
	}
	return deleted, nil
}

// checkVersionName rejects version strings that could escape the registry
// directory — versions arrive from HTTP query parameters.
func checkVersionName(version string) error {
	if version == "" {
		return fmt.Errorf("policy: empty version name")
	}
	for _, c := range version {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("policy: invalid version name %q (allowed: letters, digits, '.', '_', '-')", version)
		}
	}
	if strings.Contains(version, "..") {
		return fmt.Errorf("policy: invalid version name %q", version)
	}
	return nil
}
