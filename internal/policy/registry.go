package policy

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ssdkeeper/internal/alloc"
)

// Registry loads versioned model checkpoints from a directory. Every *.json
// file is one version, named by its base name without the extension
// (models/v003.json → version "v003"); Latest is the lexically greatest
// version, so zero-padded names sort naturally. The registry holds no cache
// and no lock — Load re-reads and re-verifies the file, and the returned
// *Model is immutable, so concurrent loads (e.g. a reload HTTP handler
// racing a SIGHUP) are safe.
type Registry struct {
	dir        string
	channels   int
	strategies []alloc.Strategy
}

// NewRegistry binds a checkpoint directory to the schema (channel count and
// strategy space) this binary serves.
func NewRegistry(dir string, channels int, strategies []alloc.Strategy) (*Registry, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("policy: model dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("policy: model dir %s is not a directory", dir)
	}
	return &Registry{dir: dir, channels: channels, strategies: strategies}, nil
}

// Dir returns the registry's directory.
func (r *Registry) Dir() string { return r.dir }

// Versions lists the available checkpoint versions in ascending order.
func (r *Registry) Versions() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("policy: list models: %w", err)
	}
	var versions []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		versions = append(versions, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(versions)
	return versions, nil
}

// Load reads, verifies, and wraps one version as a provider. The registry is
// precision-aware: a checkpoint that declares int8 deployment precision
// comes back as an int8-serving model, so quantized artifacts flow through
// -model-dir and /model/reload with no extra flags.
func (r *Registry) Load(version string) (*Model, error) {
	if err := checkVersionName(version); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(r.dir, version+".json"))
	if err != nil {
		return nil, fmt.Errorf("policy: version %q: %w", version, err)
	}
	defer f.Close()
	net, meta, precision, err := LoadCheckpointPrecision(f, r.channels, r.strategies)
	if err != nil {
		return nil, fmt.Errorf("policy: version %q: %w", version, err)
	}
	m, err := NewModelPrecision(version, net, r.strategies, precision)
	if err != nil {
		return nil, err
	}
	m.meta = meta
	return m, nil
}

// Latest loads the lexically greatest version.
func (r *Registry) Latest() (*Model, error) {
	versions, err := r.Versions()
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("policy: no *.json checkpoints in %s", r.dir)
	}
	return r.Load(versions[len(versions)-1])
}

// checkVersionName rejects version strings that could escape the registry
// directory — versions arrive from HTTP query parameters.
func checkVersionName(version string) error {
	if version == "" {
		return fmt.Errorf("policy: empty version name")
	}
	for _, c := range version {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("policy: invalid version name %q (allowed: letters, digits, '.', '_', '-')", version)
		}
	}
	if strings.Contains(version, "..") {
		return fmt.Errorf("policy: invalid version name %q", version)
	}
	return nil
}
