// Package policy is the decision layer of the keeper: it maps one observed
// feature vector to the channel-allocation strategy the device should switch
// to. The keeper, the serving shards and the experiment drivers all consume
// the Policy interface rather than a concrete network, so the brain can be a
// trained ANN, a fixed strategy, or a ground-truth oracle — and can be
// swapped at runtime.
//
// Two-level contract:
//
//	Provider  — a versioned, immutable policy artifact (a loaded checkpoint,
//	            a pinned strategy). Safe to share across goroutines.
//	Policy    — one consumer's instance, carrying private inference scratch.
//	            NOT safe for concurrent use; instantiate one per goroutine
//	            via Provider.NewPolicy.
//
// A Source publishes the current active (and optional shadow) provider
// atomically. Consumers that hold their own Policy instance compare the
// provider's version at each adaptation epoch and re-instantiate when it
// changed — which is exactly how the serving daemon hot-swaps a model across
// all shards at a drain-free epoch boundary.
package policy

import (
	"fmt"
	"math"
	"sync/atomic"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/dataset"
	"ssdkeeper/internal/features"
)

// Policy decides the channel-allocation strategy for one feature vector.
// Implementations may keep per-instance scratch: a Policy value is owned by
// a single consumer and is not safe for concurrent use.
type Policy interface {
	Decide(v features.Vector) (alloc.Strategy, error)
}

// BatchPolicy is implemented by policies that can decide for many feature
// vectors in one pass over their model (amortizing weight loads, loop
// control and bounds checks): the fleet-scale serving path where one host
// decides for every shard and epoch at once. Like Decide, DecideBatch is
// owned by a single consumer. Callers fall back to per-vector Decide when a
// policy does not implement it.
type BatchPolicy interface {
	Policy
	DecideBatch(vs []features.Vector, out []alloc.Strategy) error
}

// Provider is a versioned, immutable policy artifact. Version identifies the
// artifact (checkpoint file name, "static", ...); NewPolicy instantiates a
// fresh consumer-owned Policy over it. Providers are safe to share across
// goroutines.
type Provider interface {
	Version() string
	NewPolicy() Policy
}

// StaticPolicy always answers the same strategy. It is the no-keeper
// baseline and a useful shadow-evaluation control.
type StaticPolicy struct {
	Strategy alloc.Strategy
}

// Decide returns the pinned strategy.
func (p StaticPolicy) Decide(features.Vector) (alloc.Strategy, error) {
	return p.Strategy, nil
}

// DecideBatch fills out with the pinned strategy, keeping StaticPolicy
// usable wherever a BatchPolicy is preferred.
func (p StaticPolicy) DecideBatch(vs []features.Vector, out []alloc.Strategy) error {
	if len(out) != len(vs) {
		return fmt.Errorf("policy: %d strategy slots for %d vectors", len(out), len(vs))
	}
	for i := range out {
		out[i] = p.Strategy
	}
	return nil
}

// StaticProvider publishes a StaticPolicy under a version name.
type StaticProvider struct {
	Ver      string
	Strategy alloc.Strategy
}

// Version returns the provider's version name ("static" when unset).
func (p StaticProvider) Version() string {
	if p.Ver == "" {
		return "static"
	}
	return p.Ver
}

// NewPolicy returns the pinned-strategy policy (stateless, but a fresh value
// per consumer keeps the contract uniform).
func (p StaticProvider) NewPolicy() Policy {
	return StaticPolicy{Strategy: p.Strategy}
}

// OraclePolicy answers from labelled ground truth: the strategy measured
// best for the nearest labelled sample (L2 over the network input encoding).
// It is the upper bound the ANN is trained toward and a reference policy for
// shadow evaluation.
type OraclePolicy struct {
	inputs  [][]float64
	answers []alloc.Strategy
}

// NewOracle indexes labelled samples against a strategy space. Samples whose
// label falls outside the space are rejected.
func NewOracle(samples []dataset.Sample, strategies []alloc.Strategy) (*OraclePolicy, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("policy: oracle needs at least one labelled sample")
	}
	o := &OraclePolicy{
		inputs:  make([][]float64, 0, len(samples)),
		answers: make([]alloc.Strategy, 0, len(samples)),
	}
	for i, s := range samples {
		if s.Label < 0 || s.Label >= len(strategies) {
			return nil, fmt.Errorf("policy: sample %d label %d outside strategy space [0,%d)",
				i, s.Label, len(strategies))
		}
		o.inputs = append(o.inputs, s.Vector.Input())
		o.answers = append(o.answers, strategies[s.Label])
	}
	return o, nil
}

// Decide returns the measured-best strategy of the nearest labelled sample.
func (o *OraclePolicy) Decide(v features.Vector) (alloc.Strategy, error) {
	x := v.Input()
	best, bestDist := 0, math.Inf(1)
	for i, in := range o.inputs {
		d := 0.0
		for j, xv := range x {
			diff := xv - in[j]
			d += diff * diff
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return o.answers[best], nil
}

// OracleProvider publishes an OraclePolicy under a version name. The oracle
// itself is read-only after construction, so every consumer shares it.
type OracleProvider struct {
	Ver    string
	Oracle *OraclePolicy
}

// Version returns the provider's version name ("oracle" when unset).
func (p OracleProvider) Version() string {
	if p.Ver == "" {
		return "oracle"
	}
	return p.Ver
}

// NewPolicy returns the shared oracle (its Decide only reads).
func (p OracleProvider) NewPolicy() Policy { return p.Oracle }

// Source publishes the active and shadow providers to concurrent consumers.
// Swaps are atomic: a consumer sees either the old or the new provider,
// never a mix. The shadow slot holds a candidate under evaluation (nil when
// unset).
type Source struct {
	active atomic.Pointer[providerBox]
	shadow atomic.Pointer[providerBox]
}

// providerBox wraps the interface so the atomics can represent "unset" as a
// nil pointer distinct from a nil interface.
type providerBox struct{ p Provider }

// NewSource returns a source serving the given active provider.
func NewSource(active Provider) (*Source, error) {
	if active == nil {
		return nil, fmt.Errorf("policy: source needs a non-nil active provider")
	}
	s := &Source{}
	s.active.Store(&providerBox{p: active})
	return s, nil
}

// Active returns the current active provider (never nil).
func (s *Source) Active() Provider { return s.active.Load().p }

// SetActive atomically promotes p to active and returns the previous
// provider. Consumers pick the change up at their next adaptation epoch.
func (s *Source) SetActive(p Provider) (Provider, error) {
	if p == nil {
		return nil, fmt.Errorf("policy: cannot set a nil active provider")
	}
	return s.active.Swap(&providerBox{p: p}).p, nil
}

// Shadow returns the candidate under shadow evaluation, or nil.
func (s *Source) Shadow() Provider {
	b := s.shadow.Load()
	if b == nil {
		return nil
	}
	return b.p
}

// SetShadow atomically installs (or, with nil, clears) the shadow candidate
// and returns the previous one (nil when there was none).
func (s *Source) SetShadow(p Provider) Provider {
	var nb *providerBox
	if p != nil {
		nb = &providerBox{p: p}
	}
	prev := s.shadow.Swap(nb)
	if prev == nil {
		return nil
	}
	return prev.p
}
