// Package features implements SSDKeeper's features collector (Section IV.B):
// it observes the request stream over a time window and produces the
// 9-dimensional feature vector the strategy learner and channel allocator
// consume — the overall intensity level of the mixed workload (1-D), the
// read/write characteristic of each of the four workloads (4-D), and the
// request proportion of each workload (4-D).
package features

import (
	"fmt"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

// MaxTenants is the number of tenant slots in the paper's feature vector.
const MaxTenants = 4

// Levels is the number of intensity levels ("we divide it into twenty
// levels").
const Levels = 20

// LegacyDim is the paper's original feature-vector dimensionality: 1
// intensity + MaxTenants characteristics + MaxTenants proportions. Models
// checkpointed before the health tier use this input width and still load
// (see internal/policy's legacy schema acceptance).
const LegacyDim = 1 + 2*MaxTenants

// HealthDim is the number of device-health features appended to the vector:
// dead-die fraction, read-retry rate, and wear spread. All three are zero on
// a healthy device, so a faulted-trained model sees the legacy distribution
// when nothing is wrong.
const HealthDim = 3

// Dim is the feature-vector dimensionality (schema v2): the paper's
// workload features plus the device-health features.
const Dim = LegacyDim + HealthDim

// Vector is the collected feature vector in the paper's notation, e.g.
// [5][1,0,1,0][0.1,0.2,0.3,0.4], extended with device-health features
// (schema v2). The health fields' zero values mean a perfectly healthy
// device, so workload-only call sites need no changes.
type Vector struct {
	Intensity int                 // 0..Levels-1
	ReadChar  [MaxTenants]bool    // true = read-dominated (paper: 1 read, 0 write)
	Prop      [MaxTenants]float64 // request proportions; sums to 1

	// Device-health features (zero = healthy).
	DeadDieFrac float64 // fraction of dies dead, [0,1]
	RetryRate   float64 // reads needing retry per observed request, clamped to [0,1]
	WearSpread  float64 // erase-count spread / wear threshold, clamped to [0,1]
}

// String renders the paper's bracketed form.
func (v Vector) String() string {
	c := [MaxTenants]int{}
	for i, r := range v.ReadChar {
		if r {
			c[i] = 1
		}
	}
	return fmt.Sprintf("[%d] [%d,%d,%d,%d] [%.2f,%.2f,%.2f,%.2f]",
		v.Intensity, c[0], c[1], c[2], c[3], v.Prop[0], v.Prop[1], v.Prop[2], v.Prop[3])
}

// Input converts the vector to the network's Dim inputs. Intensity is
// normalized to [0,1]; characteristics are 0/1; proportions pass through;
// health features are already in [0,1].
func (v Vector) Input() []float64 {
	return v.AppendInput(make([]float64, 0, Dim))
}

// AppendInput appends the network's Dim inputs to dst and returns the
// extended slice — the allocation-free form of Input for serving hot paths
// that reuse an encoding buffer across decisions.
func (v Vector) AppendInput(dst []float64) []float64 {
	dst = v.AppendLegacyInput(dst)
	return append(dst, v.DeadDieFrac, v.RetryRate, v.WearSpread)
}

// AppendLegacyInput appends only the original LegacyDim workload inputs —
// the encoding for checkpoints trained before the feature schema grew the
// health dimensions.
func (v Vector) AppendLegacyInput(dst []float64) []float64 {
	dst = append(dst, float64(v.Intensity)/float64(Levels-1))
	for _, r := range v.ReadChar {
		if r {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return append(dst, v.Prop[:]...)
}

// Traits converts the observed characteristics into strategy-binding traits.
func (v Vector) Traits() []alloc.TenantTraits {
	out := make([]alloc.TenantTraits, MaxTenants)
	for i := range out {
		out[i] = alloc.TenantTraits{WriteDominated: !v.ReadChar[i]}
	}
	return out
}

// TotalWriteProportion returns the write fraction of the whole mix — the
// Y axis of the paper's Figure 6. It weights each tenant's write ratio by
// its proportion.
func (v Vector) TotalWriteProportion(writeRatio [MaxTenants]float64) float64 {
	total := 0.0
	for i := range writeRatio {
		total += v.Prop[i] * writeRatio[i]
	}
	return total
}

// Collector accumulates per-tenant request counts over a window.
// SaturationIOPS calibrates the intensity scale: a window whose aggregate
// request rate reaches SaturationIOPS (or more) is level Levels-1.
type Collector struct {
	SaturationIOPS float64

	start  sim.Time
	now    sim.Time
	reads  [MaxTenants]uint64
	writes [MaxTenants]uint64
	total  uint64
}

// NewCollector returns a collector with the window starting at start.
func NewCollector(saturationIOPS float64, start sim.Time) *Collector {
	return &Collector{SaturationIOPS: saturationIOPS, start: start, now: start}
}

// Observe records one request arrival. Tenants outside [0, MaxTenants) are
// counted toward the total intensity but not per-tenant features.
func (c *Collector) Observe(r trace.Record) {
	if r.Time > c.now {
		c.now = r.Time
	}
	c.total++
	if r.Tenant < 0 || r.Tenant >= MaxTenants {
		return
	}
	if r.Op == trace.Read {
		c.reads[r.Tenant]++
	} else {
		c.writes[r.Tenant]++
	}
}

// Count returns the number of requests observed in the current window.
func (c *Collector) Count() uint64 { return c.total }

// ClearTenant removes one tenant's contributions from the current window —
// used when a tenant migrates off a device mid-window, so the next epoch's
// vector does not adapt on a departed workload's features. Tenants outside
// the per-tenant slots contributed only to the total, which cannot be
// attributed back, so they are left alone.
func (c *Collector) ClearTenant(tenant int) {
	if tenant < 0 || tenant >= MaxTenants {
		return
	}
	c.total -= c.reads[tenant] + c.writes[tenant]
	c.reads[tenant] = 0
	c.writes[tenant] = 0
}

// Reset starts a new window at the given time.
func (c *Collector) Reset(at sim.Time) {
	*c = Collector{SaturationIOPS: c.SaturationIOPS, start: at, now: at}
}

// Vector computes the feature vector for the window observed so far, using
// now as the window end for the intensity rate.
func (c *Collector) Vector(now sim.Time) Vector {
	var v Vector
	span := now - c.start
	if span <= 0 {
		span = c.now - c.start
	}
	if span > 0 && c.SaturationIOPS > 0 {
		iops := float64(c.total) / (float64(span) / float64(sim.Second))
		level := int(float64(Levels) * iops / c.SaturationIOPS)
		if level >= Levels {
			level = Levels - 1
		}
		if level < 0 {
			level = 0
		}
		v.Intensity = level
	}
	var perTenant [MaxTenants]uint64
	var counted uint64
	for i := 0; i < MaxTenants; i++ {
		perTenant[i] = c.reads[i] + c.writes[i]
		counted += perTenant[i]
		// Paper encoding: 1 = read-dominated, 0 = write-dominated.
		v.ReadChar[i] = c.reads[i] >= c.writes[i]
	}
	if counted > 0 {
		for i := 0; i < MaxTenants; i++ {
			v.Prop[i] = float64(perTenant[i]) / float64(counted)
		}
	}
	return v
}

// FromSpecShares builds the exact feature vector implied by ground-truth mix
// parameters (used for dataset generation, where the generator knows the
// true shares and ratios rather than estimating them from a window).
func FromSpecShares(intensityLevel int, writeRatios, shares []float64) (Vector, error) {
	if len(writeRatios) != len(shares) || len(writeRatios) > MaxTenants {
		return Vector{}, fmt.Errorf("features: %d ratios vs %d shares (max %d tenants)",
			len(writeRatios), len(shares), MaxTenants)
	}
	if intensityLevel < 0 || intensityLevel >= Levels {
		return Vector{}, fmt.Errorf("features: intensity level %d outside [0,%d)", intensityLevel, Levels)
	}
	var v Vector
	v.Intensity = intensityLevel
	for i := range writeRatios {
		v.ReadChar[i] = writeRatios[i] < 0.5
		v.Prop[i] = shares[i]
	}
	return v, nil
}

// LevelOf quantizes an IOPS value onto the intensity scale.
func LevelOf(iops, saturationIOPS float64) int {
	if saturationIOPS <= 0 {
		return 0
	}
	level := int(float64(Levels) * iops / saturationIOPS)
	if level >= Levels {
		level = Levels - 1
	}
	if level < 0 {
		level = 0
	}
	return level
}
