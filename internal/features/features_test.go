package features

import (
	"math"
	"testing"
	"testing/quick"

	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

func TestVectorInputDimAndEncoding(t *testing.T) {
	v := Vector{
		Intensity:   5,
		ReadChar:    [MaxTenants]bool{true, false, true, false},
		Prop:        [MaxTenants]float64{0.1, 0.2, 0.3, 0.4},
		DeadDieFrac: 0.25, RetryRate: 0.5, WearSpread: 0.75,
	}
	in := v.Input()
	if len(in) != Dim || Dim != 12 || LegacyDim != 9 {
		t.Fatalf("input dim %d, want Dim=12 over LegacyDim=9", len(in))
	}
	if math.Abs(in[0]-5.0/19.0) > 1e-12 {
		t.Errorf("intensity normalized to %v", in[0])
	}
	want := []float64{1, 0, 1, 0}
	for i := 0; i < 4; i++ {
		if in[1+i] != want[i] {
			t.Errorf("characteristic %d = %v, want %v", i, in[1+i], want[i])
		}
	}
	for i := 0; i < 4; i++ {
		if in[5+i] != v.Prop[i] {
			t.Errorf("proportion %d = %v", i, in[5+i])
		}
	}
	if in[9] != 0.25 || in[10] != 0.5 || in[11] != 0.75 {
		t.Errorf("health features = %v, want [0.25 0.5 0.75]", in[9:])
	}
	legacy := v.AppendLegacyInput(nil)
	if len(legacy) != LegacyDim {
		t.Fatalf("legacy input dim %d, want %d", len(legacy), LegacyDim)
	}
	for i := range legacy {
		if legacy[i] != in[i] {
			t.Errorf("legacy input diverges at %d: %v vs %v", i, legacy[i], in[i])
		}
	}
}

func TestVectorStringMatchesPaperNotation(t *testing.T) {
	v := Vector{
		Intensity: 5,
		ReadChar:  [MaxTenants]bool{true, false, true, false},
		Prop:      [MaxTenants]float64{0.1, 0.2, 0.3, 0.4},
	}
	want := "[5] [1,0,1,0] [0.10,0.20,0.30,0.40]"
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCollectorComputesProportionsAndCharacteristics(t *testing.T) {
	c := NewCollector(10000, 0)
	// Tenant 0: 3 writes, 1 read (write-dominated, 4/10 of traffic).
	// Tenant 1: 6 reads (read-dominated, 6/10).
	at := sim.Time(0)
	add := func(tenant int, op trace.Op) {
		at += sim.Millisecond
		c.Observe(trace.Record{Time: at, Tenant: tenant, Op: op, Size: 1})
	}
	add(0, trace.Write)
	add(0, trace.Write)
	add(0, trace.Write)
	add(0, trace.Read)
	for i := 0; i < 6; i++ {
		add(1, trace.Read)
	}
	v := c.Vector(at)
	if v.ReadChar[0] {
		t.Error("tenant 0 should be write-dominated")
	}
	if !v.ReadChar[1] {
		t.Error("tenant 1 should be read-dominated")
	}
	if math.Abs(v.Prop[0]-0.4) > 1e-12 || math.Abs(v.Prop[1]-0.6) > 1e-12 {
		t.Errorf("proportions %v", v.Prop)
	}
	// 10 requests over 10ms = 1000 IOPS; level = 20*1000/10000 = 2.
	if v.Intensity != 2 {
		t.Errorf("intensity %d, want 2", v.Intensity)
	}
	if c.Count() != 10 {
		t.Errorf("count %d", c.Count())
	}
}

func TestCollectorIntensitySaturatesAtTopLevel(t *testing.T) {
	c := NewCollector(1000, 0)
	at := sim.Time(0)
	for i := 0; i < 100; i++ {
		at += sim.Microsecond // absurdly fast
		c.Observe(trace.Record{Time: at, Tenant: 0, Op: trace.Read, Size: 1})
	}
	if v := c.Vector(at); v.Intensity != Levels-1 {
		t.Errorf("intensity %d, want %d", v.Intensity, Levels-1)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(1000, 0)
	c.Observe(trace.Record{Time: 1, Tenant: 0, Op: trace.Write, Size: 1})
	c.Reset(10 * sim.Millisecond)
	if c.Count() != 0 {
		t.Error("reset did not clear counts")
	}
	v := c.Vector(20 * sim.Millisecond)
	if v.Prop[0] != 0 {
		t.Error("reset did not clear proportions")
	}
}

// TestClearTenantRemovesContribution pins the migration contract: clearing a
// tenant mid-window removes exactly its reads, writes, and intensity
// contribution, leaving the other tenants' features untouched — as if the
// departed workload had never arrived this window.
func TestClearTenantRemovesContribution(t *testing.T) {
	c := NewCollector(10000, 0)
	at := sim.Time(0)
	add := func(tenant int, op trace.Op) {
		at += sim.Millisecond
		c.Observe(trace.Record{Time: at, Tenant: tenant, Op: op, Size: 1})
	}
	// Tenant 0: 2 writes. Tenant 1: 4 reads, 1 write. Tenant 2: 3 reads.
	add(0, trace.Write)
	add(0, trace.Write)
	for i := 0; i < 4; i++ {
		add(1, trace.Read)
	}
	add(1, trace.Write)
	add(2, trace.Read)
	add(2, trace.Read)
	add(2, trace.Read)

	c.ClearTenant(1)
	if c.Count() != 5 {
		t.Errorf("count after clear = %d, want 5", c.Count())
	}
	v := c.Vector(at)
	if v.Prop[1] != 0 {
		t.Errorf("cleared tenant kept proportion %v", v.Prop[1])
	}
	if math.Abs(v.Prop[0]-0.4) > 1e-12 || math.Abs(v.Prop[2]-0.6) > 1e-12 {
		t.Errorf("survivor proportions %v, want 0.4/0.6 of the remaining 5", v.Prop)
	}
	if v.ReadChar[0] || !v.ReadChar[2] {
		t.Errorf("survivor characteristics changed: %v", v.ReadChar)
	}
	// A cleared (empty) tenant reads as read-dominated: reads >= writes at 0.
	if !v.ReadChar[1] {
		t.Errorf("cleared tenant characteristic = write-dominated, want empty default")
	}

	// Re-attached traffic restarts from zero: one write makes it
	// write-dominated with only the new arrivals counted.
	add(1, trace.Write)
	v = c.Vector(at)
	if v.ReadChar[1] {
		t.Error("tenant 1 still read-dominated after restart; old reads leaked")
	}
	if math.Abs(v.Prop[1]-1.0/6.0) > 1e-12 {
		t.Errorf("restarted tenant proportion %v, want 1/6", v.Prop[1])
	}

	// Out-of-range tenants are a no-op (their arrivals cannot be attributed).
	before := c.Count()
	c.ClearTenant(-1)
	c.ClearTenant(MaxTenants)
	if c.Count() != before {
		t.Error("out-of-range ClearTenant changed the window")
	}
}

func TestCollectorIgnoresOutOfRangeTenantForPerTenantStats(t *testing.T) {
	c := NewCollector(1000, 0)
	c.Observe(trace.Record{Time: sim.Millisecond, Tenant: 9, Op: trace.Read, Size: 1})
	if c.Count() != 1 {
		t.Error("out-of-range tenant should still count toward intensity")
	}
	v := c.Vector(sim.Second)
	for i := 0; i < MaxTenants; i++ {
		if v.Prop[i] != 0 {
			t.Error("out-of-range tenant leaked into proportions")
		}
	}
}

func TestFromSpecShares(t *testing.T) {
	v, err := FromSpecShares(7, []float64{0.9, 0.1}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if v.Intensity != 7 {
		t.Errorf("intensity %d", v.Intensity)
	}
	if v.ReadChar[0] || !v.ReadChar[1] {
		t.Errorf("characteristics %v", v.ReadChar)
	}
	if v.Prop[0] != 0.3 || v.Prop[1] != 0.7 {
		t.Errorf("props %v", v.Prop)
	}
	if _, err := FromSpecShares(25, []float64{1}, []float64{1}); err == nil {
		t.Error("level 25 accepted")
	}
	if _, err := FromSpecShares(1, []float64{1, 1}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FromSpecShares(1, make([]float64, 5), make([]float64, 5)); err == nil {
		t.Error("5 tenants accepted")
	}
}

func TestLevelOfBounds(t *testing.T) {
	if LevelOf(-5, 100) != 0 {
		t.Error("negative IOPS should be level 0")
	}
	if LevelOf(1e9, 100) != Levels-1 {
		t.Error("huge IOPS should clamp to top level")
	}
	if LevelOf(50, 0) != 0 {
		t.Error("zero saturation should be level 0")
	}
	if got := LevelOf(50, 100); got != 10 {
		t.Errorf("LevelOf(50,100) = %d, want 10", got)
	}
}

func TestLevelOfMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return LevelOf(x, 5000) <= LevelOf(y, 5000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalWriteProportion(t *testing.T) {
	v := Vector{Prop: [MaxTenants]float64{0.5, 0.5, 0, 0}}
	got := v.TotalWriteProportion([MaxTenants]float64{1, 0, 0, 0})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("total write proportion %v, want 0.5", got)
	}
}

func TestTraits(t *testing.T) {
	v := Vector{ReadChar: [MaxTenants]bool{true, false, true, false}}
	traits := v.Traits()
	if len(traits) != MaxTenants {
		t.Fatalf("traits len %d", len(traits))
	}
	for i := range traits {
		if traits[i].WriteDominated == v.ReadChar[i] {
			t.Errorf("trait %d inverted", i)
		}
	}
}
