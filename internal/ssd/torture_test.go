package ssd

import (
	"testing"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

// Torture tests: pathological but legal inputs must neither crash nor lose
// requests.

func TestTortureAllRequestsSamePage(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	var tr trace.Trace
	for i := 0; i < 500; i++ {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		tr = append(tr, trace.Record{
			Time: sim.Time(i) * 10 * sim.Microsecond, Tenant: 0,
			Op: op, Offset: 0, Size: cfg.PageSize,
		})
	}
	res := run(t, d, tr)
	if got := res.Device.Read.Count + res.Device.Write.Count; got != 500 {
		t.Errorf("completed %d of 500", got)
	}
	// Constant overwrites of one LPN invalidate aggressively.
	if res.FTL.Invalidations == 0 {
		t.Error("no invalidations under constant overwrite")
	}
}

func TestTortureSimultaneousBurst(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	var tr trace.Trace
	for i := 0; i < 300; i++ {
		tr = append(tr, trace.Record{
			Time: 0, Tenant: i % 3, Op: trace.Write,
			Offset: int64(i) * int64(cfg.PageSize), Size: cfg.PageSize,
		})
	}
	res := run(t, d, tr)
	if res.Device.Write.Count != 300 {
		t.Errorf("completed %d of 300", res.Device.Write.Count)
	}
	if res.Conflicts == 0 {
		t.Error("a 300-request burst produced no conflicts")
	}
}

func TestTortureHugeRequests(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	// 256-page (4MB) requests fan out across every channel repeatedly.
	tr := trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: 256 * cfg.PageSize},
		{Time: sim.Millisecond, Tenant: 0, Op: trace.Read, Offset: 0, Size: 256 * cfg.PageSize},
	}
	res := run(t, d, tr)
	if res.FTL.Writes != 256 {
		t.Errorf("wrote %d pages, want 256", res.FTL.Writes)
	}
	if res.Device.Read.Count != 1 || res.Device.Write.Count != 1 {
		t.Error("requests lost")
	}
}

func TestTortureManyTenants(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	var tr trace.Trace
	for i := 0; i < 64; i++ {
		tr = append(tr, trace.Record{
			Time: sim.Time(i) * sim.Microsecond, Tenant: i, // 64 distinct tenants
			Op: trace.Write, Offset: 0, Size: cfg.PageSize,
		})
	}
	res := run(t, d, tr)
	if len(res.PerTenant) != 64 {
		t.Errorf("tracked %d tenants, want 64", len(res.PerTenant))
	}
}

func TestTortureUnalignedExtents(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	ps := int64(cfg.PageSize)
	tr := trace.Trace{
		// Crosses a page boundary by one byte: two pages.
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: ps - 1, Size: 2},
		// Starts and ends mid-page: one page.
		{Time: sim.Microsecond, Tenant: 0, Op: trace.Read, Offset: ps + 100, Size: 10},
		// Exactly one page, unaligned start: two pages.
		{Time: 2 * sim.Microsecond, Tenant: 0, Op: trace.Write, Offset: ps / 2, Size: cfg.PageSize},
	}
	res := run(t, d, tr)
	if res.FTL.Writes != 2+2 {
		t.Errorf("page writes = %d, want 4 (2 + 2 for the unaligned extents)", res.FTL.Writes)
	}
}

func TestTortureZeroTimeTraceWithQueueBound(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, Options{MaxOutstanding: 1})
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, trace.Record{
			Time: 0, Tenant: 0, Op: trace.Write,
			Offset: int64(i) * int64(cfg.PageSize), Size: cfg.PageSize,
		})
	}
	res := run(t, d, tr)
	if res.Device.Write.Count != 100 {
		t.Errorf("completed %d of 100 under queue depth 1", res.Device.Write.Count)
	}
	// Fully serialized: the makespan must cover 100 writes.
	if res.Makespan < 100*(cfg.XferLatency+cfg.WriteLatency) {
		t.Errorf("makespan %v too small for 100 serialized writes", res.Makespan)
	}
}

func TestTortureDeterministicUnderStress(t *testing.T) {
	cfg := nand.EvalConfig()
	p := trace.Profile{
		Name: "stress", WriteRatio: 0.7, Count: 3000, IOPS: 50000, // far beyond saturation
		Address: 32 << 20, SeqProb: 0.5, MinPages: 1, MaxPages: 8,
		PageSize: cfg.PageSize, Burstiness: 1.0, Seed: 99,
	}
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() Result {
		d := mustDevice(t, cfg, DefaultOptions())
		if err := d.FTL().Season(0.5, 5, 1); err != nil {
			t.Fatal(err)
		}
		return run(t, d, tr)
	}
	a, b := runOnce(), runOnce()
	if a.Device.Write.Sum != b.Device.Write.Sum || a.Makespan != b.Makespan {
		t.Error("overloaded simulation not deterministic")
	}
	if a.FTL.GCRuns == 0 {
		t.Error("stress run did not exercise GC")
	}
}
