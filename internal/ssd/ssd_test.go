package ssd

import (
	"math"
	"testing"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

func testConfig() nand.Config {
	return nand.TinyConfig() // Table I timing, shrunk capacity
}

func mustDevice(t *testing.T, cfg nand.Config, opts Options) *Device {
	t.Helper()
	d, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t *testing.T, d *Device, tr trace.Trace) Result {
	t.Helper()
	res, err := d.Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSinglePageReadLatency(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Read, Offset: 0, Size: cfg.PageSize},
	})
	// Uncontended read: tR + tXfer = 20us + 40us.
	want := (cfg.ReadLatency + cfg.XferLatency).Micros()
	if got := res.Device.Read.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("read latency %vus, want %vus", got, want)
	}
}

func TestSinglePageWriteLatency(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
	})
	// Uncontended write: tXfer + tPROG = 40us + 200us.
	want := (cfg.XferLatency + cfg.WriteLatency).Micros()
	if got := res.Device.Write.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("write latency %vus, want %vus", got, want)
	}
}

func TestMultiPageRequestWaitsForSlowestPage(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	// 4 pages striped statically over 4 distinct channels: the die times
	// overlap, but each page still pays its own transfer; the request
	// ends when the last page lands.
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: 4 * cfg.PageSize},
	})
	perPage := (cfg.XferLatency + cfg.WriteLatency).Micros()
	got := res.Device.Write.Mean()
	if got < perPage {
		t.Errorf("4-page write %vus faster than a single page %vus", got, perPage)
	}
	// On distinct channels the pages proceed in parallel; the total must
	// be far below 4x serial.
	if got >= 4*perPage {
		t.Errorf("4-page write %vus shows no parallelism (serial would be %vus)", got, 4*perPage)
	}
}

func TestPartialPageRoundsUp(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	// 1 byte crossing nothing: still one page.
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Read, Offset: 100, Size: 1},
	})
	if res.Device.Read.Count != 1 {
		t.Fatal("request lost")
	}
	want := (cfg.ReadLatency + cfg.XferLatency).Micros()
	if got := res.Device.Read.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("sub-page read %vus, want one-page %vus", got, want)
	}
}

func TestSameDieWritesConflict(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	// Two writes to the same LPN region land on the same channel; issue
	// them simultaneously. LPN 0 and LPN 8*2*4=64 map to channel 0 again
	// under static striping (8 channels * 2 dies * 4 planes).
	stride := int64(cfg.Channels * cfg.DiesPerChannel() * cfg.PlanesPerDie)
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: stride * int64(cfg.PageSize), Size: cfg.PageSize},
	})
	if res.Conflicts == 0 {
		t.Error("simultaneous same-die writes produced no conflicts")
	}
	// Second write queues behind the first transfer at least.
	if res.Device.Write.Max <= cfg.XferLatency+cfg.WriteLatency {
		t.Errorf("max write latency %v shows no queueing", res.Device.Write.Max)
	}
}

func TestDisjointChannelsDoNotConflict(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	// Tenant 0 on channel 0, tenant 1 on channel 1: simultaneous writes
	// proceed fully in parallel.
	if err := d.FTL().SetTenantChannels(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := d.FTL().SetTenantChannels(1, []int{1}); err != nil {
		t.Fatal(err)
	}
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
		{Time: 0, Tenant: 1, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
	})
	if res.Conflicts != 0 {
		t.Errorf("isolated tenants conflicted %d times", res.Conflicts)
	}
	want := (cfg.XferLatency + cfg.WriteLatency).Micros()
	for tenant := 0; tenant < 2; tenant++ {
		if got := res.PerTenant[tenant].Write.Mean(); math.Abs(got-want) > 1e-9 {
			t.Errorf("tenant %d write %vus, want uncontended %vus", tenant, got, want)
		}
	}
}

func TestSharedChannelTenantsInterfere(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	for tenant := 0; tenant < 2; tenant++ {
		if err := d.FTL().SetTenantChannels(tenant, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	res := run(t, d, trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
		{Time: 0, Tenant: 1, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
	})
	if res.Conflicts == 0 {
		t.Error("same-channel tenants did not conflict")
	}
}

func TestReadPriorityJumpsWriteQueue(t *testing.T) {
	cfg := testConfig()

	latencies := func(readPriority bool) (readUs float64) {
		d := mustDevice(t, cfg, Options{ReadPriority: readPriority})
		// Pre-write the page the read will fetch so it has a mapping
		// on channel 0, then saturate channel 0's bus with writes and
		// issue the read last.
		tr := trace.Trace{
			{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
		}
		at := sim.Time(400 * sim.Microsecond)
		stride := int64(cfg.Channels*cfg.DiesPerChannel()*cfg.PlanesPerDie) * int64(cfg.PageSize)
		for i := 1; i <= 6; i++ {
			tr = append(tr, trace.Record{
				Time: at, Tenant: 0, Op: trace.Write,
				Offset: int64(i) * stride, Size: cfg.PageSize,
			})
		}
		tr = append(tr, trace.Record{
			Time: at + 1, Tenant: 0, Op: trace.Read, Offset: 0, Size: cfg.PageSize,
		})
		res := run(t, d, tr)
		return res.Device.Read.Mean()
	}

	withPrio := latencies(true)
	withoutPrio := latencies(false)
	if withPrio >= withoutPrio {
		t.Errorf("read priority did not help: %vus with vs %vus without", withPrio, withoutPrio)
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	d := mustDevice(t, testConfig(), DefaultOptions())
	bad := trace.Trace{{Time: 10, Size: 1}, {Time: 0, Size: 1}}
	if _, err := d.Run(bad, nil); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

func TestSubmitRejectsZeroPages(t *testing.T) {
	d := mustDevice(t, testConfig(), DefaultOptions())
	err := d.Submit(trace.Record{Op: trace.Read, Offset: 0, Size: 0}, nil)
	if err == nil {
		t.Error("zero-size request accepted")
	}
}

func TestOnArrivalHookSeesEveryRecordInOrder(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	tr := trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: cfg.PageSize},
		{Time: 100, Tenant: 1, Op: trace.Read, Offset: 0, Size: cfg.PageSize},
		{Time: 300, Tenant: 2, Op: trace.Read, Offset: 0, Size: cfg.PageSize},
	}
	var seen []int
	_, err := d.Run(tr, func(i int, r trace.Record) {
		seen = append(seen, i)
		if d.Engine().Now() != r.Time {
			t.Errorf("hook for record %d at %v, want %v", i, d.Engine().Now(), r.Time)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Errorf("hook order %v", seen)
	}
}

func TestResultAccounting(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	tr := trace.Trace{
		{Time: 0, Tenant: 0, Op: trace.Write, Offset: 0, Size: 2 * cfg.PageSize},
		{Time: 50 * sim.Microsecond, Tenant: 1, Op: trace.Read, Offset: 1 << 20, Size: cfg.PageSize},
	}
	res := run(t, d, tr)
	if res.Requests != 2 {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Device.Write.Count != 1 || res.Device.Read.Count != 1 {
		t.Errorf("op counts wrong: %+v", res.Device)
	}
	if len(res.BusStats) != cfg.Channels || len(res.DieStats) != cfg.TotalDies() {
		t.Error("resource stats missing")
	}
	if res.FTL.Writes != 2 {
		t.Errorf("ftl writes = %d, want 2 pages", res.FTL.Writes)
	}
	if res.FTL.Preloads != 1 {
		t.Errorf("ftl preloads = %d, want 1 (read of unwritten page)", res.FTL.Preloads)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestGCChargeDelaysForegroundOps(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	cfg.PlanesPerDie = 1
	cfg.BlocksPerPlane = 8
	cfg.PagesPerBlock = 4
	cfg.GCThreshold = 0.15
	d := mustDevice(t, cfg, DefaultOptions())
	// Hammer overwrites of a small working set to force GC, then check
	// that max write latency shows the GC stall (erase is 1.5ms).
	var tr trace.Trace
	at := sim.Time(0)
	for round := 0; round < 20; round++ {
		for lpn := int64(0); lpn < 8; lpn++ {
			tr = append(tr, trace.Record{
				Time: at, Tenant: 0, Op: trace.Write,
				Offset: lpn * int64(cfg.PageSize), Size: cfg.PageSize,
			})
			at += 300 * sim.Microsecond // just above per-write service time
		}
	}
	res := run(t, d, tr)
	if res.FTL.GCRuns == 0 {
		t.Fatal("workload did not trigger GC")
	}
	if res.Device.Write.Max < cfg.EraseLatency {
		t.Errorf("max write latency %v never absorbed an erase (%v)",
			res.Device.Write.Max, cfg.EraseLatency)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := testConfig()
	p := trace.Profile{
		Name: "d", WriteRatio: 0.5, Count: 500, IOPS: 20000,
		Address: 1 << 28, SeqProb: 0.2, MinPages: 1, MaxPages: 4,
		PageSize: cfg.PageSize, Seed: 3,
	}
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	r1 := run(t, mustDevice(t, cfg, DefaultOptions()), tr)
	r2 := run(t, mustDevice(t, cfg, DefaultOptions()), tr)
	if r1.Device.Read.Sum != r2.Device.Read.Sum || r1.Device.Write.Sum != r2.Device.Write.Sum {
		t.Error("identical runs produced different latencies")
	}
	if r1.Makespan != r2.Makespan {
		t.Error("identical runs produced different makespans")
	}
}

func TestNoCacheRegisterSerializesDieOps(t *testing.T) {
	cfg := testConfig()
	// Two reads of the same die back to back: with the cache register
	// the second sensing overlaps the first transfer; without it the die
	// serializes sensing+transfer.
	runPair := func(opts Options) sim.Time {
		d := mustDevice(t, cfg, opts)
		if err := d.FTL().SetTenantChannels(0, []int{0}); err != nil {
			t.Fatal(err)
		}
		res := run(t, d, trace.Trace{
			{Time: 0, Tenant: 0, Op: trace.Read, Offset: 0, Size: cfg.PageSize},
			{Time: 0, Tenant: 0, Op: trace.Read, Offset: 0, Size: cfg.PageSize},
		})
		return res.Device.Read.Max
	}
	withReg := runPair(Options{})
	withoutReg := runPair(Options{NoCacheRegister: true})
	if withoutReg <= withReg {
		t.Errorf("removing the cache register did not slow same-die reads: %v vs %v",
			withoutReg, withReg)
	}
}

func TestMaxOutstandingBoundsInFlight(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, Options{MaxOutstanding: 2})
	// 6 simultaneous writes to distinct channels: unbounded, all proceed
	// in parallel; bounded at 2, they run in waves.
	var tr trace.Trace
	for i := 0; i < 6; i++ {
		tr = append(tr, trace.Record{
			Time: 0, Tenant: 0, Op: trace.Write,
			Offset: int64(i) * int64(cfg.PageSize), Size: cfg.PageSize,
		})
	}
	bounded := run(t, d, tr)
	unbounded := run(t, mustDevice(t, cfg, DefaultOptions()), tr)
	// Bounded: 3 waves of 240us -> max latency about 720us including
	// host wait; unbounded: all about 240us.
	if bounded.Device.Write.Max <= unbounded.Device.Write.Max {
		t.Errorf("queue depth bound did not extend tail latency: %v vs %v",
			bounded.Device.Write.Max, unbounded.Device.Write.Max)
	}
	want := 3 * (cfg.XferLatency + cfg.WriteLatency)
	if bounded.Device.Write.Max != want {
		t.Errorf("bounded max latency %v, want %v (3 waves incl. host wait)",
			bounded.Device.Write.Max, want)
	}
	if bounded.Device.Write.Count != 6 {
		t.Errorf("lost requests: %d of 6", bounded.Device.Write.Count)
	}
}

func TestSubmitAtRejectsFutureArrival(t *testing.T) {
	cfg := testConfig()
	d := mustDevice(t, cfg, DefaultOptions())
	err := d.SubmitAt(trace.Record{Op: trace.Read, Size: 1}, 100, nil)
	if err == nil {
		t.Error("future arrival accepted")
	}
}
