// Package ssd models a multi-channel SSD: per-channel buses, per-die flash
// arrays, read-priority arbitration, page-level request fan-out, and the
// access-conflict behaviour the paper optimizes. It drives the discrete-
// event engine with a block-level trace and produces per-tenant latency
// statistics.
//
// Timing model (per page):
//
//	read:  die busy tR  -> channel bus busy tXfer
//	write: channel bus busy tXfer -> die busy tPROG
//	GC:    die busy moved*(tR+tPROG) + tBERS (copyback, no bus traffic)
//
// A request completes when its last page completes; its response latency is
// completion time minus arrival time. Access conflicts are the waits
// operations experience on busy buses and dies; the resource snapshots
// report them directly.
package ssd

import (
	"context"
	"fmt"

	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
)

// Operation priorities on shared resources: reads preempt queued writes
// (they do not abort in-flight ones), and GC runs at background priority.
const (
	prioRead  = 0
	prioWrite = 1
	prioGC    = 2
)

// Options tune device behaviour.
type Options struct {
	// ReadPriority makes buses and dies serve queued reads before queued
	// writes. SSDSim — and therefore the paper's evaluation — arbitrates
	// FIFO (the paper's "reads have priority to respond" refers to their
	// shorter service time, not a scheduler), so the default is false.
	// The ablation benchmark flips it to show that strict read priority
	// collapses the benefit of channel isolation: once reads can no
	// longer be delayed by queued writes, Shared dominates everywhere.
	ReadPriority bool
	// NoCacheRegister removes the per-plane cache register of Figure 1.
	// With the register (default), a die is free as soon as its array
	// operation ends — the register holds the data while the channel
	// streams it, so array time and bus transfer pipeline. Without it
	// the die stays reserved through the transfer window as well
	// (approximated as an extended die hold), serializing back-to-back
	// operations on the same die.
	NoCacheRegister bool
	// MaxOutstanding bounds the number of requests in flight inside the
	// device during Run, modelling host queue depth (NCQ): arrivals
	// beyond the bound wait in a host-side FIFO and their response
	// latency includes that wait. Zero leaves the queue unbounded (the
	// SSDSim default, and the paper's setup).
	MaxOutstanding int
	// CMTEntries bounds the FTL's cached mapping table (DFTL-style):
	// page accesses whose translation entry is not cached pay one
	// translation-page read on the die before the operation. Zero
	// models unlimited mapping SRAM (the SSDSim default).
	CMTEntries int
	// FaultPlan schedules deterministic health events — die failures,
	// block retirements, read-retry tails, wear-dependent program
	// slowdown — onto the device's engine. nil (the default) keeps the
	// device immortal and the data path byte-identical to a build without
	// fault support. A pointer keeps Options comparable, which the run
	// loops' device cache relies on: the same plan pointer means the same
	// session behaviour, and Reset re-arms the plan from scratch.
	FaultPlan *nand.FaultPlan
}

// DefaultOptions returns the paper's configuration: FIFO arbitration.
func DefaultOptions() Options { return Options{ReadPriority: false} }

// Device is one simulated SSD.
type Device struct {
	cfg   nand.Config
	opts  Options
	eng   *sim.Engine
	ftl   *ftl.FTL
	probe sim.Probe

	buses []*sim.Resource // one per channel
	dies  []*sim.Resource // flat die index

	health *nand.Health // nil unless Options.FaultPlan is set

	col      *stats.Collector
	inFlight int

	// Free lists for the per-request and per-page operation records the
	// replay hot path fans out into. The engine is single-goroutine, so
	// plain slices beat sync.Pool here (no atomics, no per-P caches).
	reqFree []*request
	opFree  []*pageOp
}

// New builds a device (and its FTL) over a geometry, on a fresh engine with
// no instrumentation. Production call sites construct devices through
// internal/simrun, which reuses engines and attaches probes via NewOn; New
// remains for layer-internal tests.
func New(cfg nand.Config, opts Options) (*Device, error) {
	return NewOn(nil, nil, cfg, opts)
}

// NewOn builds a device (and its FTL) over a geometry on the given engine,
// with every layer — engine, channel buses, dies, FTL — instrumented with
// probe. A nil engine means a fresh one; a nil probe means no-op
// instrumentation. The engine must be at time zero with no pending events
// (freshly created or Reset).
func NewOn(eng *sim.Engine, probe sim.Probe, cfg nand.Config, opts Options) (*Device, error) {
	return NewOnCollector(eng, probe, nil, cfg, opts)
}

// NewOnCollector is NewOn with a caller-owned latency collector, so run
// loops (internal/simrun) can reuse one collector's accumulators across
// many sessions. The collector must be fresh or Reset; nil means a private
// one.
func NewOnCollector(eng *sim.Engine, probe sim.Probe, col *stats.Collector, cfg nand.Config, opts Options) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = sim.NewEngine()
	}
	if col == nil {
		col = stats.NewCollector()
	}
	eng.SetProbe(probe)
	d := &Device{
		cfg:  cfg,
		opts: opts,
		eng:  eng,
		col:  col,
	}
	d.probe = probe
	if d.probe == nil {
		d.probe = sim.NopProbe{}
	}
	f, err := ftl.New(cfg, d)
	if err != nil {
		return nil, err
	}
	f.SetProbe(probe)
	d.ftl = f
	d.buses = make([]*sim.Resource, cfg.Channels)
	for i := range d.buses {
		d.buses[i] = sim.NewResource(eng, fmt.Sprintf("ch%d", i))
		d.buses[i].Instrument(probe, sim.KindBus, i)
	}
	d.dies = make([]*sim.Resource, cfg.TotalDies())
	for i := range d.dies {
		d.dies[i] = sim.NewResource(eng, fmt.Sprintf("die%d", i))
		d.dies[i].Instrument(probe, sim.KindDie, i)
	}
	if opts.CMTEntries > 0 {
		d.ftl.EnableCMT(opts.CMTEntries)
	}
	if opts.FaultPlan != nil {
		if err := opts.FaultPlan.Validate(cfg); err != nil {
			return nil, err
		}
		d.health = nand.NewHealth(cfg, opts.FaultPlan)
		d.ftl.SetHealth(d.health)
		d.armFaults()
	}
	return d, nil
}

// armFaults schedules every fault-plan event onto the engine. Called at
// construction and again from Reset — both run against an engine at time
// zero with the plan not yet fired, so a reused device replays its faults
// bit-identically.
func (d *Device) armFaults() {
	for _, ev := range d.opts.FaultPlan.Events {
		ev := ev
		d.eng.Schedule(ev.At, func() { d.applyFault(ev) })
	}
}

// applyFault executes one health event at its scheduled instant.
func (d *Device) applyFault(ev nand.FaultEvent) {
	switch ev.Kind {
	case nand.FaultDieFail:
		die := ev.Channel*d.cfg.DiesPerChannel() + ev.Die
		_, perDie := d.ftl.FailDie(die)
		// The rebuild storm occupies the destination dies at background
		// priority, so foreground traffic queues behind it — the latency
		// spike the trajectory experiment measures.
		for i, t := range perDie {
			if t > 0 {
				d.dies[i].Use(prioGC, t, nil)
			}
		}
	case nand.FaultRetireBlock:
		dpc, ppd := d.cfg.DiesPerChannel(), d.cfg.PlanesPerDie
		for dd := 0; dd < dpc; dd++ {
			die := ev.Channel*dpc + dd
			if d.health.DieDead(die) {
				continue
			}
			for pl := 0; pl < ppd; pl++ {
				if _, t := d.ftl.RetireBlock(die*ppd+pl, ev.Block); t > 0 {
					d.dies[die].Use(prioGC, t, nil)
				}
			}
		}
	case nand.FaultRetryTail:
		d.health.SetRetryProb(ev.Prob)
	case nand.FaultProgramSlowdown:
		d.health.SetSlowFactor(ev.Factor)
	}
}

// Reset returns the device to its just-constructed state so a run loop can
// reuse it for the next session instead of rebuilding: the FTL is factory-
// reset (keeping its materialized block storage), every bus and die resource
// is idled and its telemetry zeroed, and the in-flight counter cleared. The
// engine and collector are owned by the caller (internal/simrun) and must be
// Reset separately; geometry, options, and probes are unchanged.
func (d *Device) Reset() {
	d.ftl.Reset() // also empties the CMT, which stays enabled
	for _, b := range d.buses {
		b.Reset()
	}
	for _, dr := range d.dies {
		dr.Reset()
	}
	d.inFlight = 0
	if d.health != nil {
		// Factory health, and the fault plan re-armed on the (caller-
		// reset) engine so the next session replays it identically.
		d.health.Reset()
		d.armFaults()
	}
}

// Config returns the device geometry.
func (d *Device) Config() nand.Config { return d.cfg }

// FTL exposes the device's translation layer (for channel re-allocation and
// page-mode changes while a simulation runs).
func (d *Device) FTL() *ftl.FTL { return d.ftl }

// Engine exposes the simulation engine (for schedulers layered on top, such
// as SSDKeeper's feature-window timer).
func (d *Device) Engine() *sim.Engine { return d.eng }

// Stats returns the latency collector.
func (d *Device) Stats() *stats.Collector { return d.col }

// Health returns the device's health state, nil on an immortal device
// (no Options.FaultPlan).
func (d *Device) Health() *nand.Health { return d.health }

// HealthSnapshot summarizes device health for feature extraction and the
// serve tier's health score. The zero value means a perfectly healthy
// device.
type HealthSnapshot struct {
	DeadDieFrac   float64 // fraction of dies dead (0 = all live)
	ReadRetries   int64   // reads that needed extra sensing passes
	SlowPrograms  int64   // programs stretched by wear slowdown
	DieFailures   int64
	BlocksRetired int64
	WearSpread    float64 // (max-min erase count) / max(1, WearThreshold)
}

// HealthSnapshot assembles the current health summary. On an immortal
// device it returns the zero value without touching the FTL.
func (d *Device) HealthSnapshot() HealthSnapshot {
	if d.health == nil {
		return HealthSnapshot{}
	}
	w := d.ftl.Wear()
	worn := d.cfg.WearThreshold
	if worn <= 0 {
		worn = 1
	}
	return HealthSnapshot{
		DeadDieFrac:   1 - d.health.LiveDieFrac(),
		ReadRetries:   d.health.ReadRetries,
		SlowPrograms:  d.health.SlowPrograms,
		DieFailures:   d.health.DieFailures,
		BlocksRetired: d.health.BlocksRetired,
		WearSpread:    float64(w.MaxErases-w.MinErases) / float64(worn),
	}
}

// ChannelLoad implements ftl.Load.
func (d *Device) ChannelLoad(ch int) sim.Time {
	return d.buses[ch].Load(d.eng.Now())
}

// DieLoad implements ftl.Load.
func (d *Device) DieLoad(die int) sim.Time {
	return d.dies[die].Load(d.eng.Now())
}

// prio maps an operation to its arbitration priority under the device
// options.
func (d *Device) prio(op trace.Op) int {
	if !d.opts.ReadPriority {
		return prioWrite
	}
	if op == trace.Read {
		return prioRead
	}
	return prioWrite
}

// pagesOf converts a record's byte extent to page numbers.
func (d *Device) pagesOf(r trace.Record) (startLPN int64, n int) {
	ps := int64(d.cfg.PageSize)
	startLPN = r.Offset / ps
	end := r.Offset + int64(r.Size)
	endLPN := (end + ps - 1) / ps
	return startLPN, int(endLPN - startLPN)
}

// request tracks one in-flight host request: its page fan-out counter and
// the data needed to record the response latency when the last page lands.
// Requests are pooled on the device; what used to be a per-request
// finishPage closure is now a record from the free list.
type request struct {
	d         *Device
	remaining int
	arrival   sim.Time
	tenant    int
	read      bool
	done      func(lat sim.Time)
}

// pageDone retires one page of the request, completing it when the fan-out
// drains.
func (rq *request) pageDone() {
	rq.remaining--
	if rq.remaining > 0 {
		return
	}
	d := rq.d
	lat := d.eng.Now() - rq.arrival
	if rq.read {
		d.col.AddRead(rq.tenant, lat)
	} else {
		d.col.AddWrite(rq.tenant, lat)
	}
	d.inFlight--
	done := rq.done
	d.freeRequest(rq)
	if done != nil {
		done(lat)
	}
}

// pageOp is one page operation's two-stage resource walk: reads hold the
// die then the bus, writes the bus then the die. One pooled record per page
// replaces the two closures the stages used to allocate; it implements
// sim.Completion and re-arms itself for the second stage.
type pageOp struct {
	rq     *request
	bus    *sim.Resource
	die    *sim.Resource
	prio   int
	second sim.Time // hold time of the second resource
	write  bool
	final  bool
}

// OnComplete implements sim.Completion: stage one chains into the second
// resource; stage two retires the page and recycles the record.
func (op *pageOp) OnComplete() {
	if !op.final {
		op.final = true
		if op.write {
			op.die.UseCompletion(op.prio, op.second, op)
		} else {
			op.bus.UseCompletion(op.prio, op.second, op)
		}
		return
	}
	rq := op.rq
	rq.d.freePageOp(op)
	rq.pageDone()
}

func (d *Device) newRequest() *request {
	if n := len(d.reqFree); n > 0 {
		rq := d.reqFree[n-1]
		d.reqFree = d.reqFree[:n-1]
		return rq
	}
	return &request{d: d}
}

func (d *Device) freeRequest(rq *request) {
	rq.done = nil
	d.reqFree = append(d.reqFree, rq)
}

func (d *Device) newPageOp() *pageOp {
	if n := len(d.opFree); n > 0 {
		op := d.opFree[n-1]
		d.opFree = d.opFree[:n-1]
		return op
	}
	return &pageOp{}
}

func (d *Device) freePageOp(op *pageOp) {
	*op = pageOp{}
	d.opFree = append(d.opFree, op)
}

// Submit issues one request at the current simulated time. The callback
// done (may be nil) runs at completion with the response latency.
func (d *Device) Submit(r trace.Record, done func(lat sim.Time)) error {
	return d.SubmitAt(r, d.eng.Now(), done)
}

// SubmitAt issues a request whose response latency is measured from the
// given arrival instant, which must not be in the future. Run uses it to
// charge host-queue waiting time to requests held back by MaxOutstanding.
func (d *Device) SubmitAt(r trace.Record, arrival sim.Time, done func(lat sim.Time)) error {
	startLPN, n := d.pagesOf(r)
	if n == 0 {
		return fmt.Errorf("ssd: zero-page request at offset %d size %d", r.Offset, r.Size)
	}
	if arrival > d.eng.Now() {
		return fmt.Errorf("ssd: arrival %v in the future (now %v)", arrival, d.eng.Now())
	}
	rq := d.newRequest()
	rq.remaining = n
	rq.arrival = arrival
	rq.tenant = r.Tenant
	rq.read = r.Op == trace.Read
	rq.done = done
	d.inFlight++
	for i := 0; i < n; i++ {
		k := ftl.Key{Tenant: r.Tenant, LPN: startLPN + int64(i)}
		pen := d.ftl.MapPenalty(k)
		if r.Op == trace.Read {
			addr, err := d.ftl.MapRead(k)
			if err != nil {
				return err
			}
			d.readPage(addr, pen, rq)
		} else {
			addr, gc, err := d.ftl.MapWrite(k)
			if err != nil {
				return err
			}
			d.writePage(addr, pen, rq)
			if gc != nil {
				d.chargeGC(gc)
			}
		}
	}
	return nil
}

// readPage models: optional translation read, die sensing, then bus
// transfer to the host. Without a cache register the die also covers the
// transfer window.
func (d *Device) readPage(a nand.Addr, mapPenalty sim.Time, rq *request) {
	op := d.newPageOp()
	op.rq = rq
	op.die = d.dies[d.cfg.DieID(a)]
	op.bus = d.buses[a.Channel]
	op.prio = d.prio(trace.Read)
	op.second = d.cfg.XferLatency
	dieHold := d.cfg.ReadLatency + mapPenalty
	if d.health != nil {
		if passes := d.health.RetriesFor(d.cfg.PlaneID(a), a.Block, a.Page); passes > 0 {
			dieHold += sim.Time(passes) * d.cfg.ReadLatency
			d.probe.ReadRetry(d.cfg.DieID(a), passes)
		}
	}
	if d.opts.NoCacheRegister {
		dieHold += d.cfg.XferLatency
	}
	op.die.UseCompletion(op.prio, dieHold, op)
}

// writePage models: bus transfer from the host, then an optional
// translation read and the die program. Without a cache register the die is
// reserved for the transfer window too.
func (d *Device) writePage(a nand.Addr, mapPenalty sim.Time, rq *request) {
	op := d.newPageOp()
	op.rq = rq
	op.die = d.dies[d.cfg.DieID(a)]
	op.bus = d.buses[a.Channel]
	op.prio = d.prio(trace.Write)
	op.write = true
	op.second = d.cfg.WriteLatency + mapPenalty
	if d.health != nil {
		if f := d.health.SlowFactor(); f > 1 {
			worn := d.cfg.WearThreshold
			if worn <= 0 {
				worn = 1
			}
			if d.ftl.BlockErases(d.cfg.PlaneID(a), a.Block) >= worn {
				extra := sim.Time(float64(d.cfg.WriteLatency) * (f - 1))
				op.second += extra
				d.health.SlowPrograms++
				d.probe.ProgramSlowdown(d.cfg.DieID(a), extra)
			}
		}
	}
	if d.opts.NoCacheRegister {
		op.second += d.cfg.XferLatency
	}
	op.bus.UseCompletion(op.prio, d.cfg.XferLatency, op)
}

// chargeGC occupies the victim plane's die at background priority for the
// plan's copyback and erase time.
func (d *Device) chargeGC(plan *ftl.GCPlan) {
	die := d.dies[d.cfg.DieID(plan.VictimAddr)]
	die.Use(prioGC, plan.DieTime, nil)
}

// Result summarizes one completed simulation.
type Result struct {
	Makespan     sim.Time // time the last event fired
	Requests     int
	Device       stats.Latency
	PerTenant    map[int]stats.Latency
	BusStats     []sim.Stats
	DieStats     []sim.Stats
	FTL          ftl.Counters
	Conflicts    uint64   // operations that waited on a busy bus or die
	ConflictWait sim.Time // total time spent waiting
	// Fairness is Jain's index over the tenants' total latencies (1.0 =
	// every tenant experiences the device equally).
	Fairness float64
}

// Run replays an entire trace and returns the result. Arrivals are injected
// lazily (record i+1 is scheduled when record i arrives), so memory stays
// O(outstanding work), not O(trace). An optional onArrival hook observes
// each record at its arrival instant — SSDKeeper's features collector and
// window timer hang off it.
func (d *Device) Run(t trace.Trace, onArrival func(i int, r trace.Record)) (Result, error) {
	return d.RunContext(context.Background(), t, onArrival)
}

// RunContext is Run with cancellation: when ctx is cancelled the replay
// stops between events and the context's error is returned. A background
// context costs nothing on the event loop.
func (d *Device) RunContext(ctx context.Context, t trace.Trace, onArrival func(i int, r trace.Record)) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	var submitErr error
	var backlog []trace.Record // host-side FIFO when MaxOutstanding binds
	var dispatch func(r trace.Record)
	onDone := func(sim.Time) {
		if len(backlog) == 0 || submitErr != nil {
			return
		}
		next := backlog[0]
		backlog = backlog[1:]
		dispatch(next)
	}
	dispatch = func(r trace.Record) {
		if err := d.SubmitAt(r, r.Time, onDone); err != nil {
			submitErr = err
		}
	}
	// inject is scheduled through the typed fast path: one closure for the
	// whole replay, with the record index as the event argument, instead of
	// one capturing closure per trace record.
	var inject func(arg uint64)
	inject = func(arg uint64) {
		i := int(arg)
		if i >= len(t) || submitErr != nil {
			return
		}
		r := t[i]
		if onArrival != nil {
			onArrival(i, r)
		}
		if d.opts.MaxOutstanding > 0 && d.inFlight >= d.opts.MaxOutstanding {
			backlog = append(backlog, r)
		} else {
			dispatch(r)
		}
		if submitErr != nil {
			return
		}
		if i+1 < len(t) {
			d.eng.ScheduleCall(t[i+1].Time, inject, arg+1)
		}
	}
	if len(t) > 0 {
		d.eng.ScheduleCall(t[0].Time, inject, 0)
	}
	makespan, ctxErr := d.eng.RunContext(ctx)
	if submitErr != nil {
		return Result{}, submitErr
	}
	if ctxErr != nil {
		return Result{}, ctxErr
	}
	return d.result(makespan, len(t)), nil
}

// Snapshot assembles a Result at the current simulated time, for drivers
// that pump the engine themselves (e.g. the multi-queue host interface).
func (d *Device) Snapshot(requests int) Result {
	return d.result(d.eng.Now(), requests)
}

// result assembles the summary. Latency accumulators are snapshotted
// (histograms cloned) so a Result stays valid after its collector is Reset
// for the next session on a reused runner.
func (d *Device) result(makespan sim.Time, requests int) Result {
	res := Result{
		Makespan:  makespan,
		Requests:  requests,
		Device:    d.col.Device().Snapshot(),
		PerTenant: make(map[int]stats.Latency),
		FTL:       d.ftl.Counters(),
		Fairness:  d.col.Fairness(),
	}
	for _, id := range d.col.Tenants() {
		res.PerTenant[id] = d.col.Tenant(id).Snapshot()
	}
	for _, b := range d.buses {
		s := b.Snapshot()
		res.BusStats = append(res.BusStats, s)
		res.Conflicts += s.Contended
		res.ConflictWait += s.WaitTime
	}
	for _, dr := range d.dies {
		s := dr.Snapshot()
		res.DieStats = append(res.DieStats, s)
		res.Conflicts += s.Contended
		res.ConflictWait += s.WaitTime
	}
	return res
}
