// Package wire is the fleet's fast data plane: a persistent, multiplexed,
// newline-framed transport between the router and its nodes. Each frame is
// one text line tagged with a connection-local sequence number, so many
// in-flight requests share one TCP connection and replies return in
// completion order (pipelining) rather than request order:
//
//	request:  <seq> <tenant> <R|W> <offset> <size> [key]\n
//	reply:    <seq> ok <latency_ns> <sim_ns>\n
//	        | <seq> rej <reason>\n
//
// The request tail is exactly the serve line protocol (serve.DecodeLineBytes
// parses it), so the wire format is the batch format plus a tag. Sequence
// numbers start at 1 and are unique per connection for the connection's
// lifetime; seq 0 is invalid, which lets a listener distinguish "unparseable
// frame" (close the connection) from "bad request" (reply rej invalid).
// Reason tokens are the serve.RejectReason vocabulary plus "upstream", the
// router's token for a node that died with requests in flight.
//
// Both endpoints coalesce writes: frames rendered by concurrent completions
// (or concurrent client calls) land in a double-buffered outbox whose writer
// goroutine flushes everything accumulated in one Write call — group commit
// for syscalls. See outbox.go for the model and server.go/client.go for the
// two endpoints.
package wire

import (
	"fmt"
	"strconv"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/trace"
)

// MaxFrameBytes bounds one frame (line) on both endpoints, aligned with the
// serve layer's request-body bound so any line a node would accept over HTTP
// batch also fits a wire frame.
const MaxFrameBytes = 4 << 20

// AppendRequest renders a request frame. Append-style so callers reuse one
// scratch buffer across frames; it never allocates beyond dst's growth.
func AppendRequest(dst []byte, seq uint64, req serve.Request) []byte {
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(req.Tenant), 10)
	if req.Op == trace.Write {
		dst = append(dst, ' ', 'W', ' ')
	} else {
		dst = append(dst, ' ', 'R', ' ')
	}
	dst = strconv.AppendInt(dst, req.Offset, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(req.Size), 10)
	if req.Key != 0 {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, req.Key, 10)
	}
	return append(dst, '\n')
}

// AppendOK renders a completion reply frame.
func AppendOK(dst []byte, seq uint64, latencyNS, simNS int64) []byte {
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, " ok "...)
	dst = strconv.AppendInt(dst, latencyNS, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, simNS, 10)
	return append(dst, '\n')
}

// AppendRej renders a rejection reply frame.
func AppendRej(dst []byte, seq uint64, reason string) []byte {
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, " rej "...)
	dst = append(dst, reason...)
	return append(dst, '\n')
}

// ParseRequest parses a request frame (line, no trailing newline). On a bad
// sequence tag it returns seq 0 — the connection is unrecoverable because
// replies could not be matched; on a bad request tail it returns the parsed
// seq with the error, so the listener can answer "rej invalid" in band.
func ParseRequest(line []byte) (uint64, serve.Request, error) {
	i := 0
	for i < len(line) && !wireSep(line[i]) {
		i++
	}
	seq, err := parseUintWire(line[:i])
	if err != nil || seq == 0 {
		return 0, serve.Request{}, fmt.Errorf("wire: bad request seq %q", line[:i])
	}
	req, err := serve.DecodeLineBytes(line[i:])
	if err != nil {
		return seq, serve.Request{}, err
	}
	return seq, req, nil
}

// Reply is one parsed reply frame. Reason aliases the input line — it is
// valid only until the caller's read buffer is reused; retain it through
// ReasonString, which interns the fixed token set without allocating.
type Reply struct {
	Seq       uint64
	OK        bool
	LatencyNS int64
	SimNS     int64
	Reason    []byte
}

// ParseReply parses a reply frame (line, no trailing newline).
func ParseReply(line []byte) (Reply, error) {
	var f [4][]byte
	n := 0
	i := 0
	for i < len(line) && n < len(f) {
		for i < len(line) && wireSep(line[i]) {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && !wireSep(line[i]) {
			i++
		}
		f[n] = line[start:i]
		n++
	}
	if n < 3 {
		return Reply{}, fmt.Errorf("wire: reply has %d fields, want 3 or 4", n)
	}
	seq, err := parseUintWire(f[0])
	if err != nil || seq == 0 {
		return Reply{}, fmt.Errorf("wire: bad reply seq %q", f[0])
	}
	switch string(f[1]) {
	case "ok":
		if n != 4 {
			return Reply{}, fmt.Errorf("wire: ok reply has %d fields, want 4", n)
		}
		lat, err := parseIntWire(f[2])
		if err != nil {
			return Reply{}, fmt.Errorf("wire: bad latency %q: %w", f[2], err)
		}
		at, err := parseIntWire(f[3])
		if err != nil {
			return Reply{}, fmt.Errorf("wire: bad sim time %q: %w", f[3], err)
		}
		return Reply{Seq: seq, OK: true, LatencyNS: lat, SimNS: at}, nil
	case "rej":
		return Reply{Seq: seq, Reason: f[2]}, nil
	}
	return Reply{}, fmt.Errorf("wire: bad reply verb %q", f[1])
}

// wireSep matches the separators frames use (space or tab; the request tail
// additionally accepts the full serve line-protocol separator set).
func wireSep(b byte) bool { return b == ' ' || b == '\t' || b == '\r' }

// parseUintWire parses an unsigned decimal without allocating.
func parseUintWire(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, fmt.Errorf("overflows uint64")
		}
		n = n*10 + d
	}
	return n, nil
}

// parseIntWire parses a non-negative decimal int64 without allocating
// (replies never carry negative numbers).
func parseIntWire(b []byte) (int64, error) {
	n, err := parseUintWire(b)
	if err != nil {
		return 0, err
	}
	if n > 1<<63-1 {
		return 0, fmt.Errorf("overflows int64")
	}
	return int64(n), nil
}
