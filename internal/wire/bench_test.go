package wire

import (
	"net"
	"testing"
	"time"

	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/trace"
)

// The encode/decode benchmarks below are CI-gated at 0 allocs/op
// (scripts/bench_gate.sh): the router's wire fast path runs exactly these
// four on every proxied request, so a regression here is a regression on
// every proxied I/O.

func BenchmarkWireEncodeRequest(b *testing.B) {
	req := serve.Request{Tenant: 3, Op: trace.Write, Offset: 1 << 30, Size: 128 << 10, Key: 987654321}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendRequest(buf[:0], uint64(i)|1, req)
	}
	_ = buf
}

func BenchmarkWireParseRequest(b *testing.B) {
	line := AppendRequest(nil, 123456, serve.Request{Tenant: 3, Op: trace.Write, Offset: 1 << 30, Size: 128 << 10, Key: 987654321})
	line = line[:len(line)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseRequest(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeReply(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendOK(buf[:0], uint64(i)|1, 123456789, 987654321)
	}
	_ = buf
}

func BenchmarkWireParseReply(b *testing.B) {
	line := AppendOK(nil, 123456, 123456789, 987654321)
	line = line[:len(line)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseReply(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCall measures one pipelined round trip through a live
// listener with an inline-completing backend: framing, outbox coalescing,
// kernel round trip, and reply demux — the transport cost floor under
// b.RunParallel's pipelining.
func BenchmarkWireCall(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(echoBackend{})
	go srv.Serve(ln)
	defer srv.Close()
	c := NewClient(ln.Addr().String(), 2)
	defer c.Close()
	req := serve.Request{Tenant: 1, Op: trace.Read, Offset: 4096, Size: 4096}
	if _, _, _, err := c.Do(req, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, reason, err := c.Do(req, 5*time.Second); err != nil || reason != "" {
				b.Errorf("reason=%q err=%v", reason, err)
				return
			}
		}
	})
}
