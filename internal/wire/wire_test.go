package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/serve"
	"ssdkeeper/internal/trace"
)

func TestRequestFrameRoundTrip(t *testing.T) {
	cases := []serve.Request{
		{Tenant: 0, Op: trace.Read, Offset: 0, Size: 4096},
		{Tenant: 3, Op: trace.Write, Offset: 1 << 30, Size: 128 << 10},
		{Tenant: 1, Op: trace.Read, Offset: 512, Size: 512, Key: 987654321},
	}
	var buf []byte
	for i, want := range cases {
		buf = AppendRequest(buf[:0], uint64(i+1), want)
		if buf[len(buf)-1] != '\n' {
			t.Fatalf("frame %q not newline-terminated", buf)
		}
		seq, got, err := ParseRequest(buf[:len(buf)-1])
		if err != nil {
			t.Fatalf("parse %q: %v", buf, err)
		}
		if seq != uint64(i+1) || got != want {
			t.Fatalf("round trip %q: seq %d req %+v, want seq %d req %+v", buf, seq, got, i+1, want)
		}
	}
}

func TestParseRequestErrors(t *testing.T) {
	// No usable seq: seq 0 tells the listener to hang up.
	for _, line := range []string{"", "x 0 R 0 4096", "0 0 R 0 4096", "-1 0 R 0 4096"} {
		if seq, _, err := ParseRequest([]byte(line)); err == nil || seq != 0 {
			t.Fatalf("ParseRequest(%q) = seq %d err %v, want seq 0 and error", line, seq, err)
		}
	}
	// Seq parses, tail is garbage: listener replies "rej invalid" in band.
	if seq, _, err := ParseRequest([]byte("7 0 X 0 4096")); err == nil || seq != 7 {
		t.Fatalf("bad op: seq %d err %v, want seq 7 and error", seq, err)
	}
}

func TestReplyFrameRoundTrip(t *testing.T) {
	buf := AppendOK(nil, 42, 123456, 789000)
	rep, err := ParseReply(buf[:len(buf)-1])
	if err != nil {
		t.Fatalf("parse ok reply: %v", err)
	}
	if !rep.OK || rep.Seq != 42 || rep.LatencyNS != 123456 || rep.SimNS != 789000 {
		t.Fatalf("ok reply round trip: %+v", rep)
	}
	buf = AppendRej(buf[:0], 7, "queue_full")
	rep, err = ParseReply(buf[:len(buf)-1])
	if err != nil {
		t.Fatalf("parse rej reply: %v", err)
	}
	if rep.OK || rep.Seq != 7 || string(rep.Reason) != "queue_full" {
		t.Fatalf("rej reply round trip: %+v", rep)
	}
	for _, line := range []string{"", "1 ok", "1 ok 5", "0 ok 1 2", "1 huh 3 4", "1 ok x 2"} {
		if _, err := ParseReply([]byte(line)); err == nil {
			t.Fatalf("ParseReply(%q) succeeded, want error", line)
		}
	}
}

func TestReasonStringInterns(t *testing.T) {
	for _, tok := range []string{"queue_full", "migrating", "draining", "timeout", "invalid", "upstream"} {
		b := []byte(tok)
		if got := ReasonString(b); got != tok {
			t.Fatalf("ReasonString(%q) = %q", tok, got)
		}
	}
	if got := ReasonString([]byte("weird")); got != "weird" {
		t.Fatalf("unknown token: %q", got)
	}
}

func TestReasonErrorRoundTrip(t *testing.T) {
	for _, err := range []error{serve.ErrQueueFull, serve.ErrTenantMigrating, serve.ErrDraining, serve.ErrCanceled} {
		tok := serve.RejectReason(err)
		back := ReasonError(tok)
		if !errors.Is(back, err) {
			t.Fatalf("ReasonError(%q) = %v, want %v", tok, back, err)
		}
	}
	if ReasonError("") != nil {
		t.Fatal("empty reason should map to nil")
	}
	if !errors.Is(ReasonError(ReasonUpstream), ErrUpstream) {
		t.Fatal("upstream token should map to ErrUpstream")
	}
}

// echoBackend completes every request inline with a latency derived from its
// offset, so tests can check reply matching.
type echoBackend struct{}

func (echoBackend) SubmitTo(req serve.Request, c serve.Completion) error {
	if req.Tenant == 99 {
		return serve.ErrQueueFull // synchronous rejection path
	}
	c.Complete(serve.Response{Latency: 1000, At: 77}, nil)
	return nil
}

// stallBackend parks completions until released, to keep calls in flight.
type stallBackend struct {
	mu     sync.Mutex
	parked []serve.Completion
}

func (b *stallBackend) SubmitTo(req serve.Request, c serve.Completion) error {
	b.mu.Lock()
	b.parked = append(b.parked, c)
	b.mu.Unlock()
	return nil
}

func startWire(t *testing.T, b Backend) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestClientServerPipelined(t *testing.T) {
	_, addr := startWire(t, echoBackend{})
	c := NewClient(addr, 2)
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lat, at, reason, err := c.Do(serve.Request{Tenant: g % 4, Op: trace.Read, Offset: int64(i) * 4096, Size: 4096}, 5*time.Second)
				if err != nil || reason != "" || lat != 1000 || at != 77 {
					errs <- fmt.Errorf("goroutine %d call %d: lat=%d at=%d reason=%q err=%v", g, i, lat, at, reason, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientSynchronousReject(t *testing.T) {
	_, addr := startWire(t, echoBackend{})
	c := NewClient(addr, 1)
	defer c.Close()
	_, _, reason, err := c.Do(serve.Request{Tenant: 99, Op: trace.Read, Size: 4096}, 5*time.Second)
	if err != nil || reason != "queue_full" {
		t.Fatalf("reason=%q err=%v, want queue_full rejection", reason, err)
	}
}

func TestServerDeathFailsInflight(t *testing.T) {
	srv, addr := startWire(t, &stallBackend{})
	c := NewClient(addr, 1)
	defer c.Close()

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := c.Do(serve.Request{Tenant: 0, Op: trace.Read, Size: 4096}, 10*time.Second)
			errs <- err
		}()
	}
	// Give the calls a moment to get in flight, then kill the server.
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("in-flight call on a dead server returned success")
		}
	}
	// The client redials and works again once a server is back.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := NewServer(echoBackend{})
	go srv2.Serve(ln)
	defer srv2.Close()
	if _, _, reason, err := c.Do(serve.Request{Tenant: 0, Op: trace.Read, Size: 4096}, 5*time.Second); err != nil || reason != "" {
		t.Fatalf("post-redial call: reason=%q err=%v", reason, err)
	}
}

func TestClientTimeout(t *testing.T) {
	_, addr := startWire(t, &stallBackend{})
	c := NewClient(addr, 1)
	defer c.Close()
	start := time.Now()
	_, _, _, err := c.Do(serve.Request{Tenant: 0, Op: trace.Read, Size: 4096}, 30*time.Millisecond)
	if err == nil {
		t.Fatal("stalled call returned success")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

// gatherObs collects async outcomes keyed by tag.
type gatherObs struct {
	mu    sync.Mutex
	lats  map[uint64]int64
	errs  int
	wg    sync.WaitGroup
	count int
}

func (g *gatherObs) Done(tag uint64, latencyNS, simNS int64, reason string, err error) {
	g.mu.Lock()
	if err != nil || reason != "" {
		g.errs++
	} else {
		g.lats[tag] = latencyNS
	}
	g.count++
	g.mu.Unlock()
	g.wg.Done()
}

func TestClientObserverPath(t *testing.T) {
	_, addr := startWire(t, echoBackend{})
	c := NewClient(addr, 1)
	defer c.Close()
	g := &gatherObs{lats: make(map[uint64]int64)}
	const n = 200
	g.wg.Add(n)
	for i := 0; i < n; i++ {
		if err := c.Start(serve.Request{Tenant: i % 4, Op: trace.Write, Offset: int64(i) * 4096, Size: 4096}, uint64(i), g); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
	}
	g.wg.Wait()
	if g.errs != 0 || len(g.lats) != n {
		t.Fatalf("observer gather: %d errs, %d oks, want 0/%d", g.errs, len(g.lats), n)
	}
}

// TestWireAgainstNode drives a real serve.Node through the wire listener.
func TestWireAgainstNode(t *testing.T) {
	node := newTestNode(t)
	_, addr := startWire(t, node)
	c := NewClient(addr, 2)
	defer c.Close()
	for i := 0; i < 32; i++ {
		lat, at, reason, err := c.Do(serve.Request{Tenant: i % 2, Op: trace.Read, Offset: int64(i) * 4096, Size: 4096}, 10*time.Second)
		if err != nil || reason != "" {
			t.Fatalf("call %d: reason=%q err=%v", i, reason, err)
		}
		if lat <= 0 || at <= 0 {
			t.Fatalf("call %d: lat=%d at=%d, want positive", i, lat, at)
		}
	}
	// Invalid tenant travels back as an in-band rejection.
	if _, _, reason, err := c.Do(serve.Request{Tenant: 77, Op: trace.Read, Size: 4096}, 5*time.Second); err != nil || reason != "invalid" {
		t.Fatalf("invalid tenant: reason=%q err=%v", reason, err)
	}
}

func TestOutboxCoalesces(t *testing.T) {
	o := newOutbox()
	var w countingWriter
	done := make(chan struct{})
	go func() { o.run(&w); close(done) }()
	// Stuff many frames in faster than the writer drains 1-byte-at-a-time —
	// the count of Write calls must come out well under the frame count.
	const n = 1000
	for i := 0; i < n; i++ {
		if !o.append([]byte("x\n")) {
			t.Fatal("append on open outbox failed")
		}
	}
	o.close()
	<-done
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bytes != 2*n {
		t.Fatalf("wrote %d bytes, want %d", w.bytes, 2*n)
	}
	if w.calls >= n {
		t.Fatalf("no coalescing: %d Write calls for %d frames", w.calls, n)
	}
	if o.append([]byte("y\n")) {
		t.Fatal("append on closed outbox succeeded")
	}
}

type countingWriter struct {
	mu    sync.Mutex
	calls int
	bytes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.calls++
	w.bytes += len(p)
	w.mu.Unlock()
	time.Sleep(100 * time.Microsecond) // slow sink so appends pile up
	return len(p), nil
}

func newTestNode(t *testing.T) *serve.Node {
	t.Helper()
	cfg := serve.Config{
		Device: nand.EvalConfig(),
		Accel:  50,
	}
	n, err := serve.NewNode(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	t.Cleanup(func() { n.Drain() })
	return n
}
