package wire

import (
	"bufio"
	"errors"
	"net"
	"sync"

	"ssdkeeper/internal/serve"
)

// Backend is what a wire listener serves: the serve.Node callback-submission
// surface. *serve.Node implements it directly; the fleet router implements
// it too, which is how a router exposes the wire protocol to its own
// clients while proxying over wire to nodes.
type Backend interface {
	SubmitTo(req serve.Request, c serve.Completion) error
}

// Server accepts persistent wire connections and feeds decoded requests
// straight into the backend. There is no per-request goroutine: the
// connection's read loop decodes a frame, reserves a pooled completion
// handle, and submits; the owning shard's goroutine later renders the reply
// frame into the connection's coalescing outbox. Per connection the server
// runs exactly two goroutines (read loop, outbox writer) regardless of how
// many requests are in flight.
type Server struct {
	backend Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a wire server over the backend.
func NewServer(b Backend) *Server {
	return &Server{backend: b, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close (which returns nil) or an
// accept error (returned). Each connection is served until its peer closes
// it or sends an unparseable frame.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for the
// connection goroutines to exit. In-flight requests still complete inside
// the backend; their reply frames are dropped by the closed outboxes.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	out := newOutbox()
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		out.run(conn)
	}()

	var scratch []byte // rej frames for synchronous decode failures
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		seq, req, err := ParseRequest(line)
		if err != nil {
			if seq == 0 {
				break // untagged garbage: replies can't be matched, hang up
			}
			scratch = AppendRej(scratch[:0], seq, "invalid")
			out.append(scratch)
			continue
		}
		d := donePool.Get().(*Done)
		d.seq, d.out = seq, out
		if err := s.backend.SubmitTo(req, d); err != nil {
			// Synchronous rejection: the backend never calls Complete.
			d.Complete(serve.Response{}, err)
		}
	}
	out.close()
	conn.Close()
	writers.Wait()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// donePool recycles completion handles so the steady-state request path
// allocates nothing: one Done is reserved at decode, rides the shard
// mailbox as the request's serve.Completion, renders the reply frame into
// its own scratch buffer, and returns to the pool.
var donePool = sync.Pool{New: func() any { return new(Done) }}

// Done is the wire server's serve.Completion: it renders the outcome as a
// reply frame into the connection's outbox. Complete runs on the owning
// shard's goroutine and does not block (the outbox append is a bounded
// copy under a short-held lock).
type Done struct {
	seq     uint64
	out     *outbox
	scratch []byte
}

// rejectToken renders an error as a reply reason: the serve vocabulary,
// plus "upstream" for proxy transport failures (a router-side listener
// completes with ErrUpstream when the owner node died under the request).
func rejectToken(err error) string {
	if errors.Is(err, ErrUpstream) {
		return ReasonUpstream
	}
	return serve.RejectReason(err)
}

// Complete implements serve.Completion.
func (d *Done) Complete(resp serve.Response, err error) {
	if err != nil {
		d.scratch = AppendRej(d.scratch[:0], d.seq, rejectToken(err))
	} else {
		d.scratch = AppendOK(d.scratch[:0], d.seq, int64(resp.Latency), int64(resp.At))
	}
	out := d.out
	d.out = nil
	out.append(d.scratch)
	donePool.Put(d)
}
