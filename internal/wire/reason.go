package wire

import (
	"errors"
	"fmt"

	"ssdkeeper/internal/serve"
)

// ReasonUpstream is the router's rejection token for a node that failed
// (connection died, dial refused, reply never came) with the request in
// flight — the one token that does not originate in the serve layer.
const ReasonUpstream = "upstream"

// ErrUpstream is the error form of ReasonUpstream.
var ErrUpstream = errors.New("wire: upstream failed")

// ReasonString interns a reply's reason token: the fixed vocabulary returns
// the corresponding constant without allocating, so a caller may retain the
// result past the read buffer's reuse. (The string(b) comparisons compile to
// allocation-free equality checks.)
func ReasonString(b []byte) string {
	switch string(b) {
	case "queue_full":
		return "queue_full"
	case "migrating":
		return "migrating"
	case "draining":
		return "draining"
	case "timeout":
		return "timeout"
	case "invalid":
		return "invalid"
	case ReasonUpstream:
		return ReasonUpstream
	}
	return string(b)
}

// ReasonError maps a reason token back onto the serve-layer error it came
// from (see serve.RejectReason), so a proxy forwarding wire rejections into
// a Completion preserves error identity end to end.
func ReasonError(reason string) error {
	switch reason {
	case "":
		return nil
	case "queue_full":
		return serve.ErrQueueFull
	case "migrating":
		return serve.ErrTenantMigrating
	case "draining":
		return serve.ErrDraining
	case "timeout":
		return serve.ErrCanceled
	case ReasonUpstream:
		return ErrUpstream
	}
	return fmt.Errorf("serve: rejected: %s", reason)
}
