package wire

import (
	"io"
	"sync"
)

// outbox is the write-coalescing half of a connection. Concurrent producers
// (shard-goroutine completions on a listener, client goroutines on a
// router) append rendered frames into the active buffer under a mutex held
// only for the copy; a single writer goroutine swaps the active buffer with
// a spare and issues one Write for everything accumulated since its last
// flush. Under load this is group commit for syscalls: N frames queued while
// one Write was in flight leave as one Write, so the syscall rate is set by
// the kernel's pace, not the request rate. The kick channel (capacity 1)
// makes wakeups level-triggered — any number of appends while the writer is
// busy collapse into one pending kick.
//
// Memory is bounded by the transport's natural backpressure: a producer only
// appends frames for requests that were admitted, and admission is bounded
// (per-tenant occupancy on a node, in-flight calls on a client), so the
// buffers never outgrow the in-flight window.
type outbox struct {
	mu     sync.Mutex
	buf    []byte // active: producers append here
	spare  []byte // writer-owned: being written, swapped in when drained
	closed bool
	kick   chan struct{}
}

func newOutbox() *outbox {
	return &outbox{kick: make(chan struct{}, 1)}
}

// append copies one rendered frame into the active buffer and wakes the
// writer. It reports false when the outbox is closed (connection dead); the
// frame is dropped, which is correct — the peer that would have read it is
// gone. Producers must not retain p's bytes as sent: the copy is the
// handoff.
func (o *outbox) append(p []byte) bool {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return false
	}
	o.buf = append(o.buf, p...)
	o.mu.Unlock()
	select {
	case o.kick <- struct{}{}:
	default:
	}
	return true
}

// close stops the outbox: the writer flushes what is buffered, then exits.
// Safe to call more than once and concurrently with append.
func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	select {
	case o.kick <- struct{}{}:
	default:
	}
}

// run is the writer loop; the owner runs it in a dedicated goroutine. It
// returns when the outbox closes (after a final flush) or the first Write
// fails (the connection is dead; the outbox closes itself so producers stop
// buffering).
func (o *outbox) run(w io.Writer) {
	for range o.kick {
		for {
			o.mu.Lock()
			if len(o.buf) == 0 {
				closed := o.closed
				o.mu.Unlock()
				if closed {
					return
				}
				break
			}
			o.buf, o.spare = o.spare[:0], o.buf
			o.mu.Unlock()
			if _, err := w.Write(o.spare); err != nil {
				o.close()
				return
			}
		}
	}
}
