package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/serve"
)

// ErrClientClosed reports a call issued after Close.
var ErrClientClosed = errors.New("wire: client closed")

// errTimeout reports a blocking call that outlived its budget; the request
// may still complete on the node (the reply is discarded), exactly like an
// abandoned HTTP request.
var errTimeout = errors.New("wire: call timed out")

// Observer receives an asynchronous call's outcome, exactly once, from the
// connection's read goroutine — implementations must not block. reason is ""
// for success and an interned rejection token otherwise; err is non-nil only
// for transport failure (connection died before a reply), in which case the
// outcome is unknown. tag is the caller's correlation value, untouched.
type Observer interface {
	Done(tag uint64, latencyNS, simNS int64, reason string, err error)
}

// Client multiplexes calls onto a small pool of persistent connections to
// one wire listener. Connections dial lazily and redial on the next call
// after a failure; every in-flight call on a dead connection fails with the
// transport error. Calls pipeline: any number may be in flight per
// connection, each tagged with a connection-local seq and matched to its
// reply by the read goroutine.
type Client struct {
	addr  string
	conns []*clientConn
	next  atomic.Uint64
}

// NewClient builds a client for the listener at addr with the given
// connection-pool size (minimum 1). No connection is made until the first
// call.
func NewClient(addr string, conns int) *Client {
	if conns < 1 {
		conns = 1
	}
	c := &Client{addr: addr}
	for i := 0; i < conns; i++ {
		c.conns = append(c.conns, &clientConn{addr: addr})
	}
	return c
}

// Addr returns the listener address the client dials.
func (c *Client) Addr() string { return c.addr }

// Do issues one call and blocks for its outcome. reason is "" on success;
// a non-empty reason is an in-protocol rejection (the request reached the
// node and was refused). A non-nil error is a transport failure or timeout.
func (c *Client) Do(req serve.Request, timeout time.Duration) (latencyNS, simNS int64, reason string, err error) {
	cc := c.pick()
	cl := getCall()
	if err := cc.send(req, cl); err != nil {
		putCall(cl)
		return 0, 0, "", err
	}
	t := getTimer(timeout)
	select {
	case <-cl.done:
	case <-t.C:
		if cc.forget(cl.seq) {
			// The reader never saw this call; it is ours to retire.
			putTimer(t)
			putCall(cl)
			return 0, 0, "", errTimeout
		}
		// Lost the race: the reader owns the call and delivery is imminent.
		<-cl.done
	}
	putTimer(t)
	latencyNS, simNS, reason, err = cl.latNS, cl.simNS, cl.reason, cl.err
	putCall(cl)
	return latencyNS, simNS, reason, err
}

// Start issues one call asynchronously: obs.Done fires from the connection's
// read goroutine when the reply (or the connection's death) arrives. A
// synchronous error means the call was never sent and obs will not fire.
func (c *Client) Start(req serve.Request, tag uint64, obs Observer) error {
	cl := getCall()
	cl.tag, cl.obs = tag, obs
	if err := c.pick().send(req, cl); err != nil {
		putCall(cl)
		return err
	}
	return nil
}

// Close tears down every connection; in-flight calls fail with
// ErrClientClosed and later calls are rejected synchronously.
func (c *Client) Close() {
	for _, cc := range c.conns {
		cc.shutdown()
	}
}

func (c *Client) pick() *clientConn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// clientConn is one persistent connection: a lazily-dialed net.Conn, the
// coalescing outbox its requests leave through, and the pending map its
// read goroutine resolves replies against. The mutex guards conn identity,
// seq, and the map; it is never held across network I/O (send holds it
// across the outbox append, which is a bounded memcpy).
type clientConn struct {
	addr string

	mu      sync.Mutex
	conn    net.Conn
	out     *outbox
	pending map[uint64]*call
	seq     uint64
	closed  bool
}

func (cc *clientConn) send(req serve.Request, cl *call) error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return ErrClientClosed
	}
	if cc.conn == nil {
		if err := cc.dialLocked(); err != nil {
			cc.mu.Unlock()
			return fmt.Errorf("wire: dial %s: %w", cc.addr, err)
		}
	}
	cc.seq++
	cl.seq = cc.seq
	cc.pending[cl.seq] = cl
	// Render and enqueue while still holding cc.mu: the moment the call is
	// registered in pending, a connection failure may sweep it — delivering
	// its outcome and, on the observer path, returning it to the pool — so
	// touching cl after an unlock would race with that sweep. The append is
	// a bounded memcpy into the outbox, not I/O; fail() takes cc.mu before
	// it closes the outbox, so the sweep cannot run until we are done with
	// the call. A false return (the outbox writer saw the connection die
	// and self-closed) drops the frame; the read goroutine's fail sweep
	// then delivers this call's transport error.
	cl.scratch = AppendRequest(cl.scratch[:0], cl.seq, req)
	cc.out.append(cl.scratch)
	cc.mu.Unlock()
	return nil
}

// dialLocked connects and starts the connection's writer and reader
// goroutines. Called with cc.mu held; the dial itself briefly serializes
// other senders on this connection, which only happens on first use or
// after a failure.
func (cc *clientConn) dialLocked() error {
	conn, err := net.DialTimeout("tcp", cc.addr, 5*time.Second)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // coalescing happens in the outbox, not the kernel
	}
	cc.conn = conn
	cc.out = newOutbox()
	cc.pending = make(map[uint64]*call)
	// cc.seq is deliberately NOT reset: seqs stay monotonic across redials
	// so a timed-out caller's forget(seq) from a previous connection
	// generation can never collide with (and silently abandon) a live call
	// that redrew the same number on the fresh pending map.
	go cc.out.run(conn)
	go cc.read(conn)
	return nil
}

// read is the demux loop: one goroutine per live connection matches reply
// frames to pending calls by seq and delivers outcomes.
func (cc *clientConn) read(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rep, err := ParseReply(line)
		if err != nil {
			cc.fail(conn, err)
			return
		}
		cc.mu.Lock()
		cl := cc.pending[rep.Seq]
		delete(cc.pending, rep.Seq)
		cc.mu.Unlock()
		if cl == nil {
			continue // abandoned by a timed-out caller
		}
		cl.latNS, cl.simNS = rep.LatencyNS, rep.SimNS
		if !rep.OK {
			cl.reason = ReasonString(rep.Reason)
		}
		cl.deliver()
	}
	err := sc.Err()
	if err == nil {
		err = io.EOF
	}
	cc.fail(conn, err)
}

// fail tears down one dead connection (if it is still the live one) and
// fails everything pending on it. The next send redials.
func (cc *clientConn) fail(conn net.Conn, err error) {
	cc.mu.Lock()
	if cc.conn != conn {
		cc.mu.Unlock()
		return
	}
	cc.conn = nil
	cc.out.close()
	cc.out = nil
	p := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	conn.Close()
	for _, cl := range p {
		cl.err = fmt.Errorf("wire: %s: %w", cc.addr, err)
		cl.deliver()
	}
}

// forget removes a pending call, reporting whether the caller now owns it
// (true) or the reader already took it and will deliver (false).
func (cc *clientConn) forget(seq uint64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, ok := cc.pending[seq]; ok {
		delete(cc.pending, seq)
		return true
	}
	return false
}

func (cc *clientConn) shutdown() {
	cc.mu.Lock()
	cc.closed = true
	conn := cc.conn
	cc.mu.Unlock()
	if conn != nil {
		cc.fail(conn, ErrClientClosed)
	}
}

// call is one in-flight request. Pooled: the blocking path recycles it
// after the caller copies the outcome; the observer path recycles it right
// after delivery. done has capacity 1 and is drained before reuse.
type call struct {
	seq     uint64
	tag     uint64
	obs     Observer
	done    chan struct{}
	scratch []byte
	latNS   int64
	simNS   int64
	reason  string
	err     error
}

// deliver hands the outcome over: to the observer for async calls (and the
// call returns to the pool), to the done channel for blocking callers (who
// recycle it after reading the fields).
func (cl *call) deliver() {
	if cl.obs != nil {
		obs := cl.obs
		obs.Done(cl.tag, cl.latNS, cl.simNS, cl.reason, cl.err)
		putCall(cl)
		return
	}
	cl.done <- struct{}{}
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan struct{}, 1)}
}}

func getCall() *call {
	cl := callPool.Get().(*call)
	cl.tag, cl.obs = 0, nil
	cl.latNS, cl.simNS = 0, 0
	cl.reason, cl.err = "", nil
	return cl
}

func putCall(cl *call) {
	select { // drop a stale completion signal before reuse
	case <-cl.done:
	default:
	}
	callPool.Put(cl)
}

// timerPool recycles timers for the blocking-call timeout so Do stays
// allocation-free in steady state.
var timerPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return t
}}

func getTimer(d time.Duration) *time.Timer {
	t := timerPool.Get().(*time.Timer)
	t.Reset(d)
	return t
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
