// Package prof wires the standard -cpuprofile/-memprofile flags of the CLIs
// to runtime/pprof. The profiles it writes are what the event-core
// optimization work is measured with: `go tool pprof` over a cpu profile
// shows where simulated time is spent, and an allocs profile shows what the
// hot path still allocates (see DESIGN.md, "Event-loop cost model").
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges for a
// heap allocation profile to be written to memPath (if non-empty). It
// returns a stop function that must run before the process exits — typically
// via defer from main — and an error if a profile file cannot be created.
// Empty paths are no-ops, so callers can pass flag values through directly.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocs accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
