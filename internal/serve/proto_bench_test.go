package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// benchBatch builds a representative /io/batch body: 4 tenants, mixed ops,
// strided offsets, every eighth line keyed.
func benchBatch(lines int) []byte {
	var buf bytes.Buffer
	for i := 0; i < lines; i++ {
		if i%8 == 7 {
			fmt.Fprintf(&buf, "%d W %d 16384 %d\n", i%4, int64(i)*16384, i+1)
		} else {
			fmt.Fprintf(&buf, "%d R %d 16384\n", i%4, int64(i)*16384)
		}
	}
	return buf.Bytes()
}

// BenchmarkDecodeBatch compares the byte-slice decode path the batch handler
// uses (zero allocations) against the string-based one it replaced.
func BenchmarkDecodeBatch(b *testing.B) {
	body := benchBatch(1024)

	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			rest := body
			for len(rest) > 0 {
				nl := bytes.IndexByte(rest, '\n')
				line := rest[:nl]
				rest = rest[nl+1:]
				if _, err := DecodeLineBytes(line); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			rest := body
			for len(rest) > 0 {
				nl := bytes.IndexByte(rest, '\n')
				line := string(rest[:nl])
				rest = rest[nl+1:]
				if _, err := DecodeLine(line); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
