package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"
)

// benchBatch builds a representative /io/batch body: 4 tenants, mixed ops,
// strided offsets, every eighth line keyed.
func benchBatch(lines int) []byte {
	var buf bytes.Buffer
	for i := 0; i < lines; i++ {
		if i%8 == 7 {
			fmt.Fprintf(&buf, "%d W %d 16384 %d\n", i%4, int64(i)*16384, i+1)
		} else {
			fmt.Fprintf(&buf, "%d R %d 16384\n", i%4, int64(i)*16384)
		}
	}
	return buf.Bytes()
}

// BenchmarkServeIO measures the two pieces of the /io single-request hot
// path this package owns — JSON request decode and response render — in
// isolation from net/http transport costs. The fast variants are the serving
// path and run allocation-free (pinned by TestDecodeJSONRequestZeroAlloc and
// TestAppendIOResponse); the std variants are the encoding/json code they
// replaced, kept as the comparison baseline.
func BenchmarkServeIO(b *testing.B) {
	body := []byte(`{"tenant":2,"op":"write","offset":8192,"size":4096,"key":7}`)

	b.Run("decode/fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeJSONRequest(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/std", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeJSONRequestStd(body); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("render/fast", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 64)
		for i := 0; i < b.N; i++ {
			buf = AppendIOResponse(buf[:0], int64(i)*1000, int64(i))
		}
	})
	b.Run("render/std", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := json.NewEncoder(io.Discard)
			if err := enc.Encode(jsonResponse{LatencyNS: int64(i) * 1000, SimNS: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecodeBatch compares the byte-slice decode path the batch handler
// uses (zero allocations) against the string-based one it replaced.
func BenchmarkDecodeBatch(b *testing.B) {
	body := benchBatch(1024)

	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			rest := body
			for len(rest) > 0 {
				nl := bytes.IndexByte(rest, '\n')
				line := rest[:nl]
				rest = rest[nl+1:]
				if _, err := DecodeLineBytes(line); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			rest := body
			for len(rest) > 0 {
				nl := bytes.IndexByte(rest, '\n')
				line := string(rest[:nl])
				rest = rest[nl+1:]
				if _, err := DecodeLine(line); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
