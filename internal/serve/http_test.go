package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/ssd"
)

// TestHTTPEndToEnd exercises the full wire path with a real wall clock and
// the pacer running: submit over /io, read /metrics and /healthz, then
// drain and watch the surface flip to 503.
func TestHTTPEndToEnd(t *testing.T) {
	cfg := Config{
		Device:  nand.EvalConfig(),
		Options: ssd.DefaultOptions(),
		Accel:   50, // device time runs fast so completions land within a tick
	}
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler(10 * time.Second))
	defer ts.Close()

	// One JSON request round trip.
	resp, err := http.Post(ts.URL+"/io", "application/json",
		strings.NewReader(`{"tenant":0,"op":"read","offset":0,"size":16384}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /io = %d: %s", resp.StatusCode, body)
	}
	var jr jsonResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("bad /io response %q: %v", body, err)
	}
	if jr.LatencyNS <= 0 {
		t.Errorf("latency_ns %d, want > 0", jr.LatencyNS)
	}

	// A batch over the line protocol: every line answered in order.
	batch := "0 R 0 16384\n1 W 16384 16384\nnot a line\n2 R 32768 16384\n"
	resp, err = http.Post(ts.URL+"/io/batch", "text/plain", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 {
		t.Fatalf("batch answered %d lines, want 4: %q", len(lines), body)
	}
	for i, want := range []string{"ok ", "ok ", "rej invalid", "ok "} {
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("batch line %d = %q, want prefix %q", i, lines[i], want)
		}
	}

	// Observability surface.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ssdkeeper_up 1",
		`ssdkeeper_admitted_total{tenant="0",op="read"} 2`,
		`ssdkeeper_completed_total{tenant="1",op="write"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Method and decode errors.
	resp, err = http.Get(ts.URL + "/io")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /io = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/io", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", resp.StatusCode)
	}

	// Drain flips the surface: healthz 503, new I/O 503 with Retry-After.
	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drained /healthz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/io", "application/json",
		strings.NewReader(`{"tenant":0,"op":"read","offset":0,"size":16384}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drained POST /io = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drained POST /io missing Retry-After")
	}
}

// TestHTTPBackpressure429 pins the overload contract: with a frozen clock
// nothing ever completes, so once a tenant's in-flight and queue bounds
// fill, the next /io answers 429 with a Retry-After hint, and a later drain
// resolves the blocked requests (completion for the dispatched one, 503 for
// the queued one).
func TestHTTPBackpressure429(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 1
	cfg.QueueLen = 1
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(30 * time.Second))
	defer ts.Close()

	post := func(pageNo int) (*http.Response, error) {
		return http.Post(ts.URL+"/io", "application/json",
			strings.NewReader(fmt.Sprintf(
				`{"tenant":0,"op":"write","offset":%d,"size":16384}`, pageNo*16384)))
	}

	// Two requests occupy the device slot and the queue slot; their handlers
	// block until the drain below answers them.
	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			resp, err := post(i)
			if err != nil {
				results <- result{err: err}
				return
			}
			resp.Body.Close()
			results <- result{status: resp.StatusCode}
		}(i)
	}
	// Wait until both are admitted (visible in the metrics counters).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf strings.Builder
		s.WriteMetrics(&buf)
		if strings.Contains(buf.String(), `ssdkeeper_admitted_total{tenant="0",op="write"} 2`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests not admitted in time:\n%s", buf.String())
		}
		time.Sleep(time.Millisecond)
	}

	// The third is over capacity: synchronous 429.
	resp, err := post(2)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload POST /io = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// Drain resolves the two blocked handlers: the dispatched request
	// completes (200), the queued one is rejected (503).
	s.Drain()
	statuses := map[int]int{}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("blocked request failed: %v", r.err)
		}
		statuses[r.status]++
	}
	if statuses[http.StatusOK] != 1 || statuses[http.StatusServiceUnavailable] != 1 {
		t.Errorf("drained statuses = %v, want one 200 and one 503", statuses)
	}
}

// TestHTTPPprofExposed checks the profiling surface is wired in.
func TestHTTPPprofExposed(t *testing.T) {
	clk := newFakeClock()
	s, err := New(testConfig(clk), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler(time.Second))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline = %d", resp.StatusCode)
	}
}
