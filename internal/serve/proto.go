package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

// Request is one tenant I/O submitted to the daemon, the wire-level
// equivalent of a trace.Record without a timestamp: arrival time is when
// the daemon admits it.
type Request struct {
	Tenant int
	Op     trace.Op
	Offset int64
	Size   int
}

// Record converts the request to a trace record arriving at the given
// simulated time.
func (r Request) Record(at sim.Time) trace.Record {
	return trace.Record{Time: at, Tenant: r.Tenant, Op: r.Op, Offset: r.Offset, Size: r.Size}
}

// maxRequestBytes bounds a single request's extent; larger transfers should
// be split by the client, as block layers do.
const maxRequestBytes = 4 << 20

// Validate checks field sanity against the server's tenant and address
// space bounds.
func (r Request) Validate(tenants int, maxBytes int64) error {
	switch {
	case r.Tenant < 0 || r.Tenant >= tenants:
		return fmt.Errorf("tenant %d outside [0,%d)", r.Tenant, tenants)
	case r.Size <= 0:
		return fmt.Errorf("non-positive size %d", r.Size)
	case r.Size > maxRequestBytes:
		return fmt.Errorf("size %d exceeds %d-byte request cap", r.Size, maxRequestBytes)
	case r.Offset < 0:
		return fmt.Errorf("negative offset %d", r.Offset)
	case r.Offset+int64(r.Size) > maxBytes:
		return fmt.Errorf("extent [%d,%d) outside the %d-byte tenant space",
			r.Offset, r.Offset+int64(r.Size), maxBytes)
	}
	return nil
}

// parseOp accepts the spellings used across the repo's trace formats.
func parseOp(s string) (trace.Op, error) {
	switch s {
	case "R", "r", "read", "Read", "READ":
		return trace.Read, nil
	case "W", "w", "write", "Write", "WRITE":
		return trace.Write, nil
	}
	return 0, fmt.Errorf("unknown op %q", s)
}

// jsonRequest is the HTTP/JSON wire form of a request.
type jsonRequest struct {
	Tenant int    `json:"tenant"`
	Op     string `json:"op"`
	Offset int64  `json:"offset"`
	Size   int    `json:"size"`
}

// jsonResponse is the HTTP/JSON wire form of a completion.
type jsonResponse struct {
	LatencyNS int64 `json:"latency_ns"`
	SimNS     int64 `json:"sim_ns"`
}

// DecodeJSONRequest parses one JSON-encoded request. Unknown fields are
// rejected so client typos fail loudly instead of silently defaulting.
func DecodeJSONRequest(data []byte) (Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jr jsonRequest
	if err := dec.Decode(&jr); err != nil {
		return Request{}, fmt.Errorf("serve: bad JSON request: %w", err)
	}
	op, err := parseOp(jr.Op)
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad JSON request: %w", err)
	}
	return Request{Tenant: jr.Tenant, Op: op, Offset: jr.Offset, Size: jr.Size}, nil
}

// DecodeLine parses one line of the compact load-generator protocol:
//
//	<tenant> <R|W> <offset> <size>
//
// Fields are separated by any run of spaces or tabs. The same format with
// commas is accepted too, so trace-derived corpora feed straight in.
func DecodeLine(line string) (Request, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if strings.ContainsRune(line, ',') {
		line = strings.ReplaceAll(line, ",", " ")
	}
	f := strings.Fields(line)
	if len(f) != 4 {
		return Request{}, fmt.Errorf("serve: line has %d fields, want 4 (tenant op offset size)", len(f))
	}
	tenant, err := strconv.Atoi(f[0])
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad tenant %q: %w", f[0], err)
	}
	op, err := parseOp(f[1])
	if err != nil {
		return Request{}, fmt.Errorf("serve: %w", err)
	}
	offset, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad offset %q: %w", f[2], err)
	}
	size, err := strconv.Atoi(f[3])
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad size %q: %w", f[3], err)
	}
	return Request{Tenant: tenant, Op: op, Offset: offset, Size: size}, nil
}

// EncodeLine renders the canonical line form DecodeLine parses.
func EncodeLine(r Request) string {
	op := "R"
	if r.Op == trace.Write {
		op = "W"
	}
	return fmt.Sprintf("%d %s %d %d", r.Tenant, op, r.Offset, r.Size)
}
