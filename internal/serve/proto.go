package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

// Request is one tenant I/O submitted to the daemon, the wire-level
// equivalent of a trace.Record without a timestamp: arrival time is when
// the daemon admits it.
type Request struct {
	Tenant int
	Op     trace.Op
	Offset int64
	Size   int
	// Key selects the shard within the tenant's hash ring. Zero (the
	// default) routes every request of a tenant to one shard; a nonzero
	// key spreads the tenant's traffic across shards — useful for load
	// generators that want to exercise all devices. Routing is stable:
	// the same (tenant, key) pair always lands on the same shard.
	Key uint64
}

// Record converts the request to a trace record arriving at the given
// simulated time.
func (r Request) Record(at sim.Time) trace.Record {
	return trace.Record{Time: at, Tenant: r.Tenant, Op: r.Op, Offset: r.Offset, Size: r.Size}
}

// maxRequestBytes bounds a single request's extent; larger transfers should
// be split by the client, as block layers do.
const maxRequestBytes = 4 << 20

// Validate checks field sanity against the server's tenant and address
// space bounds.
func (r Request) Validate(tenants int, maxBytes int64) error {
	switch {
	case r.Tenant < 0 || r.Tenant >= tenants:
		return fmt.Errorf("tenant %d outside [0,%d)", r.Tenant, tenants)
	case r.Size <= 0:
		return fmt.Errorf("non-positive size %d", r.Size)
	case r.Size > maxRequestBytes:
		return fmt.Errorf("size %d exceeds %d-byte request cap", r.Size, maxRequestBytes)
	case r.Offset < 0:
		return fmt.Errorf("negative offset %d", r.Offset)
	case r.Offset+int64(r.Size) > maxBytes:
		return fmt.Errorf("extent [%d,%d) outside the %d-byte tenant space",
			r.Offset, r.Offset+int64(r.Size), maxBytes)
	}
	return nil
}

// parseOp accepts the spellings used across the repo's trace formats.
func parseOp(s string) (trace.Op, error) {
	switch s {
	case "R", "r", "read", "Read", "READ":
		return trace.Read, nil
	case "W", "w", "write", "Write", "WRITE":
		return trace.Write, nil
	}
	return 0, fmt.Errorf("unknown op %q", s)
}

// jsonRequest is the HTTP/JSON wire form of a request.
type jsonRequest struct {
	Tenant int    `json:"tenant"`
	Op     string `json:"op"`
	Offset int64  `json:"offset"`
	Size   int    `json:"size"`
	Key    uint64 `json:"key,omitempty"`
}

// jsonResponse is the HTTP/JSON wire form of a completion.
type jsonResponse struct {
	LatencyNS int64 `json:"latency_ns"`
	SimNS     int64 `json:"sim_ns"`
}

// decodeJSONRequestStd is the encoding/json reference decoder. The serving
// path uses the allocation-free scanner in jsonfast.go; this implementation
// remains as the semantic oracle the differential tests and fuzz target
// compare against.
func decodeJSONRequestStd(data []byte) (Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jr jsonRequest
	if err := dec.Decode(&jr); err != nil {
		return Request{}, fmt.Errorf("serve: bad JSON request: %w", err)
	}
	op, err := parseOp(jr.Op)
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad JSON request: %w", err)
	}
	return Request{Tenant: jr.Tenant, Op: op, Offset: jr.Offset, Size: jr.Size, Key: jr.Key}, nil
}

// lineSep reports whether b separates fields in the line protocol: any
// whitespace strings.Fields would split on (minus newline, which frames
// lines) plus comma, so trace-derived CSV corpora feed straight in.
func lineSep(b byte) bool {
	switch b {
	case ' ', '\t', '\r', '\v', '\f', ',':
		return true
	}
	return false
}

// parseIntBytes is strconv.ParseInt(string(b), 10, 64) without the string
// conversion. Overflow-safe: accumulates negated so int64 min parses.
func parseIntBytes(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	neg := false
	switch b[0] {
	case '-':
		neg = true
		b = b[1:]
	case '+':
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("sign without digits")
	}
	var n int64 // accumulated negative
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		d := int64(c - '0')
		if n < (minInt64+d)/10 {
			return 0, fmt.Errorf("overflows int64")
		}
		n = n*10 - d
	}
	if neg {
		return n, nil
	}
	if n == minInt64 {
		return 0, fmt.Errorf("overflows int64")
	}
	return -n, nil
}

const minInt64 = -1 << 63

// parseUintBytes parses an unsigned decimal (no sign) without allocating.
func parseUintBytes(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, fmt.Errorf("overflows uint64")
		}
		n = n*10 + d
	}
	return n, nil
}

// parseOpBytes is parseOp on a byte slice. The string(b) conversions in the
// switch do not allocate: the compiler recognizes the compare-against-
// constant pattern.
func parseOpBytes(b []byte) (trace.Op, error) {
	switch {
	case len(b) == 1 && (b[0] == 'R' || b[0] == 'r'):
		return trace.Read, nil
	case len(b) == 1 && (b[0] == 'W' || b[0] == 'w'):
		return trace.Write, nil
	case string(b) == "read" || string(b) == "Read" || string(b) == "READ":
		return trace.Read, nil
	case string(b) == "write" || string(b) == "Write" || string(b) == "WRITE":
		return trace.Write, nil
	}
	return 0, fmt.Errorf("unknown op %q", b)
}

// DecodeLineBytes parses one line of the compact load-generator protocol
// without allocating:
//
//	<tenant> <R|W> <offset> <size> [key]
//
// Fields are separated by any run of spaces, tabs or commas; '#' starts a
// comment; the optional fifth field is the shard-spreading key (see
// Request.Key). This is the batch ingest hot path — callers hand it
// bufio.Scanner.Bytes() directly and no intermediate strings are built.
func DecodeLineBytes(line []byte) (Request, error) {
	if i := bytes.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	var fields [6][]byte
	n := 0
	i := 0
	for i < len(line) {
		for i < len(line) && lineSep(line[i]) {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && !lineSep(line[i]) {
			i++
		}
		if n < len(fields) {
			fields[n] = line[start:i]
		}
		n++
	}
	if n != 4 && n != 5 {
		return Request{}, fmt.Errorf("serve: line has %d fields, want 4 or 5 (tenant op offset size [key])", n)
	}
	tenant, err := parseIntBytes(fields[0])
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad tenant %q: %w", fields[0], err)
	}
	op, err := parseOpBytes(fields[1])
	if err != nil {
		return Request{}, fmt.Errorf("serve: %w", err)
	}
	offset, err := parseIntBytes(fields[2])
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad offset %q: %w", fields[2], err)
	}
	size, err := parseIntBytes(fields[3])
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad size %q: %w", fields[3], err)
	}
	var key uint64
	if n == 5 {
		key, err = parseUintBytes(fields[4])
		if err != nil {
			return Request{}, fmt.Errorf("serve: bad key %q: %w", fields[4], err)
		}
	}
	return Request{Tenant: int(tenant), Op: op, Offset: offset, Size: int(size), Key: key}, nil
}

// DecodeLine parses one line of the compact load-generator protocol; see
// DecodeLineBytes for the grammar.
func DecodeLine(line string) (Request, error) {
	return DecodeLineBytes([]byte(line))
}

// EncodeLine renders the canonical line form DecodeLine parses. The key
// field is emitted only when nonzero, so encode∘decode round-trips.
func EncodeLine(r Request) string {
	op := "R"
	if r.Op == trace.Write {
		op = "W"
	}
	if r.Key != 0 {
		return fmt.Sprintf("%d %s %d %d %d", r.Tenant, op, r.Offset, r.Size, r.Key)
	}
	return fmt.Sprintf("%d %s %d %d", r.Tenant, op, r.Offset, r.Size)
}
