package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/policy"
)

// tenantsCoveringShards picks one tenant per shard (key 0 routing) so a test
// can deterministically drive every shard's adaptation window.
func tenantsCoveringShards(t *testing.T, tenants, shards int) []int {
	t.Helper()
	byShard := make([]int, shards)
	for i := range byShard {
		byShard[i] = -1
	}
	for tn := 0; tn < tenants; tn++ {
		idx := shardIndex(tn, 0, shards)
		if byShard[idx] == -1 {
			byShard[idx] = tn
		}
	}
	for i, tn := range byShard {
		if tn == -1 {
			t.Skipf("no tenant in [0,%d) routes to shard %d", tenants, i)
		}
	}
	return byShard
}

// sourceReloader is a test stand-in for the daemon's registry-backed
// reloader: "versions" it can serve are pinned providers.
func sourceReloader(src *policy.Source, providers map[string]policy.Provider) Reloader {
	return func(role, version string) (ReloadStatus, error) {
		if role == "shadow" && version == "none" {
			prev := src.SetShadow(nil)
			st := ReloadStatus{Role: role}
			if prev != nil {
				st.Previous = prev.Version()
			}
			return st, nil
		}
		prov, ok := providers[version]
		if !ok {
			return ReloadStatus{}, fmt.Errorf("unknown version %q", version)
		}
		st := ReloadStatus{Role: role, Version: prov.Version()}
		if role == "shadow" {
			if prev := src.SetShadow(prov); prev != nil {
				st.Previous = prev.Version()
			}
			return st, nil
		}
		prev, err := src.SetActive(prov)
		if err != nil {
			return ReloadStatus{}, err
		}
		st.Previous = prev.Version()
		return st, nil
	}
}

// TestReloadSwapsPolicyAcrossShards pins the acceptance criterion: a reload
// on a running sharded server swaps every shard's policy at its next
// adaptation epoch — no drain, no rejected requests, no lost completions —
// and the new version shows up in /metrics.
func TestReloadSwapsPolicyAcrossShards(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.ShardCount = 2
	kCfg := keeperConfig() // Window/AdaptEvery 50ms
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := policy.NewModel("v2", forcedModel(t, len(kCfg.Strategies), 2), kCfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, cfg, k)
	defer s.Drain()
	s.SetReloader(sourceReloader(k.Source(), map[string]policy.Provider{"v2": v2}))

	cover := tenantsCoveringShards(t, s.cfg.Tenants, len(s.shards))
	var pending []*Pending
	submitAll := func(pageNo int64) {
		for _, tn := range cover {
			p, err := s.SubmitAsync(writeReq(tn, pageNo))
			if err != nil {
				t.Fatalf("submit rejected during reload window: %v", err)
			}
			pending = append(pending, p)
		}
	}

	// Epoch 1: traffic in [0,50)ms on every shard, boundary at 50ms.
	for i := 0; i < 4; i++ {
		submitAll(int64(i))
		clk.Advance(10 * time.Millisecond)
	}
	clk.Advance(15 * time.Millisecond)
	s.SimNow() // ticks every shard past the 50ms boundary

	// Hot reload mid-run, between epochs.
	st, err := s.Reload("active", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != "v2" || st.Previous != "in-memory" {
		t.Errorf("reload status = %+v", st)
	}
	// Immediately visible as the published version...
	var buf strings.Builder
	s.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), `ssdkeeper_model_info{role="active",version="v2"} 1`) {
		t.Errorf("metrics missing published v2:\n%s", buf.String())
	}

	// Epoch 2: traffic in [55,100)ms, boundary at 100ms. Every shard must
	// decide with v2 now.
	for i := 0; i < 4; i++ {
		submitAll(int64(10 + i))
		clk.Advance(10 * time.Millisecond)
	}
	clk.Advance(10 * time.Millisecond)
	s.SimNow()

	for i, sd := range s.shards {
		sw := sd.ctrl.Switches()
		if len(sw) < 2 {
			t.Fatalf("shard %d fired %d epochs, want >= 2", i, len(sw))
		}
		if first := sw[0]; first.Index != 1 {
			t.Errorf("shard %d pre-reload epoch decided class %d, want 1", i, first.Index)
		}
		if last := sw[len(sw)-1]; last.Index != 2 {
			t.Errorf("shard %d post-reload epoch decided class %d, want 2", i, last.Index)
		}
	}
	buf.Reset()
	s.WriteMetrics(&buf)
	for i := range s.shards {
		want := fmt.Sprintf("ssdkeeper_shard_model_version{shard=\"%d\",version=\"v2\"} 1", i)
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}

	// No lost completions: everything submitted across the swap resolves.
	clk.Advance(time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, p := range pending {
		if _, err := s.Wait(ctx, p); err != nil {
			t.Fatalf("request lost across reload: %v", err)
		}
	}
}

// TestShadowCountersInMetrics: installing a shadow candidate surfaces
// agreement/divergence counters in /metrics while the device keeps following
// the active policy.
func TestShadowCountersInMetrics(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	kCfg := keeperConfig()
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, cfg, k)
	defer s.Drain()

	// Counters render (as zero) before any shadow exists.
	var buf strings.Builder
	s.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "ssdkeeper_shadow_agree_total 0") ||
		!strings.Contains(buf.String(), "ssdkeeper_shadow_diverge_total 0") {
		t.Fatalf("shadow counters absent without a candidate:\n%s", buf.String())
	}

	// A diverging candidate: static strategy != forced class 1.
	k.Source().SetShadow(policy.StaticProvider{Ver: "cand", Strategy: kCfg.Strategies[2]})
	for i := 0; i < 6; i++ {
		if _, err := s.SubmitAsync(writeReq(0, int64(i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(10 * time.Millisecond)
	}
	clk.Advance(10 * time.Millisecond)
	s.SimNow()

	buf.Reset()
	s.WriteMetrics(&buf)
	out := buf.String()
	if !strings.Contains(out, `ssdkeeper_model_info{role="shadow",version="cand"} 1`) {
		t.Errorf("metrics missing shadow model_info:\n%s", out)
	}
	if !strings.Contains(out, "ssdkeeper_shadow_diverge_total 1") {
		t.Errorf("diverging shadow not counted:\n%s", out)
	}
	if sw, ok := s.Controller().LastSwitch(); !ok || sw.Index != 1 {
		t.Errorf("device followed the shadow: %+v (ok=%v)", sw, ok)
	}
}

// TestReloadHTTP covers the endpoint surface: method guard, 501 without a
// registry, JSON status with one, and error mapping.
func TestReloadHTTP(t *testing.T) {
	clk := newFakeClock()
	kCfg := keeperConfig()
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 0))
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, testConfig(clk), k)
	defer s.Drain()
	ts := httptest.NewServer(s.Handler(time.Second))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload without registry = %d, want 501", resp.StatusCode)
	}

	v2, err := policy.NewModel("v2", forcedModel(t, len(kCfg.Strategies), 2), kCfg.Strategies)
	if err != nil {
		t.Fatal(err)
	}
	s.SetReloader(sourceReloader(k.Source(), map[string]policy.Provider{"": v2, "v2": v2}))

	resp, err = http.Get(ts.URL + "/model/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /model/reload = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/model/reload?version=v2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /model/reload = %d: %s", resp.StatusCode, body)
	}
	var st ReloadStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad reload response %q: %v", body, err)
	}
	if st.Role != "active" || st.Version != "v2" || st.Previous != "in-memory" {
		t.Errorf("reload status = %+v", st)
	}
	if got := k.Source().Active().Version(); got != "v2" {
		t.Errorf("active after HTTP reload = %q", got)
	}

	for _, bad := range []string{"?role=bogus", "?version=nope"} {
		resp, err = http.Post(ts.URL+"/model/reload"+bad, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /model/reload%s = %d, want 400", bad, resp.StatusCode)
		}
	}

	// Shadow install and clear through the endpoint.
	resp, err = http.Post(ts.URL+"/model/reload?role=shadow&version=v2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || k.Source().Shadow() == nil {
		t.Errorf("shadow install = %d, shadow = %v", resp.StatusCode, k.Source().Shadow())
	}
	resp, err = http.Post(ts.URL+"/model/reload?role=shadow&version=none", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || k.Source().Shadow() != nil {
		t.Errorf("shadow clear = %d, shadow = %v", resp.StatusCode, k.Source().Shadow())
	}
}
