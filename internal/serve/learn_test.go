package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/ssd"
)

// nullActuator satisfies learn.Actuator without any registry: the serve tests
// exercise the feed and the metrics surface, not the promotion machinery.
type nullActuator struct{ versions int }

func (a *nullActuator) SaveCandidate(*nn.Network, policy.Meta, []string) (string, error) {
	a.versions++
	return fmt.Sprintf("v%03d", a.versions+1), nil
}
func (a *nullActuator) InstallShadow(string) error     { return nil }
func (a *nullActuator) ClearShadow() error             { return nil }
func (a *nullActuator) Promote(string) (string, error) { return "v001", nil }

// TestSampleFeedFromNode pins the serving-layer wiring: with a sink
// configured, each shard's adaptation epochs emit samples stamped with the
// shard index, and the completions the shard dispatched land in the epoch's
// outcome.
func TestSampleFeedFromNode(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	log := learn.NewLog(0)
	cfg.Sink = log
	kCfg := keeperConfig()
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, cfg, k)
	defer s.Drain()

	// Two epochs of traffic: requests in [0, 50ms) decide the epoch at 50ms;
	// their completions (and the second wave's) close it at 100ms.
	for wave := 0; wave < 2; wave++ {
		for i := 0; i < 20; i++ {
			req := writeReq(i%4, int64(wave*20+i))
			if _, err := s.SubmitAsync(req); err != nil {
				t.Fatal(err)
			}
			clk.Advance(2 * time.Millisecond)
		}
		clk.Advance(10 * time.Millisecond)
		s.SimNow()
	}

	samples, first, _ := log.Since(0, 0)
	if len(samples) == 0 || first != 0 {
		t.Fatalf("no samples after two epochs (first=%d)", first)
	}
	for i, smp := range samples {
		if smp.Shard != 0 {
			t.Errorf("sample %d from shard %d on a single-shard node", i, smp.Shard)
		}
		if smp.StrategyIndex != 1 {
			t.Errorf("sample %d applied class %d, want the forced class 1", i, smp.StrategyIndex)
		}
	}
	// At least one closed epoch realized completions through the dispatch
	// callback.
	var completed uint64
	for _, smp := range samples {
		completed += smp.Completed
	}
	if completed == 0 {
		t.Error("no completions attributed to any epoch")
	}
}

// TestLearnerMetricsSeries: with a learner configured, /metrics renders the
// learner family from the lock-free status snapshot.
func TestLearnerMetricsSeries(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	lrn, err := learn.New(learn.Config{Classes: 3, MinSamples: 4, RetrainEvery: 4, Iterations: 4},
		&nullActuator{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Learner = lrn
	s := testServer(t, cfg, nil)
	defer s.Drain()

	var buf strings.Builder
	s.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"ssdkeeper_learn_samples_total 0",
		"ssdkeeper_learn_retrains_total 0",
		"ssdkeeper_learn_promotions_total 0",
		"ssdkeeper_learn_demotions_total 0",
		`ssdkeeper_learn_state{state="idle"} 1`,
		"ssdkeeper_learn_regret 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLearnSamplesEndpoint: the export pages through the journal by absolute
// sequence, answers a caught-up poll with an empty page, and is 501 when no
// journal is wired.
func TestLearnSamplesEndpoint(t *testing.T) {
	cfg := Config{
		Device:  nand.EvalConfig(),
		Options: ssd.DefaultOptions(),
		Accel:   200,
	}
	log := learn.NewLog(0)
	cfg.Sink = log
	kCfg := keeperConfig()
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSampleLog(log)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler(10 * time.Second))
	defer ts.Close()

	// Drive traffic until epochs have flushed into the journal.
	deadline := time.Now().Add(10 * time.Second)
	for log.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no samples flushed within the deadline")
		}
		resp, err := http.Post(ts.URL+"/io", "application/json",
			strings.NewReader(`{"tenant":0,"op":"write","offset":0,"size":16384}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	get := func(q string) (page struct {
		First   uint64         `json:"first"`
		Next    uint64         `json:"next"`
		Samples []learn.Sample `json:"samples"`
	}) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/learn/samples" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET /learn/samples%s = %d: %s", q, resp.StatusCode, body)
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	page := get("")
	if len(page.Samples) == 0 || page.First != 0 {
		t.Fatalf("first page: %d samples from %d", len(page.Samples), page.First)
	}
	if page.Next != page.First+uint64(len(page.Samples)) {
		t.Errorf("page sequences inconsistent: first %d + %d samples != next %d",
			page.First, len(page.Samples), page.Next)
	}
	// A caught-up follower gets an empty page, not null.
	caught := get(fmt.Sprintf("?since=%d", page.Next))
	if caught.Samples == nil || len(caught.Samples) != 0 {
		t.Errorf("caught-up poll returned %v, want an empty page", caught.Samples)
	}

	// Malformed cursor and wrong method are client errors.
	if resp, err := http.Get(ts.URL + "/learn/samples?since=banana"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad cursor = %d, want 400", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/learn/samples", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST = %d, want 405", resp.StatusCode)
		}
	}

	// A node with no journal answers 501.
	bare, err := New(Config{Device: nand.EvalConfig(), Options: ssd.DefaultOptions()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Drain()
	bts := httptest.NewServer(bare.Handler(time.Second))
	defer bts.Close()
	if resp, err := http.Get(bts.URL + "/learn/samples"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("journal-less export = %d, want 501", resp.StatusCode)
		}
	}
}

// TestSampleEmissionConcurrent hammers a multi-shard node with concurrent
// traffic while every shard emits into one shared sink and a learner steps on
// another goroutine — the race test for the outcome feed (run under -race in
// the serve-race CI job).
func TestSampleEmissionConcurrent(t *testing.T) {
	kCfg := keeperConfig()
	kCfg.Window = 5 * sim.Millisecond
	kCfg.AdaptEvery = kCfg.Window
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	log := learn.NewLog(0)
	lrn, err := learn.New(learn.Config{Classes: 3, MinSamples: 8, RetrainEvery: 8, Iterations: 2},
		&nullActuator{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Device:      nand.EvalConfig(),
		Options:     ssd.DefaultOptions(),
		Accel:       1000,
		Now:         time.Now,
		ShardCount:  4,
		Sink:        learn.MultiSink{log, lrn},
		Learner:     lrn,
		ExploreRate: 0.25,
		ExploreSeed: 7,
	}
	s := testServer(t, cfg, k)
	s.Start()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for i := 0; i < perWorker; i++ {
				req := writeReq(w%4, int64(i))
				req.Key = uint64(w*perWorker + i + 1)
				if _, err := s.Submit(ctx, req); err != nil &&
					!errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrCanceled) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// The learner steps and the metrics render concurrently with emission.
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := lrn.Step(time.Now()); err != nil {
				t.Errorf("learner step: %v", err)
				return
			}
			var sb strings.Builder
			s.WriteMetrics(&sb)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	s.Drain()
	if err := s.Err(); err != nil {
		t.Fatalf("server poisoned: %v", err)
	}
	if log.Len() == 0 {
		t.Fatal("no samples emitted under concurrent load")
	}
	if st := lrn.Status(); st.Samples == 0 {
		t.Error("learner saw no samples")
	}
	// Shard stamps cover more than one shard under spread keys.
	samples, _, _ := log.Since(0, 0)
	shards := map[int]bool{}
	for _, smp := range samples {
		shards[smp.Shard] = true
	}
	if len(shards) < 2 {
		t.Errorf("samples came from %d shard(s), want several under spread keys", len(shards))
	}
}
