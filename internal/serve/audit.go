package serve

import "time"

// The node auditor is the serving tier's health watchdog. Each sweep pulls
// every shard's device health snapshot (through the shard mailbox, so the
// counters are read in the owning goroutine) and folds it into a score in
// [0,1], where 1.0 is a fully healthy device. Once any shard's score falls
// below Config.DegradedScore the node flips to degraded: Ready() goes false,
// /readyz answers 503 "degraded", and the fleet prober sees it on the next
// probe so the rebalancer can migrate tenants away. Degraded is sticky —
// dead dies do not resurrect, so a sick unit stays quarantined until it is
// drained and replaced.

// shardHealthScore folds one shard's health snapshot into a score in [0,1].
// Dead dies dominate (full weight), read-retry pressure is normalized by the
// shard's completed client requests (weight 0.2), and wear imbalance
// contributes a small tail (weight 0.1). An immortal device scores 1.0.
func shardHealthScore(snap *shardSnapshot) float64 {
	hs := snap.health
	score := 1.0 - hs.DeadDieFrac
	var completed uint64
	for i := range snap.tenants {
		completed += snap.tenants[i].completed[0] + snap.tenants[i].completed[1]
	}
	if hs.ReadRetries > 0 && completed > 0 {
		rate := float64(hs.ReadRetries) / float64(completed)
		if rate > 1 {
			rate = 1
		}
		score -= 0.2 * rate
	}
	spread := hs.WearSpread
	if spread > 1 {
		spread = 1
	}
	score -= 0.1 * spread
	if score < 0 {
		score = 0
	}
	return score
}

// Audit runs one auditor sweep: it snapshots every shard, scores each, and
// flips the node to degraded if the worst score is below the configured
// threshold. It returns the worst (minimum) shard score. Safe to call at any
// time — tests and external schedulers can drive it without the loop.
func (n *Node) Audit() float64 {
	worst := 1.0
	for _, sd := range n.shards {
		snap := sd.final
		if r, ok := sd.send(msgSnapshot); ok {
			snap = r.snap
		}
		if snap == nil {
			continue
		}
		if s := shardHealthScore(snap); s < worst {
			worst = s
		}
	}
	if worst < n.cfg.DegradedScore && n.degraded.CompareAndSwap(false, true) {
		if n.cfg.AuditLog != nil {
			n.cfg.AuditLog("serve: node degraded: worst shard health score %.3f below threshold %.3f",
				worst, n.cfg.DegradedScore)
		}
	}
	return worst
}

// HealthScore runs one sweep and returns the worst shard health score. Like
// Audit (which it is), the sweep flips the node to degraded when the score
// crosses the threshold.
func (n *Node) HealthScore() float64 { return n.Audit() }

// Degraded reports whether the auditor has quarantined this node.
func (n *Node) Degraded() bool { return n.degraded.Load() }

// auditLoop sweeps shard health every AuditEvery until stopAuditor fires.
func (n *Node) auditLoop() {
	defer close(n.auditDone)
	t := time.NewTicker(n.cfg.AuditEvery)
	defer t.Stop()
	for {
		select {
		case <-n.auditStop:
			return
		case <-t.C:
			n.Audit()
		}
	}
}

// stopAuditor stops the audit loop and waits for it to exit, so Drain never
// races a concurrent sweep against shard shutdown. Idempotent; a no-op when
// the loop was never started.
func (n *Node) stopAuditor() {
	n.auditOnce.Do(func() {
		close(n.auditStop)
		if n.auditRunning.Load() {
			<-n.auditDone
		}
	})
}
